module waymemo

go 1.24
