// Package baseline implements the cache-access techniques the paper compares
// against (and the related work used for ablation studies):
//
//   - OriginalD / OriginalI: conventional set-associative access — every
//     access reads all tag ways; loads read all data ways in parallel,
//     stores write the single matching way via the write-back buffer.
//   - Approach4I: Panwar & Rennels [4], intra-cache-line sequential-flow way
//     memoization for instruction caches (the paper's I-cache baseline).
//   - SetBufferD: Yang, Yu & Zhang [14], the lightweight set buffer (the
//     paper's D-cache comparison).
//
// Further related-work models (filter cache [6], two-phase access [8],
// MRU way prediction [9], Ma link-based memoization [11], line buffer [13])
// live in extensions.go.
package baseline

import (
	"waymemo/internal/cache"
	"waymemo/internal/stats"
	"waymemo/internal/trace"
)

// OriginalD is the unmodified data cache.
type OriginalD struct {
	Cache *cache.Cache
	Stats *stats.Counters
}

var (
	_ trace.DataSink      = (*OriginalD)(nil)
	_ trace.DataBatchSink = (*OriginalD)(nil)
)

// OnDataBatch processes one replayed block with direct calls on the
// concrete controller — the batched fan-out replay's devirtualized inner
// loop (see core.IController.OnFetchBatch).
func (d *OriginalD) OnDataBatch(evs []trace.DataEvent) {
	for i := range evs {
		d.OnData(evs[i])
	}
}

// NewOriginalD builds the conventional D-cache controller.
func NewOriginalD(geo cache.Config) *OriginalD {
	return &OriginalD{Cache: cache.New(geo), Stats: &stats.Counters{}}
}

// OnData performs a conventional access: all tag ways are read; loads read
// all data ways, stores write one.
func (d *OriginalD) OnData(ev trace.DataEvent) {
	fullDataAccess(d.Cache, d.Stats, ev)
}

// fullDataAccess is the conventional D-cache access shared by baselines.
// It returns the way that holds the line afterwards.
func fullDataAccess(c *cache.Cache, s *stats.Counters, ev trace.DataEvent) int {
	s.Accesses++
	if ev.Store {
		s.Stores++
	} else {
		s.Loads++
	}
	ways := uint64(c.Config().Ways)
	s.TagReads += ways
	way, hit := c.Lookup(ev.Addr)
	if hit {
		s.Hits++
		if !ev.Store {
			s.WayReads += ways
		}
	} else {
		s.Misses++
		if !ev.Store {
			s.WayReads += ways
		}
		var evc cache.Eviction
		way, evc = c.Fill(ev.Addr)
		s.Refills++
		s.WayWrites++
		if evc.Dirty {
			s.WriteBacks++
		}
	}
	c.Touch(ev.Addr, way)
	if ev.Store {
		s.WayWrites++
		c.MarkDirty(ev.Addr, way)
	}
	return way
}

// OriginalI is the unmodified instruction cache.
type OriginalI struct {
	Cache *cache.Cache
	Stats *stats.Counters
}

var (
	_ trace.FetchSink      = (*OriginalI)(nil)
	_ trace.FetchBatchSink = (*OriginalI)(nil)
)

// OnFetchBatch processes one replayed block with direct calls on the
// concrete controller.
func (i *OriginalI) OnFetchBatch(evs []trace.FetchEvent) {
	for j := range evs {
		i.OnFetch(evs[j])
	}
}

// NewOriginalI builds the conventional I-cache controller.
func NewOriginalI(geo cache.Config) *OriginalI {
	return &OriginalI{Cache: cache.New(geo), Stats: &stats.Counters{}}
}

// OnFetch performs a conventional fetch: all tag and data ways activate.
func (i *OriginalI) OnFetch(ev trace.FetchEvent) {
	i.Stats.Accesses++
	i.Stats.Loads++
	if !ev.First {
		i.Stats.Flow[trace.Classify(ev, uint32(i.Cache.Config().LineBytes))]++
	}
	fullFetch(i.Cache, i.Stats, ev)
}

// fullFetch is the conventional I-cache access shared by baselines; it
// returns the way holding the line.
func fullFetch(c *cache.Cache, s *stats.Counters, ev trace.FetchEvent) int {
	ways := uint64(c.Config().Ways)
	s.TagReads += ways
	s.WayReads += ways
	way, hit := c.Lookup(ev.Addr)
	if hit {
		s.Hits++
	} else {
		s.Misses++
		var evc cache.Eviction
		way, evc = c.Fill(ev.Addr)
		s.Refills++
		s.WayWrites++
		if evc.Dirty {
			s.WriteBacks++
		}
	}
	c.Touch(ev.Addr, way)
	return way
}

// Approach4I models Panwar & Rennels [4]: intra-cache-line sequential
// fetches reuse the previous way with no tag access; everything else is a
// conventional fetch. This is the left-most bar of Figures 6 and 7.
type Approach4I struct {
	Cache *cache.Cache
	Stats *stats.Counters

	prevWay  int
	havePrev bool
}

var (
	_ trace.FetchSink      = (*Approach4I)(nil)
	_ trace.FetchBatchSink = (*Approach4I)(nil)
)

// OnFetchBatch processes one replayed block with direct calls on the
// concrete controller.
func (a *Approach4I) OnFetchBatch(evs []trace.FetchEvent) {
	for i := range evs {
		a.OnFetch(evs[i])
	}
}

// NewApproach4I builds the [4] controller.
func NewApproach4I(geo cache.Config) *Approach4I {
	return &Approach4I{Cache: cache.New(geo), Stats: &stats.Counters{}}
}

// OnFetch applies the intra-line sequential optimization.
func (a *Approach4I) OnFetch(ev trace.FetchEvent) {
	s := a.Stats
	s.Accesses++
	s.Loads++
	if !ev.First {
		flow := trace.Classify(ev, uint32(a.Cache.Config().LineBytes))
		s.Flow[flow]++
		if flow == trace.IntraSeq && a.havePrev {
			s.Case1Skips++
			s.Hits++
			s.WayReads++
			a.Cache.Touch(ev.Addr, a.prevWay)
			return
		}
	}
	a.prevWay = fullFetch(a.Cache, s, ev)
	a.havePrev = true
}

// SetBufferD models Yang, Yu & Zhang's lightweight set buffer [14]: a
// buffer holding the lines of the most recently used set. An access to the
// buffered set whose tag matches a buffered line is served entirely from the
// buffer (no cache tag or way activates, no cycle penalty). Stores hit the
// buffer write-back style; dirty buffered lines flush to their data way when
// the buffer moves to another set.
type SetBufferD struct {
	Cache *cache.Cache
	Stats *stats.Counters

	bufValid bool
	bufSet   uint32
	tags     []uint32
	lineOK   []bool
	dirty    []bool
}

var (
	_ trace.DataSink      = (*SetBufferD)(nil)
	_ trace.DataBatchSink = (*SetBufferD)(nil)
)

// OnDataBatch processes one replayed block with direct calls on the
// concrete controller.
func (b *SetBufferD) OnDataBatch(evs []trace.DataEvent) {
	for i := range evs {
		b.OnData(evs[i])
	}
}

// NewSetBufferD builds the [14] controller.
func NewSetBufferD(geo cache.Config) *SetBufferD {
	b := &SetBufferD{
		Cache:  cache.New(geo),
		Stats:  &stats.Counters{},
		tags:   make([]uint32, geo.Ways),
		lineOK: make([]bool, geo.Ways),
		dirty:  make([]bool, geo.Ways),
	}
	// A line evicted from the buffered set must leave the buffer too.
	b.Cache.OnEvict = func(ev cache.Eviction) {
		if b.bufValid && ev.Set == b.bufSet {
			for w := range b.tags {
				if b.lineOK[w] && b.tags[w] == ev.Tag {
					b.lineOK[w] = false
					b.dirty[w] = false
				}
			}
		}
	}
	return b
}

// OnData serves the access from the set buffer when possible.
func (b *SetBufferD) OnData(ev trace.DataEvent) {
	s := b.Stats
	geo := b.Cache.Config()
	set, tag := geo.Set(ev.Addr), geo.Tag(ev.Addr)
	// The buffer's set-index comparator fires on every access.
	s.SetBufReads++
	if b.bufValid && set == b.bufSet {
		for w := range b.tags {
			if b.lineOK[w] && b.tags[w] == tag {
				s.Accesses++
				if ev.Store {
					s.Stores++
					s.SetBufWrites++
					b.dirty[w] = true
				} else {
					s.Loads++
				}
				s.SetBufHits++
				s.Hits++
				b.Cache.Touch(ev.Addr, w)
				if ev.Store {
					b.Cache.MarkDirty(ev.Addr, w)
				}
				return
			}
		}
	}
	// Buffer miss: flush dirty buffered lines to their data ways (their
	// buffered copy is newer than the array), then perform a conventional
	// access and re-latch the buffer with the accessed set.
	if b.bufValid {
		for w := range b.dirty {
			if b.dirty[w] {
				s.WayWrites++
				b.dirty[w] = false
			}
		}
	}
	way := fullDataAccess(b.Cache, s, ev)
	b.bufValid = true
	b.bufSet = set
	for w := range b.tags {
		t, ok := b.Cache.TagAt(set, w)
		// Loads read every way in parallel, so all resident lines latch
		// into the buffer for free; a store only delivers its own line.
		if ok && (!ev.Store || w == way) {
			b.tags[w] = t
			b.lineOK[w] = true
			s.SetBufWrites++
		} else if ev.Store && w != way {
			b.lineOK[w] = false
		}
		b.dirty[w] = false
	}
	return
}
