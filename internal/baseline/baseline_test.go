package baseline

import (
	"math/rand"
	"testing"

	"waymemo/internal/cache"
	"waymemo/internal/trace"
)

var geo = cache.FRV32K

func dataEv(addr uint32, store bool) trace.DataEvent {
	return trace.DataEvent{Addr: addr, Base: addr, Disp: 0, Store: store, Size: 4}
}

func TestOriginalDAccounting(t *testing.T) {
	d := NewOriginalD(geo)
	d.OnData(dataEv(0x1000, false)) // load miss
	s := d.Stats
	if s.TagReads != 2 || s.WayReads != 2 || s.WayWrites != 1 || s.Misses != 1 {
		t.Fatalf("load miss: %+v", *s)
	}
	d.OnData(dataEv(0x1004, false)) // load hit, same line
	if s.TagReads != 4 || s.WayReads != 4 || s.Hits != 1 {
		t.Fatalf("load hit: %+v", *s)
	}
	d.OnData(dataEv(0x1008, true)) // store hit: tags + single way write
	if s.TagReads != 6 || s.WayReads != 4 || s.WayWrites != 2 {
		t.Fatalf("store hit: %+v", *s)
	}
	// On a hit-dominated stream with stores, ways/access sits below 2
	// thanks to the write-back buffer (paper §4).
	for i := 0; i < 20; i++ {
		d.OnData(dataEv(0x1000+uint32(4*(i%8)), i%2 == 0))
	}
	if w := s.WaysPerAccess(); w >= 2 {
		t.Fatalf("ways/access = %.2f, must stay below 2 with the write buffer", w)
	}
}

func TestOriginalDWriteBack(t *testing.T) {
	small := cache.Config{Sets: 2, Ways: 1, LineBytes: 16}
	d := NewOriginalD(small)
	d.OnData(dataEv(0x00, true))
	d.OnData(dataEv(0x20, false)) // same set, evicts dirty line
	if d.Stats.WriteBacks != 1 {
		t.Fatalf("write backs = %d", d.Stats.WriteBacks)
	}
}

func TestOriginalIAccounting(t *testing.T) {
	i := NewOriginalI(geo)
	i.OnFetch(trace.FetchEvent{Addr: 0x1000, First: true})
	i.OnFetch(trace.FetchEvent{Addr: 0x1008, Prev: 0x1000, Kind: trace.KindSeq})
	s := i.Stats
	// Original I-cache: every fetch reads all tags and ways.
	if s.TagReads != 4 || s.WayReads != 4 {
		t.Fatalf("%+v", *s)
	}
	if s.Hits != 1 || s.Misses != 1 {
		t.Fatalf("hit/miss: %+v", *s)
	}
}

func TestApproach4ISkipsIntraLineOnly(t *testing.T) {
	a := NewApproach4I(geo)
	// Packets 0..3 in one 32B line, then line crossing.
	prev := uint32(0)
	for p := 0; p < 5; p++ {
		addr := uint32(0x2000 + 8*p)
		a.OnFetch(trace.FetchEvent{Addr: addr, Prev: prev, Kind: trace.KindSeq, Base: prev, Disp: 8, First: p == 0})
		prev = addr
	}
	s := a.Stats
	if s.Case1Skips != 3 {
		t.Fatalf("skips = %d", s.Case1Skips)
	}
	// Fetch 0 (cold) and fetch 4 (line crossing) were full accesses.
	if s.TagReads != 4 {
		t.Fatalf("tag reads = %d", s.TagReads)
	}
	// A taken branch within the line is NOT case 1 under [4].
	a.OnFetch(trace.FetchEvent{Addr: 0x2020, Prev: 0x2020, Kind: trace.KindBranch, Base: 0x2024, Disp: -4})
	if s.Case1Skips != 3 {
		t.Fatalf("intra-line branch was skipped")
	}
}

func TestSetBufferHitsSameSet(t *testing.T) {
	b := NewSetBufferD(geo)
	// First access misses buffer and cache; loads the buffer.
	b.OnData(dataEv(0x4000, false))
	// Same line again: buffer hit, no cache arrays.
	tagsBefore, waysBefore := b.Stats.TagReads, b.Stats.WayReads
	b.OnData(dataEv(0x4004, false))
	if b.Stats.SetBufHits != 1 {
		t.Fatalf("buffer hits = %d", b.Stats.SetBufHits)
	}
	if b.Stats.TagReads != tagsBefore || b.Stats.WayReads != waysBefore {
		t.Fatal("buffer hit touched cache arrays")
	}
	// Other way of the same set: miss in buffer (not resident), full access,
	// then both lines buffered.
	other := uint32(0x4000 + 1<<14) // same set, different tag
	b.OnData(dataEv(other, false))
	b.OnData(dataEv(0x4000, false)) // now both buffered: hit
	if b.Stats.SetBufHits != 2 {
		t.Fatalf("buffer hits = %d", b.Stats.SetBufHits)
	}
}

func TestSetBufferMovesWithSet(t *testing.T) {
	b := NewSetBufferD(geo)
	b.OnData(dataEv(0x4000, true)) // store: buffered dirty after hit below
	b.OnData(dataEv(0x4004, true)) // buffer hit (store was latched), dirty
	if b.Stats.SetBufHits != 1 {
		t.Fatalf("setup: %+v", *b.Stats)
	}
	wayWrites := b.Stats.WayWrites
	b.OnData(dataEv(0x4020, false))         // different set: dirty line flushes
	if b.Stats.WayWrites != wayWrites+1+1 { // flush + refill of new line
		t.Fatalf("flush accounting: %d -> %d", wayWrites, b.Stats.WayWrites)
	}
}

func TestSetBufferEvictionCoherence(t *testing.T) {
	small := cache.Config{Sets: 2, Ways: 1, LineBytes: 16}
	b := NewSetBufferD(small)
	b.OnData(dataEv(0x00, false))
	b.OnData(dataEv(0x20, false)) // same set, evicts 0x00 (1-way)
	// 0x00 must not hit the buffer now.
	hits := b.Stats.SetBufHits
	b.OnData(dataEv(0x00, false))
	if b.Stats.SetBufHits != hits {
		t.Fatal("buffer served an evicted line")
	}
}

// TestBaselinesAgreeOnHitMiss runs all D-cache techniques over one random
// stream: the functional hit/miss outcome must be identical (all use the
// same cache geometry and LRU policy; only array activity differs).
func TestBaselinesAgreeOnHitMiss(t *testing.T) {
	o := NewOriginalD(geo)
	sb := NewSetBufferD(geo)
	r := rand.New(rand.NewSource(3))
	bases := []uint32{0x100000, 0x104000, 0x17F000}
	for i := 0; i < 100000; i++ {
		base := bases[r.Intn(len(bases))]
		addr := base + uint32(r.Intn(1<<13))&^3
		ev := dataEv(addr, r.Intn(4) == 0)
		o.OnData(ev)
		sb.OnData(ev)
	}
	if o.Stats.Hits != sb.Stats.Hits || o.Stats.Misses != sb.Stats.Misses {
		t.Fatalf("divergence: original %d/%d, set buffer %d/%d",
			o.Stats.Hits, o.Stats.Misses, sb.Stats.Hits, sb.Stats.Misses)
	}
	if sb.Stats.SetBufHits == 0 {
		t.Fatal("set buffer never hit")
	}
	// The set buffer must reduce array activity.
	if sb.Stats.TagReads >= o.Stats.TagReads {
		t.Fatal("set buffer saved no tag reads")
	}
}
