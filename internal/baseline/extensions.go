package baseline

import (
	"waymemo/internal/cache"
	"waymemo/internal/stats"
	"waymemo/internal/trace"
)

// This file models the remaining related-work techniques of Section 2,
// used by the ablation experiments:
//
//   - FilterCacheD [6]: a tiny L0 cache in front of L1; saves energy on L0
//     hits but costs one cycle per L0 miss.
//   - TwoPhaseD [8]: tags first, then exactly one data way; saves way
//     energy on every hit but serializes the access (performance loss).
//   - WayPredictI [9]: MRU-way prediction; a misprediction re-probes all
//     ways and costs an extra cycle.
//   - MaLinksI [11]: way memoization with per-line sequential and branch
//     links (two extra bits read per access, link invalidation on refill).
//   - LineBufferD [13]: a single line buffer in front of the cache (an
//     extra cycle on buffer misses, per Su & Despain).

// FilterCacheD is the L0 filter cache of Kin et al. [6].
type FilterCacheD struct {
	L0    *cache.Cache
	L1    *cache.Cache
	Stats *stats.Counters
}

var (
	_ trace.DataSink      = (*FilterCacheD)(nil)
	_ trace.DataBatchSink = (*FilterCacheD)(nil)
)

// OnDataBatch processes one replayed block with direct calls on the
// concrete controller — the batched fan-out replay's devirtualized inner
// loop (see core.IController.OnFetchBatch).
func (f *FilterCacheD) OnDataBatch(evs []trace.DataEvent) {
	for i := range evs {
		f.OnData(evs[i])
	}
}

// NewFilterCacheD builds a filter cache (l0 geometry) over an L1.
func NewFilterCacheD(l0, l1 cache.Config) *FilterCacheD {
	return &FilterCacheD{L0: cache.New(l0), L1: cache.New(l1), Stats: &stats.Counters{}}
}

// OnData serves the access from L0 when possible; an L0 miss costs one
// extra cycle (ExtraCycles) and a full L1 access.
func (f *FilterCacheD) OnData(ev trace.DataEvent) {
	s := f.Stats
	s.Accesses++
	if ev.Store {
		s.Stores++
	} else {
		s.Loads++
	}
	// The L0 is direct-mapped-small: model its access as a buffer access.
	s.BufReads++
	if way, hit := f.L0.Lookup(ev.Addr); hit {
		s.BufHits++
		s.Hits++
		f.L0.Touch(ev.Addr, way)
		if ev.Store {
			f.L0.MarkDirty(ev.Addr, way)
			s.BufWrites++
		}
		return
	}
	// L0 miss: one penalty cycle, then the L1 access (conventional), then
	// the line is filled into L0.
	s.ExtraCycles++
	ways := uint64(f.L1.Config().Ways)
	s.TagReads += ways
	way, hit := f.L1.Lookup(ev.Addr)
	if hit {
		s.Hits++
		if !ev.Store {
			s.WayReads += ways
		}
	} else {
		s.Misses++
		if !ev.Store {
			s.WayReads += ways
		}
		var evc cache.Eviction
		way, evc = f.L1.Fill(ev.Addr)
		s.Refills++
		s.WayWrites++
		if evc.Dirty {
			s.WriteBacks++
		}
	}
	f.L1.Touch(ev.Addr, way)
	if ev.Store {
		s.WayWrites++
		f.L1.MarkDirty(ev.Addr, way)
	}
	_, l0ev := f.L0.Fill(ev.Addr)
	s.BufWrites++
	if l0ev.Dirty {
		// Dirty L0 victim writes through to its L1 way.
		s.WayWrites++
	}
	if ev.Store {
		f.L0.MarkDirty(ev.Addr, 0)
	}
}

// TwoPhaseD is the phased cache of Hasegawa et al. [8]: phase one reads all
// tags, phase two activates only the matching data way. Every access takes
// an extra phase (the paper's cited performance loss).
type TwoPhaseD struct {
	Cache *cache.Cache
	Stats *stats.Counters
}

var (
	_ trace.DataSink      = (*TwoPhaseD)(nil)
	_ trace.DataBatchSink = (*TwoPhaseD)(nil)
)

// OnDataBatch processes one replayed block with direct calls on the
// concrete controller.
func (t *TwoPhaseD) OnDataBatch(evs []trace.DataEvent) {
	for i := range evs {
		t.OnData(evs[i])
	}
}

// NewTwoPhaseD builds the phased controller.
func NewTwoPhaseD(geo cache.Config) *TwoPhaseD {
	return &TwoPhaseD{Cache: cache.New(geo), Stats: &stats.Counters{}}
}

// OnData performs a phased access.
func (t *TwoPhaseD) OnData(ev trace.DataEvent) {
	s := t.Stats
	s.Accesses++
	if ev.Store {
		s.Stores++
	} else {
		s.Loads++
	}
	s.ExtraCycles++ // serialized tag phase
	s.TagReads += uint64(t.Cache.Config().Ways)
	way, hit := t.Cache.Lookup(ev.Addr)
	if hit {
		s.Hits++
		if !ev.Store {
			s.WayReads++ // single way in phase two
		}
	} else {
		s.Misses++
		var evc cache.Eviction
		way, evc = t.Cache.Fill(ev.Addr)
		s.Refills++
		s.WayWrites++
		if evc.Dirty {
			s.WriteBacks++
		}
	}
	t.Cache.Touch(ev.Addr, way)
	if ev.Store {
		s.WayWrites++
		t.Cache.MarkDirty(ev.Addr, way)
	}
}

// WayPredictI is the MRU way-predicting I-cache of Inoue et al. [9]: probe
// the predicted way's tag and data only; on a misprediction, re-probe all
// ways with an extra cycle.
type WayPredictI struct {
	Cache *cache.Cache
	Stats *stats.Counters
	mru   []int8 // per-set predicted way
}

var (
	_ trace.FetchSink      = (*WayPredictI)(nil)
	_ trace.FetchBatchSink = (*WayPredictI)(nil)
)

// OnFetchBatch processes one replayed block with direct calls on the
// concrete controller.
func (w *WayPredictI) OnFetchBatch(evs []trace.FetchEvent) {
	for i := range evs {
		w.OnFetch(evs[i])
	}
}

// NewWayPredictI builds the way-predicting controller.
func NewWayPredictI(geo cache.Config) *WayPredictI {
	return &WayPredictI{
		Cache: cache.New(geo),
		Stats: &stats.Counters{},
		mru:   make([]int8, geo.Sets),
	}
}

// OnFetch probes the predicted way first.
func (w *WayPredictI) OnFetch(ev trace.FetchEvent) {
	s := w.Stats
	s.Accesses++
	s.Loads++
	geo := w.Cache.Config()
	if !ev.First {
		s.Flow[trace.Classify(ev, uint32(geo.LineBytes))]++
	}
	set := geo.Set(ev.Addr)
	pred := int(w.mru[set])
	s.TagReads++ // predicted way's tag
	s.WayReads++ // predicted way's data, in parallel
	if w.Cache.Present(ev.Addr, pred) {
		s.Hits++
		s.MABHits++ // reused counter: prediction hits
		w.Cache.Touch(ev.Addr, pred)
		return
	}
	// Misprediction: extra cycle, all remaining ways probed.
	s.MABMisses++
	s.ExtraCycles++
	s.TagReads += uint64(geo.Ways - 1)
	s.WayReads += uint64(geo.Ways - 1)
	way, hit := w.Cache.Lookup(ev.Addr)
	if hit {
		s.Hits++
	} else {
		s.Misses++
		var evc cache.Eviction
		way, evc = w.Cache.Fill(ev.Addr)
		s.Refills++
		s.WayWrites++
		if evc.Dirty {
			s.WriteBacks++
		}
	}
	w.Cache.Touch(ev.Addr, way)
	w.mru[set] = int8(way)
}

// MaLinksI is the link-based way memoization of Ma, Zhang & Asanović [11]:
// each cache line carries a sequential link (valid bit + way) to the line
// holding the next-sequential instructions, and branch links are kept in a
// small table keyed by the branch source line. Links are invalidated on
// refill. Reading the two link bits costs a little extra energy per access
// (modelled as BufReads).
type MaLinksI struct {
	Cache *cache.Cache
	Stats *stats.Counters

	seqValid []bool
	seqWay   []int8
	// branch links: source line index -> (target way), invalidated with
	// the target line's set when any line of that set is refilled.
	brValid  map[uint32]int8
	prevWay  int
	prevIdx  int
	havePrev bool
}

var (
	_ trace.FetchSink      = (*MaLinksI)(nil)
	_ trace.FetchBatchSink = (*MaLinksI)(nil)
)

// OnFetchBatch processes one replayed block with direct calls on the
// concrete controller.
func (m *MaLinksI) OnFetchBatch(evs []trace.FetchEvent) {
	for i := range evs {
		m.OnFetch(evs[i])
	}
}

// NewMaLinksI builds the link-based controller.
func NewMaLinksI(geo cache.Config) *MaLinksI {
	n := geo.Sets * geo.Ways
	m := &MaLinksI{
		Cache:    cache.New(geo),
		Stats:    &stats.Counters{},
		seqValid: make([]bool, n),
		seqWay:   make([]int8, n),
		brValid:  make(map[uint32]int8),
	}
	m.Cache.OnEvict = func(ev cache.Eviction) {
		// Ma et al. require a mechanism that invalidates links on a line
		// replacement (the overhead our paper's §2 calls out). The evicted
		// frame's outgoing sequential link dies here; branch links are
		// verified lazily at use and dropped when stale.
		m.seqValid[int(ev.Set)*geo.Ways+ev.Way] = false
	}
	return m
}

func (m *MaLinksI) frame(addr uint32) int {
	geo := m.Cache.Config()
	way, hit := m.Cache.Lookup(addr)
	if !hit {
		return -1
	}
	return int(geo.Set(addr))*geo.Ways + way
}

// OnFetch follows sequential or branch links when valid.
func (m *MaLinksI) OnFetch(ev trace.FetchEvent) {
	s := m.Stats
	s.Accesses++
	s.Loads++
	geo := m.Cache.Config()
	flow := trace.Classify(ev, uint32(geo.LineBytes))
	if !ev.First {
		s.Flow[flow]++
	}
	s.BufReads++ // the link bits read alongside each access
	if !ev.First && m.havePrev {
		switch flow {
		case trace.IntraSeq, trace.IntraNonSeq:
			// Same line: way known, no tag check (line cannot have left).
			s.Case1Skips++
			s.Hits++
			s.WayReads++
			m.Cache.Touch(ev.Addr, m.prevWay)
			return
		case trace.InterSeq:
			if m.seqValid[m.prevIdx] {
				way := int(m.seqWay[m.prevIdx])
				if m.Cache.Present(ev.Addr, way) {
					s.MABHits++ // link hits
					s.Hits++
					s.WayReads++
					m.Cache.Touch(ev.Addr, way)
					m.prevWay, m.prevIdx = way, m.frame(ev.Addr)
					return
				}
				m.seqValid[m.prevIdx] = false
			}
		case trace.InterNonSeq:
			lineKey := ev.Base >> uint(geo.OffsetBits())
			if way, ok := m.brValid[lineKey]; ok {
				if m.Cache.Present(ev.Addr, int(way)) {
					s.MABHits++
					s.Hits++
					s.WayReads++
					m.Cache.Touch(ev.Addr, int(way))
					m.prevWay, m.prevIdx = int(way), m.frame(ev.Addr)
					return
				}
				delete(m.brValid, lineKey)
			}
		}
	}
	// Full fetch, then install the appropriate link.
	s.MABMisses++
	way := fullFetch(m.Cache, s, ev)
	if m.havePrev && !ev.First {
		switch flow {
		case trace.InterSeq:
			if m.prevIdx >= 0 {
				m.seqValid[m.prevIdx] = true
				m.seqWay[m.prevIdx] = int8(way)
				s.BufWrites++ // link update
			}
		case trace.InterNonSeq:
			if ev.Kind == trace.KindBranch {
				m.brValid[ev.Base>>uint(geo.OffsetBits())] = int8(way)
				s.BufWrites++
			}
		}
	}
	m.prevWay, m.prevIdx = way, m.frame(ev.Addr)
	m.havePrev = true
}

// LineBufferD is the single line buffer of Su & Despain [13]: accesses to
// the most recently touched line are served from the buffer; a buffer miss
// costs one extra cycle before the main cache access.
type LineBufferD struct {
	Cache *cache.Cache
	Stats *stats.Counters

	bufValid bool
	bufLine  uint32
	bufDirty bool
	bufWay   int
}

var (
	_ trace.DataSink      = (*LineBufferD)(nil)
	_ trace.DataBatchSink = (*LineBufferD)(nil)
)

// OnDataBatch processes one replayed block with direct calls on the
// concrete controller.
func (b *LineBufferD) OnDataBatch(evs []trace.DataEvent) {
	for i := range evs {
		b.OnData(evs[i])
	}
}

// NewLineBufferD builds the line-buffer controller.
func NewLineBufferD(geo cache.Config) *LineBufferD {
	b := &LineBufferD{Cache: cache.New(geo), Stats: &stats.Counters{}}
	b.Cache.OnEvict = func(ev cache.Eviction) {
		if b.bufValid && b.Cache.Config().Set(b.bufLine) == ev.Set &&
			b.Cache.Config().Tag(b.bufLine) == ev.Tag {
			b.bufValid = false
			b.bufDirty = false
		}
	}
	return b
}

// OnData serves same-line accesses from the buffer.
func (b *LineBufferD) OnData(ev trace.DataEvent) {
	s := b.Stats
	geo := b.Cache.Config()
	line := geo.LineAddr(ev.Addr)
	s.Accesses++
	if ev.Store {
		s.Stores++
	} else {
		s.Loads++
	}
	s.BufReads++
	if b.bufValid && line == b.bufLine {
		s.BufHits++
		s.Hits++
		b.Cache.Touch(ev.Addr, b.bufWay)
		if ev.Store {
			s.BufWrites++
			b.bufDirty = true
			b.Cache.MarkDirty(ev.Addr, b.bufWay)
		}
		return
	}
	// Buffer miss: extra cycle ([13]'s documented performance cost), flush
	// the dirty buffered line, then a conventional access and re-latch.
	s.ExtraCycles++
	if b.bufValid && b.bufDirty {
		s.WayWrites++
		b.bufDirty = false
	}
	ev2 := ev
	way := fullDataAccess(b.Cache, s, ev2)
	b.bufValid = true
	b.bufLine = line
	b.bufWay = way
	b.bufDirty = ev.Store
	s.BufWrites++
	// Counter fixup: fullDataAccess already counted this access.
	s.Accesses--
	if ev.Store {
		s.Stores--
	} else {
		s.Loads--
	}
}
