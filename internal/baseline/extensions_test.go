package baseline

import (
	"math/rand"
	"testing"

	"waymemo/internal/cache"
	"waymemo/internal/trace"
)

func TestFilterCacheHitsAndPenalty(t *testing.T) {
	f := NewFilterCacheD(cache.Config{Sets: 8, Ways: 1, LineBytes: 32}, geo)
	f.OnData(dataEv(0x1000, false)) // L0 miss, L1 miss: 1 extra cycle
	f.OnData(dataEv(0x1004, false)) // L0 hit: free
	f.OnData(dataEv(0x1008, true))  // L0 hit store
	s := f.Stats
	if s.ExtraCycles != 1 {
		t.Fatalf("extra cycles = %d", s.ExtraCycles)
	}
	if s.BufHits != 2 {
		t.Fatalf("L0 hits = %d", s.BufHits)
	}
	// L0 hits touch no L1 arrays.
	if s.TagReads != 2 || s.WayReads != 2 {
		t.Fatalf("L1 activity: %+v", *s)
	}
}

func TestFilterCacheDirtyWriteThrough(t *testing.T) {
	f := NewFilterCacheD(cache.Config{Sets: 1, Ways: 1, LineBytes: 32}, geo)
	f.OnData(dataEv(0x1000, true)) // L0 fill + dirty
	ww := f.Stats.WayWrites
	f.OnData(dataEv(0x2000, false))  // displaces dirty L0 line -> L1 way write
	if f.Stats.WayWrites != ww+1+1 { // victim write + new L1... (miss refill)
		t.Fatalf("way writes %d -> %d", ww, f.Stats.WayWrites)
	}
}

func TestTwoPhaseSingleWay(t *testing.T) {
	p := NewTwoPhaseD(geo)
	p.OnData(dataEv(0x1000, false)) // miss
	p.OnData(dataEv(0x1004, false)) // hit: 2 tags, 1 way
	s := p.Stats
	if s.TagReads != 4 || s.WayReads != 1 {
		t.Fatalf("%+v", *s)
	}
	if s.ExtraCycles != 2 {
		t.Fatalf("every access must pay the phase penalty: %d", s.ExtraCycles)
	}
}

func TestWayPredictMRU(t *testing.T) {
	w := NewWayPredictI(geo)
	ev := trace.FetchEvent{Addr: 0x1000, First: true}
	w.OnFetch(ev) // cold miss: mispredict + fill
	w.OnFetch(trace.FetchEvent{Addr: 0x1000, Prev: 0x1000, Kind: trace.KindBranch})
	s := w.Stats
	if s.MABHits != 1 { // second access predicted correctly
		t.Fatalf("prediction hits = %d", s.MABHits)
	}
	// Conflicting line in the same set flips the MRU way.
	w.OnFetch(trace.FetchEvent{Addr: 0x1000 + 1<<14, Prev: 0x1000, Kind: trace.KindBranch})
	if s.ExtraCycles != 2 { // cold + conflict mispredictions
		t.Fatalf("extra cycles = %d", s.ExtraCycles)
	}
	// Predicted accesses read exactly one tag and one way.
	w.OnFetch(trace.FetchEvent{Addr: 0x1000 + 1<<14, Prev: 0x1000, Kind: trace.KindBranch})
	perAccess := float64(s.TagReads) / float64(s.Accesses)
	if perAccess >= 2 {
		t.Fatalf("tags/access = %f", perAccess)
	}
}

func TestMaLinksSequentialAndBranch(t *testing.T) {
	m := NewMaLinksI(geo)
	// Two passes over three consecutive lines with a back branch.
	run := func() {
		prev := uint32(0)
		first := !m.havePrev
		for p := 0; p < 12; p++ { // 12 packets = 3 lines
			addr := uint32(0x4000 + 8*p)
			kind := trace.KindSeq
			var base uint32
			var disp int32
			if p == 0 && !first {
				kind, base, disp = trace.KindBranch, prev+4, int32(0x4000)-int32(prev+4)
			} else {
				base, disp = prev, 8
			}
			m.OnFetch(trace.FetchEvent{Addr: addr, Prev: prev, Kind: kind,
				Base: base, Disp: disp, First: first && p == 0})
			prev = addr
		}
	}
	run()
	firstPassHits := m.Stats.MABHits
	if firstPassHits != 0 {
		t.Fatalf("links hit before being installed: %d", firstPassHits)
	}
	run()
	// Second pass: the two line crossings follow the sequential links
	// installed in pass one; the back branch installs its link now.
	if m.Stats.MABHits != 2 {
		t.Fatalf("pass-2 link hits = %d, want 2", m.Stats.MABHits)
	}
	run()
	// Third pass: both crossings and the branch link hit.
	if m.Stats.MABHits != 2+3 {
		t.Fatalf("pass-3 link hits = %d, want 5", m.Stats.MABHits)
	}
	if m.Stats.Violations != 0 {
		t.Fatalf("violations: %d", m.Stats.Violations)
	}
}

func TestMaLinksInvalidationOnEvict(t *testing.T) {
	small := cache.Config{Sets: 2, Ways: 1, LineBytes: 32}
	m := NewMaLinksI(small)
	// Build a sequential link 0x0->0x20, then evict 0x0 via a conflicting
	// line; the link must not fire afterwards.
	m.OnFetch(trace.FetchEvent{Addr: 0x00, First: true})
	m.OnFetch(trace.FetchEvent{Addr: 0x08, Prev: 0x00, Kind: trace.KindSeq, Base: 0x00, Disp: 8})
	m.OnFetch(trace.FetchEvent{Addr: 0x20, Prev: 0x18, Kind: trace.KindSeq, Base: 0x18, Disp: 8})
	m.OnFetch(trace.FetchEvent{Addr: 0x40, Prev: 0x20, Kind: trace.KindBranch, Base: 0x20, Disp: 0x20}) // evicts 0x00 (set 0, 1-way)
	hits := m.Stats.MABHits
	m.OnFetch(trace.FetchEvent{Addr: 0x00, Prev: 0x40, Kind: trace.KindBranch, Base: 0x40, Disp: -0x40})
	m.OnFetch(trace.FetchEvent{Addr: 0x20, Prev: 0x00, Kind: trace.KindSeq, Base: 0x18, Disp: 8})
	_ = hits // the re-install path must not crash and stays consistent
	if m.Stats.Violations != 0 {
		t.Fatalf("violations: %d", m.Stats.Violations)
	}
}

func TestLineBufferD(t *testing.T) {
	b := NewLineBufferD(geo)
	b.OnData(dataEv(0x1000, false)) // buffer miss + cache miss
	b.OnData(dataEv(0x1004, false)) // buffer hit
	b.OnData(dataEv(0x1008, true))  // buffer hit store
	s := b.Stats
	if s.BufHits != 2 || s.ExtraCycles != 1 {
		t.Fatalf("%+v", *s)
	}
	if s.Accesses != 3 {
		t.Fatalf("accesses = %d", s.Accesses)
	}
	ww := s.WayWrites
	b.OnData(dataEv(0x2000, false)) // dirty buffer flushes
	if s.WayWrites != ww+1+1 {
		t.Fatalf("flush: %d -> %d", ww, s.WayWrites)
	}
}

func TestLineBufferEvictCoherence(t *testing.T) {
	small := cache.Config{Sets: 2, Ways: 1, LineBytes: 32}
	b := NewLineBufferD(small)
	b.OnData(dataEv(0x00, false))
	b.OnData(dataEv(0x40, false)) // evicts 0x00 and its buffered copy
	hits := b.Stats.BufHits
	b.OnData(dataEv(0x04, false))
	if b.Stats.BufHits != hits {
		t.Fatal("buffer served an evicted line")
	}
}

// TestExtensionsAgreeFunctionally: every extension sees the same underlying
// miss stream (modulo the filter cache, which changes L1 traffic by
// design).
func TestExtensionsAgreeFunctionally(t *testing.T) {
	o := NewOriginalD(geo)
	tp := NewTwoPhaseD(geo)
	lb := NewLineBufferD(geo)
	r := rand.New(rand.NewSource(21))
	for i := 0; i < 50000; i++ {
		addr := uint32(0x100000 + r.Intn(1<<15)&^3)
		ev := dataEv(addr, r.Intn(4) == 0)
		o.OnData(ev)
		tp.OnData(ev)
		lb.OnData(ev)
	}
	if o.Stats.Hits != tp.Stats.Hits || o.Stats.Misses != tp.Stats.Misses {
		t.Fatalf("two-phase diverged: %d/%d vs %d/%d",
			tp.Stats.Hits, tp.Stats.Misses, o.Stats.Hits, o.Stats.Misses)
	}
	if o.Stats.Hits != lb.Stats.Hits || o.Stats.Misses != lb.Stats.Misses {
		t.Fatalf("line buffer diverged: %d/%d vs %d/%d",
			lb.Stats.Hits, lb.Stats.Misses, o.Stats.Hits, o.Stats.Misses)
	}
	// Two-phase must use strictly fewer way reads than the original.
	if tp.Stats.WayReads >= o.Stats.WayReads {
		t.Fatal("two-phase saved no way reads")
	}
}
