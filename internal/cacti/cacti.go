// Package cacti is a small analytical SRAM energy model in the spirit of
// CACTI, standing in for the SPICE characterization the paper used to obtain
// E_way and E_tag (the per-event energies in Equation (1)).
//
// An array access is decomposed into decoder, wordline, bitline
// precharge+swing, sense amplifiers and output drivers. Constants target a
// 0.13µm / 1.3V process, calibrated so a 32KB 2-way cache lands in the
// paper's reported power range (tens of mW at 360MHz including leakage).
// Absolute joules are not the point — the figures of the paper are driven by
// the ratio of way, tag, and buffer energies, which the structural terms
// capture.
package cacti

import "waymemo/internal/cache"

// Tech holds process parameters.
type Tech struct {
	Vdd         float64 // supply voltage (V)
	BitSwing    float64 // read bitline swing (V)
	CCellFF     float64 // bitline capacitance per cell (fF)
	CWLPerColFF float64 // wordline capacitance per column (fF)
	ESenseAmpPJ float64 // energy per sense amplifier firing (pJ)
	EOutBitPJ   float64 // output driver energy per bit (pJ)
	EDecodePJ   float64 // row decoder energy per access (pJ)
	ECmpBitPJ   float64 // tag comparator energy per bit (pJ)
	ERegBitPJ   float64 // register-file style storage access energy per bit (pJ)
	LeakNWBit   float64 // leakage per storage bit (nW)
}

// Tech130 is the paper's 0.13µm, 1.3V process.
var Tech130 = Tech{
	Vdd:         1.3,
	BitSwing:    0.35,
	CCellFF:     2.0,
	CWLPerColFF: 3.0,
	ESenseAmpPJ: 0.06,
	EOutBitPJ:   0.045,
	EDecodePJ:   2.0,
	ECmpBitPJ:   0.03,
	ERegBitPJ:   0.018,
	LeakNWBit:   9.0,
}

// Energies is the per-event energy set for one cache, consumed by the power
// model.
type Energies struct {
	// EWayPJ is the energy of activating one data way for one access
	// (read or write of the fetch/load width through the way's subarray).
	EWayPJ float64
	// ETagPJ is the energy of reading and comparing one tag way.
	ETagPJ float64
	// EFillPJ is the energy of writing a full refill line into one way.
	EFillPJ float64
	// LeakMW is the standing leakage of data+tag arrays in milliwatts.
	LeakMW float64
}

// readBitsDefault is the width delivered per access: one 8-byte VLIW packet
// or one load/store word pair.
const readBitsDefault = 64

// ArrayEnergies computes the energy set for a cache geometry under t.
func ArrayEnergies(t Tech, geo cache.Config) Energies {
	rows := float64(geo.Sets)
	lineBits := float64(geo.LineBytes * 8)
	tagBits := float64(geo.TagBits() + 1) // tag + valid

	// One bitline pair: precharge + controlled swing.
	cBL := rows * t.CCellFF * 1e-15 // F
	eBLReadPJ := cBL * t.BitSwing * t.Vdd * 1e12

	// Data way read: all line bitlines swing, selected columns sense, the
	// access width drives out.
	eWay := lineBits*eBLReadPJ +
		lineBits*t.CWLPerColFF*1e-15*t.Vdd*t.Vdd*1e12 + // wordline
		readBitsDefault*t.ESenseAmpPJ +
		readBitsDefault*t.EOutBitPJ +
		t.EDecodePJ

	// Tag way read: narrow array plus the comparator.
	eTag := tagBits*eBLReadPJ +
		tagBits*t.CWLPerColFF*1e-15*t.Vdd*t.Vdd*1e12 +
		tagBits*t.ESenseAmpPJ +
		t.EDecodePJ*0.6 + // shorter decoder
		tagBits*t.ECmpBitPJ

	// Refill: full-rail write of every line bit, beat by beat.
	eFill := lineBits*cBL*t.Vdd*t.Vdd*1e12 + 4*t.EDecodePJ

	// Leakage across data and tag bits of all ways.
	bits := float64(geo.Sets*geo.Ways) * (lineBits + tagBits)
	leakMW := bits * t.LeakNWBit * 1e-6

	return Energies{EWayPJ: eWay, ETagPJ: eTag, EFillPJ: eFill, LeakMW: leakMW}
}

// BufferEnergies models a small fully-associative line/set buffer built from
// registers (used for the [14] set buffer and the [13]/[6] line and filter
// buffers): read and write energy for one line-wide entry plus its tag
// comparator.
type BufferEnergies struct {
	EReadPJ  float64 // read one buffered line's access width + compare
	EWritePJ float64 // latch one line into the buffer
	LeakMW   float64
}

// LineBuffer computes buffer energies for entries of lineBytes each.
func LineBuffer(t Tech, entries, lineBytes, tagBits int) BufferEnergies {
	lineBits := float64(lineBytes * 8)
	cmp := float64(tagBits) * t.ECmpBitPJ * float64(entries)
	return BufferEnergies{
		EReadPJ:  readBitsDefault*t.ERegBitPJ + cmp,
		EWritePJ: lineBits * t.ERegBitPJ,
		LeakMW:   float64(entries) * (lineBits + float64(tagBits)) * t.LeakNWBit * 1e-6,
	}
}
