package cacti

import (
	"testing"

	"waymemo/internal/cache"
)

func TestFRV32KEnergies(t *testing.T) {
	e := ArrayEnergies(Tech130, cache.FRV32K)
	// Way access must dwarf a tag access (wide vs 19-bit array) — the
	// asymmetry behind the paper's savings split.
	if e.EWayPJ < 5*e.ETagPJ {
		t.Errorf("EWay %.1f / ETag %.1f: ratio too small", e.EWayPJ, e.ETagPJ)
	}
	// Sanity band: tens-to-hundreds of pJ per way access in 0.13µm.
	if e.EWayPJ < 30 || e.EWayPJ > 500 {
		t.Errorf("EWay = %.1f pJ out of plausible band", e.EWayPJ)
	}
	if e.ETagPJ < 2 || e.ETagPJ > 50 {
		t.Errorf("ETag = %.1f pJ out of plausible band", e.ETagPJ)
	}
	// Refilling a whole line costs more than one access.
	if e.EFillPJ <= e.EWayPJ {
		t.Errorf("EFill %.1f <= EWay %.1f", e.EFillPJ, e.EWayPJ)
	}
	// Leakage: a few mW for 32KB + tags at 0.13µm.
	if e.LeakMW < 0.5 || e.LeakMW > 10 {
		t.Errorf("leak = %.2f mW out of band", e.LeakMW)
	}
}

func TestEnergyScalesWithGeometry(t *testing.T) {
	small := ArrayEnergies(Tech130, cache.Config{Sets: 128, Ways: 2, LineBytes: 32})
	big := ArrayEnergies(Tech130, cache.FRV32K)
	if small.EWayPJ >= big.EWayPJ {
		t.Error("shorter bitlines should cost less")
	}
	if small.LeakMW >= big.LeakMW {
		t.Error("smaller array should leak less")
	}
	wide := ArrayEnergies(Tech130, cache.Config{Sets: 512, Ways: 2, LineBytes: 64})
	if wide.EWayPJ <= big.EWayPJ {
		t.Error("wider lines should cost more per way access")
	}
}

func TestLineBuffer(t *testing.T) {
	b := LineBuffer(Tech130, 2, 32, 18)
	e := ArrayEnergies(Tech130, cache.FRV32K)
	// The point of buffers: far cheaper than a way access.
	if b.EReadPJ >= e.EWayPJ/3 {
		t.Errorf("buffer read %.1f pJ not cheap vs way %.1f pJ", b.EReadPJ, e.EWayPJ)
	}
	if b.EWritePJ <= 0 || b.LeakMW <= 0 {
		t.Error("zero buffer costs")
	}
	if four := LineBuffer(Tech130, 4, 32, 18); four.LeakMW <= b.LeakMW {
		t.Error("more entries should leak more")
	}
}
