package sim

import (
	"math"
	"strings"
	"testing"

	"waymemo/internal/asm"
)

// Full-ISA coverage: every instruction produces its architected result.

func TestShiftVariable(t *testing.T) {
	c := run(t, `
		.org 0x10000
		li  t0, 0xF0      ; value
		li  t1, 4         ; amount
		sllv t2, t0, t1   ; 0xF00
		srlv t3, t2, t1   ; 0xF0
		li  t4, -256
		srav t5, t4, t1   ; -16
		halt
	`)
	if c.Regs[9] != 0xF00 || c.Regs[10] != 0xF0 || c.Regs[12] != 0xFFFFFFF0 {
		t.Fatalf("shifts: %#x %#x %#x", c.Regs[9], c.Regs[10], c.Regs[12])
	}
}

func TestShiftAmountMasking(t *testing.T) {
	// Variable shifts use only the low 5 bits of rs.
	c := run(t, `
		.org 0x10000
		li  t0, 33
		li  t1, 1
		sllv t2, t1, t0   ; value 1 << (33&31) = 2
		halt
	`)
	if c.Regs[9] != 2 {
		t.Fatalf("sllv masking: %d", c.Regs[9])
	}
}

func TestUnsignedImmediates(t *testing.T) {
	// andi/ori/xori zero-extend their immediates.
	c := run(t, `
		.org 0x10000
		li   t0, -1
		andi t1, t0, 0xFF00   ; 0x0000FF00
		ori  t2, zero, 0x8000 ; 0x00008000 (not sign extended)
		xori t3, t0, 0xFFFF   ; 0xFFFF0000
		halt
	`)
	if c.Regs[8] != 0xFF00 || c.Regs[9] != 0x8000 || c.Regs[10] != 0xFFFF0000 {
		t.Fatalf("%#x %#x %#x", c.Regs[8], c.Regs[9], c.Regs[10])
	}
}

func TestSetLessThanImmediates(t *testing.T) {
	c := run(t, `
		.org 0x10000
		li    t0, -5
		slti  t1, t0, -4     ; 1
		slti  t2, t0, -6     ; 0
		sltiu t3, t0, -4     ; 1 (0xFFFFFFFB < 0xFFFFFFFC)
		sltiu t4, t0, 3      ; 0
		halt
	`)
	want := map[int]uint32{8: 1, 9: 0, 10: 1, 11: 0}
	for r, v := range want {
		if c.Regs[r] != v {
			t.Fatalf("r%d = %d want %d", r, c.Regs[r], v)
		}
	}
}

func TestMulhVariants(t *testing.T) {
	c := run(t, `
		.org 0x10000
		li    t0, -2
		li    t1, 3
		mulh  t2, t0, t1   ; high of -6 = -1
		mulhu t3, t0, t1   ; high of 0xFFFFFFFE*3 = 2
		halt
	`)
	if c.Regs[9] != 0xFFFFFFFF || c.Regs[10] != 2 {
		t.Fatalf("mulh=%#x mulhu=%#x", c.Regs[9], c.Regs[10])
	}
}

func TestDivMinByMinusOne(t *testing.T) {
	// INT_MIN / -1 wraps to INT_MIN (no trap), remainder 0.
	c := run(t, `
		.org 0x10000
		li  t0, 0x80000000
		li  t1, -1
		div t2, t0, t1
		rem t3, t0, t1
		halt
	`)
	if c.Regs[9] != 0x80000000 || c.Regs[10] != 0 {
		t.Fatalf("div=%#x rem=%#x", c.Regs[9], c.Regs[10])
	}
}

func TestJALRExplicitRd(t *testing.T) {
	c := run(t, `
		.org 0x10000
		la   t0, fn
		jalr s0, t0       ; link into s0
		halt
	fn:	move s1, s0
		jr   s0
	`)
	// la expands to two instructions, so jalr sits at 0x10008 and its link
	// value is 0x1000c.
	if c.Regs[18] != 0x1000c {
		t.Fatalf("s1 = %#x", c.Regs[18])
	}
}

func TestBranchVariants(t *testing.T) {
	c := run(t, `
		.org 0x10000
		li   t0, -1
		li   t1, 1
		li   s0, 0
		bltu t1, t0, L1   ; 1 < 0xFFFFFFFF unsigned: taken
		halt
	L1:	ori  s0, s0, 1
		bgeu t0, t1, L2   ; taken
		halt
	L2:	ori  s0, s0, 2
		bge  t1, t0, L3   ; 1 >= -1 signed: taken
		halt
	L3:	ori  s0, s0, 4
		blt  t0, t1, L4   ; taken
		halt
	L4:	ori  s0, s0, 8
		halt
	`)
	if c.Regs[17] != 15 {
		t.Fatalf("branch mask = %d", c.Regs[17])
	}
}

func TestFloatUnaries(t *testing.T) {
	c := run(t, `
		.org 0x10000
		la   t0, k
		fld  f1, 0(t0)
		fabs f2, f1
		fneg f3, f1
		fmov f4, f3
		fcle t1, f1, f2
		halt
		.align 8
	k:	.double -2.25
	`)
	if c.FRegs[2] != 2.25 || c.FRegs[3] != 2.25 || c.FRegs[4] != 2.25 {
		t.Fatalf("%v %v %v", c.FRegs[2], c.FRegs[3], c.FRegs[4])
	}
	if c.Regs[8] != 1 {
		t.Fatalf("fcle = %d", c.Regs[8])
	}
}

func TestFcvtClamping(t *testing.T) {
	c := New()
	c.FRegs[1] = math.NaN()
	c.FRegs[2] = 1e300
	c.FRegs[3] = -1e300
	if clampToInt32(c.FRegs[1]) != 0 {
		t.Error("NaN clamp")
	}
	if clampToInt32(c.FRegs[2]) != math.MaxInt32 {
		t.Error("overflow clamp")
	}
	if clampToInt32(c.FRegs[3]) != math.MinInt32 {
		t.Error("underflow clamp")
	}
}

func TestUnalignedLoadTraps(t *testing.T) {
	p := mustProg(t, `
		.org 0x10000
		li  t0, 0x100001
		lw  t1, 0(t0)
		halt
	`)
	c := New()
	c.LoadProgram(p, stackTop)
	if err := c.Run(10); err == nil || !strings.Contains(err.Error(), "unaligned") {
		t.Fatalf("err = %v", err)
	}
}

func TestIllegalOpcodeTraps(t *testing.T) {
	p := mustProg(t, `
		.org 0x10000
		.word 0x7C000000   ; opcode 0x1F: unassigned
	`)
	c := New()
	c.LoadProgram(p, stackTop)
	// The .word is data, so there is no text range; force PC to it.
	c.PC = 0x10000
	if err := c.Run(10); err == nil || !strings.Contains(err.Error(), "illegal opcode") {
		t.Fatalf("err = %v", err)
	}
}

func TestUnalignedPCTraps(t *testing.T) {
	p := mustProg(t, `
		.org 0x10000
		li  t0, 0x10002
		jr  t0
		halt
	`)
	c := New()
	c.LoadProgram(p, stackTop)
	if err := c.Run(10); err == nil || !strings.Contains(err.Error(), "unaligned PC") {
		t.Fatalf("err = %v", err)
	}
}

func TestStepAfterHaltIsNoop(t *testing.T) {
	c := run(t, `
		.org 0x10000
		halt
	`)
	pc, instrs := c.PC, c.Instrs
	if err := c.Step(); err != nil {
		t.Fatal(err)
	}
	if c.PC != pc || c.Instrs != instrs {
		t.Fatal("halted CPU advanced")
	}
}

func TestPacketBytesOverride(t *testing.T) {
	src := `
		.org 0x10000
		nop
		nop
		nop
		nop
		halt
	`
	wide := New()
	wide.PacketBytes = 16
	wide.LoadProgram(mustProg(t, src), stackTop)
	if err := wide.Run(100); err != nil {
		t.Fatal(err)
	}
	narrow := New()
	narrow.PacketBytes = 4
	narrow.LoadProgram(mustProg(t, src), stackTop)
	if err := narrow.Run(100); err != nil {
		t.Fatal(err)
	}
	if wide.Cycles >= narrow.Cycles {
		t.Fatalf("packet width had no effect: %d vs %d", wide.Cycles, narrow.Cycles)
	}
}

func mustProg(t *testing.T, src string) *asm.Program {
	t.Helper()
	p, err := asm.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	return p
}
