package sim

// RV32CPU is the RV32IM core: the second ISA frontend behind the trace
// interface. It emits the same FetchEvent/DataEvent streams as the FRVL CPU
// — the trace contract is what makes everything above internal/trace
// frontend-independent — but fetches 4-byte packets by default (one
// instruction per cycle) instead of FRVL's 8-byte VLIW packet.

import (
	"context"
	"fmt"
	"math"
	"sync"

	"waymemo/internal/asm"
	"waymemo/internal/isa/rv32"
	"waymemo/internal/mem"
	"waymemo/internal/trace"
)

// RV32CPU is one RV32IM core with its memory.
type RV32CPU struct {
	Mem  *mem.Memory
	Regs [rv32.NumRegs]uint32
	PC   uint32

	// Halted is set by ebreak and by the exit ecall (a7=93).
	Halted bool
	// Console accumulates bytes written by the putchar ecall (a7=1).
	Console []byte

	// Fetch receives instruction-cache accesses; Data receives data-cache
	// accesses. Either may be nil.
	Fetch trace.FetchSink
	Data  trace.DataSink

	// Instrs counts executed instructions; Cycles counts fetch packets.
	Instrs uint64
	Cycles uint64

	// PacketBytes overrides the fetch packet size for ablation studies;
	// zero selects rv32.PacketBytes (4). Must be a power of two ≥ 4.
	PacketBytes uint32

	// Fetch-packet state.
	curPacket  uint32
	havePacket bool
	pendKind   trace.ControlKind
	pendBase   uint32
	pendDisp   int32
	pendValid  bool

	// Decoded-text fast path. Undecodable words carry Op 0 (no valid RV32
	// instruction has major opcode 0), so execution reports them lazily.
	textBase   uint32
	decoded    []rv32.Instr
	textRanges [][2]uint32
}

// NewRV32 returns an RV32CPU with a fresh memory.
func NewRV32() *RV32CPU {
	return &RV32CPU{Mem: mem.New()}
}

// rv32PredecodeCache memoizes the per-program decode, exactly like the FRVL
// predecodeCache: workloads.Build returns one *asm.Program per workload per
// process, so keying on the pointer shares the table across runs.
var rv32PredecodeCache sync.Map // *asm.Program -> *RV32Predecoded

// RV32Predecoded is the immutable decode of a program's text segment.
type RV32Predecoded struct {
	base   uint32
	instrs []rv32.Instr
	ranges [][2]uint32
}

// PredecodeRV32 decodes the program's text ranges into a shared PC-indexed
// instruction table, memoized per *asm.Program.
func PredecodeRV32(p *asm.Program) *RV32Predecoded {
	if v, ok := rv32PredecodeCache.Load(p); ok {
		return v.(*RV32Predecoded)
	}
	d := predecodeRV32(p)
	v, _ := rv32PredecodeCache.LoadOrStore(p, d)
	return v.(*RV32Predecoded)
}

func predecodeRV32(p *asm.Program) *RV32Predecoded {
	d := &RV32Predecoded{ranges: p.TextRanges}
	if len(p.TextRanges) == 0 {
		return d
	}
	lo, hi := p.TextRanges[0][0], p.TextRanges[0][1]
	for _, r := range p.TextRanges[1:] {
		if r[0] < lo {
			lo = r[0]
		}
		if r[1] > hi {
			hi = r[1]
		}
	}
	if hi-lo > 1<<24 { // refuse absurd spans
		return d
	}
	m := mem.New()
	for _, seg := range p.Segments {
		m.LoadImage(seg.Addr, seg.Data)
	}
	d.base = lo
	d.instrs = make([]rv32.Instr, (hi-lo)/rv32.Word)
	for a := lo; a < hi; a += rv32.Word {
		if in, ok := rv32.Decode(m.ReadWord(a)); ok {
			d.instrs[(a-lo)/rv32.Word] = in
		}
	}
	return d
}

// LoadProgram loads an assembled program image and attaches the shared
// predecoded instruction table. The PC is set to the program entry and the
// stack pointer to sp.
func (c *RV32CPU) LoadProgram(p *asm.Program, sp uint32) {
	if c.Mem == nil {
		c.Mem = mem.New()
	}
	for _, seg := range p.Segments {
		c.Mem.LoadImage(seg.Addr, seg.Data)
	}
	c.PC = p.Entry
	c.Regs[rv32.RegSP] = sp
	d := PredecodeRV32(p)
	c.textBase = d.base
	c.decoded = d.instrs
	c.textRanges = d.ranges
}

// AsCPU returns an FRVL-shaped view of the machine state — memory, console,
// counters — so the Go reference Check functions, which only inspect memory
// and symbols, validate RV32 runs through the same signature they validate
// FRVL runs.
func (c *RV32CPU) AsCPU() *CPU {
	return &CPU{
		Mem:     c.Mem,
		Console: c.Console,
		PC:      c.PC,
		Halted:  c.Halted,
		Instrs:  c.Instrs,
		Cycles:  c.Cycles,
	}
}

func (c *RV32CPU) decode(pc uint32) (rv32.Instr, bool) {
	if c.decoded != nil {
		idx := (pc - c.textBase) / rv32.Word
		if pc >= c.textBase && int(idx) < len(c.decoded) {
			in := c.decoded[idx]
			return in, in.Op != 0
		}
	}
	return rv32.Decode(c.Mem.ReadWord(pc))
}

func (c *RV32CPU) inText(addr uint32) bool {
	for _, r := range c.textRanges {
		if addr >= r[0] && addr < r[1] {
			return true
		}
	}
	return false
}

// fetchPacket emits a fetch event when the packet address changes,
// classified by how control arrived — the identical protocol to the FRVL
// CPU's fetchPacket, which is what keeps captures from the two frontends
// interchangeable above the trace layer.
func (c *RV32CPU) fetchPacket() {
	pb := c.PacketBytes
	if pb == 0 {
		pb = rv32.PacketBytes
	}
	packet := c.PC &^ (pb - 1)
	if c.havePacket && packet == c.curPacket {
		c.pendValid = false
		return
	}
	ev := trace.FetchEvent{
		Addr:  packet,
		Prev:  c.curPacket,
		First: !c.havePacket,
	}
	if c.pendValid {
		ev.Kind = c.pendKind
		ev.Base = c.pendBase
		ev.Disp = c.pendDisp
	} else {
		ev.Kind = trace.KindSeq
		ev.Base = c.curPacket
		ev.Disp = int32(pb)
	}
	c.pendValid = false
	c.curPacket = packet
	c.havePacket = true
	c.Cycles++
	if c.Fetch != nil {
		c.Fetch.OnFetch(ev)
	}
}

func (c *RV32CPU) pend(kind trace.ControlKind, base uint32, disp int32) {
	c.pendKind, c.pendBase, c.pendDisp, c.pendValid = kind, base, disp, true
}

func (c *RV32CPU) setReg(r uint8, v uint32) {
	if r != rv32.RegZero {
		c.Regs[r] = v
	}
}

// Step executes one instruction.
func (c *RV32CPU) Step() error {
	if c.Halted {
		return nil
	}
	if c.PC%rv32.Word != 0 {
		return fmt.Errorf("sim: unaligned PC 0x%x", c.PC)
	}
	c.fetchPacket()
	in, ok := c.decode(c.PC)
	if !ok {
		return fmt.Errorf("sim: pc=0x%x: illegal instruction 0x%08x", c.PC, c.Mem.ReadWord(c.PC))
	}
	nextPC := c.PC + rv32.Word
	switch in.Op {
	case rv32.OpLUI:
		c.setReg(in.Rd, uint32(in.Imm))
	case rv32.OpAUIPC:
		c.setReg(in.Rd, c.PC+uint32(in.Imm))
	case rv32.OpJAL:
		c.setReg(in.Rd, c.PC+rv32.Word)
		nextPC = c.PC + uint32(in.Imm)
		c.pend(trace.KindBranch, c.PC, in.Imm)
	case rv32.OpJALR:
		// Target before link write: rd may alias rs1.
		target := (c.Regs[in.Rs1] + uint32(in.Imm)) &^ 1
		c.setReg(in.Rd, c.PC+rv32.Word)
		kind := trace.KindIndirect
		if in.Rs1 == rv32.RegRA {
			kind = trace.KindLink
		}
		c.pend(kind, target, 0)
		nextPC = target
	case rv32.OpBranch:
		if c.branchTaken(in) {
			nextPC = c.PC + uint32(in.Imm)
			c.pend(trace.KindBranch, c.PC, in.Imm)
		}
	case rv32.OpLoad, rv32.OpStore:
		if err := c.execMem(in); err != nil {
			return fmt.Errorf("sim: pc=0x%x %s: %w", c.PC, rv32.Disassemble(in, c.PC), err)
		}
	case rv32.OpOpImm:
		c.setReg(in.Rd, c.aluImm(in))
	case rv32.OpOp:
		c.setReg(in.Rd, c.alu(in))
	case rv32.OpSystem:
		if err := c.execSystem(in); err != nil {
			return fmt.Errorf("sim: pc=0x%x: %w", c.PC, err)
		}
	default:
		return fmt.Errorf("sim: pc=0x%x: illegal opcode 0x%x", c.PC, in.Op)
	}
	c.Instrs++
	if !c.Halted {
		c.PC = nextPC
	}
	return nil
}

func (c *RV32CPU) branchTaken(in rv32.Instr) bool {
	a, b := c.Regs[in.Rs1], c.Regs[in.Rs2]
	switch in.F3 {
	case rv32.F3BEQ:
		return a == b
	case rv32.F3BNE:
		return a != b
	case rv32.F3BLT:
		return int32(a) < int32(b)
	case rv32.F3BGE:
		return int32(a) >= int32(b)
	case rv32.F3BLTU:
		return a < b
	case rv32.F3BGEU:
		return a >= b
	}
	return false
}

func (c *RV32CPU) aluImm(in rv32.Instr) uint32 {
	rs1 := c.Regs[in.Rs1]
	switch in.F3 {
	case rv32.F3ADD:
		return rs1 + uint32(in.Imm)
	case rv32.F3SLL:
		return rs1 << uint32(in.Imm&31)
	case rv32.F3SLT:
		return b2u(int32(rs1) < in.Imm)
	case rv32.F3SLTU:
		return b2u(rs1 < uint32(in.Imm))
	case rv32.F3XOR:
		return rs1 ^ uint32(in.Imm)
	case rv32.F3SR:
		if in.F7 == rv32.F7Sub {
			return uint32(int32(rs1) >> uint32(in.Imm&31))
		}
		return rs1 >> uint32(in.Imm&31)
	case rv32.F3OR:
		return rs1 | uint32(in.Imm)
	default: // F3AND
		return rs1 & uint32(in.Imm)
	}
}

// alu executes the register-register group, including the M extension.
// RISC-V divide never traps: division by zero yields all-ones (quotient) or
// the dividend (remainder), and the signed overflow case wraps.
func (c *RV32CPU) alu(in rv32.Instr) uint32 {
	rs1, rs2 := c.Regs[in.Rs1], c.Regs[in.Rs2]
	if in.F7 == rv32.F7Mul {
		switch in.F3 {
		case rv32.F3MUL:
			return rs1 * rs2
		case rv32.F3MULH:
			return uint32(uint64(int64(int32(rs1))*int64(int32(rs2))) >> 32)
		case rv32.F3MULHSU:
			return uint32(uint64(int64(int32(rs1))*int64(rs2)) >> 32)
		case rv32.F3MULHU:
			return uint32(uint64(rs1) * uint64(rs2) >> 32)
		case rv32.F3DIV:
			switch {
			case rs2 == 0:
				return ^uint32(0)
			case int32(rs1) == math.MinInt32 && int32(rs2) == -1:
				return rs1
			}
			return uint32(int32(rs1) / int32(rs2))
		case rv32.F3DIVU:
			if rs2 == 0 {
				return ^uint32(0)
			}
			return rs1 / rs2
		case rv32.F3REM:
			switch {
			case rs2 == 0:
				return rs1
			case int32(rs1) == math.MinInt32 && int32(rs2) == -1:
				return 0
			}
			return uint32(int32(rs1) % int32(rs2))
		default: // F3REMU
			if rs2 == 0 {
				return rs1
			}
			return rs1 % rs2
		}
	}
	switch in.F3 {
	case rv32.F3ADD:
		if in.F7 == rv32.F7Sub {
			return rs1 - rs2
		}
		return rs1 + rs2
	case rv32.F3SLL:
		return rs1 << (rs2 & 31)
	case rv32.F3SLT:
		return b2u(int32(rs1) < int32(rs2))
	case rv32.F3SLTU:
		return b2u(rs1 < rs2)
	case rv32.F3XOR:
		return rs1 ^ rs2
	case rv32.F3SR:
		if in.F7 == rv32.F7Sub {
			return uint32(int32(rs1) >> (rs2 & 31))
		}
		return rs1 >> (rs2 & 31)
	case rv32.F3OR:
		return rs1 | rs2
	default: // F3AND
		return rs1 & rs2
	}
}

func (c *RV32CPU) execMem(in rv32.Instr) error {
	base := c.Regs[in.Rs1]
	addr := base + uint32(in.Imm)
	size := uint8(in.MemBytes())
	if addr%uint32(size) != 0 {
		return fmt.Errorf("unaligned %d-byte access at 0x%x", size, addr)
	}
	store := in.IsStore()
	if store && c.inText(addr) {
		return fmt.Errorf("store into text at 0x%x (self-modifying code is not supported)", addr)
	}
	if c.Data != nil {
		c.Data.OnData(trace.DataEvent{
			Addr: addr, Base: base, Disp: in.Imm, Store: store, Size: size,
		})
	}
	if store {
		switch in.F3 {
		case 0:
			c.Mem.StoreByte(addr, byte(c.Regs[in.Rs2]))
		case 1:
			c.Mem.WriteHalf(addr, uint16(c.Regs[in.Rs2]))
		default:
			c.Mem.WriteWord(addr, c.Regs[in.Rs2])
		}
		return nil
	}
	switch in.F3 {
	case rv32.F3LB:
		c.setReg(in.Rd, uint32(int32(int8(c.Mem.LoadByte(addr)))))
	case rv32.F3LBU:
		c.setReg(in.Rd, uint32(c.Mem.LoadByte(addr)))
	case rv32.F3LH:
		c.setReg(in.Rd, uint32(int32(int16(c.Mem.ReadHalf(addr)))))
	case rv32.F3LHU:
		c.setReg(in.Rd, uint32(c.Mem.ReadHalf(addr)))
	default: // F3LW
		c.setReg(in.Rd, c.Mem.ReadWord(addr))
	}
	return nil
}

// execSystem implements the tiny runtime ABI: ebreak halts; ecall consults
// a7 — 93 (exit) halts, 1 (putchar) appends the low byte of a0 to Console.
func (c *RV32CPU) execSystem(in rv32.Instr) error {
	if in.Imm == rv32.SysEBreak {
		c.Halted = true
		return nil
	}
	switch c.Regs[rv32.RegA7] {
	case 93:
		c.Halted = true
		return nil
	case 1:
		c.Console = append(c.Console, byte(c.Regs[rv32.RegA0]))
		return nil
	}
	return fmt.Errorf("unsupported ecall %d", c.Regs[rv32.RegA7])
}

// Run executes until halt or until maxInstrs instructions have retired.
func (c *RV32CPU) Run(maxInstrs uint64) error {
	return c.RunContext(context.Background(), maxInstrs)
}

// RunContext is Run with cancellation, checked between instruction chunks.
func (c *RV32CPU) RunContext(ctx context.Context, maxInstrs uint64) error {
	start := c.Instrs
	next := start + ctxCheckEvery
	for !c.Halted {
		if err := c.Step(); err != nil {
			return err
		}
		if c.Instrs-start >= maxInstrs {
			return fmt.Errorf("sim: instruction budget %d exhausted at pc=0x%x", maxInstrs, c.PC)
		}
		if c.Instrs >= next {
			next = c.Instrs + ctxCheckEvery
			if err := ctx.Err(); err != nil {
				return err
			}
		}
	}
	return nil
}
