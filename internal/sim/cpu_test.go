package sim

import (
	"strings"
	"testing"

	"waymemo/internal/asm"
	"waymemo/internal/trace"
)

const stackTop = 0x001F0000

// run assembles src, executes it to completion and returns the CPU.
func run(t *testing.T, src string) *CPU {
	t.Helper()
	p, err := asm.Assemble(src)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	c := New()
	c.LoadProgram(p, stackTop)
	if err := c.Run(50_000_000); err != nil {
		t.Fatalf("run: %v", err)
	}
	return c
}

func TestArithLoop(t *testing.T) {
	// Sum 1..100 = 5050.
	c := run(t, `
		.org 0x10000
		li   t0, 100
		li   s0, 0
	loop:	add  s0, s0, t0
		addi t0, t0, -1
		bnez t0, loop
		halt
	`)
	if got := c.Regs[17]; got != 5050 {
		t.Fatalf("sum = %d, want 5050", got)
	}
}

func TestMemoryOps(t *testing.T) {
	c := run(t, `
		.org 0x10000
		la   t0, buf
		li   t1, 0x11223344
		sw   t1, 0(t0)
		lb   t2, 0(t0)   ; 0x44
		lbu  t3, 3(t0)   ; 0x11
		lh   t4, 0(t0)   ; 0x3344
		lhu  t5, 2(t0)   ; 0x1122
		li   t6, -2
		sh   t6, 4(t0)
		lh   t7, 4(t0)   ; -2
		lhu  t8, 4(t0)   ; 0xFFFE
		halt
	buf:	.space 16
	`)
	want := map[int]uint32{9: 0x44, 10: 0x11, 11: 0x3344, 12: 0x1122, 14: 0xFFFFFFFE, 15: 0xFFFE}
	for r, v := range want {
		if c.Regs[r] != v {
			t.Errorf("r%d = %#x, want %#x", r, c.Regs[r], v)
		}
	}
}

func TestSignedOps(t *testing.T) {
	c := run(t, `
		.org 0x10000
		li  t0, -7
		li  t1, 2
		div t2, t0, t1    ; -3
		rem t3, t0, t1    ; -1
		sra t4, t0, 1     ; -4
		srl t5, t0, 28    ; 0xF
		slt t6, t0, t1    ; 1
		sltu t7, t0, t1   ; 0 (0xFFFFFFF9 > 2)
		mul t8, t0, t1    ; -14
		mulh t9, t0, t1   ; -1
		halt
	`)
	checks := map[int]uint32{
		9:  0xFFFFFFFD,
		10: 0xFFFFFFFF,
		11: 0xFFFFFFFC,
		12: 0xF,
		13: 1,
		14: 0,
		15: 0xFFFFFFF2,
		16: 0xFFFFFFFF,
	}
	for r, v := range checks {
		if c.Regs[r] != v {
			t.Errorf("r%d = %#x, want %#x", r, c.Regs[r], v)
		}
	}
}

func TestCallReturn(t *testing.T) {
	c := run(t, `
		.org 0x10000
		li   a0, 6
		jal  fact
		move s0, v0
		halt
	; v0 = a0! (recursive)
	fact:	li   v0, 1
		blez a0, fret
		push ra
		push a0
		addi a0, a0, -1
		jal  fact
		pop  a0
		pop  ra
		mul  v0, v0, a0
	fret:	ret
	`)
	if c.Regs[17] != 720 {
		t.Fatalf("6! = %d, want 720", c.Regs[17])
	}
}

func TestFloatOps(t *testing.T) {
	c := run(t, `
		.org 0x10000
		la   t0, vals
		fld  f1, 0(t0)
		fld  f2, 8(t0)
		fadd f3, f1, f2
		fmul f4, f1, f2
		fdiv f5, f1, f2
		fsqrt f6, f2
		li   t1, 3
		fcvtdw f7, t1
		fadd f3, f3, f7
		fsd  f3, 16(t0)
		fld  f8, 16(t0)
		fcvtwd t2, f8
		fclt t3, f1, f2
		fceq t4, f1, f1
		halt
		.align 8
	vals:	.double 1.5, 4.0
		.space 8
	`)
	if c.FRegs[3] != 8.5 {
		t.Errorf("f3 = %v, want 8.5", c.FRegs[3])
	}
	if c.FRegs[4] != 6.0 || c.FRegs[5] != 0.375 || c.FRegs[6] != 2.0 {
		t.Errorf("f4..f6 = %v %v %v", c.FRegs[4], c.FRegs[5], c.FRegs[6])
	}
	if c.Regs[9] != 8 { // t2: int32(8.5) = 8
		t.Errorf("fcvtwd = %d", c.Regs[9])
	}
	if c.Regs[10] != 1 || c.Regs[11] != 1 {
		t.Errorf("float compares: %d %d", c.Regs[10], c.Regs[11])
	}
}

func TestConsole(t *testing.T) {
	c := run(t, `
		.org 0x10000
		li t0, 'H'
		outb t0
		li t0, 'i'
		outb t0
		halt
	`)
	if got := string(c.Console); got != "Hi" {
		t.Fatalf("console %q", got)
	}
}

func TestZeroRegisterImmutable(t *testing.T) {
	c := run(t, `
		.org 0x10000
		li   zero, 55
		addi r0, r0, 9
		halt
	`)
	if c.Regs[0] != 0 {
		t.Fatalf("r0 = %d", c.Regs[0])
	}
}

func TestStoreToTextRejected(t *testing.T) {
	p, err := asm.Assemble(`
		.org 0x10000
		la  t0, loop
	loop:	sw  t1, 0(t0)
		halt
	`)
	if err != nil {
		t.Fatal(err)
	}
	c := New()
	c.LoadProgram(p, stackTop)
	err = c.Run(100)
	if err == nil || !strings.Contains(err.Error(), "self-modifying") {
		t.Fatalf("err = %v", err)
	}
}

func TestDivZeroTrap(t *testing.T) {
	p, err := asm.Assemble(`
		.org 0x10000
		li  t0, 1
		div t1, t0, zero
		halt
	`)
	if err != nil {
		t.Fatal(err)
	}
	c := New()
	c.LoadProgram(p, stackTop)
	if err := c.Run(100); err == nil || !strings.Contains(err.Error(), "division by zero") {
		t.Fatalf("err = %v", err)
	}
}

func TestRunBudget(t *testing.T) {
	p, err := asm.Assemble(`
		.org 0x10000
	spin:	b spin
	`)
	if err != nil {
		t.Fatal(err)
	}
	c := New()
	c.LoadProgram(p, stackTop)
	if err := c.Run(1000); err == nil || !strings.Contains(err.Error(), "budget") {
		t.Fatalf("err = %v", err)
	}
}

// TestFetchEvents verifies the packet stream and its control-kind
// classification on a known program layout.
func TestFetchEvents(t *testing.T) {
	p, err := asm.Assemble(`
		.org 0x10000
		nop          ; 0x10000 packet A
		nop          ; 0x10004
		nop          ; 0x10008 packet B
		jal  fn      ; 0x1000c -> fn
		halt         ; 0x10010 packet C
		.align 32
	fn:	ret          ; 0x10020 packet D
	`)
	if err != nil {
		t.Fatal(err)
	}
	var rec trace.Buffer
	c := New()
	c.Fetch = &rec
	c.LoadProgram(p, stackTop)
	if err := c.Run(100); err != nil {
		t.Fatal(err)
	}
	type want struct {
		addr uint32
		kind trace.ControlKind
		disp int32
	}
	wants := []want{
		{0x10000, trace.KindSeq, 8},       // first fetch
		{0x10008, trace.KindSeq, 8},       // sequential crossing
		{0x10020, trace.KindBranch, 0x14}, // jal fn: base=0x1000c, disp=0x14
		{0x10010, trace.KindLink, 0},      // ret to 0x10010
	}
	if len(rec.Fetches()) != len(wants) {
		t.Fatalf("got %d fetches: %+v", len(rec.Fetches()), rec.Fetches())
	}
	for i, w := range wants {
		ev := rec.Fetches()[i]
		if ev.Addr != w.addr || ev.Kind != w.kind || ev.Disp != w.disp {
			t.Errorf("fetch %d: got addr=%#x kind=%v disp=%d, want addr=%#x kind=%v disp=%d",
				i, ev.Addr, ev.Kind, ev.Disp, w.addr, w.kind, w.disp)
		}
	}
	if !rec.Fetches()[0].First {
		t.Error("first fetch not flagged")
	}
	// jal fn: base must be the branch address.
	if rec.Fetches()[2].Base != 0x1000c {
		t.Errorf("branch base = %#x", rec.Fetches()[2].Base)
	}
	// Cycle count equals number of packet fetches.
	if c.Cycles != uint64(len(rec.Fetches())) {
		t.Errorf("cycles = %d, want %d", c.Cycles, len(rec.Fetches()))
	}
}

// TestDataEvents verifies base/displacement plumbing for loads and stores.
func TestDataEvents(t *testing.T) {
	p, err := asm.Assemble(`
		.org 0x10000
		la  t0, buf
		lw  t1, 4(t0)
		sw  t1, 8(t0)
		lb  t2, -1(t0)
		halt
	pad:	.space 4
	buf:	.word 1, 2, 3, 4
	`)
	if err != nil {
		t.Fatal(err)
	}
	var rec trace.Buffer
	c := New()
	c.Data = &rec
	c.LoadProgram(p, stackTop)
	if err := c.Run(100); err != nil {
		t.Fatal(err)
	}
	buf := p.Symbols["buf"]
	type want struct {
		addr  uint32
		disp  int32
		store bool
		size  uint8
	}
	wants := []want{
		{buf + 4, 4, false, 4},
		{buf + 8, 8, true, 4},
		{buf - 1, -1, false, 1},
	}
	if len(rec.Datas()) != len(wants) {
		t.Fatalf("got %d data events", len(rec.Datas()))
	}
	for i, w := range wants {
		ev := rec.Datas()[i]
		if ev.Addr != w.addr || ev.Disp != w.disp || ev.Store != w.store || ev.Size != w.size {
			t.Errorf("data %d: got %+v want %+v", i, ev, w)
		}
		if ev.Base+uint32(ev.Disp) != ev.Addr {
			t.Errorf("data %d: base+disp != addr", i)
		}
	}
}

// TestIntraPacketBranchNoFetch checks that a taken branch whose target lies
// in the same packet does not generate an I-cache access.
func TestIntraPacketBranchNoFetch(t *testing.T) {
	p, err := asm.Assemble(`
		.org 0x10000
		li   t0, 3       ; 0x10000
		nop              ; 0x10004
	spin:	addi t0, t0, -1  ; 0x10008  packet B
		bnez t0, spin    ; 0x1000c  same packet
		halt             ; 0x10010
	`)
	if err != nil {
		t.Fatal(err)
	}
	var rec trace.Buffer
	c := New()
	c.Fetch = &rec
	c.LoadProgram(p, stackTop)
	if err := c.Run(100); err != nil {
		t.Fatal(err)
	}
	// Expected packets: 0x10000, 0x10008 (loop runs within), 0x10010.
	if len(rec.Fetches()) != 3 {
		t.Fatalf("fetches: %+v", rec.Fetches())
	}
	// Final packet reached by an untaken branch: sequential.
	if rec.Fetches()[2].Kind != trace.KindSeq {
		t.Errorf("final fetch kind = %v", rec.Fetches()[2].Kind)
	}
}

func TestFlowClassification(t *testing.T) {
	// Line size 32B. Same-line seq, same-line branch, cross-line seq,
	// cross-line branch.
	ev := trace.FetchEvent{Addr: 0x10008, Prev: 0x10000, Kind: trace.KindSeq}
	if c := trace.Classify(ev, 32); c != trace.IntraSeq {
		t.Errorf("intra seq: %v", c)
	}
	ev = trace.FetchEvent{Addr: 0x10000, Prev: 0x10018, Kind: trace.KindBranch}
	if c := trace.Classify(ev, 32); c != trace.IntraNonSeq {
		t.Errorf("intra nonseq: %v", c)
	}
	ev = trace.FetchEvent{Addr: 0x10020, Prev: 0x10018, Kind: trace.KindSeq}
	if c := trace.Classify(ev, 32); c != trace.InterSeq {
		t.Errorf("inter seq: %v", c)
	}
	ev = trace.FetchEvent{Addr: 0x10100, Prev: 0x10018, Kind: trace.KindLink}
	if c := trace.Classify(ev, 32); c != trace.InterNonSeq {
		t.Errorf("inter nonseq: %v", c)
	}
}

// TestPredecodeShared checks that the predecoded instruction table is built
// once per program and shared by every CPU executing it, and that a reload
// of the same program executes identically.
func TestPredecodeShared(t *testing.T) {
	src := `
	.org 0x1000
main:	addi r1, r0, 0
	addi r2, r0, 10
loop:	add  r1, r1, r2
	addi r2, r2, -1
	bne  r2, r0, loop
	halt
`
	p, err := asm.Assemble(src)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	d1, d2 := Predecode(p), Predecode(p)
	if d1 != d2 {
		t.Fatal("Predecode returned distinct tables for the same program")
	}
	if len(d1.instrs) == 0 {
		t.Fatal("predecoded table is empty")
	}
	var want uint32
	for i := 0; i < 2; i++ {
		c := New()
		c.LoadProgram(p, stackTop)
		if len(c.decoded) == 0 || &c.decoded[0] != &d1.instrs[0] {
			t.Fatal("CPU did not attach the shared predecoded table")
		}
		if err := c.Run(1000); err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
		if i == 0 {
			want = c.Regs[1]
		} else if c.Regs[1] != want {
			t.Fatalf("reload diverged: r1=%d want %d", c.Regs[1], want)
		}
	}
	if want != 55 {
		t.Fatalf("r1 = %d, want 55", want)
	}
}
