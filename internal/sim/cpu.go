// Package sim implements the FRVL instruction-set simulator.
//
// The CPU stands in for the FR-V core of the paper: it executes one 8-byte
// VLIW fetch packet per cycle and reports two event streams to the attached
// memory-hierarchy models:
//
//   - a FetchEvent whenever the fetch packet changes, classified by how
//     control arrived (sequential, taken branch with its base+offset, jump to
//     the link register, or an unpredictable indirect jump), and
//   - a DataEvent for every load and store, carrying the base register value
//     and the sign-extended displacement in addition to the effective
//     address.
//
// This matches the information available at the address-generation stage of
// the pipeline, which is exactly what the paper's Memory Address Buffer
// consumes (Figures 1 and 2).
package sim

import (
	"context"
	"fmt"
	"math"
	"sync"

	"waymemo/internal/asm"
	"waymemo/internal/isa"
	"waymemo/internal/mem"
	"waymemo/internal/trace"
)

// CPU is one FRVL core with its memory.
type CPU struct {
	Mem   *mem.Memory
	Regs  [isa.NumRegs]uint32
	FRegs [isa.NumRegs]float64
	PC    uint32

	// Halted is set by the halt instruction.
	Halted bool
	// Console accumulates bytes written by outb.
	Console []byte

	// Fetch receives instruction-cache accesses; Data receives data-cache
	// accesses. Either may be nil.
	Fetch trace.FetchSink
	Data  trace.DataSink

	// Instrs counts executed instructions; Cycles counts fetch packets
	// (the 2-issue core fetches one packet per cycle).
	Instrs uint64
	Cycles uint64

	// PacketBytes overrides the fetch packet size for ablation studies;
	// zero selects isa.PacketBytes (8). Must be a power of two ≥ 4.
	PacketBytes uint32

	// Fetch-packet state.
	curPacket  uint32
	havePacket bool
	pendKind   trace.ControlKind
	pendBase   uint32
	pendDisp   int32
	pendValid  bool

	// Decoded-text fast path.
	textBase   uint32
	decoded    []isa.Instr
	textRanges [][2]uint32
}

// New returns a CPU with a fresh memory.
func New() *CPU {
	return &CPU{Mem: mem.New()}
}

// Predecoded is the immutable decode of a program's static text segment: a
// PC-indexed instruction table covering the contiguous span of all text
// ranges. Because programs cannot modify their own text (the simulator
// rejects stores into text ranges), one Predecoded is shared read-only by
// every CPU executing the same program — the text is decoded once per
// process, not once per run, let alone once per dynamic instruction.
type Predecoded struct {
	base   uint32
	instrs []isa.Instr
	ranges [][2]uint32
}

// predecodeCache memoizes Predecode per program identity. Keying on the
// pointer is what makes the memo effective: workloads.Build returns the
// same *asm.Program for the same workload within a process.
var predecodeCache sync.Map // *asm.Program -> *Predecoded

// Predecode decodes the program's text ranges into a shared PC-indexed
// instruction table. Calls with the same *asm.Program return the same
// cached table.
func Predecode(p *asm.Program) *Predecoded {
	if v, ok := predecodeCache.Load(p); ok {
		return v.(*Predecoded)
	}
	d := predecode(p)
	v, _ := predecodeCache.LoadOrStore(p, d)
	return v.(*Predecoded)
}

// predecode builds the instruction table for the contiguous span covering
// all text ranges.
func predecode(p *asm.Program) *Predecoded {
	d := &Predecoded{ranges: p.TextRanges}
	if len(p.TextRanges) == 0 {
		return d
	}
	lo, hi := p.TextRanges[0][0], p.TextRanges[0][1]
	for _, r := range p.TextRanges[1:] {
		if r[0] < lo {
			lo = r[0]
		}
		if r[1] > hi {
			hi = r[1]
		}
	}
	if hi-lo > 1<<24 { // refuse absurd spans
		return d
	}
	m := mem.New()
	for _, seg := range p.Segments {
		m.LoadImage(seg.Addr, seg.Data)
	}
	d.base = lo
	d.instrs = make([]isa.Instr, (hi-lo)/isa.Word)
	for a := lo; a < hi; a += isa.Word {
		d.instrs[(a-lo)/isa.Word] = isa.Decode(m.ReadWord(a))
	}
	return d
}

// LoadProgram loads an assembled program image and attaches the shared
// predecoded instruction table. The PC is set to the program entry and the
// stack pointer to sp.
func (c *CPU) LoadProgram(p *asm.Program, sp uint32) {
	if c.Mem == nil {
		c.Mem = mem.New()
	}
	for _, seg := range p.Segments {
		c.Mem.LoadImage(seg.Addr, seg.Data)
	}
	c.PC = p.Entry
	c.Regs[isa.RegSP] = sp
	d := Predecode(p)
	c.textBase = d.base
	c.decoded = d.instrs
	c.textRanges = d.ranges
}

func (c *CPU) decode(pc uint32) isa.Instr {
	if c.decoded != nil {
		idx := (pc - c.textBase) / isa.Word
		if pc >= c.textBase && int(idx) < len(c.decoded) {
			return c.decoded[idx]
		}
	}
	return isa.Decode(c.Mem.ReadWord(pc))
}

func (c *CPU) inText(addr uint32) bool {
	for _, r := range c.textRanges {
		if addr >= r[0] && addr < r[1] {
			return true
		}
	}
	return false
}

// fetchPacket emits a fetch event when the packet address changes.
func (c *CPU) fetchPacket() {
	pb := c.PacketBytes
	if pb == 0 {
		pb = isa.PacketBytes
	}
	packet := c.PC &^ (pb - 1)
	if c.havePacket && packet == c.curPacket {
		// Still inside the current packet; any pending control kind is
		// consumed without an I-cache access.
		c.pendValid = false
		return
	}
	ev := trace.FetchEvent{
		Addr:  packet,
		Prev:  c.curPacket,
		First: !c.havePacket,
	}
	if c.pendValid {
		ev.Kind = c.pendKind
		ev.Base = c.pendBase
		ev.Disp = c.pendDisp
	} else {
		ev.Kind = trace.KindSeq
		ev.Base = c.curPacket
		ev.Disp = int32(pb)
	}
	c.pendValid = false
	c.curPacket = packet
	c.havePacket = true
	c.Cycles++
	if c.Fetch != nil {
		c.Fetch.OnFetch(ev)
	}
}

// Step executes one instruction.
func (c *CPU) Step() error {
	if c.Halted {
		return nil
	}
	if c.PC%isa.Word != 0 {
		return fmt.Errorf("sim: unaligned PC 0x%x", c.PC)
	}
	c.fetchPacket()
	in := c.decode(c.PC)
	nextPC := c.PC + isa.Word
	switch in.Op {
	case isa.OpR:
		if err := c.execR(in); err != nil {
			return fmt.Errorf("sim: pc=0x%x %s: %w", c.PC, isa.Disassemble(in, c.PC), err)
		}
		switch in.Funct {
		case isa.FnJR, isa.FnJALR:
			target := c.Regs[in.Rs]
			if in.Funct == isa.FnJALR {
				c.setReg(in.Rd, c.PC+isa.Word)
			}
			kind := trace.KindIndirect
			if in.Rs == isa.RegRA {
				kind = trace.KindLink
			}
			c.pend(kind, target, 0)
			nextPC = target
		}
	case isa.OpF:
		if err := c.execF(in); err != nil {
			return fmt.Errorf("sim: pc=0x%x %s: %w", c.PC, isa.Disassemble(in, c.PC), err)
		}
	case isa.OpJ, isa.OpJAL:
		if in.Op == isa.OpJAL {
			c.setReg(isa.RegRA, c.PC+isa.Word)
		}
		nextPC = uint32(int64(c.PC) + int64(in.Off26))
		c.pend(trace.KindBranch, c.PC, in.Off26)
	case isa.OpBEQ, isa.OpBNE, isa.OpBLT, isa.OpBGE, isa.OpBLTU, isa.OpBGEU:
		if c.branchTaken(in) {
			nextPC = uint32(int64(c.PC) + int64(in.Imm))
			c.pend(trace.KindBranch, c.PC, in.Imm)
		}
	case isa.OpADDI:
		c.setReg(in.Rt, c.Regs[in.Rs]+uint32(in.Imm))
	case isa.OpSLTI:
		c.setReg(in.Rt, b2u(int32(c.Regs[in.Rs]) < in.Imm))
	case isa.OpSLTIU:
		c.setReg(in.Rt, b2u(c.Regs[in.Rs] < uint32(in.Imm)))
	case isa.OpANDI:
		c.setReg(in.Rt, c.Regs[in.Rs]&uint32(uint16(in.Imm)))
	case isa.OpORI:
		c.setReg(in.Rt, c.Regs[in.Rs]|uint32(uint16(in.Imm)))
	case isa.OpXORI:
		c.setReg(in.Rt, c.Regs[in.Rs]^uint32(uint16(in.Imm)))
	case isa.OpLUI:
		c.setReg(in.Rt, uint32(uint16(in.Imm))<<16)
	case isa.OpLB, isa.OpLH, isa.OpLW, isa.OpLBU, isa.OpLHU, isa.OpFLD,
		isa.OpSB, isa.OpSH, isa.OpSW, isa.OpFSD:
		if err := c.execMem(in); err != nil {
			return fmt.Errorf("sim: pc=0x%x %s: %w", c.PC, isa.Disassemble(in, c.PC), err)
		}
	case isa.OpOUTB:
		c.Console = append(c.Console, byte(c.Regs[in.Rs]))
	case isa.OpHALT:
		c.Halted = true
	default:
		return fmt.Errorf("sim: pc=0x%x: illegal opcode 0x%x", c.PC, in.Op)
	}
	c.Instrs++
	if !c.Halted {
		c.PC = nextPC
	}
	return nil
}

func (c *CPU) pend(kind trace.ControlKind, base uint32, disp int32) {
	c.pendKind, c.pendBase, c.pendDisp, c.pendValid = kind, base, disp, true
}

func (c *CPU) setReg(r uint8, v uint32) {
	if r != isa.RegZero {
		c.Regs[r] = v
	}
}

func b2u(b bool) uint32 {
	if b {
		return 1
	}
	return 0
}

func (c *CPU) branchTaken(in isa.Instr) bool {
	a, b := c.Regs[in.Rs], c.Regs[in.Rt]
	switch in.Op {
	case isa.OpBEQ:
		return a == b
	case isa.OpBNE:
		return a != b
	case isa.OpBLT:
		return int32(a) < int32(b)
	case isa.OpBGE:
		return int32(a) >= int32(b)
	case isa.OpBLTU:
		return a < b
	case isa.OpBGEU:
		return a >= b
	}
	return false
}

func (c *CPU) execR(in isa.Instr) error {
	rs, rt := c.Regs[in.Rs], c.Regs[in.Rt]
	var v uint32
	switch in.Funct {
	case isa.FnSLL:
		v = rt << in.Shamt
	case isa.FnSRL:
		v = rt >> in.Shamt
	case isa.FnSRA:
		v = uint32(int32(rt) >> in.Shamt)
	case isa.FnSLLV:
		v = rt << (rs & 31)
	case isa.FnSRLV:
		v = rt >> (rs & 31)
	case isa.FnSRAV:
		v = uint32(int32(rt) >> (rs & 31))
	case isa.FnADD:
		v = rs + rt
	case isa.FnSUB:
		v = rs - rt
	case isa.FnAND:
		v = rs & rt
	case isa.FnOR:
		v = rs | rt
	case isa.FnXOR:
		v = rs ^ rt
	case isa.FnNOR:
		v = ^(rs | rt)
	case isa.FnSLT:
		v = b2u(int32(rs) < int32(rt))
	case isa.FnSLTU:
		v = b2u(rs < rt)
	case isa.FnMUL:
		v = rs * rt
	case isa.FnMULH:
		v = uint32(uint64(int64(int32(rs))*int64(int32(rt))) >> 32)
	case isa.FnMULHU:
		v = uint32(uint64(rs) * uint64(rt) >> 32)
	case isa.FnDIV:
		if rt == 0 {
			return fmt.Errorf("integer division by zero")
		}
		if int32(rs) == math.MinInt32 && int32(rt) == -1 {
			v = rs
		} else {
			v = uint32(int32(rs) / int32(rt))
		}
	case isa.FnDIVU:
		if rt == 0 {
			return fmt.Errorf("integer division by zero")
		}
		v = rs / rt
	case isa.FnREM:
		if rt == 0 {
			return fmt.Errorf("integer division by zero")
		}
		if int32(rs) == math.MinInt32 && int32(rt) == -1 {
			v = 0
		} else {
			v = uint32(int32(rs) % int32(rt))
		}
	case isa.FnREMU:
		if rt == 0 {
			return fmt.Errorf("integer division by zero")
		}
		v = rs % rt
	case isa.FnJR, isa.FnJALR:
		return nil // handled by Step
	default:
		return fmt.Errorf("illegal funct 0x%x", in.Funct)
	}
	c.setReg(in.Rd, v)
	return nil
}

func (c *CPU) execF(in isa.Instr) error {
	fs, ft := c.FRegs[in.Rs], c.FRegs[in.Rt]
	switch in.Funct {
	case isa.FnFADD:
		c.FRegs[in.Rd] = fs + ft
	case isa.FnFSUB:
		c.FRegs[in.Rd] = fs - ft
	case isa.FnFMUL:
		c.FRegs[in.Rd] = fs * ft
	case isa.FnFDIV:
		c.FRegs[in.Rd] = fs / ft
	case isa.FnFSQRT:
		c.FRegs[in.Rd] = math.Sqrt(fs)
	case isa.FnFABS:
		c.FRegs[in.Rd] = math.Abs(fs)
	case isa.FnFNEG:
		c.FRegs[in.Rd] = -fs
	case isa.FnFMOV:
		c.FRegs[in.Rd] = fs
	case isa.FnFCVTDW:
		c.FRegs[in.Rd] = float64(int32(c.Regs[in.Rs]))
	case isa.FnFCVTWD:
		c.setReg(in.Rd, uint32(clampToInt32(fs)))
	case isa.FnFCEQ:
		c.setReg(in.Rd, b2u(fs == ft))
	case isa.FnFCLT:
		c.setReg(in.Rd, b2u(fs < ft))
	case isa.FnFCLE:
		c.setReg(in.Rd, b2u(fs <= ft))
	default:
		return fmt.Errorf("illegal float funct 0x%x", in.Funct)
	}
	return nil
}

func clampToInt32(f float64) int32 {
	switch {
	case math.IsNaN(f):
		return 0
	case f >= math.MaxInt32:
		return math.MaxInt32
	case f <= math.MinInt32:
		return math.MinInt32
	}
	return int32(f)
}

func (c *CPU) execMem(in isa.Instr) error {
	base := c.Regs[in.Rs]
	addr := base + uint32(in.Imm)
	size := uint8(in.MemBytes())
	if addr%uint32(size) != 0 {
		return fmt.Errorf("unaligned %d-byte access at 0x%x", size, addr)
	}
	store := in.IsStore()
	if store && c.inText(addr) {
		return fmt.Errorf("store into text at 0x%x (self-modifying code is not supported)", addr)
	}
	if c.Data != nil {
		c.Data.OnData(trace.DataEvent{
			Addr: addr, Base: base, Disp: in.Imm, Store: store, Size: size,
		})
	}
	switch in.Op {
	case isa.OpLB:
		c.setReg(in.Rt, uint32(int32(int8(c.Mem.LoadByte(addr)))))
	case isa.OpLBU:
		c.setReg(in.Rt, uint32(c.Mem.LoadByte(addr)))
	case isa.OpLH:
		c.setReg(in.Rt, uint32(int32(int16(c.Mem.ReadHalf(addr)))))
	case isa.OpLHU:
		c.setReg(in.Rt, uint32(c.Mem.ReadHalf(addr)))
	case isa.OpLW:
		c.setReg(in.Rt, c.Mem.ReadWord(addr))
	case isa.OpFLD:
		c.FRegs[in.Rt] = math.Float64frombits(c.Mem.ReadDouble(addr))
	case isa.OpSB:
		c.Mem.StoreByte(addr, byte(c.Regs[in.Rt]))
	case isa.OpSH:
		c.Mem.WriteHalf(addr, uint16(c.Regs[in.Rt]))
	case isa.OpSW:
		c.Mem.WriteWord(addr, c.Regs[in.Rt])
	case isa.OpFSD:
		c.Mem.WriteDouble(addr, math.Float64bits(c.FRegs[in.Rt]))
	}
	return nil
}

// Run executes until halt or until maxInstrs instructions have retired,
// whichever comes first. Exceeding the budget is reported as an error, since
// it almost always means a runaway program.
func (c *CPU) Run(maxInstrs uint64) error {
	return c.RunContext(context.Background(), maxInstrs)
}

// ctxCheckEvery is how many instructions run between context checks —
// coarse enough to stay off the simulator's hot path, fine enough that
// cancellation lands within milliseconds.
const ctxCheckEvery = 1 << 20

// RunContext is Run with cancellation, checked between instruction chunks.
func (c *CPU) RunContext(ctx context.Context, maxInstrs uint64) error {
	start := c.Instrs
	next := start + ctxCheckEvery
	for !c.Halted {
		if err := c.Step(); err != nil {
			return err
		}
		if c.Instrs-start >= maxInstrs {
			return fmt.Errorf("sim: instruction budget %d exhausted at pc=0x%x", maxInstrs, c.PC)
		}
		if c.Instrs >= next {
			next = c.Instrs + ctxCheckEvery
			if err := ctx.Err(); err != nil {
				return err
			}
		}
	}
	return nil
}
