package sim

import (
	"testing"

	"waymemo/internal/asm"
	"waymemo/internal/isa/rv32"
	"waymemo/internal/trace"
)

// runRV32 assembles and runs an RV32 program to completion.
func runRV32(t *testing.T, src string) *RV32CPU {
	t.Helper()
	c := NewRV32()
	runRV32On(t, c, src)
	return c
}

func runRV32On(t *testing.T, c *RV32CPU, src string) *asm.Program {
	t.Helper()
	p, err := asm.AssembleRV32(src)
	if err != nil {
		t.Fatal(err)
	}
	c.LoadProgram(p, 0x8000)
	if err := c.Run(1_000_000); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestRV32Arithmetic(t *testing.T) {
	c := runRV32(t, `
	.equ DATA, 0x2000
	.org 0x1000
_start:	li   a0, 7
	li   a1, -3
	mul  a2, a0, a1        ; -21
	div  a3, a1, a0        ; 0
	rem  a4, a1, a0        ; -3
	sub  a5, a0, a1        ; 10
	sra  a6, a1, a0        ; -3 >> 7 = -1
	srl  t0, a1, a0        ; logical
	sltu t1, a0, a1        ; 7 <u -3 (huge) = 1
	slt  t2, a1, a0        ; -3 < 7 = 1
	ebreak
`)
	want := map[uint8]uint32{
		12: ^uint32(20), 13: 0, 14: ^uint32(2),
		15: 10, 16: ^uint32(0), 5: ^uint32(2) >> 7, 6: 1, 7: 1,
	}
	for r, v := range want {
		if c.Regs[r] != v {
			t.Errorf("%s = %#x, want %#x", rv32.RegName(r), c.Regs[r], v)
		}
	}
}

// RISC-V division never traps: ÷0 yields all-ones (quotient) / the dividend
// (remainder), and MinInt32 / -1 wraps.
func TestRV32DivisionEdges(t *testing.T) {
	c := runRV32(t, `
	.org 0x1000
_start:	li   a0, 42
	li   a1, 0
	div  a2, a0, a1
	divu a3, a0, a1
	rem  a4, a0, a1
	remu a5, a0, a1
	li   a6, 0x80000000
	li   a7, -1
	div  t0, a6, a7
	rem  t1, a6, a7
	ebreak
`)
	const minInt = uint32(0x80000000)
	want := map[uint8]uint32{
		12: ^uint32(0), 13: ^uint32(0), 14: 42, 15: 42,
		5: minInt, 6: 0,
	}
	for r, v := range want {
		if c.Regs[r] != v {
			t.Errorf("%s = %#x, want %#x", rv32.RegName(r), c.Regs[r], v)
		}
	}
}

func TestRV32LoadStoreSignExtension(t *testing.T) {
	c := runRV32(t, `
	.equ DATA, 0x2000
	.org 0x1000
_start:	la   t0, buf
	li   a0, -2
	sb   a0, 0(t0)
	sh   a0, 2(t0)
	sw   a0, 4(t0)
	lb   a1, 0(t0)
	lbu  a2, 0(t0)
	lh   a3, 2(t0)
	lhu  a4, 2(t0)
	lw   a5, 4(t0)
	ebreak
	.org DATA
buf:	.space 16
`)
	want := map[uint8]uint32{
		11: ^uint32(1), 12: 0xFE, 13: ^uint32(1), 14: 0xFFFE, 15: ^uint32(1),
	}
	for r, v := range want {
		if c.Regs[r] != v {
			t.Errorf("%s = %#x, want %#x", rv32.RegName(r), c.Regs[r], v)
		}
	}
}

// The runtime ABI: ecall a7=1 is putchar, a7=93 exits, ebreak halts.
func TestRV32ConsoleAndExit(t *testing.T) {
	c := runRV32(t, `
	.org 0x1000
_start:	li   a7, 1
	li   a0, 'H'
	ecall
	li   a0, 'i'
	ecall
	li   a7, 93
	li   a0, 0
	ecall
	; never reached
	li   a0, 99
	ebreak
`)
	if string(c.Console) != "Hi" {
		t.Fatalf("console = %q, want \"Hi\"", c.Console)
	}
	if !c.Halted || c.Regs[10] != 0 {
		t.Fatalf("halted=%v a0=%d after exit ecall", c.Halted, c.Regs[10])
	}
}

func TestRV32StoreIntoTextRejected(t *testing.T) {
	c := NewRV32()
	p, err := asm.AssembleRV32(`
	.org 0x1000
_start:	la   t0, _start
	sw   zero, 0(t0)
	ebreak
`)
	if err != nil {
		t.Fatal(err)
	}
	c.LoadProgram(p, 0x8000)
	if err := c.Run(100); err == nil {
		t.Fatal("store into text succeeded")
	}
}

// The fetch stream is the trace contract: 4-byte packets by default, one
// event per packet transition, classified KindSeq / KindBranch (jal, taken
// branch) / KindLink (return via ra) / KindIndirect (computed jalr), with
// First set only on the reset fetch.
func TestRV32FetchKinds(t *testing.T) {
	var evs []trace.FetchEvent
	c := NewRV32()
	c.Fetch = trace.FetchFunc(func(ev trace.FetchEvent) { evs = append(evs, ev) })
	runRV32On(t, c, `
	.org 0x1000
_start:	jal  fn                ; KindBranch
	la   t0, last
	jalr t0                ; KindIndirect (link in ra, base t0)
last:	ebreak
fn:	ret                    ; KindLink
`)
	if len(evs) == 0 || !evs[0].First || evs[0].Addr != 0x1000 {
		t.Fatalf("first fetch = %+v", evs[0])
	}
	var kinds []trace.ControlKind
	for i, ev := range evs {
		if i > 0 && ev.First {
			t.Fatalf("event %d has First set: %+v", i, ev)
		}
		if ev.Addr%4 != 0 {
			t.Fatalf("packet address %#x not 4-byte aligned", ev.Addr)
		}
		kinds = append(kinds, ev.Kind)
	}
	wantKinds := map[trace.ControlKind]bool{
		trace.KindSeq: true, trace.KindBranch: true,
		trace.KindLink: true, trace.KindIndirect: true,
	}
	got := map[trace.ControlKind]bool{}
	for _, k := range kinds {
		got[k] = true
	}
	for k := range wantKinds {
		if !got[k] {
			t.Errorf("kind %v never emitted (kinds: %v)", k, kinds)
		}
	}
	// One packet per instruction at the default 4-byte packet: Cycles is
	// the event count, and every non-first event chains Prev correctly.
	if c.Cycles != uint64(len(evs)) {
		t.Errorf("cycles = %d, events = %d", c.Cycles, len(evs))
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].Prev != evs[i-1].Addr {
			t.Errorf("event %d Prev = %#x, want %#x", i, evs[i].Prev, evs[i-1].Addr)
		}
	}
}

// A wider packet must coalesce consecutive fetches exactly like the FRVL
// frontend does: straight-line code at PacketBytes=8 emits one event per
// two instructions.
func TestRV32PacketCoalescing(t *testing.T) {
	var evs []trace.FetchEvent
	c := NewRV32()
	c.PacketBytes = 8
	c.Fetch = trace.FetchFunc(func(ev trace.FetchEvent) { evs = append(evs, ev) })
	runRV32On(t, c, `
	.org 0x1000
_start:	li   a0, 1
	li   a1, 2
	li   a2, 3
	li   a3, 4
	ebreak
`)
	// 5 instructions at 2 per packet = 3 packets (the last holds ebreak).
	if len(evs) != 3 {
		t.Fatalf("got %d fetch events at 8-byte packets, want 3: %+v", len(evs), evs)
	}
	for _, ev := range evs {
		if ev.Addr%8 != 0 {
			t.Errorf("packet %#x not 8-byte aligned", ev.Addr)
		}
	}
}
