// Package suite is the experiment-running layer: a registry of cache
// techniques and a parallel, options-based runner that evaluates any set of
// techniques over any set of workloads in one simulator pass per benchmark.
//
// A Technique bundles everything the runner needs to evaluate one cache
// configuration: a typed ID, the cache domain it attaches to (instruction
// fetch or data access), and a factory that, for a given cache geometry,
// produces the controller's event sink, its access counters and its power
// model. The eight standard techniques of the paper's evaluation register
// themselves in the package's default registry (standard.go); adding a new
// configuration to every sweep is a single Register call:
//
//	suite.MustRegister(suite.MABDataTechnique("mab-4x16", "big D-MAB",
//		core.Config{TagEntries: 4, SetEntries: 16}))
//
// Run executes workloads concurrently (they are independent simulations)
// and returns results in workload order, bit-identical to a sequential run:
//
//	r, err := suite.Run(ctx,
//		suite.WithWorkloads(workloads.DCT(), workloads.FFT()),
//		suite.WithParallelism(4))
//
// Techniques passed to WithTechniques do not have to be registered; ad hoc
// Technique values work the same way, which is how the ablation studies in
// internal/experiments express their one-off configurations.
//
// Two layers render and orchestrate on top of Run: internal/experiments
// knows which technique belongs in which of the paper's figures, and
// internal/explore expands whole axis grids (geometry × MAB size ×
// workload) into memoized sweeps.
package suite

import (
	"fmt"
	"sync"

	"waymemo/internal/cache"
	"waymemo/internal/power"
	"waymemo/internal/stats"
	"waymemo/internal/trace"
)

// Domain is the cache a technique attaches to.
type Domain uint8

const (
	// Data marks a data-cache technique (a trace.DataSink).
	Data Domain = iota
	// Fetch marks an instruction-cache technique (a trace.FetchSink).
	Fetch
)

// String returns "data" or "fetch".
func (d Domain) String() string {
	switch d {
	case Data:
		return "data"
	case Fetch:
		return "fetch"
	}
	return fmt.Sprintf("domain(%d)", uint8(d))
}

// ID names a technique within its domain. The same ID may exist in both
// domains (e.g. "original" names both the conventional I- and D-cache).
type ID string

// Instance is one instantiated technique attached to one benchmark run:
// the controller as an event sink, its counters, and its power model. The
// sink for the technique's domain must be non-nil.
type Instance struct {
	// Fetch receives instruction-fetch events (Fetch-domain techniques).
	Fetch trace.FetchSink
	// Data receives data-access events (Data-domain techniques).
	Data trace.DataSink
	// Stats is the counter set the controller fills during the run.
	Stats *stats.Counters
	// Model prices the counters (power.Compute) for this technique under
	// the geometry the factory was given.
	Model power.Model
}

// Factory builds a fresh Instance for one benchmark run. The runner calls
// it once per workload, so factories must not share mutable state between
// calls.
type Factory func(geo cache.Config) Instance

// Technique is one registrable cache-access technique.
type Technique struct {
	// ID is the key the results are reported under.
	ID ID
	// Domain selects the event stream the technique consumes.
	Domain Domain
	// Desc is a one-line human-readable description.
	Desc string
	// New instantiates the technique for a geometry.
	New Factory
}

func (t Technique) validate() error {
	if t.ID == "" {
		return fmt.Errorf("suite: technique with empty ID")
	}
	if t.Domain != Data && t.Domain != Fetch {
		return fmt.Errorf("suite: technique %q: invalid domain %d", t.ID, t.Domain)
	}
	if t.New == nil {
		return fmt.Errorf("suite: technique %s/%q has no factory", t.Domain, t.ID)
	}
	return nil
}

type regKey struct {
	dom Domain
	id  ID
}

// Registry is a set of techniques keyed by (Domain, ID), preserving
// registration order. The zero value is not usable; call NewRegistry.
type Registry struct {
	mu    sync.RWMutex
	byKey map[regKey]Technique
	order []regKey
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byKey: map[regKey]Technique{}}
}

// Register adds a technique. It fails if the technique is malformed or the
// (Domain, ID) pair is already taken.
func (r *Registry) Register(t Technique) error {
	if err := t.validate(); err != nil {
		return err
	}
	k := regKey{t.Domain, t.ID}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.byKey[k]; dup {
		return fmt.Errorf("suite: technique %s/%q already registered", t.Domain, t.ID)
	}
	r.byKey[k] = t
	r.order = append(r.order, k)
	return nil
}

// MustRegister is Register, panicking on error.
func (r *Registry) MustRegister(t Technique) {
	if err := r.Register(t); err != nil {
		panic(err)
	}
}

// Lookup finds a technique by domain and ID.
func (r *Registry) Lookup(d Domain, id ID) (Technique, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	t, ok := r.byKey[regKey{d, id}]
	return t, ok
}

// Techniques returns every registered technique in registration order.
func (r *Registry) Techniques() []Technique {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]Technique, 0, len(r.order))
	for _, k := range r.order {
		out = append(out, r.byKey[k])
	}
	return out
}

// defaultRegistry holds the standard suite (standard.go) plus anything the
// embedding program registers at init time.
var defaultRegistry = NewRegistry()

// DefaultRegistry returns the package-level registry used by Run when no
// WithRegistry/WithTechniques option is given.
func DefaultRegistry() *Registry { return defaultRegistry }

// Register adds a technique to the default registry.
func Register(t Technique) error { return defaultRegistry.Register(t) }

// MustRegister is Register on the default registry, panicking on error.
func MustRegister(t Technique) { defaultRegistry.MustRegister(t) }

// Lookup finds a technique in the default registry.
func Lookup(d Domain, id ID) (Technique, bool) { return defaultRegistry.Lookup(d, id) }

// MustLookup is Lookup, panicking when the technique is missing.
func MustLookup(d Domain, id ID) Technique {
	t, ok := Lookup(d, id)
	if !ok {
		panic(fmt.Sprintf("suite: technique %s/%q not registered", d, id))
	}
	return t
}

// Techniques returns every technique in the default registry.
func Techniques() []Technique { return defaultRegistry.Techniques() }
