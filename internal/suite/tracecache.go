package suite

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"

	"waymemo/internal/fault"
	"waymemo/internal/trace"
	"waymemo/internal/workloads"
)

// TraceCache is the execute-once / replay-many engine behind WithTraceCache:
// the fetch/data event stream of a benchmark depends only on the workload
// and the fetch-packet size — never on cache geometry or technique — so the
// cache runs each (workload, packetBytes) pair through the CPU once,
// captures the streams into a packed trace.Buffer, and replays the capture
// to every later run that asks for the same pair. A design-space sweep over
// G geometries thus costs W executions plus G×W cheap replays instead of
// G×W executions.
//
// With a spill directory (NewDirTraceCache), captures are also written as
// WMTRACE2 files (compressed column chunks) with a JSON sidecar, and a later
// process loads them back instead of executing at all; legacy WMTRACE1
// spills from earlier versions load transparently, so mixed directories
// keep working. Spill files are keyed by the workload's content
// fingerprint, so stale files for a renamed or edited workload — like a
// truncated, bit-flipped or otherwise corrupt trace file — degrade to a
// re-capture, never to wrong results.
//
// A TraceCache is safe for concurrent use and is meant to be shared across
// many suite.Run calls; concurrent requests for the same pair block on a
// single capture.
type TraceCache struct {
	dir string
	fs  fault.FS

	mu      sync.Mutex
	entries map[traceKey]*traceEntry

	captures  atomic.Int64
	diskLoads atomic.Int64
	replays   atomic.Int64

	fanPasses     atomic.Int64
	fanSinks      atomic.Int64
	fanEvents     atomic.Int64
	fanDeliveries atomic.Int64
}

// traceKey identifies one captured execution. maxInstrs (defaulted) is part
// of the identity even though a successful capture always runs to halt: a
// budget that would fail a live run must miss the cache and fail here too,
// not silently succeed off a longer run's capture.
type traceKey struct {
	name        string
	fingerprint uint64
	packet      uint32
	maxInstrs   uint64
}

// traceEntry is one capture, possibly still in flight: done closes when buf
// (or err) is final.
type traceEntry struct {
	done   chan struct{}
	buf    *trace.Buffer
	cycles uint64
	instrs uint64
	err    error
}

// TraceCacheStats reports how a TraceCache served its requests.
type TraceCacheStats struct {
	// Captures is the number of full simulator executions performed.
	Captures int
	// DiskLoads is the number of captures reloaded from spill files.
	DiskLoads int
	// Replays is the number of benchmark runs served by replaying a
	// capture instead of executing. One batched fan-out pass can serve many
	// runs (every grid point of a sharded sweep task counts).
	Replays int

	// FanOutPasses counts batched fan-out passes over a capture, and
	// FanOutSinks the technique sinks those passes fed, so
	// FanOutSinks/FanOutPasses is the average fan-out width — how many
	// techniques each streaming of a trace paid for.
	FanOutPasses int
	FanOutSinks  int
	// FanOutEvents is the number of events the passes walked (counted once
	// per pass); FanOutDeliveries the per-sink deliveries those walks
	// produced (each pass delivers its fetch stream to every fetch sink and
	// its data stream to every data sink).
	FanOutEvents     int64
	FanOutDeliveries int64
}

// SinksPerPass returns the average batched fan-out width, 0 before any pass.
func (s TraceCacheStats) SinksPerPass() float64 {
	if s.FanOutPasses == 0 {
		return 0
	}
	return float64(s.FanOutSinks) / float64(s.FanOutPasses)
}

// NewTraceCache returns an in-memory trace cache.
func NewTraceCache() *TraceCache {
	return &TraceCache{entries: map[traceKey]*traceEntry{}}
}

// NewDirTraceCache returns a trace cache that spills captures to dir as
// WMTRACE2 files (plus JSON sidecars) and reloads them — or legacy WMTRACE1
// files — in later processes. The directory is created if needed.
func NewDirTraceCache(dir string) (*TraceCache, error) {
	return NewDirTraceCacheFS(dir, fault.FS{})
}

// NewDirTraceCacheFS is NewDirTraceCache with the spill I/O routed through
// a fault-injection shim (sites io.trace.*); the zero FS is a passthrough.
// Injected spill faults can only cost re-captures or spill errors, never
// wrong replays — the same contract corrupt files already get.
func NewDirTraceCacheFS(dir string, fs fault.FS) (*TraceCache, error) {
	if dir == "" {
		return nil, fmt.Errorf("suite: empty trace directory")
	}
	if err := os.MkdirAll(dir, 0o777); err != nil {
		return nil, fmt.Errorf("suite: creating trace directory: %w", err)
	}
	tc := NewTraceCache()
	tc.dir = dir
	tc.fs = fs
	return tc, nil
}

// Flush drops every completed in-memory capture, returning how many were
// dropped. Spilled captures reload from disk on next use; memory-only ones
// re-execute — results are unaffected either way. Long-running daemons call
// it after evicting spill files so resident memory tracks the store's byte
// budget instead of growing with every workload ever swept. Captures still
// in flight are left alone.
func (tc *TraceCache) Flush() int {
	tc.mu.Lock()
	defer tc.mu.Unlock()
	n := 0
	for k, e := range tc.entries {
		select {
		case <-e.done:
			// A failed filler already removed its entry, so anything still
			// mapped and done is a completed capture.
			delete(tc.entries, k)
			n++
		default:
		}
	}
	return n
}

// Stats returns the cache's request counters so far.
func (tc *TraceCache) Stats() TraceCacheStats {
	return TraceCacheStats{
		Captures:         int(tc.captures.Load()),
		DiskLoads:        int(tc.diskLoads.Load()),
		Replays:          int(tc.replays.Load()),
		FanOutPasses:     int(tc.fanPasses.Load()),
		FanOutSinks:      int(tc.fanSinks.Load()),
		FanOutEvents:     tc.fanEvents.Load(),
		FanOutDeliveries: tc.fanDeliveries.Load(),
	}
}

// Capture is one captured execution, ready for fan-out replay: the packed
// event streams plus the execution counts a BenchResult carries.
type Capture struct {
	Buf    *trace.Buffer
	Cycles uint64
	Instrs uint64
}

// Capture returns the capture for (w, packet), executing or disk-loading it
// at most once; concurrent requests for the same pair block on one filler.
// Callers that replay the returned buffer themselves should prefer FanOut,
// which also keeps the cache's replay statistics honest.
func (tc *TraceCache) Capture(ctx context.Context, w workloads.Workload, packet uint32) (Capture, error) {
	e, err := tc.get(ctx, w, packet)
	if err != nil {
		return Capture{}, err
	}
	return Capture{Buf: e.buf, Cycles: e.cycles, Instrs: e.instrs}, nil
}

// FanOut replays the capture for (w, packet) to every registered pair in a
// single batched pass over the trace (trace.Buffer.ReplayAll), capturing or
// disk-loading it first if needed. runs is the number of logical benchmark
// runs the pass serves — suite.Run passes 1 per workload, a sharded explore
// task passes its grid-point count — and is what Stats().Replays advances
// by, so the counter keeps meaning "benchmark runs served by replay"
// however wide the fan-out is.
func (tc *TraceCache) FanOut(ctx context.Context, w workloads.Workload, packet uint32, pairs []trace.SinkPair, runs int) (Capture, error) {
	c, err := tc.Capture(ctx, w, packet)
	if err != nil {
		return Capture{}, err
	}
	if err := c.Buf.ReplayAll(ctx, pairs); err != nil {
		return Capture{}, err
	}
	var deliveries int64
	for _, p := range pairs {
		if p.Fetch != nil {
			deliveries += int64(c.Buf.NumFetches())
		}
		if p.Data != nil {
			deliveries += int64(c.Buf.NumDatas())
		}
	}
	tc.replays.Add(int64(runs))
	tc.fanPasses.Add(1)
	tc.fanSinks.Add(int64(len(pairs)))
	tc.fanEvents.Add(int64(c.Buf.Len()))
	tc.fanDeliveries.Add(deliveries)
	return c, nil
}

// get returns the capture for (w, packet), executing it at most once per
// attempt. A failed capture is not memoized, so a cancelled sweep does not
// poison the cache for the next one, and a waiter whose filler failed
// retries under its own ctx instead of inheriting the filler's error.
// Packet 0 (the default) and the workload's own default packet — 8 bytes
// for FRVL, 4 for rv32 — produce the same stream and share one capture.
func (tc *TraceCache) get(ctx context.Context, w workloads.Workload, packet uint32) (*traceEntry, error) {
	keyPacket := packet
	if keyPacket == 0 {
		keyPacket = w.DefaultPacketBytes()
	}
	maxInstrs := w.MaxInstrs
	if maxInstrs == 0 {
		maxInstrs = workloads.DefaultMaxInstrs
	}
	k := traceKey{w.Name, w.Fingerprint(), keyPacket, maxInstrs}
	for {
		tc.mu.Lock()
		e := tc.entries[k]
		if e == nil {
			e = &traceEntry{done: make(chan struct{})}
			tc.entries[k] = e
			tc.mu.Unlock()
			e.err = tc.fill(ctx, e, w, packet, k)
			if e.err != nil {
				tc.mu.Lock()
				delete(tc.entries, k)
				tc.mu.Unlock()
			}
			close(e.done)
			return e, e.err
		}
		tc.mu.Unlock()
		select {
		case <-e.done:
			if e.err == nil {
				return e, nil
			}
			// The filler failed and removed the entry; try again unless
			// our own ctx is the one that ended.
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}

// fill populates e from the spill directory if possible, else by executing
// the workload with the buffer attached as both sinks.
func (tc *TraceCache) fill(ctx context.Context, e *traceEntry, w workloads.Workload, packet uint32, k traceKey) error {
	if tc.dir != "" && tc.load(e, k, w) {
		tc.diskLoads.Add(1)
		return nil
	}
	buf := new(trace.Buffer)
	c, err := workloads.RunPacketContext(ctx, w, buf, buf, packet)
	if err != nil {
		return err
	}
	tc.captures.Add(1)
	e.buf, e.cycles, e.instrs = buf, c.Cycles, c.Instrs
	if tc.dir != "" {
		if err := tc.store(e, k, w); err != nil {
			return err
		}
	}
	return nil
}

// traceMetaVersion versions the sidecar schema; bump it to invalidate old
// spill directories wholesale.
const traceMetaVersion = 1

// traceMeta is the JSON sidecar of one spill file: what the trace file
// itself cannot carry — the execution counts BenchResult needs, and the
// identity fields that double-check the trace file answers for the right
// capture. The same sidecar schema covers both trace formats; the reader
// sniffs the file's own magic, so Format is informational (old sidecars
// lack it and still validate).
type traceMeta struct {
	Version  int    `json:"version"`
	Workload string `json:"workload"`
	// Format names the trace file format the spill was written in.
	Format string `json:"format,omitempty"`
	// Spec is the canonical synthetic spec the workload was generated from
	// (empty for the paper benchmarks), making spill directories
	// self-describing: the sidecar alone says how to regenerate the
	// program that produced the trace. Identity-wise it is redundant with
	// Workload (a synthetic workload's name is its spec), but a mismatch
	// still reads as a miss.
	Spec string `json:"spec,omitempty"`
	// ISA names the frontend the trace was captured under (empty for
	// FRVL). A mismatch reads as a miss, so an rv32 spill can never be
	// replayed as an FRVL capture of the same kernel or vice versa.
	ISA         string `json:"isa,omitempty"`
	Fingerprint string `json:"fingerprint"`
	PacketBytes uint32 `json:"packet_bytes"`
	MaxInstrs   uint64 `json:"max_instrs"`
	Cycles      uint64 `json:"cycles"`
	Instrs      uint64 `json:"instrs"`
	Fetches     int    `json:"fetches"`
	Datas       int    `json:"datas"`
}

// spillBase names the spill file pair for a key: a hash, so arbitrary
// workload names cannot escape the directory or collide after sanitizing.
func (tc *TraceCache) spillBase(k traceKey) string {
	h := sha256.Sum256(fmt.Appendf(nil, "wmtrace-spill-v%d|%s|%016x|%d|%d",
		traceMetaVersion, k.name, k.fingerprint, k.packet, k.maxInstrs))
	return filepath.Join(tc.dir, hex.EncodeToString(h[:8]))
}

// load restores a capture from its spill pair. Any mismatch, truncation or
// decode error degrades to a miss (returns false) and the capture is
// re-executed and re-stored — a corrupt file must never poison results.
func (tc *TraceCache) load(e *traceEntry, k traceKey, w workloads.Workload) bool {
	base := tc.spillBase(k)
	mb, err := tc.fs.ReadFile(fault.SiteTraceRead, base+".json")
	if err != nil {
		return false
	}
	var m traceMeta
	if json.Unmarshal(mb, &m) != nil ||
		m.Version != traceMetaVersion ||
		m.Workload != k.name ||
		m.Spec != w.Spec ||
		m.ISA != w.ISA ||
		m.Fingerprint != fmt.Sprintf("%016x", k.fingerprint) ||
		m.PacketBytes != k.packet ||
		m.MaxInstrs != k.maxInstrs {
		return false
	}
	f, err := tc.fs.Open(fault.SiteTraceRead, base+".wmtrace")
	if err != nil {
		return false
	}
	defer f.Close()
	buf, err := trace.ReadBuffer(f)
	if err != nil || buf.NumFetches() != m.Fetches || buf.NumDatas() != m.Datas {
		return false
	}
	e.buf, e.cycles, e.instrs = buf, m.Cycles, m.Instrs
	return true
}

// store writes the capture as a WMTRACE2 file plus sidecar, each through a
// temp file, fsync and rename so readers never observe a torn spill.
func (tc *TraceCache) store(e *traceEntry, k traceKey, w workloads.Workload) error {
	base := tc.spillBase(k)
	if err := tc.fs.WriteFileAtomic(fault.SiteTraceWrite, base+".wmtrace", func(f io.Writer) error {
		_, err := e.buf.WriteTo(f)
		return err
	}); err != nil {
		return fmt.Errorf("suite: spilling trace: %w", err)
	}
	m := traceMeta{
		Version:     traceMetaVersion,
		Workload:    k.name,
		Format:      "WMTRACE2",
		Spec:        w.Spec,
		ISA:         w.ISA,
		Fingerprint: fmt.Sprintf("%016x", k.fingerprint),
		PacketBytes: k.packet,
		MaxInstrs:   k.maxInstrs,
		Cycles:      e.cycles,
		Instrs:      e.instrs,
		Fetches:     e.buf.NumFetches(),
		Datas:       e.buf.NumDatas(),
	}
	mb, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	if err := tc.fs.WriteFileAtomic(fault.SiteTraceWrite, base+".json", func(f io.Writer) error {
		_, err := f.Write(mb)
		return err
	}); err != nil {
		return fmt.Errorf("suite: spilling trace sidecar: %w", err)
	}
	return nil
}
