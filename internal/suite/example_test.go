package suite_test

import (
	"context"
	"fmt"
	"log"

	"waymemo/internal/core"
	"waymemo/internal/suite"
	"waymemo/internal/workloads"
)

// exampleProgram is a small embedded-style loop: sum an array and write a
// scaled copy back.
const exampleProgram = `
main:	la   t0, data
	li   t1, 256           ; elements
	li   s0, 0
loop:	lw   t2, 0(t0)
	add  s0, s0, t2
	sw   s0, 2048(t0)
	addi t0, t0, 4
	addi t1, t1, -1
	bnez t1, loop
	halt
	.org 0x100000
data:	.space 1024, 1
	.space 1024
	.space 2048
`

// ExampleRun evaluates the conventional D-cache against the paper's 2x8
// way-memoized configuration on a custom workload: one simulator pass, both
// techniques attached to the same event stream.
func ExampleRun() {
	w := workloads.Workload{Name: "example", Sources: []string{exampleProgram},
		MaxInstrs: 100_000}

	r, err := suite.Run(context.Background(),
		suite.WithWorkloads(w),
		suite.WithTechniques(
			suite.MustLookup(suite.Data, suite.DOrig),
			suite.MustLookup(suite.Data, suite.DMAB),
		))
	if err != nil {
		log.Fatal(err)
	}

	b := r.Benchmarks[0]
	orig, mab := b.D[suite.DOrig].Stats, b.D[suite.DMAB].Stats
	fmt.Printf("benchmark %s ran %d techniques\n", b.Name, len(b.D))
	fmt.Printf("MAB reads fewer tags: %v\n", mab.TagReads < orig.TagReads)
	fmt.Printf("MAB saves power: %v\n",
		b.DPower(suite.DMAB).TotalMW() < b.DPower(suite.DOrig).TotalMW())
	// Output:
	// benchmark example ran 2 techniques
	// MAB reads fewer tags: true
	// MAB saves power: true
}

// ExampleRegistry_Register builds a private registry holding a custom MAB
// size next to the conventional baseline — the pattern for sweeping ad hoc
// configurations without touching the package-level registry.
func ExampleRegistry_Register() {
	reg := suite.NewRegistry()
	if err := reg.Register(suite.MustLookup(suite.Data, suite.DOrig)); err != nil {
		log.Fatal(err)
	}
	if err := reg.Register(suite.MABDataTechnique("mab-4x16", "big D-MAB",
		core.Config{TagEntries: 4, SetEntries: 16})); err != nil {
		log.Fatal(err)
	}
	// A duplicate (Domain, ID) pair is rejected.
	dup := suite.MABDataTechnique("mab-4x16", "again", core.Config{TagEntries: 4, SetEntries: 16})
	fmt.Println("duplicate rejected:", reg.Register(dup) != nil)

	for _, t := range reg.Techniques() {
		fmt.Printf("%s/%s\n", t.Domain, t.ID)
	}
	// Output:
	// duplicate rejected: true
	// data/original
	// data/mab-4x16
}
