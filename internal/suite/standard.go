package suite

import (
	"fmt"

	"waymemo/internal/baseline"
	"waymemo/internal/cache"
	"waymemo/internal/cacti"
	"waymemo/internal/core"
	"waymemo/internal/power"
	"waymemo/internal/synth"
)

// IDs of the standard suite — the eight technique instances of the paper's
// evaluation (Figures 4-8). The D- and I-cache "original" and "mab-2x8"
// techniques share an ID string but live in different domains.
const (
	DOrig   ID = "original"
	DSetBuf ID = "setbuf[14]"
	DMAB    ID = "mab-2x8"

	IOrig  ID = "original"
	IA4    ID = "approach[4]"
	IMAB8  ID = "mab-2x8"
	IMAB16 ID = "mab-2x16"
	IMAB32 ID = "mab-2x32"
)

// ArrayModel returns the power model of a bare cache array (no MAB, no
// buffer) in the paper's 0.13µm process — the model every conventional
// technique shares.
func ArrayModel(geo cache.Config) power.Model {
	return power.Model{Array: cacti.ArrayEnergies(cacti.Tech130, geo)}
}

// MABDataTechnique builds a way-memoized D-cache technique for an arbitrary
// MAB configuration, with its power model (array + synthesized MAB).
func MABDataTechnique(id ID, desc string, cfg core.Config) Technique {
	return Technique{ID: id, Domain: Data, Desc: desc,
		New: func(geo cache.Config) Instance {
			c := core.NewDController(geo, cfg)
			m := ArrayModel(geo)
			m.MAB = synth.Characterize(cfg.TagEntries, cfg.SetEntries)
			return Instance{Data: c, Stats: c.Stats, Model: m}
		}}
}

// MABFetchTechnique builds a way-memoized I-cache technique for an
// arbitrary MAB configuration.
func MABFetchTechnique(id ID, desc string, cfg core.Config) Technique {
	return Technique{ID: id, Domain: Fetch, Desc: desc,
		New: func(geo cache.Config) Instance {
			c := core.NewIController(geo, cfg)
			m := ArrayModel(geo)
			m.MAB = synth.Characterize(cfg.TagEntries, cfg.SetEntries)
			return Instance{Fetch: c, Stats: c.Stats, Model: m}
		}}
}

// mabID formats the conventional NtxNs MAB name ("mab-2x8").
func mabID(cfg core.Config) ID {
	return ID(fmt.Sprintf("mab-%dx%d", cfg.TagEntries, cfg.SetEntries))
}

func init() {
	// Data-cache techniques of Figures 4 and 5.
	MustRegister(Technique{ID: DOrig, Domain: Data,
		Desc: "conventional 2-way access (all tags, all ways)",
		New: func(geo cache.Config) Instance {
			c := baseline.NewOriginalD(geo)
			return Instance{Data: c, Stats: c.Stats, Model: ArrayModel(geo)}
		}})
	MustRegister(Technique{ID: DSetBuf, Domain: Data,
		Desc: "set buffer of Yang, Yu & Zhang [14]",
		New: func(geo cache.Config) Instance {
			c := baseline.NewSetBufferD(geo)
			m := ArrayModel(geo)
			m.Buffer = cacti.LineBuffer(cacti.Tech130, geo.Ways, geo.LineBytes, geo.TagBits())
			return Instance{Data: c, Stats: c.Stats, Model: m}
		}})
	MustRegister(MABDataTechnique(mabID(core.DefaultD),
		"way-memoized D-cache, 2x8 MAB (the paper's pick)", core.DefaultD))

	// Instruction-cache techniques of Figures 6 and 7.
	MustRegister(Technique{ID: IOrig, Domain: Fetch,
		Desc: "conventional 2-way fetch (all tags, all ways)",
		New: func(geo cache.Config) Instance {
			c := baseline.NewOriginalI(geo)
			return Instance{Fetch: c, Stats: c.Stats, Model: ArrayModel(geo)}
		}})
	MustRegister(Technique{ID: IA4, Domain: Fetch,
		Desc: "intra-line sequential memoization of Panwar & Rennels [4]",
		New: func(geo cache.Config) Instance {
			c := baseline.NewApproach4I(geo)
			return Instance{Fetch: c, Stats: c.Stats, Model: ArrayModel(geo)}
		}})
	MustRegister(MABFetchTechnique(IMAB8,
		"way-memoized I-cache, 2x8 MAB", core.Config{TagEntries: 2, SetEntries: 8}))
	MustRegister(MABFetchTechnique(mabID(core.DefaultI),
		"way-memoized I-cache, 2x16 MAB (the paper's pick)", core.DefaultI))
	MustRegister(MABFetchTechnique(IMAB32,
		"way-memoized I-cache, 2x32 MAB", core.Config{TagEntries: 2, SetEntries: 32}))
}
