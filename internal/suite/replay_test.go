package suite

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"waymemo/internal/cache"
	"waymemo/internal/stats"
	"waymemo/internal/trace"
	"waymemo/internal/workloads"
)

// assertResultsEqual demands bit-identical counters, cycle counts and power
// breakdowns between a live run and a replayed run, for every benchmark and
// every technique in both domains.
func assertResultsEqual(t *testing.T, live, replayed *Results) {
	t.Helper()
	if len(live.Benchmarks) != len(replayed.Benchmarks) {
		t.Fatalf("benchmark counts differ: %d vs %d", len(live.Benchmarks), len(replayed.Benchmarks))
	}
	for i, lb := range live.Benchmarks {
		rb := replayed.Benchmarks[i]
		if lb.Name != rb.Name || lb.Cycles != rb.Cycles || lb.Instrs != rb.Instrs {
			t.Fatalf("%s: cycles/instrs %d/%d vs %d/%d",
				lb.Name, lb.Cycles, lb.Instrs, rb.Cycles, rb.Instrs)
		}
		if len(lb.D) != len(rb.D) || len(lb.I) != len(rb.I) {
			t.Fatalf("%s: technique sets differ", lb.Name)
		}
		for id, ltr := range lb.D {
			rtr, ok := rb.D[id]
			if !ok {
				t.Fatalf("%s: D technique %q missing from replay", lb.Name, id)
			}
			if *ltr.Stats != *rtr.Stats {
				t.Errorf("%s/D/%s counters diverge:\nlive:   %+v\nreplay: %+v",
					lb.Name, id, *ltr.Stats, *rtr.Stats)
			}
			if lb.DPower(id) != rb.DPower(id) {
				t.Errorf("%s/D/%s power diverges: %+v vs %+v",
					lb.Name, id, lb.DPower(id), rb.DPower(id))
			}
		}
		for id, ltr := range lb.I {
			rtr, ok := rb.I[id]
			if !ok {
				t.Fatalf("%s: I technique %q missing from replay", lb.Name, id)
			}
			if *ltr.Stats != *rtr.Stats {
				t.Errorf("%s/I/%s counters diverge:\nlive:   %+v\nreplay: %+v",
					lb.Name, id, *ltr.Stats, *rtr.Stats)
			}
			if lb.IPower(id) != rb.IPower(id) {
				t.Errorf("%s/I/%s power diverges: %+v vs %+v",
					lb.Name, id, lb.IPower(id), rb.IPower(id))
			}
		}
	}
}

// TestReplayEquivalenceGolden is the correctness contract of the
// execute-once / replay-many engine: record+replay must produce bit-identical
// stats.Counters and power.Breakdown to live execution for all eight standard
// techniques of the paper's evaluation, in both cache domains.
func TestReplayEquivalenceGolden(t *testing.T) {
	ctx := context.Background()
	ws := raceWorkloads(t)
	live, err := Run(ctx, WithWorkloads(ws...))
	if err != nil {
		t.Fatal(err)
	}
	if n := len(live.Benchmarks[0].D) + len(live.Benchmarks[0].I); n != 8 {
		t.Fatalf("standard registry has %d techniques, want 8", n)
	}
	tc := NewTraceCache()
	replayed, err := Run(ctx, WithWorkloads(ws...), WithTraceCache(tc))
	if err != nil {
		t.Fatal(err)
	}
	assertResultsEqual(t, live, replayed)
	st := tc.Stats()
	if st.Captures != len(ws) || st.Replays != len(ws) {
		t.Fatalf("trace cache stats = %+v, want %d captures/%d replays", st, len(ws), len(ws))
	}

	// A second Run on the same cache replays without executing again.
	again, err := Run(ctx, WithWorkloads(ws...), WithTraceCache(tc))
	if err != nil {
		t.Fatal(err)
	}
	assertResultsEqual(t, live, again)
	if st := tc.Stats(); st.Captures != len(ws) {
		t.Fatalf("warm rerun re-executed: %+v", st)
	}
}

// TestReplayEquivalencePacketBytes checks the engine keys captures on the
// fetch-packet size: the 16-byte ablation replays identically too, from its
// own capture.
func TestReplayEquivalencePacketBytes(t *testing.T) {
	ctx := context.Background()
	ws := raceWorkloads(t)[:1]
	live, err := Run(ctx, WithWorkloads(ws...), WithPacketBytes(16))
	if err != nil {
		t.Fatal(err)
	}
	tc := NewTraceCache()
	for _, pb := range []uint32{16, 0} {
		if _, err := Run(ctx, WithWorkloads(ws...), WithPacketBytes(pb), WithTraceCache(tc)); err != nil {
			t.Fatal(err)
		}
	}
	if st := tc.Stats(); st.Captures != 2 {
		t.Fatalf("packet sizes were not captured separately: %+v", st)
	}
	// Packet 0 means the 8-byte VLIW default: an explicit 8 shares its
	// capture rather than executing a third time.
	if _, err := Run(ctx, WithWorkloads(ws...), WithPacketBytes(8), WithTraceCache(tc)); err != nil {
		t.Fatal(err)
	}
	if st := tc.Stats(); st.Captures != 2 {
		t.Fatalf("packet 8 did not share the default capture: %+v", st)
	}
	replayed, err := Run(ctx, WithWorkloads(ws...), WithPacketBytes(16), WithTraceCache(tc))
	if err != nil {
		t.Fatal(err)
	}
	assertResultsEqual(t, live, replayed)
}

// TestTraceCacheSpill checks the WMTRACE1 spill/reload path: a fresh cache
// over the same directory serves the capture from disk without executing,
// with bit-identical results.
func TestTraceCacheSpill(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	ws := raceWorkloads(t)[:1]

	tc1, err := NewDirTraceCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	first, err := Run(ctx, WithWorkloads(ws...), WithTraceCache(tc1))
	if err != nil {
		t.Fatal(err)
	}
	if st := tc1.Stats(); st.Captures != 1 || st.DiskLoads != 0 {
		t.Fatalf("cold dir cache stats = %+v", st)
	}

	tc2, err := NewDirTraceCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	second, err := Run(ctx, WithWorkloads(ws...), WithTraceCache(tc2))
	if err != nil {
		t.Fatal(err)
	}
	if st := tc2.Stats(); st.Captures != 0 || st.DiskLoads != 1 {
		t.Fatalf("warm dir cache stats = %+v (want pure disk load)", st)
	}
	assertResultsEqual(t, first, second)
}

// TestTraceCacheSpillCorrupt checks that a truncated spill file — the cut
// lands mid-record, typically inside a varint column payload — degrades to
// a re-capture (and is rewritten), never to an error or wrong results.
func TestTraceCacheSpillCorrupt(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	ws := raceWorkloads(t)[:1]

	tc1, err := NewDirTraceCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	first, err := Run(ctx, WithWorkloads(ws...), WithTraceCache(tc1))
	if err != nil {
		t.Fatal(err)
	}
	traces, err := filepath.Glob(filepath.Join(dir, "*.wmtrace"))
	if err != nil || len(traces) != 1 {
		t.Fatalf("spill files: %v, %v", traces, err)
	}
	data, err := os.ReadFile(traces[0])
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(traces[0], data[:len(data)/2], 0o666); err != nil {
		t.Fatal(err)
	}

	tc2, err := NewDirTraceCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	second, err := Run(ctx, WithWorkloads(ws...), WithTraceCache(tc2))
	if err != nil {
		t.Fatal(err)
	}
	if st := tc2.Stats(); st.Captures != 1 || st.DiskLoads != 0 {
		t.Fatalf("corrupt spill was not degraded to a capture: %+v", st)
	}
	assertResultsEqual(t, first, second)

	// The re-capture rewrote the spill; a third cache loads it cleanly.
	tc3, err := NewDirTraceCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(ctx, WithWorkloads(ws...), WithTraceCache(tc3)); err != nil {
		t.Fatal(err)
	}
	if st := tc3.Stats(); st.DiskLoads != 1 {
		t.Fatalf("rewritten spill not loaded: %+v", st)
	}
}

// TestTraceCacheSpillBitFlips flips single bytes at offsets spread through
// a WMTRACE2 spill — hitting record headers, column compression flags and
// varint payloads (the trace package's every-byte-flip test proves the
// per-offset coverage is exhaustive) — and checks each mutation degrades to
// a re-capture with bit-identical results.
func TestTraceCacheSpillBitFlips(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	ws := raceWorkloads(t)[:1]

	tc1, err := NewDirTraceCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	first, err := Run(ctx, WithWorkloads(ws...), WithTraceCache(tc1))
	if err != nil {
		t.Fatal(err)
	}
	traces, err := filepath.Glob(filepath.Join(dir, "*.wmtrace"))
	if err != nil || len(traces) != 1 {
		t.Fatalf("spill files: %v, %v", traces, err)
	}
	orig, err := os.ReadFile(traces[0])
	if err != nil {
		t.Fatal(err)
	}
	// Offset 8 is the first record's tag byte; the interior offsets land in
	// column flags/payloads; the last byte is CRC material.
	for _, off := range []int{8, len(orig) / 4, len(orig) / 2, len(orig) - 1} {
		mut := append([]byte(nil), orig...)
		mut[off] ^= 0xff
		if err := os.WriteFile(traces[0], mut, 0o666); err != nil {
			t.Fatal(err)
		}
		tc, err := NewDirTraceCache(dir)
		if err != nil {
			t.Fatal(err)
		}
		again, err := Run(ctx, WithWorkloads(ws...), WithTraceCache(tc))
		if err != nil {
			t.Fatal(err)
		}
		if st := tc.Stats(); st.Captures != 1 || st.DiskLoads != 0 {
			t.Fatalf("flip at %d: not degraded to a capture: %+v", off, st)
		}
		assertResultsEqual(t, first, again)
	}
}

// TestTraceCacheStaleSidecar: a sidecar whose event counts disagree with
// the trace file (a torn or stale spill pair) must read as a miss and
// re-capture, not serve a capture the sidecar no longer describes.
func TestTraceCacheStaleSidecar(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	ws := raceWorkloads(t)[:1]

	tc1, err := NewDirTraceCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	first, err := Run(ctx, WithWorkloads(ws...), WithTraceCache(tc1))
	if err != nil {
		t.Fatal(err)
	}
	sides, err := filepath.Glob(filepath.Join(dir, "*.json"))
	if err != nil || len(sides) != 1 {
		t.Fatalf("sidecar files: %v, %v", sides, err)
	}
	mb, err := os.ReadFile(sides[0])
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(mb, &m); err != nil {
		t.Fatal(err)
	}
	m["fetches"] = m["fetches"].(float64) + 1
	mb, err = json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(sides[0], mb, 0o666); err != nil {
		t.Fatal(err)
	}

	tc2, err := NewDirTraceCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	second, err := Run(ctx, WithWorkloads(ws...), WithTraceCache(tc2))
	if err != nil {
		t.Fatal(err)
	}
	if st := tc2.Stats(); st.Captures != 1 || st.DiskLoads != 0 {
		t.Fatalf("stale sidecar not degraded to a capture: %+v", st)
	}
	assertResultsEqual(t, first, second)
}

// TestTraceCacheSpillV1Compat: a spill directory holding a legacy WMTRACE1
// file (written by an earlier version) with a matching sidecar must disk-load
// through a fresh cache and replay bit-identically — old directories keep
// working without re-capture.
func TestTraceCacheSpillV1Compat(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	ws := raceWorkloads(t)[:1]

	tc1, err := NewDirTraceCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	first, err := Run(ctx, WithWorkloads(ws...), WithTraceCache(tc1))
	if err != nil {
		t.Fatal(err)
	}
	// Rewrite the spill in the legacy format — same capture, same sidecar
	// counts — exactly what a pre-upgrade process would have left behind.
	c, err := tc1.Capture(ctx, ws[0], 0)
	if err != nil {
		t.Fatal(err)
	}
	traces, err := filepath.Glob(filepath.Join(dir, "*.wmtrace"))
	if err != nil || len(traces) != 1 {
		t.Fatalf("spill files: %v, %v", traces, err)
	}
	var v1 bytes.Buffer
	if _, err := c.Buf.WriteToV1(&v1); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(traces[0], v1.Bytes(), 0o666); err != nil {
		t.Fatal(err)
	}

	tc2, err := NewDirTraceCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	second, err := Run(ctx, WithWorkloads(ws...), WithTraceCache(tc2))
	if err != nil {
		t.Fatal(err)
	}
	if st := tc2.Stats(); st.Captures != 0 || st.DiskLoads != 1 {
		t.Fatalf("legacy WMTRACE1 spill not disk-loaded: %+v", st)
	}
	assertResultsEqual(t, first, second)
}

// TestTraceCacheMaxInstrsKeyed: an instruction budget that would fail a
// live run must fail through the cache too, not silently reuse a capture
// recorded under a longer budget.
func TestTraceCacheMaxInstrsKeyed(t *testing.T) {
	ctx := context.Background()
	tc := NewTraceCache()
	if _, err := Run(ctx, WithWorkloads(workloads.DCT()), WithTraceCache(tc)); err != nil {
		t.Fatal(err)
	}
	small := workloads.DCT()
	small.MaxInstrs = 1000
	if _, err := Run(ctx, WithWorkloads(small), WithTraceCache(tc)); err == nil {
		t.Fatal("budget-limited workload replayed a full-length capture")
	}
}

// TestFanOutReplayEquivalence is the batched fan-out contract, widened to
// the compressed × parallelism grid: one ReplayAll pass feeding every
// technique (suite.Run's default replay path) must produce byte-identical
// counters and power to independent per-sink Replay calls
// (WithBatchReplay(false)), to a WMTRACE2 spill reloaded from disk, and to
// live execution — for all eight standard techniques of both domains,
// across a geometry grid, at parallelism 1 and 4, on two synthetic
// workloads (so parallelism actually interleaves benchmarks).
func TestFanOutReplayEquivalence(t *testing.T) {
	ctx := context.Background()
	w1, err := workloads.ByName("synth:pchase,fp=8KiB,stride=64,seed=3")
	if err != nil {
		t.Fatal(err)
	}
	w2, err := workloads.ByName("synth:hotloop,fp=1KiB,n=2048")
	if err != nil {
		t.Fatal(err)
	}
	// The RV32 rendering of w1's spec widens the wall across the ISA axis:
	// its 4-byte-packet capture must satisfy the same live ≡ batched ≡
	// per-sink ≡ spilled equivalence as the FRVL streams.
	w3, err := workloads.ByName("rv32:synth:pchase,fp=8KiB,stride=64,seed=3")
	if err != nil {
		t.Fatal(err)
	}
	ws := []workloads.Workload{w1, w2, w3}
	geos := []cache.Config{
		{Sets: 128, Ways: 1, LineBytes: 16},
		{Sets: 256, Ways: 2, LineBytes: 32},
		{Sets: 512, Ways: 4, LineBytes: 32},
	}
	dir := t.TempDir()
	// tcWarm captures (and spills WMTRACE2 files); tcDisk shares the
	// directory but is a distinct cache, so everything it serves comes from
	// the compressed spill files, never from an in-memory capture.
	tcWarm, err := NewDirTraceCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	tcDisk, err := NewDirTraceCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	pars := []int{1, 4}
	for _, geo := range geos {
		live, err := Run(ctx, WithWorkloads(ws...), WithGeometry(geo))
		if err != nil {
			t.Fatal(err)
		}
		if n := len(live.Benchmarks[0].D) + len(live.Benchmarks[0].I); n != 8 {
			t.Fatalf("standard registry has %d techniques, want 8", n)
		}
		for _, par := range pars {
			batched, err := Run(ctx, WithWorkloads(ws...), WithGeometry(geo),
				WithTraceCache(tcWarm), WithParallelism(par))
			if err != nil {
				t.Fatal(err)
			}
			perSink, err := Run(ctx, WithWorkloads(ws...), WithGeometry(geo),
				WithTraceCache(tcWarm), WithBatchReplay(false), WithParallelism(par))
			if err != nil {
				t.Fatal(err)
			}
			// By the time tcDisk first runs, tcWarm's capture has already
			// spilled, so this run decodes the WMTRACE2 files from disk.
			spilled, err := Run(ctx, WithWorkloads(ws...), WithGeometry(geo),
				WithTraceCache(tcDisk), WithParallelism(par))
			if err != nil {
				t.Fatal(err)
			}
			assertResultsEqual(t, live, batched)
			assertResultsEqual(t, live, perSink)
			assertResultsEqual(t, live, spilled)
		}
	}
	st := tcWarm.Stats()
	if st.Captures != len(ws) || st.DiskLoads != 0 {
		t.Fatalf("geometry sweep re-executed a workload: %+v", st)
	}
	// Every batched pass fed all eight techniques from one stream walk.
	wantPasses := len(geos) * len(pars) * len(ws)
	if st.FanOutPasses != wantPasses || st.SinksPerPass() != 8 {
		t.Fatalf("fan-out stats = %+v, want %d passes of 8 sinks", st, wantPasses)
	}
	if st.FanOutEvents <= 0 || st.FanOutDeliveries <= st.FanOutEvents {
		t.Fatalf("fan-out accounting degenerate: %+v", st)
	}
	if st := tcDisk.Stats(); st.Captures != 0 || st.DiskLoads != len(ws) {
		t.Fatalf("disk cache stats = %+v, want pure WMTRACE2 loads", st)
	}
}

// TestFanOutReplaySharedBufferRace hammers one shared capture from
// contending sink groups: several goroutines each instantiate the full
// eight-technique set and run their own batched fan-out pass over the same
// compressed buffer concurrently. Block decode uses per-pass cursors and
// scratch, so every group must observe the identical stream — counters must
// match a single-threaded reference exactly. Run under -race in CI.
func TestFanOutReplaySharedBufferRace(t *testing.T) {
	ctx := context.Background()
	w, err := workloads.ByName("synth:hotloop,fp=1KiB,n=2048")
	if err != nil {
		t.Fatal(err)
	}
	tc := NewTraceCache()
	c, err := tc.Capture(ctx, w, 0)
	if err != nil {
		t.Fatal(err)
	}
	techs := defaultRegistry.Techniques()
	build := func() ([]trace.SinkPair, map[string]*stats.Counters) {
		var pairs []trace.SinkPair
		counters := map[string]*stats.Counters{}
		for _, tech := range techs {
			inst := tech.New(cache.FRV32K)
			switch tech.Domain {
			case Data:
				pairs = append(pairs, trace.SinkPair{Data: inst.Data})
			case Fetch:
				pairs = append(pairs, trace.SinkPair{Fetch: inst.Fetch})
			}
			counters[tech.Domain.String()+"/"+string(tech.ID)] = inst.Stats
		}
		return pairs, counters
	}
	refPairs, refCounters := build()
	if err := c.Buf.ReplayAll(ctx, refPairs); err != nil {
		t.Fatal(err)
	}

	const groups = 8
	errs := make([]error, groups)
	got := make([]map[string]*stats.Counters, groups)
	var wg sync.WaitGroup
	for g := 0; g < groups; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			pairs, counters := build()
			errs[g] = c.Buf.ReplayAll(ctx, pairs)
			got[g] = counters
		}(g)
	}
	wg.Wait()
	for g := 0; g < groups; g++ {
		if errs[g] != nil {
			t.Fatalf("group %d: %v", g, errs[g])
		}
		for id, want := range refCounters {
			if *got[g][id] != *want {
				t.Errorf("group %d/%s counters diverge:\nref: %+v\ngot: %+v",
					g, id, *want, *got[g][id])
			}
		}
	}
}

// TestFanOutCancellationMidReplay: a context cancelled while a fan-out pass
// is streaming surfaces as an error from Run, not as silently truncated
// counters.
func TestFanOutCancellationMidReplay(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ws := raceWorkloads(t)[:1]
	tc := NewTraceCache()
	if _, err := Run(ctx, WithWorkloads(ws...), WithTraceCache(tc)); err != nil {
		t.Fatal(err)
	}
	// An ad hoc technique whose sink cancels the sweep partway through the
	// replayed stream.
	seen := 0
	canceller := Technique{ID: "canceller", Domain: Data, Desc: "cancels mid-replay",
		New: func(geo cache.Config) Instance {
			return Instance{
				Data: trace.DataFunc(func(trace.DataEvent) {
					seen++
					if seen == 64 {
						cancel()
					}
				}),
				Stats: &stats.Counters{},
			}
		}}
	orig, _ := Lookup(Data, DOrig)
	_, err := Run(ctx, WithWorkloads(ws...), WithTraceCache(tc),
		WithTechniques(canceller, orig))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled fan-out run: err = %v", err)
	}
}

// TestCrossISADifferentialCapture runs the same kernel under both frontends
// through the trace cache — each execution validates against the identical
// Go reference, so both streams describe a provably-correct run of the same
// algorithm — then demands that each ISA's capture replays bit-identically
// through repeated ReplayAll passes, and that the two ISAs' streams really
// are different programs to the cache hierarchy (4- vs 8-byte packets).
func TestCrossISADifferentialCapture(t *testing.T) {
	ctx := context.Background()
	tc := NewTraceCache()
	type recording struct {
		fetch []trace.FetchEvent
		data  []trace.DataEvent
	}
	record := func(buf *trace.Buffer) recording {
		var r recording
		pairs := []trace.SinkPair{{
			Fetch: trace.FetchFunc(func(ev trace.FetchEvent) { r.fetch = append(r.fetch, ev) }),
			Data:  trace.DataFunc(func(ev trace.DataEvent) { r.data = append(r.data, ev) }),
		}}
		if err := buf.ReplayAll(ctx, pairs); err != nil {
			t.Fatal(err)
		}
		return r
	}
	spec := "synth:pchase,fp=4KiB,seed=7"
	recs := map[string]recording{}
	for _, name := range []string{spec, "rv32:" + spec} {
		w, err := workloads.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		c, err := tc.Capture(ctx, w, 0) // 0 = the frontend's native packet
		if err != nil {
			t.Fatal(err)
		}
		first := record(c.Buf)
		again := record(c.Buf)
		if len(first.fetch) != len(again.fetch) || len(first.data) != len(again.data) {
			t.Fatalf("%s: replay lengths diverge: %d/%d fetches, %d/%d datas",
				name, len(first.fetch), len(again.fetch), len(first.data), len(again.data))
		}
		for i := range first.fetch {
			if first.fetch[i] != again.fetch[i] {
				t.Fatalf("%s: fetch %d differs between replays: %+v vs %+v",
					name, i, first.fetch[i], again.fetch[i])
			}
		}
		for i := range first.data {
			if first.data[i] != again.data[i] {
				t.Fatalf("%s: data %d differs between replays: %+v vs %+v",
					name, i, first.data[i], again.data[i])
			}
		}
		recs[name] = first
	}
	frvl, rv := recs[spec], recs["rv32:"+spec]
	// Same algorithm, same data accesses in spirit — but genuinely
	// different fetch streams: RV32's 4-byte packets and denser RISC
	// encoding must not produce the FRVL packet sequence.
	if len(frvl.fetch) == len(rv.fetch) {
		t.Fatalf("FRVL and RV32 captures have identical fetch counts (%d) — suspicious cross-ISA aliasing", len(frvl.fetch))
	}
	for _, r := range recs {
		if len(r.fetch) == 0 || len(r.data) == 0 {
			t.Fatal("empty capture")
		}
		if !r.fetch[0].First {
			t.Fatal("capture does not start with the reset fetch")
		}
	}
	// Both executed once; nothing replayed from the wrong ISA's entry.
	if st := tc.Stats(); st.Captures != 2 {
		t.Fatalf("trace cache stats = %+v, want 2 distinct captures", st)
	}
}
