package suite

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"waymemo/internal/cache"
	"waymemo/internal/stats"
	"waymemo/internal/trace"
	"waymemo/internal/workloads"
)

// assertResultsEqual demands bit-identical counters, cycle counts and power
// breakdowns between a live run and a replayed run, for every benchmark and
// every technique in both domains.
func assertResultsEqual(t *testing.T, live, replayed *Results) {
	t.Helper()
	if len(live.Benchmarks) != len(replayed.Benchmarks) {
		t.Fatalf("benchmark counts differ: %d vs %d", len(live.Benchmarks), len(replayed.Benchmarks))
	}
	for i, lb := range live.Benchmarks {
		rb := replayed.Benchmarks[i]
		if lb.Name != rb.Name || lb.Cycles != rb.Cycles || lb.Instrs != rb.Instrs {
			t.Fatalf("%s: cycles/instrs %d/%d vs %d/%d",
				lb.Name, lb.Cycles, lb.Instrs, rb.Cycles, rb.Instrs)
		}
		if len(lb.D) != len(rb.D) || len(lb.I) != len(rb.I) {
			t.Fatalf("%s: technique sets differ", lb.Name)
		}
		for id, ltr := range lb.D {
			rtr, ok := rb.D[id]
			if !ok {
				t.Fatalf("%s: D technique %q missing from replay", lb.Name, id)
			}
			if *ltr.Stats != *rtr.Stats {
				t.Errorf("%s/D/%s counters diverge:\nlive:   %+v\nreplay: %+v",
					lb.Name, id, *ltr.Stats, *rtr.Stats)
			}
			if lb.DPower(id) != rb.DPower(id) {
				t.Errorf("%s/D/%s power diverges: %+v vs %+v",
					lb.Name, id, lb.DPower(id), rb.DPower(id))
			}
		}
		for id, ltr := range lb.I {
			rtr, ok := rb.I[id]
			if !ok {
				t.Fatalf("%s: I technique %q missing from replay", lb.Name, id)
			}
			if *ltr.Stats != *rtr.Stats {
				t.Errorf("%s/I/%s counters diverge:\nlive:   %+v\nreplay: %+v",
					lb.Name, id, *ltr.Stats, *rtr.Stats)
			}
			if lb.IPower(id) != rb.IPower(id) {
				t.Errorf("%s/I/%s power diverges: %+v vs %+v",
					lb.Name, id, lb.IPower(id), rb.IPower(id))
			}
		}
	}
}

// TestReplayEquivalenceGolden is the correctness contract of the
// execute-once / replay-many engine: record+replay must produce bit-identical
// stats.Counters and power.Breakdown to live execution for all eight standard
// techniques of the paper's evaluation, in both cache domains.
func TestReplayEquivalenceGolden(t *testing.T) {
	ctx := context.Background()
	ws := raceWorkloads(t)
	live, err := Run(ctx, WithWorkloads(ws...))
	if err != nil {
		t.Fatal(err)
	}
	if n := len(live.Benchmarks[0].D) + len(live.Benchmarks[0].I); n != 8 {
		t.Fatalf("standard registry has %d techniques, want 8", n)
	}
	tc := NewTraceCache()
	replayed, err := Run(ctx, WithWorkloads(ws...), WithTraceCache(tc))
	if err != nil {
		t.Fatal(err)
	}
	assertResultsEqual(t, live, replayed)
	st := tc.Stats()
	if st.Captures != len(ws) || st.Replays != len(ws) {
		t.Fatalf("trace cache stats = %+v, want %d captures/%d replays", st, len(ws), len(ws))
	}

	// A second Run on the same cache replays without executing again.
	again, err := Run(ctx, WithWorkloads(ws...), WithTraceCache(tc))
	if err != nil {
		t.Fatal(err)
	}
	assertResultsEqual(t, live, again)
	if st := tc.Stats(); st.Captures != len(ws) {
		t.Fatalf("warm rerun re-executed: %+v", st)
	}
}

// TestReplayEquivalencePacketBytes checks the engine keys captures on the
// fetch-packet size: the 16-byte ablation replays identically too, from its
// own capture.
func TestReplayEquivalencePacketBytes(t *testing.T) {
	ctx := context.Background()
	ws := raceWorkloads(t)[:1]
	live, err := Run(ctx, WithWorkloads(ws...), WithPacketBytes(16))
	if err != nil {
		t.Fatal(err)
	}
	tc := NewTraceCache()
	for _, pb := range []uint32{16, 0} {
		if _, err := Run(ctx, WithWorkloads(ws...), WithPacketBytes(pb), WithTraceCache(tc)); err != nil {
			t.Fatal(err)
		}
	}
	if st := tc.Stats(); st.Captures != 2 {
		t.Fatalf("packet sizes were not captured separately: %+v", st)
	}
	// Packet 0 means the 8-byte VLIW default: an explicit 8 shares its
	// capture rather than executing a third time.
	if _, err := Run(ctx, WithWorkloads(ws...), WithPacketBytes(8), WithTraceCache(tc)); err != nil {
		t.Fatal(err)
	}
	if st := tc.Stats(); st.Captures != 2 {
		t.Fatalf("packet 8 did not share the default capture: %+v", st)
	}
	replayed, err := Run(ctx, WithWorkloads(ws...), WithPacketBytes(16), WithTraceCache(tc))
	if err != nil {
		t.Fatal(err)
	}
	assertResultsEqual(t, live, replayed)
}

// TestTraceCacheSpill checks the WMTRACE1 spill/reload path: a fresh cache
// over the same directory serves the capture from disk without executing,
// with bit-identical results.
func TestTraceCacheSpill(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	ws := raceWorkloads(t)[:1]

	tc1, err := NewDirTraceCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	first, err := Run(ctx, WithWorkloads(ws...), WithTraceCache(tc1))
	if err != nil {
		t.Fatal(err)
	}
	if st := tc1.Stats(); st.Captures != 1 || st.DiskLoads != 0 {
		t.Fatalf("cold dir cache stats = %+v", st)
	}

	tc2, err := NewDirTraceCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	second, err := Run(ctx, WithWorkloads(ws...), WithTraceCache(tc2))
	if err != nil {
		t.Fatal(err)
	}
	if st := tc2.Stats(); st.Captures != 0 || st.DiskLoads != 1 {
		t.Fatalf("warm dir cache stats = %+v (want pure disk load)", st)
	}
	assertResultsEqual(t, first, second)
}

// TestTraceCacheSpillCorrupt checks that a truncated spill file degrades to
// a re-capture (and is rewritten), never to an error or wrong results.
func TestTraceCacheSpillCorrupt(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	ws := raceWorkloads(t)[:1]

	tc1, err := NewDirTraceCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	first, err := Run(ctx, WithWorkloads(ws...), WithTraceCache(tc1))
	if err != nil {
		t.Fatal(err)
	}
	traces, err := filepath.Glob(filepath.Join(dir, "*.wmtrace"))
	if err != nil || len(traces) != 1 {
		t.Fatalf("spill files: %v, %v", traces, err)
	}
	data, err := os.ReadFile(traces[0])
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(traces[0], data[:len(data)/2], 0o666); err != nil {
		t.Fatal(err)
	}

	tc2, err := NewDirTraceCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	second, err := Run(ctx, WithWorkloads(ws...), WithTraceCache(tc2))
	if err != nil {
		t.Fatal(err)
	}
	if st := tc2.Stats(); st.Captures != 1 || st.DiskLoads != 0 {
		t.Fatalf("corrupt spill was not degraded to a capture: %+v", st)
	}
	assertResultsEqual(t, first, second)

	// The re-capture rewrote the spill; a third cache loads it cleanly.
	tc3, err := NewDirTraceCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(ctx, WithWorkloads(ws...), WithTraceCache(tc3)); err != nil {
		t.Fatal(err)
	}
	if st := tc3.Stats(); st.DiskLoads != 1 {
		t.Fatalf("rewritten spill not loaded: %+v", st)
	}
}

// TestTraceCacheMaxInstrsKeyed: an instruction budget that would fail a
// live run must fail through the cache too, not silently reuse a capture
// recorded under a longer budget.
func TestTraceCacheMaxInstrsKeyed(t *testing.T) {
	ctx := context.Background()
	tc := NewTraceCache()
	if _, err := Run(ctx, WithWorkloads(workloads.DCT()), WithTraceCache(tc)); err != nil {
		t.Fatal(err)
	}
	small := workloads.DCT()
	small.MaxInstrs = 1000
	if _, err := Run(ctx, WithWorkloads(small), WithTraceCache(tc)); err == nil {
		t.Fatal("budget-limited workload replayed a full-length capture")
	}
}

// TestFanOutReplayEquivalence is the batched fan-out contract: one
// ReplayAll pass feeding every technique (suite.Run's default replay path)
// must produce byte-identical counters and power to independent per-sink
// Replay calls (WithBatchReplay(false)) and to live execution — for all
// eight standard techniques of both domains, across a geometry grid, on a
// synthetic workload spec.
func TestFanOutReplayEquivalence(t *testing.T) {
	ctx := context.Background()
	w, err := workloads.ByName("synth:pchase,fp=8KiB,stride=64,seed=3")
	if err != nil {
		t.Fatal(err)
	}
	geos := []cache.Config{
		{Sets: 128, Ways: 1, LineBytes: 16},
		{Sets: 256, Ways: 2, LineBytes: 32},
		{Sets: 512, Ways: 4, LineBytes: 32},
	}
	tc := NewTraceCache()
	for _, geo := range geos {
		live, err := Run(ctx, WithWorkloads(w), WithGeometry(geo))
		if err != nil {
			t.Fatal(err)
		}
		if n := len(live.Benchmarks[0].D) + len(live.Benchmarks[0].I); n != 8 {
			t.Fatalf("standard registry has %d techniques, want 8", n)
		}
		batched, err := Run(ctx, WithWorkloads(w), WithGeometry(geo), WithTraceCache(tc))
		if err != nil {
			t.Fatal(err)
		}
		perSink, err := Run(ctx, WithWorkloads(w), WithGeometry(geo),
			WithTraceCache(tc), WithBatchReplay(false))
		if err != nil {
			t.Fatal(err)
		}
		assertResultsEqual(t, live, batched)
		assertResultsEqual(t, live, perSink)
	}
	st := tc.Stats()
	if st.Captures != 1 {
		t.Fatalf("geometry sweep re-executed the workload: %+v", st)
	}
	// Every batched pass fed all eight techniques from one stream walk.
	if st.FanOutPasses != len(geos) || st.SinksPerPass() != 8 {
		t.Fatalf("fan-out stats = %+v, want %d passes of 8 sinks", st, len(geos))
	}
	if st.FanOutEvents <= 0 || st.FanOutDeliveries <= st.FanOutEvents {
		t.Fatalf("fan-out accounting degenerate: %+v", st)
	}
}

// TestFanOutCancellationMidReplay: a context cancelled while a fan-out pass
// is streaming surfaces as an error from Run, not as silently truncated
// counters.
func TestFanOutCancellationMidReplay(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ws := raceWorkloads(t)[:1]
	tc := NewTraceCache()
	if _, err := Run(ctx, WithWorkloads(ws...), WithTraceCache(tc)); err != nil {
		t.Fatal(err)
	}
	// An ad hoc technique whose sink cancels the sweep partway through the
	// replayed stream.
	seen := 0
	canceller := Technique{ID: "canceller", Domain: Data, Desc: "cancels mid-replay",
		New: func(geo cache.Config) Instance {
			return Instance{
				Data: trace.DataFunc(func(trace.DataEvent) {
					seen++
					if seen == 64 {
						cancel()
					}
				}),
				Stats: &stats.Counters{},
			}
		}}
	orig, _ := Lookup(Data, DOrig)
	_, err := Run(ctx, WithWorkloads(ws...), WithTraceCache(tc),
		WithTechniques(canceller, orig))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled fan-out run: err = %v", err)
	}
}
