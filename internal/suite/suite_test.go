package suite

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"testing"
	"time"

	"waymemo/internal/baseline"
	"waymemo/internal/cache"
	"waymemo/internal/workloads"
)

// raceWorkloads returns the benchmark pair the heavier suite tests run.
// Under -short (the CI race job) small synthetic workloads stand in for
// DCT/FFT: the properties under test are workload-independent, and the
// synthetic pair drives the same capture/replay machinery at a fraction of
// the instruction count.
func raceWorkloads(t *testing.T) []workloads.Workload {
	t.Helper()
	if !testing.Short() {
		return []workloads.Workload{workloads.DCT(), workloads.FFT()}
	}
	a, err := workloads.ByName("synth:hotloop,fp=1KiB,n=2048")
	if err != nil {
		t.Fatal(err)
	}
	b, err := workloads.ByName("synth:branchy,fp=1KiB,n=2048")
	if err != nil {
		t.Fatal(err)
	}
	return []workloads.Workload{a, b}
}

// TestParallelismDeterminism: the suite must produce byte-identical results
// at every parallelism level (each benchmark gets fresh technique
// instances, so runs are independent).
func TestParallelismDeterminism(t *testing.T) {
	ws := raceWorkloads(t)
	run := func(par int) []byte {
		t.Helper()
		r, err := Run(context.Background(),
			WithWorkloads(ws...),
			WithParallelism(par))
		if err != nil {
			t.Fatal(err)
		}
		enc, err := json.Marshal(r)
		if err != nil {
			t.Fatal(err)
		}
		return enc
	}
	seq := run(1)
	par := run(8)
	if !bytes.Equal(seq, par) {
		t.Errorf("results differ between parallelism 1 and 8:\nseq %d bytes\npar %d bytes",
			len(seq), len(par))
	}
}

// TestResultsOrdered: Benchmarks must follow the workload list order, not
// completion order.
func TestResultsOrdered(t *testing.T) {
	ws := []workloads.Workload{workloads.FFT(), workloads.DCT()}
	r, err := Run(context.Background(), WithWorkloads(ws...), WithParallelism(2),
		WithTechniques(MustLookup(Data, DOrig)))
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Benchmarks) != 2 ||
		r.Benchmarks[0].Name != "FFT" || r.Benchmarks[1].Name != "DCT" {
		t.Errorf("wrong order: %+v", r.Benchmarks)
	}
}

// TestExplicitlyEmptySelections: WithWorkloads() with no arguments means
// "run nothing", unlike omitting the option (which means "run all seven").
func TestExplicitlyEmptySelections(t *testing.T) {
	r, err := Run(context.Background(), WithWorkloads())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Benchmarks) != 0 {
		t.Errorf("empty workload selection ran %d benchmarks", len(r.Benchmarks))
	}
	r, err = Run(context.Background(), WithWorkloads(workloads.DCT()), WithTechniques())
	if err != nil {
		t.Fatal(err)
	}
	if b := r.Benchmarks[0]; len(b.D)+len(b.I) != 0 {
		t.Errorf("empty technique selection attached %d techniques", len(b.D)+len(b.I))
	}
}

// spin is a workload that never halts — only cancellation can stop it.
var spin = workloads.Workload{
	Name:      "spin",
	Sources:   []string{"main:\tli t0, 0\nloop:\taddi t0, t0, 1\n\tb loop\n"},
	MaxInstrs: 1 << 62,
}

// TestRunCancellation: cancelling the context aborts a running benchmark
// promptly and Run returns ctx.Err().
func TestRunCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := Run(ctx, WithWorkloads(spin), WithParallelism(1),
			WithTechniques(MustLookup(Data, DOrig)))
		done <- err
	}()
	time.Sleep(50 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Run did not return after cancellation")
	}
}

// TestRunPreCancelled: an already-cancelled context returns immediately
// without running anything.
func TestRunPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var started bool
	_, err := Run(ctx, WithWorkloads(spin),
		WithProgress(func(Progress) { started = true }))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if started {
		t.Error("benchmark started despite cancelled context")
	}
}

// TestDefaultTechniques: with no options, Run attaches the full standard
// registry — the eight instances of the paper's figures.
func TestDefaultTechniques(t *testing.T) {
	r, err := Run(context.Background(), WithWorkloads(workloads.DCT()))
	if err != nil {
		t.Fatal(err)
	}
	b := r.Benchmarks[0]
	if len(b.D) != 3 || len(b.I) != 5 {
		t.Fatalf("default technique counts: %d D, %d I (want 3, 5)", len(b.D), len(b.I))
	}
	for _, id := range []ID{DOrig, DSetBuf, DMAB} {
		if b.D[id].Stats == nil || b.D[id].Stats.Accesses == 0 {
			t.Errorf("D technique %q missing or idle", id)
		}
	}
	for _, id := range []ID{IOrig, IA4, IMAB8, IMAB16, IMAB32} {
		if b.I[id].Stats == nil || b.I[id].Stats.Accesses == 0 {
			t.Errorf("I technique %q missing or idle", id)
		}
	}
}

// TestRegisterNinthTechnique: adding a configuration to every sweep is one
// registration — no runner changes. A private registry keeps the test
// hermetic.
func TestRegisterNinthTechnique(t *testing.T) {
	reg := NewRegistry()
	for _, tech := range Techniques() {
		if err := reg.Register(tech); err != nil {
			t.Fatal(err)
		}
	}
	ninth := Technique{ID: "always-miss", Domain: Data, Desc: "degenerate baseline",
		New: func(geo cache.Config) Instance {
			c := baseline.NewOriginalD(geo)
			return Instance{Data: c, Stats: c.Stats, Model: ArrayModel(geo)}
		}}
	if err := reg.Register(ninth); err != nil {
		t.Fatal(err)
	}
	r, err := Run(context.Background(), WithWorkloads(workloads.DCT()), WithRegistry(reg))
	if err != nil {
		t.Fatal(err)
	}
	tr, ok := r.Benchmarks[0].D["always-miss"]
	if !ok || tr.Stats.Accesses == 0 {
		t.Fatalf("ninth technique did not run: %+v", tr)
	}
}

// TestRegistryRejects: duplicates and malformed techniques must not
// register.
func TestRegistryRejects(t *testing.T) {
	reg := NewRegistry()
	ok := Technique{ID: "x", Domain: Data, New: MustLookup(Data, DOrig).New}
	if err := reg.Register(ok); err != nil {
		t.Fatal(err)
	}
	if err := reg.Register(ok); err == nil {
		t.Error("duplicate registration accepted")
	}
	if err := reg.Register(Technique{ID: "", Domain: Data, New: ok.New}); err == nil {
		t.Error("empty ID accepted")
	}
	if err := reg.Register(Technique{ID: "y", Domain: Data}); err == nil {
		t.Error("nil factory accepted")
	}
	if err := reg.Register(Technique{ID: "y", Domain: Domain(9), New: ok.New}); err == nil {
		t.Error("bad domain accepted")
	}
	// The same ID in the other domain is a different technique.
	if err := reg.Register(Technique{ID: "x", Domain: Fetch,
		New: MustLookup(Fetch, IOrig).New}); err != nil {
		t.Errorf("cross-domain ID rejected: %v", err)
	}
}

// TestRunRejectsDuplicates: WithTechniques with two techniques of the same
// (domain, ID) would produce ambiguous result keys and must fail.
func TestRunRejectsDuplicates(t *testing.T) {
	d := MustLookup(Data, DOrig)
	if _, err := Run(context.Background(), WithWorkloads(workloads.DCT()),
		WithTechniques(d, d)); err == nil {
		t.Error("duplicate techniques accepted")
	}
}

// TestRunRejectsBrokenFactory: a factory that forgets the sink or the
// counters must fail with a named error, not a distant nil panic.
func TestRunRejectsBrokenFactory(t *testing.T) {
	noStats := Technique{ID: "no-stats", Domain: Data,
		New: func(geo cache.Config) Instance {
			c := baseline.NewOriginalD(geo)
			return Instance{Data: c}
		}}
	if _, err := Run(context.Background(), WithWorkloads(workloads.DCT()),
		WithTechniques(noStats)); err == nil {
		t.Error("factory without counters accepted")
	}
	noSink := Technique{ID: "no-sink", Domain: Fetch,
		New: func(geo cache.Config) Instance {
			c := baseline.NewOriginalI(geo)
			return Instance{Stats: c.Stats}
		}}
	if _, err := Run(context.Background(), WithWorkloads(workloads.DCT()),
		WithTechniques(noSink)); err == nil {
		t.Error("factory without sink accepted")
	}
}
