package suite

import (
	"context"
	"fmt"
	"sync"

	"waymemo/internal/cache"
	"waymemo/internal/pool"
	"waymemo/internal/power"
	"waymemo/internal/stats"
	"waymemo/internal/trace"
	"waymemo/internal/workloads"
)

// TechResult is one technique's outcome on one benchmark: the counters the
// controller accumulated and the power model that prices them.
type TechResult struct {
	Stats *stats.Counters
	Model power.Model
}

// BenchResult holds one benchmark's counters for every technique that ran.
type BenchResult struct {
	Name   string
	Cycles uint64
	Instrs uint64
	// D and I map technique IDs to their results, split by domain.
	D map[ID]TechResult
	I map[ID]TechResult
}

// DPower prices the named data-cache technique over this benchmark.
func (b BenchResult) DPower(id ID) power.Breakdown {
	tr := b.D[id]
	return power.Compute(tr.Stats, b.Cycles, tr.Model)
}

// IPower prices the named instruction-cache technique over this benchmark.
func (b BenchResult) IPower(id ID) power.Breakdown {
	tr := b.I[id]
	return power.Compute(tr.Stats, b.Cycles, tr.Model)
}

// Results is the full suite outcome. Benchmarks appear in the order the
// workloads were given, independent of the parallelism that produced them.
type Results struct {
	Geometry   cache.Config
	Benchmarks []BenchResult
}

// Progress reports one benchmark starting (Done=false) or finishing
// (Done=true). Callbacks are serialized by the runner, so handlers need no
// locking of their own.
type Progress struct {
	Workload string
	Index    int // position in the workload list
	Total    int
	Done     bool
}

// options collects the Run configuration; see the With* constructors.
type options struct {
	workloads     []workloads.Workload
	workloadsSet  bool
	techniques    []Technique
	techniquesSet bool
	registry      *Registry
	geometry      cache.Config
	parallelism   int
	packetBytes   uint32
	progress      func(Progress)
	traceCache    *TraceCache
	noBatch       bool
}

// Option configures Run.
type Option func(*options)

// WithWorkloads selects the benchmarks to run (default: the paper's seven,
// workloads.All()). An explicitly empty selection runs nothing.
func WithWorkloads(ws ...workloads.Workload) Option {
	return func(o *options) { o.workloads, o.workloadsSet = ws, true }
}

// WithTechniques selects the exact techniques to attach, replacing the
// registry default. The values need not be registered anywhere.
func WithTechniques(ts ...Technique) Option {
	return func(o *options) { o.techniques, o.techniquesSet = ts, true }
}

// WithRegistry selects the registry whose techniques run by default
// (default: the package registry). Ignored when WithTechniques is given.
func WithRegistry(r *Registry) Option {
	return func(o *options) { o.registry = r }
}

// WithGeometry sets the cache geometry every technique is instantiated for
// (default: the paper's 32KB 2-way cache.FRV32K).
func WithGeometry(geo cache.Config) Option {
	return func(o *options) { o.geometry = geo }
}

// WithParallelism bounds the number of benchmarks simulated concurrently
// (default and n <= 0: GOMAXPROCS). Results are identical at every level.
func WithParallelism(n int) Option {
	return func(o *options) { o.parallelism = n }
}

// WithPacketBytes overrides the fetch-packet size (default 0: the 8-byte
// VLIW packet); used by the fetch-width ablation.
func WithPacketBytes(pb uint32) Option {
	return func(o *options) { o.packetBytes = pb }
}

// WithProgress installs a callback invoked as benchmarks start and finish.
func WithProgress(fn func(Progress)) Option {
	return func(o *options) { o.progress = fn }
}

// WithTraceCache serves benchmarks from tc's execute-once / replay-many
// engine (default: none, every benchmark executes live): each (workload,
// packetBytes) pair is simulated once with its event streams captured, and
// this and every later Run sharing tc replays the capture into the selected
// techniques instead of re-executing. Counters and power are bit-identical
// to a live run. The capturing execution validates the workload's Check;
// replays trust the capture and skip it.
func WithTraceCache(tc *TraceCache) Option {
	return func(o *options) { o.traceCache = tc }
}

// WithBatchReplay toggles the batched fan-out replay path (default on).
// Batched, a replayed benchmark makes one pass over its capture and feeds
// every technique's sink block by block (trace.Buffer.ReplayAll), so the
// trace streams through memory once however many techniques are attached.
// Off, each sink replays the capture independently through the per-event
// interfaces — the legacy path the batch adapter shim reproduces, kept as
// an escape hatch and as the reference the golden equivalence tests compare
// against. Results are bit-identical either way. Ignored without a trace
// cache (live execution always tees each event to every sink).
func WithBatchReplay(on bool) Option {
	return func(o *options) { o.noBatch = !on }
}

// Run executes every selected workload with every selected technique
// attached, one simulator pass per benchmark, fanning the passes out over a
// worker pool. Each benchmark gets fresh technique instances, so runs are
// deterministic and independent of parallelism; Results.Benchmarks is
// ordered like the workload list. Run returns the first error encountered
// (cancelling the remaining work), or ctx.Err() if the context ends first.
func Run(ctx context.Context, opts ...Option) (*Results, error) {
	o := options{
		registry: defaultRegistry,
		geometry: cache.FRV32K,
	}
	for _, opt := range opts {
		opt(&o)
	}
	ws := o.workloads
	if !o.workloadsSet {
		ws = workloads.All()
	}
	techs := o.techniques
	if !o.techniquesSet {
		techs = o.registry.Techniques()
	}
	seen := map[regKey]bool{}
	for _, t := range techs {
		if err := t.validate(); err != nil {
			return nil, err
		}
		k := regKey{t.Domain, t.ID}
		if seen[k] {
			return nil, fmt.Errorf("suite: duplicate technique %s/%q", t.Domain, t.ID)
		}
		seen[k] = true
	}
	if err := o.geometry.Validate(); err != nil {
		return nil, err
	}

	var progressMu sync.Mutex
	report := func(p Progress) {
		if o.progress == nil {
			return
		}
		progressMu.Lock()
		defer progressMu.Unlock()
		o.progress(p)
	}

	results := make([]BenchResult, len(ws))
	err := pool.Run(ctx, len(ws), o.parallelism, func(runCtx context.Context, idx int) error {
		report(Progress{Workload: ws[idx].Name, Index: idx, Total: len(ws)})
		br, err := runOne(runCtx, ws[idx], techs, o)
		if err != nil {
			return err
		}
		results[idx] = br
		report(Progress{Workload: ws[idx].Name, Index: idx, Total: len(ws), Done: true})
		return nil
	})
	if err != nil {
		return nil, err
	}
	return &Results{Geometry: o.geometry, Benchmarks: results}, nil
}

// runOne instantiates every technique fresh and drives one benchmark
// through the fetch/data event tees.
func runOne(ctx context.Context, w workloads.Workload, techs []Technique, o options) (BenchResult, error) {
	br := BenchResult{Name: w.Name, D: map[ID]TechResult{}, I: map[ID]TechResult{}}
	var fetchSinks []trace.FetchSink
	var dataSinks []trace.DataSink
	for _, t := range techs {
		inst := t.New(o.geometry)
		if inst.Stats == nil {
			return br, fmt.Errorf("suite: technique %s/%q produced no counters", t.Domain, t.ID)
		}
		switch t.Domain {
		case Data:
			if inst.Data == nil {
				return br, fmt.Errorf("suite: technique %s/%q produced no data sink", t.Domain, t.ID)
			}
			dataSinks = append(dataSinks, inst.Data)
			br.D[t.ID] = TechResult{Stats: inst.Stats, Model: inst.Model}
		case Fetch:
			if inst.Fetch == nil {
				return br, fmt.Errorf("suite: technique %s/%q produced no fetch sink", t.Domain, t.ID)
			}
			fetchSinks = append(fetchSinks, inst.Fetch)
			br.I[t.ID] = TechResult{Stats: inst.Stats, Model: inst.Model}
		}
	}
	if o.traceCache != nil {
		if !o.noBatch {
			// Batched fan-out: one pass over the capture feeds every sink
			// per block, so the trace streams through memory once for the
			// whole technique set.
			pairs := make([]trace.SinkPair, 0, len(fetchSinks)+len(dataSinks))
			for _, s := range fetchSinks {
				pairs = append(pairs, trace.SinkPair{Fetch: s})
			}
			for _, s := range dataSinks {
				pairs = append(pairs, trace.SinkPair{Data: s})
			}
			c, err := o.traceCache.FanOut(ctx, w, o.packetBytes, pairs, 1)
			if err != nil {
				return br, err
			}
			br.Cycles, br.Instrs = c.Cycles, c.Instrs
			return br, nil
		}
		ent, err := o.traceCache.get(ctx, w, o.packetBytes)
		if err != nil {
			return br, err
		}
		// Legacy per-event path: replay the packed stream once per sink, so
		// each controller's tables stay hot while the buffer streams past —
		// at the cost of streaming (and decoding) the buffer once per sink.
		for _, s := range fetchSinks {
			if err := ent.buf.Replay(ctx, s, nil); err != nil {
				return br, err
			}
		}
		for _, s := range dataSinks {
			if err := ent.buf.Replay(ctx, nil, s); err != nil {
				return br, err
			}
		}
		o.traceCache.replays.Add(1)
		br.Cycles, br.Instrs = ent.cycles, ent.instrs
		return br, nil
	}
	var fetch trace.FetchSink
	if len(fetchSinks) > 0 {
		fetch = trace.FetchTee(fetchSinks...)
	}
	var data trace.DataSink
	if len(dataSinks) > 0 {
		data = trace.DataTee(dataSinks...)
	}
	c, err := workloads.RunPacketContext(ctx, w, fetch, data, o.packetBytes)
	if err != nil {
		return br, err
	}
	br.Cycles, br.Instrs = c.Cycles, c.Instrs
	return br, nil
}
