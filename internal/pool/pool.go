// Package pool provides the indexed worker pool shared by the suite
// runner (internal/suite) and the design-space explorer (internal/explore):
// N independent jobs fan out over a bounded set of workers, the first
// failure cancels the rest, and job identity is an index so callers write
// results into pre-sized slices — deterministic output order at any
// parallelism level.
package pool

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
)

// PanicError is a job that panicked: Run recovers it inside the worker,
// cancels the remaining jobs and returns this typed error instead of
// letting one bad job take down the whole process — a daemon serving many
// sweeps must survive a single poisoned grid point.
type PanicError struct {
	Index int    // the job index that panicked
	Value any    // the recovered panic value
	Stack []byte // the panicking goroutine's stack
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("pool: job %d panicked: %v", e.Index, e.Value)
}

// call runs one job invocation with panic containment.
func call(ctx context.Context, idx int, fn func(ctx context.Context, idx int) error) (err error) {
	defer func() {
		if v := recover(); v != nil {
			err = &PanicError{Index: idx, Value: v, Stack: debug.Stack()}
		}
	}()
	return fn(ctx, idx)
}

// Split partitions n items into at most k contiguous, non-empty ranges
// whose sizes differ by at most one, returned as [start, end) pairs in
// order. It is the deterministic sharding callers use to turn one large
// fan-out (a workload's grid points, a sink group) into Run-sized jobs:
// the boundaries depend only on (n, k), never on scheduling. k <= 0 is
// treated as 1; fewer than k ranges come back when n < k.
func Split(n, k int) [][2]int {
	if n <= 0 {
		return nil
	}
	if k <= 0 {
		k = 1
	}
	if k > n {
		k = n
	}
	out := make([][2]int, 0, k)
	for i, start := 0, 0; i < k; i++ {
		size := n / k
		if i < n%k {
			size++
		}
		out = append(out, [2]int{start, start + size})
		start += size
	}
	return out
}

// Run invokes fn(ctx, idx) for every idx in [0, n), at most par
// concurrently (par <= 0 selects GOMAXPROCS; par is clamped to n). The
// context passed to fn is cancelled as soon as any invocation returns an
// error or the caller's context ends; indices not yet started are then
// skipped. Run blocks until all started invocations return, then reports
// the first error encountered, or ctx.Err() when the caller's context
// ended first. A panicking invocation is recovered and surfaces as a
// *PanicError for that index; it cancels the rest like any other failure.
func Run(ctx context.Context, n, par int, fn func(ctx context.Context, idx int) error) error {
	if par <= 0 {
		par = runtime.GOMAXPROCS(0)
	}
	if par > n {
		par = n
	}
	if err := ctx.Err(); err != nil {
		return err
	}

	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	var (
		errOnce  sync.Once
		firstErr error
	)
	fail := func(err error) {
		errOnce.Do(func() {
			firstErr = err
			cancel()
		})
	}

	jobs := make(chan int)
	var wg sync.WaitGroup
	for i := 0; i < par; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for idx := range jobs {
				if runCtx.Err() != nil {
					continue // drain: a job failed or the caller cancelled
				}
				if err := call(runCtx, idx, fn); err != nil {
					fail(err)
				}
			}
		}()
	}
	for idx := 0; idx < n; idx++ {
		jobs <- idx
	}
	close(jobs)
	wg.Wait()

	if firstErr != nil {
		return firstErr
	}
	return ctx.Err()
}
