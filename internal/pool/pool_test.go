package pool

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
)

func TestRunCoversEveryIndex(t *testing.T) {
	for _, par := range []int{0, 1, 3, 100} {
		var hits [17]atomic.Int32
		err := Run(context.Background(), len(hits), par, func(ctx context.Context, idx int) error {
			hits[idx].Add(1)
			return nil
		})
		if err != nil {
			t.Fatalf("par=%d: %v", par, err)
		}
		for i := range hits {
			if got := hits[i].Load(); got != 1 {
				t.Errorf("par=%d: index %d ran %d times", par, i, got)
			}
		}
	}
}

func TestRunZeroJobs(t *testing.T) {
	if err := Run(context.Background(), 0, 4, func(context.Context, int) error {
		t.Error("fn called with no jobs")
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

func TestRunFirstErrorCancelsRest(t *testing.T) {
	boom := errors.New("boom")
	var started atomic.Int32
	err := Run(context.Background(), 1000, 1, func(ctx context.Context, idx int) error {
		started.Add(1)
		if idx == 3 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	// Sequential pool: indices 0-3 run, the failure cancels, the rest drain.
	if got := started.Load(); got != 4 {
		t.Errorf("%d jobs started, want 4", got)
	}
}

func TestRunCallerCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	called := false
	err := Run(ctx, 5, 2, func(context.Context, int) error { called = true; return nil })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if called {
		t.Error("fn ran under a pre-cancelled context")
	}
}

func TestRunBoundsParallelism(t *testing.T) {
	var cur, peak atomic.Int32
	err := Run(context.Background(), 64, 3, func(ctx context.Context, idx int) error {
		n := cur.Add(1)
		for {
			p := peak.Load()
			if n <= p || peak.CompareAndSwap(p, n) {
				break
			}
		}
		defer cur.Add(-1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if peak.Load() > 3 {
		t.Errorf("peak concurrency %d exceeds par=3", peak.Load())
	}
}
