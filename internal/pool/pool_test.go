package pool

import (
	"context"
	"errors"
	"reflect"
	"sync/atomic"
	"testing"
)

func TestRunCoversEveryIndex(t *testing.T) {
	for _, par := range []int{0, 1, 3, 100} {
		var hits [17]atomic.Int32
		err := Run(context.Background(), len(hits), par, func(ctx context.Context, idx int) error {
			hits[idx].Add(1)
			return nil
		})
		if err != nil {
			t.Fatalf("par=%d: %v", par, err)
		}
		for i := range hits {
			if got := hits[i].Load(); got != 1 {
				t.Errorf("par=%d: index %d ran %d times", par, i, got)
			}
		}
	}
}

func TestRunZeroJobs(t *testing.T) {
	if err := Run(context.Background(), 0, 4, func(context.Context, int) error {
		t.Error("fn called with no jobs")
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

func TestRunFirstErrorCancelsRest(t *testing.T) {
	boom := errors.New("boom")
	var started atomic.Int32
	err := Run(context.Background(), 1000, 1, func(ctx context.Context, idx int) error {
		started.Add(1)
		if idx == 3 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	// Sequential pool: indices 0-3 run, the failure cancels, the rest drain.
	if got := started.Load(); got != 4 {
		t.Errorf("%d jobs started, want 4", got)
	}
}

func TestRunCallerCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	called := false
	err := Run(ctx, 5, 2, func(context.Context, int) error { called = true; return nil })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if called {
		t.Error("fn ran under a pre-cancelled context")
	}
}

func TestRunBoundsParallelism(t *testing.T) {
	var cur, peak atomic.Int32
	err := Run(context.Background(), 64, 3, func(ctx context.Context, idx int) error {
		n := cur.Add(1)
		for {
			p := peak.Load()
			if n <= p || peak.CompareAndSwap(p, n) {
				break
			}
		}
		defer cur.Add(-1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if peak.Load() > 3 {
		t.Errorf("peak concurrency %d exceeds par=3", peak.Load())
	}
}

func TestSplit(t *testing.T) {
	cases := []struct {
		n, k int
		want [][2]int
	}{
		{0, 4, nil},
		{1, 4, [][2]int{{0, 1}}},
		{5, 2, [][2]int{{0, 3}, {3, 5}}},
		{6, 3, [][2]int{{0, 2}, {2, 4}, {4, 6}}},
		{7, 3, [][2]int{{0, 3}, {3, 5}, {5, 7}}},
		{3, 0, [][2]int{{0, 3}}},
	}
	for _, c := range cases {
		got := Split(c.n, c.k)
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("Split(%d, %d) = %v, want %v", c.n, c.k, got, c.want)
		}
	}
	// Ranges always cover [0, n) exactly, in order, sizes within one.
	for n := 1; n <= 40; n++ {
		for k := 1; k <= 10; k++ {
			rs := Split(n, k)
			prev, minSz, maxSz := 0, n, 0
			for _, r := range rs {
				if r[0] != prev || r[1] <= r[0] {
					t.Fatalf("Split(%d, %d) = %v: bad range %v", n, k, rs, r)
				}
				if sz := r[1] - r[0]; sz < minSz {
					minSz = sz
				} else if sz > maxSz {
					maxSz = sz
				}
				prev = r[1]
			}
			if prev != n || (maxSz > 0 && maxSz-minSz > 1) {
				t.Fatalf("Split(%d, %d) = %v: uneven or incomplete", n, k, rs)
			}
		}
	}
}

// TestRunPanicContained: a panicking job must surface as a typed PanicError
// carrying the job index and a stack, cancel the remaining jobs like any
// other failure, and never escape Run — one poisoned work item cannot take
// the process down.
func TestRunPanicContained(t *testing.T) {
	err := Run(context.Background(), 100, 2, func(ctx context.Context, idx int) error {
		if idx == 0 {
			panic("poisoned item")
		}
		return nil
	})
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("Run returned %v, want a *PanicError", err)
	}
	if pe.Index != 0 || pe.Value != "poisoned item" || len(pe.Stack) == 0 {
		t.Fatalf("PanicError = {Index: %d, Value: %v, stack %d bytes}", pe.Index, pe.Value, len(pe.Stack))
	}
	if want := "pool: job 0 panicked: poisoned item"; err.Error() != want {
		t.Fatalf("error text %q, want %q", err.Error(), want)
	}
}
