package asm

import (
	"encoding/binary"
	"fmt"
	"math"
	"strconv"
	"strings"
)

// directive handles one assembler directive during either pass.
func (a *assembler) directive(st *stmt) error {
	switch st.name {
	case ".org":
		if len(st.operands) != 1 {
			return fmt.Errorf(".org expects one operand")
		}
		v, err := a.exprVal(st.operands[0])
		if err != nil {
			return fmt.Errorf(".org: %w", err)
		}
		if v < 0 || v > 0xFFFFFFFF {
			return fmt.Errorf(".org address 0x%x out of range", v)
		}
		a.flushText()
		a.pc = uint32(v)
		return nil

	case ".align":
		if len(st.operands) != 1 {
			return fmt.Errorf(".align expects one operand")
		}
		v, err := a.exprVal(st.operands[0])
		if err != nil {
			return err
		}
		if v <= 0 || v&(v-1) != 0 {
			return fmt.Errorf(".align %d: not a power of two", v)
		}
		pad := (uint32(v) - a.pc%uint32(v)) % uint32(v)
		if pad == 0 {
			return nil
		}
		if a.pass == 1 {
			a.pc += pad
			return nil
		}
		return a.emitBytes(make([]byte, pad))

	case ".equ", ".set":
		if len(st.operands) != 2 {
			return fmt.Errorf("%s expects name, value", st.name)
		}
		name := strings.TrimSpace(st.operands[0])
		if !isIdent(name) {
			return fmt.Errorf("bad constant name %q", name)
		}
		v, err := a.exprVal(st.operands[1])
		if err != nil {
			return fmt.Errorf("%s %s: %w", st.name, name, err)
		}
		if a.pass == 1 {
			if old, dup := a.syms[name]; dup && old != v {
				return fmt.Errorf("constant %q redefined", name)
			}
		}
		a.syms[name] = v
		return nil

	case ".entry":
		if len(st.operands) != 1 {
			return fmt.Errorf(".entry expects one operand")
		}
		if a.pass == 2 {
			v, err := a.exprVal(st.operands[0])
			if err != nil {
				return err
			}
			a.entry, a.entrySet = v, true
		}
		return nil

	case ".word", ".half", ".byte":
		width := map[string]int{".word": 4, ".half": 2, ".byte": 1}[st.name]
		if a.pass == 1 {
			a.pc += uint32(width * len(st.operands))
			return nil
		}
		buf := make([]byte, 0, width*len(st.operands))
		for _, opnd := range st.operands {
			v, err := a.exprVal(opnd)
			if err != nil {
				return err
			}
			switch width {
			case 4:
				buf = binary.LittleEndian.AppendUint32(buf, uint32(v))
			case 2:
				buf = binary.LittleEndian.AppendUint16(buf, uint16(v))
			default:
				buf = append(buf, byte(v))
			}
		}
		return a.emitBytes(buf)

	case ".double":
		if a.pass == 1 {
			a.pc += uint32(8 * len(st.operands))
			return nil
		}
		buf := make([]byte, 0, 8*len(st.operands))
		for _, opnd := range st.operands {
			f, err := strconv.ParseFloat(strings.TrimSpace(opnd), 64)
			if err != nil {
				// Allow integer expressions too.
				v, eerr := a.exprVal(opnd)
				if eerr != nil {
					return fmt.Errorf(".double: %v", err)
				}
				f = float64(v)
			}
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(f))
		}
		return a.emitBytes(buf)

	case ".space":
		if len(st.operands) < 1 || len(st.operands) > 2 {
			return fmt.Errorf(".space expects size[, fill]")
		}
		n, err := a.exprVal(st.operands[0])
		if err != nil {
			return fmt.Errorf(".space: %w", err)
		}
		if n < 0 || n > 1<<28 {
			return fmt.Errorf(".space size %d out of range", n)
		}
		if a.pass == 1 {
			a.pc += uint32(n)
			return nil
		}
		fill := byte(0)
		if len(st.operands) == 2 {
			v, err := a.exprVal(st.operands[1])
			if err != nil {
				return err
			}
			fill = byte(v)
		}
		buf := make([]byte, n)
		if fill != 0 {
			for i := range buf {
				buf[i] = fill
			}
		}
		return a.emitBytes(buf)

	case ".ascii", ".asciiz":
		var buf []byte
		for _, opnd := range st.operands {
			s, err := parseStringLit(opnd)
			if err != nil {
				return err
			}
			buf = append(buf, s...)
			if st.name == ".asciiz" {
				buf = append(buf, 0)
			}
		}
		if a.pass == 1 {
			a.pc += uint32(len(buf))
			return nil
		}
		return a.emitBytes(buf)

	case ".global", ".globl", ".text", ".data":
		return nil // accepted for familiarity; no effect in a flat image

	default:
		return fmt.Errorf("unknown directive %q", st.name)
	}
}

// parseStringLit parses a double-quoted string with C-style escapes.
func parseStringLit(s string) ([]byte, error) {
	s = strings.TrimSpace(s)
	if len(s) < 2 || s[0] != '"' || s[len(s)-1] != '"' {
		return nil, fmt.Errorf("bad string literal %s", s)
	}
	body := s[1 : len(s)-1]
	out := make([]byte, 0, len(body))
	for i := 0; i < len(body); i++ {
		c := body[i]
		if c != '\\' {
			out = append(out, c)
			continue
		}
		i++
		if i >= len(body) {
			return nil, fmt.Errorf("dangling escape in %s", s)
		}
		switch body[i] {
		case 'n':
			out = append(out, '\n')
		case 't':
			out = append(out, '\t')
		case 'r':
			out = append(out, '\r')
		case '0':
			out = append(out, 0)
		case '\\':
			out = append(out, '\\')
		case '"':
			out = append(out, '"')
		default:
			return nil, fmt.Errorf("unknown escape \\%c", body[i])
		}
	}
	return out, nil
}
