package asm

// The RV32IM dialect: mnemonic table and encoders behind AssembleRV32.
// Directives, labels, expressions and the two-pass li sizing protocol are
// the shared machinery in asm.go; only instruction encoding differs.

import (
	"fmt"

	"waymemo/internal/isa/rv32"
)

// rv32Dialect is the dialect AssembleRV32 uses.
var rv32Dialect = dialect{
	name:     "rv32",
	parseReg: rv32.ParseReg,
	dispMin:  -2048,
	dispMax:  2047,
}

func (a *assembler) emitRV(in rv32.Instr) error { return a.emitWord(in.Encode()) }

// emitRVBranch emits one conditional branch with PC-relative target expr.
func (a *assembler) emitRVBranch(f3, rs1, rs2 uint8, targetExpr string) error {
	t, err := a.exprVal(targetExpr)
	if err != nil {
		return err
	}
	off := int64(int32(uint32(t) - a.pc))
	if off%2 != 0 {
		return fmt.Errorf("branch target 0x%x not halfword aligned", t)
	}
	if off < -4096 || off > 4094 {
		return fmt.Errorf("branch target out of range (offset %d)", off)
	}
	return a.emitRV(rv32.Instr{Op: rv32.OpBranch, F3: f3, Rs1: rs1, Rs2: rs2, Imm: int32(off)})
}

// emitRVJump emits jal rd, target.
func (a *assembler) emitRVJump(rd uint8, targetExpr string) error {
	t, err := a.exprVal(targetExpr)
	if err != nil {
		return err
	}
	off := int64(int32(uint32(t) - a.pc))
	if off%2 != 0 {
		return fmt.Errorf("jump target 0x%x not halfword aligned", t)
	}
	if off < -(1<<20) || off >= 1<<20 {
		return fmt.Errorf("jump target out of range (offset %d)", off)
	}
	return a.emitRV(rv32.Instr{Op: rv32.OpJAL, Rd: rd, Imm: int32(off)})
}

// rvR builds a three-register handler (rd, rs1, rs2).
func rvR(f3, f7 uint8) opSpec {
	return opSpec{size: fixedSize(4), emit: func(a *assembler, st *stmt) error {
		if err := need(st, 3); err != nil {
			return err
		}
		rd, err := rv32.ParseReg(st.operands[0])
		if err != nil {
			return err
		}
		rs1, err := rv32.ParseReg(st.operands[1])
		if err != nil {
			return err
		}
		rs2, err := rv32.ParseReg(st.operands[2])
		if err != nil {
			return err
		}
		return a.emitRV(rv32.Instr{Op: rv32.OpOp, F3: f3, F7: f7, Rd: rd, Rs1: rs1, Rs2: rs2})
	}}
}

// rvI builds an immediate-arithmetic handler (rd, rs1, imm).
func rvI(f3 uint8) opSpec {
	return opSpec{size: fixedSize(4), emit: func(a *assembler, st *stmt) error {
		if err := need(st, 3); err != nil {
			return err
		}
		rd, err := rv32.ParseReg(st.operands[0])
		if err != nil {
			return err
		}
		rs1, err := rv32.ParseReg(st.operands[1])
		if err != nil {
			return err
		}
		v, err := a.exprVal(st.operands[2])
		if err != nil {
			return err
		}
		if v < -2048 || v > 2047 {
			return fmt.Errorf("immediate %d out of signed 12-bit range", v)
		}
		return a.emitRV(rv32.Instr{Op: rv32.OpOpImm, F3: f3, Rd: rd, Rs1: rs1, Imm: int32(v)})
	}}
}

// rvShift builds an immediate-shift handler (rd, rs1, shamt).
func rvShift(f3, f7 uint8) opSpec {
	return opSpec{size: fixedSize(4), emit: func(a *assembler, st *stmt) error {
		if err := need(st, 3); err != nil {
			return err
		}
		rd, err := rv32.ParseReg(st.operands[0])
		if err != nil {
			return err
		}
		rs1, err := rv32.ParseReg(st.operands[1])
		if err != nil {
			return err
		}
		sh, err := a.exprVal(st.operands[2])
		if err != nil {
			return err
		}
		if sh < 0 || sh > 31 {
			return fmt.Errorf("shift amount %d out of range", sh)
		}
		return a.emitRV(rv32.Instr{Op: rv32.OpOpImm, F3: f3, F7: f7, Rd: rd, Rs1: rs1, Imm: int32(sh)})
	}}
}

// rvLoad builds a load handler (rd, off(rs1)).
func rvLoad(f3 uint8) opSpec {
	return opSpec{size: fixedSize(4), emit: func(a *assembler, st *stmt) error {
		if err := need(st, 2); err != nil {
			return err
		}
		rd, err := rv32.ParseReg(st.operands[0])
		if err != nil {
			return err
		}
		off, rs1, err := a.memOperand(st.operands[1])
		if err != nil {
			return err
		}
		return a.emitRV(rv32.Instr{Op: rv32.OpLoad, F3: f3, Rd: rd, Rs1: rs1, Imm: off})
	}}
}

// rvStore builds a store handler (rs2, off(rs1)).
func rvStore(f3 uint8) opSpec {
	return opSpec{size: fixedSize(4), emit: func(a *assembler, st *stmt) error {
		if err := need(st, 2); err != nil {
			return err
		}
		rs2, err := rv32.ParseReg(st.operands[0])
		if err != nil {
			return err
		}
		off, rs1, err := a.memOperand(st.operands[1])
		if err != nil {
			return err
		}
		return a.emitRV(rv32.Instr{Op: rv32.OpStore, F3: f3, Rs1: rs1, Rs2: rs2, Imm: off})
	}}
}

// rvBranch builds a conditional-branch handler (rs1, rs2, target); swap
// exchanges the registers for the bgt/ble synonyms.
func rvBranch(f3 uint8, swap bool) opSpec {
	return opSpec{size: fixedSize(4), emit: func(a *assembler, st *stmt) error {
		if err := need(st, 3); err != nil {
			return err
		}
		rs1, err := rv32.ParseReg(st.operands[0])
		if err != nil {
			return err
		}
		rs2, err := rv32.ParseReg(st.operands[1])
		if err != nil {
			return err
		}
		if swap {
			rs1, rs2 = rs2, rs1
		}
		return a.emitRVBranch(f3, rs1, rs2, st.operands[2])
	}}
}

// rvBranchZero builds a branch-against-zero pseudo; zeroFirst puts the
// hard-wired zero in the rs1 slot.
func rvBranchZero(f3 uint8, zeroFirst bool) opSpec {
	return opSpec{size: fixedSize(4), emit: func(a *assembler, st *stmt) error {
		if err := need(st, 2); err != nil {
			return err
		}
		r, err := rv32.ParseReg(st.operands[0])
		if err != nil {
			return err
		}
		rs1, rs2 := r, uint8(rv32.RegZero)
		if zeroFirst {
			rs1, rs2 = uint8(rv32.RegZero), r
		}
		return a.emitRVBranch(f3, rs1, rs2, st.operands[1])
	}}
}

// rvUpper builds lui/auipc (rd, upper20).
func rvUpper(op uint8) opSpec {
	return opSpec{size: fixedSize(4), emit: func(a *assembler, st *stmt) error {
		if err := need(st, 2); err != nil {
			return err
		}
		rd, err := rv32.ParseReg(st.operands[0])
		if err != nil {
			return err
		}
		v, err := a.exprVal(st.operands[1])
		if err != nil {
			return err
		}
		if v < 0 || v > 0xFFFFF {
			return fmt.Errorf("upper immediate %d out of 20-bit range", v)
		}
		return a.emitRV(rv32.Instr{Op: op, Rd: rd, Imm: int32(uint32(v) << 12)})
	}}
}

// rvSystem builds ecall/ebreak (and the halt alias).
func rvSystem(imm int32) opSpec {
	return opSpec{size: fixedSize(4), emit: func(a *assembler, st *stmt) error {
		if err := need(st, 0); err != nil {
			return err
		}
		return a.emitRV(rv32.Instr{Op: rv32.OpSystem, Imm: imm})
	}}
}

// rvHiLo splits a 32-bit value for a lui+addi pair: lo is the sign-extended
// low 12 bits and hi the remainder (low 12 bits zero), so hi + lo == v.
func rvHiLo(u uint32) (hi uint32, lo int32) {
	lo = int32(u<<20) >> 20
	return u - uint32(lo), lo
}

// rvLISize sizes li during pass 1: one instruction when the value fits addi
// or a bare lui, two otherwise; undefined forward symbols pin the wide form.
func rvLISize(a *assembler, st *stmt) (int, error) {
	if err := need(st, 2); err != nil {
		return 0, err
	}
	v, err := evalExpr(st.operands[1], a.symsInt64(), a.pc)
	if err != nil {
		if _, undef := err.(errUndefined); undef {
			a.liWide[st.index] = true
			return 8, nil
		}
		return 0, err
	}
	if (v >= -2048 && v <= 2047) || (v&0xFFF) == 0 && v >= -(1<<31) && v <= 0xFFFFFFFF {
		return 4, nil
	}
	a.liWide[st.index] = true
	return 8, nil
}

func rvEmitLI(a *assembler, st *stmt) error {
	rd, err := rv32.ParseReg(st.operands[0])
	if err != nil {
		return err
	}
	v, err := a.exprVal(st.operands[1])
	if err != nil {
		return err
	}
	u := uint32(v)
	if int64(int32(u)) != v && v>>32 != 0 && v>>32 != -1 {
		return fmt.Errorf("li value %d does not fit in 32 bits", v)
	}
	if a.liWide[st.index] {
		hi, lo := rvHiLo(u)
		if err := a.emitRV(rv32.Instr{Op: rv32.OpLUI, Rd: rd, Imm: int32(hi)}); err != nil {
			return err
		}
		return a.emitRV(rv32.Instr{Op: rv32.OpOpImm, F3: rv32.F3ADD, Rd: rd, Rs1: rd, Imm: lo})
	}
	if v >= -2048 && v <= 2047 {
		return a.emitRV(rv32.Instr{Op: rv32.OpOpImm, F3: rv32.F3ADD, Rd: rd, Rs1: rv32.RegZero, Imm: int32(v)})
	}
	return a.emitRV(rv32.Instr{Op: rv32.OpLUI, Rd: rd, Imm: int32(u)})
}

func rvEmitLA(a *assembler, st *stmt) error {
	if err := need(st, 2); err != nil {
		return err
	}
	rd, err := rv32.ParseReg(st.operands[0])
	if err != nil {
		return err
	}
	v, err := a.exprVal(st.operands[1])
	if err != nil {
		return err
	}
	hi, lo := rvHiLo(uint32(v))
	if err := a.emitRV(rv32.Instr{Op: rv32.OpLUI, Rd: rd, Imm: int32(hi)}); err != nil {
		return err
	}
	return a.emitRV(rv32.Instr{Op: rv32.OpOpImm, F3: rv32.F3ADD, Rd: rd, Rs1: rd, Imm: lo})
}

func rvEmitMove(a *assembler, st *stmt) error {
	if err := need(st, 2); err != nil {
		return err
	}
	rd, err := rv32.ParseReg(st.operands[0])
	if err != nil {
		return err
	}
	rs1, err := rv32.ParseReg(st.operands[1])
	if err != nil {
		return err
	}
	return a.emitRV(rv32.Instr{Op: rv32.OpOpImm, F3: rv32.F3ADD, Rd: rd, Rs1: rs1})
}

func init() {
	rv32Dialect.ops = map[string]opSpec{
		// Register-register (RV32I + M).
		"add": rvR(rv32.F3ADD, rv32.F7Base), "sub": rvR(rv32.F3ADD, rv32.F7Sub),
		"sll": rvR(rv32.F3SLL, rv32.F7Base), "slt": rvR(rv32.F3SLT, rv32.F7Base),
		"sltu": rvR(rv32.F3SLTU, rv32.F7Base), "xor": rvR(rv32.F3XOR, rv32.F7Base),
		"srl": rvR(rv32.F3SR, rv32.F7Base), "sra": rvR(rv32.F3SR, rv32.F7Sub),
		"or": rvR(rv32.F3OR, rv32.F7Base), "and": rvR(rv32.F3AND, rv32.F7Base),
		"mul": rvR(rv32.F3MUL, rv32.F7Mul), "mulh": rvR(rv32.F3MULH, rv32.F7Mul),
		"mulhsu": rvR(rv32.F3MULHSU, rv32.F7Mul), "mulhu": rvR(rv32.F3MULHU, rv32.F7Mul),
		"div": rvR(rv32.F3DIV, rv32.F7Mul), "divu": rvR(rv32.F3DIVU, rv32.F7Mul),
		"rem": rvR(rv32.F3REM, rv32.F7Mul), "remu": rvR(rv32.F3REMU, rv32.F7Mul),

		// Immediate arithmetic and shifts.
		"addi": rvI(rv32.F3ADD), "slti": rvI(rv32.F3SLT), "sltiu": rvI(rv32.F3SLTU),
		"xori": rvI(rv32.F3XOR), "ori": rvI(rv32.F3OR), "andi": rvI(rv32.F3AND),
		"slli": rvShift(rv32.F3SLL, rv32.F7Base),
		"srli": rvShift(rv32.F3SR, rv32.F7Base),
		"srai": rvShift(rv32.F3SR, rv32.F7Sub),

		// Loads and stores.
		"lb": rvLoad(rv32.F3LB), "lh": rvLoad(rv32.F3LH), "lw": rvLoad(rv32.F3LW),
		"lbu": rvLoad(rv32.F3LBU), "lhu": rvLoad(rv32.F3LHU),
		"sb": rvStore(0), "sh": rvStore(1), "sw": rvStore(2),

		// Branches and their synonyms.
		"beq": rvBranch(rv32.F3BEQ, false), "bne": rvBranch(rv32.F3BNE, false),
		"blt": rvBranch(rv32.F3BLT, false), "bge": rvBranch(rv32.F3BGE, false),
		"bltu": rvBranch(rv32.F3BLTU, false), "bgeu": rvBranch(rv32.F3BGEU, false),
		"bgt": rvBranch(rv32.F3BLT, true), "ble": rvBranch(rv32.F3BGE, true),
		"bgtu": rvBranch(rv32.F3BLTU, true), "bleu": rvBranch(rv32.F3BGEU, true),
		"beqz": rvBranchZero(rv32.F3BEQ, false), "bnez": rvBranchZero(rv32.F3BNE, false),
		"bltz": rvBranchZero(rv32.F3BLT, false), "bgez": rvBranchZero(rv32.F3BGE, false),
		"bgtz": rvBranchZero(rv32.F3BLT, true), "blez": rvBranchZero(rv32.F3BGE, true),

		// Upper immediates.
		"lui": rvUpper(rv32.OpLUI), "auipc": rvUpper(rv32.OpAUIPC),

		// Jumps. jal takes an optional link register (default ra); jalr
		// takes one or two register operands like the FRVL dialect.
		"jal": {size: fixedSize(4), emit: func(a *assembler, st *stmt) error {
			switch len(st.operands) {
			case 1:
				return a.emitRVJump(rv32.RegRA, st.operands[0])
			case 2:
				rd, err := rv32.ParseReg(st.operands[0])
				if err != nil {
					return err
				}
				return a.emitRVJump(rd, st.operands[1])
			}
			return fmt.Errorf("jal expects 1 or 2 operands")
		}},
		"j": {size: fixedSize(4), emit: func(a *assembler, st *stmt) error {
			if err := need(st, 1); err != nil {
				return err
			}
			return a.emitRVJump(rv32.RegZero, st.operands[0])
		}},
		"b": {size: fixedSize(4), emit: func(a *assembler, st *stmt) error {
			if err := need(st, 1); err != nil {
				return err
			}
			return a.emitRVJump(rv32.RegZero, st.operands[0])
		}},
		"call": {size: fixedSize(4), emit: func(a *assembler, st *stmt) error {
			if err := need(st, 1); err != nil {
				return err
			}
			return a.emitRVJump(rv32.RegRA, st.operands[0])
		}},
		"jalr": {size: fixedSize(4), emit: func(a *assembler, st *stmt) error {
			var rd, rs1 uint8
			var err error
			switch len(st.operands) {
			case 1:
				rd = rv32.RegRA
				rs1, err = rv32.ParseReg(st.operands[0])
			case 2:
				rd, err = rv32.ParseReg(st.operands[0])
				if err == nil {
					rs1, err = rv32.ParseReg(st.operands[1])
				}
			default:
				return fmt.Errorf("jalr expects 1 or 2 operands")
			}
			if err != nil {
				return err
			}
			return a.emitRV(rv32.Instr{Op: rv32.OpJALR, Rd: rd, Rs1: rs1})
		}},
		"jr": {size: fixedSize(4), emit: func(a *assembler, st *stmt) error {
			if err := need(st, 1); err != nil {
				return err
			}
			rs1, err := rv32.ParseReg(st.operands[0])
			if err != nil {
				return err
			}
			return a.emitRV(rv32.Instr{Op: rv32.OpJALR, Rd: rv32.RegZero, Rs1: rs1})
		}},
		"ret": {size: fixedSize(4), emit: func(a *assembler, st *stmt) error {
			if err := need(st, 0); err != nil {
				return err
			}
			return a.emitRV(rv32.Instr{Op: rv32.OpJALR, Rd: rv32.RegZero, Rs1: rv32.RegRA})
		}},

		// System. halt is an alias for ebreak so shared kernel sources port
		// with minimal edits; the interpreter halts on either.
		"ecall":  rvSystem(rv32.SysECall),
		"ebreak": rvSystem(rv32.SysEBreak),
		"halt":   rvSystem(rv32.SysEBreak),
		"nop": {size: fixedSize(4), emit: func(a *assembler, st *stmt) error {
			if err := need(st, 0); err != nil {
				return err
			}
			return a.emitRV(rv32.Instr{Op: rv32.OpOpImm, F3: rv32.F3ADD})
		}},

		// Pseudo-instructions, mirroring the FRVL dialect's set.
		"li":   {size: rvLISize, emit: rvEmitLI},
		"la":   {size: fixedSize(8), emit: rvEmitLA},
		"mv":   {size: fixedSize(4), emit: rvEmitMove},
		"move": {size: fixedSize(4), emit: rvEmitMove},
		"not": {size: fixedSize(4), emit: func(a *assembler, st *stmt) error {
			if err := need(st, 2); err != nil {
				return err
			}
			rd, err := rv32.ParseReg(st.operands[0])
			if err != nil {
				return err
			}
			rs1, err := rv32.ParseReg(st.operands[1])
			if err != nil {
				return err
			}
			return a.emitRV(rv32.Instr{Op: rv32.OpOpImm, F3: rv32.F3XOR, Rd: rd, Rs1: rs1, Imm: -1})
		}},
		"neg": {size: fixedSize(4), emit: func(a *assembler, st *stmt) error {
			if err := need(st, 2); err != nil {
				return err
			}
			rd, err := rv32.ParseReg(st.operands[0])
			if err != nil {
				return err
			}
			rs2, err := rv32.ParseReg(st.operands[1])
			if err != nil {
				return err
			}
			return a.emitRV(rv32.Instr{Op: rv32.OpOp, F3: rv32.F3ADD, F7: rv32.F7Sub, Rd: rd, Rs1: rv32.RegZero, Rs2: rs2})
		}},
		"subi": {size: fixedSize(4), emit: func(a *assembler, st *stmt) error {
			if err := need(st, 3); err != nil {
				return err
			}
			rd, err := rv32.ParseReg(st.operands[0])
			if err != nil {
				return err
			}
			rs1, err := rv32.ParseReg(st.operands[1])
			if err != nil {
				return err
			}
			v, err := a.exprVal(st.operands[2])
			if err != nil {
				return err
			}
			if -v < -2048 || -v > 2047 {
				return fmt.Errorf("immediate %d out of range", v)
			}
			return a.emitRV(rv32.Instr{Op: rv32.OpOpImm, F3: rv32.F3ADD, Rd: rd, Rs1: rs1, Imm: int32(-v)})
		}},
		"push": {size: fixedSize(8), emit: func(a *assembler, st *stmt) error {
			if err := need(st, 1); err != nil {
				return err
			}
			rs2, err := rv32.ParseReg(st.operands[0])
			if err != nil {
				return err
			}
			if err := a.emitRV(rv32.Instr{Op: rv32.OpOpImm, F3: rv32.F3ADD, Rd: rv32.RegSP, Rs1: rv32.RegSP, Imm: -4}); err != nil {
				return err
			}
			return a.emitRV(rv32.Instr{Op: rv32.OpStore, F3: 2, Rs1: rv32.RegSP, Rs2: rs2})
		}},
		"pop": {size: fixedSize(8), emit: func(a *assembler, st *stmt) error {
			if err := need(st, 1); err != nil {
				return err
			}
			rd, err := rv32.ParseReg(st.operands[0])
			if err != nil {
				return err
			}
			if err := a.emitRV(rv32.Instr{Op: rv32.OpLoad, F3: rv32.F3LW, Rd: rd, Rs1: rv32.RegSP}); err != nil {
				return err
			}
			return a.emitRV(rv32.Instr{Op: rv32.OpOpImm, F3: rv32.F3ADD, Rd: rv32.RegSP, Rs1: rv32.RegSP, Imm: 4})
		}},
	}
}
