package asm

import (
	"encoding/binary"
	"fmt"
	"math/rand"
	"testing"

	"waymemo/internal/isa"
)

// TestDisassembleReassemble: for random valid instructions, feeding the
// disassembler's output back through the assembler reproduces the original
// word. This pins the assembler syntax and the disassembler to each other.
func TestDisassembleReassemble(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	const pc = 0x20000
	for i := 0; i < 5000; i++ {
		in := randomValidInstr(r)
		text := isa.Disassemble(in, pc)
		src := fmt.Sprintf(".org %#x\n\t%s\n", pc, text)
		p, err := Assemble(src)
		if err != nil {
			t.Fatalf("%q (from %+v): %v", text, in, err)
		}
		got := binary.LittleEndian.Uint32(p.Segments[0].Data)
		if got != in.Encode() {
			t.Fatalf("%q: reassembled %#x, want %#x (%+v)", text, got, in.Encode(), in)
		}
	}
}

// randomValidInstr generates instructions whose disassembly is canonical
// assembler input (architecturally meaningful fields only).
func randomValidInstr(r *rand.Rand) isa.Instr {
	reg := func() uint8 { return uint8(r.Intn(32)) }
	for {
		switch r.Intn(9) {
		case 0: // R-type three-register
			functs := []uint8{isa.FnADD, isa.FnSUB, isa.FnAND, isa.FnOR, isa.FnXOR,
				isa.FnNOR, isa.FnSLT, isa.FnSLTU, isa.FnMUL, isa.FnMULH, isa.FnMULHU,
				isa.FnDIV, isa.FnDIVU, isa.FnREM, isa.FnREMU}
			return isa.Instr{Op: isa.OpR, Funct: functs[r.Intn(len(functs))],
				Rd: reg(), Rs: reg(), Rt: reg()}
		case 1: // immediate shifts
			functs := []uint8{isa.FnSLL, isa.FnSRL, isa.FnSRA}
			return isa.Instr{Op: isa.OpR, Funct: functs[r.Intn(3)],
				Rd: reg(), Rt: reg(), Shamt: uint8(r.Intn(32))}
		case 2: // jumps through registers
			if r.Intn(2) == 0 {
				return isa.Instr{Op: isa.OpR, Funct: isa.FnJR, Rs: reg()}
			}
			return isa.Instr{Op: isa.OpR, Funct: isa.FnJALR, Rd: reg(), Rs: reg()}
		case 3: // immediate arithmetic
			ops := []uint8{isa.OpADDI, isa.OpSLTI, isa.OpSLTIU}
			return isa.Instr{Op: ops[r.Intn(3)], Rt: reg(), Rs: reg(),
				Imm: int32(int16(r.Uint32()))}
		case 4: // loads/stores (integer)
			ops := []uint8{isa.OpLB, isa.OpLH, isa.OpLW, isa.OpLBU, isa.OpLHU,
				isa.OpSB, isa.OpSH, isa.OpSW}
			return isa.Instr{Op: ops[r.Intn(len(ops))], Rt: reg(), Rs: reg(),
				Imm: int32(int16(r.Uint32()))}
		case 5: // branches (word-aligned offsets in range)
			ops := []uint8{isa.OpBEQ, isa.OpBNE, isa.OpBLT, isa.OpBGE,
				isa.OpBLTU, isa.OpBGEU}
			return isa.Instr{Op: ops[r.Intn(len(ops))], Rs: reg(), Rt: reg(),
				Imm: int32(int16(r.Intn(1<<14) << 2))}
		case 6: // direct jumps
			op := uint8(isa.OpJ)
			if r.Intn(2) == 0 {
				op = isa.OpJAL
			}
			return isa.Instr{Op: op, Off26: int32(r.Intn(1<<20)-1<<19) &^ 3}
		case 7: // floating point
			functs := []uint8{isa.FnFADD, isa.FnFSUB, isa.FnFMUL, isa.FnFDIV}
			return isa.Instr{Op: isa.OpF, Funct: functs[r.Intn(4)],
				Rd: reg(), Rs: reg(), Rt: reg()}
		default: // misc
			switch r.Intn(4) {
			case 0:
				return isa.Instr{Op: isa.OpLUI, Rt: reg(), Imm: int32(int16(r.Uint32()))}
			case 1:
				return isa.Instr{Op: isa.OpOUTB, Rs: reg()}
			case 2:
				return isa.Instr{Op: isa.OpHALT}
			default:
				return isa.Instr{Op: isa.OpFLD, Rt: reg(), Rs: reg(),
					Imm: int32(int16(r.Uint32()))}
			}
		}
	}
}
