package asm

import (
	"fmt"
	"sort"
)

// Segment is a contiguous run of assembled bytes at a fixed address.
type Segment struct {
	Addr uint32
	Data []byte
}

// Program is the output of the assembler: an entry point, the memory image
// as a list of segments, and the symbol table.
type Program struct {
	Entry    uint32
	Segments []Segment
	Symbols  map[string]uint32
	// TextRanges lists [start,end) address ranges that contain code, used by
	// the simulator to reject self-modifying stores.
	TextRanges [][2]uint32
}

// Size returns the total number of image bytes across all segments.
func (p *Program) Size() int {
	n := 0
	for _, s := range p.Segments {
		n += len(s.Data)
	}
	return n
}

// imageWriter accumulates emitted bytes, coalescing contiguous writes.
type imageWriter struct {
	segs []Segment
}

func (w *imageWriter) write(addr uint32, b []byte) error {
	if len(b) == 0 {
		return nil
	}
	if n := len(w.segs); n > 0 {
		last := &w.segs[n-1]
		if last.Addr+uint32(len(last.Data)) == addr {
			last.Data = append(last.Data, b...)
			return nil
		}
	}
	w.segs = append(w.segs, Segment{Addr: addr, Data: append([]byte(nil), b...)})
	return nil
}

// finish sorts segments and rejects overlaps.
func (w *imageWriter) finish() ([]Segment, error) {
	segs := w.segs
	sort.Slice(segs, func(i, j int) bool { return segs[i].Addr < segs[j].Addr })
	for i := 1; i < len(segs); i++ {
		prevEnd := uint64(segs[i-1].Addr) + uint64(len(segs[i-1].Data))
		if uint64(segs[i].Addr) < prevEnd {
			return nil, fmt.Errorf("asm: overlapping segments at 0x%x", segs[i].Addr)
		}
	}
	return segs, nil
}
