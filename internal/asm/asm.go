// Package asm implements a two-pass assembler for the FRVL instruction set
// (Assemble) and for RV32IM (AssembleRV32). The two dialects share
// everything except the mnemonic tables, register names and displacement
// ranges: one parser, one expression language, one directive set, one image
// writer.
//
// Source syntax is classic RISC assembly:
//
//	; comment  (also # and //)
//	        .org    0x10000
//	_start: li      t0, 100
//	        la      t1, table
//	loop:   lw      t2, 0(t1)
//	        add     s0, s0, t2
//	        addi    t1, t1, 4
//	        addi    t0, t0, -1
//	        bnez    t0, loop
//	        halt
//	table:  .word   1, 2, 3, 4
//
// Labels, .equ constants, and full constant expressions (with hi()/lo() for
// building 32-bit values) are supported. Pseudo-instructions (li, la, move,
// push/pop, call/ret, branch synonyms) expand to one or two real
// instructions; the expansion size is fixed during pass 1 so forward
// references stay consistent.
package asm

import (
	"fmt"
	"strings"

	"waymemo/internal/isa"
)

type stmtKind uint8

const (
	kindLabel stmtKind = iota
	kindDirective
	kindInstr
)

type stmt struct {
	index    int
	line     int
	kind     stmtKind
	name     string   // label name, directive (with dot), or mnemonic
	operands []string // raw operand texts
}

// dialect selects the ISA a source is assembled for: the mnemonic table,
// the register namespace and the load/store displacement range. Everything
// else — parsing, symbols, expressions, directives, the two-pass sizing
// protocol and the image writer — is shared between dialects.
type dialect struct {
	name     string
	ops      map[string]opSpec
	parseReg func(string) (uint8, error)
	// dispMin/dispMax bound load/store displacements (FRVL: 16-bit signed;
	// RV32: 12-bit signed).
	dispMin, dispMax int64
}

type assembler struct {
	stmts  []stmt
	syms   map[string]int64
	liWide map[int]bool
	dia    *dialect

	pass int
	pc   uint32
	img  *imageWriter

	entry    int64
	entrySet bool

	firstInstr    int64
	firstInstrSet bool

	textActive bool
	textStart  uint32
	textRanges [][2]uint32
}

// Assemble assembles FRVL source text into a Program. Multiple source
// fragments are concatenated in order, which lets callers compose a shared
// runtime with benchmark-specific code.
func Assemble(sources ...string) (*Program, error) {
	return assemble(&frvlDialect, sources)
}

// AssembleRV32 assembles RV32IM source text into a Program, with the same
// directive set, expression language and pseudo-instruction conventions as
// the FRVL assembler.
func AssembleRV32(sources ...string) (*Program, error) {
	return assemble(&rv32Dialect, sources)
}

func assemble(dia *dialect, sources []string) (*Program, error) {
	src := strings.Join(sources, "\n")
	a := &assembler{
		syms:   make(map[string]int64),
		liWide: make(map[int]bool),
		dia:    dia,
	}
	if err := a.parse(src); err != nil {
		return nil, err
	}
	if err := a.run(1); err != nil {
		return nil, err
	}
	a.img = &imageWriter{}
	if err := a.run(2); err != nil {
		return nil, err
	}
	segs, err := a.img.finish()
	if err != nil {
		return nil, err
	}
	prog := &Program{
		Segments:   segs,
		Symbols:    make(map[string]uint32, len(a.syms)),
		TextRanges: a.textRanges,
	}
	for k, v := range a.syms {
		prog.Symbols[k] = uint32(v)
	}
	switch {
	case a.entrySet:
		prog.Entry = uint32(a.entry)
	case a.syms["_start"] != 0:
		prog.Entry = uint32(a.syms["_start"])
	case a.firstInstrSet:
		prog.Entry = uint32(a.firstInstr)
	}
	return prog, nil
}

// stripComment removes ;, # and // comments, respecting string and character
// literals.
func stripComment(line string) string {
	inStr, inChar := false, false
	for i := 0; i < len(line); i++ {
		c := line[i]
		switch {
		case inStr:
			if c == '\\' {
				i++
			} else if c == '"' {
				inStr = false
			}
		case inChar:
			if c == '\\' {
				i++
			} else if c == '\'' {
				inChar = false
			}
		case c == '"':
			inStr = true
		case c == '\'':
			inChar = true
		case c == ';' || c == '#':
			return line[:i]
		case c == '/' && i+1 < len(line) && line[i+1] == '/':
			return line[:i]
		}
	}
	return line
}

// splitOperands splits on top-level commas (outside quotes and parens).
func splitOperands(s string) []string {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil
	}
	var out []string
	depth := 0
	inStr, inChar := false, false
	start := 0
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case inStr:
			if c == '\\' {
				i++
			} else if c == '"' {
				inStr = false
			}
		case inChar:
			if c == '\\' {
				i++
			} else if c == '\'' {
				inChar = false
			}
		case c == '"':
			inStr = true
		case c == '\'':
			inChar = true
		case c == '(':
			depth++
		case c == ')':
			depth--
		case c == ',' && depth == 0:
			out = append(out, strings.TrimSpace(s[start:i]))
			start = i + 1
		}
	}
	out = append(out, strings.TrimSpace(s[start:]))
	return out
}

func (a *assembler) parse(src string) error {
	lines := strings.Split(src, "\n")
	for ln, raw := range lines {
		line := strings.TrimSpace(stripComment(raw))
		for line != "" {
			// Leading labels.
			if i := strings.IndexByte(line, ':'); i > 0 {
				candidate := strings.TrimSpace(line[:i])
				if isIdent(candidate) {
					a.stmts = append(a.stmts, stmt{
						index: len(a.stmts), line: ln + 1, kind: kindLabel, name: candidate,
					})
					line = strings.TrimSpace(line[i+1:])
					continue
				}
			}
			break
		}
		if line == "" {
			continue
		}
		// Mnemonic or directive.
		sp := strings.IndexAny(line, " \t")
		name, rest := line, ""
		if sp >= 0 {
			name, rest = line[:sp], line[sp+1:]
		}
		name = strings.ToLower(name)
		kind := kindInstr
		if strings.HasPrefix(name, ".") {
			kind = kindDirective
		}
		a.stmts = append(a.stmts, stmt{
			index: len(a.stmts), line: ln + 1, kind: kind, name: name,
			operands: splitOperands(rest),
		})
	}
	return nil
}

func isIdent(s string) bool {
	if s == "" || !isSymStart(s[0]) {
		return false
	}
	for i := 1; i < len(s); i++ {
		if !isSymChar(s[i]) {
			return false
		}
	}
	return true
}

func (a *assembler) run(pass int) error {
	a.pass = pass
	a.pc = 0
	a.textActive = false
	if pass == 2 {
		a.textRanges = nil
	}
	for i := range a.stmts {
		st := &a.stmts[i]
		if err := a.exec(st); err != nil {
			return fmt.Errorf("asm: line %d: %w", st.line, err)
		}
	}
	a.flushText()
	return nil
}

func (a *assembler) exec(st *stmt) error {
	switch st.kind {
	case kindLabel:
		if a.pass == 1 {
			if _, dup := a.syms[st.name]; dup {
				return fmt.Errorf("label %q redefined", st.name)
			}
			a.syms[st.name] = int64(a.pc)
		}
		return nil
	case kindDirective:
		return a.directive(st)
	default:
		spec, ok := a.dia.ops[st.name]
		if !ok {
			return fmt.Errorf("unknown mnemonic %q", st.name)
		}
		if a.pc%isa.Word != 0 {
			return fmt.Errorf("instruction at unaligned address 0x%x", a.pc)
		}
		if a.pass == 1 {
			n, err := spec.size(a, st)
			if err != nil {
				return err
			}
			if !a.firstInstrSet {
				a.firstInstr, a.firstInstrSet = int64(a.pc), true
			}
			a.pc += uint32(n)
			return nil
		}
		return spec.emit(a, st)
	}
}

func (a *assembler) symsInt64() map[string]int64 { return a.syms }

// exprVal evaluates an expression that must fully resolve in the current
// pass (always true in pass 2).
func (a *assembler) exprVal(text string) (int64, error) {
	return evalExpr(text, a.syms, a.pc)
}

func (a *assembler) memOperand(text string) (off int32, rs uint8, err error) {
	text = strings.TrimSpace(text)
	open := strings.LastIndexByte(text, '(')
	if open < 0 || !strings.HasSuffix(text, ")") {
		return 0, 0, fmt.Errorf("memory operand %q must have the form off(reg)", text)
	}
	reg := text[open+1 : len(text)-1]
	rs, err = a.dia.parseReg(reg)
	if err != nil {
		return 0, 0, err
	}
	offText := strings.TrimSpace(text[:open])
	if offText == "" {
		return 0, rs, nil
	}
	v, err := a.exprVal(offText)
	if err != nil {
		return 0, 0, err
	}
	if v < a.dia.dispMin || v > a.dia.dispMax {
		return 0, 0, fmt.Errorf("displacement %d out of range [%d, %d]", v, a.dia.dispMin, a.dia.dispMax)
	}
	return int32(v), rs, nil
}

func (a *assembler) emitInstr(in isa.Instr) error {
	return a.emitWord(in.Encode())
}

// emitWord places one little-endian instruction word, whatever the dialect.
func (a *assembler) emitWord(w uint32) error {
	if !a.textActive {
		a.textActive = true
		a.textStart = a.pc
	}
	err := a.img.write(a.pc, []byte{byte(w), byte(w >> 8), byte(w >> 16), byte(w >> 24)})
	a.pc += isa.Word
	return err
}

func (a *assembler) emitBytes(b []byte) error {
	a.flushText()
	err := a.img.write(a.pc, b)
	a.pc += uint32(len(b))
	return err
}

func (a *assembler) flushText() {
	if a.textActive {
		a.textRanges = append(a.textRanges, [2]uint32{a.textStart, a.pc})
		a.textActive = false
	}
}

func (a *assembler) emitBranch(op, rs, rt uint8, targetExpr string) error {
	t, err := a.exprVal(targetExpr)
	if err != nil {
		return err
	}
	// Offsets use 32-bit wraparound semantics, like the machine itself.
	off := int64(int32(uint32(t) - a.pc))
	if off%isa.Word != 0 {
		return fmt.Errorf("branch target 0x%x not word aligned", t)
	}
	if off < -32768 || off > 32767 {
		return fmt.Errorf("branch target out of range (offset %d)", off)
	}
	return a.emitInstr(isa.Instr{Op: op, Rs: rs, Rt: rt, Imm: int32(off)})
}

func (a *assembler) emitJump(op uint8, st *stmt) error {
	if err := need(st, 1); err != nil {
		return err
	}
	t, err := a.exprVal(st.operands[0])
	if err != nil {
		return err
	}
	off := int64(int32(uint32(t) - a.pc))
	if off%isa.Word != 0 {
		return fmt.Errorf("jump target 0x%x not word aligned", t)
	}
	if off < -(1<<25) || off >= 1<<25 {
		return fmt.Errorf("jump target out of range (offset %d)", off)
	}
	return a.emitInstr(isa.Instr{Op: op, Off26: int32(off)})
}
