package asm

import (
	"encoding/binary"
	"strings"
	"testing"

	"waymemo/internal/isa"
)

// words decodes the single contiguous segment of a program into 32-bit words.
func words(t *testing.T, p *Program) []uint32 {
	t.Helper()
	if len(p.Segments) != 1 {
		t.Fatalf("expected one segment, got %d", len(p.Segments))
	}
	data := p.Segments[0].Data
	if len(data)%4 != 0 {
		t.Fatalf("segment length %d not word aligned", len(data))
	}
	out := make([]uint32, len(data)/4)
	for i := range out {
		out[i] = binary.LittleEndian.Uint32(data[4*i:])
	}
	return out
}

func mustAssemble(t *testing.T, src string) *Program {
	t.Helper()
	p, err := Assemble(src)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	return p
}

func TestBasicEncoding(t *testing.T) {
	p := mustAssemble(t, `
		.org 0x1000
		add  t0, t1, t2
		addi t0, t1, -5
		lw   s0, 8(sp)
		sw   s0, -4(sp)
		halt
	`)
	ws := words(t, p)
	want := []isa.Instr{
		{Op: isa.OpR, Funct: isa.FnADD, Rd: 7, Rs: 8, Rt: 9},
		{Op: isa.OpADDI, Rt: 7, Rs: 8, Imm: -5},
		{Op: isa.OpLW, Rt: 17, Rs: 30, Imm: 8},
		{Op: isa.OpSW, Rt: 17, Rs: 30, Imm: -4},
		{Op: isa.OpHALT},
	}
	for i, w := range want {
		if got := isa.Decode(ws[i]); got != w {
			t.Errorf("word %d: got %+v want %+v", i, got, w)
		}
	}
	if p.Segments[0].Addr != 0x1000 {
		t.Errorf("segment addr = %#x, want 0x1000", p.Segments[0].Addr)
	}
}

func TestLabelsAndBranches(t *testing.T) {
	p := mustAssemble(t, `
		.org 0x2000
	top:	addi t0, t0, 1
		bne  t0, t1, top
		beq  t0, t1, done
		nop
	done:	halt
	`)
	ws := words(t, p)
	// bne at 0x2004 targeting 0x2000: offset -4.
	bne := isa.Decode(ws[1])
	if bne.Op != isa.OpBNE || bne.Imm != -4 {
		t.Errorf("bne: %+v", bne)
	}
	// beq at 0x2008 targeting 0x2010: offset +8.
	beq := isa.Decode(ws[2])
	if beq.Op != isa.OpBEQ || beq.Imm != 8 {
		t.Errorf("beq: %+v", beq)
	}
}

func TestForwardJump(t *testing.T) {
	p := mustAssemble(t, `
		.org 0x3000
		jal  fn
		halt
	fn:	ret
	`)
	ws := words(t, p)
	jal := isa.Decode(ws[0])
	if jal.Op != isa.OpJAL || jal.Off26 != 8 {
		t.Errorf("jal: %+v", jal)
	}
	ret := isa.Decode(ws[2])
	if ret.Op != isa.OpR || ret.Funct != isa.FnJR || ret.Rs != isa.RegRA {
		t.Errorf("ret: %+v", ret)
	}
}

func TestLISizing(t *testing.T) {
	// Small constants: one instruction; 32-bit: two.
	p := mustAssemble(t, `
		.org 0
		li t0, 42
		li t1, -42
		li t2, 0xFFFF
		li t3, 0x12345678
		li t4, 0x10000
	`)
	ws := words(t, p)
	if len(ws) != 6 {
		t.Fatalf("got %d words, want 6", len(ws))
	}
	if in := isa.Decode(ws[0]); in.Op != isa.OpADDI || in.Imm != 42 {
		t.Errorf("li small: %+v", in)
	}
	if in := isa.Decode(ws[2]); in.Op != isa.OpORI || uint16(in.Imm) != 0xFFFF {
		t.Errorf("li 0xFFFF: %+v", in)
	}
	lui := isa.Decode(ws[3])
	ori := isa.Decode(ws[4])
	if lui.Op != isa.OpLUI || uint16(lui.Imm) != 0x1234 {
		t.Errorf("li wide lui: %+v", lui)
	}
	if ori.Op != isa.OpORI || uint16(ori.Imm) != 0x5678 {
		t.Errorf("li wide ori: %+v", ori)
	}
	if in := isa.Decode(ws[5]); in.Op != isa.OpLUI || uint16(in.Imm) != 1 {
		t.Errorf("li 0x10000: %+v", in)
	}
}

func TestLAForwardReference(t *testing.T) {
	p := mustAssemble(t, `
		.org 0x1000
		la  t0, data
		halt
	data:	.word 0xCAFEBABE
	`)
	ws := words(t, p)
	lui, ori := isa.Decode(ws[0]), isa.Decode(ws[1])
	addr := uint32(uint16(lui.Imm))<<16 | uint32(uint16(ori.Imm))
	if want := p.Symbols["data"]; addr != want {
		t.Errorf("la built %#x, want %#x", addr, want)
	}
	if ws[3] != 0xCAFEBABE {
		t.Errorf("data word = %#x", ws[3])
	}
}

func TestDirectives(t *testing.T) {
	p := mustAssemble(t, `
		.equ N, 10
		.org 0x100
	a:	.byte 1, 2, N
		.align 4
	b:	.half 0x1234
		.align 8
	c:	.word N*N+5
	s:	.asciiz "hi\n"
		.space 3, 0xFF
	d:	.double 1.5
	`)
	if p.Symbols["a"] != 0x100 || p.Symbols["b"] != 0x104 || p.Symbols["c"] != 0x108 {
		t.Fatalf("symbols: a=%#x b=%#x c=%#x", p.Symbols["a"], p.Symbols["b"], p.Symbols["c"])
	}
	data := p.Segments[0].Data
	if data[0] != 1 || data[1] != 2 || data[2] != 10 {
		t.Errorf(".byte: % x", data[:3])
	}
	if binary.LittleEndian.Uint32(data[8:]) != 105 {
		t.Errorf(".word expr: %d", binary.LittleEndian.Uint32(data[8:]))
	}
	if got := string(data[12:16]); got != "hi\n\x00" {
		t.Errorf(".asciiz: %q", got)
	}
	if data[16] != 0xFF || data[18] != 0xFF {
		t.Errorf(".space fill: % x", data[16:19])
	}
}

func TestExpressions(t *testing.T) {
	p := mustAssemble(t, `
		.equ BASE, 0x10000
		.org 0
		.word BASE + 4*8, (1<<12) | 7, 100/4, 'A', hi(0xDEADBEEF), lo(0xDEADBEEF), ~0 & 0xFF
	`)
	ws := words(t, p)
	want := []uint32{0x10020, 4103, 25, 65, 0xDEAD, 0xBEEF, 0xFF}
	for i, w := range want {
		if ws[i] != w {
			t.Errorf("expr %d: got %#x want %#x", i, ws[i], w)
		}
	}
}

func TestPseudoExpansions(t *testing.T) {
	p := mustAssemble(t, `
		.org 0
		move t0, t1
		not  t2, t3
		neg  t4, t5
		push s0
		pop  s0
		b    end
	end:	halt
	`)
	ws := words(t, p)
	if in := isa.Decode(ws[0]); in.Funct != isa.FnADD || in.Rt != 0 {
		t.Errorf("move: %+v", in)
	}
	if in := isa.Decode(ws[1]); in.Funct != isa.FnNOR {
		t.Errorf("not: %+v", in)
	}
	if in := isa.Decode(ws[2]); in.Funct != isa.FnSUB || in.Rs != 0 {
		t.Errorf("neg: %+v", in)
	}
	// push = addi sp,sp,-4 ; sw
	if in := isa.Decode(ws[3]); in.Op != isa.OpADDI || in.Imm != -4 {
		t.Errorf("push[0]: %+v", in)
	}
	if in := isa.Decode(ws[4]); in.Op != isa.OpSW {
		t.Errorf("push[1]: %+v", in)
	}
}

func TestEntryConventions(t *testing.T) {
	p := mustAssemble(t, `
		.org 0x400
		nop
	_start:	halt
	`)
	if p.Entry != 0x404 {
		t.Errorf("_start entry = %#x", p.Entry)
	}
	p2 := mustAssemble(t, `
		.org 0x400
		nop
	`)
	if p2.Entry != 0x400 {
		t.Errorf("first-instruction entry = %#x", p2.Entry)
	}
}

func TestTextRanges(t *testing.T) {
	p := mustAssemble(t, `
		.org 0x100
		nop
		nop
	d:	.word 7
		nop
	`)
	want := [][2]uint32{{0x100, 0x108}, {0x10c, 0x110}}
	if len(p.TextRanges) != len(want) {
		t.Fatalf("text ranges: %v", p.TextRanges)
	}
	for i := range want {
		if p.TextRanges[i] != want[i] {
			t.Errorf("range %d: %v want %v", i, p.TextRanges[i], want[i])
		}
	}
}

func TestErrors(t *testing.T) {
	cases := []struct {
		src  string
		frag string
	}{
		{"bogus t0, t1", "unknown mnemonic"},
		{"add t0, t1", "expects 3 operands"},
		{"addi t0, t1, 70000", "out of signed 16-bit range"},
		{"lw t0, t1", "must have the form"},
		{"x: .word 1\nx: .word 2", "redefined"},
		{".org 0\nbeq t0, t1, far\n.org 0x100000\nfar: halt", "out of range"},
		{"add q9, t0, t1", "bad register"},
		{".word undefined_symbol", "undefined symbol"},
		{".space -1", "out of range"},
	}
	for _, c := range cases {
		if _, err := Assemble(c.src); err == nil || !strings.Contains(err.Error(), c.frag) {
			t.Errorf("src %q: error %v, want containing %q", c.src, err, c.frag)
		}
	}
}

func TestCommentsAndFormats(t *testing.T) {
	p := mustAssemble(t, `
		.org 0 ; trailing comment
		# full line comment
		// also a comment
		addi t0, t0, 1 # comment with 'quote
		.asciiz "semicolon ; inside"
	`)
	data := p.Segments[0].Data
	if len(data) != 4+len("semicolon ; inside")+1 {
		t.Fatalf("unexpected image size %d", len(data))
	}
}

func TestMultipleSources(t *testing.T) {
	rt := "lib:\tret\n"
	main := `
		.org 0
		jal lib
		halt
	`
	// Sources are concatenated in order: main defines .org first.
	p, err := Assemble(main, rt)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	if _, ok := p.Symbols["lib"]; !ok {
		t.Fatal("lib symbol missing")
	}
}
