package asm

import (
	"encoding/binary"
	"strings"
	"testing"

	"waymemo/internal/isa/rv32"
)

// textWords extracts the assembled instruction words of the first text
// range, little-endian.
func textWords(t *testing.T, p *Program) []uint32 {
	t.Helper()
	if len(p.TextRanges) == 0 {
		t.Fatal("no text range")
	}
	lo, hi := p.TextRanges[0][0], p.TextRanges[0][1]
	var img []byte
	for _, s := range p.Segments {
		if s.Addr <= lo && lo < s.Addr+uint32(len(s.Data)) {
			img = s.Data[lo-s.Addr:]
		}
	}
	if img == nil {
		t.Fatalf("no segment covers text at %#x", lo)
	}
	words := make([]uint32, 0, (hi-lo)/4)
	for off := uint32(0); off < hi-lo; off += 4 {
		words = append(words, binary.LittleEndian.Uint32(img[off:]))
	}
	return words
}

// The RV32 dialect shares the FRVL parser, directives and expression
// language; every emitted word must be a valid RV32 instruction that
// disassembles back to what was written.
func TestAssembleRV32Basic(t *testing.T) {
	p, err := AssembleRV32(`
	.org 0x1000
_start:	addi a0, zero, 5
	slli a1, a0, 3
	add  a0, a0, a1
	lui  t0, 0x12345
	sw   a0, -4(sp)
	lw   a2, -4(sp)
	beq  a0, a2, done
	ecall
done:	ebreak
`)
	if err != nil {
		t.Fatal(err)
	}
	if p.Entry != 0x1000 {
		t.Fatalf("entry = %#x, want 0x1000", p.Entry)
	}
	want := []string{
		"addi a0, zero, 5",
		"slli a1, a0, 3",
		"add a0, a0, a1",
		"lui t0, 0x12345",
		"sw a0, -4(sp)",
		"lw a2, -4(sp)",
		"beq a0, a2, 0x1020",
		"ecall",
		"ebreak",
	}
	words := textWords(t, p)
	if len(words) != len(want) {
		t.Fatalf("assembled %d words, want %d", len(words), len(want))
	}
	for i, w := range words {
		in, ok := rv32.Decode(w)
		if !ok {
			t.Fatalf("word %d (%#08x) does not decode", i, w)
		}
		if got := rv32.Disassemble(in, 0x1000+uint32(4*i)); got != want[i] {
			t.Errorf("word %d: %q, want %q", i, got, want[i])
		}
	}
}

// Pseudo-instructions must expand to the documented RV32 idioms: narrow li
// to one addi, wide li to lui(+addi), la to a fixed lui+addi pair, ret to
// jalr zero, and halt to the runtime's ebreak.
func TestAssembleRV32Pseudo(t *testing.T) {
	p, err := AssembleRV32(`
	.equ DATA, 0x20000
	.org 0x1000
_start:	li   a0, 100
	li   a1, 0x12345678
	li   a2, 0x7F000
	la   a3, buf
	mv   a4, a0
	not  a5, a0
	neg  a6, a0
	ret
	halt
	.org DATA
buf:	.space 16
`)
	if err != nil {
		t.Fatal(err)
	}
	var asmText []string
	for i, w := range textWords(t, p) {
		in, ok := rv32.Decode(w)
		if !ok {
			t.Fatalf("word %d (%#08x) does not decode", i, w)
		}
		asmText = append(asmText, rv32.Disassemble(in, 0))
	}
	want := []string{
		"addi a0, zero, 100",
		"lui a1, 0x12345",
		"addi a1, a1, 1656",
		"lui a2, 0x7f",
		"lui a3, 0x20",
		"addi a3, a3, 0",
		"addi a4, a0, 0",
		"xori a5, a0, -1",
		"sub a6, zero, a0",
		"jalr zero, 0(ra)",
		"ebreak",
	}
	if strings.Join(asmText, "\n") != strings.Join(want, "\n") {
		t.Fatalf("expansion:\n%s\nwant:\n%s", strings.Join(asmText, "\n"), strings.Join(want, "\n"))
	}
}

// The dialect enforces RV32's narrower ranges: 12-bit ALU immediates and
// displacements, where FRVL accepts 16 bits.
func TestAssembleRV32Ranges(t *testing.T) {
	cases := []struct {
		src, wantErr string
	}{
		{"\taddi a0, a0, 4096\n", "immediate 4096 out of signed 12-bit range"},
		{"\taddi a0, a0, -2049\n", "out of signed 12-bit range"},
		{"\tlw a0, 2048(sp)\n", "displacement 2048 out of range"},
		{"\tsw a0, -2049(sp)\n", "out of range"},
		{"\tslli a0, a0, 32\n", "shift amount 32 out of range"},
		{"\tlui a0, 0x100000\n", "out of 20-bit range"},
		{"\taddi a0, t7, 1\n", "bad register"},
	}
	for _, c := range cases {
		_, err := AssembleRV32("\t.org 0x1000\n_start:" + c.src)
		if err == nil || !strings.Contains(err.Error(), c.wantErr) {
			t.Errorf("%q: err = %v, want %q", strings.TrimSpace(c.src), err, c.wantErr)
		}
	}
	// The same out-of-range-for-RV32 values stay legal under FRVL's 16-bit
	// immediates — the range really is per-dialect.
	if _, err := Assemble("\t.org 0x1000\n_start:\taddi t0, t0, 4096\n\tlw t0, 2048(sp)\n"); err != nil {
		t.Errorf("FRVL rejected 16-bit immediates: %v", err)
	}
}
