package asm

import (
	"fmt"
	"strconv"
	"strings"
)

// errUndefined is returned when an expression references a symbol that is not
// (yet) defined. During pass 1 this is not fatal — it only forces pessimistic
// sizing of pseudo-instructions.
type errUndefined struct{ name string }

func (e errUndefined) Error() string { return "undefined symbol " + e.name }

// exprParser is a recursive-descent parser over a raw operand string.
// Grammar (lowest to highest precedence):
//
//	or:     xor ('|' xor)*
//	xor:    and ('^' and)*
//	and:    shift ('&' shift)*
//	shift:  addsub (('<<'|'>>') addsub)*
//	addsub: muldiv (('+'|'-') muldiv)*
//	muldiv: unary (('*'|'/'|'%') unary)*
//	unary:  ('-'|'~')? primary
//	primary: number | char | symbol | hi(expr) | lo(expr) | '(' expr ')' | '.'
type exprParser struct {
	s    string
	pos  int
	syms map[string]int64
	pc   int64 // value of "." (current location counter)
}

func (p *exprParser) ws() {
	for p.pos < len(p.s) && (p.s[p.pos] == ' ' || p.s[p.pos] == '\t') {
		p.pos++
	}
}

func (p *exprParser) peek() byte {
	p.ws()
	if p.pos >= len(p.s) {
		return 0
	}
	return p.s[p.pos]
}

func (p *exprParser) eat(prefix string) bool {
	p.ws()
	if strings.HasPrefix(p.s[p.pos:], prefix) {
		p.pos += len(prefix)
		return true
	}
	return false
}

func (p *exprParser) parse() (int64, error) {
	v, err := p.or()
	if err != nil {
		return 0, err
	}
	p.ws()
	if p.pos != len(p.s) {
		return 0, fmt.Errorf("unexpected %q in expression %q", p.s[p.pos:], p.s)
	}
	return v, nil
}

func (p *exprParser) or() (int64, error) {
	v, err := p.xor()
	if err != nil {
		return 0, err
	}
	for {
		p.ws()
		if p.pos < len(p.s) && p.s[p.pos] == '|' {
			p.pos++
			r, err := p.xor()
			if err != nil {
				return 0, err
			}
			v |= r
		} else {
			return v, nil
		}
	}
}

func (p *exprParser) xor() (int64, error) {
	v, err := p.and()
	if err != nil {
		return 0, err
	}
	for {
		p.ws()
		if p.pos < len(p.s) && p.s[p.pos] == '^' {
			p.pos++
			r, err := p.and()
			if err != nil {
				return 0, err
			}
			v ^= r
		} else {
			return v, nil
		}
	}
}

func (p *exprParser) and() (int64, error) {
	v, err := p.shift()
	if err != nil {
		return 0, err
	}
	for {
		p.ws()
		if p.pos < len(p.s) && p.s[p.pos] == '&' {
			p.pos++
			r, err := p.shift()
			if err != nil {
				return 0, err
			}
			v &= r
		} else {
			return v, nil
		}
	}
}

func (p *exprParser) shift() (int64, error) {
	v, err := p.addsub()
	if err != nil {
		return 0, err
	}
	for {
		switch {
		case p.eat("<<"):
			r, err := p.addsub()
			if err != nil {
				return 0, err
			}
			v <<= uint(r & 63)
		case p.eat(">>"):
			r, err := p.addsub()
			if err != nil {
				return 0, err
			}
			v >>= uint(r & 63)
		default:
			return v, nil
		}
	}
}

func (p *exprParser) addsub() (int64, error) {
	v, err := p.muldiv()
	if err != nil {
		return 0, err
	}
	for {
		switch p.peek() {
		case '+':
			p.pos++
			r, err := p.muldiv()
			if err != nil {
				return 0, err
			}
			v += r
		case '-':
			p.pos++
			r, err := p.muldiv()
			if err != nil {
				return 0, err
			}
			v -= r
		default:
			return v, nil
		}
	}
}

func (p *exprParser) muldiv() (int64, error) {
	v, err := p.unary()
	if err != nil {
		return 0, err
	}
	for {
		switch p.peek() {
		case '*':
			p.pos++
			r, err := p.unary()
			if err != nil {
				return 0, err
			}
			v *= r
		case '/':
			p.pos++
			r, err := p.unary()
			if err != nil {
				return 0, err
			}
			if r == 0 {
				return 0, fmt.Errorf("division by zero in %q", p.s)
			}
			v /= r
		case '%':
			p.pos++
			r, err := p.unary()
			if err != nil {
				return 0, err
			}
			if r == 0 {
				return 0, fmt.Errorf("modulo by zero in %q", p.s)
			}
			v %= r
		default:
			return v, nil
		}
	}
}

func (p *exprParser) unary() (int64, error) {
	switch p.peek() {
	case '-':
		p.pos++
		v, err := p.unary()
		return -v, err
	case '~':
		p.pos++
		v, err := p.unary()
		return ^v, err
	}
	return p.primary()
}

func isSymStart(c byte) bool {
	return c == '_' || c == '.' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isSymChar(c byte) bool {
	return isSymStart(c) || (c >= '0' && c <= '9')
}

func (p *exprParser) primary() (int64, error) {
	c := p.peek()
	switch {
	case c == '(':
		p.pos++
		v, err := p.or()
		if err != nil {
			return 0, err
		}
		if p.peek() != ')' {
			return 0, fmt.Errorf("missing ')' in %q", p.s)
		}
		p.pos++
		return v, nil
	case c == '\'':
		return p.charLit()
	case c >= '0' && c <= '9':
		return p.number()
	case c == '.' && (p.pos+1 >= len(p.s) || !isSymChar(p.s[p.pos+1])):
		p.pos++
		return p.pc, nil
	case isSymStart(c):
		start := p.pos
		for p.pos < len(p.s) && isSymChar(p.s[p.pos]) {
			p.pos++
		}
		name := p.s[start:p.pos]
		switch name {
		case "hi", "lo":
			if p.peek() != '(' {
				return 0, fmt.Errorf("%s must be called as %s(expr)", name, name)
			}
			p.pos++
			v, err := p.or()
			if err != nil {
				return 0, err
			}
			if p.peek() != ')' {
				return 0, fmt.Errorf("missing ')' after %s(", name)
			}
			p.pos++
			if name == "hi" {
				return (v >> 16) & 0xFFFF, nil
			}
			return v & 0xFFFF, nil
		}
		if v, ok := p.syms[name]; ok {
			return v, nil
		}
		return 0, errUndefined{name}
	case c == 0:
		return 0, fmt.Errorf("empty expression")
	}
	return 0, fmt.Errorf("unexpected character %q in expression %q", string(c), p.s)
}

func (p *exprParser) charLit() (int64, error) {
	// p.s[p.pos] == '\''
	p.pos++
	if p.pos >= len(p.s) {
		return 0, fmt.Errorf("unterminated character literal")
	}
	var v int64
	if p.s[p.pos] == '\\' {
		p.pos++
		if p.pos >= len(p.s) {
			return 0, fmt.Errorf("unterminated character literal")
		}
		switch p.s[p.pos] {
		case 'n':
			v = '\n'
		case 't':
			v = '\t'
		case 'r':
			v = '\r'
		case '0':
			v = 0
		case '\\':
			v = '\\'
		case '\'':
			v = '\''
		default:
			return 0, fmt.Errorf("unknown escape \\%c", p.s[p.pos])
		}
	} else {
		v = int64(p.s[p.pos])
	}
	p.pos++
	if p.pos >= len(p.s) || p.s[p.pos] != '\'' {
		return 0, fmt.Errorf("unterminated character literal")
	}
	p.pos++
	return v, nil
}

func (p *exprParser) number() (int64, error) {
	start := p.pos
	for p.pos < len(p.s) && (isSymChar(p.s[p.pos])) {
		p.pos++
	}
	text := p.s[start:p.pos]
	v, err := strconv.ParseInt(text, 0, 64)
	if err != nil {
		// Allow large unsigned constants like 0xFFFFFFFF.
		u, uerr := strconv.ParseUint(text, 0, 64)
		if uerr != nil {
			return 0, fmt.Errorf("bad number %q", text)
		}
		v = int64(u)
	}
	return v, nil
}

// evalExpr evaluates expression text with the given symbol table and location
// counter. Undefined symbols yield errUndefined.
func evalExpr(text string, syms map[string]int64, pc uint32) (int64, error) {
	p := &exprParser{s: strings.TrimSpace(text), syms: syms, pc: int64(pc)}
	return p.parse()
}
