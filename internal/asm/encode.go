package asm

import (
	"fmt"
	"strconv"
	"strings"

	"waymemo/internal/isa"
)

// gprAliases maps conventional register names to numbers.
var gprAliases = map[string]uint8{
	"zero": 0, "a0": 1, "a1": 2, "a2": 3, "a3": 4, "v0": 5, "v1": 6,
	"t0": 7, "t1": 8, "t2": 9, "t3": 10, "t4": 11, "t5": 12, "t6": 13,
	"t7": 14, "t8": 15, "t9": 16,
	"s0": 17, "s1": 18, "s2": 19, "s3": 20, "s4": 21, "s5": 22, "s6": 23,
	"s7": 24, "s8": 25, "s9": 26,
	"gp": 27, "fp": 28, "k0": 29, "sp": 30, "ra": 31,
}

// parseGPR parses a general-purpose register name.
func parseGPR(s string) (uint8, error) {
	s = strings.TrimSpace(s)
	if n, ok := gprAliases[s]; ok {
		return n, nil
	}
	if len(s) >= 2 && s[0] == 'r' {
		if v, err := strconv.Atoi(s[1:]); err == nil && v >= 0 && v < isa.NumRegs {
			return uint8(v), nil
		}
	}
	return 0, fmt.Errorf("bad register %q", s)
}

// parseFPR parses a floating-point register name (f0..f31).
func parseFPR(s string) (uint8, error) {
	s = strings.TrimSpace(s)
	if len(s) >= 2 && s[0] == 'f' {
		if v, err := strconv.Atoi(s[1:]); err == nil && v >= 0 && v < isa.NumRegs {
			return uint8(v), nil
		}
	}
	return 0, fmt.Errorf("bad float register %q", s)
}

// opSpec describes how to size and encode one mnemonic.
type opSpec struct {
	// size returns the number of bytes the statement occupies. Most
	// instructions are fixed 4-byte; pseudo-instructions may expand.
	size func(a *assembler, st *stmt) (int, error)
	// emit encodes the statement during pass 2.
	emit func(a *assembler, st *stmt) error
}

func fixedSize(n int) func(*assembler, *stmt) (int, error) {
	return func(*assembler, *stmt) (int, error) { return n, nil }
}

func need(st *stmt, n int) error {
	if len(st.operands) != n {
		return fmt.Errorf("%s expects %d operands, got %d", st.name, n, len(st.operands))
	}
	return nil
}

// r3 builds a three-register integer instruction handler.
func r3(funct uint8) opSpec {
	return opSpec{size: fixedSize(4), emit: func(a *assembler, st *stmt) error {
		if err := need(st, 3); err != nil {
			return err
		}
		rd, err := parseGPR(st.operands[0])
		if err != nil {
			return err
		}
		rs, err := parseGPR(st.operands[1])
		if err != nil {
			return err
		}
		rt, err := parseGPR(st.operands[2])
		if err != nil {
			return err
		}
		return a.emitInstr(isa.Instr{Op: isa.OpR, Funct: funct, Rd: rd, Rs: rs, Rt: rt})
	}}
}

// shiftVar builds a variable shift handler with the MIPS operand order
// (rd, value, amount): the value shifts by the low five bits of the amount
// register.
func shiftVar(funct uint8) opSpec {
	return opSpec{size: fixedSize(4), emit: func(a *assembler, st *stmt) error {
		if err := need(st, 3); err != nil {
			return err
		}
		rd, err := parseGPR(st.operands[0])
		if err != nil {
			return err
		}
		rt, err := parseGPR(st.operands[1])
		if err != nil {
			return err
		}
		rs, err := parseGPR(st.operands[2])
		if err != nil {
			return err
		}
		return a.emitInstr(isa.Instr{Op: isa.OpR, Funct: funct, Rd: rd, Rs: rs, Rt: rt})
	}}
}

// shiftImm builds an immediate shift handler (rd, rt, shamt).
func shiftImm(funct uint8) opSpec {
	return opSpec{size: fixedSize(4), emit: func(a *assembler, st *stmt) error {
		if err := need(st, 3); err != nil {
			return err
		}
		rd, err := parseGPR(st.operands[0])
		if err != nil {
			return err
		}
		rt, err := parseGPR(st.operands[1])
		if err != nil {
			return err
		}
		sh, err := a.exprVal(st.operands[2])
		if err != nil {
			return err
		}
		if sh < 0 || sh > 31 {
			return fmt.Errorf("shift amount %d out of range", sh)
		}
		return a.emitInstr(isa.Instr{Op: isa.OpR, Funct: funct, Rd: rd, Rt: rt, Shamt: uint8(sh)})
	}}
}

// iType builds an immediate-arithmetic handler (rt, rs, imm).
func iType(op uint8, unsigned bool) opSpec {
	return opSpec{size: fixedSize(4), emit: func(a *assembler, st *stmt) error {
		if err := need(st, 3); err != nil {
			return err
		}
		rt, err := parseGPR(st.operands[0])
		if err != nil {
			return err
		}
		rs, err := parseGPR(st.operands[1])
		if err != nil {
			return err
		}
		v, err := a.exprVal(st.operands[2])
		if err != nil {
			return err
		}
		if unsigned {
			if v < 0 || v > 0xFFFF {
				return fmt.Errorf("immediate %d out of unsigned 16-bit range", v)
			}
		} else if v < -32768 || v > 32767 {
			return fmt.Errorf("immediate %d out of signed 16-bit range", v)
		}
		return a.emitInstr(isa.Instr{Op: op, Rt: rt, Rs: rs, Imm: int32(int16(uint16(v)))})
	}}
}

// memOp builds a load/store handler (rt, off(rs)); fp selects the FPR file
// for the data register.
func memOp(op uint8, fp bool) opSpec {
	return opSpec{size: fixedSize(4), emit: func(a *assembler, st *stmt) error {
		if err := need(st, 2); err != nil {
			return err
		}
		var rt uint8
		var err error
		if fp {
			rt, err = parseFPR(st.operands[0])
		} else {
			rt, err = parseGPR(st.operands[0])
		}
		if err != nil {
			return err
		}
		off, rs, err := a.memOperand(st.operands[1])
		if err != nil {
			return err
		}
		return a.emitInstr(isa.Instr{Op: op, Rt: rt, Rs: rs, Imm: off})
	}}
}

// branch builds a conditional-branch handler (rs, rt, target). If swap is
// set, the register operands are exchanged (for bgt/ble synonyms).
func branch(op uint8, swap bool) opSpec {
	return opSpec{size: fixedSize(4), emit: func(a *assembler, st *stmt) error {
		if err := need(st, 3); err != nil {
			return err
		}
		rs, err := parseGPR(st.operands[0])
		if err != nil {
			return err
		}
		rt, err := parseGPR(st.operands[1])
		if err != nil {
			return err
		}
		if swap {
			rs, rt = rt, rs
		}
		return a.emitBranch(op, rs, rt, st.operands[2])
	}}
}

// branchZero builds a single-register branch-against-zero pseudo.
// If zeroFirst is set the hard-wired zero goes in the rs slot.
func branchZero(op uint8, zeroFirst bool) opSpec {
	return opSpec{size: fixedSize(4), emit: func(a *assembler, st *stmt) error {
		if err := need(st, 2); err != nil {
			return err
		}
		r, err := parseGPR(st.operands[0])
		if err != nil {
			return err
		}
		rs, rt := r, uint8(isa.RegZero)
		if zeroFirst {
			rs, rt = uint8(isa.RegZero), r
		}
		return a.emitBranch(op, rs, rt, st.operands[1])
	}}
}

// f3 builds a three-FPR handler.
func f3(funct uint8) opSpec {
	return opSpec{size: fixedSize(4), emit: func(a *assembler, st *stmt) error {
		if err := need(st, 3); err != nil {
			return err
		}
		fd, err := parseFPR(st.operands[0])
		if err != nil {
			return err
		}
		fs, err := parseFPR(st.operands[1])
		if err != nil {
			return err
		}
		ft, err := parseFPR(st.operands[2])
		if err != nil {
			return err
		}
		return a.emitInstr(isa.Instr{Op: isa.OpF, Funct: funct, Rd: fd, Rs: fs, Rt: ft})
	}}
}

// f2 builds a two-FPR handler (fd, fs).
func f2(funct uint8) opSpec {
	return opSpec{size: fixedSize(4), emit: func(a *assembler, st *stmt) error {
		if err := need(st, 2); err != nil {
			return err
		}
		fd, err := parseFPR(st.operands[0])
		if err != nil {
			return err
		}
		fs, err := parseFPR(st.operands[1])
		if err != nil {
			return err
		}
		return a.emitInstr(isa.Instr{Op: isa.OpF, Funct: funct, Rd: fd, Rs: fs})
	}}
}

// fcmp builds a float-compare handler (rd GPR, fs, ft).
func fcmp(funct uint8) opSpec {
	return opSpec{size: fixedSize(4), emit: func(a *assembler, st *stmt) error {
		if err := need(st, 3); err != nil {
			return err
		}
		rd, err := parseGPR(st.operands[0])
		if err != nil {
			return err
		}
		fs, err := parseFPR(st.operands[1])
		if err != nil {
			return err
		}
		ft, err := parseFPR(st.operands[2])
		if err != nil {
			return err
		}
		return a.emitInstr(isa.Instr{Op: isa.OpF, Funct: funct, Rd: rd, Rs: fs, Rt: ft})
	}}
}

// ops is the full FRVL mnemonic table.
var ops map[string]opSpec

// frvlDialect is the default dialect Assemble uses.
var frvlDialect = dialect{
	name:     "frvl",
	parseReg: parseGPR,
	dispMin:  -32768,
	dispMax:  32767,
}

func init() {
	defer func() { frvlDialect.ops = ops }()
	ops = map[string]opSpec{
		// Integer register-register.
		"add": r3(isa.FnADD), "sub": r3(isa.FnSUB), "and": r3(isa.FnAND),
		"or": r3(isa.FnOR), "xor": r3(isa.FnXOR), "nor": r3(isa.FnNOR),
		"slt": r3(isa.FnSLT), "sltu": r3(isa.FnSLTU),
		"mul": r3(isa.FnMUL), "mulh": r3(isa.FnMULH), "mulhu": r3(isa.FnMULHU),
		"div": r3(isa.FnDIV), "divu": r3(isa.FnDIVU),
		"rem": r3(isa.FnREM), "remu": r3(isa.FnREMU),
		"sllv": shiftVar(isa.FnSLLV), "srlv": shiftVar(isa.FnSRLV), "srav": shiftVar(isa.FnSRAV),

		// Shifts by immediate.
		"sll": shiftImm(isa.FnSLL), "srl": shiftImm(isa.FnSRL), "sra": shiftImm(isa.FnSRA),

		// Immediate arithmetic.
		"addi": iType(isa.OpADDI, false), "slti": iType(isa.OpSLTI, false),
		"sltiu": iType(isa.OpSLTIU, false),
		"andi":  iType(isa.OpANDI, true), "ori": iType(isa.OpORI, true),
		"xori": iType(isa.OpXORI, true),

		// Loads and stores.
		"lb": memOp(isa.OpLB, false), "lh": memOp(isa.OpLH, false),
		"lw": memOp(isa.OpLW, false), "lbu": memOp(isa.OpLBU, false),
		"lhu": memOp(isa.OpLHU, false), "fld": memOp(isa.OpFLD, true),
		"sb": memOp(isa.OpSB, false), "sh": memOp(isa.OpSH, false),
		"sw": memOp(isa.OpSW, false), "fsd": memOp(isa.OpFSD, true),

		// Branches.
		"beq": branch(isa.OpBEQ, false), "bne": branch(isa.OpBNE, false),
		"blt": branch(isa.OpBLT, false), "bge": branch(isa.OpBGE, false),
		"bltu": branch(isa.OpBLTU, false), "bgeu": branch(isa.OpBGEU, false),
		"bgt": branch(isa.OpBLT, true), "ble": branch(isa.OpBGE, true),
		"bgtu": branch(isa.OpBLTU, true), "bleu": branch(isa.OpBGEU, true),
		"beqz": branchZero(isa.OpBEQ, false), "bnez": branchZero(isa.OpBNE, false),
		"bltz": branchZero(isa.OpBLT, false), "bgez": branchZero(isa.OpBGE, false),
		"bgtz": branchZero(isa.OpBLT, true), "blez": branchZero(isa.OpBGE, true),

		// Floating point.
		"fadd": f3(isa.FnFADD), "fsub": f3(isa.FnFSUB), "fmul": f3(isa.FnFMUL),
		"fdiv":  f3(isa.FnFDIV),
		"fsqrt": f2(isa.FnFSQRT), "fabs": f2(isa.FnFABS), "fneg": f2(isa.FnFNEG),
		"fmov": f2(isa.FnFMOV),
		"fceq": fcmp(isa.FnFCEQ), "fclt": fcmp(isa.FnFCLT), "fcle": fcmp(isa.FnFCLE),

		"fcvtdw": {size: fixedSize(4), emit: func(a *assembler, st *stmt) error {
			if err := need(st, 2); err != nil {
				return err
			}
			fd, err := parseFPR(st.operands[0])
			if err != nil {
				return err
			}
			rs, err := parseGPR(st.operands[1])
			if err != nil {
				return err
			}
			return a.emitInstr(isa.Instr{Op: isa.OpF, Funct: isa.FnFCVTDW, Rd: fd, Rs: rs})
		}},
		"fcvtwd": {size: fixedSize(4), emit: func(a *assembler, st *stmt) error {
			if err := need(st, 2); err != nil {
				return err
			}
			rd, err := parseGPR(st.operands[0])
			if err != nil {
				return err
			}
			fs, err := parseFPR(st.operands[1])
			if err != nil {
				return err
			}
			return a.emitInstr(isa.Instr{Op: isa.OpF, Funct: isa.FnFCVTWD, Rd: rd, Rs: fs})
		}},

		// Jumps.
		"j":   {size: fixedSize(4), emit: func(a *assembler, st *stmt) error { return a.emitJump(isa.OpJ, st) }},
		"jal": {size: fixedSize(4), emit: func(a *assembler, st *stmt) error { return a.emitJump(isa.OpJAL, st) }},
		"call": {size: fixedSize(4), emit: func(a *assembler, st *stmt) error {
			return a.emitJump(isa.OpJAL, st)
		}},
		"b": {size: fixedSize(4), emit: func(a *assembler, st *stmt) error {
			if err := need(st, 1); err != nil {
				return err
			}
			return a.emitBranch(isa.OpBEQ, isa.RegZero, isa.RegZero, st.operands[0])
		}},
		"jr": {size: fixedSize(4), emit: func(a *assembler, st *stmt) error {
			if err := need(st, 1); err != nil {
				return err
			}
			rs, err := parseGPR(st.operands[0])
			if err != nil {
				return err
			}
			return a.emitInstr(isa.Instr{Op: isa.OpR, Funct: isa.FnJR, Rs: rs})
		}},
		"jalr": {size: fixedSize(4), emit: func(a *assembler, st *stmt) error {
			var rd, rs uint8
			var err error
			switch len(st.operands) {
			case 1:
				rd = isa.RegRA
				rs, err = parseGPR(st.operands[0])
			case 2:
				rd, err = parseGPR(st.operands[0])
				if err == nil {
					rs, err = parseGPR(st.operands[1])
				}
			default:
				return fmt.Errorf("jalr expects 1 or 2 operands")
			}
			if err != nil {
				return err
			}
			return a.emitInstr(isa.Instr{Op: isa.OpR, Funct: isa.FnJALR, Rd: rd, Rs: rs})
		}},
		"ret": {size: fixedSize(4), emit: func(a *assembler, st *stmt) error {
			if err := need(st, 0); err != nil {
				return err
			}
			return a.emitInstr(isa.Instr{Op: isa.OpR, Funct: isa.FnJR, Rs: isa.RegRA})
		}},

		// Misc.
		"lui": {size: fixedSize(4), emit: func(a *assembler, st *stmt) error {
			if err := need(st, 2); err != nil {
				return err
			}
			rt, err := parseGPR(st.operands[0])
			if err != nil {
				return err
			}
			v, err := a.exprVal(st.operands[1])
			if err != nil {
				return err
			}
			if v < 0 || v > 0xFFFF {
				return fmt.Errorf("lui immediate %d out of range", v)
			}
			return a.emitInstr(isa.Instr{Op: isa.OpLUI, Rt: rt, Imm: int32(int16(uint16(v)))})
		}},
		"outb": {size: fixedSize(4), emit: func(a *assembler, st *stmt) error {
			if err := need(st, 1); err != nil {
				return err
			}
			rs, err := parseGPR(st.operands[0])
			if err != nil {
				return err
			}
			return a.emitInstr(isa.Instr{Op: isa.OpOUTB, Rs: rs})
		}},
		"halt": {size: fixedSize(4), emit: func(a *assembler, st *stmt) error {
			if err := need(st, 0); err != nil {
				return err
			}
			return a.emitInstr(isa.Instr{Op: isa.OpHALT})
		}},
		"nop": {size: fixedSize(4), emit: func(a *assembler, st *stmt) error {
			if err := need(st, 0); err != nil {
				return err
			}
			return a.emitInstr(isa.Instr{Op: isa.OpR, Funct: isa.FnSLL})
		}},

		// Pseudo-instructions.
		"li":   {size: liSize, emit: emitLI},
		"la":   {size: fixedSize(8), emit: emitLA},
		"move": {size: fixedSize(4), emit: emitMove},
		"mv":   {size: fixedSize(4), emit: emitMove},
		"not": {size: fixedSize(4), emit: func(a *assembler, st *stmt) error {
			if err := need(st, 2); err != nil {
				return err
			}
			rd, err := parseGPR(st.operands[0])
			if err != nil {
				return err
			}
			rs, err := parseGPR(st.operands[1])
			if err != nil {
				return err
			}
			return a.emitInstr(isa.Instr{Op: isa.OpR, Funct: isa.FnNOR, Rd: rd, Rs: rs, Rt: isa.RegZero})
		}},
		"neg": {size: fixedSize(4), emit: func(a *assembler, st *stmt) error {
			if err := need(st, 2); err != nil {
				return err
			}
			rd, err := parseGPR(st.operands[0])
			if err != nil {
				return err
			}
			rs, err := parseGPR(st.operands[1])
			if err != nil {
				return err
			}
			return a.emitInstr(isa.Instr{Op: isa.OpR, Funct: isa.FnSUB, Rd: rd, Rs: isa.RegZero, Rt: rs})
		}},
		"subi": {size: fixedSize(4), emit: func(a *assembler, st *stmt) error {
			if err := need(st, 3); err != nil {
				return err
			}
			rt, err := parseGPR(st.operands[0])
			if err != nil {
				return err
			}
			rs, err := parseGPR(st.operands[1])
			if err != nil {
				return err
			}
			v, err := a.exprVal(st.operands[2])
			if err != nil {
				return err
			}
			if -v < -32768 || -v > 32767 {
				return fmt.Errorf("immediate %d out of range", v)
			}
			return a.emitInstr(isa.Instr{Op: isa.OpADDI, Rt: rt, Rs: rs, Imm: int32(-v)})
		}},
		"push": {size: fixedSize(8), emit: func(a *assembler, st *stmt) error {
			if err := need(st, 1); err != nil {
				return err
			}
			rs, err := parseGPR(st.operands[0])
			if err != nil {
				return err
			}
			if err := a.emitInstr(isa.Instr{Op: isa.OpADDI, Rt: isa.RegSP, Rs: isa.RegSP, Imm: -4}); err != nil {
				return err
			}
			return a.emitInstr(isa.Instr{Op: isa.OpSW, Rt: rs, Rs: isa.RegSP, Imm: 0})
		}},
		"pop": {size: fixedSize(8), emit: func(a *assembler, st *stmt) error {
			if err := need(st, 1); err != nil {
				return err
			}
			rt, err := parseGPR(st.operands[0])
			if err != nil {
				return err
			}
			if err := a.emitInstr(isa.Instr{Op: isa.OpLW, Rt: rt, Rs: isa.RegSP, Imm: 0}); err != nil {
				return err
			}
			return a.emitInstr(isa.Instr{Op: isa.OpADDI, Rt: isa.RegSP, Rs: isa.RegSP, Imm: 4})
		}},
		"fpush": {size: fixedSize(8), emit: func(a *assembler, st *stmt) error {
			if err := need(st, 1); err != nil {
				return err
			}
			fs, err := parseFPR(st.operands[0])
			if err != nil {
				return err
			}
			if err := a.emitInstr(isa.Instr{Op: isa.OpADDI, Rt: isa.RegSP, Rs: isa.RegSP, Imm: -8}); err != nil {
				return err
			}
			return a.emitInstr(isa.Instr{Op: isa.OpFSD, Rt: fs, Rs: isa.RegSP, Imm: 0})
		}},
		"fpop": {size: fixedSize(8), emit: func(a *assembler, st *stmt) error {
			if err := need(st, 1); err != nil {
				return err
			}
			ft, err := parseFPR(st.operands[0])
			if err != nil {
				return err
			}
			if err := a.emitInstr(isa.Instr{Op: isa.OpFLD, Rt: ft, Rs: isa.RegSP, Imm: 0}); err != nil {
				return err
			}
			return a.emitInstr(isa.Instr{Op: isa.OpADDI, Rt: isa.RegSP, Rs: isa.RegSP, Imm: 8})
		}},
	}
}

// liSize decides during pass 1 whether li fits in one instruction. The
// decision is recorded so pass 2 emits the same size even once forward
// symbols resolve.
func liSize(a *assembler, st *stmt) (int, error) {
	if err := need(st, 2); err != nil {
		return 0, err
	}
	v, err := evalExpr(st.operands[1], a.symsInt64(), a.pc)
	if err != nil {
		if _, undef := err.(errUndefined); undef {
			a.liWide[st.index] = true
			return 8, nil
		}
		return 0, err
	}
	if (v >= -32768 && v <= 32767) || (v >= 0 && v <= 0xFFFF) || (v&0xFFFF) == 0 && v >= 0 && v <= 0xFFFFFFFF {
		return 4, nil
	}
	a.liWide[st.index] = true
	return 8, nil
}

func emitLI(a *assembler, st *stmt) error {
	rt, err := parseGPR(st.operands[0])
	if err != nil {
		return err
	}
	v, err := a.exprVal(st.operands[1])
	if err != nil {
		return err
	}
	u := uint32(v)
	if int64(int32(u)) != v && v>>32 != 0 && v>>32 != -1 {
		return fmt.Errorf("li value %d does not fit in 32 bits", v)
	}
	if a.liWide[st.index] {
		if err := a.emitInstr(isa.Instr{Op: isa.OpLUI, Rt: rt, Imm: int32(int16(uint16(u >> 16)))}); err != nil {
			return err
		}
		return a.emitInstr(isa.Instr{Op: isa.OpORI, Rt: rt, Rs: rt, Imm: int32(int16(uint16(u)))})
	}
	switch {
	case v >= -32768 && v <= 32767:
		return a.emitInstr(isa.Instr{Op: isa.OpADDI, Rt: rt, Rs: isa.RegZero, Imm: int32(v)})
	case v >= 0 && v <= 0xFFFF:
		return a.emitInstr(isa.Instr{Op: isa.OpORI, Rt: rt, Rs: isa.RegZero, Imm: int32(int16(uint16(u)))})
	default: // low half zero
		return a.emitInstr(isa.Instr{Op: isa.OpLUI, Rt: rt, Imm: int32(int16(uint16(u >> 16)))})
	}
}

func emitLA(a *assembler, st *stmt) error {
	if err := need(st, 2); err != nil {
		return err
	}
	rt, err := parseGPR(st.operands[0])
	if err != nil {
		return err
	}
	v, err := a.exprVal(st.operands[1])
	if err != nil {
		return err
	}
	u := uint32(v)
	if err := a.emitInstr(isa.Instr{Op: isa.OpLUI, Rt: rt, Imm: int32(int16(uint16(u >> 16)))}); err != nil {
		return err
	}
	return a.emitInstr(isa.Instr{Op: isa.OpORI, Rt: rt, Rs: rt, Imm: int32(int16(uint16(u)))})
}

func emitMove(a *assembler, st *stmt) error {
	if err := need(st, 2); err != nil {
		return err
	}
	rd, err := parseGPR(st.operands[0])
	if err != nil {
		return err
	}
	rs, err := parseGPR(st.operands[1])
	if err != nil {
		return err
	}
	return a.emitInstr(isa.Instr{Op: isa.OpR, Funct: isa.FnADD, Rd: rd, Rs: rs, Rt: isa.RegZero})
}
