package experiments

import (
	"bytes"
	"testing"

	"waymemo/internal/core"
	"waymemo/internal/trace"
	"waymemo/internal/workloads"
)

// TestTraceDrivenEquivalence records a benchmark's event streams to the
// binary trace format, replays them into fresh controllers, and demands
// statistics identical to the live run — validating the trace-driven
// evaluation mode end to end.
func TestTraceDrivenEquivalence(t *testing.T) {
	w, err := workloads.ByName("DCT")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	tw, err := trace.NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	liveD := core.NewDController(Geometry, core.DefaultD)
	liveI := core.NewIController(Geometry, core.DefaultI)
	if _, err := workloads.Run(w, trace.FetchTee(liveI, tw), trace.DataTee(liveD, tw)); err != nil {
		t.Fatal(err)
	}
	if err := tw.Flush(); err != nil {
		t.Fatal(err)
	}
	t.Logf("trace size: %d bytes", buf.Len())

	replayD := core.NewDController(Geometry, core.DefaultD)
	replayI := core.NewIController(Geometry, core.DefaultI)
	if err := trace.ReadAll(&buf, replayI, replayD); err != nil {
		t.Fatal(err)
	}
	if *replayD.Stats != *liveD.Stats {
		t.Errorf("D stats diverged:\nlive   %+v\nreplay %+v", *liveD.Stats, *replayD.Stats)
	}
	if *replayI.Stats != *liveI.Stats {
		t.Errorf("I stats diverged:\nlive   %+v\nreplay %+v", *liveI.Stats, *replayI.Stats)
	}
}
