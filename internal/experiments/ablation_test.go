package experiments

import (
	"context"
	"testing"
	"time"
)

func TestAblationD(t *testing.T) {
	if testing.Short() {
		t.Skip("ablation suite in -short mode")
	}
	start := time.Now()
	rows, err := AblationD(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("ablation D took %v", time.Since(start))
	byName := map[string]AblationRow{}
	for _, r := range rows {
		byName[r.Tech] = r
	}
	orig := byName["original"]
	mab := byName["mab-2x8"]
	combo := byName["mab-2x8+linebuf"]
	tp := byName["two-phase[8]"]
	if orig.Tech == "" || mab.Tech == "" || combo.Tech == "" || tp.Tech == "" {
		t.Fatalf("missing rows: %+v", rows)
	}
	// The original and the MAB are penalty-free; two-phase and the filter
	// cache pay cycles.
	if orig.CyclePenalty != 0 || mab.CyclePenalty != 0 {
		t.Errorf("penalty-free techniques charged cycles: %+v %+v", orig, mab)
	}
	if tp.CyclePenalty <= 0 || byName["filter-cache[6]"].CyclePenalty <= 0 ||
		byName["line-buffer[13]"].CyclePenalty <= 0 {
		t.Error("penalty techniques charged no cycles")
	}
	// Two-phase reads the fewest data ways of the tag-checking designs.
	if tp.Ways >= orig.Ways {
		t.Error("two-phase saved no ways")
	}
	// The combination (paper's future work) further cuts way reads and
	// power versus the plain MAB.
	if combo.Ways >= mab.Ways {
		t.Errorf("line-buffer combination saved no ways: %.3f vs %.3f", combo.Ways, mab.Ways)
	}
	if combo.PowerMW >= mab.PowerMW {
		t.Errorf("combination power %.2f not below MAB %.2f", combo.PowerMW, mab.PowerMW)
	}
	// And the MAB beats the original on power (the paper's core claim).
	if mab.PowerMW >= orig.PowerMW {
		t.Errorf("MAB power %.2f not below original %.2f", mab.PowerMW, orig.PowerMW)
	}
}

func TestAblationI(t *testing.T) {
	if testing.Short() {
		t.Skip("ablation suite in -short mode")
	}
	rows, err := AblationI(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]AblationRow{}
	for _, r := range rows {
		byName[r.Tech] = r
	}
	orig := byName["original"]
	a4 := byName["approach[4]"]
	wp := byName["way-predict[9]"]
	ma := byName["ma-links[11]"]
	mab := byName["mab-2x16"]
	// Way prediction reads ~1 tag+way but pays cycles; the MAB is
	// penalty-free (the paper's §1/§2 contrast).
	if wp.CyclePenalty <= 0 {
		t.Error("way prediction charged no mispredict cycles")
	}
	if mab.CyclePenalty != 0 || a4.CyclePenalty != 0 || ma.CyclePenalty != 0 {
		t.Error("penalty-free I techniques charged cycles")
	}
	// Both memoization schemes eliminate most of [4]'s remaining tag
	// accesses. Ma's per-line links can even edge out the MAB on raw tag
	// count (a link per cache line has unbounded reach); the paper's
	// argument against [11] is its per-line storage and invalidation
	// hardware, not its hit rate.
	if !(mab.Tags < a4.Tags/2 && ma.Tags < a4.Tags/2 && a4.Tags < orig.Tags) {
		t.Errorf("tag ordering wrong: orig %.3f, [4] %.3f, ma %.3f, mab %.3f",
			orig.Tags, a4.Tags, ma.Tags, mab.Tags)
	}
	if mab.PowerMW >= a4.PowerMW {
		t.Errorf("MAB power %.2f not below [4] %.2f", mab.PowerMW, a4.PowerMW)
	}
}

func TestAblationConsistency(t *testing.T) {
	if testing.Short() {
		t.Skip("ablation suite in -short mode")
	}
	rows, err := AblationConsistency(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]ConsistencyRow{}
	for _, r := range rows {
		byName[r.Policy] = r
	}
	if v := byName["evict-invalidate (sound)"].Violations; v != 0 {
		t.Errorf("sound policy violated %d times", v)
	}
	if v := byName["paper rules, Nt=1 (provable)"].Violations; v != 0 {
		t.Errorf("Nt=1 paper policy violated %d times (the paper's own soundness condition)", v)
	}
	// The paper policies with Nt=2 may violate, but must stay rare.
	for _, name := range []string{"paper rules, clear-all", "paper rules, clear-LRU-row"} {
		r := byName[name]
		if r.MABHitRate <= 0 {
			t.Errorf("%s: no hits", name)
		}
	}
}

func TestAblationPacket(t *testing.T) {
	if testing.Short() {
		t.Skip("ablation suite in -short mode")
	}
	rows, err := AblationPacket(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows: %d", len(rows))
	}
	// Wider packets -> fewer fetches, lower intra-line-sequential share.
	if !(rows[0].Cycles > rows[1].Cycles && rows[1].Cycles > rows[2].Cycles) {
		t.Errorf("fetch counts not decreasing: %d %d %d",
			rows[0].Cycles, rows[1].Cycles, rows[2].Cycles)
	}
	if !(rows[0].IntraSeq > rows[1].IntraSeq && rows[1].IntraSeq > rows[2].IntraSeq) {
		t.Errorf("intra-seq shares not decreasing: %.3f %.3f %.3f",
			rows[0].IntraSeq, rows[1].IntraSeq, rows[2].IntraSeq)
	}
	// The MAB keeps beating [4] at every width.
	for _, r := range rows {
		if r.MABTags >= r.A4Tags {
			t.Errorf("packet %d: MAB %.3f >= [4] %.3f", r.PacketBytes, r.MABTags, r.A4Tags)
		}
	}
}
