package experiments

import (
	"context"
	"fmt"

	"waymemo/internal/report"
	"waymemo/internal/suite"
	"waymemo/internal/workloads"
)

// CrossISA runs the instruction-cache technique zoo on one kernel under
// both frontends — the FRVL rendering and its RV32I port — and tabulates
// per-technique I-cache power and MAB hit rate side by side. Both ports
// validate against the same Go reference before their traces are priced, so
// a row disagreement is an ISA effect (packet width, instruction count,
// branch shape), never a wrong program.
//
// kernel names the shared kernel ("DCT", or a synthetic spec like
// "synth:pchase,fp=4KiB"); CrossISA resolves kernel and "rv32:"+kernel and
// runs both in one suite pass, so extra suite options (parallelism, trace
// cache, progress) apply to both. Each frontend runs at its own native
// fetch-packet width (8 bytes for FRVL's VLIW pairs, 4 for RV32).
func CrossISA(ctx context.Context, kernel string, opts ...suite.Option) (*report.Table, error) {
	frvl, err := resolveOne(kernel)
	if err != nil {
		return nil, err
	}
	rv, err := resolveOne(workloads.RV32Prefix + kernel)
	if err != nil {
		return nil, err
	}
	runOpts := append([]suite.Option{
		suite.WithGeometry(Geometry),
		suite.WithWorkloads(frvl, rv),
	}, opts...)
	res, err := suite.Run(ctx, runOpts...)
	if err != nil {
		return nil, err
	}
	if len(res.Benchmarks) != 2 {
		return nil, fmt.Errorf("experiments: crossisa: got %d benchmark results, want 2", len(res.Benchmarks))
	}
	bf, br := res.Benchmarks[0], res.Benchmarks[1]

	t := &report.Table{
		Title: fmt.Sprintf("Cross-ISA I-cache comparison: %s (FRVL, 8B packets) vs %s (RV32I, 4B packets)",
			frvl.Name, rv.Name),
		Columns: []string{"technique",
			"frvl mW", "frvl MAB hit", "rv32 mW", "rv32 MAB hit"},
	}
	for _, tech := range append([]suite.ID{IOrig}, ITechs...) {
		t.AddRow(string(tech),
			report.F(bf.IPower(tech).TotalMW(), 3), mabHitCell(bf, tech),
			report.F(br.IPower(tech).TotalMW(), 3), mabHitCell(br, tech))
	}
	return t, nil
}

// resolveOne resolves a workload name that must denote exactly one
// workload — CrossISA compares single kernels, not sweeps.
func resolveOne(name string) (workloads.Workload, error) {
	ws, err := workloads.ExpandByName(name)
	if err != nil {
		return workloads.Workload{}, err
	}
	if len(ws) != 1 {
		return workloads.Workload{}, fmt.Errorf("experiments: crossisa: %q expands to %d workloads, want a single kernel", name, len(ws))
	}
	return ws[0], nil
}

// mabHitCell formats a technique's MAB hit rate, "-" for techniques without
// a MAB (the baseline and approach [4] never look one up).
func mabHitCell(b suite.BenchResult, tech suite.ID) string {
	s := b.I[tech].Stats
	if s == nil || s.MABLookups == 0 {
		return "-"
	}
	return report.Pct(s.MABHitRate())
}
