package experiments

import (
	"fmt"

	"waymemo/internal/power"
	"waymemo/internal/report"
	"waymemo/internal/suite"
	"waymemo/internal/synth"
)

// AccessRow is one bar pair of Figures 4 and 6: average tag and way
// activations per cache access.
type AccessRow struct {
	Bench string
	Tech  suite.ID
	Tags  float64
	Ways  float64
}

// Figure4 returns D-cache tag/way accesses per access for the three
// techniques of the paper's Figure 4.
func Figure4(r *Results) []AccessRow {
	var rows []AccessRow
	for _, b := range r.Benchmarks {
		for _, tech := range DTechs {
			s := b.D[tech].Stats
			rows = append(rows, AccessRow{b.Name, tech, s.TagsPerAccess(), s.WaysPerAccess()})
		}
	}
	return rows
}

// Figure6 returns I-cache tag/way accesses per access for approach [4] and
// the three MAB sizes of the paper's Figure 6.
func Figure6(r *Results) []AccessRow {
	var rows []AccessRow
	for _, b := range r.Benchmarks {
		for _, tech := range ITechs {
			s := b.I[tech].Stats
			rows = append(rows, AccessRow{b.Name, tech, s.TagsPerAccess(), s.WaysPerAccess()})
		}
	}
	return rows
}

// AccessTable renders access rows in a paper-style grid.
func AccessTable(title string, rows []AccessRow) report.Table {
	t := report.Table{Title: title,
		Columns: []string{"benchmark", "technique", "tags/access", "ways/access"}}
	for _, r := range rows {
		t.AddRow(r.Bench, string(r.Tech), report.F(r.Tags, 3), report.F(r.Ways, 3))
	}
	return t
}

// PowerRow is one bar of Figures 5 and 7: the power breakdown of one cache
// under one technique.
type PowerRow struct {
	Bench string
	Tech  suite.ID
	B     power.Breakdown
}

// Figure5 returns the D-cache power decomposition of Figure 5.
func Figure5(r *Results) []PowerRow {
	var rows []PowerRow
	for _, b := range r.Benchmarks {
		for _, tech := range DTechs {
			rows = append(rows, PowerRow{b.Name, tech, b.DPower(tech)})
		}
	}
	return rows
}

// Figure7 returns the I-cache power decomposition of Figure 7.
func Figure7(r *Results) []PowerRow {
	var rows []PowerRow
	for _, b := range r.Benchmarks {
		for _, tech := range ITechs {
			rows = append(rows, PowerRow{b.Name, tech, b.IPower(tech)})
		}
	}
	return rows
}

// PowerTable renders power rows with the figure's stacked components.
func PowerTable(title string, rows []PowerRow) report.Table {
	t := report.Table{Title: title, Columns: []string{
		"benchmark", "technique", "data mW", "tag mW", "MAB mW", "buf mW", "leak mW", "total mW"}}
	for _, r := range rows {
		t.AddRow(r.Bench, string(r.Tech),
			report.F(r.B.DataMW, 2), report.F(r.B.TagMW, 2), report.F(r.B.MABMW, 2),
			report.F(r.B.BufMW, 2), report.F(r.B.LeakMW, 2), report.F(r.B.TotalMW(), 2))
	}
	return t
}

// TotalRow is one benchmark of Figure 8: total I+D cache power of the
// baseline system (original D-cache + approach [4] I-cache) versus the
// paper's system (2x8 MAB D-cache + 2x16 MAB I-cache).
type TotalRow struct {
	Bench  string
	BaseD  float64
	BaseI  float64
	OursD  float64
	OursI  float64
	Saving float64 // 1 - ours/base
}

// BaseTotal returns the baseline's combined power.
func (t TotalRow) BaseTotal() float64 { return t.BaseD + t.BaseI }

// OursTotal returns the way-memoized system's combined power.
func (t TotalRow) OursTotal() float64 { return t.OursD + t.OursI }

// Figure8 returns the per-benchmark totals of Figure 8.
func Figure8(r *Results) []TotalRow {
	var rows []TotalRow
	for _, b := range r.Benchmarks {
		row := TotalRow{
			Bench: b.Name,
			BaseD: b.DPower(DOrig).TotalMW(),
			BaseI: b.IPower(IA4).TotalMW(),
			OursD: b.DPower(DMAB).TotalMW(),
			OursI: b.IPower(IMAB16).TotalMW(),
		}
		row.Saving = 1 - row.OursTotal()/row.BaseTotal()
		rows = append(rows, row)
	}
	return rows
}

// Figure8Table renders Figure 8 with savings.
func Figure8Table(rows []TotalRow) report.Table {
	t := report.Table{Title: "Figure 8: total I+D cache power (original+[4] vs way-memoized)",
		Columns: []string{"benchmark", "base D", "base I", "base total",
			"ours D", "ours I", "ours total", "saving"}}
	for _, r := range rows {
		t.AddRow(r.Bench,
			report.F(r.BaseD, 2), report.F(r.BaseI, 2), report.F(r.BaseTotal(), 2),
			report.F(r.OursD, 2), report.F(r.OursI, 2), report.F(r.OursTotal(), 2),
			report.Pct(r.Saving))
	}
	return t
}

// AverageSaving computes the arithmetic mean of per-benchmark savings and
// its maximum (the paper reports 30% average, 40% maximum).
func AverageSaving(rows []TotalRow) (avg, max float64) {
	for _, r := range rows {
		avg += r.Saving
		if r.Saving > max {
			max = r.Saving
		}
	}
	return avg / float64(len(rows)), max
}

// Table1 regenerates the MAB area grid.
func Table1() report.Table {
	t := report.Table{Title: "Table 1: MAB area overhead (mm^2)",
		Columns: []string{"#tag entries", "Ns=4", "Ns=8", "Ns=16", "Ns=32"}}
	for _, row := range synth.Grid() {
		cells := []string{fmt.Sprintf("%d", row[0].TagEntries)}
		for _, r := range row {
			cells = append(cells, report.F(r.AreaMM2, 3))
		}
		t.AddRow(cells...)
	}
	return t
}

// Table2 regenerates the MAB critical-path delay grid.
func Table2() report.Table {
	t := report.Table{Title: "Table 2: delay of the added circuit (ns); cycle time 2.5ns",
		Columns: []string{"#tag entries", "Ns=4", "Ns=8", "Ns=16", "Ns=32"}}
	for _, row := range synth.Grid() {
		cells := []string{fmt.Sprintf("%d", row[0].TagEntries)}
		for _, r := range row {
			cells = append(cells, report.F(r.DelayNS, 2))
		}
		t.AddRow(cells...)
	}
	return t
}

// Table3 regenerates the MAB power grid (active and sleep).
func Table3() report.Table {
	t := report.Table{Title: "Table 3: MAB power consumption (mW)",
		Columns: []string{"#tag entries", "state", "Ns=4", "Ns=8", "Ns=16", "Ns=32"}}
	for _, row := range synth.Grid() {
		active := []string{fmt.Sprintf("%d", row[0].TagEntries), "active"}
		sleep := []string{"", "sleep"}
		for _, r := range row {
			active = append(active, report.F(r.ActiveMW, 2))
			sleep = append(sleep, report.F(r.SleepMW, 2))
		}
		t.AddRow(active...)
		t.AddRow(sleep...)
	}
	return t
}
