// Package experiments regenerates every table and figure of the paper's
// evaluation section. One simulator pass per benchmark drives all cache
// techniques simultaneously through event tees, so every technique observes
// the identical access stream — the same methodology as trace-driven
// evaluation on the Softune ISS.
package experiments

import (
	"waymemo/internal/baseline"
	"waymemo/internal/cache"
	"waymemo/internal/cacti"
	"waymemo/internal/core"
	"waymemo/internal/power"
	"waymemo/internal/stats"
	"waymemo/internal/synth"
	"waymemo/internal/trace"
	"waymemo/internal/workloads"
)

// Technique keys of the standard suite.
const (
	DOrig   = "original"
	DSetBuf = "setbuf[14]"
	DMAB    = "mab-2x8"

	IOrig  = "original"
	IA4    = "approach[4]"
	IMAB8  = "mab-2x8"
	IMAB16 = "mab-2x16"
	IMAB32 = "mab-2x32"
)

// DTechs and ITechs list the technique keys in figure order.
var (
	DTechs = []string{DOrig, DSetBuf, DMAB}
	ITechs = []string{IA4, IMAB8, IMAB16, IMAB32}
)

// Geometry is the cache configuration of the paper (32KB, 2-way, 512 sets,
// 32-byte lines, for both I and D).
var Geometry = cache.FRV32K

// BenchResult holds one benchmark's counters for every technique.
type BenchResult struct {
	Name   string
	Cycles uint64
	Instrs uint64
	D      map[string]*stats.Counters
	I      map[string]*stats.Counters
}

// Results is the full suite outcome.
type Results struct {
	Benchmarks []BenchResult
}

// RunAll executes the seven benchmarks with every standard technique
// attached.
func RunAll() (*Results, error) {
	return RunSuite(workloads.All())
}

// RunSuite executes the given workloads with the standard technique set.
func RunSuite(ws []workloads.Workload) (*Results, error) {
	var out Results
	for _, w := range ws {
		dOrig := baseline.NewOriginalD(Geometry)
		dSB := baseline.NewSetBufferD(Geometry)
		dMAB := core.NewDController(Geometry, core.DefaultD)
		iOrig := baseline.NewOriginalI(Geometry)
		iA4 := baseline.NewApproach4I(Geometry)
		iM8 := core.NewIController(Geometry, core.Config{TagEntries: 2, SetEntries: 8})
		iM16 := core.NewIController(Geometry, core.DefaultI)
		iM32 := core.NewIController(Geometry, core.Config{TagEntries: 2, SetEntries: 32})

		c, err := workloads.Run(w,
			trace.FetchTee(iOrig, iA4, iM8, iM16, iM32),
			trace.DataTee(dOrig, dSB, dMAB))
		if err != nil {
			return nil, err
		}
		out.Benchmarks = append(out.Benchmarks, BenchResult{
			Name:   w.Name,
			Cycles: c.Cycles,
			Instrs: c.Instrs,
			D: map[string]*stats.Counters{
				DOrig: dOrig.Stats, DSetBuf: dSB.Stats, DMAB: dMAB.Stats,
			},
			I: map[string]*stats.Counters{
				IOrig: iOrig.Stats, IA4: iA4.Stats,
				IMAB8: iM8.Stats, IMAB16: iM16.Stats, IMAB32: iM32.Stats,
			},
		})
	}
	return &out, nil
}

// arrayEnergies is shared by all power models.
var arrayEnergies = cacti.ArrayEnergies(cacti.Tech130, Geometry)

// DModel returns the power model for a D-cache technique key.
func DModel(tech string) power.Model {
	m := power.Model{Array: arrayEnergies}
	switch tech {
	case DSetBuf:
		m.Buffer = cacti.LineBuffer(cacti.Tech130, Geometry.Ways, Geometry.LineBytes, Geometry.TagBits())
	case DMAB:
		m.MAB = synth.Characterize(2, 8)
	}
	return m
}

// IModel returns the power model for an I-cache technique key.
func IModel(tech string) power.Model {
	m := power.Model{Array: arrayEnergies}
	switch tech {
	case IMAB8:
		m.MAB = synth.Characterize(2, 8)
	case IMAB16:
		m.MAB = synth.Characterize(2, 16)
	case IMAB32:
		m.MAB = synth.Characterize(2, 32)
	}
	return m
}
