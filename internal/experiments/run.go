// Package experiments regenerates every table and figure of the paper's
// evaluation section. The execution machinery lives in internal/suite (a
// technique registry plus a parallel runner); this package is the rendering
// layer that knows which technique goes in which figure, plus the ablation
// studies beyond the published results.
package experiments

import (
	"context"

	"waymemo/internal/cache"
	"waymemo/internal/suite"
	"waymemo/internal/workloads"
)

// Technique keys of the standard suite, re-exported from internal/suite for
// the rendering lists below.
const (
	DOrig   = suite.DOrig
	DSetBuf = suite.DSetBuf
	DMAB    = suite.DMAB

	IOrig  = suite.IOrig
	IA4    = suite.IA4
	IMAB8  = suite.IMAB8
	IMAB16 = suite.IMAB16
	IMAB32 = suite.IMAB32
)

// DTechs and ITechs list the technique keys in figure order. This is the
// rendering list: a newly registered technique shows up in the figures by
// adding its key here — no runner or figure-code changes.
var (
	DTechs = []suite.ID{DOrig, DSetBuf, DMAB}
	ITechs = []suite.ID{IA4, IMAB8, IMAB16, IMAB32}
)

// Geometry is the cache configuration of the paper (32KB, 2-way, 512 sets,
// 32-byte lines, for both I and D).
var Geometry = cache.FRV32K

// Results and BenchResult alias the suite types so existing figure callers
// keep compiling.
type (
	Results     = suite.Results
	BenchResult = suite.BenchResult
)

// RunAll executes the seven benchmarks with every registered technique
// attached, on this package's Geometry.
//
// Deprecated: use suite.Run, which takes a context and runs benchmarks in
// parallel. RunAll remains as a convenience for the figure pipeline.
func RunAll() (*Results, error) {
	return suite.Run(context.Background(), suite.WithGeometry(Geometry))
}

// RunSuite executes the given workloads with the registered technique set.
//
// Deprecated: use suite.Run with suite.WithWorkloads.
func RunSuite(ws []workloads.Workload) (*Results, error) {
	return suite.Run(context.Background(),
		suite.WithGeometry(Geometry), suite.WithWorkloads(ws...))
}
