package experiments

import (
	"testing"
)

// Per-benchmark characterization: pins the measured MAB behaviour into
// bands so regressions in the workloads, the simulator or the MAB itself
// surface immediately. Bounds are deliberately loose (the exact numbers
// live in EXPERIMENTS.md); ordering facts come from the paper.
func TestPerBenchmarkMABHitRates(t *testing.T) {
	r := getSuite(t)
	// D-cache MAB (2x8) hit-rate floors. compress carries a dictionary
	// bigger than the D-cache and sits far below the media kernels — the
	// same relative ordering as the paper's figures.
	dFloor := map[string]float64{
		"DCT":       0.50,
		"FFT":       0.80,
		"dhrystone": 0.70,
		"whetstone": 0.80,
		"compress":  0.15,
		"jpeg_enc":  0.60,
		"mpeg2enc":  0.70,
	}
	for _, b := range r.Benchmarks {
		d := b.D[DMAB].Stats
		if hr := d.MABHitRate(); hr < dFloor[b.Name] {
			t.Errorf("%s: D-MAB hit rate %.2f below floor %.2f", b.Name, hr, dFloor[b.Name])
		}
		// Bypasses (large displacements) must be rare: the paper reports
		// >99% of displacements in range.
		if frac := float64(d.MABBypasses) / float64(d.Accesses); frac > 0.01 {
			t.Errorf("%s: %.2f%% of D accesses bypassed the MAB", b.Name, frac*100)
		}
		// The I-MAB covers loops and calls almost completely on these
		// kernels (whetstone's many small helpers churn its tables most).
		i := b.I[IMAB16].Stats
		if hr := i.MABHitRate(); hr < 0.85 {
			t.Errorf("%s: I-MAB hit rate %.2f below 0.85", b.Name, hr)
		}
	}
	// compress must be the weakest D-cache benchmark — the ordering the
	// paper's figures show.
	var compressHR, minOtherHR float64 = 0, 1
	for _, b := range r.Benchmarks {
		hr := b.D[DMAB].Stats.MABHitRate()
		if b.Name == "compress" {
			compressHR = hr
		} else if hr < minOtherHR {
			minOtherHR = hr
		}
	}
	if compressHR >= minOtherHR {
		t.Errorf("compress D-MAB hit rate %.2f not the weakest (min other %.2f)",
			compressHR, minOtherHR)
	}
}

// TestCacheHitRatesRealistic: 32KB caches over embedded kernels should hit
// nearly always — the regime the paper's power numbers assume.
func TestCacheHitRatesRealistic(t *testing.T) {
	for _, b := range getSuite(t).Benchmarks {
		floor := 0.95
		if b.Name == "compress" {
			floor = 0.85 // its 48KB dictionary exceeds the 32KB D-cache
		}
		if hr := b.D[DOrig].Stats.HitRate(); hr < floor {
			t.Errorf("%s: D hit rate %.3f suspiciously low", b.Name, hr)
		}
		if hr := b.I[IOrig].Stats.HitRate(); hr < 0.98 {
			t.Errorf("%s: I hit rate %.3f suspiciously low", b.Name, hr)
		}
	}
}

// TestStoreFractionPlausible: every benchmark issues a realistic mix of
// loads and stores (the write-back-buffer modelling depends on it).
func TestStoreFractionPlausible(t *testing.T) {
	for _, b := range getSuite(t).Benchmarks {
		s := b.D[DOrig].Stats
		frac := float64(s.Stores) / float64(s.Accesses)
		if frac < 0.02 || frac > 0.60 {
			t.Errorf("%s: store fraction %.2f outside [0.02,0.60]", b.Name, frac)
		}
	}
}
