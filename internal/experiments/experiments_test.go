package experiments

import (
	"math"
	"sync"
	"testing"

	"waymemo/internal/suite"
	"waymemo/internal/trace"
)

var (
	suiteOnce    sync.Once
	suiteResults *Results
	suiteErr     error
)

// getSuite runs the full benchmark suite once and shares it across tests.
// The pass costs seconds live and much more under -race, so -short (the CI
// race job) skips the tests built on it; the plain test job still runs them.
func getSuite(t *testing.T) *Results {
	t.Helper()
	if testing.Short() {
		t.Skip("full seven-benchmark suite pass; skipped in -short")
	}
	suiteOnce.Do(func() { suiteResults, suiteErr = RunAll() })
	if suiteErr != nil {
		t.Fatal(suiteErr)
	}
	return suiteResults
}

func TestSuiteCoversSevenBenchmarks(t *testing.T) {
	r := getSuite(t)
	if len(r.Benchmarks) != 7 {
		t.Fatalf("benchmarks = %d", len(r.Benchmarks))
	}
	names := map[string]bool{}
	for _, b := range r.Benchmarks {
		names[b.Name] = true
		if b.Cycles == 0 || b.Instrs == 0 {
			t.Errorf("%s: empty run", b.Name)
		}
	}
	for _, n := range []string{"DCT", "FFT", "dhrystone", "whetstone", "compress", "jpeg_enc", "mpeg2enc"} {
		if !names[n] {
			t.Errorf("missing %s", n)
		}
	}
}

// TestTechniquesAgreeFunctionally: all D techniques see the same hits and
// misses; the MAB and [4] must not change I-cache behaviour either.
func TestTechniquesAgreeFunctionally(t *testing.T) {
	for _, b := range getSuite(t).Benchmarks {
		o := b.D[DOrig].Stats
		for _, tech := range DTechs {
			s := b.D[tech].Stats
			if s.Hits != o.Hits || s.Misses != o.Misses {
				t.Errorf("%s/%s: hits %d/%d vs original %d/%d",
					b.Name, tech, s.Hits, s.Misses, o.Hits, o.Misses)
			}
		}
		oi := b.I[IOrig].Stats
		for _, tech := range ITechs {
			s := b.I[tech].Stats
			if s.Hits != oi.Hits || s.Misses != oi.Misses {
				t.Errorf("%s/%s: I hits %d/%d vs original %d/%d",
					b.Name, tech, s.Hits, s.Misses, oi.Hits, oi.Misses)
			}
		}
	}
}

// TestNoViolations: under the default sound consistency policy, no memoized
// way may ever be stale.
func TestNoViolations(t *testing.T) {
	for _, b := range getSuite(t).Benchmarks {
		if v := b.D[DMAB].Stats.Violations; v != 0 {
			t.Errorf("%s: D violations %d", b.Name, v)
		}
		for _, tech := range []suite.ID{IMAB8, IMAB16, IMAB32} {
			if v := b.I[tech].Stats.Violations; v != 0 {
				t.Errorf("%s/%s: I violations %d", b.Name, tech, v)
			}
		}
	}
}

// TestFigure4Shape: the original reads both tags always; the MAB eliminates
// most tag reads (the paper reports ~90% on average); the set buffer sits in
// between on tag reads; memoized ways stay ≥ 1 and below the original.
func TestFigure4Shape(t *testing.T) {
	r := getSuite(t)
	var reduction float64
	for _, b := range r.Benchmarks {
		orig, sb, mab := b.D[DOrig].Stats, b.D[DSetBuf].Stats, b.D[DMAB].Stats
		if got := orig.TagsPerAccess(); math.Abs(got-2.0) > 1e-9 {
			t.Errorf("%s: original tags/access = %f", b.Name, got)
		}
		if orig.WaysPerAccess() >= 2 || orig.WaysPerAccess() <= 1 {
			t.Errorf("%s: original ways/access = %f, expected in (1,2)", b.Name, orig.WaysPerAccess())
		}
		if mab.TagsPerAccess() >= orig.TagsPerAccess() {
			t.Errorf("%s: MAB saved no tag reads", b.Name)
		}
		if sb.TagsPerAccess() > orig.TagsPerAccess()+1e-9 {
			t.Errorf("%s: set buffer increased tag reads", b.Name)
		}
		if mab.WaysPerAccess() < 1 {
			t.Errorf("%s: MAB ways/access %f < 1 (at least one way per access)",
				b.Name, mab.WaysPerAccess())
		}
		reduction += 1 - mab.TagsPerAccess()/orig.TagsPerAccess()
	}
	reduction /= float64(len(r.Benchmarks))
	// Paper: ~90% average tag-access reduction. Allow a generous band: our
	// compress carries a dictionary larger than the paper's.
	if reduction < 0.6 || reduction > 0.99 {
		t.Errorf("average D tag reduction %.2f outside [0.60,0.99]", reduction)
	}
}

// TestFigure6Shape: [4] removes ~60% of tag accesses (intra-line sequential
// flow); the MAB removes most of the rest, monotonically with size.
func TestFigure6Shape(t *testing.T) {
	r := getSuite(t)
	var a4Red float64
	for _, b := range r.Benchmarks {
		a4 := b.I[IA4].Stats
		if a4.TagsPerAccess() >= 2.0 {
			t.Errorf("%s: [4] tags/access = %f", b.Name, a4.TagsPerAccess())
		}
		a4Red += 1 - a4.TagsPerAccess()/2.0
		prev := a4.TagsPerAccess()
		for _, tech := range []suite.ID{IMAB8, IMAB16, IMAB32} {
			cur := b.I[tech].Stats.TagsPerAccess()
			if cur > prev+1e-9 {
				t.Errorf("%s: %s tags/access %f > smaller config %f", b.Name, tech, cur, prev)
			}
			prev = cur
		}
		if m16 := b.I[IMAB16].Stats; m16.TagsPerAccess() > 0.5*a4.TagsPerAccess()+1e-9 {
			t.Errorf("%s: 2x16 MAB did not halve [4]'s tag accesses (%f vs %f)",
				b.Name, m16.TagsPerAccess(), a4.TagsPerAccess())
		}
	}
	a4Red /= float64(len(r.Benchmarks))
	// Paper: intra-line sequential flow removes ~60% of tag accesses.
	if a4Red < 0.45 || a4Red > 0.80 {
		t.Errorf("[4] average tag reduction %.2f outside [0.45,0.80]", a4Red)
	}
}

// TestFigure5Shape: way-memoized D-cache power sits below the original for
// every benchmark except possibly compress (dictionary larger than the
// paper's); on average the saving lands near the paper's 35%.
func TestFigure5Shape(t *testing.T) {
	r := getSuite(t)
	rows := Figure5(r)
	get := func(bench string, tech suite.ID) float64 {
		for _, row := range rows {
			if row.Bench == bench && row.Tech == tech {
				return row.B.TotalMW()
			}
		}
		t.Fatalf("row %s/%s missing", bench, tech)
		return 0
	}
	var saving float64
	for _, b := range r.Benchmarks {
		orig, mab := get(b.Name, DOrig), get(b.Name, DMAB)
		if orig < 10 || orig > 60 {
			t.Errorf("%s: original D power %.1f mW outside the paper's scale", b.Name, orig)
		}
		s := 1 - mab/orig
		saving += s
		if b.Name != "compress" && s <= 0 {
			t.Errorf("%s: no D power saving (%.2f vs %.2f)", b.Name, mab, orig)
		}
	}
	saving /= float64(len(r.Benchmarks))
	if saving < 0.15 || saving > 0.55 {
		t.Errorf("average D saving %.2f outside [0.15,0.55] (paper: 0.35)", saving)
	}
	// Tag power must nearly vanish under the MAB.
	for _, row := range rows {
		if row.Tech == DMAB && row.Bench != "compress" {
			for _, o := range rows {
				if o.Bench == row.Bench && o.Tech == DOrig && row.B.TagMW > o.B.TagMW/2 {
					t.Errorf("%s: MAB tag power %.2f not well below original %.2f",
						row.Bench, row.B.TagMW, o.B.TagMW)
				}
			}
		}
	}
}

// TestFigure7Shape: the 2x16 MAB I-cache saves versus [4] for every
// benchmark; average near the paper's 25%.
func TestFigure7Shape(t *testing.T) {
	r := getSuite(t)
	rows := Figure7(r)
	get := func(bench string, tech suite.ID) float64 {
		for _, row := range rows {
			if row.Bench == bench && row.Tech == tech {
				return row.B.TotalMW()
			}
		}
		t.Fatalf("row %s/%s missing", bench, tech)
		return 0
	}
	var saving float64
	for _, b := range r.Benchmarks {
		a4, m16 := get(b.Name, IA4), get(b.Name, IMAB16)
		if a4 < 30 || a4 > 120 {
			t.Errorf("%s: [4] I power %.1f mW outside the paper's scale", b.Name, a4)
		}
		s := 1 - m16/a4
		if s <= 0 {
			t.Errorf("%s: I-cache MAB saved nothing (%.2f vs %.2f)", b.Name, m16, a4)
		}
		saving += s
	}
	saving /= float64(len(r.Benchmarks))
	if saving < 0.12 || saving > 0.45 {
		t.Errorf("average I saving %.2f outside [0.12,0.45] (paper: 0.25)", saving)
	}
}

// TestFigure8Shape: the headline result — total cache power drops ~30% on
// average (paper), with mpeg2enc among the best performers.
func TestFigure8Shape(t *testing.T) {
	rows := Figure8(getSuite(t))
	avg, max := AverageSaving(rows)
	if avg < 0.18 || avg > 0.45 {
		t.Errorf("average total saving %.2f outside [0.18,0.45] (paper: 0.30)", avg)
	}
	if max < avg {
		t.Errorf("max %.2f < avg %.2f", max, avg)
	}
	for _, row := range rows {
		if row.Saving <= 0 {
			t.Errorf("%s: total power regressed", row.Bench)
		}
	}
	// mpeg2enc is the paper's best case; require it above average here too.
	for _, row := range rows {
		if row.Bench == "mpeg2enc" && row.Saving < avg {
			t.Errorf("mpeg2enc saving %.2f below average %.2f", row.Saving, avg)
		}
	}
}

// TestFlowDistribution: most fetches are intra-line sequential (the basis of
// [4]'s 60% saving and the paper's flow taxonomy).
func TestFlowDistribution(t *testing.T) {
	for _, b := range getSuite(t).Benchmarks {
		s := b.I[IOrig].Stats
		var total uint64
		for _, f := range s.Flow {
			total += f
		}
		if total == 0 {
			t.Fatalf("%s: no flow classification", b.Name)
		}
		intraSeq := float64(s.Flow[trace.IntraSeq]) / float64(total)
		if intraSeq < 0.40 || intraSeq > 0.85 {
			t.Errorf("%s: intra-line sequential fraction %.2f outside [0.40,0.85]",
				b.Name, intraSeq)
		}
	}
}

// TestTables verifies the regenerated Tables 1-3 have the paper's layout.
func TestTables(t *testing.T) {
	t1, t2, t3 := Table1(), Table2(), Table3()
	if len(t1.Rows) != 2 || len(t2.Rows) != 2 || len(t3.Rows) != 4 {
		t.Fatalf("table row counts: %d %d %d", len(t1.Rows), len(t2.Rows), len(t3.Rows))
	}
	if len(t1.Columns) != 5 || len(t3.Columns) != 6 {
		t.Fatalf("table column counts")
	}
}
