package experiments

import (
	"fmt"

	"waymemo/internal/baseline"
	"waymemo/internal/cache"
	"waymemo/internal/cacti"
	"waymemo/internal/core"
	"waymemo/internal/power"
	"waymemo/internal/report"
	"waymemo/internal/stats"
	"waymemo/internal/synth"
	"waymemo/internal/trace"
	"waymemo/internal/workloads"
)

// This file holds the studies beyond the paper's published figures: the
// related-work techniques of its Section 2 run on the same streams, the
// MAB+line-buffer combination the conclusion announces, the consistency
// policy comparison motivated by the §3.3 analysis (see DESIGN.md), and a
// fetch-packet-width sensitivity study.

// AblationRow is one technique's aggregate over the seven benchmarks.
type AblationRow struct {
	Tech         string
	Tags         float64 // tag reads per access (average over benchmarks)
	Ways         float64
	PowerMW      float64 // average power
	CyclePenalty float64 // extra cycles per base cycle (performance loss)
	BufHitRate   float64
}

// AblationD compares all data-cache techniques, including the related work
// of Section 2 and the paper's announced line-buffer combination.
func AblationD() ([]AblationRow, error) {
	type entry struct {
		name  string
		sink  trace.DataSink
		stat  *stats.Counters
		model power.Model
	}
	arr := arrayEnergies
	l0geo := cache.Config{Sets: 8, Ways: 1, LineBytes: 32} // 256B filter cache
	bufE := cacti.LineBuffer(cacti.Tech130, 1, Geometry.LineBytes, Geometry.TagBits())
	sums := map[string]*AblationRow{}
	var order []string
	var totalCycles uint64

	for _, w := range workloads.All() {
		orig := baseline.NewOriginalD(Geometry)
		tp := baseline.NewTwoPhaseD(Geometry)
		lb := baseline.NewLineBufferD(Geometry)
		fc := baseline.NewFilterCacheD(l0geo, Geometry)
		sb := baseline.NewSetBufferD(Geometry)
		mab := core.NewDController(Geometry, core.DefaultD)
		mablb := core.NewDLineBufferController(Geometry, core.DefaultD)

		entries := []entry{
			{"original", orig, orig.Stats, power.Model{Array: arr}},
			{"two-phase[8]", tp, tp.Stats, power.Model{Array: arr}},
			{"line-buffer[13]", lb, lb.Stats, power.Model{Array: arr, Buffer: bufE}},
			{"filter-cache[6]", fc, fc.Stats, power.Model{Array: arr,
				Buffer: cacti.LineBuffer(cacti.Tech130, l0geo.Sets, l0geo.LineBytes, 24)}},
			{"setbuf[14]", sb, sb.Stats, DModel(DSetBuf)},
			{"mab-2x8", mab, mab.Stats, DModel(DMAB)},
			{"mab-2x8+linebuf", mablb, mablb.Stats, power.Model{Array: arr,
				MAB: synth.Characterize(2, 8), Buffer: bufE}},
		}
		sinks := make([]trace.DataSink, len(entries))
		for i := range entries {
			sinks[i] = entries[i].sink
		}
		c, err := workloads.Run(w, nil, trace.DataTee(sinks...))
		if err != nil {
			return nil, err
		}
		totalCycles += c.Cycles
		for _, e := range entries {
			row := sums[e.name]
			if row == nil {
				row = &AblationRow{Tech: e.name}
				sums[e.name] = row
				order = append(order, e.name)
			}
			row.Tags += e.stat.TagsPerAccess()
			row.Ways += e.stat.WaysPerAccess()
			row.PowerMW += power.Compute(e.stat, c.Cycles, e.model).TotalMW()
			row.CyclePenalty += float64(e.stat.ExtraCycles) / float64(c.Cycles)
			if e.stat.BufReads+e.stat.SetBufReads > 0 {
				row.BufHitRate += float64(e.stat.BufHits+e.stat.SetBufHits) /
					float64(e.stat.BufReads+e.stat.SetBufReads)
			}
		}
	}
	n := float64(len(workloads.All()))
	var rows []AblationRow
	for _, name := range order {
		r := *sums[name]
		r.Tags /= n
		r.Ways /= n
		r.PowerMW /= n
		r.CyclePenalty /= n
		r.BufHitRate /= n
		rows = append(rows, r)
	}
	return rows, nil
}

// AblationI compares the instruction-cache techniques of Section 2.
func AblationI() ([]AblationRow, error) {
	sums := map[string]*AblationRow{}
	var order []string
	for _, w := range workloads.All() {
		orig := baseline.NewOriginalI(Geometry)
		a4 := baseline.NewApproach4I(Geometry)
		wp := baseline.NewWayPredictI(Geometry)
		ma := baseline.NewMaLinksI(Geometry)
		mab := core.NewIController(Geometry, core.DefaultI)

		type entry struct {
			name  string
			sink  trace.FetchSink
			stat  *stats.Counters
			model power.Model
		}
		entries := []entry{
			{"original", orig, orig.Stats, power.Model{Array: arrayEnergies}},
			{"approach[4]", a4, a4.Stats, power.Model{Array: arrayEnergies}},
			{"way-predict[9]", wp, wp.Stats, power.Model{Array: arrayEnergies}},
			{"ma-links[11]", ma, ma.Stats, power.Model{Array: arrayEnergies,
				Buffer: cacti.LineBuffer(cacti.Tech130, 1, 1, 2)}}, // two link bits
			{"mab-2x16", mab, mab.Stats, IModel(IMAB16)},
		}
		sinks := make([]trace.FetchSink, len(entries))
		for i := range entries {
			sinks[i] = entries[i].sink
		}
		c, err := workloads.Run(w, trace.FetchTee(sinks...), nil)
		if err != nil {
			return nil, err
		}
		for _, e := range entries {
			row := sums[e.name]
			if row == nil {
				row = &AblationRow{Tech: e.name}
				sums[e.name] = row
				order = append(order, e.name)
			}
			row.Tags += e.stat.TagsPerAccess()
			row.Ways += e.stat.WaysPerAccess()
			row.PowerMW += power.Compute(e.stat, c.Cycles, e.model).TotalMW()
			row.CyclePenalty += float64(e.stat.ExtraCycles) / float64(c.Cycles)
		}
	}
	n := float64(len(workloads.All()))
	var rows []AblationRow
	for _, name := range order {
		r := *sums[name]
		r.Tags /= n
		r.Ways /= n
		r.PowerMW /= n
		r.CyclePenalty /= n
		rows = append(rows, r)
	}
	return rows, nil
}

// AblationTable renders ablation rows.
func AblationTable(title string, rows []AblationRow) report.Table {
	t := report.Table{Title: title, Columns: []string{
		"technique", "tags/access", "ways/access", "power mW", "cycle penalty", "buf hit"}}
	for _, r := range rows {
		t.AddRow(r.Tech, report.F(r.Tags, 3), report.F(r.Ways, 3),
			report.F(r.PowerMW, 2), report.Pct(r.CyclePenalty), report.Pct(r.BufHitRate))
	}
	return t
}

// ConsistencyRow summarizes one MAB consistency policy over the suite.
type ConsistencyRow struct {
	Policy     string
	Violations uint64
	MABHitRate float64
	TagsPerAcc float64
}

// AblationConsistency compares the sound evict-invalidate policy with the
// paper's pure LRU rules (including both readings of the §3.3 large-
// displacement clearing rule).
func AblationConsistency() ([]ConsistencyRow, error) {
	configs := []struct {
		name string
		cfg  core.Config
	}{
		{"evict-invalidate (sound)", core.Config{TagEntries: 2, SetEntries: 8}},
		{"paper rules, clear-all", core.Config{TagEntries: 2, SetEntries: 8,
			Consistency: core.PolicyPaper, Clear: core.ClearAll}},
		{"paper rules, clear-LRU-row", core.Config{TagEntries: 2, SetEntries: 8,
			Consistency: core.PolicyPaper, Clear: core.ClearLRURow}},
		{"paper rules, Nt=1 (provable)", core.Config{TagEntries: 1, SetEntries: 8,
			Consistency: core.PolicyPaper, Clear: core.ClearAll}},
	}
	rows := make([]ConsistencyRow, len(configs))
	for i, c := range configs {
		rows[i].Policy = c.name
	}
	for _, w := range workloads.All() {
		ctls := make([]*core.DController, len(configs))
		sinks := make([]trace.DataSink, len(configs))
		for i, c := range configs {
			ctls[i] = core.NewDController(Geometry, c.cfg)
			sinks[i] = ctls[i]
		}
		if _, err := workloads.Run(w, nil, trace.DataTee(sinks...)); err != nil {
			return nil, err
		}
		for i := range configs {
			rows[i].Violations += ctls[i].Stats.Violations
			rows[i].MABHitRate += ctls[i].Stats.MABHitRate()
			rows[i].TagsPerAcc += ctls[i].Stats.TagsPerAccess()
		}
	}
	n := float64(len(workloads.All()))
	for i := range rows {
		rows[i].MABHitRate /= n
		rows[i].TagsPerAcc /= n
	}
	return rows, nil
}

// ConsistencyTable renders the consistency ablation.
func ConsistencyTable(rows []ConsistencyRow) report.Table {
	t := report.Table{Title: "Consistency-policy ablation (D-cache, 2x8 MAB unless noted)",
		Columns: []string{"policy", "violations", "MAB hit rate", "tags/access"}}
	for _, r := range rows {
		t.AddRow(r.Policy, fmt.Sprintf("%d", r.Violations),
			report.Pct(r.MABHitRate), report.F(r.TagsPerAcc, 3))
	}
	return t
}

// PacketRow summarizes one fetch-packet width.
type PacketRow struct {
	PacketBytes uint32
	Cycles      uint64
	IntraSeq    float64 // fraction of fetches that are case 1
	A4Tags      float64 // [4] tags/access
	MABTags     float64 // 2x16 MAB tags/access
}

// AblationPacket re-runs the suite with 4-, 8- and 16-byte fetch packets:
// wider packets mean fewer I-cache accesses but a smaller intra-line
// sequential fraction per access.
func AblationPacket() ([]PacketRow, error) {
	var rows []PacketRow
	for _, pb := range []uint32{4, 8, 16} {
		var row PacketRow
		row.PacketBytes = pb
		var nb float64
		for _, w := range workloads.All() {
			a4 := baseline.NewApproach4I(Geometry)
			mab := core.NewIController(Geometry, core.DefaultI)
			c, err := workloads.RunPacket(w, trace.FetchTee(a4, mab), nil, pb)
			if err != nil {
				return nil, err
			}
			row.Cycles += c.Cycles
			var total uint64
			for _, f := range a4.Stats.Flow {
				total += f
			}
			row.IntraSeq += float64(a4.Stats.Flow[trace.IntraSeq]) / float64(total)
			row.A4Tags += a4.Stats.TagsPerAccess()
			row.MABTags += mab.Stats.TagsPerAccess()
			nb++
		}
		row.IntraSeq /= nb
		row.A4Tags /= nb
		row.MABTags /= nb
		rows = append(rows, row)
	}
	return rows, nil
}

// PacketTable renders the packet-width ablation.
func PacketTable(rows []PacketRow) report.Table {
	t := report.Table{Title: "Fetch-packet width ablation (I-cache)",
		Columns: []string{"packet bytes", "fetches", "intra-seq", "[4] tags/acc", "MAB tags/acc"}}
	for _, r := range rows {
		t.AddRow(fmt.Sprintf("%d", r.PacketBytes), fmt.Sprintf("%d", r.Cycles),
			report.Pct(r.IntraSeq), report.F(r.A4Tags, 3), report.F(r.MABTags, 3))
	}
	return t
}
