package experiments

import (
	"context"
	"fmt"

	"waymemo/internal/baseline"
	"waymemo/internal/cache"
	"waymemo/internal/cacti"
	"waymemo/internal/core"
	"waymemo/internal/power"
	"waymemo/internal/report"
	"waymemo/internal/suite"
	"waymemo/internal/synth"
	"waymemo/internal/trace"
)

// This file holds the studies beyond the paper's published figures: the
// related-work techniques of its Section 2 run on the same streams, the
// MAB+line-buffer combination the conclusion announces, the consistency
// policy comparison motivated by the §3.3 analysis (see DESIGN.md), and a
// fetch-packet-width sensitivity study.
//
// Each study expresses its one-off configurations as ad hoc suite.Technique
// values (no registration needed) and hands them to suite.Run, so the
// studies inherit the runner's parallelism and cancellation for free.

// AblationRow is one technique's aggregate over the seven benchmarks.
type AblationRow struct {
	Tech         string
	Tags         float64 // tag reads per access (average over benchmarks)
	Ways         float64
	PowerMW      float64 // average power
	CyclePenalty float64 // extra cycles per base cycle (performance loss)
	BufHitRate   float64
}

// dTech and iTech build one-off techniques for the studies below.
func dTech(id suite.ID, f suite.Factory) suite.Technique {
	return suite.Technique{ID: id, Domain: suite.Data, New: f}
}

func iTech(id suite.ID, f suite.Factory) suite.Technique {
	return suite.Technique{ID: id, Domain: suite.Fetch, New: f}
}

// lineBufferEnergies is the single-entry line buffer shared by the
// line-buffer baseline and the MAB+line-buffer combination.
func lineBufferEnergies(geo cache.Config) cacti.BufferEnergies {
	return cacti.LineBuffer(cacti.Tech130, 1, geo.LineBytes, geo.TagBits())
}

// AblationD compares all data-cache techniques, including the related work
// of Section 2 and the paper's announced line-buffer combination. Extra
// suite options (parallelism, progress, ...) pass through to the runner.
func AblationD(ctx context.Context, opts ...suite.Option) ([]AblationRow, error) {
	l0geo := cache.Config{Sets: 8, Ways: 1, LineBytes: 32} // 256B filter cache
	techs := []suite.Technique{
		suite.MustLookup(suite.Data, DOrig),
		dTech("two-phase[8]", func(geo cache.Config) suite.Instance {
			c := baseline.NewTwoPhaseD(geo)
			return suite.Instance{Data: c, Stats: c.Stats, Model: suite.ArrayModel(geo)}
		}),
		dTech("line-buffer[13]", func(geo cache.Config) suite.Instance {
			c := baseline.NewLineBufferD(geo)
			m := suite.ArrayModel(geo)
			m.Buffer = lineBufferEnergies(geo)
			return suite.Instance{Data: c, Stats: c.Stats, Model: m}
		}),
		dTech("filter-cache[6]", func(geo cache.Config) suite.Instance {
			c := baseline.NewFilterCacheD(l0geo, geo)
			m := suite.ArrayModel(geo)
			m.Buffer = cacti.LineBuffer(cacti.Tech130, l0geo.Sets, l0geo.LineBytes, 24)
			return suite.Instance{Data: c, Stats: c.Stats, Model: m}
		}),
		suite.MustLookup(suite.Data, DSetBuf),
		suite.MustLookup(suite.Data, DMAB),
		dTech("mab-2x8+linebuf", func(geo cache.Config) suite.Instance {
			c := core.NewDLineBufferController(geo, core.DefaultD)
			m := suite.ArrayModel(geo)
			m.MAB = synth.Characterize(2, 8)
			m.Buffer = lineBufferEnergies(geo)
			return suite.Instance{Data: c, Stats: c.Stats, Model: m}
		}),
	}
	runOpts := append([]suite.Option{suite.WithGeometry(Geometry)}, opts...)
	r, err := suite.Run(ctx, append(runOpts, suite.WithTechniques(techs...))...)
	if err != nil {
		return nil, err
	}
	return aggregateAblation(r, techs, true), nil
}

// AblationI compares the instruction-cache techniques of Section 2.
func AblationI(ctx context.Context, opts ...suite.Option) ([]AblationRow, error) {
	techs := []suite.Technique{
		suite.MustLookup(suite.Fetch, IOrig),
		suite.MustLookup(suite.Fetch, IA4),
		iTech("way-predict[9]", func(geo cache.Config) suite.Instance {
			c := baseline.NewWayPredictI(geo)
			return suite.Instance{Fetch: c, Stats: c.Stats, Model: suite.ArrayModel(geo)}
		}),
		iTech("ma-links[11]", func(geo cache.Config) suite.Instance {
			c := baseline.NewMaLinksI(geo)
			m := suite.ArrayModel(geo)
			m.Buffer = cacti.LineBuffer(cacti.Tech130, 1, 1, 2) // two link bits
			return suite.Instance{Fetch: c, Stats: c.Stats, Model: m}
		}),
		suite.MustLookup(suite.Fetch, IMAB16),
	}
	runOpts := append([]suite.Option{suite.WithGeometry(Geometry)}, opts...)
	r, err := suite.Run(ctx, append(runOpts, suite.WithTechniques(techs...))...)
	if err != nil {
		return nil, err
	}
	return aggregateAblation(r, techs, false), nil
}

// aggregateAblation averages per-benchmark counters into one row per
// technique, preserving the technique order.
func aggregateAblation(r *suite.Results, techs []suite.Technique, withBuf bool) []AblationRow {
	rows := make([]AblationRow, len(techs))
	for i, t := range techs {
		rows[i].Tech = string(t.ID)
	}
	for _, b := range r.Benchmarks {
		for i, t := range techs {
			tr := b.D[t.ID]
			if t.Domain == suite.Fetch {
				tr = b.I[t.ID]
			}
			s := tr.Stats
			rows[i].Tags += s.TagsPerAccess()
			rows[i].Ways += s.WaysPerAccess()
			rows[i].PowerMW += power.Compute(s, b.Cycles, tr.Model).TotalMW()
			rows[i].CyclePenalty += float64(s.ExtraCycles) / float64(b.Cycles)
			if withBuf && s.BufReads+s.SetBufReads > 0 {
				rows[i].BufHitRate += float64(s.BufHits+s.SetBufHits) /
					float64(s.BufReads+s.SetBufReads)
			}
		}
	}
	n := float64(len(r.Benchmarks))
	for i := range rows {
		rows[i].Tags /= n
		rows[i].Ways /= n
		rows[i].PowerMW /= n
		rows[i].CyclePenalty /= n
		rows[i].BufHitRate /= n
	}
	return rows
}

// AblationTable renders ablation rows.
func AblationTable(title string, rows []AblationRow) report.Table {
	t := report.Table{Title: title, Columns: []string{
		"technique", "tags/access", "ways/access", "power mW", "cycle penalty", "buf hit"}}
	for _, r := range rows {
		t.AddRow(r.Tech, report.F(r.Tags, 3), report.F(r.Ways, 3),
			report.F(r.PowerMW, 2), report.Pct(r.CyclePenalty), report.Pct(r.BufHitRate))
	}
	return t
}

// ConsistencyRow summarizes one MAB consistency policy over the suite.
type ConsistencyRow struct {
	Policy     string
	Violations uint64
	MABHitRate float64
	TagsPerAcc float64
}

// AblationConsistency compares the sound evict-invalidate policy with the
// paper's pure LRU rules (including both readings of the §3.3 large-
// displacement clearing rule).
func AblationConsistency(ctx context.Context, opts ...suite.Option) ([]ConsistencyRow, error) {
	configs := []struct {
		name string
		cfg  core.Config
	}{
		{"evict-invalidate (sound)", core.Config{TagEntries: 2, SetEntries: 8}},
		{"paper rules, clear-all", core.Config{TagEntries: 2, SetEntries: 8,
			Consistency: core.PolicyPaper, Clear: core.ClearAll}},
		{"paper rules, clear-LRU-row", core.Config{TagEntries: 2, SetEntries: 8,
			Consistency: core.PolicyPaper, Clear: core.ClearLRURow}},
		{"paper rules, Nt=1 (provable)", core.Config{TagEntries: 1, SetEntries: 8,
			Consistency: core.PolicyPaper, Clear: core.ClearAll}},
	}
	techs := make([]suite.Technique, len(configs))
	for i, c := range configs {
		cfg := c.cfg
		techs[i] = dTech(suite.ID(c.name), func(geo cache.Config) suite.Instance {
			ctl := core.NewDController(geo, cfg)
			return suite.Instance{Data: ctl, Stats: ctl.Stats}
		})
	}
	runOpts := append([]suite.Option{suite.WithGeometry(Geometry)}, opts...)
	r, err := suite.Run(ctx, append(runOpts, suite.WithTechniques(techs...))...)
	if err != nil {
		return nil, err
	}
	rows := make([]ConsistencyRow, len(configs))
	for i, c := range configs {
		rows[i].Policy = c.name
	}
	for _, b := range r.Benchmarks {
		for i := range techs {
			s := b.D[techs[i].ID].Stats
			rows[i].Violations += s.Violations
			rows[i].MABHitRate += s.MABHitRate()
			rows[i].TagsPerAcc += s.TagsPerAccess()
		}
	}
	n := float64(len(r.Benchmarks))
	for i := range rows {
		rows[i].MABHitRate /= n
		rows[i].TagsPerAcc /= n
	}
	return rows, nil
}

// ConsistencyTable renders the consistency ablation.
func ConsistencyTable(rows []ConsistencyRow) report.Table {
	t := report.Table{Title: "Consistency-policy ablation (D-cache, 2x8 MAB unless noted)",
		Columns: []string{"policy", "violations", "MAB hit rate", "tags/access"}}
	for _, r := range rows {
		t.AddRow(r.Policy, fmt.Sprintf("%d", r.Violations),
			report.Pct(r.MABHitRate), report.F(r.TagsPerAcc, 3))
	}
	return t
}

// PacketRow summarizes one fetch-packet width.
type PacketRow struct {
	PacketBytes uint32
	Cycles      uint64
	IntraSeq    float64 // fraction of fetches that are case 1
	A4Tags      float64 // [4] tags/access
	MABTags     float64 // 2x16 MAB tags/access
}

// AblationPacket re-runs the suite with 4-, 8- and 16-byte fetch packets:
// wider packets mean fewer I-cache accesses but a smaller intra-line
// sequential fraction per access.
func AblationPacket(ctx context.Context, opts ...suite.Option) ([]PacketRow, error) {
	techs := []suite.Technique{
		suite.MustLookup(suite.Fetch, IA4),
		suite.MustLookup(suite.Fetch, IMAB16),
	}
	var rows []PacketRow
	for _, pb := range []uint32{4, 8, 16} {
		runOpts := append([]suite.Option{suite.WithGeometry(Geometry)}, opts...)
		r, err := suite.Run(ctx, append(runOpts,
			suite.WithTechniques(techs...), suite.WithPacketBytes(pb))...)
		if err != nil {
			return nil, err
		}
		row := PacketRow{PacketBytes: pb}
		var nb float64
		for _, b := range r.Benchmarks {
			a4, mab := b.I[IA4].Stats, b.I[IMAB16].Stats
			row.Cycles += b.Cycles
			var total uint64
			for _, f := range a4.Flow {
				total += f
			}
			row.IntraSeq += float64(a4.Flow[trace.IntraSeq]) / float64(total)
			row.A4Tags += a4.TagsPerAccess()
			row.MABTags += mab.TagsPerAccess()
			nb++
		}
		row.IntraSeq /= nb
		row.A4Tags /= nb
		row.MABTags /= nb
		rows = append(rows, row)
	}
	return rows, nil
}

// PacketTable renders the packet-width ablation.
func PacketTable(rows []PacketRow) report.Table {
	t := report.Table{Title: "Fetch-packet width ablation (I-cache)",
		Columns: []string{"packet bytes", "fetches", "intra-seq", "[4] tags/acc", "MAB tags/acc"}}
	for _, r := range rows {
		t.AddRow(fmt.Sprintf("%d", r.PacketBytes), fmt.Sprintf("%d", r.Cycles),
			report.Pct(r.IntraSeq), report.F(r.A4Tags, 3), report.F(r.MABTags, 3))
	}
	return t
}
