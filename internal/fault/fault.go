// Package fault is the deterministic, seedable fault-injection layer the
// serve daemon's robustness contract is enforced with: a parsed Spec names
// probabilistic faults at named sites (short reads and writes, torn writes,
// fsync/rename failures, ENOSPC, latency spikes, connection drops), an
// Injector draws them from a seeded PRNG, and the FS file-op shim plus the
// HTTP Middleware apply them to real store/trace I/O and real requests.
//
// The injection sites form a small hierarchy, matched by rule prefix:
//
//	io.result.read     result-store entry reads (serve.Store / explore.DirCache)
//	io.result.write    result-store atomic writes
//	io.result.delete   result-store evictions
//	io.trace.read      trace-spill sidecar + trace-file reads (suite.TraceCache)
//	io.trace.write     trace-spill atomic writes
//	io.journal.read    sweep-journal boot replay read (serve)
//	io.journal.append  sweep-journal fsynced record appends
//	io.journal.compact sweep-journal atomic compaction rewrites
//	http               every API request (latency, drop); /healthz and /readyz
//	                   are exempt so probes always tell the truth
//
// so a rule site of "io" covers every file operation, "io.trace" both trace
// sites, "io.journal" the whole journal, and "*" everything.
//
// The layer is opt-in and free when off: a nil *Injector disables every
// check (the FS zero value is a direct passthrough to the os package), so
// production daemons pay one nil comparison per file operation.
//
// The contract it exists to test, inherited from the paper's way-memoization
// claim (results never change, only cost): under any injected fault the
// daemon may be slower or return an error, but every result it does complete
// must be bit-identical to a fault-free run.
package fault

import (
	"fmt"
	"math/rand/v2"
	"sort"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"
)

// Kind enumerates the injectable fault kinds.
type Kind uint8

const (
	// KindErr fails the operation with a generic injected I/O error.
	KindErr Kind = iota + 1
	// KindENOSPC fails a write with a wrapped syscall.ENOSPC.
	KindENOSPC
	// KindShortRead silently returns a truncated prefix of the file — a
	// torn read. CRC-validated formats must reject it and degrade to a
	// miss, never to wrong results.
	KindShortRead
	// KindShortWrite simulates a writer killed mid-write: the atomic-write
	// temp file is truncated and LEFT BEHIND, and the operation errors.
	// Startup recovery must sweep the leavings.
	KindShortWrite
	// KindTornWrite simulates a crash after rename but before the data hit
	// the platter (no fsync): the destination file holds only a prefix and
	// the operation reports success. The nastiest case — nothing errors
	// until the file is read back.
	KindTornWrite
	// KindRename fails the atomic-write rename, leaving the fully-written
	// temp file behind.
	KindRename
	// KindFsync fails the pre-rename fsync; the write is aborted.
	KindFsync
	// KindLatency delays the operation by a uniform draw in (0, delay].
	KindLatency
	// KindDrop aborts an HTTP request's connection mid-flight.
	KindDrop
)

var kindNames = map[Kind]string{
	KindErr:        "err",
	KindENOSPC:     "enospc",
	KindShortRead:  "shortread",
	KindShortWrite: "shortwrite",
	KindTornWrite:  "tornwrite",
	KindRename:     "rename",
	KindFsync:      "fsync",
	KindLatency:    "latency",
	KindDrop:       "drop",
}

// String returns the spec-grammar name of the kind.
func (k Kind) String() string {
	if n, ok := kindNames[k]; ok {
		return n
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

func kindByName(s string) (Kind, bool) {
	for k, n := range kindNames {
		if n == s {
			return k, true
		}
	}
	return 0, false
}

// Rule is one injection clause: at sites matching Site, inject Kind with
// probability Prob per eligible operation. Delay parameterizes KindLatency.
type Rule struct {
	Site  string
	Kind  Kind
	Prob  float64
	Delay time.Duration
}

// matches reports whether the rule covers site: exact, "*", or a
// dot-hierarchy prefix ("io" covers "io.trace.write").
func (r Rule) matches(site string) bool {
	return r.Site == "*" || r.Site == site || strings.HasPrefix(site, r.Site+".")
}

// Spec is a parsed fault specification: a PRNG seed plus an ordered rule
// list. The grammar, clauses separated by ';' or ',':
//
//	seed=<uint>
//	<site>:<kind>:<prob>           e.g. io:err:0.05  http:drop:0.01
//	<site>:latency:<prob>:<delay>  e.g. io:latency:0.1:2ms
//
// Sites are matched hierarchically (see the package comment's table); kinds
// are err, enospc, shortread, shortwrite, tornwrite, rename, fsync, latency
// and drop. Rules are evaluated in spec order per operation; the first
// non-latency hit wins, latency hits accumulate with the rest.
type Spec struct {
	Seed  uint64
	Rules []Rule
}

// ParseSpec parses the spec grammar above. An empty string is a valid spec
// with no rules (an injector over it never fires).
func ParseSpec(s string) (*Spec, error) {
	sp := &Spec{Seed: 1}
	for _, clause := range strings.FieldsFunc(s, func(r rune) bool { return r == ';' || r == ',' }) {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		if v, ok := strings.CutPrefix(clause, "seed="); ok {
			seed, err := strconv.ParseUint(v, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("fault: bad seed %q", v)
			}
			sp.Seed = seed
			continue
		}
		parts := strings.Split(clause, ":")
		if len(parts) < 3 || len(parts) > 4 {
			return nil, fmt.Errorf("fault: bad clause %q (want site:kind:prob[:delay])", clause)
		}
		kind, ok := kindByName(parts[1])
		if !ok {
			return nil, fmt.Errorf("fault: unknown kind %q in %q", parts[1], clause)
		}
		prob, err := strconv.ParseFloat(parts[2], 64)
		if err != nil || prob < 0 || prob > 1 {
			return nil, fmt.Errorf("fault: bad probability %q in %q (want [0,1])", parts[2], clause)
		}
		r := Rule{Site: parts[0], Kind: kind, Prob: prob}
		if len(parts) == 4 {
			if kind != KindLatency {
				return nil, fmt.Errorf("fault: delay parameter on non-latency clause %q", clause)
			}
			d, err := time.ParseDuration(parts[3])
			if err != nil || d <= 0 {
				return nil, fmt.Errorf("fault: bad delay %q in %q", parts[3], clause)
			}
			r.Delay = d
		} else if kind == KindLatency {
			return nil, fmt.Errorf("fault: latency clause %q needs a delay (site:latency:prob:5ms)", clause)
		}
		sp.Rules = append(sp.Rules, r)
	}
	return sp, nil
}

// String renders the spec back in its own grammar.
func (sp *Spec) String() string {
	parts := []string{fmt.Sprintf("seed=%d", sp.Seed)}
	for _, r := range sp.Rules {
		c := fmt.Sprintf("%s:%s:%g", r.Site, r.Kind, r.Prob)
		if r.Kind == KindLatency {
			c += ":" + r.Delay.String()
		}
		parts = append(parts, c)
	}
	return strings.Join(parts, ";")
}

// Error is an injected failure. errors.Is(err, ErrInjected) identifies any
// injected error; an injected ENOSPC additionally matches syscall.ENOSPC so
// code that special-cases disk-full sees the real sentinel.
type Error struct {
	Site string
	Kind Kind
}

func (e *Error) Error() string {
	return fmt.Sprintf("fault: injected %s at %s", e.Kind, e.Site)
}

// Is makes injected errors match ErrInjected, and injected ENOSPC match
// syscall.ENOSPC.
func (e *Error) Is(target error) bool {
	if target == ErrInjected {
		return true
	}
	return e.Kind == KindENOSPC && target == syscall.ENOSPC
}

// ErrInjected is the identity of every injected error, for errors.Is.
var ErrInjected = &sentinelError{}

type sentinelError struct{}

func (*sentinelError) Error() string { return "fault: injected" }

// Injector draws faults from a Spec with a seeded PRNG and counts what it
// injects. A nil *Injector is valid and never injects, which is how the
// whole layer costs nothing when disabled. Methods are safe for concurrent
// use; with a fixed seed the draw sequence is deterministic for a fixed
// operation order (concurrent operations serialize on an internal lock, so
// cross-goroutine interleaving is scheduler-dependent — tests that need
// exact faults use probability-1 rules).
type Injector struct {
	spec *Spec

	mu     sync.Mutex
	rng    *rand.Rand
	counts map[string]int64
}

// New builds an injector over the spec. A nil or empty spec yields a nil
// injector (fully disabled).
func New(sp *Spec) *Injector {
	if sp == nil || len(sp.Rules) == 0 {
		return nil
	}
	return &Injector{
		spec:   sp,
		rng:    rand.New(rand.NewPCG(sp.Seed, sp.Seed^0x9e3779b97f4a7c15)),
		counts: map[string]int64{},
	}
}

// NewFromString parses a spec string and builds its injector; an empty
// string returns (nil, nil) — injection off.
func NewFromString(s string) (*Injector, error) {
	sp, err := ParseSpec(s)
	if err != nil {
		return nil, err
	}
	return New(sp), nil
}

// roll evaluates the rules for one operation at site, restricted to the
// kinds the operation can express. Latency hits accumulate into delay and
// evaluation continues; the first other hit becomes the injected kind and
// evaluation stops. kind 0 means no fault.
func (in *Injector) roll(site string, eligible ...Kind) (kind Kind, delay time.Duration) {
	if in == nil {
		return 0, 0
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	for _, r := range in.spec.Rules {
		if !r.matches(site) || !kindIn(r.Kind, eligible) {
			continue
		}
		if in.rng.Float64() >= r.Prob {
			continue
		}
		in.counts[site+":"+r.Kind.String()]++
		if r.Kind == KindLatency {
			// Uniform in (0, Delay] so spikes vary in size.
			delay += time.Duration(in.rng.Int64N(int64(r.Delay))) + 1
			continue
		}
		return r.Kind, delay
	}
	return 0, delay
}

func kindIn(k Kind, kinds []Kind) bool {
	for _, e := range kinds {
		if e == k {
			return true
		}
	}
	return false
}

// Counts snapshots how many faults were injected, keyed "site:kind" —
// surfaced by /v1/stats so a chaos run is observable.
func (in *Injector) Counts() map[string]int64 {
	if in == nil {
		return nil
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	out := make(map[string]int64, len(in.counts))
	for k, v := range in.counts {
		out[k] = v
	}
	return out
}

// Total is the total number of injected faults (latency spikes included).
func (in *Injector) Total() int64 {
	if in == nil {
		return 0
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	var t int64
	for _, v := range in.counts {
		t += v
	}
	return t
}

// Describe renders the injector's spec and counts for logs.
func (in *Injector) Describe() string {
	if in == nil {
		return "off"
	}
	counts := in.Counts()
	keys := make([]string, 0, len(counts))
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	fmt.Fprintf(&b, "spec %q", in.spec.String())
	for _, k := range keys {
		fmt.Fprintf(&b, ", %s=%d", k, counts[k])
	}
	return b.String()
}
