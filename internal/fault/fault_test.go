package fault

import (
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"syscall"
	"testing"
)

func TestParseSpecRoundTrip(t *testing.T) {
	const in = "seed=42;io:err:0.05;io.trace:latency:0.1:2ms;http:drop:0.01"
	sp, err := ParseSpec(in)
	if err != nil {
		t.Fatal(err)
	}
	if sp.Seed != 42 || len(sp.Rules) != 3 {
		t.Fatalf("parsed %+v, want seed 42 and 3 rules", sp)
	}
	if sp.Rules[1].Kind != KindLatency || sp.Rules[1].Delay.Milliseconds() != 2 {
		t.Fatalf("latency rule = %+v", sp.Rules[1])
	}
	// String renders back in the grammar; re-parsing it must yield the
	// same spec.
	re, err := ParseSpec(sp.String())
	if err != nil {
		t.Fatalf("re-parse %q: %v", sp.String(), err)
	}
	if re.Seed != sp.Seed || len(re.Rules) != len(sp.Rules) {
		t.Fatalf("round trip: %q -> %q", in, re.String())
	}
	for i := range sp.Rules {
		if re.Rules[i] != sp.Rules[i] {
			t.Errorf("rule %d: %+v != %+v", i, re.Rules[i], sp.Rules[i])
		}
	}
}

func TestParseSpecErrors(t *testing.T) {
	for _, bad := range []string{
		"seed=x",                 // unparsable seed
		"io:err",                 // too few fields
		"io:err:0.1:2ms:extra",   // too many fields
		"io:frobnicate:0.5",      // unknown kind
		"io:err:1.5",             // probability out of range
		"io:err:nope",            // unparsable probability
		"io:err:0.1:5ms",         // delay on a non-latency clause
		"io:latency:0.1",         // latency without a delay
		"io:latency:0.1:bananas", // unparsable delay
		"io:latency:0.1:-5ms",    // non-positive delay
	} {
		if _, err := ParseSpec(bad); err == nil {
			t.Errorf("ParseSpec(%q) accepted, want error", bad)
		}
	}
	// Empty and separators-only specs are valid no-rule specs, and New
	// collapses them to a nil (disabled) injector.
	for _, ok := range []string{"", " ; , "} {
		sp, err := ParseSpec(ok)
		if err != nil || len(sp.Rules) != 0 {
			t.Errorf("ParseSpec(%q) = %+v, %v; want empty spec", ok, sp, err)
		}
		if New(sp) != nil {
			t.Errorf("New over empty spec %q not nil", ok)
		}
	}
}

func TestRuleSiteHierarchy(t *testing.T) {
	cases := []struct {
		rule, site string
		want       bool
	}{
		{"*", SiteResultRead, true},
		{"io", SiteTraceWrite, true},
		{"io.trace", SiteTraceRead, true},
		{"io.trace", SiteResultRead, false},
		{SiteResultWrite, SiteResultWrite, true},
		{"io.result", SiteHTTP, false},
		{"http", SiteHTTP, true},
		{"htt", SiteHTTP, false}, // prefix matching is per dot segment
	}
	for _, c := range cases {
		if got := (Rule{Site: c.rule}).matches(c.site); got != c.want {
			t.Errorf("rule %q matches %q = %v, want %v", c.rule, c.site, got, c.want)
		}
	}
}

// TestInjectorDeterminism: two injectors over the same spec draw the same
// fault sequence for the same operation sequence — the property that makes a
// chaos run reproducible from its seed.
func TestInjectorDeterminism(t *testing.T) {
	const spec = "seed=99;io:err:0.3;io:latency:0.2:1ms"
	draw := func() []Kind {
		in, err := NewFromString(spec)
		if err != nil {
			t.Fatal(err)
		}
		out := make([]Kind, 500)
		for i := range out {
			out[i], _ = in.roll(SiteResultRead, KindLatency, KindErr)
		}
		return out
	}
	a, b := draw(), draw()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("draw %d diverged: %v vs %v", i, a[i], b[i])
		}
	}
	// And a different seed must not reproduce the same sequence.
	in, err := NewFromString("seed=100;io:err:0.3;io:latency:0.2:1ms")
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range a {
		if k, _ := in.roll(SiteResultRead, KindLatency, KindErr); k != a[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("seeds 99 and 100 drew identical 500-fault sequences")
	}
}

// TestNilInjectorOff: the disabled layer is inert — nil injectors never
// fire, count nothing, and the FS zero value is an os passthrough.
func TestNilInjectorOff(t *testing.T) {
	var in *Injector
	if k, d := in.roll(SiteResultRead, KindErr); k != 0 || d != 0 {
		t.Errorf("nil injector rolled (%v, %v)", k, d)
	}
	if in.Counts() != nil || in.Total() != 0 || in.Describe() != "off" {
		t.Errorf("nil injector not inert: %v %d %q", in.Counts(), in.Total(), in.Describe())
	}
	inj, err := NewFromString("")
	if err != nil || inj != nil {
		t.Fatalf("NewFromString(\"\") = %v, %v; want nil, nil", inj, err)
	}

	var fs FS
	p := filepath.Join(t.TempDir(), "f")
	if err := fs.WriteFileAtomic(SiteResultWrite, p, func(w io.Writer) error {
		_, err := w.Write([]byte("hello"))
		return err
	}); err != nil {
		t.Fatal(err)
	}
	b, err := fs.ReadFile(SiteResultRead, p)
	if err != nil || string(b) != "hello" {
		t.Fatalf("zero-FS read back %q, %v", b, err)
	}
	if err := fs.Remove(SiteResultDelete, p); err != nil {
		t.Fatal(err)
	}
}

func mustInjector(t *testing.T, spec string) *Injector {
	t.Helper()
	in, err := NewFromString(spec)
	if err != nil {
		t.Fatal(err)
	}
	return in
}

func TestFSReadFaults(t *testing.T) {
	dir := t.TempDir()
	p := filepath.Join(dir, "f")
	payload := []byte("0123456789abcdef")
	if err := os.WriteFile(p, payload, 0o644); err != nil {
		t.Fatal(err)
	}

	errFS := FS{Inj: mustInjector(t, "io.result.read:err:1")}
	if _, err := errFS.ReadFile(SiteResultRead, p); !errors.Is(err, ErrInjected) {
		t.Errorf("ReadFile under err:1 = %v, want ErrInjected", err)
	}
	if _, err := errFS.Open(SiteResultRead, p); !errors.Is(err, ErrInjected) {
		t.Errorf("Open under err:1 = %v, want ErrInjected", err)
	}
	if err := errFS.Remove(SiteResultRead, p); !errors.Is(err, ErrInjected) {
		t.Errorf("Remove under err:1 = %v, want ErrInjected", err)
	}
	// The fault site must actually match: a trace-site rule leaves result
	// reads alone.
	other := FS{Inj: mustInjector(t, "io.trace:err:1")}
	if b, err := other.ReadFile(SiteResultRead, p); err != nil || len(b) != len(payload) {
		t.Errorf("mis-sited rule fired: %q, %v", b, err)
	}

	shortFS := FS{Inj: mustInjector(t, "io:shortread:1")}
	b, err := shortFS.ReadFile(SiteResultRead, p)
	if err != nil || len(b) != len(payload)/2 {
		t.Errorf("short ReadFile = %d bytes, %v; want %d silently", len(b), err, len(payload)/2)
	}
	f, err := shortFS.Open(SiteTraceRead, p)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	b, err = io.ReadAll(f)
	if err != nil || len(b) != len(payload)/2 {
		t.Errorf("short Open read %d bytes, %v; want %d then EOF", len(b), err, len(payload)/2)
	}

	if total := shortFS.Inj.Total(); total != 2 {
		t.Errorf("injector counted %d faults, want 2", total)
	}
	if c := shortFS.Inj.Counts(); c[SiteResultRead+":shortread"] != 1 || c[SiteTraceRead+":shortread"] != 1 {
		t.Errorf("counts = %v", c)
	}
}

// TestWriteFileAtomicKinds tears the atomic write apart at each seam and
// checks exactly what each crash mode leaves on disk.
func TestWriteFileAtomicKinds(t *testing.T) {
	const payload = "0123456789abcdef"
	write := func(fs FS, p string) error {
		return fs.WriteFileAtomic(SiteResultWrite, p, func(w io.Writer) error {
			_, err := io.WriteString(w, payload)
			return err
		})
	}
	// tempsIn lists leftover atomic-write temp files in dir.
	tempsIn := func(dir string) []string {
		des, _ := os.ReadDir(dir)
		var out []string
		for _, de := range des {
			if de.Name() != "dest" {
				out = append(out, de.Name())
			}
		}
		return out
	}

	cases := []struct {
		kind      string
		wantErr   bool  // the write reports failure
		wantDest  int   // destination size afterwards (-1 = absent)
		wantTemps bool  // a temp file is left for recovery to sweep
		is        error // extra errors.Is identity, if any
	}{
		{kind: "err", wantErr: true, wantDest: -1},
		{kind: "enospc", wantErr: true, wantDest: -1, is: syscall.ENOSPC},
		{kind: "shortwrite", wantErr: true, wantDest: -1, wantTemps: true},
		{kind: "tornwrite", wantErr: false, wantDest: len(payload) / 2},
		{kind: "fsync", wantErr: true, wantDest: -1},
		{kind: "rename", wantErr: true, wantDest: -1, wantTemps: true},
	}
	for _, c := range cases {
		t.Run(c.kind, func(t *testing.T) {
			dir := t.TempDir()
			p := filepath.Join(dir, "dest")
			fs := FS{Inj: mustInjector(t, "io.result.write:"+c.kind+":1")}
			err := write(fs, p)
			if c.wantErr {
				if !errors.Is(err, ErrInjected) {
					t.Fatalf("write = %v, want ErrInjected", err)
				}
				if c.is != nil && !errors.Is(err, c.is) {
					t.Errorf("write = %v, want errors.Is %v", err, c.is)
				}
			} else if err != nil {
				t.Fatalf("write = %v, want silent success", err)
			}
			st, statErr := os.Stat(p)
			if c.wantDest < 0 {
				if statErr == nil {
					t.Errorf("destination exists (%d bytes), want absent", st.Size())
				}
			} else if statErr != nil || st.Size() != int64(c.wantDest) {
				t.Errorf("destination = %v, %v; want %d bytes", st, statErr, c.wantDest)
			}
			if temps := tempsIn(dir); (len(temps) > 0) != c.wantTemps {
				t.Errorf("leftover temps %v, wantTemps=%v", temps, c.wantTemps)
			}
			// The fault consumed its probability-1 roll; a clean FS write
			// over the same path must still succeed and read back whole.
			if err := write(FS{}, p); err != nil {
				t.Fatal(err)
			}
			if b, err := os.ReadFile(p); err != nil || string(b) != payload {
				t.Errorf("clean rewrite read back %q, %v", b, err)
			}
		})
	}
}

// TestMiddlewareDropAndProbes: injected drops abort the connection (the
// client sees a transport error, not a status), but the probes are exempt —
// a chaos-mode daemon still reports liveness and readiness truthfully.
func TestMiddlewareDropAndProbes(t *testing.T) {
	inj := mustInjector(t, "http:drop:1")
	next := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("ok"))
	})
	ts := httptest.NewServer(Middleware(inj, next))
	defer ts.Close()

	if _, err := http.Get(ts.URL + "/v1/stats"); err == nil {
		t.Error("drop:1 request completed, want transport error")
	}
	for _, probe := range []string{"/healthz", "/readyz"} {
		resp, err := http.Get(ts.URL + probe)
		if err != nil {
			t.Fatalf("GET %s under drop:1: %v", probe, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("GET %s = %d, want 200", probe, resp.StatusCode)
		}
	}
	if c := inj.Counts(); c["http:drop"] != 1 {
		t.Errorf("drop count = %v, want exactly the one API request", c)
	}

	// Disabled middleware is the handler itself, not a wrapper.
	mux := http.NewServeMux()
	if got := Middleware(nil, mux); got != http.Handler(mux) {
		t.Errorf("nil-injector middleware wrapped the handler: %T", got)
	}
}
