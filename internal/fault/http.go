package fault

import (
	"net/http"
)

// Middleware wraps next with injected request latency and connection drops
// at the "http" site. A drop aborts the connection mid-request via
// http.ErrAbortHandler, so the client sees a reset/EOF rather than a tidy
// error body — exactly what a crashed proxy or flaky network produces.
//
// The liveness and readiness probes (/healthz, /readyz) are exempt:
// orchestrators probing a chaos-mode daemon must still see the truth.
//
// A nil injector returns next unchanged, so the disabled path has no
// wrapper at all.
func Middleware(inj *Injector, next http.Handler) http.Handler {
	if inj == nil {
		return next
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/healthz" || r.URL.Path == "/readyz" {
			next.ServeHTTP(w, r)
			return
		}
		kind, delay := inj.roll(SiteHTTP, KindLatency, KindDrop)
		sleep(delay)
		if kind == KindDrop {
			panic(http.ErrAbortHandler)
		}
		next.ServeHTTP(w, r)
	})
}
