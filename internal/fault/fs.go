package fault

import (
	"io"
	"os"
	"path/filepath"
	"time"
)

// Injection sites. The file sites are owned by the store layers that pass
// them to FS calls; they are declared here so spec writers have one table
// to target and docs one place to point at.
const (
	SiteResultRead     = "io.result.read"
	SiteResultWrite    = "io.result.write"
	SiteResultDelete   = "io.result.delete"
	SiteTraceRead      = "io.trace.read"
	SiteTraceWrite     = "io.trace.write"
	SiteJournalRead    = "io.journal.read"
	SiteJournalAppend  = "io.journal.append"
	SiteJournalCompact = "io.journal.compact"
	SiteHTTP           = "http"
)

// FS is the file-op shim the store and trace-spill layers route their I/O
// through. The zero value (nil Inj) is a direct passthrough to the os
// package — one nil check per operation, nothing else — so production
// configurations pay nothing for the fault layer existing.
//
// Beyond injection, FS owns the repo's one atomic-write implementation
// (WriteFileAtomic: same-dir temp, fsync, rename), so every store write is
// crash-safe by construction and the fault layer can tear it apart at each
// seam.
type FS struct {
	Inj *Injector
}

// ReadFile reads name, optionally delayed, failed, or silently truncated
// (KindShortRead — a torn read; checksummed formats must reject it).
func (f FS) ReadFile(site, name string) ([]byte, error) {
	if f.Inj != nil {
		kind, delay := f.Inj.roll(site, KindLatency, KindErr, KindShortRead)
		sleep(delay)
		switch kind {
		case KindErr:
			return nil, &Error{Site: site, Kind: kind}
		case KindShortRead:
			b, err := os.ReadFile(name)
			if err != nil {
				return nil, err
			}
			return b[:len(b)/2], nil
		}
	}
	return os.ReadFile(name)
}

// Open opens name for reading. Under KindShortRead the returned reader ends
// halfway through the file, as a reader racing a crashed writer would.
func (f FS) Open(site, name string) (io.ReadCloser, error) {
	if f.Inj != nil {
		kind, delay := f.Inj.roll(site, KindLatency, KindErr, KindShortRead)
		sleep(delay)
		switch kind {
		case KindErr:
			return nil, &Error{Site: site, Kind: kind}
		case KindShortRead:
			fl, err := os.Open(name)
			if err != nil {
				return nil, err
			}
			st, err := fl.Stat()
			if err != nil {
				fl.Close()
				return nil, err
			}
			return &shortReader{Reader: io.LimitReader(fl, st.Size()/2), c: fl}, nil
		}
	}
	return os.Open(name)
}

type shortReader struct {
	io.Reader
	c io.Closer
}

func (s *shortReader) Close() error { return s.c.Close() }

// Remove deletes name (optionally delayed or failed).
func (f FS) Remove(site, name string) error {
	if f.Inj != nil {
		kind, delay := f.Inj.roll(site, KindLatency, KindErr)
		sleep(delay)
		if kind == KindErr {
			return &Error{Site: site, Kind: kind}
		}
	}
	return os.Remove(name)
}

// WriteFileAtomic writes path crash-safely: fill streams into a same-dir
// temp file, which is fsynced, closed and renamed over path, so a reader
// never observes a torn destination and a killed writer leaves only a temp
// file for startup recovery to sweep.
//
// The injectable seams mirror the real failure modes: KindErr/KindENOSPC
// fail up front; KindShortWrite truncates the temp, leaves it behind and
// errors (writer killed mid-write); KindFsync fails the sync;
// KindRename fails the final rename, leaving the full temp behind; and
// KindTornWrite truncates, skips the fsync and renames anyway, reporting
// success — the lying-disk case a startup sweep must catch later.
func (f FS) WriteFileAtomic(site, path string, fill func(io.Writer) error) error {
	var kind Kind
	if f.Inj != nil {
		var delay time.Duration
		kind, delay = f.Inj.roll(site, KindLatency, KindErr, KindENOSPC,
			KindShortWrite, KindTornWrite, KindFsync, KindRename)
		sleep(delay)
		if kind == KindErr || kind == KindENOSPC {
			return &Error{Site: site, Kind: kind}
		}
	}
	tf, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	tmp := tf.Name()
	if err := fill(tf); err != nil {
		tf.Close()
		os.Remove(tmp)
		return err
	}
	switch kind {
	case KindShortWrite:
		truncateHalf(tf)
		tf.Close()
		return &Error{Site: site, Kind: kind}
	case KindTornWrite:
		truncateHalf(tf)
		tf.Close()
		if err := os.Rename(tmp, path); err != nil {
			os.Remove(tmp)
			return err
		}
		return nil
	case KindFsync:
		tf.Close()
		os.Remove(tmp)
		return &Error{Site: site, Kind: kind}
	}
	if err := tf.Sync(); err != nil {
		tf.Close()
		os.Remove(tmp)
		return err
	}
	if err := tf.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if kind == KindRename {
		return &Error{Site: site, Kind: kind}
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}

// AppendSync appends b to the already-open file and fsyncs it — the
// append discipline of the sweep journal, where each record must be on the
// platter before the operation it logs is acknowledged.
//
// The injectable seams mirror an appender's real failure modes:
// KindErr/KindENOSPC fail before writing a byte; KindShortWrite writes half
// the record and errors (appender killed mid-write); KindTornWrite writes
// half and reports success — the lying-disk case the journal's CRC framing
// must catch at replay; KindFsync writes everything but fails the sync, so
// the bytes may or may not be durable and the caller must treat the record
// as unjournaled.
func (f FS) AppendSync(site string, file *os.File, b []byte) error {
	if f.Inj != nil {
		kind, delay := f.Inj.roll(site, KindLatency, KindErr, KindENOSPC,
			KindShortWrite, KindTornWrite, KindFsync)
		sleep(delay)
		switch kind {
		case KindErr, KindENOSPC:
			return &Error{Site: site, Kind: kind}
		case KindShortWrite:
			file.Write(b[:len(b)/2])
			return &Error{Site: site, Kind: kind}
		case KindTornWrite:
			_, err := file.Write(b[:len(b)/2])
			return err
		case KindFsync:
			if _, err := file.Write(b); err != nil {
				return err
			}
			return &Error{Site: site, Kind: kind}
		}
	}
	if _, err := file.Write(b); err != nil {
		return err
	}
	return file.Sync()
}

// truncateHalf cuts the file to half its current size — the canonical torn
// write.
func truncateHalf(f *os.File) {
	if st, err := f.Stat(); err == nil {
		f.Truncate(st.Size() / 2)
	}
}

func sleep(d time.Duration) {
	if d > 0 {
		time.Sleep(d)
	}
}
