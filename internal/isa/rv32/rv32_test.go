package rv32

import "testing"

// Golden words cross-checked against the RISC-V spec's encoding tables: the
// decoder must produce exactly these fields, and Encode must reproduce the
// word bit-exactly.
func TestDecodeGolden(t *testing.T) {
	cases := []struct {
		word uint32
		name string
		want Instr
	}{
		{0x00100093, "addi ra, zero, 1", Instr{Op: OpOpImm, Rd: 1, Imm: 1}},
		{0xFFF00513, "addi a0, zero, -1", Instr{Op: OpOpImm, Rd: 10, Imm: -1}},
		{0x003100B3, "add ra, sp, gp", Instr{Op: OpOp, Rd: 1, Rs1: 2, Rs2: 3}},
		{0x40B50533, "sub a0, a0, a1", Instr{Op: OpOp, Rd: 10, Rs1: 10, Rs2: 11, F7: F7Sub}},
		{0x02C58533, "mul a0, a1, a2", Instr{Op: OpOp, Rd: 10, Rs1: 11, Rs2: 12, F3: F3MUL, F7: F7Mul}},
		{0x00451513, "slli a0, a0, 4", Instr{Op: OpOpImm, Rd: 10, Rs1: 10, F3: F3SLL, Imm: 4}},
		{0x40455513, "srai a0, a0, 4", Instr{Op: OpOpImm, Rd: 10, Rs1: 10, F3: F3SR, F7: F7Sub, Imm: 4}},
		{0x00412503, "lw a0, 4(sp)", Instr{Op: OpLoad, Rd: 10, Rs1: 2, F3: F3LW, Imm: 4}},
		{0x00A12423, "sw a0, 8(sp)", Instr{Op: OpStore, Rs1: 2, Rs2: 10, F3: 2, Imm: 8}},
		{0x00B50463, "beq a0, a1, +8", Instr{Op: OpBranch, Rs1: 10, Rs2: 11, F3: F3BEQ, Imm: 8}},
		{0x010000EF, "jal ra, +16", Instr{Op: OpJAL, Rd: 1, Imm: 16}},
		{0x00008067, "ret (jalr zero, 0(ra))", Instr{Op: OpJALR, Rs1: 1}},
		{0x12345537, "lui a0, 0x12345", Instr{Op: OpLUI, Rd: 10, Imm: 0x12345000}},
		{0x00001517, "auipc a0, 0x1", Instr{Op: OpAUIPC, Rd: 10, Imm: 0x1000}},
		{0x00000073, "ecall", Instr{Op: OpSystem, Imm: SysECall}},
		{0x00100073, "ebreak", Instr{Op: OpSystem, Imm: SysEBreak}},
	}
	for _, c := range cases {
		in, ok := Decode(c.word)
		if !ok {
			t.Errorf("%s (%#08x): decode rejected", c.name, c.word)
			continue
		}
		if in != c.want {
			t.Errorf("%s (%#08x): decoded %+v, want %+v", c.name, c.word, in, c.want)
		}
		if got := in.Encode(); got != c.word {
			t.Errorf("%s: encode = %#08x, want %#08x", c.name, got, c.word)
		}
	}
}

// Words in reserved or unsupported encoding space must decode to ok=false.
func TestDecodeRejects(t *testing.T) {
	cases := []struct {
		word uint32
		name string
	}{
		{0x00000000, "all zeros (defined illegal)"},
		{0xFFFFFFFF, "all ones"},
		{0x00000001, "16-bit compressed space"},
		{0x00001067, "jalr with funct3=1"},
		{0x0000A063, "branch funct3=2 (reserved)"},
		{0x00003003, "load funct3=3 (no ld)"},
		{0x00006003, "load funct3=6 (reserved)"},
		{0x00003023, "store funct3=3 (no sd)"},
		{0x40001033, "funct7=0x20 with funct3=sll"},
		{0x80000033, "op funct7=0x40 (reserved)"},
		{0x40001013, "slli with funct7=0x20"},
		{0x30200073, "mret (privileged, unsupported)"},
		{0x00200073, "system imm=2 (reserved)"},
	}
	for _, c := range cases {
		if in, ok := Decode(c.word); ok {
			t.Errorf("%s (%#08x): decoded to %+v, want reject", c.name, c.word, in)
		}
	}
}

func TestRegNames(t *testing.T) {
	for r := uint8(0); r < NumRegs; r++ {
		got, err := ParseReg(RegName(r))
		if err != nil || got != r {
			t.Errorf("ParseReg(RegName(%d)) = %d, %v", r, got, err)
		}
	}
	if r, err := ParseReg("fp"); err != nil || r != 8 {
		t.Errorf("ParseReg(fp) = %d, %v; want s0/x8", r, err)
	}
	if r, err := ParseReg("x31"); err != nil || r != 31 {
		t.Errorf("ParseReg(x31) = %d, %v", r, err)
	}
	for _, bad := range []string{"", "x32", "x-1", "q7", "f0"} {
		if _, err := ParseReg(bad); err == nil {
			t.Errorf("ParseReg(%q) accepted", bad)
		}
	}
}

func TestMemBytes(t *testing.T) {
	cases := []struct {
		f3   uint8
		want uint32
	}{{F3LB, 1}, {F3LH, 2}, {F3LW, 4}, {F3LBU, 1}, {F3LHU, 2}}
	for _, c := range cases {
		if got := (Instr{Op: OpLoad, F3: c.f3}).MemBytes(); got != c.want {
			t.Errorf("MemBytes(f3=%d) = %d, want %d", c.f3, got, c.want)
		}
	}
}

// FuzzRV32Decode is the decoder-totality and round-trip fuzzer the CI lint
// job runs with a 10s budget: Decode must never panic on any 32-bit word,
// and every word it accepts must re-encode bit-exactly.
func FuzzRV32Decode(f *testing.F) {
	f.Add(uint32(0x00100093))
	f.Add(uint32(0x00008067))
	f.Add(uint32(0x12345537))
	f.Add(uint32(0x00B50463))
	f.Add(uint32(0x00100073))
	f.Add(uint32(0xFFFFFFFF))
	f.Fuzz(func(t *testing.T, w uint32) {
		in, ok := Decode(w)
		if !ok {
			return
		}
		if got := in.Encode(); got != w {
			t.Fatalf("Decode(%#08x) = %+v, but Encode = %#08x", w, in, got)
		}
		// Disassemble must be total on accepted instructions too.
		if s := Disassemble(in, 0x1000); s == "" {
			t.Fatalf("Disassemble(%+v) empty", in)
		}
	})
}
