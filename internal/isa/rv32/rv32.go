// Package rv32 defines the RV32IM instruction encoding: the six base
// formats (R/I/S/B/U/J), the ABI register names, and a total decoder.
//
// This is the second ISA frontend behind the trace interface. Where FRVL
// (internal/isa) is an 8-byte-packet VLIW in the FR-V mold, RV32 is a plain
// 4-byte-fetch RISC: same kernels, different instruction encodings and fetch
// granularity, which is exactly the cross-ISA axis the explore engine
// sweeps. The M-extension multiply/divide group is included because the
// paper kernels (DCT, synthetic fills) multiply.
//
// Decode is total: it returns ok=false for any 32-bit word that is not a
// valid instruction instead of panicking, and Encode∘Decode is the identity
// on every valid word (pinned by FuzzRV32Decode).
package rv32

import (
	"fmt"
	"strconv"
	"strings"
)

// Word is the instruction size in bytes.
const Word = 4

// PacketBytes is the natural fetch-packet size: RV32 fetches one 4-byte
// instruction per cycle, unlike FRVL's 8-byte VLIW packet.
const PacketBytes = 4

// NumRegs is the size of the integer register file.
const NumRegs = 32

// Major opcodes (bits 0..6 of the instruction word).
const (
	OpLoad   = 0x03
	OpOpImm  = 0x13
	OpAUIPC  = 0x17
	OpStore  = 0x23
	OpOp     = 0x33
	OpLUI    = 0x37
	OpBranch = 0x63
	OpJALR   = 0x67
	OpJAL    = 0x6F
	OpSystem = 0x73
)

// funct3 values, grouped by major opcode.
const (
	F3ADD  = 0 // OpOp/OpOpImm: add/sub, addi
	F3SLL  = 1
	F3SLT  = 2
	F3SLTU = 3
	F3XOR  = 4
	F3SR   = 5 // srl/sra selected by funct7
	F3OR   = 6
	F3AND  = 7

	F3BEQ  = 0
	F3BNE  = 1
	F3BLT  = 4
	F3BGE  = 5
	F3BLTU = 6
	F3BGEU = 7

	F3LB  = 0
	F3LH  = 1
	F3LW  = 2
	F3LBU = 4
	F3LHU = 5

	F3MUL    = 0 // OpOp with F7Mul
	F3MULH   = 1
	F3MULHSU = 2
	F3MULHU  = 3
	F3DIV    = 4
	F3DIVU   = 5
	F3REM    = 6
	F3REMU   = 7
)

// funct7 values.
const (
	F7Base = 0x00
	F7Sub  = 0x20 // sub, sra/srai
	F7Mul  = 0x01 // M extension
)

// ABI register numbers the toolchain needs by name.
const (
	RegZero = 0
	RegRA   = 1
	RegSP   = 2
	RegA0   = 10
	RegA7   = 17
)

// System immediates (Instr.Imm for OpSystem).
const (
	SysECall  = 0
	SysEBreak = 1
)

// regNames is the ABI name table, indexed by register number.
var regNames = [NumRegs]string{
	"zero", "ra", "sp", "gp", "tp", "t0", "t1", "t2",
	"s0", "s1", "a0", "a1", "a2", "a3", "a4", "a5",
	"a6", "a7", "s2", "s3", "s4", "s5", "s6", "s7",
	"s8", "s9", "s10", "s11", "t3", "t4", "t5", "t6",
}

// RegName returns the ABI name of a register number.
func RegName(r uint8) string {
	if int(r) < len(regNames) {
		return regNames[r]
	}
	return fmt.Sprintf("x%d", r)
}

// ParseReg parses an ABI register name, an xN numeric name, or the fp alias
// for s0/x8.
func ParseReg(s string) (uint8, error) {
	s = strings.TrimSpace(s)
	if s == "fp" {
		return 8, nil
	}
	for i, n := range regNames {
		if s == n {
			return uint8(i), nil
		}
	}
	if len(s) >= 2 && s[0] == 'x' {
		if v, err := strconv.Atoi(s[1:]); err == nil && v >= 0 && v < NumRegs {
			return uint8(v), nil
		}
	}
	return 0, fmt.Errorf("bad register %q", s)
}

// Instr is one decoded instruction. Imm is the fully assembled,
// sign-extended immediate: the byte offset for branches and jumps, the
// pre-shifted upper-20 value for LUI/AUIPC, the shift amount for
// slli/srli/srai (with F7 distinguishing srli from srai), and SysECall or
// SysEBreak for OpSystem.
type Instr struct {
	Op  uint8
	Rd  uint8
	Rs1 uint8
	Rs2 uint8
	F3  uint8
	F7  uint8
	Imm int32
}

// immI extracts the sign-extended I-type immediate.
func immI(w uint32) int32 { return int32(w) >> 20 }

// immS extracts the sign-extended S-type immediate.
func immS(w uint32) int32 {
	return int32(w)>>25<<5 | int32(w>>7&0x1F)
}

// immB extracts the sign-extended B-type immediate (always even).
func immB(w uint32) int32 {
	return int32(w)>>31<<12 | int32(w>>7&1)<<11 | int32(w>>25&0x3F)<<5 | int32(w>>8&0xF)<<1
}

// immJ extracts the sign-extended J-type immediate (always even).
func immJ(w uint32) int32 {
	return int32(w)>>31<<20 | int32(w>>12&0xFF)<<12 | int32(w>>20&1)<<11 | int32(w>>21&0x3FF)<<1
}

func encodeI(imm int32) uint32 { return uint32(imm&0xFFF) << 20 }

func encodeS(imm int32) uint32 {
	u := uint32(imm)
	return (u>>5&0x7F)<<25 | (u&0x1F)<<7
}

func encodeB(imm int32) uint32 {
	u := uint32(imm)
	return (u>>12&1)<<31 | (u>>5&0x3F)<<25 | (u>>1&0xF)<<8 | (u>>11&1)<<7
}

func encodeJ(imm int32) uint32 {
	u := uint32(imm)
	return (u>>20&1)<<31 | (u>>1&0x3FF)<<21 | (u>>11&1)<<20 | (u>>12&0xFF)<<12
}

// Decode decodes a 32-bit word. It is total: ok is false for any word that
// is not a valid RV32IM instruction, and every ok decode round-trips
// through Encode bit-exactly.
func Decode(w uint32) (Instr, bool) {
	if w&3 != 3 {
		return Instr{}, false // 16-bit compressed space: not supported
	}
	op := uint8(w & 0x7F)
	rd := uint8(w >> 7 & 0x1F)
	f3 := uint8(w >> 12 & 0x7)
	rs1 := uint8(w >> 15 & 0x1F)
	rs2 := uint8(w >> 20 & 0x1F)
	f7 := uint8(w >> 25 & 0x7F)
	switch op {
	case OpLUI, OpAUIPC:
		return Instr{Op: op, Rd: rd, Imm: int32(w & 0xFFFFF000)}, true
	case OpJAL:
		return Instr{Op: op, Rd: rd, Imm: immJ(w)}, true
	case OpJALR:
		if f3 != 0 {
			return Instr{}, false
		}
		return Instr{Op: op, Rd: rd, Rs1: rs1, Imm: immI(w)}, true
	case OpBranch:
		if f3 == 2 || f3 == 3 {
			return Instr{}, false
		}
		return Instr{Op: op, Rs1: rs1, Rs2: rs2, F3: f3, Imm: immB(w)}, true
	case OpLoad:
		if f3 == 3 || f3 > F3LHU {
			return Instr{}, false
		}
		return Instr{Op: op, Rd: rd, Rs1: rs1, F3: f3, Imm: immI(w)}, true
	case OpStore:
		if f3 > 2 {
			return Instr{}, false
		}
		return Instr{Op: op, Rs1: rs1, Rs2: rs2, F3: f3, Imm: immS(w)}, true
	case OpOpImm:
		switch f3 {
		case F3SLL:
			if f7 != F7Base {
				return Instr{}, false
			}
			return Instr{Op: op, Rd: rd, Rs1: rs1, F3: f3, F7: f7, Imm: int32(rs2)}, true
		case F3SR:
			if f7 != F7Base && f7 != F7Sub {
				return Instr{}, false
			}
			return Instr{Op: op, Rd: rd, Rs1: rs1, F3: f3, F7: f7, Imm: int32(rs2)}, true
		}
		return Instr{Op: op, Rd: rd, Rs1: rs1, F3: f3, Imm: immI(w)}, true
	case OpOp:
		switch f7 {
		case F7Base, F7Mul:
		case F7Sub:
			if f3 != F3ADD && f3 != F3SR {
				return Instr{}, false
			}
		default:
			return Instr{}, false
		}
		return Instr{Op: op, Rd: rd, Rs1: rs1, Rs2: rs2, F3: f3, F7: f7}, true
	case OpSystem:
		switch w {
		case 0x00000073:
			return Instr{Op: op, Imm: SysECall}, true
		case 0x00100073:
			return Instr{Op: op, Imm: SysEBreak}, true
		}
		return Instr{}, false
	}
	return Instr{}, false
}

// Encode packs the instruction back into its 32-bit word.
func (in Instr) Encode() uint32 {
	op := uint32(in.Op)
	rd := uint32(in.Rd) << 7
	f3 := uint32(in.F3) << 12
	rs1 := uint32(in.Rs1) << 15
	rs2 := uint32(in.Rs2) << 20
	f7 := uint32(in.F7) << 25
	switch in.Op {
	case OpLUI, OpAUIPC:
		return uint32(in.Imm)&0xFFFFF000 | rd | op
	case OpJAL:
		return encodeJ(in.Imm) | rd | op
	case OpJALR, OpLoad:
		return encodeI(in.Imm) | rs1 | f3 | rd | op
	case OpBranch:
		return encodeB(in.Imm) | rs2 | rs1 | f3 | op
	case OpStore:
		return encodeS(in.Imm) | rs2 | rs1 | f3 | op
	case OpOpImm:
		if in.F3 == F3SLL || in.F3 == F3SR {
			return f7 | uint32(in.Imm&0x1F)<<20 | rs1 | f3 | rd | op
		}
		return encodeI(in.Imm) | rs1 | f3 | rd | op
	case OpOp:
		return f7 | rs2 | rs1 | f3 | rd | op
	case OpSystem:
		if in.Imm == SysEBreak {
			return 0x00100073
		}
		return 0x00000073
	}
	return 0
}

// IsLoad reports whether the instruction reads data memory.
func (in Instr) IsLoad() bool { return in.Op == OpLoad }

// IsStore reports whether the instruction writes data memory.
func (in Instr) IsStore() bool { return in.Op == OpStore }

// MemBytes returns the access width of a load or store.
func (in Instr) MemBytes() uint32 { return 1 << (in.F3 & 3) }

// Disassemble renders the instruction for diagnostics; pc resolves
// PC-relative targets.
func Disassemble(in Instr, pc uint32) string {
	rd, rs1, rs2 := RegName(in.Rd), RegName(in.Rs1), RegName(in.Rs2)
	switch in.Op {
	case OpLUI:
		return fmt.Sprintf("lui %s, 0x%x", rd, uint32(in.Imm)>>12)
	case OpAUIPC:
		return fmt.Sprintf("auipc %s, 0x%x", rd, uint32(in.Imm)>>12)
	case OpJAL:
		return fmt.Sprintf("jal %s, 0x%x", rd, pc+uint32(in.Imm))
	case OpJALR:
		return fmt.Sprintf("jalr %s, %d(%s)", rd, in.Imm, rs1)
	case OpBranch:
		names := map[uint8]string{F3BEQ: "beq", F3BNE: "bne", F3BLT: "blt", F3BGE: "bge", F3BLTU: "bltu", F3BGEU: "bgeu"}
		return fmt.Sprintf("%s %s, %s, 0x%x", names[in.F3], rs1, rs2, pc+uint32(in.Imm))
	case OpLoad:
		names := map[uint8]string{F3LB: "lb", F3LH: "lh", F3LW: "lw", F3LBU: "lbu", F3LHU: "lhu"}
		return fmt.Sprintf("%s %s, %d(%s)", names[in.F3], rd, in.Imm, rs1)
	case OpStore:
		names := map[uint8]string{0: "sb", 1: "sh", 2: "sw"}
		return fmt.Sprintf("%s %s, %d(%s)", names[in.F3], rs2, in.Imm, rs1)
	case OpOpImm:
		switch in.F3 {
		case F3SLL:
			return fmt.Sprintf("slli %s, %s, %d", rd, rs1, in.Imm)
		case F3SR:
			if in.F7 == F7Sub {
				return fmt.Sprintf("srai %s, %s, %d", rd, rs1, in.Imm)
			}
			return fmt.Sprintf("srli %s, %s, %d", rd, rs1, in.Imm)
		}
		names := map[uint8]string{F3ADD: "addi", F3SLT: "slti", F3SLTU: "sltiu", F3XOR: "xori", F3OR: "ori", F3AND: "andi"}
		return fmt.Sprintf("%s %s, %s, %d", names[in.F3], rd, rs1, in.Imm)
	case OpOp:
		var name string
		switch in.F7 {
		case F7Mul:
			name = map[uint8]string{F3MUL: "mul", F3MULH: "mulh", F3MULHSU: "mulhsu", F3MULHU: "mulhu",
				F3DIV: "div", F3DIVU: "divu", F3REM: "rem", F3REMU: "remu"}[in.F3]
		case F7Sub:
			name = map[uint8]string{F3ADD: "sub", F3SR: "sra"}[in.F3]
		default:
			name = map[uint8]string{F3ADD: "add", F3SLL: "sll", F3SLT: "slt", F3SLTU: "sltu",
				F3XOR: "xor", F3SR: "srl", F3OR: "or", F3AND: "and"}[in.F3]
		}
		return fmt.Sprintf("%s %s, %s, %s", name, rd, rs1, rs2)
	case OpSystem:
		if in.Imm == SysEBreak {
			return "ebreak"
		}
		return "ecall"
	}
	return fmt.Sprintf(".word 0x%08x", in.Encode())
}
