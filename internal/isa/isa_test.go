package isa

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestEncodeDecodeRType(t *testing.T) {
	in := Instr{Op: OpR, Funct: FnADD, Rd: 3, Rs: 4, Rt: 5}
	got := Decode(in.Encode())
	if got != in {
		t.Fatalf("round trip: got %+v want %+v", got, in)
	}
}

func TestEncodeDecodeIType(t *testing.T) {
	for _, imm := range []int32{0, 1, -1, 32767, -32768, 1234, -1234} {
		in := Instr{Op: OpADDI, Rt: 7, Rs: 8, Imm: imm}
		got := Decode(in.Encode())
		if got != in {
			t.Fatalf("imm %d: got %+v want %+v", imm, got, in)
		}
	}
}

func TestEncodeDecodeJType(t *testing.T) {
	for _, off := range []int32{0, 4, -4, 1 << 24, -(1 << 24), 33554428, -33554432} {
		in := Instr{Op: OpJAL, Off26: off}
		got := Decode(in.Encode())
		if got != in {
			t.Fatalf("off %d: got %+v want %+v", off, got, in)
		}
	}
}

// randomInstr builds a random valid instruction for the round-trip property.
func randomInstr(r *rand.Rand) Instr {
	ops := []uint8{OpR, OpF, OpJ, OpJAL, OpBEQ, OpBNE, OpBLT, OpBGE, OpBLTU,
		OpBGEU, OpADDI, OpSLTI, OpSLTIU, OpANDI, OpORI, OpXORI, OpLUI, OpLB,
		OpLH, OpLW, OpLBU, OpLHU, OpFLD, OpSB, OpSH, OpSW, OpFSD, OpOUTB, OpHALT}
	op := ops[r.Intn(len(ops))]
	in := Instr{Op: op}
	switch op {
	case OpR, OpF:
		in.Rs = uint8(r.Intn(32))
		in.Rt = uint8(r.Intn(32))
		in.Rd = uint8(r.Intn(32))
		in.Shamt = uint8(r.Intn(32))
		in.Funct = uint8(r.Intn(64))
	case OpJ, OpJAL:
		in.Off26 = int32(r.Intn(1<<26)) - 1<<25
	default:
		in.Rs = uint8(r.Intn(32))
		in.Rt = uint8(r.Intn(32))
		in.Imm = int32(int16(r.Intn(1 << 16)))
	}
	return in
}

func TestEncodeDecodeProperty(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	f := func() bool {
		in := randomInstr(r)
		return Decode(in.Encode()) == in
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

func TestPredicates(t *testing.T) {
	cases := []struct {
		in             Instr
		branch, ld, st bool
		bytes          int
	}{
		{Instr{Op: OpBEQ}, true, false, false, 0},
		{Instr{Op: OpBGEU}, true, false, false, 0},
		{Instr{Op: OpLW}, false, true, false, 4},
		{Instr{Op: OpLB}, false, true, false, 1},
		{Instr{Op: OpLHU}, false, true, false, 2},
		{Instr{Op: OpFLD}, false, true, false, 8},
		{Instr{Op: OpSW}, false, false, true, 4},
		{Instr{Op: OpFSD}, false, false, true, 8},
		{Instr{Op: OpADDI}, false, false, false, 0},
		{Instr{Op: OpR, Funct: FnADD}, false, false, false, 0},
	}
	for _, c := range cases {
		if c.in.IsBranch() != c.branch || c.in.IsLoad() != c.ld || c.in.IsStore() != c.st {
			t.Errorf("%+v: predicates wrong", c.in)
		}
		if c.in.MemBytes() != c.bytes {
			t.Errorf("%+v: MemBytes=%d want %d", c.in, c.in.MemBytes(), c.bytes)
		}
	}
}

func TestDisassembleSamples(t *testing.T) {
	cases := []struct {
		in   Instr
		pc   uint32
		want string
	}{
		{Instr{Op: OpR, Funct: FnADD, Rd: 1, Rs: 2, Rt: 3}, 0, "add r1, r2, r3"},
		{Instr{Op: OpADDI, Rt: 4, Rs: 5, Imm: -7}, 0, "addi r4, r5, -7"},
		{Instr{Op: OpLW, Rt: 6, Rs: 30, Imm: 16}, 0, "lw r6, 16(r30)"},
		{Instr{Op: OpSW, Rt: 6, Rs: 30, Imm: -4}, 0, "sw r6, -4(r30)"},
		{Instr{Op: OpBEQ, Rs: 1, Rt: 0, Imm: 16}, 0x100, "beq r1, r0, 0x110"},
		{Instr{Op: OpJAL, Off26: -32}, 0x200, "jal 0x1e0"},
		{Instr{Op: OpHALT}, 0, "halt"},
		{Instr{Op: OpF, Funct: FnFADD, Rd: 1, Rs: 2, Rt: 3}, 0, "fadd f1, f2, f3"},
	}
	for _, c := range cases {
		if got := Disassemble(c.in, c.pc); got != c.want {
			t.Errorf("Disassemble(%+v) = %q, want %q", c.in, got, c.want)
		}
	}
}
