// Package isa defines FRVL, the 32-bit RISC instruction set executed by the
// simulator in this repository.
//
// FRVL stands in for the Fujitsu FR-V that the paper evaluates on. Like the
// FR-V it is a load/store machine with base+displacement addressing,
// PC-relative branches, a link register, and instructions are fetched in
// 8-byte (two-instruction) VLIW packets. The binary encoding is MIPS-like:
// fixed 32-bit words with a 6-bit major opcode.
//
// Field layout:
//
//	R-type:  op[31:26] rs[25:21] rt[20:16] rd[15:11] shamt[10:6] funct[5:0]
//	I-type:  op[31:26] rs[25:21] rt[20:16] imm16[15:0]
//	J-type:  op[31:26] off26[25:0]
//
// Branch and jump displacements are signed byte offsets relative to the
// address of the branch itself, which matches the "base + small displacement"
// structure the Memory Address Buffer exploits.
package isa

import "fmt"

// Word is the size of one instruction in bytes.
const Word = 4

// PacketBytes is the size of one VLIW fetch packet in bytes (two
// instructions per cycle, as on the 2-issue FR-V).
const PacketBytes = 8

// Major opcodes.
const (
	OpR     = 0x00 // integer register-register, funct selects operation
	OpF     = 0x01 // floating point, funct selects operation
	OpJ     = 0x02 // jump, PC-relative 26-bit byte offset
	OpJAL   = 0x03 // jump and link
	OpBEQ   = 0x04
	OpBNE   = 0x05
	OpBLT   = 0x06
	OpBGE   = 0x07
	OpBLTU  = 0x08
	OpBGEU  = 0x09
	OpADDI  = 0x0A
	OpSLTI  = 0x0B
	OpSLTIU = 0x0C
	OpANDI  = 0x0D
	OpORI   = 0x0E
	OpXORI  = 0x0F
	OpLUI   = 0x10
	OpLB    = 0x11
	OpLH    = 0x12
	OpLW    = 0x13
	OpLBU   = 0x14
	OpLHU   = 0x15
	OpFLD   = 0x16 // load 8 bytes into FPR rt
	OpSB    = 0x19
	OpSH    = 0x1A
	OpSW    = 0x1B
	OpFSD   = 0x1C // store FPR rt (8 bytes)
	OpOUTB  = 0x3E // append low byte of rs to the console
	OpHALT  = 0x3F
)

// R-type (OpR) funct codes.
const (
	FnSLL   = 0x00 // rd = rt << shamt
	FnSRL   = 0x02
	FnSRA   = 0x03
	FnSLLV  = 0x04 // rd = rt << (rs & 31)
	FnSRLV  = 0x06
	FnSRAV  = 0x07
	FnJR    = 0x08 // jump to rs
	FnJALR  = 0x09 // rd = return address; jump to rs
	FnMUL   = 0x18 // low 32 bits of rs*rt
	FnMULH  = 0x19 // high 32 bits of signed rs*rt
	FnDIV   = 0x1A // signed quotient
	FnDIVU  = 0x1B
	FnREM   = 0x1C // signed remainder
	FnREMU  = 0x1D
	FnMULHU = 0x1E // high 32 bits of unsigned rs*rt
	FnADD   = 0x20
	FnSUB   = 0x22
	FnAND   = 0x24
	FnOR    = 0x25
	FnXOR   = 0x26
	FnNOR   = 0x27
	FnSLT   = 0x2A
	FnSLTU  = 0x2B
)

// F-type (OpF) funct codes. Register fields index the FPR file except where
// noted; all arithmetic is IEEE-754 double precision.
const (
	FnFADD   = 0x00 // fd = fs + ft
	FnFSUB   = 0x01
	FnFMUL   = 0x02
	FnFDIV   = 0x03
	FnFSQRT  = 0x04 // fd = sqrt(fs)
	FnFABS   = 0x05
	FnFNEG   = 0x06
	FnFMOV   = 0x07
	FnFCVTDW = 0x08 // fd = double(signed GPR rs)
	FnFCVTWD = 0x09 // GPR rd = int32(truncate(fs))
	FnFCEQ   = 0x0A // GPR rd = fs == ft
	FnFCLT   = 0x0B // GPR rd = fs < ft
	FnFCLE   = 0x0C // GPR rd = fs <= ft
)

// NumRegs is the number of general purpose (and floating point) registers.
const NumRegs = 32

// Conventional register numbers used by the assembler and runtime.
const (
	RegZero = 0  // hard-wired zero
	RegRA   = 31 // link (return address) register
	RegSP   = 30 // stack pointer
	RegGP   = 27 // global pointer
	RegFP   = 28 // frame pointer
)

// Instr is one decoded FRVL instruction.
type Instr struct {
	Op    uint8
	Rs    uint8
	Rt    uint8
	Rd    uint8
	Shamt uint8
	Funct uint8
	Imm   int32 // sign-extended 16-bit immediate for I-type
	Off26 int32 // sign-extended 26-bit offset for J-type
}

// Encode packs an instruction into its 32-bit binary form.
func (in Instr) Encode() uint32 {
	switch in.Op {
	case OpR, OpF:
		return uint32(in.Op)<<26 | uint32(in.Rs&31)<<21 | uint32(in.Rt&31)<<16 |
			uint32(in.Rd&31)<<11 | uint32(in.Shamt&31)<<6 | uint32(in.Funct&63)
	case OpJ, OpJAL:
		return uint32(in.Op)<<26 | uint32(in.Off26)&0x03FFFFFF
	default:
		return uint32(in.Op)<<26 | uint32(in.Rs&31)<<21 | uint32(in.Rt&31)<<16 |
			uint32(uint16(in.Imm))
	}
}

// Decode unpacks a 32-bit word into an Instr.
func Decode(w uint32) Instr {
	op := uint8(w >> 26)
	in := Instr{Op: op}
	switch op {
	case OpR, OpF:
		in.Rs = uint8(w >> 21 & 31)
		in.Rt = uint8(w >> 16 & 31)
		in.Rd = uint8(w >> 11 & 31)
		in.Shamt = uint8(w >> 6 & 31)
		in.Funct = uint8(w & 63)
	case OpJ, OpJAL:
		off := int32(w<<6) >> 6 // sign-extend 26 bits
		in.Off26 = off
	default:
		in.Rs = uint8(w >> 21 & 31)
		in.Rt = uint8(w >> 16 & 31)
		in.Imm = int32(int16(uint16(w)))
	}
	return in
}

// IsBranch reports whether the instruction is a conditional branch.
func (in Instr) IsBranch() bool {
	return in.Op >= OpBEQ && in.Op <= OpBGEU
}

// IsLoad reports whether the instruction reads data memory.
func (in Instr) IsLoad() bool {
	switch in.Op {
	case OpLB, OpLH, OpLW, OpLBU, OpLHU, OpFLD:
		return true
	}
	return false
}

// IsStore reports whether the instruction writes data memory.
func (in Instr) IsStore() bool {
	switch in.Op {
	case OpSB, OpSH, OpSW, OpFSD:
		return true
	}
	return false
}

// MemBytes returns the number of bytes a load/store moves, or 0 for
// non-memory instructions.
func (in Instr) MemBytes() int {
	switch in.Op {
	case OpLB, OpLBU, OpSB:
		return 1
	case OpLH, OpLHU, OpSH:
		return 2
	case OpLW, OpSW:
		return 4
	case OpFLD, OpFSD:
		return 8
	}
	return 0
}

var rFunctNames = map[uint8]string{
	FnSLL: "sll", FnSRL: "srl", FnSRA: "sra", FnSLLV: "sllv", FnSRLV: "srlv",
	FnSRAV: "srav", FnJR: "jr", FnJALR: "jalr", FnMUL: "mul", FnMULH: "mulh",
	FnMULHU: "mulhu", FnDIV: "div", FnDIVU: "divu", FnREM: "rem", FnREMU: "remu",
	FnADD: "add", FnSUB: "sub", FnAND: "and", FnOR: "or", FnXOR: "xor",
	FnNOR: "nor", FnSLT: "slt", FnSLTU: "sltu",
}

var fFunctNames = map[uint8]string{
	FnFADD: "fadd", FnFSUB: "fsub", FnFMUL: "fmul", FnFDIV: "fdiv",
	FnFSQRT: "fsqrt", FnFABS: "fabs", FnFNEG: "fneg", FnFMOV: "fmov",
	FnFCVTDW: "fcvtdw", FnFCVTWD: "fcvtwd", FnFCEQ: "fceq", FnFCLT: "fclt",
	FnFCLE: "fcle",
}

var opNames = map[uint8]string{
	OpJ: "j", OpJAL: "jal", OpBEQ: "beq", OpBNE: "bne", OpBLT: "blt",
	OpBGE: "bge", OpBLTU: "bltu", OpBGEU: "bgeu", OpADDI: "addi",
	OpSLTI: "slti", OpSLTIU: "sltiu", OpANDI: "andi", OpORI: "ori",
	OpXORI: "xori", OpLUI: "lui", OpLB: "lb", OpLH: "lh", OpLW: "lw",
	OpLBU: "lbu", OpLHU: "lhu", OpFLD: "fld", OpSB: "sb", OpSH: "sh",
	OpSW: "sw", OpFSD: "fsd", OpOUTB: "outb", OpHALT: "halt",
}

// RegName returns the canonical assembly name of GPR n.
func RegName(n uint8) string { return fmt.Sprintf("r%d", n) }

// Disassemble renders the instruction in assembler syntax. pc is the address
// of the instruction; branch and jump targets are rendered as absolute
// addresses.
func Disassemble(in Instr, pc uint32) string {
	r := func(n uint8) string { return RegName(n) }
	f := func(n uint8) string { return fmt.Sprintf("f%d", n) }
	switch in.Op {
	case OpR:
		name := rFunctNames[in.Funct]
		switch in.Funct {
		case FnSLL, FnSRL, FnSRA:
			return fmt.Sprintf("%s %s, %s, %d", name, r(in.Rd), r(in.Rt), in.Shamt)
		case FnJR:
			return fmt.Sprintf("jr %s", r(in.Rs))
		case FnJALR:
			return fmt.Sprintf("jalr %s, %s", r(in.Rd), r(in.Rs))
		default:
			if name == "" {
				return fmt.Sprintf(".word 0x%08x", in.Encode())
			}
			return fmt.Sprintf("%s %s, %s, %s", name, r(in.Rd), r(in.Rs), r(in.Rt))
		}
	case OpF:
		name := fFunctNames[in.Funct]
		switch in.Funct {
		case FnFSQRT, FnFABS, FnFNEG, FnFMOV:
			return fmt.Sprintf("%s %s, %s", name, f(in.Rd), f(in.Rs))
		case FnFCVTDW:
			return fmt.Sprintf("fcvtdw %s, %s", f(in.Rd), r(in.Rs))
		case FnFCVTWD:
			return fmt.Sprintf("fcvtwd %s, %s", r(in.Rd), f(in.Rs))
		case FnFCEQ, FnFCLT, FnFCLE:
			return fmt.Sprintf("%s %s, %s, %s", name, r(in.Rd), f(in.Rs), f(in.Rt))
		default:
			if name == "" {
				return fmt.Sprintf(".word 0x%08x", in.Encode())
			}
			return fmt.Sprintf("%s %s, %s, %s", name, f(in.Rd), f(in.Rs), f(in.Rt))
		}
	case OpJ, OpJAL:
		return fmt.Sprintf("%s 0x%x", opNames[in.Op], uint32(int64(pc)+int64(in.Off26)))
	case OpBEQ, OpBNE, OpBLT, OpBGE, OpBLTU, OpBGEU:
		return fmt.Sprintf("%s %s, %s, 0x%x", opNames[in.Op], r(in.Rs), r(in.Rt),
			uint32(int64(pc)+int64(in.Imm)))
	case OpLUI:
		return fmt.Sprintf("lui %s, 0x%x", r(in.Rt), uint16(in.Imm))
	case OpADDI, OpSLTI, OpSLTIU, OpANDI, OpORI, OpXORI:
		return fmt.Sprintf("%s %s, %s, %d", opNames[in.Op], r(in.Rt), r(in.Rs), in.Imm)
	case OpLB, OpLH, OpLW, OpLBU, OpLHU:
		return fmt.Sprintf("%s %s, %d(%s)", opNames[in.Op], r(in.Rt), in.Imm, r(in.Rs))
	case OpFLD, OpFSD:
		return fmt.Sprintf("%s %s, %d(%s)", opNames[in.Op], f(in.Rt), in.Imm, r(in.Rs))
	case OpSB, OpSH, OpSW:
		return fmt.Sprintf("%s %s, %d(%s)", opNames[in.Op], r(in.Rt), in.Imm, r(in.Rs))
	case OpOUTB:
		return fmt.Sprintf("outb %s", r(in.Rs))
	case OpHALT:
		return "halt"
	}
	return fmt.Sprintf(".word 0x%08x", in.Encode())
}
