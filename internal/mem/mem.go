// Package mem provides the flat 32-bit physical memory backing the FRVL
// simulator — the stand-in for the main memory behind the paper's FR-V
// caches (the evaluation platform of Section 4). Memory is sparse: 4KB
// pages are allocated on first touch, so a full 4GB address space costs
// nothing until used. All multi-byte accesses are little-endian.
package mem

import "encoding/binary"

const pageShift = 12
const pageSize = 1 << pageShift

// Memory is a sparse byte-addressable memory. The zero value is ready to use.
// Memory is not safe for concurrent use; each simulated machine owns one.
type Memory struct {
	pages map[uint32]*[pageSize]byte

	// Single-entry page cache: simulators touch the same page repeatedly.
	lastPN uint32
	lastP  *[pageSize]byte
}

// New returns an empty memory.
func New() *Memory {
	return &Memory{pages: make(map[uint32]*[pageSize]byte)}
}

func (m *Memory) page(addr uint32, alloc bool) *[pageSize]byte {
	pn := addr >> pageShift
	if m.lastP != nil && pn == m.lastPN {
		return m.lastP
	}
	if m.pages == nil {
		m.pages = make(map[uint32]*[pageSize]byte)
	}
	p := m.pages[pn]
	if p == nil && alloc {
		p = new([pageSize]byte)
		m.pages[pn] = p
	}
	if p != nil {
		m.lastPN, m.lastP = pn, p
	}
	return p
}

// LoadByte returns the byte at addr (0 if the page was never written).
func (m *Memory) LoadByte(addr uint32) byte {
	if p := m.page(addr, false); p != nil {
		return p[addr&(pageSize-1)]
	}
	return 0
}

// StoreByte stores b at addr.
func (m *Memory) StoreByte(addr uint32, b byte) {
	m.page(addr, true)[addr&(pageSize-1)] = b
}

// ReadWord returns the little-endian 32-bit word at addr. The fast path
// assumes the access does not straddle a page boundary, which holds for all
// aligned accesses.
func (m *Memory) ReadWord(addr uint32) uint32 {
	off := addr & (pageSize - 1)
	if off <= pageSize-4 {
		if p := m.page(addr, false); p != nil {
			return binary.LittleEndian.Uint32(p[off:])
		}
		return 0
	}
	return uint32(m.LoadByte(addr)) | uint32(m.LoadByte(addr+1))<<8 |
		uint32(m.LoadByte(addr+2))<<16 | uint32(m.LoadByte(addr+3))<<24
}

// WriteWord stores the little-endian 32-bit word v at addr.
func (m *Memory) WriteWord(addr uint32, v uint32) {
	off := addr & (pageSize - 1)
	if off <= pageSize-4 {
		binary.LittleEndian.PutUint32(m.page(addr, true)[off:], v)
		return
	}
	m.StoreByte(addr, byte(v))
	m.StoreByte(addr+1, byte(v>>8))
	m.StoreByte(addr+2, byte(v>>16))
	m.StoreByte(addr+3, byte(v>>24))
}

// ReadHalf returns the little-endian 16-bit value at addr.
func (m *Memory) ReadHalf(addr uint32) uint16 {
	off := addr & (pageSize - 1)
	if off <= pageSize-2 {
		if p := m.page(addr, false); p != nil {
			return binary.LittleEndian.Uint16(p[off:])
		}
		return 0
	}
	return uint16(m.LoadByte(addr)) | uint16(m.LoadByte(addr+1))<<8
}

// WriteHalf stores the little-endian 16-bit value v at addr.
func (m *Memory) WriteHalf(addr uint32, v uint16) {
	off := addr & (pageSize - 1)
	if off <= pageSize-2 {
		binary.LittleEndian.PutUint16(m.page(addr, true)[off:], v)
		return
	}
	m.StoreByte(addr, byte(v))
	m.StoreByte(addr+1, byte(v>>8))
}

// ReadDouble returns the little-endian 64-bit value at addr.
func (m *Memory) ReadDouble(addr uint32) uint64 {
	return uint64(m.ReadWord(addr)) | uint64(m.ReadWord(addr+4))<<32
}

// WriteDouble stores the little-endian 64-bit value v at addr.
func (m *Memory) WriteDouble(addr uint32, v uint64) {
	m.WriteWord(addr, uint32(v))
	m.WriteWord(addr+4, uint32(v>>32))
}

// LoadImage copies img into memory starting at addr.
func (m *Memory) LoadImage(addr uint32, img []byte) {
	for i, b := range img {
		m.StoreByte(addr+uint32(i), b)
	}
}

// ReadRange copies n bytes starting at addr into a fresh slice.
func (m *Memory) ReadRange(addr uint32, n int) []byte {
	out := make([]byte, n)
	for i := range out {
		out[i] = m.LoadByte(addr + uint32(i))
	}
	return out
}
