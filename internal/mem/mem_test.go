package mem

import (
	"bytes"
	"math/rand"
	"testing"
)

func TestByteRoundTrip(t *testing.T) {
	m := New()
	m.StoreByte(0x1000, 0xAB)
	if got := m.LoadByte(0x1000); got != 0xAB {
		t.Fatalf("got %#x", got)
	}
	if got := m.LoadByte(0x1001); got != 0 {
		t.Fatalf("untouched byte: got %#x want 0", got)
	}
}

func TestWordRoundTrip(t *testing.T) {
	m := New()
	m.WriteWord(0x2000, 0xDEADBEEF)
	if got := m.ReadWord(0x2000); got != 0xDEADBEEF {
		t.Fatalf("got %#x", got)
	}
	// Little-endian byte order.
	if got := m.LoadByte(0x2000); got != 0xEF {
		t.Fatalf("LE low byte: got %#x", got)
	}
	if got := m.LoadByte(0x2003); got != 0xDE {
		t.Fatalf("LE high byte: got %#x", got)
	}
}

func TestPageStraddle(t *testing.T) {
	m := New()
	// 4KB pages: a word write at 0xFFE crosses into the next page.
	m.WriteWord(0xFFE, 0x11223344)
	if got := m.ReadWord(0xFFE); got != 0x11223344 {
		t.Fatalf("straddle word: got %#x", got)
	}
	m.WriteHalf(0xFFF, 0xA55A)
	if got := m.ReadHalf(0xFFF); got != 0xA55A {
		t.Fatalf("straddle half: got %#x", got)
	}
}

func TestDoubleRoundTrip(t *testing.T) {
	m := New()
	m.WriteDouble(0x3000, 0x0102030405060708)
	if got := m.ReadDouble(0x3000); got != 0x0102030405060708 {
		t.Fatalf("got %#x", got)
	}
}

func TestLoadImageAndReadRange(t *testing.T) {
	m := New()
	img := []byte{1, 2, 3, 4, 5, 6, 7}
	m.LoadImage(0xFFD, img) // crosses a page boundary
	if got := m.ReadRange(0xFFD, len(img)); !bytes.Equal(got, img) {
		t.Fatalf("got %v want %v", got, img)
	}
}

func TestZeroValueUsable(t *testing.T) {
	var m Memory
	m.WriteWord(16, 42)
	if got := m.ReadWord(16); got != 42 {
		t.Fatalf("zero value memory: got %d", got)
	}
}

// TestRandomAgainstOracle drives random mixed-size accesses and compares
// against a plain map of bytes.
func TestRandomAgainstOracle(t *testing.T) {
	m := New()
	oracle := make(map[uint32]byte)
	r := rand.New(rand.NewSource(42))
	read := func(a uint32) byte { return oracle[a] }
	for i := 0; i < 20000; i++ {
		// Confine to a few pages so reads often hit written data.
		addr := uint32(r.Intn(3 * 4096))
		switch r.Intn(6) {
		case 0:
			b := byte(r.Uint32())
			m.StoreByte(addr, b)
			oracle[addr] = b
		case 1:
			v := uint16(r.Uint32())
			m.WriteHalf(addr, v)
			oracle[addr] = byte(v)
			oracle[addr+1] = byte(v >> 8)
		case 2:
			v := r.Uint32()
			m.WriteWord(addr, v)
			for k := 0; k < 4; k++ {
				oracle[addr+uint32(k)] = byte(v >> (8 * k))
			}
		case 3:
			if got, want := m.LoadByte(addr), read(addr); got != want {
				t.Fatalf("byte @%#x: got %#x want %#x", addr, got, want)
			}
		case 4:
			want := uint16(read(addr)) | uint16(read(addr+1))<<8
			if got := m.ReadHalf(addr); got != want {
				t.Fatalf("half @%#x: got %#x want %#x", addr, got, want)
			}
		default:
			var want uint32
			for k := 3; k >= 0; k-- {
				want = want<<8 | uint32(read(addr+uint32(k)))
			}
			if got := m.ReadWord(addr); got != want {
				t.Fatalf("word @%#x: got %#x want %#x", addr, got, want)
			}
		}
	}
}
