package cache

import (
	"math/rand"
	"testing"
)

func TestGeometryFRV32K(t *testing.T) {
	g := FRV32K
	if g.SizeBytes() != 32*1024 {
		t.Errorf("size = %d", g.SizeBytes())
	}
	if g.OffsetBits() != 5 || g.SetBits() != 9 || g.TagBits() != 18 {
		t.Errorf("bits: off=%d set=%d tag=%d", g.OffsetBits(), g.SetBits(), g.TagBits())
	}
	addr := uint32(0xABCD1234)
	if g.Set(addr) != (addr>>5)&511 {
		t.Errorf("set extraction")
	}
	if g.Tag(addr) != addr>>14 {
		t.Errorf("tag extraction")
	}
	if g.LineAddr(addr) != addr&^31 {
		t.Errorf("line addr")
	}
}

func TestValidate(t *testing.T) {
	bad := []Config{
		{Sets: 3, Ways: 2, LineBytes: 32},
		{Sets: 8, Ways: 2, LineBytes: 24},
		{Sets: 8, Ways: 0, LineBytes: 32},
	}
	for _, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("%+v validated", c)
		}
	}
	if err := FRV32K.Validate(); err != nil {
		t.Errorf("FRV32K: %v", err)
	}
}

func TestFillLookup(t *testing.T) {
	c := New(Config{Sets: 4, Ways: 2, LineBytes: 16})
	addr := uint32(0x1000)
	if _, hit := c.Lookup(addr); hit {
		t.Fatal("hit in empty cache")
	}
	way, ev := c.Fill(addr)
	if ev.Way >= 0 {
		t.Fatal("eviction from empty set")
	}
	if w, hit := c.Lookup(addr); !hit || w != way {
		t.Fatalf("lookup after fill: way=%d hit=%v", w, hit)
	}
	if !c.Present(addr, way) {
		t.Fatal("Present false after fill")
	}
	if c.Present(addr, 1-way) {
		t.Fatal("Present true in wrong way")
	}
}

func TestLRUReplacement(t *testing.T) {
	g := Config{Sets: 4, Ways: 2, LineBytes: 16}
	c := New(g)
	// Three conflicting lines in set 0: tags differ, same set.
	a1 := uint32(0 << 6) // set 0, tag 0
	a2 := uint32(1 << 6) // set 0, tag 1
	a3 := uint32(2 << 6) // set 0, tag 2
	w1, _ := c.Fill(a1)
	w2, _ := c.Fill(a2)
	if w1 == w2 {
		t.Fatal("same way for both fills")
	}
	// Touch a1 so a2 is LRU.
	c.Touch(a1, w1)
	way3, ev := c.Fill(a3)
	if way3 != w2 {
		t.Errorf("victim way = %d, want %d", way3, w2)
	}
	if ev.Way != w2 || ev.Tag != g.Tag(a2) {
		t.Errorf("eviction = %+v", ev)
	}
	if _, hit := c.Lookup(a2); hit {
		t.Error("a2 still resident")
	}
	if _, hit := c.Lookup(a1); !hit {
		t.Error("a1 displaced")
	}
}

func TestDirtyEviction(t *testing.T) {
	c := New(Config{Sets: 2, Ways: 1, LineBytes: 16})
	a1, a2 := uint32(0x00), uint32(0x40) // same set 0 (set bits: bit 4)
	w, _ := c.Fill(a1)
	c.MarkDirty(a1, w)
	_, ev := c.Fill(a2)
	if !ev.Dirty {
		t.Fatal("dirty eviction not flagged")
	}
	_, ev2 := c.Fill(a1)
	if ev2.Dirty {
		t.Fatal("clean line flagged dirty")
	}
}

func TestOnEvictCallback(t *testing.T) {
	c := New(Config{Sets: 2, Ways: 1, LineBytes: 16})
	var got []Eviction
	c.OnEvict = func(ev Eviction) { got = append(got, ev) }
	c.Fill(0x00)
	c.Fill(0x40) // displaces 0x00
	c.Fill(0x10) // other set, no eviction
	if len(got) != 1 || got[0].Tag != c.Config().Tag(0x00) || got[0].Set != 0 {
		t.Fatalf("evictions: %+v", got)
	}
}

func TestFlush(t *testing.T) {
	c := New(Config{Sets: 2, Ways: 2, LineBytes: 16})
	c.Fill(0x00)
	c.Flush()
	if _, hit := c.Lookup(0x00); hit {
		t.Fatal("hit after flush")
	}
}

// oracleCache is a straightforward reference model: per set, a slice of tags
// ordered most-recent-first, truncated to Ways entries.
type oracleCache struct {
	cfg  Config
	sets map[uint32][]uint32
}

func newOracle(cfg Config) *oracleCache {
	return &oracleCache{cfg: cfg, sets: make(map[uint32][]uint32)}
}

func (o *oracleCache) access(addr uint32) (hit bool) {
	set, tag := o.cfg.Set(addr), o.cfg.Tag(addr)
	s := o.sets[set]
	for i, tg := range s {
		if tg == tag {
			copy(s[1:i+1], s[:i])
			s[0] = tag
			return true
		}
	}
	s = append([]uint32{tag}, s...)
	if len(s) > o.cfg.Ways {
		s = s[:o.cfg.Ways]
	}
	o.sets[set] = s
	return false
}

// TestAgainstOracle drives random accesses through the structural cache and
// the reference model and demands identical hit/miss behaviour.
func TestAgainstOracle(t *testing.T) {
	cfgs := []Config{
		{Sets: 4, Ways: 1, LineBytes: 16},
		{Sets: 8, Ways: 2, LineBytes: 32},
		{Sets: 2, Ways: 4, LineBytes: 16},
	}
	for _, cfg := range cfgs {
		c := New(cfg)
		o := newOracle(cfg)
		r := rand.New(rand.NewSource(7))
		for i := 0; i < 50000; i++ {
			// Small address space to force conflicts.
			addr := uint32(r.Intn(cfg.SizeBytes() * 3))
			way, hit := c.Lookup(addr)
			wantHit := o.access(addr)
			if hit != wantHit {
				t.Fatalf("%+v access %d: hit=%v oracle=%v", cfg, i, hit, wantHit)
			}
			if hit {
				c.Touch(addr, way)
			} else {
				c.Fill(addr)
			}
		}
	}
}
