// Package cache models a set-associative write-back cache at the level of
// detail the paper's evaluation needs: which line sits in which way, per-set
// LRU replacement, dirty bits and eviction callbacks.
//
// The package deliberately does not count tag or data-way accesses itself:
// how many tag comparators and data ways light up per access is exactly what
// distinguishes the paper's technique from its baselines, so accounting
// belongs to the controllers (internal/core, internal/baseline).
package cache

import (
	"fmt"
	"math/bits"
)

// Config describes cache geometry. The paper's FR-V caches are
// {Sets: 512, Ways: 2, LineBytes: 32} = 32KB.
type Config struct {
	Sets      int
	Ways      int
	LineBytes int
}

// FRV32K is the 32KB 2-way 512-set 32-byte-line geometry used throughout the
// paper for both the instruction and data cache.
var FRV32K = Config{Sets: 512, Ways: 2, LineBytes: 32}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if c.Sets <= 0 || c.Sets&(c.Sets-1) != 0 {
		return fmt.Errorf("cache: sets %d not a power of two", c.Sets)
	}
	if c.LineBytes <= 0 || c.LineBytes&(c.LineBytes-1) != 0 {
		return fmt.Errorf("cache: line size %d not a power of two", c.LineBytes)
	}
	if c.Ways <= 0 {
		return fmt.Errorf("cache: ways %d", c.Ways)
	}
	return nil
}

// SizeBytes returns the total data capacity.
func (c Config) SizeBytes() int { return c.Sets * c.Ways * c.LineBytes }

// OffsetBits returns the number of line-offset address bits.
func (c Config) OffsetBits() int { return log2(c.LineBytes) }

// SetBits returns the number of set-index address bits.
func (c Config) SetBits() int { return log2(c.Sets) }

// TagBits returns the number of tag bits for 32-bit addresses (18 for the
// paper's geometry).
func (c Config) TagBits() int { return 32 - c.OffsetBits() - c.SetBits() }

// Set extracts the set index of addr.
func (c Config) Set(addr uint32) uint32 {
	return addr >> uint(c.OffsetBits()) & uint32(c.Sets-1)
}

// Tag extracts the tag of addr.
func (c Config) Tag(addr uint32) uint32 {
	return addr >> uint(c.OffsetBits()+c.SetBits())
}

// LineAddr returns the address of the first byte of the line holding addr.
func (c Config) LineAddr(addr uint32) uint32 {
	return addr &^ uint32(c.LineBytes-1)
}

// log2 of a power of two. A single bit-length instruction, not a loop: Set
// and Tag sit on the per-access hot path of every cache controller, and the
// replay engine makes that path the dominant cost of a design-space sweep.
func log2(v int) int {
	if v <= 1 {
		return 0
	}
	return bits.Len(uint(v)) - 1
}

type line struct {
	tag     uint32
	valid   bool
	dirty   bool
	lastUse uint64
}

// Eviction describes a line displaced by a refill.
type Eviction struct {
	Tag   uint32
	Set   uint32
	Way   int
	Dirty bool
}

// Cache is the structural state of one cache.
type Cache struct {
	cfg   Config
	lines []line
	clock uint64

	// Address-slicing constants, precomputed at New: Set/Tag extraction is
	// on the per-access path of every controller and every replayed event.
	offBits  uint
	setMask  uint32
	tagShift uint

	// OnEvict, when non-nil, is called for every valid line displaced by a
	// Fill. The Memory Address Buffer's sound consistency policy hooks this
	// to invalidate matching entries.
	OnEvict func(ev Eviction)
}

// New returns an empty cache with the given geometry.
func New(cfg Config) *Cache {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return &Cache{
		cfg:      cfg,
		lines:    make([]line, cfg.Sets*cfg.Ways),
		offBits:  uint(cfg.OffsetBits()),
		setMask:  uint32(cfg.Sets - 1),
		tagShift: uint(cfg.OffsetBits() + cfg.SetBits()),
	}
}

// set and tag are Config.Set and Config.Tag on the precomputed constants.
func (c *Cache) set(addr uint32) uint32 { return addr >> c.offBits & c.setMask }
func (c *Cache) tag(addr uint32) uint32 { return addr >> c.tagShift }

// Config returns the cache geometry.
func (c *Cache) Config() Config { return c.cfg }

func (c *Cache) line(set uint32, way int) *line {
	return &c.lines[int(set)*c.cfg.Ways+way]
}

// Lookup reports whether addr hits, and in which way. It does not change any
// state (no LRU update). The way scan indexes off a precomputed set base so
// the per-way step is one add, not a multiply — this is the single most
// executed loop of every controller.
func (c *Cache) Lookup(addr uint32) (way int, hit bool) {
	set, tag := c.set(addr), c.tag(addr)
	base := int(set) * c.cfg.Ways
	for w := 0; w < c.cfg.Ways; w++ {
		if l := &c.lines[base+w]; l.valid && l.tag == tag {
			return w, true
		}
	}
	return -1, false
}

// Present reports whether the line holding addr is resident in the given
// way. It is used by the MAB checker to validate memoized ways.
func (c *Cache) Present(addr uint32, way int) bool {
	if way < 0 || way >= c.cfg.Ways {
		return false
	}
	l := c.line(c.set(addr), way)
	return l.valid && l.tag == c.tag(addr)
}

// Touch marks (set,way) most recently used. Every access — including
// memoized ones, where the MAB supplies the way — must Touch the line so the
// replacement state matches a conventional cache.
func (c *Cache) Touch(addr uint32, way int) {
	c.clock++
	c.line(c.set(addr), way).lastUse = c.clock
}

// MarkDirty sets the dirty bit of (set,way).
func (c *Cache) MarkDirty(addr uint32, way int) {
	c.line(c.set(addr), way).dirty = true
}

// VictimWay returns the way that a fill to addr's set would replace: the
// first invalid way, else the least recently used.
func (c *Cache) VictimWay(addr uint32) int {
	set := c.set(addr)
	victim, oldest := 0, ^uint64(0)
	for w := 0; w < c.cfg.Ways; w++ {
		l := c.line(set, w)
		if !l.valid {
			return w
		}
		if l.lastUse < oldest {
			victim, oldest = w, l.lastUse
		}
	}
	return victim
}

// Fill installs the line holding addr, evicting the LRU way if needed.
// It returns the way used and the eviction (Way < 0 when nothing valid was
// displaced). The new line is clean and most recently used.
func (c *Cache) Fill(addr uint32) (way int, ev Eviction) {
	set, tag := c.set(addr), c.tag(addr)
	way = c.VictimWay(addr)
	l := c.line(set, way)
	ev = Eviction{Way: -1}
	if l.valid {
		ev = Eviction{Tag: l.tag, Set: set, Way: way, Dirty: l.dirty}
		if c.OnEvict != nil {
			c.OnEvict(ev)
		}
	}
	c.clock++
	*l = line{tag: tag, valid: true, lastUse: c.clock}
	return way, ev
}

// TagAt returns the tag and validity of (set,way); for checkers and tests.
func (c *Cache) TagAt(set uint32, way int) (tag uint32, valid bool) {
	l := c.line(set, way)
	return l.tag, l.valid
}

// Flush invalidates every line (no write-backs are modelled).
func (c *Cache) Flush() {
	for i := range c.lines {
		c.lines[i] = line{}
	}
}
