package stats

import "testing"

func TestDerivedMetrics(t *testing.T) {
	c := Counters{Accesses: 100, Hits: 90, TagReads: 20, WayReads: 100, WayWrites: 10,
		MABLookups: 80, MABHits: 60}
	if got := c.TagsPerAccess(); got != 0.2 {
		t.Errorf("tags/access = %f", got)
	}
	if got := c.WaysPerAccess(); got != 1.1 {
		t.Errorf("ways/access = %f", got)
	}
	if got := c.HitRate(); got != 0.9 {
		t.Errorf("hit rate = %f", got)
	}
	if got := c.MABHitRate(); got != 0.75 {
		t.Errorf("MAB hit rate = %f", got)
	}
}

func TestZeroSafe(t *testing.T) {
	var c Counters
	if c.TagsPerAccess() != 0 || c.WaysPerAccess() != 0 || c.HitRate() != 0 || c.MABHitRate() != 0 {
		t.Error("division by zero not guarded")
	}
}

func TestAdd(t *testing.T) {
	a := Counters{Accesses: 1, Loads: 1, Hits: 1, TagReads: 2, WayReads: 2,
		Flow: [4]uint64{1, 2, 3, 4}, Violations: 1, SetBufHits: 5, ExtraCycles: 7}
	b := Counters{Accesses: 10, Stores: 10, Misses: 10, TagReads: 20, WayWrites: 3,
		Flow: [4]uint64{10, 20, 30, 40}, BufReads: 2, MABBypasses: 9}
	a.Add(&b)
	if a.Accesses != 11 || a.TagReads != 22 || a.Flow[3] != 44 {
		t.Errorf("add: %+v", a)
	}
	if a.Loads != 1 || a.Stores != 10 || a.WayReads != 2 || a.WayWrites != 3 {
		t.Errorf("add: %+v", a)
	}
	if a.Violations != 1 || a.SetBufHits != 5 || a.BufReads != 2 || a.ExtraCycles != 7 || a.MABBypasses != 9 {
		t.Errorf("add: %+v", a)
	}
}
