// Package stats holds the access counters shared by every cache-controller
// technique in the repository. The counters are the inputs to the paper's
// power equation (1):
//
//	P = E_way·N_way + E_tag·N_tag + P_MAB
//
// so the controllers count tag-array reads and data-way reads/writes exactly
// as the hardware would issue them.
package stats

// Counters accumulates events for one cache (I or D) under one technique.
type Counters struct {
	// Access mix.
	Accesses uint64
	Loads    uint64
	Stores   uint64

	// Cache outcome.
	Hits       uint64
	Misses     uint64
	Refills    uint64
	WriteBacks uint64

	// Array activity (the paper's N_tag and N_way).
	TagReads  uint64 // single tag-way reads (an access touching both tag ways adds 2)
	WayReads  uint64 // single data-way reads
	WayWrites uint64 // single data-way writes (stores, refill line writes count 1)

	// MAB activity.
	MABLookups  uint64 // cycles the MAB was active (clock-gated otherwise)
	MABHits     uint64
	MABMisses   uint64
	MABBypasses uint64 // large displacement or indirect jump
	MABUpdates  uint64

	// Violations counts MAB hits whose memoized way no longer held the line
	// (possible only under the pure paper consistency rules; see DESIGN.md).
	Violations uint64

	// Instruction-flow classification (I-cache only), indexed by
	// trace.FlowCase.
	Flow [4]uint64

	// Case1Skips counts intra-line sequential fetches satisfied with no tag
	// access (the Panwar [4] optimization, also part of the paper's scheme).
	Case1Skips uint64

	// Set-buffer activity (baseline [14]).
	SetBufHits   uint64
	SetBufReads  uint64
	SetBufWrites uint64

	// Line/filter-buffer activity (extensions).
	BufHits   uint64
	BufReads  uint64
	BufWrites uint64

	// ExtraCycles counts performance-penalty cycles added by techniques that
	// are not penalty-free (filter cache, way prediction, two-phase).
	ExtraCycles uint64
}

// TagsPerAccess returns average tag reads per cache access.
func (c *Counters) TagsPerAccess() float64 {
	if c.Accesses == 0 {
		return 0
	}
	return float64(c.TagReads) / float64(c.Accesses)
}

// WaysPerAccess returns average data-way activations (reads+writes) per
// access.
func (c *Counters) WaysPerAccess() float64 {
	if c.Accesses == 0 {
		return 0
	}
	return float64(c.WayReads+c.WayWrites) / float64(c.Accesses)
}

// HitRate returns the cache hit rate.
func (c *Counters) HitRate() float64 {
	if c.Accesses == 0 {
		return 0
	}
	return float64(c.Hits) / float64(c.Accesses)
}

// MABHitRate returns hits over lookups (excluding bypasses).
func (c *Counters) MABHitRate() float64 {
	if c.MABLookups == 0 {
		return 0
	}
	return float64(c.MABHits) / float64(c.MABLookups)
}

// Add accumulates o into c (used to aggregate across benchmark phases).
func (c *Counters) Add(o *Counters) {
	c.Accesses += o.Accesses
	c.Loads += o.Loads
	c.Stores += o.Stores
	c.Hits += o.Hits
	c.Misses += o.Misses
	c.Refills += o.Refills
	c.WriteBacks += o.WriteBacks
	c.TagReads += o.TagReads
	c.WayReads += o.WayReads
	c.WayWrites += o.WayWrites
	c.MABLookups += o.MABLookups
	c.MABHits += o.MABHits
	c.MABMisses += o.MABMisses
	c.MABBypasses += o.MABBypasses
	c.MABUpdates += o.MABUpdates
	c.Violations += o.Violations
	for i := range c.Flow {
		c.Flow[i] += o.Flow[i]
	}
	c.Case1Skips += o.Case1Skips
	c.SetBufHits += o.SetBufHits
	c.SetBufReads += o.SetBufReads
	c.SetBufWrites += o.SetBufWrites
	c.BufHits += o.BufHits
	c.BufReads += o.BufReads
	c.BufWrites += o.BufWrites
	c.ExtraCycles += o.ExtraCycles
}
