package serve

import (
	"context"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"waymemo/internal/explore"
	"waymemo/internal/suite"
)

// TestSweepIDDeterministic: equivalent requests hash to the same sweep ID,
// different grids to different ones — the whole idempotency story rests on
// this.
func TestSweepIDDeterministic(t *testing.T) {
	sp1, err := tinyReq(64, 128).Space()
	if err != nil {
		t.Fatal(err)
	}
	sp2, err := tinyReq(64, 128).Space()
	if err != nil {
		t.Fatal(err)
	}
	if sweepID(sp1) != sweepID(sp2) {
		t.Fatalf("equivalent requests: %s vs %s", sweepID(sp1), sweepID(sp2))
	}
	sp3, err := tinyReq(64, 256).Space()
	if err != nil {
		t.Fatal(err)
	}
	if sweepID(sp1) == sweepID(sp3) {
		t.Fatalf("different grids share ID %s", sweepID(sp1))
	}
	if id := sweepID(sp1); !strings.HasPrefix(id, "sw-") || len(id) != len("sw-")+16 {
		t.Fatalf("sweep ID shape: %q", id)
	}
}

// TestSubmitIdempotent: resubmitting an identical sweep — while it runs and
// after it completes — returns the existing job, costing no admission and
// no work.
func TestSubmitIdempotent(t *testing.T) {
	s := newTestServer(t, 0, 2)
	job, err := s.Submit(tinyReq(64))
	if err != nil {
		t.Fatal(err)
	}
	again, err := s.Submit(tinyReq(64))
	if err != nil {
		t.Fatal(err)
	}
	if again != job {
		t.Fatalf("live resubmit made a new job %s", again.ID())
	}
	waitJob(t, job)
	done, err := s.Submit(tinyReq(64))
	if err != nil {
		t.Fatal(err)
	}
	if done != job {
		t.Fatalf("completed resubmit made a new job %s", done.ID())
	}
	st := s.Stats()
	if st.Sweeps != 3 || st.DedupSweeps != 2 || st.Simulations != 1 {
		t.Fatalf("sweeps=%d dedup=%d sims=%d, want 3/2/1", st.Sweeps, st.DedupSweeps, st.Simulations)
	}
}

// resumeReq is the four-point grid the crash tests sweep.
func resumeReq() SweepRequest { return tinyReq(64, 128, 256, 512) }

// installCrashStub replaces the simulation seam so grid points with
// Index >= blockFrom hang until their context dies — the crash window —
// while crashed is false; once the test flips crashed, every point
// simulates for real. Restores the seam on cleanup.
func installCrashStub(t *testing.T, blockFrom int) *atomic.Bool {
	t.Helper()
	orig := simulatePoint
	crashed := &atomic.Bool{}
	simulatePoint = func(ctx context.Context, sp explore.Space, pt explore.Point, tc *suite.TraceCache) (*explore.PointResult, error) {
		if !crashed.Load() && pt.Index >= blockFrom {
			<-ctx.Done()
			return nil, ctx.Err()
		}
		return orig(ctx, sp, pt, tc)
	}
	t.Cleanup(func() { simulatePoint = orig })
	return crashed
}

// waitDone polls a job until at least n grid points have completed (and
// therefore been journaled — the journal append precedes the done event).
func waitDone(t *testing.T, job *Job, n int) {
	t.Helper()
	deadline := time.Now().Add(time.Minute)
	for job.status().Metrics.Done < n {
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck at %+v waiting for %d done points", job.ID(), job.status().Metrics, n)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// crashServer shuts a server down the way the crash tests need: Close
// cancels the running sweep without journaling a terminal state — the same
// journal the daemon would leave behind under SIGKILL — and the test waits
// for the job to observe the cancellation so no goroutine still touches the
// store dir.
func crashServer(t *testing.T, s *Server, job *Job) {
	t.Helper()
	s.Close()
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	st, err := job.Wait(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != "failed" {
		t.Fatalf("cut-off job state = %s, want failed", st.State)
	}
}

// TestCrashResume is the tentpole end to end, in-process and deterministic:
// a daemon dies mid-sweep after completing 2 of 4 points, a second daemon
// over the same store dir resurrects the sweep from the journal, resubmits
// reattach by content-hashed ID, only the unfinished half simulates, and
// the final grid is bit-identical to an uninterrupted fault-free run's.
func TestCrashResume(t *testing.T) {
	// Reference grid first, before the simulation seam is stubbed.
	ref := newTestServer(t, 0, 2)
	refJob, err := ref.Submit(resumeReq())
	if err != nil {
		t.Fatal(err)
	}
	waitJob(t, refJob)
	want := strippedGrid(t, refJob)

	crashed := installCrashStub(t, 2)
	dir := t.TempDir()
	s1, err := New(Config{StoreDir: dir, Parallelism: 2})
	if err != nil {
		t.Fatal(err)
	}
	job1, err := s1.Submit(resumeReq())
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, job1, 2)
	crashServer(t, s1, job1)
	crashed.Store(true)

	s2, err := New(Config{StoreDir: dir, Parallelism: 2})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s2.Close)
	boot := s2.Stats()
	if boot.ResumedSweeps != 1 || boot.ResumedPointsSkipped != 2 {
		t.Fatalf("boot resumed %d sweeps, %d points skipped; want 1, 2",
			boot.ResumedSweeps, boot.ResumedPointsSkipped)
	}
	job2, ok := s2.job(job1.ID())
	if !ok {
		t.Fatalf("resumed daemon does not know sweep %s", job1.ID())
	}
	// The client's resubmission after the restart reattaches to the resumed
	// job under the same content-hashed ID.
	re, err := s2.Submit(resumeReq())
	if err != nil {
		t.Fatal(err)
	}
	if re != job2 {
		t.Fatalf("post-restart resubmit made job %s, want reattach to %s", re.ID(), job2.ID())
	}
	final := waitJob(t, job2)
	if final.Epoch != 2 {
		t.Fatalf("resumed job epoch = %d, want 2 (event log was rebuilt)", final.Epoch)
	}
	// Zero duplicate simulations: the two points that landed in the store
	// before the crash come back as hits, only the remainder simulates.
	if final.Metrics.StoreHits != 2 || final.Metrics.Simulated != 2 {
		t.Fatalf("resumed metrics = %+v, want 2 store hits + 2 simulated", final.Metrics)
	}
	if got := s2.Stats(); got.Simulations != 2 {
		t.Fatalf("resumed daemon simulated %d points, want 2", got.Simulations)
	}
	if !gridsEqual(t, want, strippedGrid(t, job2)) {
		t.Fatal("resumed grid differs from the uninterrupted reference")
	}
}

// TestCrashResumeUnderJournalFaults: the same crash-resume flow with seeded
// faults injected into every io.journal.* site on both daemon lives. The
// journal is allowed to lose resumption — the second daemon may resurrect
// the sweep or see it fresh on resubmit — but the grid must still come out
// bit-identical with zero duplicate simulations, because the store, not the
// journal, is the durability authority for results.
func TestCrashResumeUnderJournalFaults(t *testing.T) {
	ref := newTestServer(t, 0, 2)
	refJob, err := ref.Submit(resumeReq())
	if err != nil {
		t.Fatal(err)
	}
	waitJob(t, refJob)
	want := strippedGrid(t, refJob)

	crashed := installCrashStub(t, 2)
	dir := t.TempDir()
	s1, err := New(Config{StoreDir: dir, Parallelism: 2,
		Faults: mustFaults(t, "seed=11;io.journal:err:0.4")})
	if err != nil {
		t.Fatal(err)
	}
	job1, err := s1.Submit(resumeReq())
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, job1, 2)
	crashServer(t, s1, job1)
	crashed.Store(true)
	if s1.cfg.Faults.Total() == 0 {
		t.Fatal("no journal faults injected; the test proved nothing")
	}

	s2, err := New(Config{StoreDir: dir, Parallelism: 2,
		Faults: mustFaults(t, "seed=12;io.journal:err:0.4")})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s2.Close)
	job2, ok := s2.job(job1.ID())
	if !ok {
		// The journal lost the sweep to an injected fault: the client's
		// resubmission recreates it — fresh job, same ID, same store.
		job2, err = s2.Submit(resumeReq())
		if err != nil {
			t.Fatal(err)
		}
	}
	final := waitJob(t, job2)
	if final.Metrics.StoreHits != 2 || final.Metrics.Simulated != 2 {
		t.Fatalf("metrics under journal faults = %+v, want 2 store hits + 2 simulated", final.Metrics)
	}
	if !gridsEqual(t, want, strippedGrid(t, job2)) {
		t.Fatal("grid under journal faults differs from the reference")
	}
}

// TestServerPanicContainment: a grid point whose simulation panics fails its
// sweep with a typed retryable error, the daemon counts the recovery and
// keeps serving, and the retry (a same-ID resubmission at the next epoch)
// succeeds.
func TestServerPanicContainment(t *testing.T) {
	orig := simulatePoint
	var primed atomic.Bool
	primed.Store(true)
	simulatePoint = func(ctx context.Context, sp explore.Space, pt explore.Point, tc *suite.TraceCache) (*explore.PointResult, error) {
		if pt.Index == 0 && primed.CompareAndSwap(true, false) {
			panic("injected simulation panic")
		}
		return orig(ctx, sp, pt, tc)
	}
	t.Cleanup(func() { simulatePoint = orig })

	s := newTestServer(t, 0, 1)
	job, err := s.Submit(tinyReq(64, 128))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	st, err := job.Wait(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != "failed" || !st.Retryable || !strings.Contains(st.Error, "panic") {
		t.Fatalf("panicked sweep status = %+v, want retryable failure naming the panic", st)
	}
	if got := s.Stats().PanicsRecovered; got != 1 {
		t.Fatalf("panics recovered = %d, want 1", got)
	}
	// The daemon survived: the retry replaces the failed run and completes.
	retry, err := s.Submit(tinyReq(64, 128))
	if err != nil {
		t.Fatal(err)
	}
	if retry.ID() != job.ID() {
		t.Fatalf("retry got ID %s, want %s", retry.ID(), job.ID())
	}
	final := waitJob(t, retry)
	if final.Epoch != 2 || final.Metrics.Done != 2 {
		t.Fatalf("retry status = %+v, want epoch-2 completion", final)
	}
}

// TestPointWatchdog: a simulation stuck past Config.PointDeadline fails its
// point retryable instead of pinning the semaphore slot; once unwedged, the
// retry completes and the daemon never stopped serving.
func TestPointWatchdog(t *testing.T) {
	orig := simulatePoint
	var wedged atomic.Bool
	wedged.Store(true)
	simulatePoint = func(ctx context.Context, sp explore.Space, pt explore.Point, tc *suite.TraceCache) (*explore.PointResult, error) {
		if wedged.Load() {
			<-ctx.Done()
			return nil, ctx.Err()
		}
		return orig(ctx, sp, pt, tc)
	}
	t.Cleanup(func() { simulatePoint = orig })

	s, err := New(Config{StoreDir: t.TempDir(), Parallelism: 1, PointDeadline: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	job, err := s.Submit(tinyReq(64))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	st, err := job.Wait(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != "failed" || !st.Retryable {
		t.Fatalf("wedged point status = %+v, want retryable watchdog failure", st)
	}
	wedged.Store(false)
	retry, err := s.Submit(tinyReq(64))
	if err != nil {
		t.Fatal(err)
	}
	final := waitJob(t, retry)
	if final.Epoch != 2 || final.Metrics.Simulated != 1 {
		t.Fatalf("post-watchdog retry = %+v, want epoch-2 fresh simulation", final)
	}
}
