package serve

import (
	"container/list"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"waymemo/internal/explore"
)

// Store is the daemon's shared content-addressed result + trace store: an
// explore.DirCache of grid-point results plus the suite trace cache's
// WMTRACE1 spill directory, under one byte budget with LRU eviction.
//
// Results are tracked with in-memory recency (every Get bumps the entry);
// trace spill pairs are aged by file modification time, since the trace
// cache writes them directly. When the combined footprint exceeds the
// budget, Enforce deletes the least-recently-used items — whichever of the
// oldest result and the oldest trace pair is staler — until under budget.
// Eviction can never make results wrong: an evicted result re-simulates
// and an evicted trace re-captures on next use.
type Store struct {
	results  *explore.DirCache
	traceDir string // "" when the store keeps no traces
	budget   int64  // bytes across results + traces; 0 = unlimited

	mu          sync.Mutex
	ll          *list.List               // LRU: front = most recent
	ent         map[string]*list.Element // key -> element holding *storeEntry
	resultBytes int64

	hits, misses, puts              int64
	resultEvictions, traceEvictions int64
}

// storeEntry is one result's LRU bookkeeping.
type storeEntry struct {
	key     string
	bytes   int64
	lastUse time.Time
}

// StoreStats is the store's accounting snapshot, as served by /v1/stats.
type StoreStats struct {
	ResultEntries   int   `json:"result_entries"`
	ResultBytes     int64 `json:"result_bytes"`
	TraceFiles      int   `json:"trace_files"` // spill pairs (.wmtrace + sidecar)
	TraceBytes      int64 `json:"trace_bytes"`
	BudgetBytes     int64 `json:"budget_bytes"` // 0 = unlimited
	Hits            int64 `json:"hits"`
	Misses          int64 `json:"misses"`
	Puts            int64 `json:"puts"`
	ResultEvictions int64 `json:"result_evictions"`
	TraceEvictions  int64 `json:"trace_evictions"`
}

// OpenStore opens (creating as needed, parents included) a store rooted at
// dir: results under dir/results, trace spills under dir/traces. budget is
// the combined byte budget, 0 for unlimited. Existing entries are adopted
// with their file times as initial recency, so a restarted daemon resumes
// warm.
func OpenStore(dir string, budget int64) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("serve: empty store directory")
	}
	if budget < 0 {
		return nil, fmt.Errorf("serve: negative store budget %d", budget)
	}
	results, err := explore.NewDirCache(filepath.Join(dir, "results"))
	if err != nil {
		return nil, err
	}
	traceDir := filepath.Join(dir, "traces")
	if err := os.MkdirAll(traceDir, 0o755); err != nil {
		return nil, fmt.Errorf("serve: store trace dir: %w", err)
	}
	st := &Store{
		results:  results,
		traceDir: traceDir,
		budget:   budget,
		ll:       list.New(),
		ent:      map[string]*list.Element{},
	}
	ents, err := results.Entries() // oldest first
	if err != nil {
		return nil, err
	}
	for _, e := range ents {
		st.resultBytes += e.Bytes
		el := st.ll.PushFront(&storeEntry{key: e.Key, bytes: e.Bytes, lastUse: e.ModTime})
		st.ent[e.Key] = el
	}
	return st, nil
}

// ResultDir and TraceDir return the store's component directories; the
// server hands TraceDir to suite.NewDirTraceCache so captures spill into
// the budgeted store.
func (st *Store) ResultDir() string { return st.results.Dir() }
func (st *Store) TraceDir() string  { return st.traceDir }

// Get loads a stored grid point and bumps its recency. A corrupt or absent
// entry is a miss.
func (st *Store) Get(key string) (*explore.PointResult, bool) {
	pr, ok := st.results.Get(key)
	st.mu.Lock()
	defer st.mu.Unlock()
	if !ok {
		st.misses++
		// A vanished or corrupt file no longer occupies space it is
		// indexed for; drop the stale entry so accounting stays honest.
		if el, idxed := st.ent[key]; idxed {
			if e, still := st.results.Entry(key); still {
				el.Value.(*storeEntry).bytes = e.Bytes
			} else {
				st.resultBytes -= el.Value.(*storeEntry).bytes
				st.ll.Remove(el)
				delete(st.ent, key)
			}
		}
		return nil, false
	}
	st.hits++
	st.touch(key)
	return pr, true
}

// Put stores a grid point and accounts it. The caller is expected to run
// Enforce (directly or via the server's sweep epilogue) to apply the
// budget; Put itself only keeps the books.
func (st *Store) Put(key string, pr *explore.PointResult) error {
	if err := st.results.Put(key, pr); err != nil {
		return err
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	st.puts++
	st.touch(key)
	return nil
}

// touch bumps key to the LRU front, (re)stating its size. Callers hold mu.
func (st *Store) touch(key string) {
	var bytes int64
	if e, ok := st.results.Entry(key); ok {
		bytes = e.Bytes
	}
	if el, ok := st.ent[key]; ok {
		se := el.Value.(*storeEntry)
		st.resultBytes += bytes - se.bytes
		se.bytes = bytes
		se.lastUse = time.Now()
		st.ll.MoveToFront(el)
		return
	}
	st.resultBytes += bytes
	st.ent[key] = st.ll.PushFront(&storeEntry{key: key, bytes: bytes, lastUse: time.Now()})
}

// tracePair is one spill pair on disk (WMTRACE1 file + JSON sidecar).
type tracePair struct {
	base    string // path without extension
	bytes   int64
	modTime time.Time
}

// scanTraces lists the spill pairs, oldest first.
func (st *Store) scanTraces() ([]tracePair, int64) {
	des, err := os.ReadDir(st.traceDir)
	if err != nil {
		return nil, 0
	}
	pairs := map[string]*tracePair{}
	for _, de := range des {
		name := de.Name()
		base, isTrace := strings.CutSuffix(name, ".wmtrace")
		if !isTrace {
			if base, ok := strings.CutSuffix(name, ".json"); ok {
				// Sidecar: account its bytes against the pair.
				if info, err := de.Info(); err == nil {
					p := pairs[base]
					if p == nil {
						p = &tracePair{base: filepath.Join(st.traceDir, base)}
						pairs[base] = p
					}
					p.bytes += info.Size()
				}
			}
			continue
		}
		info, err := de.Info()
		if err != nil {
			continue
		}
		p := pairs[base]
		if p == nil {
			p = &tracePair{base: filepath.Join(st.traceDir, base)}
			pairs[base] = p
		}
		p.bytes += info.Size()
		p.modTime = info.ModTime()
	}
	out := make([]tracePair, 0, len(pairs))
	var total int64
	for _, p := range pairs {
		out = append(out, *p)
		total += p.bytes
	}
	sort.Slice(out, func(i, j int) bool { return out[i].modTime.Before(out[j].modTime) })
	return out, total
}

// Enforce applies the byte budget: while results + traces exceed it, the
// LRU item — the older of the least-recently-used result and the oldest
// trace pair — is deleted. It returns how many results and trace pairs
// were evicted. With no budget it is a no-op.
func (st *Store) Enforce() (results, traces int) {
	if st.budget == 0 {
		return 0, 0
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	pairs, traceBytes := st.scanTraces()
	for st.resultBytes+traceBytes > st.budget {
		oldestRes := st.ll.Back()
		switch {
		case oldestRes == nil && len(pairs) == 0:
			return results, traces
		case oldestRes == nil || (len(pairs) > 0 && pairs[0].modTime.Before(oldestRes.Value.(*storeEntry).lastUse)):
			p := pairs[0]
			pairs = pairs[1:]
			os.Remove(p.base + ".wmtrace")
			os.Remove(p.base + ".json")
			traceBytes -= p.bytes
			traces++
			st.traceEvictions++
		default:
			se := oldestRes.Value.(*storeEntry)
			if err := st.results.Delete(se.key); err != nil {
				// Undeletable entry: stop rather than spin; the next
				// Enforce retries.
				return results, traces
			}
			st.resultBytes -= se.bytes
			st.ll.Remove(oldestRes)
			delete(st.ent, se.key)
			results++
			st.resultEvictions++
		}
	}
	return results, traces
}

// Stats snapshots the store's accounting, rescanning the trace directory.
func (st *Store) Stats() StoreStats {
	st.mu.Lock()
	defer st.mu.Unlock()
	pairs, traceBytes := st.scanTraces()
	return StoreStats{
		ResultEntries:   len(st.ent),
		ResultBytes:     st.resultBytes,
		TraceFiles:      len(pairs),
		TraceBytes:      traceBytes,
		BudgetBytes:     st.budget,
		Hits:            st.hits,
		Misses:          st.misses,
		Puts:            st.puts,
		ResultEvictions: st.resultEvictions,
		TraceEvictions:  st.traceEvictions,
	}
}
