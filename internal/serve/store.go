package serve

import (
	"container/list"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"waymemo/internal/explore"
	"waymemo/internal/fault"
	"waymemo/internal/trace"
)

// Store is the daemon's shared content-addressed result + trace store: an
// explore.DirCache of grid-point results plus the suite trace cache's
// WMTRACE1 spill directory, under one byte budget with LRU eviction.
//
// Results are tracked with in-memory recency (every Get bumps the entry);
// trace spill pairs are aged by file modification time, since the trace
// cache writes them directly. When the combined footprint exceeds the
// budget, Enforce deletes the least-recently-used items — whichever of the
// oldest result and the oldest trace pair is staler — until under budget.
// Eviction can never make results wrong: an evicted result re-simulates
// and an evicted trace re-captures on next use.
type Store struct {
	results  *explore.DirCache
	traceDir string // "" when the store keeps no traces
	budget   int64  // bytes across results + traces; 0 = unlimited
	fs       fault.FS

	mu          sync.Mutex
	ll          *list.List               // LRU: front = most recent
	ent         map[string]*list.Element // key -> element holding *storeEntry
	resultBytes int64

	hits, misses, puts              int64
	resultEvictions, traceEvictions int64

	// Startup-recovery counters (see recoverDir): what the boot sweep
	// removed or quarantined.
	recoveredResults, recoveredTraces, recoveredTemps int64
}

// storeEntry is one result's LRU bookkeeping.
type storeEntry struct {
	key     string
	bytes   int64
	lastUse time.Time
}

// StoreStats is the store's accounting snapshot, as served by /v1/stats.
type StoreStats struct {
	ResultEntries   int   `json:"result_entries"`
	ResultBytes     int64 `json:"result_bytes"`
	TraceFiles      int   `json:"trace_files"` // spill pairs (.wmtrace + sidecar)
	TraceBytes      int64 `json:"trace_bytes"`
	BudgetBytes     int64 `json:"budget_bytes"` // 0 = unlimited
	Hits            int64 `json:"hits"`
	Misses          int64 `json:"misses"`
	Puts            int64 `json:"puts"`
	ResultEvictions int64 `json:"result_evictions"`
	TraceEvictions  int64 `json:"trace_evictions"`

	// The startup recovery sweep's findings: corrupt result entries and
	// trace pairs quarantined (renamed *.bad) and leftover atomic-write temp
	// files removed. Nonzero numbers after a crash are the store working as
	// designed — every quarantined item re-simulates or re-captures on next
	// use.
	RecoveredResults int64 `json:"recovered_results"`
	RecoveredTraces  int64 `json:"recovered_traces"`
	RecoveredTemps   int64 `json:"recovered_temps"`
}

// OpenStore opens (creating as needed, parents included) a store rooted at
// dir: results under dir/results, trace spills under dir/traces. budget is
// the combined byte budget, 0 for unlimited.
//
// Opening begins with a crash-recovery sweep: leftover atomic-write temp
// files (a writer killed before its rename) are removed, and result entries
// or trace pairs that do not read back intact — torn by a crash that beat
// the fsync, bit-flipped, or half a pair — are quarantined by renaming them
// *.bad rather than adopted or silently served. A quarantined item only
// costs a re-simulation or re-capture; it can never be replayed as a
// result. The surviving entries are adopted with their file times as
// initial recency, so a restarted daemon resumes warm.
func OpenStore(dir string, budget int64) (*Store, error) {
	return OpenStoreFS(dir, budget, fault.FS{})
}

// OpenStoreFS is OpenStore with the store's file I/O — including the
// recovery sweep's reads — routed through a fault-injection shim; the zero
// FS is a passthrough. Under an injected-read chaos boot the sweep may
// quarantine healthy entries; that only costs re-simulation, which is the
// degradation the layer exists to prove safe.
func OpenStoreFS(dir string, budget int64, fs fault.FS) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("serve: empty store directory")
	}
	if budget < 0 {
		return nil, fmt.Errorf("serve: negative store budget %d", budget)
	}
	results, err := explore.NewDirCacheFS(filepath.Join(dir, "results"), fs)
	if err != nil {
		return nil, err
	}
	traceDir := filepath.Join(dir, "traces")
	if err := os.MkdirAll(traceDir, 0o755); err != nil {
		return nil, fmt.Errorf("serve: store trace dir: %w", err)
	}
	st := &Store{
		results:  results,
		traceDir: traceDir,
		budget:   budget,
		fs:       fs,
		ll:       list.New(),
		ent:      map[string]*list.Element{},
	}
	st.recoverBoot()
	ents, err := results.Entries() // oldest first; recovery already ran, so all intact
	if err != nil {
		return nil, err
	}
	for _, e := range ents {
		st.resultBytes += e.Bytes
		el := st.ll.PushFront(&storeEntry{key: e.Key, bytes: e.Bytes, lastUse: e.ModTime})
		st.ent[e.Key] = el
	}
	return st, nil
}

// recoverBoot is the startup crash-recovery sweep: temp files out, corrupt
// entries quarantined. It never fails the open — an entry it cannot fix is
// left for Get to treat as a miss, which is already safe.
func (st *Store) recoverBoot() {
	// 1. Leftover atomic-write temps (named *.tmp<rand> by CreateTemp): a
	// writer died between create and rename. They were never visible to
	// readers; just remove them.
	for _, dir := range []string{st.results.Dir(), st.traceDir} {
		des, err := os.ReadDir(dir)
		if err != nil {
			continue
		}
		for _, de := range des {
			if !de.IsDir() && strings.Contains(de.Name(), ".tmp") {
				if os.Remove(filepath.Join(dir, de.Name())) == nil {
					st.recoveredTemps++
				}
			}
		}
	}
	// 2. Result entries that do not decode back to a plausible PointResult
	// (torn write that beat the fsync, truncation, bit rot). Get already
	// treats them as misses; quarantining at boot makes the damage visible
	// in stats and keeps the LRU accounting from indexing dead weight.
	if ents, err := st.results.Entries(); err == nil {
		for _, e := range ents {
			if _, ok := st.results.Get(e.Key); !ok {
				p := filepath.Join(st.results.Dir(), e.Key+".json")
				if os.Rename(p, p+".bad") == nil {
					st.recoveredResults++
				}
			}
		}
	}
	// 3. Trace spill pairs: a pair must have both halves, a sidecar that
	// parses, and a trace file whose checksummed decode matches the
	// sidecar's event counts. Anything less is quarantined whole —
	// suite.TraceCache would already treat it as a miss, but a half-read
	// torn file wastes every future load attempt until someone cleans it.
	des, err := os.ReadDir(st.traceDir)
	if err != nil {
		return
	}
	type halves struct{ trace, sidecar bool }
	pairs := map[string]*halves{}
	for _, de := range des {
		if base, ok := strings.CutSuffix(de.Name(), ".wmtrace"); ok {
			h := pairs[base]
			if h == nil {
				h = &halves{}
				pairs[base] = h
			}
			h.trace = true
		} else if base, ok := strings.CutSuffix(de.Name(), ".json"); ok {
			h := pairs[base]
			if h == nil {
				h = &halves{}
				pairs[base] = h
			}
			h.sidecar = true
		}
	}
	for base, h := range pairs {
		basePath := filepath.Join(st.traceDir, base)
		if st.tracePairIntact(basePath, *h) {
			continue
		}
		quarantined := false
		if h.trace && os.Rename(basePath+".wmtrace", basePath+".wmtrace.bad") == nil {
			quarantined = true
		}
		if h.sidecar && os.Rename(basePath+".json", basePath+".json.bad") == nil {
			quarantined = true
		}
		if quarantined {
			st.recoveredTraces++
		}
	}
}

// tracePairIntact validates one spill pair end to end: both halves present,
// sidecar parses and self-identifies, trace file decodes (its formats are
// checksummed) and — when the sidecar carries event counts; minimal legacy
// sidecars do not — agrees with them.
func (st *Store) tracePairIntact(basePath string, h struct{ trace, sidecar bool }) bool {
	if !h.trace || !h.sidecar {
		return false
	}
	mb, err := st.fs.ReadFile(fault.SiteTraceRead, basePath+".json")
	if err != nil {
		return false
	}
	var m struct {
		Version int  `json:"version"`
		Fetches *int `json:"fetches"`
		Datas   *int `json:"datas"`
	}
	if json.Unmarshal(mb, &m) != nil || m.Version == 0 {
		return false
	}
	f, err := st.fs.Open(fault.SiteTraceRead, basePath+".wmtrace")
	if err != nil {
		return false
	}
	defer f.Close()
	buf, err := trace.ReadBuffer(f)
	if err != nil {
		return false
	}
	if m.Fetches != nil && buf.NumFetches() != *m.Fetches {
		return false
	}
	return m.Datas == nil || buf.NumDatas() == *m.Datas
}

// ResultDir and TraceDir return the store's component directories; the
// server hands TraceDir to suite.NewDirTraceCache so captures spill into
// the budgeted store.
func (st *Store) ResultDir() string { return st.results.Dir() }
func (st *Store) TraceDir() string  { return st.traceDir }

// Get loads a stored grid point and bumps its recency. A corrupt or absent
// entry is a miss.
func (st *Store) Get(key string) (*explore.PointResult, bool) {
	pr, ok := st.results.Get(key)
	st.mu.Lock()
	defer st.mu.Unlock()
	if !ok {
		st.misses++
		// A vanished or corrupt file no longer occupies space it is
		// indexed for; drop the stale entry so accounting stays honest.
		if el, idxed := st.ent[key]; idxed {
			if e, still := st.results.Entry(key); still {
				el.Value.(*storeEntry).bytes = e.Bytes
			} else {
				st.resultBytes -= el.Value.(*storeEntry).bytes
				st.ll.Remove(el)
				delete(st.ent, key)
			}
		}
		return nil, false
	}
	st.hits++
	st.touch(key)
	return pr, true
}

// Put stores a grid point and accounts it. The caller is expected to run
// Enforce (directly or via the server's sweep epilogue) to apply the
// budget; Put itself only keeps the books.
func (st *Store) Put(key string, pr *explore.PointResult) error {
	if err := st.results.Put(key, pr); err != nil {
		return err
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	st.puts++
	st.touch(key)
	return nil
}

// touch bumps key to the LRU front, (re)stating its size. Callers hold mu.
func (st *Store) touch(key string) {
	var bytes int64
	if e, ok := st.results.Entry(key); ok {
		bytes = e.Bytes
	}
	if el, ok := st.ent[key]; ok {
		se := el.Value.(*storeEntry)
		st.resultBytes += bytes - se.bytes
		se.bytes = bytes
		se.lastUse = time.Now()
		st.ll.MoveToFront(el)
		return
	}
	st.resultBytes += bytes
	st.ent[key] = st.ll.PushFront(&storeEntry{key: key, bytes: bytes, lastUse: time.Now()})
}

// tracePair is one spill pair on disk (WMTRACE1 file + JSON sidecar).
type tracePair struct {
	base    string // path without extension
	bytes   int64
	modTime time.Time
}

// scanTraces lists the spill pairs, oldest first.
func (st *Store) scanTraces() ([]tracePair, int64) {
	des, err := os.ReadDir(st.traceDir)
	if err != nil {
		return nil, 0
	}
	pairs := map[string]*tracePair{}
	for _, de := range des {
		name := de.Name()
		base, isTrace := strings.CutSuffix(name, ".wmtrace")
		if !isTrace {
			if base, ok := strings.CutSuffix(name, ".json"); ok {
				// Sidecar: account its bytes against the pair.
				if info, err := de.Info(); err == nil {
					p := pairs[base]
					if p == nil {
						p = &tracePair{base: filepath.Join(st.traceDir, base)}
						pairs[base] = p
					}
					p.bytes += info.Size()
				}
			}
			continue
		}
		info, err := de.Info()
		if err != nil {
			continue
		}
		p := pairs[base]
		if p == nil {
			p = &tracePair{base: filepath.Join(st.traceDir, base)}
			pairs[base] = p
		}
		p.bytes += info.Size()
		p.modTime = info.ModTime()
	}
	out := make([]tracePair, 0, len(pairs))
	var total int64
	for _, p := range pairs {
		out = append(out, *p)
		total += p.bytes
	}
	sort.Slice(out, func(i, j int) bool { return out[i].modTime.Before(out[j].modTime) })
	return out, total
}

// Enforce applies the byte budget: while results + traces exceed it, the
// LRU item — the older of the least-recently-used result and the oldest
// trace pair — is deleted. It returns how many results and trace pairs
// were evicted. With no budget it is a no-op.
func (st *Store) Enforce() (results, traces int) {
	if st.budget == 0 {
		return 0, 0
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	pairs, traceBytes := st.scanTraces()
	for st.resultBytes+traceBytes > st.budget {
		oldestRes := st.ll.Back()
		switch {
		case oldestRes == nil && len(pairs) == 0:
			return results, traces
		case oldestRes == nil || (len(pairs) > 0 && pairs[0].modTime.Before(oldestRes.Value.(*storeEntry).lastUse)):
			p := pairs[0]
			pairs = pairs[1:]
			os.Remove(p.base + ".wmtrace")
			os.Remove(p.base + ".json")
			traceBytes -= p.bytes
			traces++
			st.traceEvictions++
		default:
			se := oldestRes.Value.(*storeEntry)
			if err := st.results.Delete(se.key); err != nil {
				// Undeletable entry: stop rather than spin; the next
				// Enforce retries.
				return results, traces
			}
			st.resultBytes -= se.bytes
			st.ll.Remove(oldestRes)
			delete(st.ent, se.key)
			results++
			st.resultEvictions++
		}
	}
	return results, traces
}

// Stats snapshots the store's accounting, rescanning the trace directory.
func (st *Store) Stats() StoreStats {
	st.mu.Lock()
	defer st.mu.Unlock()
	pairs, traceBytes := st.scanTraces()
	return StoreStats{
		ResultEntries:   len(st.ent),
		ResultBytes:     st.resultBytes,
		TraceFiles:      len(pairs),
		TraceBytes:      traceBytes,
		BudgetBytes:     st.budget,
		Hits:            st.hits,
		Misses:          st.misses,
		Puts:            st.puts,
		ResultEvictions: st.resultEvictions,
		TraceEvictions:  st.traceEvictions,

		RecoveredResults: st.recoveredResults,
		RecoveredTraces:  st.recoveredTraces,
		RecoveredTemps:   st.recoveredTemps,
	}
}
