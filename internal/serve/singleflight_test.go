package serve

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"waymemo/internal/explore"
)

// TestFlightGroupSingleExecution holds the leader inside fn until K
// concurrent callers for the same key have arrived, then asserts fn ran
// exactly once and exactly one caller led.
func TestFlightGroupSingleExecution(t *testing.T) {
	var g flightGroup
	const K = 16
	var execs, leads atomic.Int64
	var started sync.WaitGroup
	gate := make(chan struct{})
	want := &explore.PointResult{Workload: "w", Cycles: 42}

	var wg sync.WaitGroup
	started.Add(K)
	for i := 0; i < K; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			started.Done()
			pr, simulated, led, err := g.do(context.Background(), "k", func() (*explore.PointResult, bool, error) {
				execs.Add(1)
				<-gate
				return want, true, nil
			})
			if err != nil {
				t.Errorf("do: %v", err)
				return
			}
			if led {
				leads.Add(1)
			}
			if pr != want || !simulated {
				t.Errorf("got (%p, %v), want (%p, true)", pr, simulated, want)
			}
		}()
	}
	started.Wait()
	// The leader is parked in fn, so the flight cannot complete; give the
	// joiners a moment to reach the map, then release the leader.
	time.Sleep(100 * time.Millisecond)
	close(gate)
	wg.Wait()
	if got := execs.Load(); got != 1 {
		t.Errorf("fn executed %d times for %d concurrent callers, want 1", got, K)
	}
	if got := leads.Load(); got != 1 {
		t.Errorf("%d callers led, want 1", got)
	}
	if n := g.inFlight(); n != 0 {
		t.Errorf("inFlight after completion = %d, want 0", n)
	}
}

// TestFlightGroupErrorNotSticky: a failed flight must be forgotten, not
// poison its key for later callers.
func TestFlightGroupErrorNotSticky(t *testing.T) {
	var g flightGroup
	boom := errors.New("boom")
	_, _, led, err := g.do(context.Background(), "k", func() (*explore.PointResult, bool, error) {
		return nil, false, boom
	})
	if !led || !errors.Is(err, boom) {
		t.Fatalf("first call: led=%v err=%v, want led=true err=boom", led, err)
	}
	want := &explore.PointResult{Workload: "w"}
	pr, _, led, err := g.do(context.Background(), "k", func() (*explore.PointResult, bool, error) {
		return want, true, nil
	})
	if err != nil || !led || pr != want {
		t.Fatalf("retry after error: pr=%p led=%v err=%v, want fresh leader success", pr, led, err)
	}
}

// TestFlightGroupJoinerCancel: a joiner's cancelled context releases the
// joiner without touching the flight other callers wait on.
func TestFlightGroupJoinerCancel(t *testing.T) {
	var g flightGroup
	gate := make(chan struct{})
	entered := make(chan struct{})
	want := &explore.PointResult{Workload: "w"}

	leaderDone := make(chan error, 1)
	go func() {
		_, _, _, err := g.do(context.Background(), "k", func() (*explore.PointResult, bool, error) {
			close(entered)
			<-gate
			return want, true, nil
		})
		leaderDone <- err
	}()
	<-entered

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, _, err := g.do(ctx, "k", nil); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled joiner: err=%v, want context.Canceled", err)
	}

	close(gate)
	if err := <-leaderDone; err != nil {
		t.Fatalf("leader after joiner cancel: %v", err)
	}
}
