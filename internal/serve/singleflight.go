package serve

import (
	"context"
	"sync"

	"waymemo/internal/explore"
)

// flightGroup deduplicates concurrent work on the same grid-point key: the
// first caller for a key becomes the leader and runs the function, every
// concurrent caller for the same key blocks on the leader's result instead
// of repeating the work. The key is explore.KeyWorkload's content hash, so
// "same key" means "provably the same simulation" — N clients sweeping
// overlapping grids cost one simulation per unique point, however they
// interleave.
//
// Unlike a memoizing cache, a flight is forgotten as soon as it completes:
// the durable copy of the result lives in the Store, and the next request
// for the key finds it there. Failed flights are forgotten too, so one
// transient error never poisons a key.
type flightGroup struct {
	mu sync.Mutex
	m  map[string]*flight
}

// flight is one in-progress computation. done closes when val/simulated/err
// are final.
type flight struct {
	done      chan struct{}
	val       *explore.PointResult
	simulated bool
	err       error
}

// do runs fn for key, deduplicating against concurrent calls. fn returns
// the point, whether it actually simulated (false when a re-probe found the
// store already warm), and an error. do returns the flight's result plus
// led: true for the leader that ran fn, false for a caller that joined an
// existing flight.
//
// Joiners wait under their own ctx, so a cancelled request stops waiting
// without affecting the flight; the leader's fn should run under the
// server's lifetime context, not a request's, so one client disconnecting
// cannot kill a simulation other clients are waiting on.
//
// A leader failure reaches every joiner as a *PointError with Joined set —
// typed and (for anything but daemon shutdown) retryable, because the failed
// flight is forgotten and a resubmitted sweep leads a fresh one. A joiner's
// own ctx expiry stays unwrapped: that failure is the joiner's, not the
// flight's.
func (g *flightGroup) do(ctx context.Context, key string, fn func() (*explore.PointResult, bool, error)) (pr *explore.PointResult, simulated, led bool, err error) {
	g.mu.Lock()
	if g.m == nil {
		g.m = map[string]*flight{}
	}
	if f, ok := g.m[key]; ok {
		g.mu.Unlock()
		select {
		case <-f.done:
			err := f.err
			if err != nil {
				err = &PointError{Key: key, Joined: true, Err: err}
			}
			return f.val, f.simulated, false, err
		case <-ctx.Done():
			return nil, false, false, ctx.Err()
		}
	}
	f := &flight{done: make(chan struct{})}
	g.m[key] = f
	g.mu.Unlock()

	f.val, f.simulated, f.err = fn()
	g.mu.Lock()
	delete(g.m, key)
	g.mu.Unlock()
	close(f.done)
	return f.val, f.simulated, true, f.err
}

// inFlight returns the number of keys currently being computed.
func (g *flightGroup) inFlight() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return len(g.m)
}
