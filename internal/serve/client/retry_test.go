package client

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"waymemo/internal/fault"
	"waymemo/internal/serve"
)

func TestPolicyDelaySchedule(t *testing.T) {
	p := RetryPolicy{MaxAttempts: 8, BaseDelay: 100 * time.Millisecond, MaxDelay: time.Second}
	cases := []struct {
		attempt int
		hint    time.Duration
		want    time.Duration
	}{
		{0, 0, 100 * time.Millisecond},
		{1, 0, 200 * time.Millisecond},
		{2, 0, 400 * time.Millisecond},
		{4, 0, time.Second},                      // capped by MaxDelay
		{40, 0, time.Second},                     // shift overflow guarded
		{0, 3 * time.Second, 3 * time.Second},    // Retry-After beats the schedule
		{4, 500 * time.Millisecond, time.Second}, // but never lowers it
	}
	for _, c := range cases {
		if got := p.delay(c.attempt, c.hint); got != c.want {
			t.Errorf("delay(%d, %v) = %v, want %v", c.attempt, c.hint, got, c.want)
		}
	}
	// Jitter spreads around the base delay but stays within its band.
	j := RetryPolicy{MaxAttempts: 8, BaseDelay: 100 * time.Millisecond, MaxDelay: time.Second, Jitter: 0.5}
	for i := 0; i < 100; i++ {
		d := j.delay(1, 0)
		if d < 100*time.Millisecond || d > 300*time.Millisecond {
			t.Fatalf("jittered delay %v outside [100ms, 300ms]", d)
		}
	}
}

func TestRetryableClassification(t *testing.T) {
	cases := []struct {
		err  error
		want bool
	}{
		{&APIError{Status: http.StatusTooManyRequests}, true},
		{&APIError{Status: http.StatusServiceUnavailable}, true},
		{&APIError{Status: http.StatusInternalServerError}, true},
		{&APIError{Status: http.StatusNotFound}, false},
		{&APIError{Status: http.StatusBadRequest}, false},
		{fmt.Errorf("wrapped: %w", &APIError{Status: 429}), true},
		{context.Canceled, false},
		{context.DeadlineExceeded, false},
		{errors.New("connection reset by peer"), true}, // transport-level
	}
	for _, c := range cases {
		if got := retryable(c.err); got != c.want {
			t.Errorf("retryable(%v) = %v, want %v", c.err, got, c.want)
		}
	}
}

// TestRetryLoop: retryable daemon answers are retried until success,
// non-retryable ones fail fast, and the Retry-After header is parsed into
// the hint the backoff honors.
func TestRetryLoop(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch calls.Add(1) {
		case 1, 2:
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusTooManyRequests)
			fmt.Fprint(w, `{"error":"shed"}`)
		default:
			fmt.Fprint(w, `{"sweeps":7}`)
		}
	}))
	defer ts.Close()

	// MaxDelay under the Retry-After hint would stall the test; keep the
	// hint out of play by not asserting wall time, just attempt counts.
	c := New(ts.URL, WithRetry(RetryPolicy{MaxAttempts: 5, BaseDelay: time.Millisecond, MaxDelay: 2 * time.Millisecond}))
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	st, err := c.Stats(ctx)
	if err != nil {
		t.Fatalf("Stats after retries: %v", err)
	}
	if st.Sweeps != 7 || calls.Load() != 3 {
		t.Fatalf("stats %+v after %d calls, want success on the 3rd", st, calls.Load())
	}
}

func TestRetryStopsOnClientMistake(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusNotFound)
		fmt.Fprint(w, `{"error":"no such sweep"}`)
	}))
	defer ts.Close()

	c := New(ts.URL, WithRetry(DefaultRetryPolicy(5)))
	_, err := c.Status(context.Background(), "nope")
	var ae *APIError
	if !errors.As(err, &ae) || ae.Status != http.StatusNotFound {
		t.Fatalf("err = %v, want 404 APIError", err)
	}
	if ae.Message != "no such sweep" {
		t.Errorf("decoded message %q", ae.Message)
	}
	if calls.Load() != 1 {
		t.Fatalf("404 was retried %d times; client mistakes must fail fast", calls.Load())
	}
}

func TestRetryAfterHeaderParsed(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "3")
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprint(w, `{"error":"draining"}`)
	}))
	defer ts.Close()

	err := New(ts.URL).Ready(context.Background())
	var ae *APIError
	if !errors.As(err, &ae) {
		t.Fatalf("Ready on draining daemon = %v, want APIError", err)
	}
	if ae.RetryAfter != 3*time.Second || !ae.Retryable() {
		t.Fatalf("APIError = %+v, want retryable with 3s hint", ae)
	}
}

// TestRunRidesOutChaos is the client half of the robustness contract, end to
// end over real HTTP: against a daemon dropping connections and erroring
// store I/O, Run's submit-follow-resubmit loop converges to a completed
// sweep whose grid matches a fault-free daemon's.
func TestRunRidesOutChaos(t *testing.T) {
	req := serve.SweepRequest{
		Sets:       []int{64, 128},
		TagEntries: []int{1},
		SetEntries: []int{4},
		Workloads:  []string{"synth:hotloop,fp=1KiB,n=2048"},
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	refSrv, err := serve.New(serve.Config{StoreDir: t.TempDir(), Parallelism: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer refSrv.Close()
	refTS := httptest.NewServer(refSrv)
	defer refTS.Close()
	ref := New(refTS.URL)
	refSt, err := ref.Run(ctx, req, nil)
	if err != nil {
		t.Fatal(err)
	}
	refRes, err := ref.Result(ctx, refSt.ID)
	if err != nil {
		t.Fatal(err)
	}

	inj, err := fault.NewFromString("seed=11;http:drop:0.25;io:err:0.15;io.result.write:tornwrite:0.3")
	if err != nil {
		t.Fatal(err)
	}
	srv, err := serve.New(serve.Config{StoreDir: t.TempDir(), Parallelism: 1, Faults: inj})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	c := New(ts.URL, WithRetry(RetryPolicy{MaxAttempts: 50, BaseDelay: time.Millisecond, MaxDelay: 20 * time.Millisecond, Jitter: 0.5}))
	st, err := c.Run(ctx, req, nil)
	if err != nil {
		t.Fatalf("Run under chaos: %v (faults: %v)", err, inj.Counts())
	}
	if st.State != "done" {
		t.Fatalf("final state %q: %s", st.State, st.Error)
	}

	res, err := c.Result(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != len(refRes.Points) {
		t.Fatalf("chaos grid has %d points, reference %d", len(res.Points), len(refRes.Points))
	}
	for i := range res.Points {
		a, b := res.Points[i], refRes.Points[i]
		if a.Cycles != b.Cycles || a.Instrs != b.Instrs || len(a.Techs) != len(b.Techs) {
			t.Fatalf("point %d differs under chaos: %+v vs %+v", i, a, b)
		}
		for j := range a.Techs {
			if a.Techs[j] != b.Techs[j] {
				t.Fatalf("point %d tech %d differs under chaos", i, j)
			}
		}
	}
	if inj.Total() == 0 {
		t.Error("chaos run injected nothing; the test proved nothing")
	}
}

// TestEventsReconnectDedupe: with connection drops only (a drop aborts the
// request before the handler runs, so exactly one job exists end to end),
// the SSE follower reconnects through the drops and still delivers each
// event exactly once — the daemon replays its full log on reattach, the
// client skips already-seen sequence numbers.
func TestEventsReconnectDedupe(t *testing.T) {
	inj, err := fault.NewFromString("seed=21;http:drop:0.5")
	if err != nil {
		t.Fatal(err)
	}
	srv, err := serve.New(serve.Config{StoreDir: t.TempDir(), Parallelism: 2, Faults: inj})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	c := New(ts.URL, WithRetry(RetryPolicy{MaxAttempts: 100, BaseDelay: time.Millisecond, MaxDelay: 10 * time.Millisecond}))
	sub, err := c.Submit(ctx, serve.SweepRequest{
		Sets:       []int{64, 128},
		TagEntries: []int{1},
		SetEntries: []int{4},
		Workloads:  []string{"synth:hotloop,fp=1KiB,n=2048"},
	})
	if err != nil {
		t.Fatalf("Submit through drops: %v", err)
	}

	seen := map[int]int{} // seq -> deliveries; Events invokes fn from one goroutine
	st, err := c.Events(ctx, sub.ID, func(ev serve.Event) { seen[ev.Seq]++ })
	if err != nil {
		t.Fatalf("Events through drops: %v (faults: %v)", err, inj.Counts())
	}
	if st.State != "done" {
		t.Fatalf("final state %q: %s", st.State, st.Error)
	}
	// 2 grid points x (start + done) = 4 events, each exactly once.
	if len(seen) != 4 {
		t.Fatalf("saw %d distinct events, want 4: %v", len(seen), seen)
	}
	for seq, n := range seen {
		if n != 1 {
			t.Errorf("event seq %d delivered %d times, want exactly once", seq, n)
		}
	}
	if inj.Counts()["http:drop"] == 0 {
		t.Error("no connections dropped; the test proved nothing")
	}
}
