package client

import (
	"context"
	"errors"
	"fmt"
	"math/rand/v2"
	"net/http"
	"time"
)

// RetryPolicy configures the client's retry loop: capped exponential
// backoff with jitter, always deferring to an explicit Retry-After from the
// daemon. The zero policy (MaxAttempts 0 or 1) disables retries entirely —
// every call is single-attempt, exactly the pre-retry client.
type RetryPolicy struct {
	// MaxAttempts is the total number of tries per operation (first
	// attempt included); values below 2 mean no retrying.
	MaxAttempts int
	// BaseDelay is the first backoff (default 100ms); each further attempt
	// doubles it up to MaxDelay (default 5s).
	BaseDelay time.Duration
	MaxDelay  time.Duration
	// Jitter spreads each delay uniformly over ±Jitter of itself (default
	// policy uses 0.5), so a shed stampede does not re-stampede in sync.
	Jitter float64
}

// DefaultRetryPolicy is the recommended policy for n total attempts.
func DefaultRetryPolicy(n int) RetryPolicy {
	return RetryPolicy{MaxAttempts: n, BaseDelay: 100 * time.Millisecond, MaxDelay: 5 * time.Second, Jitter: 0.5}
}

func (p RetryPolicy) attempts() int {
	if p.MaxAttempts < 1 {
		return 1
	}
	return p.MaxAttempts
}

// delay computes the backoff before retry number attempt (0-based), taking
// the larger of the exponential schedule and the daemon's Retry-After hint.
func (p RetryPolicy) delay(attempt int, hint time.Duration) time.Duration {
	base := p.BaseDelay
	if base <= 0 {
		base = 100 * time.Millisecond
	}
	cap := p.MaxDelay
	if cap <= 0 {
		cap = 5 * time.Second
	}
	d := cap
	if attempt < 20 {
		if exp := base << attempt; exp < cap {
			d = exp
		}
	}
	if hint > d {
		d = hint
	}
	if p.Jitter > 0 {
		d = time.Duration(float64(d) * (1 + p.Jitter*(2*rand.Float64()-1)))
	}
	if d < time.Millisecond {
		d = time.Millisecond
	}
	return d
}

// APIError is a non-2xx daemon response: the status, the decoded error
// message, and any Retry-After the daemon attached (load shedding and
// draining always carry one).
type APIError struct {
	Status     int
	Message    string
	RetryAfter time.Duration
}

func (e *APIError) Error() string {
	if e.Message != "" {
		return fmt.Sprintf("serve: %d: %s", e.Status, e.Message)
	}
	return fmt.Sprintf("serve: status %d", e.Status)
}

// Retryable reports whether the daemon's answer invites another try: 429
// (shed) and every 5xx (draining, overload, transient server failure) do;
// 4xx client mistakes do not.
func (e *APIError) Retryable() bool {
	return e.Status == http.StatusTooManyRequests || e.Status >= 500
}

// retryable classifies an error for the retry loop. The caller's own
// context ending is never retryable; a typed daemon answer decides for
// itself; everything left is transport-level (connection reset, dropped
// mid-body, truncated stream) and retrying is the whole point.
func retryable(err error) bool {
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	var ae *APIError
	if errors.As(err, &ae) {
		return ae.Retryable()
	}
	return true
}

// retryAfterHint extracts the daemon's Retry-After from an error, 0 if none.
func retryAfterHint(err error) time.Duration {
	var ae *APIError
	if errors.As(err, &ae) {
		return ae.RetryAfter
	}
	return 0
}

// sleepCtx sleeps for d or until ctx ends.
func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// retry runs op under the client's policy: attempts are separated by
// backoff (honoring Retry-After), and the loop stops early on success, a
// non-retryable error, or the caller's context ending. The last attempt's
// error is returned.
func (c *Client) retry(ctx context.Context, op func() error) error {
	var err error
	var hint time.Duration
	for attempt := 0; attempt < c.policy.attempts(); attempt++ {
		if attempt > 0 {
			if sleepCtx(ctx, c.policy.delay(attempt-1, hint)) != nil {
				return err
			}
		}
		err = op()
		if err == nil || !retryable(err) || ctx.Err() != nil {
			return err
		}
		hint = retryAfterHint(err)
	}
	return err
}
