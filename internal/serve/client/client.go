// Package client is the typed HTTP client for the wmx serve daemon: it
// submits sweeps, follows their server-sent-event progress streams, and
// fetches the warm analytics — one small method per API endpoint, sharing
// the wire types with internal/serve so client and daemon cannot drift.
//
// With WithRetry, every call also rides a retry loop built for the daemon's
// degradation ladder: capped exponential backoff with jitter, Retry-After
// honored verbatim (load shedding and drains always send one), transport
// failures and 5xx retried, client mistakes (4xx) not. Run is the
// whole-sweep form — submit, follow, resubmit on retryable failure — and is
// safe to hammer because sweeps are content-keyed and idempotent: a retried
// sweep redoes only the points that never completed.
package client

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"waymemo/internal/explore"
	"waymemo/internal/serve"
)

// Client talks to one daemon. The zero value is not usable; construct with
// New.
type Client struct {
	base   string
	hc     *http.Client
	policy RetryPolicy
}

// Option configures a Client at construction.
type Option func(*Client)

// WithRetry enables the retry loop under the given policy.
func WithRetry(p RetryPolicy) Option {
	return func(c *Client) { c.policy = p }
}

// New returns a client for the daemon at base ("http://127.0.0.1:8077").
// The underlying http.Client carries no timeout — event streams are
// long-lived — so pass a context to every call instead. Without WithRetry
// every call is single-attempt.
func New(base string, opts ...Option) *Client {
	c := &Client{base: strings.TrimRight(base, "/"), hc: &http.Client{}}
	for _, o := range opts {
		o(c)
	}
	return c
}

// apiError decodes a non-2xx response into an *APIError, capturing any
// Retry-After the daemon attached.
func apiError(resp *http.Response) error {
	ae := &APIError{Status: resp.StatusCode}
	var e struct {
		Error string `json:"error"`
	}
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
	if json.Unmarshal(body, &e) == nil && e.Error != "" {
		ae.Message = e.Error
	} else {
		ae.Message = strings.TrimSpace(string(body))
	}
	if secs, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && secs > 0 {
		ae.RetryAfter = time.Duration(secs) * time.Second
	}
	return ae
}

// getJSON fetches base+path and decodes the body into out, retrying under
// the client's policy.
func (c *Client) getJSON(ctx context.Context, path string, out any) error {
	return c.retry(ctx, func() error { return c.getJSONOnce(ctx, path, out) })
}

func (c *Client) getJSONOnce(ctx context.Context, path string, out any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+path, nil)
	if err != nil {
		return err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return apiError(resp)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// Health checks daemon liveness.
func (c *Client) Health(ctx context.Context) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/healthz", nil)
	if err != nil {
		return err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("serve: health: %s", resp.Status)
	}
	return nil
}

// Ready checks the readiness probe: nil while the daemon accepts sweeps, an
// *APIError with Retry-After once it is draining. Never retried — a probe
// reports, it does not wait.
func (c *Client) Ready(ctx context.Context) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/readyz", nil)
	if err != nil {
		return err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return apiError(resp)
	}
	return nil
}

// Submit posts a sweep request and returns its acceptance, retrying under
// the client's policy — in particular backing off and resubmitting when the
// daemon sheds the sweep with 429 + Retry-After.
func (c *Client) Submit(ctx context.Context, sr serve.SweepRequest) (serve.SubmitResponse, error) {
	var sub serve.SubmitResponse
	err := c.retry(ctx, func() error {
		var err error
		sub, err = c.submitOnce(ctx, sr)
		return err
	})
	return sub, err
}

func (c *Client) submitOnce(ctx context.Context, sr serve.SweepRequest) (serve.SubmitResponse, error) {
	var sub serve.SubmitResponse
	blob, err := json.Marshal(sr)
	if err != nil {
		return sub, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+"/v1/sweeps", bytes.NewReader(blob))
	if err != nil {
		return sub, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.hc.Do(req)
	if err != nil {
		return sub, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		return sub, apiError(resp)
	}
	return sub, json.NewDecoder(resp.Body).Decode(&sub)
}

// Status fetches one sweep's current state and metrics.
func (c *Client) Status(ctx context.Context, id string) (serve.JobStatus, error) {
	var st serve.JobStatus
	err := c.getJSON(ctx, "/v1/sweeps/"+id, &st)
	return st, err
}

// followState is the SSE follower's cursor across reconnects: the epoch of
// the event log it is reading and the last sequence delivered within it.
// The daemon rebuilds a job's event log — under the same content-derived
// sweep ID — when a crashed daemon resumes the sweep from its journal or a
// failed run is replaced by a resubmission; each rebuild carries a higher
// epoch. A follower that reconnects into a higher epoch must reset its
// sequence cursor (the new log replays from seq 0 and is NOT a replay of
// what it already consumed), and events from an older epoch than the
// cursor's are stragglers to drop.
type followState struct {
	epoch, seq int
}

func newFollowState() followState { return followState{seq: -1} }

// skip reports whether ev was already delivered, advancing the cursor for
// fresh events.
func (st *followState) skip(ev serve.Event) bool {
	if ev.Epoch > st.epoch {
		st.epoch, st.seq = ev.Epoch, -1
	}
	if ev.Epoch < st.epoch || ev.Seq <= st.seq {
		return true
	}
	st.seq = ev.Seq
	return false
}

// Events follows the sweep's SSE stream, invoking fn (if non-nil) for every
// point event, and returns the terminal status carried by the stream's
// "done" event. It blocks until the sweep finishes or ctx ends. Under a
// retry policy a dropped stream reconnects with backoff; the daemon replays
// the job's full event log on reattach, and events already delivered are
// skipped by (epoch, sequence), so fn sees each event of a given epoch at
// most once — including across a daemon restart that rebuilt the log from
// the sweep journal at a higher epoch.
func (c *Client) Events(ctx context.Context, id string, fn func(serve.Event)) (serve.JobStatus, error) {
	var final serve.JobStatus
	st := newFollowState()
	err := c.retry(ctx, func() error {
		var err error
		final, err = c.eventsOnce(ctx, id, &st, fn)
		return err
	})
	return final, err
}

// eventsOnce is one SSE attach: it streams events the cursor has not seen
// to fn (advancing the cursor), so reconnects deliver each event at most
// once per epoch.
func (c *Client) eventsOnce(ctx context.Context, id string, st *followState, fn func(serve.Event)) (serve.JobStatus, error) {
	var final serve.JobStatus
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/v1/sweeps/"+id+"/events", nil)
	if err != nil {
		return final, err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return final, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return final, apiError(resp)
	}
	var event string
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			data := []byte(strings.TrimPrefix(line, "data: "))
			switch event {
			case "point":
				var ev serve.Event
				if err := json.Unmarshal(data, &ev); err != nil {
					return final, fmt.Errorf("serve: bad point event: %w", err)
				}
				if st.skip(ev) {
					continue // replayed on reconnect; already delivered
				}
				if fn != nil {
					fn(ev)
				}
			case "done":
				return final, json.Unmarshal(data, &final)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return final, err
	}
	return final, fmt.Errorf("serve: event stream for %s ended without done", id)
}

// Wait blocks until the sweep finishes (via its event stream) and returns
// the terminal status. A sweep that failed server-side is returned as an
// error.
func (c *Client) Wait(ctx context.Context, id string) (serve.JobStatus, error) {
	st, err := c.Events(ctx, id, nil)
	if err != nil {
		return st, err
	}
	if st.State != "done" {
		return st, fmt.Errorf("serve: sweep %s %s: %s", id, st.State, st.Error)
	}
	return st, nil
}

// Run drives one sweep end to end under the retry policy: submit, follow
// its events (fn as in Events), and — when the daemon sheds the sweep, the
// stream drops and the job is gone on reattach, or the sweep itself fails
// retryably (a dead singleflight leader, an injected I/O fault) — back off
// and resubmit. Resubmission is safe because grid points are content-keyed:
// completed points answer from the store and only the never-finished rest
// re-simulates. Each inner call is single-attempt, so the policy's
// MaxAttempts bounds the total tries rather than multiplying through
// nested loops. The returned status is "done" on success; otherwise the
// last attempt's failure comes back as the error.
//
// Run also survives a daemon restart mid-sweep: sweep IDs are content
// hashes, so after a reconnect the follower reattaches to the journal-
// resumed job under the same ID (its rebuilt event log arrives at a higher
// epoch and the cursor resets), and if the restarted daemon did not resume
// the sweep, the 404 path resubmits — idempotently landing on the same ID.
func (c *Client) Run(ctx context.Context, sr serve.SweepRequest, fn func(serve.Event)) (serve.JobStatus, error) {
	var st serve.JobStatus
	var err error
	var hint time.Duration
	id, cur := "", newFollowState()
	for attempt := 0; attempt < c.policy.attempts(); attempt++ {
		if attempt > 0 {
			if sleepCtx(ctx, c.policy.delay(attempt-1, hint)) != nil {
				return st, err
			}
			hint = 0
		}
		if id == "" {
			var sub serve.SubmitResponse
			sub, err = c.submitOnce(ctx, sr)
			if err != nil {
				if retryable(err) && ctx.Err() == nil {
					hint = retryAfterHint(err)
					continue
				}
				return st, err
			}
			id = sub.ID
		}
		st, err = c.eventsOnce(ctx, id, &cur, fn)
		if err != nil {
			var ae *APIError
			if errors.As(err, &ae) && ae.Status == http.StatusNotFound {
				// The daemon forgot (or lost) the job; start over. The
				// epoch cursor carries across, so a resubmission that lands
				// on the same ID (idempotency) replays nothing stale.
				id = ""
			}
			if retryable(err) && ctx.Err() == nil {
				hint = retryAfterHint(err)
				continue
			}
			return st, err
		}
		if st.State == "done" {
			return st, nil
		}
		err = fmt.Errorf("serve: sweep %s %s: %s", id, st.State, st.Error)
		if st.Retryable && ctx.Err() == nil {
			// A failed sweep is resubmitted — the replacement runs under
			// the same content-derived ID at a higher epoch; its flights
			// were forgotten, its completed points are in the store.
			id = ""
			hint = time.Duration(st.RetryAfterMS) * time.Millisecond
			continue
		}
		return st, err
	}
	return st, err
}

// Result fetches a finished sweep's full grid.
func (c *Client) Result(ctx context.Context, id string) (serve.ResultResponse, error) {
	var res serve.ResultResponse
	err := c.getJSON(ctx, "/v1/sweeps/"+id+"/result", &res)
	return res, err
}

// Candidates fetches the per-(geometry, technique) averages.
func (c *Client) Candidates(ctx context.Context, id string) ([]explore.Candidate, error) {
	var out []explore.Candidate
	err := c.getJSON(ctx, "/v1/sweeps/"+id+"/candidates", &out)
	return out, err
}

// Pareto fetches the power/hit-rate frontier.
func (c *Client) Pareto(ctx context.Context, id string) ([]explore.Candidate, error) {
	var out []explore.Candidate
	err := c.getJSON(ctx, "/v1/sweeps/"+id+"/pareto", &out)
	return out, err
}

// Marginals fetches the per-axis marginal averages.
func (c *Client) Marginals(ctx context.Context, id string) ([]explore.Marginal, error) {
	var out []explore.Marginal
	err := c.getJSON(ctx, "/v1/sweeps/"+id+"/marginals", &out)
	return out, err
}

// Optimum fetches the measured power optimum plus the paper's pick.
func (c *Client) Optimum(ctx context.Context, id string) (serve.OptimumResponse, error) {
	var out serve.OptimumResponse
	err := c.getJSON(ctx, "/v1/sweeps/"+id+"/optimum", &out)
	return out, err
}

// Stats fetches the daemon-wide counters.
func (c *Client) Stats(ctx context.Context) (serve.ServerStats, error) {
	var out serve.ServerStats
	err := c.getJSON(ctx, "/v1/stats", &out)
	return out, err
}
