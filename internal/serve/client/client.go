// Package client is the typed HTTP client for the wmx serve daemon: it
// submits sweeps, follows their server-sent-event progress streams, and
// fetches the warm analytics — one small method per API endpoint, sharing
// the wire types with internal/serve so client and daemon cannot drift.
package client

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"

	"waymemo/internal/explore"
	"waymemo/internal/serve"
)

// Client talks to one daemon. The zero value is not usable; construct with
// New.
type Client struct {
	base string
	hc   *http.Client
}

// New returns a client for the daemon at base ("http://127.0.0.1:8077").
// The underlying http.Client carries no timeout — event streams are
// long-lived — so pass a context to every call instead.
func New(base string) *Client {
	return &Client{base: strings.TrimRight(base, "/"), hc: &http.Client{}}
}

// apiError decodes the daemon's JSON error body into a plain error.
func apiError(resp *http.Response) error {
	var e struct {
		Error string `json:"error"`
	}
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
	if json.Unmarshal(body, &e) == nil && e.Error != "" {
		return fmt.Errorf("serve: %s: %s", resp.Status, e.Error)
	}
	return fmt.Errorf("serve: %s", resp.Status)
}

// getJSON fetches base+path and decodes the body into out.
func (c *Client) getJSON(ctx context.Context, path string, out any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+path, nil)
	if err != nil {
		return err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return apiError(resp)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// Health checks daemon liveness.
func (c *Client) Health(ctx context.Context) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/healthz", nil)
	if err != nil {
		return err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("serve: health: %s", resp.Status)
	}
	return nil
}

// Submit posts a sweep request and returns its acceptance.
func (c *Client) Submit(ctx context.Context, sr serve.SweepRequest) (serve.SubmitResponse, error) {
	var sub serve.SubmitResponse
	blob, err := json.Marshal(sr)
	if err != nil {
		return sub, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+"/v1/sweeps", bytes.NewReader(blob))
	if err != nil {
		return sub, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.hc.Do(req)
	if err != nil {
		return sub, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		return sub, apiError(resp)
	}
	return sub, json.NewDecoder(resp.Body).Decode(&sub)
}

// Status fetches one sweep's current state and metrics.
func (c *Client) Status(ctx context.Context, id string) (serve.JobStatus, error) {
	var st serve.JobStatus
	err := c.getJSON(ctx, "/v1/sweeps/"+id, &st)
	return st, err
}

// Events follows the sweep's SSE stream, invoking fn (if non-nil) for every
// point event, and returns the terminal status carried by the stream's
// "done" event. It blocks until the sweep finishes or ctx ends.
func (c *Client) Events(ctx context.Context, id string, fn func(serve.Event)) (serve.JobStatus, error) {
	var final serve.JobStatus
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/v1/sweeps/"+id+"/events", nil)
	if err != nil {
		return final, err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return final, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return final, apiError(resp)
	}
	var event string
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			data := []byte(strings.TrimPrefix(line, "data: "))
			switch event {
			case "point":
				if fn != nil {
					var ev serve.Event
					if err := json.Unmarshal(data, &ev); err != nil {
						return final, fmt.Errorf("serve: bad point event: %w", err)
					}
					fn(ev)
				}
			case "done":
				return final, json.Unmarshal(data, &final)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return final, err
	}
	return final, fmt.Errorf("serve: event stream for %s ended without done", id)
}

// Wait blocks until the sweep finishes (via its event stream) and returns
// the terminal status. A sweep that failed server-side is returned as an
// error.
func (c *Client) Wait(ctx context.Context, id string) (serve.JobStatus, error) {
	st, err := c.Events(ctx, id, nil)
	if err != nil {
		return st, err
	}
	if st.State != "done" {
		return st, fmt.Errorf("serve: sweep %s %s: %s", id, st.State, st.Error)
	}
	return st, nil
}

// Result fetches a finished sweep's full grid.
func (c *Client) Result(ctx context.Context, id string) (serve.ResultResponse, error) {
	var res serve.ResultResponse
	err := c.getJSON(ctx, "/v1/sweeps/"+id+"/result", &res)
	return res, err
}

// Candidates fetches the per-(geometry, technique) averages.
func (c *Client) Candidates(ctx context.Context, id string) ([]explore.Candidate, error) {
	var out []explore.Candidate
	err := c.getJSON(ctx, "/v1/sweeps/"+id+"/candidates", &out)
	return out, err
}

// Pareto fetches the power/hit-rate frontier.
func (c *Client) Pareto(ctx context.Context, id string) ([]explore.Candidate, error) {
	var out []explore.Candidate
	err := c.getJSON(ctx, "/v1/sweeps/"+id+"/pareto", &out)
	return out, err
}

// Marginals fetches the per-axis marginal averages.
func (c *Client) Marginals(ctx context.Context, id string) ([]explore.Marginal, error) {
	var out []explore.Marginal
	err := c.getJSON(ctx, "/v1/sweeps/"+id+"/marginals", &out)
	return out, err
}

// Optimum fetches the measured power optimum plus the paper's pick.
func (c *Client) Optimum(ctx context.Context, id string) (serve.OptimumResponse, error) {
	var out serve.OptimumResponse
	err := c.getJSON(ctx, "/v1/sweeps/"+id+"/optimum", &out)
	return out, err
}

// Stats fetches the daemon-wide counters.
func (c *Client) Stats(ctx context.Context) (serve.ServerStats, error) {
	var out serve.ServerStats
	err := c.getJSON(ctx, "/v1/stats", &out)
	return out, err
}
