package client

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"waymemo/internal/serve"
)

// TestBackoffSleepHonorsCancel: a backoff in progress must end the moment
// the caller's context does — a client told to stop cannot sit out a 30s
// Retry-After first.
func TestBackoffSleepHonorsCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	if err := sleepCtx(ctx, 30*time.Second); !errors.Is(err, context.Canceled) {
		t.Fatalf("sleepCtx = %v, want context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("sleepCtx held the backoff %v past cancellation", elapsed)
	}

	// End to end: the retry loop parked on a long Retry-After hint returns
	// promptly when cancelled mid-backoff, with the last attempt's error.
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.Header().Set("Retry-After", "30")
		w.WriteHeader(http.StatusTooManyRequests)
		fmt.Fprint(w, `{"error":"shed"}`)
	}))
	defer ts.Close()
	c := New(ts.URL, WithRetry(RetryPolicy{MaxAttempts: 10, BaseDelay: time.Millisecond, MaxDelay: 2 * time.Millisecond}))
	rctx, rcancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		rcancel()
	}()
	start = time.Now()
	_, err := c.Stats(rctx)
	var ae *APIError
	if !errors.As(err, &ae) || ae.Status != http.StatusTooManyRequests {
		t.Fatalf("cancelled retry loop returned %v, want the last 429", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("retry loop kept backing off %v past cancellation", elapsed)
	}
	if calls.Load() != 1 {
		t.Fatalf("daemon called %d times during one 30s backoff window, want 1", calls.Load())
	}
}

// sseEvent writes one SSE frame.
func sseEvent(w http.ResponseWriter, event string, v any) {
	blob, _ := json.Marshal(v)
	fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, blob)
}

// TestEventsEpochResetAfterRestart: the follower's reconnect-after-restart
// contract. The first attach streams a pre-crash daemon's epoch-1 log and
// dies mid-stream; the reattach lands on a restarted daemon whose journal-
// resumed job rebuilt its event log at epoch 2. The higher epoch must reset
// the sequence cursor: every epoch-2 event is delivered — including the low
// sequence numbers the cursor had already consumed at epoch 1 — and nothing
// is delivered twice within an epoch.
func TestEventsEpochResetAfterRestart(t *testing.T) {
	var attempts atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/event-stream")
		if attempts.Add(1) == 1 {
			// Pre-crash daemon: two epoch-1 events, then the connection dies
			// (the daemon was SIGKILLed mid-sweep).
			for seq := 0; seq < 2; seq++ {
				sseEvent(w, "point", serve.Event{Seq: seq, Epoch: 1, Index: seq, Total: 4, Status: "start"})
			}
			w.(http.Flusher).Flush()
			panic(http.ErrAbortHandler)
		}
		// Restarted daemon: the resumed job's rebuilt log at epoch 2 replays
		// from sequence 0 and runs to completion.
		for seq := 0; seq < 4; seq++ {
			sseEvent(w, "point", serve.Event{Seq: seq, Epoch: 2, Index: seq, Total: 4, Status: "done"})
		}
		sseEvent(w, "done", serve.JobStatus{ID: "sw-x", State: "done", Epoch: 2})
	}))
	defer ts.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	c := New(ts.URL, WithRetry(RetryPolicy{MaxAttempts: 5, BaseDelay: time.Millisecond, MaxDelay: 2 * time.Millisecond}))
	var got []string
	st, err := c.Events(ctx, "sw-x", func(ev serve.Event) {
		got = append(got, fmt.Sprintf("e%d/s%d", ev.Epoch, ev.Seq))
	})
	if err != nil {
		t.Fatalf("Events across the restart: %v", err)
	}
	if st.State != "done" || st.Epoch != 2 {
		t.Fatalf("terminal status = %+v, want done at epoch 2", st)
	}
	want := []string{"e1/s0", "e1/s1", "e2/s0", "e2/s1", "e2/s2", "e2/s3"}
	if len(got) != len(want) {
		t.Fatalf("delivered %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("delivery %d = %s, want %s (full: %v)", i, got[i], want[i], got)
		}
	}
	if attempts.Load() != 2 {
		t.Fatalf("follower attached %d times, want 2", attempts.Load())
	}
}

// TestFollowStateCursor pins the cursor algebra directly: in-epoch dedupe,
// higher-epoch reset, older-epoch stragglers dropped.
func TestFollowStateCursor(t *testing.T) {
	st := newFollowState()
	steps := []struct {
		epoch, seq int
		skip       bool
	}{
		{0, 0, false}, // legacy daemon without epochs: plain sequence dedupe
		{0, 0, true},
		{0, 1, false},
		{1, 0, false}, // restart: higher epoch resets the cursor
		{1, 1, false},
		{1, 1, true},  // replayed within the epoch
		{0, 5, true},  // straggler from the dead epoch
		{2, 0, false}, // second restart
	}
	for i, s := range steps {
		if got := st.skip(serve.Event{Epoch: s.epoch, Seq: s.seq}); got != s.skip {
			t.Fatalf("step %d (epoch %d seq %d): skip = %v, want %v", i, s.epoch, s.seq, got, s.skip)
		}
	}
}
