// Package serve is the sweep-as-a-service layer: a long-running HTTP/JSON
// daemon that accepts design-space sweep requests (POST /v1/sweeps),
// executes them on the explore engine, and shares everything shareable
// across clients — a singleflight layer deduplicates identical in-flight
// grid points by their explore.KeyWorkload content hash, one
// content-addressed result + trace store (with a byte budget and LRU
// eviction) serves every client, and one trace cache means each workload
// executes at most once per (workload, packet) however many sweeps touch
// it. Progress streams per grid point over server-sent events
// (GET /v1/sweeps/{id}/events), and the warm analytics endpoints
// (candidates, pareto, marginals, optimum) answer from completed grids
// without simulating at all.
//
// The API surface:
//
//	POST /v1/sweeps                   submit a SweepRequest -> SubmitResponse
//	GET  /v1/sweeps/{id}              JobStatus
//	GET  /v1/sweeps/{id}/events      SSE: Event per grid point, then "done"
//	GET  /v1/sweeps/{id}/result      ResultResponse (full grid)
//	GET  /v1/sweeps/{id}/candidates  []explore.Candidate
//	GET  /v1/sweeps/{id}/pareto      []explore.Candidate (the frontier)
//	GET  /v1/sweeps/{id}/marginals   []explore.Marginal
//	GET  /v1/sweeps/{id}/optimum     OptimumResponse
//	GET  /v1/stats                    ServerStats
//	GET  /healthz                     liveness
//	GET  /readyz                      readiness (503 + Retry-After while draining)
//
// The daemon is built to degrade, never corrupt: an admission controller
// sheds whole sweeps with 429 + Retry-After when the unfinished-point
// backlog would exceed its bound, per-request deadlines bound every
// non-streaming handler, failed grid points surface as typed retryable
// errors (PointError / OverloadError) that internal/serve/client backs off
// and retries on, and the store opens with a crash-recovery sweep that
// quarantines torn entries instead of serving or tripping on them. The
// internal/fault layer (Config.Faults, `wmx serve -fault-spec`) injects
// I/O and HTTP failures at every one of those seams to prove the contract:
// under any fault, completed results are bit-identical to a fault-free run.
//
// Sweeps themselves are crash-durable: IDs are content hashes of the
// normalized request (resubmission is idempotent), every acceptance and
// per-point completion is logged to a CRC-framed write-ahead journal under
// the store dir, and boot replays the journal to resurrect non-terminal
// sweeps — completed points come back as store hits, only the remainder
// simulates (see journal.go). A panicking simulation is recovered into a
// retryable point failure, and Config.PointDeadline fails-retryable any
// point stuck past its watchdog instead of pinning a semaphore slot.
//
// `wmx serve` wraps a Server in an http.Server; internal/serve/client is
// the typed client and tools/loadgen the load harness that proves N
// overlapping sweeps cost one simulation per unique grid point.
package serve

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"waymemo/internal/explore"
	"waymemo/internal/fault"
	"waymemo/internal/pool"
	"waymemo/internal/suite"
)

// Config configures a Server.
type Config struct {
	// StoreDir roots the shared store (results + trace spills); required.
	StoreDir string
	// StoreBudget caps the store's combined byte footprint (0 =
	// unlimited); see Store.
	StoreBudget int64
	// Parallelism bounds concurrent simulations across ALL sweeps (0 =
	// GOMAXPROCS). Store hits and dedup joins are not counted against it.
	Parallelism int
	// MaxJobs caps how many finished jobs are kept queryable (0 = 4096);
	// the oldest finished jobs are forgotten first.
	MaxJobs int
	// MaxBacklog caps the unfinished admitted grid points across all
	// running sweeps (0 = 4096, negative = unlimited). A sweep that would
	// push the backlog past the cap is shed with an OverloadError (HTTP
	// 429 + Retry-After) before any work happens — except when the backlog
	// is empty, where any sweep is admitted so grids larger than the cap
	// remain possible.
	MaxBacklog int
	// RequestTimeout bounds each non-streaming HTTP request's context
	// (0 = 60s, negative = no deadline). SSE streams and the probes are
	// exempt.
	RequestTimeout time.Duration
	// PointDeadline is the flight watchdog: a single grid-point simulation
	// running longer than this fails with a retryable PointError instead of
	// holding its semaphore slot forever (0 = 5m, negative = no watchdog).
	PointDeadline time.Duration
	// Faults, when non-nil, routes store I/O, trace spills and HTTP
	// handling through the fault-injection layer. Nil — the default — is
	// completely off: the file shims pass straight through to the os
	// package and no HTTP wrapper is installed.
	Faults *fault.Injector
}

// Server executes sweeps and serves the HTTP API. Create with New, attach
// to an http.Server (it implements http.Handler), and Close on shutdown.
type Server struct {
	cfg     Config
	store   *Store
	traces  *suite.TraceCache
	flights flightGroup

	baseCtx context.Context
	stop    context.CancelFunc
	simSem  chan struct{}
	mux     *http.ServeMux
	handler http.Handler // mux + deadline middleware + fault middleware

	journal *journal

	jobsMu sync.Mutex
	jobs   map[string]*Job
	order  []string // creation order, for MaxJobs forgetting

	sweeps, dedupSweeps, requestedPoints           atomic.Int64
	points, storeHits, dedupJoins, sims            atomic.Int64
	resumedSweeps, resumedSkipped, panicsRecovered atomic.Int64

	// backlog is the admission controller's gauge: grid points admitted
	// but not yet finished, across all running sweeps. shed counts sweeps
	// rejected over it. draining flips when BeginDrain starts shutdown.
	backlog, shed atomic.Int64
	draining      atomic.Bool
}

// New opens the store (running its crash-recovery sweep first, so the
// journal replay that follows probes an already-sane store), replays the
// sweep journal, and builds a ready-to-serve Server with every
// non-terminal journaled sweep already running again.
func New(cfg Config) (*Server, error) {
	fs := fault.FS{Inj: cfg.Faults}
	store, err := OpenStoreFS(cfg.StoreDir, cfg.StoreBudget, fs)
	if err != nil {
		return nil, err
	}
	traces, err := suite.NewDirTraceCacheFS(store.TraceDir(), fs)
	if err != nil {
		return nil, err
	}
	jn, err := openJournal(cfg.StoreDir, fs)
	if err != nil {
		return nil, err
	}
	par := cfg.Parallelism
	if par <= 0 {
		par = runtime.GOMAXPROCS(0)
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:     cfg,
		store:   store,
		traces:  traces,
		journal: jn,
		baseCtx: ctx,
		stop:    cancel,
		simSem:  make(chan struct{}, par),
		jobs:    map[string]*Job{},
	}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("ok\n"))
	})
	mux.HandleFunc("GET /readyz", s.handleReady)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	mux.HandleFunc("POST /v1/sweeps", s.handleSubmit)
	mux.HandleFunc("GET /v1/sweeps/{id}", s.handleStatus)
	mux.HandleFunc("GET /v1/sweeps/{id}/events", s.handleEvents)
	mux.HandleFunc("GET /v1/sweeps/{id}/result", s.handleResult)
	mux.HandleFunc("GET /v1/sweeps/{id}/candidates", s.analysisHandler(func(g *explore.Grid) any {
		return g.Candidates()
	}))
	mux.HandleFunc("GET /v1/sweeps/{id}/pareto", s.analysisHandler(func(g *explore.Grid) any {
		return explore.Pareto(g.Candidates())
	}))
	mux.HandleFunc("GET /v1/sweeps/{id}/marginals", s.analysisHandler(func(g *explore.Grid) any {
		return g.Marginals()
	}))
	mux.HandleFunc("GET /v1/sweeps/{id}/optimum", s.analysisHandler(func(g *explore.Grid) any {
		best, _ := explore.Optimum(g.Candidates())
		tags, sets := explore.PaperPick(g.Space.Domain)
		return OptimumResponse{Optimum: best, PaperTags: tags, PaperSets: sets}
	}))
	s.mux = mux
	// Request pipeline, outermost first: fault injection (absent entirely
	// when off), then per-request deadlines, then the mux.
	s.handler = fault.Middleware(cfg.Faults, s.deadlineMiddleware(mux))
	for _, js := range jn.resumableSweeps() {
		s.resumeJob(js)
	}
	return s, nil
}

// resumeJob resurrects one non-terminal journaled sweep at boot: the job
// restarts under its original ID at the journal's bumped epoch, bypassing
// admission (the points were admitted before the crash). Points whose
// results reached the store before the crash come straight back as store
// hits, so a resumed sweep re-simulates only what it never finished. A
// request that no longer validates (a journal written by an older binary)
// is marked failed in the journal and dropped rather than failing boot.
func (s *Server) resumeJob(js *journalSweep) {
	space, err := js.Req.Space()
	if err != nil {
		s.journal.terminal(js.ID, "failed")
		return
	}
	pts := space.Points()
	job := newJob(js.ID, js.Req, space, len(pts), js.Epoch)
	s.jobsMu.Lock()
	s.jobs[js.ID] = job
	s.order = append(s.order, js.ID)
	s.jobsMu.Unlock()
	s.backlog.Add(int64(len(pts)))
	s.resumedSweeps.Add(1)
	s.resumedSkipped.Add(int64(len(js.Done)))
	go s.runJob(job)
}

// deadlineMiddleware bounds every non-streaming request's context with
// Config.RequestTimeout, so a handler stuck behind a slow disk or a packed
// simulation queue returns an error instead of holding the connection
// forever. SSE streams are exempt (they are long-lived by design) and so
// are the probes (they must stay cheap and honest).
func (s *Server) deadlineMiddleware(next http.Handler) http.Handler {
	d := s.cfg.RequestTimeout
	if d == 0 {
		d = 60 * time.Second
	}
	if d < 0 {
		return next
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		p := r.URL.Path
		if strings.HasSuffix(p, "/events") || p == "/healthz" || p == "/readyz" {
			next.ServeHTTP(w, r)
			return
		}
		ctx, cancel := context.WithTimeout(r.Context(), d)
		defer cancel()
		next.ServeHTTP(w, r.WithContext(ctx))
	})
}

// ServeHTTP dispatches through the middleware pipeline to the API mux.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.handler.ServeHTTP(w, r) }

// BeginDrain starts shutdown from the traffic side: /readyz flips to 503 so
// orchestrators stop routing here, and Submit sheds every new sweep with a
// draining OverloadError while already-admitted sweeps run to completion.
// Call it before http.Server.Shutdown; Close then cancels whatever is left.
func (s *Server) BeginDrain() { s.draining.Store(true) }

// Draining reports whether BeginDrain has been called.
func (s *Server) Draining() bool { return s.draining.Load() }

// Close cancels every running sweep and closes the journal's append
// handle. In-flight HTTP requests fail with the cancellation; callers shut
// the http.Server down first. Sweeps cut off here are NOT marked terminal
// in the journal — a daemon killed or closed mid-sweep resumes them on the
// next boot over the same store dir.
func (s *Server) Close() {
	s.stop()
	s.journal.close()
}

// Store exposes the shared store (the CLI prints its stats on shutdown).
func (s *Server) Store() *Store { return s.store }

// Stats snapshots the daemon-wide counters.
func (s *Server) Stats() ServerStats {
	records, appendErrs := s.journal.stats()
	return ServerStats{
		Sweeps:               s.sweeps.Load(),
		DedupSweeps:          s.dedupSweeps.Load(),
		RequestedPoints:      s.requestedPoints.Load(),
		Points:               s.points.Load(),
		StoreHits:            s.storeHits.Load(),
		DedupJoins:           s.dedupJoins.Load(),
		Simulations:          s.sims.Load(),
		InFlightPoints:       s.flights.inFlight(),
		JournalRecords:       records,
		JournalAppendErrors:  appendErrs,
		ResumedSweeps:        s.resumedSweeps.Load(),
		ResumedPointsSkipped: s.resumedSkipped.Load(),
		PanicsRecovered:      s.panicsRecovered.Load(),
		BacklogPoints:        s.backlog.Load(),
		ShedSweeps:           s.shed.Load(),
		Faults:               s.cfg.Faults.Counts(),
		Store:                s.store.Stats(),
		Traces:               s.traces.Stats(),
	}
}

// admit is the admission controller: it reserves n grid points of backlog
// or sheds the sweep with an OverloadError. The cap applies to the sum of
// unfinished points across every running sweep — the quantity that actually
// measures queued work, since sweeps are just bags of points behind one
// simulation semaphore. A sweep larger than the whole cap is still admitted
// when the backlog is empty (otherwise big grids could never run); anything
// else that would overflow is shed before any work starts, so a stampede
// degrades to fast 429s instead of an unbounded queue.
func (s *Server) admit(n int) error {
	if s.draining.Load() {
		s.shed.Add(1)
		return &OverloadError{Draining: true, RetryAfter: time.Second}
	}
	max := int64(s.cfg.MaxBacklog)
	if max == 0 {
		max = 4096
	}
	for {
		cur := s.backlog.Load()
		if max > 0 && cur > 0 && cur+int64(n) > max {
			s.shed.Add(1)
			return &OverloadError{Backlog: cur, RetryAfter: time.Second}
		}
		if s.backlog.CompareAndSwap(cur, cur+int64(n)) {
			return nil
		}
	}
}

// sweepID derives the deterministic sweep ID from the normalized space:
// the content hash over the ordered grid-point keys (the same
// explore.KeyWorkload machinery that keys the result store), so two
// clients — or the same client before and after a daemon restart —
// submitting equivalent sweeps name the same job.
func sweepID(space explore.Space) string {
	mabs := space.MABs()
	h := sha256.New()
	io.WriteString(h, "sweep-v1\n")
	for _, pt := range space.Points() {
		io.WriteString(h, explore.KeyWorkload(space.Domain, pt.Geometry, pt.Workload, space.PacketBytes, mabs))
		io.WriteString(h, "\n")
	}
	return "sw-" + hex.EncodeToString(h.Sum(nil))[:16]
}

// Submit validates, admits and starts a sweep without going through HTTP —
// the handler's core, also convenient for in-process embedding and tests.
// An *OverloadError means the sweep was shed (or the daemon is draining)
// and a retry after backoff is expected to succeed.
//
// Submission is idempotent: the sweep's ID is the content hash of its
// normalized request, and resubmitting while an identical sweep is running
// or completed returns that job — no admission, no new work. Only a FAILED
// previous run is replaced: the new job reuses the ID at the next epoch
// and re-executes (content-keyed points redo only what never stored).
func (s *Server) Submit(req SweepRequest) (*Job, error) {
	space, err := req.Space()
	if err != nil {
		return nil, err
	}
	pts := space.Points()
	id := sweepID(space)

	if j, ok := s.absorb(id, len(pts)); ok {
		return j, nil
	}
	if err := s.admit(len(pts)); err != nil {
		return nil, err
	}
	s.jobsMu.Lock()
	if j, ok := s.jobs[id]; ok && j.status().State != "failed" {
		// Lost the creation race to a concurrent identical submit: return
		// the winner and hand back the backlog we reserved.
		s.jobsMu.Unlock()
		s.backlog.Add(-int64(len(pts)))
		s.noteSubmission(len(pts), true)
		return j, nil
	}
	epoch := 1
	if old, ok := s.jobs[id]; ok {
		epoch = old.epoch + 1 // replacing a failed run under the same ID
	} else {
		s.order = append(s.order, id)
	}
	job := newJob(id, req, space, len(pts), epoch)
	s.jobs[id] = job
	s.forgetOldLocked()
	s.jobsMu.Unlock()
	s.noteSubmission(len(pts), false)
	s.journal.submitted(id, epoch, req)
	go s.runJob(job)
	return job, nil
}

// absorb resolves an idempotent resubmission: if a live or completed job
// already carries id, count the submission and return it. Failed jobs do
// not absorb — the caller replaces them.
func (s *Server) absorb(id string, n int) (*Job, bool) {
	s.jobsMu.Lock()
	j, ok := s.jobs[id]
	s.jobsMu.Unlock()
	if !ok || j.status().State == "failed" {
		return nil, false
	}
	s.noteSubmission(n, true)
	return j, true
}

// noteSubmission updates the demand-side counters for one accepted
// submission: every accept counts as a sweep and contributes its grid size
// to RequestedPoints, whether it started a job or joined an existing one.
func (s *Server) noteSubmission(n int, dedup bool) {
	s.sweeps.Add(1)
	s.requestedPoints.Add(int64(n))
	if dedup {
		s.dedupSweeps.Add(1)
	}
}

// forgetOldLocked drops the oldest finished jobs beyond MaxJobs, so a
// long-lived daemon's job table does not grow without bound. Running jobs
// are never dropped. Callers hold jobsMu.
func (s *Server) forgetOldLocked() {
	max := s.cfg.MaxJobs
	if max <= 0 {
		max = 4096
	}
	for i := 0; len(s.jobs) > max && i < len(s.order); {
		id := s.order[i]
		j, ok := s.jobs[id]
		if ok && j.status().State == "running" {
			i++
			continue
		}
		delete(s.jobs, id)
		s.order = append(s.order[:i], s.order[i+1:]...)
	}
}

// job looks a sweep up by ID.
func (s *Server) job(id string) (*Job, bool) {
	s.jobsMu.Lock()
	defer s.jobsMu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// runJob executes one sweep: every grid point is served from the store, by
// joining another client's in-flight simulation, or by simulating —
// whichever comes first — and lands at its deterministic grid index.
func (s *Server) runJob(job *Job) {
	sp := job.space
	pts := sp.Points()
	techs := sp.Techniques()
	mabs := sp.MABs()
	results := make([]explore.PointResult, len(pts))
	var hits, misses, finished atomic.Int64
	// Submit reserved len(pts) of backlog; release it point by point as
	// they finish so admission tracks live queue depth, and release
	// whatever an aborted sweep left over on the way out.
	defer func() { s.backlog.Add(-(int64(len(pts)) - finished.Load())) }()

	err := pool.Run(s.baseCtx, len(pts), len(s.simSem), func(ctx context.Context, i int) error {
		pt := pts[i]
		key := explore.KeyWorkload(sp.Domain, pt.Geometry, pt.Workload, sp.PacketBytes, mabs)
		job.emit(Event{Index: pt.Index, Total: len(pts), Workload: pt.Workload.Name,
			Sets: pt.Geometry.Sets, Ways: pt.Geometry.Ways, Line: pt.Geometry.LineBytes,
			Status: "start"})
		pr, source, err := s.point(ctx, sp, pt, techs, key)
		if err != nil {
			return err
		}
		if source == SourceSimulated {
			misses.Add(1)
		} else {
			hits.Add(1)
			pr = clonePoint(pr)
			pr.Cached = true
		}
		results[pt.Index] = *pr
		s.backlog.Add(-1)
		finished.Add(1)
		s.journal.point(job.id, pt.Index)
		job.emit(Event{Index: pt.Index, Total: len(pts), Workload: pt.Workload.Name,
			Sets: pt.Geometry.Sets, Ways: pt.Geometry.Ways, Line: pt.Geometry.LineBytes,
			Status: "done", Source: source})
		return nil
	})
	if err != nil {
		job.finish(nil, err)
		// The daemon's own shutdown (baseCtx cancelled) is the one failure
		// that must NOT reach the journal as terminal: those sweeps are
		// exactly what the next boot should resume. Every other failure is
		// final for this epoch — a resubmit replaces it at the next one.
		if !errors.Is(err, context.Canceled) {
			s.journal.terminal(job.id, "failed")
		}
		return
	}
	grid := &explore.Grid{
		Space:  sp,
		Points: results,
		Hits:   int(hits.Load()),
		Misses: int(misses.Load()),
		Traces: s.traces.Stats(),
	}
	// Sweep epilogue: apply the store budget, and if trace spills were
	// evicted, drop the in-memory captures too so resident memory tracks
	// the budget rather than every workload ever swept.
	if _, tr := s.store.Enforce(); tr > 0 {
		s.traces.Flush()
	}
	job.finish(grid, nil)
	s.journal.terminal(job.id, "done")
}

// point serves one grid point. The order of preference: the shared store
// (warm), joining an identical in-flight simulation (singleflight), then
// leading a simulation — which re-probes the store first, since a flight
// that finished between our probe and our turn has stored its result.
func (s *Server) point(ctx context.Context, sp explore.Space, pt explore.Point,
	techs []suite.Technique, key string) (*explore.PointResult, string, error) {
	s.points.Add(1)
	if pr, ok := s.store.Get(key); ok && explore.PointMatches(pr, pt, techs) {
		s.storeHits.Add(1)
		return pr, SourceStore, nil
	}
	pr, simulated, led, err := s.flights.do(ctx, key, func() (*explore.PointResult, bool, error) {
		if pr, ok := s.store.Get(key); ok && explore.PointMatches(pr, pt, techs) {
			return pr, false, nil
		}
		// The semaphore bounds concurrent simulations daemon-wide; store
		// hits and joiners never queue on it.
		select {
		case s.simSem <- struct{}{}:
		case <-ctx.Done():
			return nil, false, ctx.Err()
		}
		defer func() { <-s.simSem }()
		// Simulate under the server's lifetime context, not the job's:
		// joiners from other sweeps may be waiting on this flight, and a
		// cancelled leader must not take their result with it. The flight
		// watchdog bounds it so a wedged point fails retryable rather than
		// pinning this semaphore slot forever.
		simCtx, cancel := s.watchdogCtx()
		defer cancel()
		pr, err := s.simulate(simCtx, sp, pt)
		if err != nil {
			return nil, false, err
		}
		if err := s.store.Put(key, pr); err != nil {
			return nil, false, err
		}
		return pr, true, nil
	})
	if err != nil {
		// Surface every point failure typed: joiners got their PointError
		// from the flight group, a leader's own failure (or a ctx expiry
		// while queued for the semaphore) is wrapped here. Retryability
		// rides along to the job status and the HTTP layer.
		var pe *PointError
		if !errors.As(err, &pe) {
			err = &PointError{Key: key, Err: err}
		}
		return nil, "", err
	}
	switch {
	case led && simulated:
		s.sims.Add(1)
		return pr, SourceSimulated, nil
	case led:
		s.storeHits.Add(1)
		return pr, SourceStore, nil
	default:
		s.dedupJoins.Add(1)
		return pr, SourceDedup, nil
	}
}

// simulatePoint is explore.SimulatePoint behind a seam the crash/panic
// tests can stub.
var simulatePoint = explore.SimulatePoint

// simulate runs one grid-point simulation with panic containment: a panic
// anywhere in the engine is recovered into an error for that point (which
// point() wraps into a retryable PointError), so one poisoned point cannot
// take down a daemon serving every other client.
func (s *Server) simulate(ctx context.Context, sp explore.Space, pt explore.Point) (pr *explore.PointResult, err error) {
	defer func() {
		if v := recover(); v != nil {
			s.panicsRecovered.Add(1)
			pr, err = nil, fmt.Errorf("serve: simulation panic: %v", v)
		}
	}()
	return simulatePoint(ctx, sp, pt, s.traces)
}

// watchdogCtx derives the per-simulation context from Config.PointDeadline.
func (s *Server) watchdogCtx() (context.Context, context.CancelFunc) {
	d := s.cfg.PointDeadline
	if d == 0 {
		d = 5 * time.Minute
	}
	if d < 0 {
		return context.WithCancel(s.baseCtx)
	}
	return context.WithTimeout(s.baseCtx, d)
}

// clonePoint deep-copies a result before the per-job Cached flag is set:
// store hits and dedup joins share one *PointResult across jobs.
func clonePoint(pr *explore.PointResult) *explore.PointResult {
	cp := *pr
	cp.Techs = append([]explore.TechOutcome(nil), pr.Techs...)
	return &cp
}

// ---- HTTP handlers ----

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, errorResponse{Error: fmt.Sprintf(format, args...)})
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req SweepRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	job, err := s.Submit(req)
	if err != nil {
		var oe *OverloadError
		if errors.As(err, &oe) {
			// Load shedding is not the client's fault and not permanent:
			// 429 (or 503 while draining) plus Retry-After says exactly
			// that, and internal/serve/client honors it.
			w.Header().Set("Retry-After", retryAfterSeconds(oe.RetryAfter))
			code := http.StatusTooManyRequests
			if oe.Draining {
				code = http.StatusServiceUnavailable
			}
			writeError(w, code, "%v", err)
			return
		}
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	writeJSON(w, http.StatusAccepted, SubmitResponse{ID: job.id, Points: job.metrics.Points})
}

// retryAfterSeconds renders a backoff hint as a Retry-After header value
// (whole seconds, minimum 1 — the header has no finer grain).
func retryAfterSeconds(d time.Duration) string {
	secs := int64((d + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return strconv.FormatInt(secs, 10)
}

// handleReady is the readiness probe: "ready" while accepting sweeps, 503 +
// Retry-After once draining for shutdown. Liveness (/healthz) stays green
// through a drain — the process is healthy, just leaving.
func (s *Server) handleReady(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		w.Header().Set("Retry-After", "1")
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	w.Write([]byte("ready\n"))
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Stats())
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	job, ok := s.job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "no such sweep %q", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, job.status())
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	job, ok := s.job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "no such sweep %q", r.PathValue("id"))
		return
	}
	grid, metrics, done := job.result()
	if !done {
		writeError(w, http.StatusConflict, "sweep %s is %s", job.id, job.status().State)
		return
	}
	writeJSON(w, http.StatusOK, ResultResponse{Points: grid.Points, Metrics: metrics})
}

// analysisHandler builds the warm-analytics handlers: they answer purely
// from the completed grid — zero simulations by construction.
func (s *Server) analysisHandler(analyze func(*explore.Grid) any) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		job, ok := s.job(r.PathValue("id"))
		if !ok {
			writeError(w, http.StatusNotFound, "no such sweep %q", r.PathValue("id"))
			return
		}
		grid, _, done := job.result()
		if !done {
			writeError(w, http.StatusConflict, "sweep %s is %s", job.id, job.status().State)
			return
		}
		writeJSON(w, http.StatusOK, analyze(grid))
	}
}

// handleEvents streams the job's progress as server-sent events: the full
// event log from the start (late subscribers miss nothing), then live
// events as grid points finish, then one terminal "done" event carrying
// the final JobStatus.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	job, ok := s.job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "no such sweep %q", r.PathValue("id"))
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, "streaming unsupported")
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)

	ch, cancel := job.subscribe()
	defer cancel()
	next := 0
	for {
		evs, state := job.eventsFrom(next)
		next += len(evs)
		for _, ev := range evs {
			blob, _ := json.Marshal(ev)
			fmt.Fprintf(w, "event: point\ndata: %s\n\n", blob)
		}
		if state != "running" {
			blob, _ := json.Marshal(job.status())
			fmt.Fprintf(w, "event: done\ndata: %s\n\n", blob)
			flusher.Flush()
			return
		}
		flusher.Flush()
		select {
		case <-ch:
		case <-r.Context().Done():
			return
		case <-s.baseCtx.Done():
			return
		case <-time.After(30 * time.Second):
			// Heartbeat comment keeps idle proxies from timing the
			// stream out.
			fmt.Fprint(w, ": keepalive\n\n")
			flusher.Flush()
		}
	}
}
