package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"waymemo/internal/explore"
)

// tinySpec is a synthetic workload small enough that one grid point
// simulates in milliseconds.
const tinySpec = "synth:hotloop,fp=1KiB,n=2048"

func newTestServer(t *testing.T, budget int64, par int) *Server {
	t.Helper()
	s, err := New(Config{StoreDir: t.TempDir(), StoreBudget: budget, Parallelism: par})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s
}

// tinyReq is a one-workload sweep over the given sets axis: len(sets) grid
// points, baseline + one MAB technique each.
func tinyReq(sets ...int) SweepRequest {
	return SweepRequest{
		Sets:       sets,
		TagEntries: []int{1},
		SetEntries: []int{4},
		Workloads:  []string{tinySpec},
	}
}

func waitJob(t *testing.T, job *Job) JobStatus {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	st, err := job.Wait(ctx)
	if err != nil {
		t.Fatalf("job %s: %v", job.ID(), err)
	}
	if st.State != "done" {
		t.Fatalf("job %s finished %s: %s", job.ID(), st.State, st.Error)
	}
	return st
}

// TestServerSingleflightDedup is the satellite's contract: K concurrent
// overlapping sweeps cost exactly one simulation per unique grid point —
// and exactly one suite execution — however they interleave. Identical
// submissions collapse onto one job (idempotent content-hashed IDs); the
// distinct-but-overlapping pair shares its common point through the store
// or by joining the in-flight simulation.
func TestServerSingleflightDedup(t *testing.T) {
	s := newTestServer(t, 0, 2)
	const K = 12

	jobs := make([]*Job, K)
	var wg sync.WaitGroup
	for i := 0; i < K; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			req := tinyReq(64)
			if i%2 == 1 {
				req = tinyReq(64, 128)
			}
			job, err := s.Submit(req)
			if err != nil {
				t.Errorf("submit %d: %v", i, err)
				return
			}
			jobs[i] = job
		}(i)
	}
	wg.Wait()

	ids := map[string]bool{}
	for i, job := range jobs {
		if job == nil {
			t.FailNow()
		}
		ids[job.ID()] = true
		st := waitJob(t, job)
		m := st.Metrics
		want := 1 + i%2
		if m.Done != want || m.StoreHits+m.DedupJoins+m.Simulated != want {
			t.Errorf("job %s metrics don't add up: %+v, want %d done", st.ID, m, want)
		}
	}
	if len(ids) != 2 {
		t.Errorf("K=%d submissions over 2 distinct requests made %d jobs, want 2", K, len(ids))
	}
	stats := s.Stats()
	if stats.Simulations != 2 {
		t.Errorf("server simulations = %d, want 2 (one per unique grid point)", stats.Simulations)
	}
	if stats.Traces.Captures != 1 {
		t.Errorf("suite executions (trace captures) = %d, want 1", stats.Traces.Captures)
	}
	if stats.Sweeps != K || stats.DedupSweeps != K-2 {
		t.Errorf("sweeps=%d dedup=%d, want %d/%d", stats.Sweeps, stats.DedupSweeps, K, K-2)
	}
	if stats.RequestedPoints != 3*K/2 {
		t.Errorf("requested points = %d, want %d", stats.RequestedPoints, 3*K/2)
	}
	if stats.InFlightPoints != 0 {
		t.Errorf("inflight points after completion = %d", stats.InFlightPoints)
	}
}

// getJSON fetches url and decodes the JSON body into out, asserting the
// status code.
func getJSON(t *testing.T, url string, wantCode int, out any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantCode {
		t.Fatalf("GET %s = %d, want %d", url, resp.StatusCode, wantCode)
	}
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("GET %s: decode: %v", url, err)
		}
	}
}

// postSweep submits a request over HTTP and returns the sweep ID.
func postSweep(t *testing.T, base string, req SweepRequest) SubmitResponse {
	t.Helper()
	blob, _ := json.Marshal(req)
	resp, err := http.Post(base+"/v1/sweeps", "application/json", bytes.NewReader(blob))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST /v1/sweeps = %d, want 202", resp.StatusCode)
	}
	var sub SubmitResponse
	if err := json.NewDecoder(resp.Body).Decode(&sub); err != nil {
		t.Fatal(err)
	}
	return sub
}

// followEvents consumes the sweep's SSE stream to its terminal "done" event
// and returns the point events plus the final status.
func followEvents(t *testing.T, base, id string) ([]Event, JobStatus) {
	t.Helper()
	resp, err := http.Get(base + "/v1/sweeps/" + id + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET events = %d, want 200", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("events content-type = %q", ct)
	}
	var (
		events []Event
		final  JobStatus
		event  string
	)
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			data := strings.TrimPrefix(line, "data: ")
			switch event {
			case "point":
				var ev Event
				if err := json.Unmarshal([]byte(data), &ev); err != nil {
					t.Fatalf("bad point event %q: %v", data, err)
				}
				events = append(events, ev)
			case "done":
				if err := json.Unmarshal([]byte(data), &final); err != nil {
					t.Fatalf("bad done event %q: %v", data, err)
				}
				return events, final
			}
		}
	}
	t.Fatalf("SSE stream ended without a done event (%v)", sc.Err())
	return nil, JobStatus{}
}

func TestServerHTTPEndToEnd(t *testing.T) {
	s := newTestServer(t, 0, 2)
	ts := httptest.NewServer(s)
	defer ts.Close()

	sub := postSweep(t, ts.URL, tinyReq(64, 128))
	if sub.Points != 2 {
		t.Fatalf("submitted points = %d, want 2", sub.Points)
	}

	// The SSE stream replays from the start, so subscribing after submit
	// still sees every event: 2 starts, 2 dones, then the terminal status.
	events, final := followEvents(t, ts.URL, sub.ID)
	var starts, dones int
	seen := map[int]bool{}
	for _, ev := range events {
		if ev.Total != 2 {
			t.Errorf("event total = %d, want 2", ev.Total)
		}
		switch ev.Status {
		case "start":
			starts++
		case "done":
			dones++
			seen[ev.Index] = true
			if ev.Source != SourceSimulated {
				t.Errorf("cold point %d served from %q, want simulated", ev.Index, ev.Source)
			}
		}
	}
	if starts != 2 || dones != 2 || !seen[0] || !seen[1] {
		t.Fatalf("SSE events: %d starts, %d dones, indices %v", starts, dones, seen)
	}
	if final.State != "done" || final.Metrics.Simulated != 2 {
		t.Fatalf("terminal status = %+v", final)
	}

	var st JobStatus
	getJSON(t, ts.URL+"/v1/sweeps/"+sub.ID, http.StatusOK, &st)
	if st.State != "done" || st.Metrics.Done != 2 {
		t.Fatalf("status = %+v", st)
	}

	var res ResultResponse
	getJSON(t, ts.URL+"/v1/sweeps/"+sub.ID+"/result", http.StatusOK, &res)
	if len(res.Points) != 2 || res.Points[0].Cycles == 0 {
		t.Fatalf("result: %d points, first cycles %d", len(res.Points), res.Points[0].Cycles)
	}

	// Warm analytics: every endpoint answers from the finished grid.
	var cands, pareto []explore.Candidate
	var marg []explore.Marginal
	var opt OptimumResponse
	getJSON(t, ts.URL+"/v1/sweeps/"+sub.ID+"/candidates", http.StatusOK, &cands)
	getJSON(t, ts.URL+"/v1/sweeps/"+sub.ID+"/pareto", http.StatusOK, &pareto)
	getJSON(t, ts.URL+"/v1/sweeps/"+sub.ID+"/marginals", http.StatusOK, &marg)
	getJSON(t, ts.URL+"/v1/sweeps/"+sub.ID+"/optimum", http.StatusOK, &opt)
	if len(cands) == 0 || len(pareto) == 0 || len(marg) == 0 || opt.Optimum.ID == "" {
		t.Fatalf("warm analytics empty: %d candidates, %d pareto, %d marginals, optimum %q",
			len(cands), len(pareto), len(marg), opt.Optimum.ID)
	}

	var stats ServerStats
	getJSON(t, ts.URL+"/v1/stats", http.StatusOK, &stats)
	if stats.Simulations != 2 {
		t.Fatalf("simulations after cold sweep = %d, want 2", stats.Simulations)
	}

	// Resubmitting the identical sweep is idempotent: the content-hashed ID
	// maps it onto the completed job — same ID back, no new work at all.
	resub := postSweep(t, ts.URL, tinyReq(64, 128))
	if resub.ID != sub.ID {
		t.Fatalf("identical resubmit got ID %s, want %s", resub.ID, sub.ID)
	}
	getJSON(t, ts.URL+"/v1/stats", http.StatusOK, &stats)
	if stats.Simulations != 2 || stats.DedupSweeps != 1 {
		t.Fatalf("idempotent resubmit: %d simulations / %d dedup sweeps, want 2 / 1",
			stats.Simulations, stats.DedupSweeps)
	}

	// A warm superset sweep is a distinct job but reuses the store: its two
	// overlapping points are store hits, only the new one simulates.
	warm := postSweep(t, ts.URL, tinyReq(64, 128, 256))
	if warm.ID == sub.ID {
		t.Fatalf("superset sweep shares ID %s with the original", warm.ID)
	}
	_, warmFinal := followEvents(t, ts.URL, warm.ID)
	if warmFinal.Metrics.StoreHits != 2 || warmFinal.Metrics.Simulated != 1 {
		t.Fatalf("warm superset metrics = %+v, want 2 store hits, 1 simulated", warmFinal.Metrics)
	}
	getJSON(t, ts.URL+"/v1/stats", http.StatusOK, &stats)
	if stats.Simulations != 3 {
		t.Fatalf("warm superset: %d total simulations, want 3", stats.Simulations)
	}

	// Error paths.
	getJSON(t, ts.URL+"/v1/sweeps/nope", http.StatusNotFound, nil)
	getJSON(t, ts.URL+"/v1/sweeps/nope/candidates", http.StatusNotFound, nil)
	resp, err := http.Post(ts.URL+"/v1/sweeps", "application/json", strings.NewReader("{bad"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad body POST = %d, want 400", resp.StatusCode)
	}
	blob, _ := json.Marshal(SweepRequest{Domain: "bogus"})
	resp, err = http.Post(ts.URL+"/v1/sweeps", "application/json", bytes.NewReader(blob))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bogus domain POST = %d, want 400", resp.StatusCode)
	}
}

// TestServerEvictionCorrectness: with a budget too small to keep anything,
// every sweep's epilogue evicts the store — and a rerun re-simulates to
// bit-identical results. Eviction costs time, never correctness.
func TestServerEvictionCorrectness(t *testing.T) {
	s := newTestServer(t, 1, 2)

	run := func() []explore.PointResult {
		job, err := s.Submit(tinyReq(64, 128))
		if err != nil {
			t.Fatal(err)
		}
		waitJob(t, job)
		grid, _, ok := job.result()
		if !ok {
			t.Fatal("no result")
		}
		pts := make([]explore.PointResult, len(grid.Points))
		copy(pts, grid.Points)
		for i := range pts {
			pts[i].Cached = false
		}
		// Forget the completed job so the idempotent resubmission below
		// actually re-executes instead of absorbing into it.
		s.jobsMu.Lock()
		delete(s.jobs, job.ID())
		s.order = nil
		s.jobsMu.Unlock()
		return pts
	}

	first := run()
	stats := s.Stats()
	if stats.Store.ResultEvictions < 2 {
		t.Fatalf("budget=1: %d result evictions after sweep, want >= 2", stats.Store.ResultEvictions)
	}
	if stats.Store.ResultEntries != 0 || stats.Store.TraceFiles != 0 {
		t.Fatalf("budget=1: store not empty after epilogue: %+v", stats.Store)
	}

	second := run()
	stats = s.Stats()
	if stats.Simulations != 4 {
		t.Fatalf("evicted store must re-simulate: %d simulations, want 4", stats.Simulations)
	}
	if len(first) != len(second) {
		t.Fatalf("grid sizes differ: %d vs %d", len(first), len(second))
	}
	for i := range first {
		a, b := first[i], second[i]
		if a.Cycles != b.Cycles || a.Instrs != b.Instrs || len(a.Techs) != len(b.Techs) {
			t.Fatalf("point %d differs after eviction: %+v vs %+v", i, a, b)
		}
		for j := range a.Techs {
			if a.Techs[j] != b.Techs[j] {
				t.Fatalf("point %d tech %d differs after eviction:\n%+v\n%+v", i, j, a.Techs[j], b.Techs[j])
			}
		}
	}
}

// TestServerMaxJobs: finished jobs beyond the cap are forgotten oldest
// first; the newest stays queryable.
func TestServerMaxJobs(t *testing.T) {
	s, err := New(Config{StoreDir: t.TempDir(), Parallelism: 1, MaxJobs: 2})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)

	var first, last *Job
	for i, sets := range [][]int{{64}, {128}, {256}, {512}} {
		job, err := s.Submit(tinyReq(sets...))
		if err != nil {
			t.Fatal(err)
		}
		waitJob(t, job)
		if i == 0 {
			first = job
		}
		last = job
	}
	s.jobsMu.Lock()
	n := len(s.jobs)
	s.jobsMu.Unlock()
	if n > 2 {
		t.Fatalf("job table holds %d jobs, cap is 2", n)
	}
	if _, ok := s.job(last.ID()); !ok {
		t.Fatalf("newest job %s forgotten", last.ID())
	}
	if _, ok := s.job(first.ID()); ok {
		t.Fatalf("oldest job %s survived past the cap", first.ID())
	}
}
