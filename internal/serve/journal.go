package serve

import (
	"encoding/binary"
	"encoding/json"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"waymemo/internal/fault"
)

// The sweep journal is the daemon's write-ahead log of client work: an
// append-only, fsynced file under the store dir recording every accepted
// sweep ('S'), every grid point that finished ('P'), and every terminal
// transition ('T'). Boot replays the valid prefix and resurrects the
// non-terminal sweeps, so a SIGKILL loses at most the points that never
// hit the result store — and those re-simulate, they never duplicate.
//
// Record framing follows WMTRACE2: tag byte, uvarint body length, JSON
// body, CRC32-IEEE of the body (little-endian). Replay stops at the first
// frame that fails to parse or checksum — a torn tail, a flipped byte or
// an unknown tag all degrade to "fewer sweeps resume", never to a wrong
// resurrection, because the store remains the sole durability authority
// for results.
//
// The journal itself is an optimization, not a correctness dependency:
// every append routes through fault.FS at the io.journal.* sites and an
// append failure only increments a counter. A daemon with a dead journal
// keeps serving; it just forgets in-flight sweeps on the next crash.
const (
	journalFile  = "journal.wal"
	journalMagic = "WMSWJNL1"

	jTagSubmit   = 'S'
	jTagPoint    = 'P'
	jTagTerminal = 'T'

	// maxJournalBody bounds a single record body so a corrupt length varint
	// cannot ask replay to trust a multi-gigabyte frame.
	maxJournalBody = 4 << 20

	// compactAfterDead triggers a compaction rewrite once this many terminal
	// sweeps' records are sitting dead in the file.
	compactAfterDead = 32
)

// journalSweep is the 'S' record body and the replayed in-memory state of
// one live sweep. Done is rebuilt from 'P' records, not serialized.
type journalSweep struct {
	ID    string       `json:"id"`
	Epoch int          `json:"epoch"`
	Req   SweepRequest `json:"req"`
	Done  map[int]bool `json:"-"`
}

// journalPoint is the 'P' record body: grid point Index of sweep ID
// completed (its result is in the store).
type journalPoint struct {
	ID    string `json:"id"`
	Index int    `json:"i"`
}

// journalTerminal is the 'T' record body: sweep ID reached State ("done"
// or "failed") and must not be resumed.
type journalTerminal struct {
	ID    string `json:"id"`
	State string `json:"state"`
}

// journal is the write-ahead sweep log. All methods are safe on a nil
// receiver (journalling disabled) and never fail the operations they log:
// an append error is counted and swallowed.
type journal struct {
	fs   fault.FS
	path string

	mu         sync.Mutex
	f          *os.File
	live       map[string]*journalSweep
	order      []string // live sweep IDs, first-seen order
	dead       int      // terminal sweeps' records still in the file
	records    int64    // frames replayed + successfully appended
	appendErrs int64
	resumable  []*journalSweep // boot-time snapshot for Server resume
}

// openJournal replays any existing journal at dir, bumps the epoch of every
// surviving sweep (their event logs are about to be rebuilt, and the epoch
// is what tells a reattaching SSE follower to reset its cursor), compacts
// the file down to the survivors and opens it for appending. Every failure
// mode short of "cannot create a file in dir" degrades: a missing,
// unreadable or corrupt journal just resumes nothing.
func openJournal(dir string, fs fault.FS) (*journal, error) {
	j := &journal{
		fs:   fs,
		path: filepath.Join(dir, journalFile),
		live: map[string]*journalSweep{},
	}
	// Sweep compaction temps a crash may have left (WriteFileAtomic names
	// them "<base>.tmp*"); the store's own recovery only walks its results
	// and traces subdirectories.
	if ents, err := os.ReadDir(dir); err == nil {
		for _, e := range ents {
			if strings.HasPrefix(e.Name(), journalFile+".tmp") {
				os.Remove(filepath.Join(dir, e.Name()))
			}
		}
	}
	if blob, err := fs.ReadFile(fault.SiteJournalRead, j.path); err == nil {
		j.replay(blob)
	}
	for _, js := range j.live {
		js.Epoch++
	}
	j.resumable = j.liveOrdered()
	// Rewrite the file down to the survivors (with their bumped epochs) and
	// open it for appending. The rewrite is atomic; if it fails — injected
	// or real — fall back to appending the bumped state to the old file so
	// the epoch bump is durable either way.
	rewrote := j.rewrite() == nil
	f, err := os.OpenFile(j.path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	j.f = f
	if st, err := f.Stat(); err == nil && st.Size() == 0 {
		j.appendRaw([]byte(journalMagic))
	}
	if !rewrote {
		j.mu.Lock()
		for _, js := range j.liveOrdered() {
			j.appendStateLocked(js)
		}
		j.mu.Unlock()
	}
	j.dead = 0
	return j, nil
}

// replay applies the valid record prefix of blob to the in-memory state.
func (j *journal) replay(blob []byte) {
	if len(blob) < len(journalMagic) || string(blob[:len(journalMagic)]) != journalMagic {
		return
	}
	rest := blob[len(journalMagic):]
	for len(rest) > 0 {
		tag := rest[0]
		n, w := binary.Uvarint(rest[1:])
		if w <= 0 || n > maxJournalBody {
			return
		}
		start := 1 + w
		end := start + int(n) + 4
		if end > len(rest) {
			return
		}
		body := rest[start : start+int(n)]
		if crc32.ChecksumIEEE(body) != binary.LittleEndian.Uint32(rest[start+int(n):end]) {
			return
		}
		if !j.apply(tag, body) {
			return
		}
		j.records++
		rest = rest[end:]
	}
}

// apply folds one decoded record into the live map. An undecodable body or
// unknown tag stops replay (false): past that point the file cannot be
// trusted.
func (j *journal) apply(tag byte, body []byte) bool {
	switch tag {
	case jTagSubmit:
		var js journalSweep
		if json.Unmarshal(body, &js) != nil || js.ID == "" {
			return false
		}
		js.Done = map[int]bool{}
		if _, seen := j.live[js.ID]; !seen {
			j.order = append(j.order, js.ID)
		}
		j.live[js.ID] = &js
	case jTagPoint:
		var jp journalPoint
		if json.Unmarshal(body, &jp) != nil {
			return false
		}
		// A point for a sweep we no longer track (compacted away or from a
		// superseded epoch) is stale, not corrupt.
		if js, ok := j.live[jp.ID]; ok {
			js.Done[jp.Index] = true
		}
	case jTagTerminal:
		var jt journalTerminal
		if json.Unmarshal(body, &jt) != nil {
			return false
		}
		j.dropLocked(jt.ID)
	default:
		return false
	}
	return true
}

func (j *journal) dropLocked(id string) {
	if _, ok := j.live[id]; !ok {
		return
	}
	delete(j.live, id)
	for i, v := range j.order {
		if v == id {
			j.order = append(j.order[:i], j.order[i+1:]...)
			break
		}
	}
	j.dead++
}

// liveOrdered snapshots the live sweeps sorted by ID — the deterministic
// resume order.
func (j *journal) liveOrdered() []*journalSweep {
	out := make([]*journalSweep, 0, len(j.live))
	for _, id := range j.order {
		out = append(out, j.live[id])
	}
	sort.Slice(out, func(a, b int) bool { return out[a].ID < out[b].ID })
	return out
}

// resumableSweeps returns the non-terminal sweeps found at open, for the
// server's boot resume pass.
func (j *journal) resumableSweeps() []*journalSweep {
	if j == nil {
		return nil
	}
	return j.resumable
}

// submitted logs a sweep acceptance (fresh or a failed sweep's replacement
// at a higher epoch).
func (j *journal) submitted(id string, epoch int, req SweepRequest) {
	if j == nil {
		return
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if old, seen := j.live[id]; seen {
		old.Epoch, old.Req, old.Done = epoch, req, map[int]bool{}
	} else {
		j.order = append(j.order, id)
		j.live[id] = &journalSweep{ID: id, Epoch: epoch, Req: req, Done: map[int]bool{}}
	}
	body, _ := json.Marshal(journalSweep{ID: id, Epoch: epoch, Req: req})
	j.appendLocked(jTagSubmit, body)
}

// point logs one completed grid point (its result reached the store).
func (j *journal) point(id string, index int) {
	if j == nil {
		return
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if js, ok := j.live[id]; ok {
		js.Done[index] = true
	}
	body, _ := json.Marshal(journalPoint{ID: id, Index: index})
	j.appendLocked(jTagPoint, body)
}

// terminal logs a sweep reaching "done" or "failed" and compacts once
// enough dead records accumulate.
func (j *journal) terminal(id, state string) {
	if j == nil {
		return
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	j.dropLocked(id)
	body, _ := json.Marshal(journalTerminal{ID: id, State: state})
	j.appendLocked(jTagTerminal, body)
	if j.dead >= compactAfterDead {
		if j.rewriteLocked() == nil {
			j.dead = 0
		}
	}
}

// appendLocked frames and appends one record through the fault layer. A
// failed append is counted and swallowed: the journal must never fail the
// operation it logs.
func (j *journal) appendLocked(tag byte, body []byte) {
	frame := make([]byte, 0, len(body)+16)
	frame = append(frame, tag)
	frame = binary.AppendUvarint(frame, uint64(len(body)))
	frame = append(frame, body...)
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], crc32.ChecksumIEEE(body))
	frame = append(frame, crc[:]...)
	if j.f == nil {
		j.appendErrs++
		return
	}
	if err := j.fs.AppendSync(fault.SiteJournalAppend, j.f, frame); err != nil {
		j.appendErrs++
		return
	}
	j.records++
}

// appendRaw writes bytes (the magic) outside the record framing.
func (j *journal) appendRaw(b []byte) {
	if err := j.fs.AppendSync(fault.SiteJournalAppend, j.f, b); err != nil {
		j.appendErrs++
	}
}

// appendStateLocked re-declares one live sweep (S record plus a P record
// per completed point) — the fallback that makes an epoch bump durable
// when compaction failed.
func (j *journal) appendStateLocked(js *journalSweep) {
	body, _ := json.Marshal(journalSweep{ID: js.ID, Epoch: js.Epoch, Req: js.Req})
	j.appendLocked(jTagSubmit, body)
	idxs := make([]int, 0, len(js.Done))
	for i := range js.Done {
		idxs = append(idxs, i)
	}
	sort.Ints(idxs)
	for _, i := range idxs {
		b, _ := json.Marshal(journalPoint{ID: js.ID, Index: i})
		j.appendLocked(jTagPoint, b)
	}
}

// rewrite compacts the journal to only the live sweeps, atomically.
func (j *journal) rewrite() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.rewriteLocked()
}

func (j *journal) rewriteLocked() error {
	var buf []byte
	buf = append(buf, journalMagic...)
	for _, js := range j.liveOrdered() {
		buf = appendFrame(buf, jTagSubmit, mustJSON(journalSweep{ID: js.ID, Epoch: js.Epoch, Req: js.Req}))
		idxs := make([]int, 0, len(js.Done))
		for i := range js.Done {
			idxs = append(idxs, i)
		}
		sort.Ints(idxs)
		for _, i := range idxs {
			buf = appendFrame(buf, jTagPoint, mustJSON(journalPoint{ID: js.ID, Index: i}))
		}
	}
	err := j.fs.WriteFileAtomic(fault.SiteJournalCompact, j.path, func(w io.Writer) error {
		_, werr := w.Write(buf)
		return werr
	})
	if err != nil {
		return err
	}
	// The rename replaced the inode; reopen the append handle on the new
	// file. The old handle keeps the orphan alive until closed.
	if j.f != nil {
		j.f.Close()
		j.f = nil
	}
	f, err := os.OpenFile(j.path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	j.f = f
	return nil
}

func appendFrame(buf []byte, tag byte, body []byte) []byte {
	buf = append(buf, tag)
	buf = binary.AppendUvarint(buf, uint64(len(body)))
	buf = append(buf, body...)
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], crc32.ChecksumIEEE(body))
	return append(buf, crc[:]...)
}

func mustJSON(v any) []byte {
	b, _ := json.Marshal(v)
	return b
}

// stats snapshots the journal counters for /v1/stats.
func (j *journal) stats() (records, appendErrs int64) {
	if j == nil {
		return 0, 0
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.records, j.appendErrs
}

// close closes the append handle. Late appends from still-draining sweeps
// after close are counted as append errors, which is the right shape for
// "the process is exiting anyway".
func (j *journal) close() {
	if j == nil {
		return
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f != nil {
		j.f.Close()
		j.f = nil
	}
}
