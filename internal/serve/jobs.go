package serve

import (
	"context"
	"sync"
	"time"

	"waymemo/internal/explore"
)

// Job is one accepted sweep: its normalized space, its progress event log
// (the SSE stream's backing store — late subscribers replay it from the
// start, so no client misses events), and, once finished, the grid the
// warm analytics endpoints answer from.
type Job struct {
	id string
	// epoch is the generation of this event log under the (content-derived,
	// stable) id: 1 for a fresh submission, +1 each time the sweep is
	// resumed from the journal or a failed run is replaced by a resubmit.
	// Every emitted Event carries it so followers can tell a rebuilt log
	// from a replay of one they already consumed.
	epoch   int
	req     SweepRequest
	space   explore.Space
	started time.Time

	mu         sync.Mutex
	events     []Event
	subs       map[chan struct{}]bool
	state      string // "running", "done" or "failed"
	errMsg     string
	retryable  bool
	retryAfter time.Duration
	grid       *explore.Grid
	metrics    JobMetrics
}

func newJob(id string, req SweepRequest, space explore.Space, points, epoch int) *Job {
	return &Job{
		id:      id,
		epoch:   epoch,
		req:     req,
		space:   space,
		started: time.Now(),
		subs:    map[chan struct{}]bool{},
		state:   "running",
		metrics: JobMetrics{Points: points},
	}
}

// emit appends one progress event (stamping its Seq), updates the metrics
// for "done" events, and wakes every subscriber.
func (j *Job) emit(ev Event) {
	j.mu.Lock()
	ev.Seq = len(j.events)
	ev.Epoch = j.epoch
	j.events = append(j.events, ev)
	if ev.Status == "done" {
		j.metrics.Done++
		switch ev.Source {
		case SourceStore:
			j.metrics.StoreHits++
		case SourceDedup:
			j.metrics.DedupJoins++
		case SourceSimulated:
			j.metrics.Simulated++
		}
	}
	j.wakeLocked()
	j.mu.Unlock()
}

// wakeLocked signals every subscriber without blocking; a subscriber whose
// buffer is full already has a wakeup pending. Callers hold mu.
func (j *Job) wakeLocked() {
	for ch := range j.subs {
		select {
		case ch <- struct{}{}:
		default:
		}
	}
}

// finish moves the job to its terminal state, extracting the retry
// contract from typed failures, and wakes subscribers.
func (j *Job) finish(grid *explore.Grid, err error) {
	j.mu.Lock()
	j.metrics.ElapsedMS = time.Since(j.started).Seconds() * 1000
	if err != nil {
		j.state, j.errMsg = "failed", err.Error()
		j.retryable, j.retryAfter = retryDetails(err)
	} else {
		j.state, j.grid = "done", grid
	}
	j.wakeLocked()
	j.mu.Unlock()
}

// subscribe registers for wakeups on new events or state changes. The
// returned cancel must be called when the subscriber leaves.
func (j *Job) subscribe() (ch chan struct{}, cancel func()) {
	ch = make(chan struct{}, 1)
	j.mu.Lock()
	j.subs[ch] = true
	j.mu.Unlock()
	return ch, func() {
		j.mu.Lock()
		delete(j.subs, ch)
		j.mu.Unlock()
	}
}

// eventsFrom returns the events at sequence >= from plus the current
// state, for the SSE loop: drain, flush, then wait for a wakeup.
func (j *Job) eventsFrom(from int) ([]Event, string) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if from > len(j.events) {
		from = len(j.events)
	}
	evs := make([]Event, len(j.events)-from)
	copy(evs, j.events[from:])
	return evs, j.state
}

// status snapshots the job for /v1/sweeps/{id}.
func (j *Job) status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	m := j.metrics
	if j.state == "running" {
		m.ElapsedMS = time.Since(j.started).Seconds() * 1000
	}
	return JobStatus{ID: j.id, State: j.state, Error: j.errMsg,
		Retryable: j.retryable, RetryAfterMS: j.retryAfter.Milliseconds(),
		Epoch: j.epoch, Request: j.req, Metrics: m}
}

// ID returns the job's identifier, as handed out by Submit.
func (j *Job) ID() string { return j.id }

// Wait blocks until the job reaches a terminal state (or ctx ends) and
// returns its final status — the in-process equivalent of following the
// SSE stream to its "done" event.
func (j *Job) Wait(ctx context.Context) (JobStatus, error) {
	ch, cancel := j.subscribe()
	defer cancel()
	for {
		st := j.status()
		if st.State != "running" {
			return st, nil
		}
		select {
		case <-ch:
		case <-ctx.Done():
			return st, ctx.Err()
		}
	}
}

// result returns the completed grid, or ok=false while running or failed.
func (j *Job) result() (*explore.Grid, JobMetrics, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.grid, j.metrics, j.state == "done"
}
