package serve

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"waymemo/internal/fault"
)

// journalPath is the on-disk journal location for a store dir.
func journalPath(dir string) string { return filepath.Join(dir, journalFile) }

// TestJournalRoundTrip: submissions, point completions and terminal states
// survive a close/reopen; terminal sweeps are compacted away; the surviving
// sweep comes back with its completed points and a bumped epoch.
func TestJournalRoundTrip(t *testing.T) {
	dir := t.TempDir()
	j, err := openJournal(dir, fault.FS{})
	if err != nil {
		t.Fatal(err)
	}
	j.submitted("sw-aaaa", 1, tinyReq(64, 128))
	j.point("sw-aaaa", 0)
	j.submitted("sw-bbbb", 1, tinyReq(256))
	j.point("sw-bbbb", 0)
	j.terminal("sw-bbbb", "done")
	if len(j.resumableSweeps()) != 0 {
		t.Fatalf("fresh journal claims %d resumable sweeps", len(j.resumableSweeps()))
	}
	j.close()

	j2, err := openJournal(dir, fault.FS{})
	if err != nil {
		t.Fatal(err)
	}
	defer j2.close()
	res := j2.resumableSweeps()
	if len(res) != 1 {
		t.Fatalf("resumable sweeps = %d, want 1", len(res))
	}
	js := res[0]
	if js.ID != "sw-aaaa" || js.Epoch != 2 {
		t.Fatalf("resumed sweep = {%s, epoch %d}, want sw-aaaa at epoch 2", js.ID, js.Epoch)
	}
	if len(js.Done) != 1 || !js.Done[0] {
		t.Fatalf("resumed done set = %v, want {0}", js.Done)
	}
	if len(js.Req.Sets) != 2 || js.Req.Sets[0] != 64 || js.Req.Sets[1] != 128 {
		t.Fatalf("resumed request sets = %v", js.Req.Sets)
	}
	// The reopen compacted the file: the terminal sweep's records are gone.
	blob, err := os.ReadFile(journalPath(dir))
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(blob, []byte("sw-bbbb")) {
		t.Error("terminal sweep survived compaction")
	}
	if !bytes.HasPrefix(blob, []byte(journalMagic)) {
		t.Error("compacted journal lost its magic")
	}
}

// replayedState opens the journal bytes in a fresh dir and returns the
// resumable sweeps, asserting open itself never fails however mangled the
// input is.
func replayedState(t *testing.T, blob []byte) []*journalSweep {
	t.Helper()
	dir := t.TempDir()
	if err := os.WriteFile(journalPath(dir), blob, 0o644); err != nil {
		t.Fatal(err)
	}
	j, err := openJournal(dir, fault.FS{})
	if err != nil {
		t.Fatalf("openJournal on mangled input: %v", err)
	}
	defer j.close()
	return j.resumableSweeps()
}

// assertPrefixState checks the safety property corrupt replay must keep:
// whatever resumes is a degraded prefix of what was journaled — known sweep
// IDs only, no invented completed points, never more than the original.
// (A sweep whose 'S' body was invented by corruption cannot appear: the
// frame CRC covers the body, and a flipped tag byte stops replay.)
func assertPrefixState(t *testing.T, what string, got []*journalSweep, orig map[string]map[int]bool) {
	t.Helper()
	if len(got) > len(orig) {
		t.Fatalf("%s: resurrected %d sweeps from %d originals", what, len(got), len(orig))
	}
	for _, js := range got {
		want, ok := orig[js.ID]
		if !ok {
			t.Fatalf("%s: resurrected unknown sweep %q", what, js.ID)
		}
		for idx := range js.Done {
			if !want[idx] {
				t.Fatalf("%s: sweep %s invented completed point %d", what, js.ID, idx)
			}
		}
	}
}

// buildCorruptionFixture journals two live sweeps and returns the raw file.
func buildCorruptionFixture(t *testing.T) ([]byte, map[string]map[int]bool) {
	t.Helper()
	dir := t.TempDir()
	j, err := openJournal(dir, fault.FS{})
	if err != nil {
		t.Fatal(err)
	}
	j.submitted("sw-aaaa", 1, tinyReq(64, 128))
	j.point("sw-aaaa", 0)
	j.point("sw-aaaa", 1)
	j.submitted("sw-bbbb", 1, tinyReq(256, 512))
	j.point("sw-bbbb", 1)
	j.close()
	blob, err := os.ReadFile(journalPath(dir))
	if err != nil {
		t.Fatal(err)
	}
	orig := map[string]map[int]bool{
		"sw-aaaa": {0: true, 1: true},
		"sw-bbbb": {1: true},
	}
	return blob, orig
}

// TestJournalEveryByteFlipDegrades mirrors the trace codec's every-byte-flip
// test for the sweep journal: flipping any single byte of the file must
// never crash boot and never resurrect state that was not journaled — a
// corrupt journal costs resumption, never correctness.
func TestJournalEveryByteFlipDegrades(t *testing.T) {
	blob, orig := buildCorruptionFixture(t)
	lost := false
	for i := range blob {
		mut := append([]byte(nil), blob...)
		mut[i] ^= 0xff
		got := replayedState(t, mut)
		assertPrefixState(t, "flip", got, orig)
		if len(got) < len(orig) {
			lost = true
		}
	}
	if !lost {
		t.Error("no byte flip ever degraded replay; the CRC framing is not being checked")
	}
}

// TestJournalTruncationDegrades: every possible crash-truncated tail of the
// journal replays to a valid prefix state — fewer sweeps or fewer completed
// points, never an error and never an invented one.
func TestJournalTruncationDegrades(t *testing.T) {
	blob, orig := buildCorruptionFixture(t)
	for cut := 0; cut <= len(blob); cut++ {
		got := replayedState(t, blob[:cut])
		assertPrefixState(t, "truncate", got, orig)
	}
}

// TestJournalAppendFaultsDegrade: with every journal append failing, the
// operations being journaled still succeed — failures are counted, never
// propagated — and nothing resumes on the next boot because nothing was
// durably logged.
func TestJournalAppendFaultsDegrade(t *testing.T) {
	dir := t.TempDir()
	j, err := openJournal(dir, fault.FS{Inj: mustFaults(t, "io.journal.append:err:1")})
	if err != nil {
		t.Fatal(err)
	}
	j.submitted("sw-aaaa", 1, tinyReq(64))
	j.point("sw-aaaa", 0)
	j.terminal("sw-aaaa", "done")
	records, appendErrs := j.stats()
	if appendErrs < 3 {
		t.Fatalf("append errors = %d, want every append counted", appendErrs)
	}
	if records != 0 {
		t.Fatalf("records = %d after all appends failed", records)
	}
	j.close()

	j2, err := openJournal(dir, fault.FS{})
	if err != nil {
		t.Fatal(err)
	}
	defer j2.close()
	if n := len(j2.resumableSweeps()); n != 0 {
		t.Fatalf("resumed %d sweeps from a journal that never persisted", n)
	}
}

// TestServerBootWithGarbageJournal: a server rebooting over a store whose
// journal is pure garbage serves normally — nothing resumes, the store's
// entries stay intact and warm.
func TestServerBootWithGarbageJournal(t *testing.T) {
	dir := t.TempDir()
	s1, err := New(Config{StoreDir: dir, Parallelism: 2})
	if err != nil {
		t.Fatal(err)
	}
	job, err := s1.Submit(tinyReq(64))
	if err != nil {
		t.Fatal(err)
	}
	waitJob(t, job)
	s1.Close()

	if err := os.WriteFile(journalPath(dir), bytes.Repeat([]byte("garbage!"), 64), 0o644); err != nil {
		t.Fatal(err)
	}
	s2, err := New(Config{StoreDir: dir, Parallelism: 2})
	if err != nil {
		t.Fatalf("boot over garbage journal: %v", err)
	}
	t.Cleanup(s2.Close)
	st := s2.Stats()
	if st.ResumedSweeps != 0 {
		t.Fatalf("garbage journal resumed %d sweeps", st.ResumedSweeps)
	}
	if st.Store.ResultEntries != 1 {
		t.Fatalf("store entries after garbage-journal boot = %d, want 1", st.Store.ResultEntries)
	}
	rejob, err := s2.Submit(tinyReq(64))
	if err != nil {
		t.Fatal(err)
	}
	final := waitJob(t, rejob)
	if final.Metrics.StoreHits != 1 || final.Metrics.Simulated != 0 {
		t.Fatalf("rerun metrics = %+v, want pure store hit", final.Metrics)
	}
}
