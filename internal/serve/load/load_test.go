package load

import (
	"context"
	"net/http/httptest"
	"testing"
	"time"

	"waymemo/internal/serve"
	"waymemo/internal/serve/client"
)

// TestLoadRunAgainstServer drives the full stack — typed client, SSE waits,
// overlapping variants — against an in-process daemon and checks the
// harness's accounting against the service promises.
func TestLoadRunAgainstServer(t *testing.T) {
	srv, err := serve.New(serve.Config{StoreDir: t.TempDir(), Parallelism: 2})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	ts := httptest.NewServer(srv)
	defer ts.Close()

	// Two variants sharing the 64-set point: 3 unique grid points across a
	// union of 4 requested per variant pair.
	variants := []serve.SweepRequest{
		{Sets: []int{64, 128}, TagEntries: []int{1}, SetEntries: []int{4},
			Workloads: []string{"synth:hotloop,fp=1KiB,n=2048"}},
		{Sets: []int{64, 256}, TagEntries: []int{1}, SetEntries: []int{4},
			Workloads: []string{"synth:hotloop,fp=1KiB,n=2048"}},
	}
	if uq, err := UniquePoints(variants); err != nil || uq != 3 {
		t.Fatalf("UniquePoints = %d, %v; want 3", uq, err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	const clients = 10
	rep, err := Run(ctx, client.New(ts.URL), Options{Clients: clients, Variants: variants})
	if err != nil {
		t.Fatal(err)
	}

	if rep.Clients != clients || rep.Points != clients*2 || rep.UniquePoints != 3 {
		t.Fatalf("report accounting off: %+v", rep)
	}
	// Cold store: exactly one simulation per unique point, everything else
	// deduped away.
	if rep.Simulations != 3 {
		t.Errorf("simulations = %d, want 3 (one per unique point)", rep.Simulations)
	}
	// 10 submissions over 2 distinct variants: 2 create jobs, the other 8
	// are absorbed by the idempotent content-hashed sweep IDs.
	if rep.DedupSweeps != int64(clients)-2 {
		t.Errorf("dedup sweeps = %d, want %d", rep.DedupSweeps, clients-2)
	}
	if want := 1 - 3.0/float64(rep.Points); rep.DedupRate < want-1e-9 {
		t.Errorf("dedup rate = %.3f, want >= %.3f", rep.DedupRate, want)
	}
	if rep.WarmRerunSimulations != 0 {
		t.Errorf("warm rerun simulated %d points, want 0", rep.WarmRerunSimulations)
	}
	if rep.WarmQueryMS <= 0 {
		t.Errorf("warm query latency not measured: %v", rep.WarmQueryMS)
	}
	if rep.String() == "" {
		t.Error("empty report rendering")
	}
}
