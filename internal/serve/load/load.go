// Package load is the serve daemon's load harness: it replays N overlapping
// client sweeps against one daemon, computes the unique grid points the
// variant set actually contains (the same content hash the daemon
// deduplicates on), and reports what the service layer promised — one
// simulation per unique point however many clients ask, warm reruns that
// simulate nothing, and warm analytics answered in microseconds. Both
// tools/loadgen (against a live daemon) and tools/benchrec (against an
// in-process server) run exactly this harness, so the CI assertion and the
// committed benchmark number measure the same thing.
package load

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"waymemo/internal/explore"
	"waymemo/internal/serve"
	"waymemo/internal/serve/client"
)

// Options configures one load run.
type Options struct {
	// Clients is how many concurrent sweep clients to replay (default 8).
	Clients int
	// Variants are the sweep requests the clients cycle through (client i
	// submits Variants[i % len]); at least one is required. Overlapping
	// variants are the point: the overlap is what the daemon dedups.
	Variants []serve.SweepRequest
	// WarmQueries is how many analytics queries to time per endpoint for
	// the warm-latency figure (default 16).
	WarmQueries int
	// SkipWarm skips the warm rerun + warm query phases.
	SkipWarm bool
}

// Report is one load run's outcome.
type Report struct {
	Clients int `json:"clients"`
	// Variants is how many distinct sweep requests the clients cycled
	// through; UniquePoints the size of their grid-point union.
	Variants     int `json:"variants"`
	Points       int `json:"points"`        // grid points requested, all clients
	UniquePoints int `json:"unique_points"` // distinct content-addressed points

	// Deltas of the daemon's counters across the run.
	Simulations int64 `json:"simulations"`
	StoreHits   int64 `json:"store_hits"`
	DedupJoins  int64 `json:"dedup_joins"`

	// DedupRate is the fraction of requested points served without a
	// simulation (1 - Simulations/Points).
	DedupRate float64 `json:"dedup_rate"`

	// WarmRerunSimulations counts simulations during the warm rerun of
	// every variant — the service promise is zero.
	WarmRerunSimulations int64 `json:"warm_rerun_simulations"`
	// WarmQueryMS is the median latency of a warm analytics query
	// (candidates/pareto/marginals/optimum, round-robin).
	WarmQueryMS float64 `json:"warm_query_ms"`

	ElapsedMS float64 `json:"elapsed_ms"`
}

// UniquePoints computes the union of content-addressed grid-point keys the
// variant set expands to — client-side, with the same explore.KeyWorkload
// hash the daemon dedups on, so a cold daemon must report exactly this many
// simulations.
func UniquePoints(variants []serve.SweepRequest) (int, error) {
	keys := map[string]bool{}
	for i, v := range variants {
		sp, err := v.Space()
		if err != nil {
			return 0, fmt.Errorf("load: variant %d: %w", i, err)
		}
		mabs := sp.MABs()
		for _, pt := range sp.Points() {
			keys[explore.KeyWorkload(sp.Domain, pt.Geometry, pt.Workload, sp.PacketBytes, mabs)] = true
		}
	}
	return len(keys), nil
}

// Run replays the load against the daemon behind c and reports.
func Run(ctx context.Context, c *client.Client, opts Options) (*Report, error) {
	if len(opts.Variants) == 0 {
		return nil, fmt.Errorf("load: no sweep variants")
	}
	clients := opts.Clients
	if clients <= 0 {
		clients = 8
	}
	warmQ := opts.WarmQueries
	if warmQ <= 0 {
		warmQ = 16
	}
	unique, err := UniquePoints(opts.Variants)
	if err != nil {
		return nil, err
	}
	before, err := c.Stats(ctx)
	if err != nil {
		return nil, fmt.Errorf("load: daemon stats: %w", err)
	}

	// Phase 1: N overlapping clients, every variant in flight at once.
	start := time.Now()
	ids := make([]string, clients)
	errs := make([]error, clients)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sub, err := c.Submit(ctx, opts.Variants[i%len(opts.Variants)])
			if err != nil {
				errs[i] = err
				return
			}
			ids[i] = sub.ID
			_, errs[i] = c.Wait(ctx, sub.ID)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("load: client %d: %w", i, err)
		}
	}
	elapsed := time.Since(start)

	after, err := c.Stats(ctx)
	if err != nil {
		return nil, err
	}
	points := after.Points - before.Points
	rep := &Report{
		Clients:      clients,
		Variants:     len(opts.Variants),
		Points:       int(points),
		UniquePoints: unique,
		Simulations:  after.Simulations - before.Simulations,
		StoreHits:    after.StoreHits - before.StoreHits,
		DedupJoins:   after.DedupJoins - before.DedupJoins,
		ElapsedMS:    elapsed.Seconds() * 1000,
	}
	if points > 0 {
		rep.DedupRate = 1 - float64(rep.Simulations)/float64(points)
	}
	if opts.SkipWarm {
		return rep, nil
	}

	// Phase 2: warm rerun of every variant — the store is hot, so the
	// promise is zero additional simulations.
	for _, v := range opts.Variants {
		sub, err := c.Submit(ctx, v)
		if err != nil {
			return nil, fmt.Errorf("load: warm rerun: %w", err)
		}
		if _, err := c.Wait(ctx, sub.ID); err != nil {
			return nil, fmt.Errorf("load: warm rerun: %w", err)
		}
	}
	warm, err := c.Stats(ctx)
	if err != nil {
		return nil, err
	}
	rep.WarmRerunSimulations = warm.Simulations - after.Simulations

	// Phase 3: warm analytics latency on one finished sweep.
	id := ids[0]
	lat := make([]time.Duration, 0, warmQ)
	for q := 0; q < warmQ; q++ {
		t0 := time.Now()
		switch q % 4 {
		case 0:
			_, err = c.Candidates(ctx, id)
		case 1:
			_, err = c.Pareto(ctx, id)
		case 2:
			_, err = c.Marginals(ctx, id)
		case 3:
			_, err = c.Optimum(ctx, id)
		}
		if err != nil {
			return nil, fmt.Errorf("load: warm query: %w", err)
		}
		lat = append(lat, time.Since(t0))
	}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	rep.WarmQueryMS = lat[len(lat)/2].Seconds() * 1000
	return rep, nil
}

// String renders the report for terminals.
func (r *Report) String() string {
	return fmt.Sprintf(
		"clients         %d (x%d variants)\n"+
			"points          %d requested, %d unique\n"+
			"served          %d simulated, %d store hits, %d dedup joins\n"+
			"dedup rate      %.1f%%\n"+
			"warm rerun      %d simulations\n"+
			"warm query      %.3f ms (median)\n"+
			"elapsed         %.0f ms",
		r.Clients, r.Variants, r.Points, r.UniquePoints,
		r.Simulations, r.StoreHits, r.DedupJoins,
		100*r.DedupRate, r.WarmRerunSimulations, r.WarmQueryMS, r.ElapsedMS)
}
