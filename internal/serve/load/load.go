// Package load is the serve daemon's load harness: it replays N overlapping
// client sweeps against one daemon, computes the unique grid points the
// variant set actually contains (the same content hash the daemon
// deduplicates on), and reports what the service layer promised — one
// simulation per unique point however many clients ask, warm reruns that
// simulate nothing, and warm analytics answered in microseconds. Both
// tools/loadgen (against a live daemon) and tools/benchrec (against an
// in-process server) run exactly this harness, so the CI assertion and the
// committed benchmark number measure the same thing.
package load

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"waymemo/internal/explore"
	"waymemo/internal/serve"
	"waymemo/internal/serve/client"
)

// ErrWrongResult is wrapped by Run when Verify finds two clients of the
// same variant holding different grids — the one failure mode the whole
// system promises can never happen, under any fault.
var ErrWrongResult = errors.New("load: wrong result")

// Options configures one load run.
type Options struct {
	// Clients is how many concurrent sweep clients to replay (default 8).
	Clients int
	// Variants are the sweep requests the clients cycle through (client i
	// submits Variants[i % len]); at least one is required. Overlapping
	// variants are the point: the overlap is what the daemon dedups.
	Variants []serve.SweepRequest
	// WarmQueries is how many analytics queries to time per endpoint for
	// the warm-latency figure (default 16).
	WarmQueries int
	// SkipWarm skips the warm rerun + warm query phases.
	SkipWarm bool
	// AllowFailures tolerates clients whose sweeps still fail after the
	// client's retries (chaos runs): they count into Failed/SuccessRate
	// instead of failing the run. At least one client must succeed.
	AllowFailures bool
	// Verify cross-checks every successful client's full grid against the
	// other clients of the same variant, byte for byte. Any divergence is
	// an ErrWrongResult — correctness is never probabilistic, even under
	// fault injection.
	Verify bool
	// CaptureGrid stores variant 0's full grid into Report.Grid, so a
	// kill-resume harness can compare the resumed run's grid bit-for-bit
	// against an uninterrupted reference run.
	CaptureGrid bool
}

// Report is one load run's outcome.
type Report struct {
	Clients int `json:"clients"`
	// Variants is how many distinct sweep requests the clients cycled
	// through; UniquePoints the size of their grid-point union.
	Variants     int `json:"variants"`
	Points       int `json:"points"`        // grid points requested, all clients
	UniquePoints int `json:"unique_points"` // distinct content-addressed points

	// Succeeded and Failed count clients whose sweep completed (after any
	// client-side retries) versus gave up; SuccessRate = Succeeded/Clients.
	Succeeded   int     `json:"succeeded"`
	Failed      int     `json:"failed"`
	SuccessRate float64 `json:"success_rate"`

	// Deltas of the daemon's counters across the run.
	Simulations int64 `json:"simulations"`
	StoreHits   int64 `json:"store_hits"`
	DedupJoins  int64 `json:"dedup_joins"`
	// DedupSweeps counts submissions the daemon absorbed into an existing
	// identical job (idempotent sweep IDs); ResumedSweeps counts sweeps the
	// daemon resurrected from its journal — nonzero only when the daemon
	// (re)booted during the run, which is exactly what a kill-resume
	// harness asserts on.
	DedupSweeps   int64 `json:"dedup_sweeps"`
	ResumedSweeps int64 `json:"resumed_sweeps"`

	// ShedSweeps is how many submissions the daemon's admission controller
	// rejected during the run (each typically retried by the client), and
	// ShedRate that count over all submission outcomes (shed + accepted).
	ShedSweeps int64   `json:"shed_sweeps"`
	ShedRate   float64 `json:"shed_rate"`
	// FaultsInjected is the daemon's injected-fault delta (0 unless it
	// runs with -fault-spec).
	FaultsInjected int64 `json:"faults_injected,omitempty"`
	// VerifiedClients is how many client grids the Verify cross-check
	// compared (0 when Verify is off).
	VerifiedClients int `json:"verified_clients,omitempty"`

	// DedupRate is the fraction of requested points served without a
	// simulation (1 - Simulations/Points).
	DedupRate float64 `json:"dedup_rate"`

	// WarmRerunSimulations counts simulations during the warm rerun of
	// every variant — the service promise is zero.
	WarmRerunSimulations int64 `json:"warm_rerun_simulations"`
	// WarmQueryMS is the median latency of a warm analytics query
	// (candidates/pareto/marginals/optimum, round-robin).
	WarmQueryMS float64 `json:"warm_query_ms"`

	ElapsedMS float64 `json:"elapsed_ms"`

	// Grid is variant 0's full result grid, captured when
	// Options.CaptureGrid is set; excluded from the report's JSON (it can
	// be large) — tools/loadgen writes it to its own file.
	Grid []explore.PointResult `json:"-"`
}

// UniquePoints computes the union of content-addressed grid-point keys the
// variant set expands to — client-side, with the same explore.KeyWorkload
// hash the daemon dedups on, so a cold daemon must report exactly this many
// simulations.
func UniquePoints(variants []serve.SweepRequest) (int, error) {
	keys := map[string]bool{}
	for i, v := range variants {
		sp, err := v.Space()
		if err != nil {
			return 0, fmt.Errorf("load: variant %d: %w", i, err)
		}
		mabs := sp.MABs()
		for _, pt := range sp.Points() {
			keys[explore.KeyWorkload(sp.Domain, pt.Geometry, pt.Workload, sp.PacketBytes, mabs)] = true
		}
	}
	return len(keys), nil
}

// Run replays the load against the daemon behind c and reports.
func Run(ctx context.Context, c *client.Client, opts Options) (*Report, error) {
	if len(opts.Variants) == 0 {
		return nil, fmt.Errorf("load: no sweep variants")
	}
	clients := opts.Clients
	if clients <= 0 {
		clients = 8
	}
	warmQ := opts.WarmQueries
	if warmQ <= 0 {
		warmQ = 16
	}
	unique, err := UniquePoints(opts.Variants)
	if err != nil {
		return nil, err
	}
	before, err := c.Stats(ctx)
	if err != nil {
		return nil, fmt.Errorf("load: daemon stats: %w", err)
	}

	// Phase 1: N overlapping clients, every variant in flight at once.
	// Each client drives its sweep through client.Run, so a retry-enabled
	// client rides out shedding, dropped streams and retryable sweep
	// failures on its own; with no retry policy this is plain submit+wait.
	start := time.Now()
	ids := make([]string, clients)
	errs := make([]error, clients)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			st, err := c.Run(ctx, opts.Variants[i%len(opts.Variants)], nil)
			if err != nil {
				errs[i] = err
				return
			}
			ids[i] = st.ID
		}(i)
	}
	wg.Wait()
	succeeded := 0
	for i, err := range errs {
		if err == nil {
			succeeded++
			continue
		}
		if !opts.AllowFailures {
			return nil, fmt.Errorf("load: client %d: %w", i, err)
		}
	}
	if succeeded == 0 {
		return nil, fmt.Errorf("load: every client failed; first: %w", errs[0])
	}
	elapsed := time.Since(start)

	after, err := c.Stats(ctx)
	if err != nil {
		return nil, err
	}
	// Demand is measured by RequestedPoints: with idempotent sweep IDs, N
	// identical submissions collapse into one job, so the per-point serving
	// counters no longer see each client's grid — but every accepted
	// submission still contributes its grid size to RequestedPoints, which
	// keeps DedupRate meaning "fraction of what clients asked for that
	// needed no simulation".
	points := after.RequestedPoints - before.RequestedPoints
	rep := &Report{
		Clients:       clients,
		Variants:      len(opts.Variants),
		Points:        int(points),
		UniquePoints:  unique,
		Succeeded:     succeeded,
		Failed:        clients - succeeded,
		SuccessRate:   float64(succeeded) / float64(clients),
		Simulations:   after.Simulations - before.Simulations,
		StoreHits:     after.StoreHits - before.StoreHits,
		DedupJoins:    after.DedupJoins - before.DedupJoins,
		DedupSweeps:   after.DedupSweeps - before.DedupSweeps,
		ResumedSweeps: after.ResumedSweeps - before.ResumedSweeps,
		ShedSweeps:    after.ShedSweeps - before.ShedSweeps,
		ElapsedMS:     elapsed.Seconds() * 1000,
	}
	if points > 0 {
		rep.DedupRate = 1 - float64(rep.Simulations)/float64(points)
	}
	if outcomes := rep.ShedSweeps + (after.Sweeps - before.Sweeps); outcomes > 0 {
		rep.ShedRate = float64(rep.ShedSweeps) / float64(outcomes)
	}
	rep.FaultsInjected = faultTotal(after.Faults) - faultTotal(before.Faults)

	// Verification: clients of the same variant must hold bit-identical
	// grids — under faults, under shedding, under retries, always. This is
	// the paper's memoization contract surfacing at the service layer:
	// faults may change cost (who simulated, who joined, who retried) but
	// never results.
	if opts.Verify {
		canonical := map[int]string{} // variant index -> grid JSON
		owner := map[int]int{}
		for i, id := range ids {
			if id == "" {
				continue
			}
			res, err := c.Result(ctx, id)
			if err != nil {
				return nil, fmt.Errorf("load: verify fetch client %d: %w", i, err)
			}
			blob, err := json.Marshal(res.Points)
			if err != nil {
				return nil, err
			}
			v := i % len(opts.Variants)
			if prev, ok := canonical[v]; !ok {
				canonical[v], owner[v] = string(blob), i
			} else if prev != string(blob) {
				return nil, fmt.Errorf("%w: clients %d and %d disagree on variant %d's grid",
					ErrWrongResult, owner[v], i, v)
			}
			rep.VerifiedClients++
		}
	}
	if opts.CaptureGrid {
		for i, id := range ids {
			if id == "" || i%len(opts.Variants) != 0 {
				continue
			}
			res, err := c.Result(ctx, id)
			if err != nil {
				return nil, fmt.Errorf("load: grid capture client %d: %w", i, err)
			}
			rep.Grid = res.Points
			break
		}
		if rep.Grid == nil {
			return nil, fmt.Errorf("load: grid capture: no variant-0 client succeeded")
		}
	}
	if opts.SkipWarm {
		return rep, nil
	}

	// Phase 2: warm rerun of every variant — the store is hot, so the
	// promise is zero additional simulations.
	for _, v := range opts.Variants {
		if _, err := c.Run(ctx, v, nil); err != nil {
			return nil, fmt.Errorf("load: warm rerun: %w", err)
		}
	}
	warm, err := c.Stats(ctx)
	if err != nil {
		return nil, err
	}
	rep.WarmRerunSimulations = warm.Simulations - after.Simulations

	// Phase 3: warm analytics latency on one finished sweep (the first
	// client that succeeded — under AllowFailures that may not be ids[0]).
	id := ""
	for _, cand := range ids {
		if cand != "" {
			id = cand
			break
		}
	}
	lat := make([]time.Duration, 0, warmQ)
	for q := 0; q < warmQ; q++ {
		t0 := time.Now()
		switch q % 4 {
		case 0:
			_, err = c.Candidates(ctx, id)
		case 1:
			_, err = c.Pareto(ctx, id)
		case 2:
			_, err = c.Marginals(ctx, id)
		case 3:
			_, err = c.Optimum(ctx, id)
		}
		if err != nil {
			return nil, fmt.Errorf("load: warm query: %w", err)
		}
		lat = append(lat, time.Since(t0))
	}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	rep.WarmQueryMS = lat[len(lat)/2].Seconds() * 1000
	return rep, nil
}

// faultTotal sums a /v1/stats faults map (nil-safe).
func faultTotal(m map[string]int64) int64 {
	var t int64
	for _, v := range m {
		t += v
	}
	return t
}

// String renders the report for terminals.
func (r *Report) String() string {
	s := fmt.Sprintf(
		"clients         %d (x%d variants), %d succeeded / %d failed (%.1f%%)\n"+
			"points          %d requested, %d unique\n"+
			"served          %d simulated, %d store hits, %d dedup joins\n"+
			"dedup rate      %.1f%%\n"+
			"shed            %d sweeps (%.1f%% of submissions)",
		r.Clients, r.Variants, r.Succeeded, r.Failed, 100*r.SuccessRate,
		r.Points, r.UniquePoints,
		r.Simulations, r.StoreHits, r.DedupJoins,
		100*r.DedupRate, r.ShedSweeps, 100*r.ShedRate)
	if r.DedupSweeps > 0 {
		s += fmt.Sprintf("\nsweep dedup     %d submissions absorbed by identical jobs", r.DedupSweeps)
	}
	if r.ResumedSweeps > 0 {
		s += fmt.Sprintf("\nresumed         %d sweeps resurrected from the journal", r.ResumedSweeps)
	}
	if r.FaultsInjected > 0 {
		s += fmt.Sprintf("\nfaults          %d injected", r.FaultsInjected)
	}
	if r.VerifiedClients > 0 {
		s += fmt.Sprintf("\nverified        %d client grids bit-identical per variant", r.VerifiedClients)
	}
	s += fmt.Sprintf(
		"\nwarm rerun      %d simulations\n"+
			"warm query      %.3f ms (median)\n"+
			"elapsed         %.0f ms",
		r.WarmRerunSimulations, r.WarmQueryMS, r.ElapsedMS)
	return s
}
