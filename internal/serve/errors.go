package serve

import (
	"context"
	"errors"
	"fmt"
	"time"
)

// PointError is a sweep failure localized to one grid point: which key
// failed, whether this sweep merely joined another sweep's flight on it, and
// the underlying cause. It is the typed form clients retry on — almost every
// point failure (an injected I/O error, a leader that died mid-simulation,
// disk full) clears on a resubmit because grid points are content-keyed and
// idempotent, so Retryable defaults to true; only a daemon-shutdown
// cancellation is terminal.
type PointError struct {
	// Key is the grid point's content hash (explore.KeyWorkload).
	Key string
	// Joined is true when this sweep was a singleflight joiner: the failure
	// happened in another sweep's leader, and a retry will simply lead (or
	// join) a fresh flight.
	Joined bool
	// RetryAfter is the suggested client backoff before resubmitting;
	// 0 means "whenever".
	RetryAfter time.Duration
	// Err is the underlying failure.
	Err error
}

func (e *PointError) Error() string {
	who := "point"
	if e.Joined {
		who = "joined point"
	}
	return fmt.Sprintf("serve: %s %.12s: %v", who, e.Key, e.Err)
}

func (e *PointError) Unwrap() error { return e.Err }

// Retryable reports whether resubmitting the sweep can succeed. Everything
// but the daemon's own shutdown cancellation is worth retrying: the store
// degrades corrupt entries to re-simulations, failed flights are forgotten,
// and keys are idempotent.
func (e *PointError) Retryable() bool {
	return !errors.Is(e.Err, context.Canceled)
}

// OverloadError is admission control shedding a sweep: the daemon's point
// backlog is full (or it is draining for shutdown) and the sweep was
// rejected before any work happened. Always retryable — the HTTP layer maps
// it to 429 (or 503 when draining) with a Retry-After header.
type OverloadError struct {
	// Backlog is the number of unfinished admitted points at rejection time.
	Backlog int64
	// Draining is true when the daemon is shutting down rather than busy.
	Draining bool
	// RetryAfter is the suggested client backoff.
	RetryAfter time.Duration
}

func (e *OverloadError) Error() string {
	if e.Draining {
		return "serve: draining for shutdown, not accepting sweeps"
	}
	return fmt.Sprintf("serve: overloaded (%d points queued), sweep shed", e.Backlog)
}

// retryDetails extracts the client-facing retry contract from a job error:
// whether a resubmit can succeed and how long to wait first.
func retryDetails(err error) (retryable bool, retryAfter time.Duration) {
	var pe *PointError
	if errors.As(err, &pe) {
		return pe.Retryable(), pe.RetryAfter
	}
	var oe *OverloadError
	if errors.As(err, &oe) {
		return true, oe.RetryAfter
	}
	return false, 0
}
