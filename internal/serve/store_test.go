package serve

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"waymemo/internal/cache"
	"waymemo/internal/explore"
	"waymemo/internal/trace"
)

// fakeResult builds a distinguishable PointResult for store bookkeeping
// tests (no simulation involved).
func fakeResult(i int) *explore.PointResult {
	return &explore.PointResult{
		Geometry: cache.Config{Sets: 64, Ways: 2, LineBytes: 16},
		Workload: fmt.Sprintf("w%d", i),
		Cycles:   uint64(1000 + i),
		Instrs:   uint64(500 + i),
		Techs:    []explore.TechOutcome{{ID: "original"}},
	}
}

func TestStoreGetPutStats(t *testing.T) {
	st, err := OpenStore(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := st.Get("k0"); ok {
		t.Fatal("Get on empty store hit")
	}
	if err := st.Put("k0", fakeResult(0)); err != nil {
		t.Fatal(err)
	}
	pr, ok := st.Get("k0")
	if !ok || pr.Workload != "w0" {
		t.Fatalf("Get after Put: ok=%v pr=%+v", ok, pr)
	}
	s := st.Stats()
	if s.ResultEntries != 1 || s.ResultBytes <= 0 {
		t.Errorf("stats entries=%d bytes=%d, want 1 entry with bytes > 0", s.ResultEntries, s.ResultBytes)
	}
	if s.Hits != 1 || s.Misses != 1 || s.Puts != 1 {
		t.Errorf("stats hits=%d misses=%d puts=%d, want 1/1/1", s.Hits, s.Misses, s.Puts)
	}
}

// TestStoreAdoptsExisting: a reopened store adopts on-disk entries, so a
// restarted daemon resumes warm.
func TestStoreAdoptsExisting(t *testing.T) {
	dir := t.TempDir()
	st, err := OpenStore(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := st.Put(fmt.Sprintf("k%d", i), fakeResult(i)); err != nil {
			t.Fatal(err)
		}
	}
	re, err := OpenStore(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if s := re.Stats(); s.ResultEntries != 3 || s.ResultBytes <= 0 {
		t.Fatalf("reopened stats = %+v, want 3 adopted entries", s)
	}
	if pr, ok := re.Get("k1"); !ok || pr.Workload != "w1" {
		t.Fatalf("reopened Get(k1): ok=%v pr=%+v", ok, pr)
	}
}

// TestStoreLRUEviction: under a budget that holds two of four results, the
// two most recently used survive Enforce.
func TestStoreLRUEviction(t *testing.T) {
	dir := t.TempDir()
	seed, err := OpenStore(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if err := seed.Put(fmt.Sprintf("k%d", i), fakeResult(i)); err != nil {
			t.Fatal(err)
		}
	}
	// Size the budget to exactly the two entries we intend to keep.
	dc, err := explore.NewDirCache(filepath.Join(dir, "results"))
	if err != nil {
		t.Fatal(err)
	}
	var keep int64
	for _, k := range []string{"k2", "k3"} {
		e, ok := dc.Entry(k)
		if !ok {
			t.Fatalf("missing entry %s", k)
		}
		keep += e.Bytes
	}

	st, err := OpenStore(dir, keep+1)
	if err != nil {
		t.Fatal(err)
	}
	// Bump the keepers so k0/k1 are the LRU victims.
	for _, k := range []string{"k2", "k3"} {
		if _, ok := st.Get(k); !ok {
			t.Fatalf("Get(%s) missed before eviction", k)
		}
	}
	evRes, evTr := st.Enforce()
	if evRes != 2 || evTr != 0 {
		t.Fatalf("Enforce evicted %d results, %d traces; want 2, 0", evRes, evTr)
	}
	for _, k := range []string{"k2", "k3"} {
		if _, ok := st.Get(k); !ok {
			t.Errorf("recently used %s evicted", k)
		}
	}
	for _, k := range []string{"k0", "k1"} {
		if _, ok := st.Get(k); ok {
			t.Errorf("LRU victim %s survived", k)
		}
	}
	if s := st.Stats(); s.ResultBytes > s.BudgetBytes {
		t.Errorf("after Enforce: %d result bytes over budget %d", s.ResultBytes, s.BudgetBytes)
	}
}

// TestStoreTraceEviction: stale trace spill pairs are evicted before fresher
// results, and both files of a pair go together.
func TestStoreTraceEviction(t *testing.T) {
	// First pass just measures one result's on-disk size.
	probe, err := OpenStore(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := probe.Put("k0", fakeResult(0)); err != nil {
		t.Fatal(err)
	}
	resBytes := probe.Stats().ResultBytes

	// Budget fits the result plus half the trace pair, so Enforce must shed
	// the (older) trace pair and keep the result.
	st, err := OpenStore(t.TempDir(), resBytes+1000)
	if err != nil {
		t.Fatal(err)
	}
	old := time.Now().Add(-time.Hour)
	for _, name := range []string{"cap.wmtrace", "cap.json"} {
		p := filepath.Join(st.TraceDir(), name)
		if err := os.WriteFile(p, make([]byte, 1000), 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.Chtimes(p, old, old); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Put("k0", fakeResult(0)); err != nil {
		t.Fatal(err)
	}
	evRes, evTr := st.Enforce()
	if evRes != 0 || evTr != 1 {
		t.Fatalf("Enforce evicted %d results, %d trace pairs; want 0, 1", evRes, evTr)
	}
	for _, name := range []string{"cap.wmtrace", "cap.json"} {
		if _, err := os.Stat(filepath.Join(st.TraceDir(), name)); !os.IsNotExist(err) {
			t.Errorf("%s survived trace eviction (err=%v)", name, err)
		}
	}
	if _, ok := st.Get("k0"); !ok {
		t.Error("fresh result evicted instead of stale trace pair")
	}
	if s := st.Stats(); s.TraceEvictions != 1 || s.TraceFiles != 0 {
		t.Errorf("stats after trace eviction = %+v", s)
	}
}

// TestStoreMixedFormatTraceEviction: the store's byte budget is
// format-agnostic — a directory holding a legacy WMTRACE1 spill pair next to
// a current WMTRACE2 pair (what upgrading a long-lived daemon leaves behind)
// evicts by age across formats, and the surviving pair still decodes.
func TestStoreMixedFormatTraceEviction(t *testing.T) {
	// One real capture, spilled in both formats.
	var buf trace.Buffer
	addr := uint32(0x1000)
	for i := 0; i < 5000; i++ {
		buf.OnFetch(trace.FetchEvent{
			Addr: addr + 8, Prev: addr, Base: addr, Disp: 8,
			Kind: trace.KindSeq, First: i == 0,
		})
		addr += 8
		if i%4 == 0 {
			buf.OnData(trace.DataEvent{Addr: 0x8000 + uint32(i)*4, Base: 0x8000, Disp: int32(i), Size: 4})
		}
	}
	dir := t.TempDir()
	seed, err := OpenStore(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	write := func(name string, emit func(*os.File) error, age time.Duration) int64 {
		t.Helper()
		p := filepath.Join(seed.TraceDir(), name)
		f, err := os.Create(p)
		if err != nil {
			t.Fatal(err)
		}
		if err := emit(f); err != nil {
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
		when := time.Now().Add(-age)
		if err := os.Chtimes(p, when, when); err != nil {
			t.Fatal(err)
		}
		fi, err := os.Stat(p)
		if err != nil {
			t.Fatal(err)
		}
		return fi.Size()
	}
	sidecar := func(f *os.File) error { _, err := f.Write([]byte(`{"version":1}`)); return err }
	v1Bytes := write("legacy.wmtrace", func(f *os.File) error { _, err := buf.WriteToV1(f); return err }, time.Hour)
	v1Bytes += write("legacy.json", sidecar, time.Hour)
	v2Bytes := write("current.wmtrace", func(f *os.File) error { _, err := buf.WriteTo(f); return err }, 0)
	v2Bytes += write("current.json", sidecar, 0)
	if 2*v2Bytes >= v1Bytes {
		t.Fatalf("WMTRACE2 pair %dB not under half the WMTRACE1 pair %dB", v2Bytes, v1Bytes)
	}

	st, err := OpenStore(dir, v2Bytes+1)
	if err != nil {
		t.Fatal(err)
	}
	evRes, evTr := st.Enforce()
	if evRes != 0 || evTr != 1 {
		t.Fatalf("Enforce evicted %d results, %d trace pairs; want 0, 1", evRes, evTr)
	}
	for _, name := range []string{"legacy.wmtrace", "legacy.json"} {
		if _, err := os.Stat(filepath.Join(st.TraceDir(), name)); !os.IsNotExist(err) {
			t.Errorf("%s survived eviction (err=%v)", name, err)
		}
	}
	f, err := os.Open(filepath.Join(st.TraceDir(), "current.wmtrace"))
	if err != nil {
		t.Fatalf("surviving WMTRACE2 pair gone: %v", err)
	}
	defer f.Close()
	loaded, err := trace.ReadBuffer(f)
	if err != nil {
		t.Fatalf("surviving WMTRACE2 spill no longer decodes: %v", err)
	}
	if loaded.NumFetches() != buf.NumFetches() || loaded.NumDatas() != buf.NumDatas() {
		t.Errorf("survivor decodes to %d/%d events, want %d/%d",
			loaded.NumFetches(), loaded.NumDatas(), buf.NumFetches(), buf.NumDatas())
	}
}
