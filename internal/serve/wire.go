package serve

import (
	"fmt"
	"strings"

	"waymemo/internal/explore"
	"waymemo/internal/suite"
)

// SweepRequest is the wire form of an explore.Space: everything is named
// rather than embedded — workloads travel as benchmark names or synthetic
// specs (ranged knobs expand server-side) — so a request is plain JSON and
// two clients posting the same axes produce the same grid-point keys.
// Empty axes take the same defaults explore.Space does (the paper's grid
// and all seven benchmarks).
type SweepRequest struct {
	// Domain is "data" (default) or "fetch".
	Domain     string `json:"domain,omitempty"`
	Sets       []int  `json:"sets,omitempty"`
	Ways       []int  `json:"ways,omitempty"`
	LineBytes  []int  `json:"line_bytes,omitempty"`
	TagEntries []int  `json:"mab_tags,omitempty"`
	SetEntries []int  `json:"mab_sets,omitempty"`
	// Workloads holds benchmark names and/or synthetic specs
	// ("synth:pchase,fp=4KiB..64KiB"); empty means the paper's seven.
	Workloads   []string `json:"workloads,omitempty"`
	PacketBytes uint32   `json:"packet_bytes,omitempty"`
}

// Space resolves the request into a normalized explore.Space, expanding
// workload names and validating every axis.
func (r SweepRequest) Space() (explore.Space, error) {
	sp := explore.Space{
		Sets:          r.Sets,
		Ways:          r.Ways,
		LineBytes:     r.LineBytes,
		TagEntries:    r.TagEntries,
		SetEntries:    r.SetEntries,
		WorkloadSpecs: r.Workloads,
		PacketBytes:   r.PacketBytes,
	}
	switch strings.ToLower(r.Domain) {
	case "", "data", "d":
		sp.Domain = suite.Data
	case "fetch", "i", "instruction":
		sp.Domain = suite.Fetch
	default:
		return sp, fmt.Errorf("serve: unknown domain %q (valid: data, fetch)", r.Domain)
	}
	return sp.Normalize()
}

// SubmitResponse acknowledges an accepted sweep. Sweep IDs are derived
// from the content hash of the normalized request, so resubmitting an
// identical sweep — same process or after a daemon restart — returns the
// same ID instead of duplicating the job.
type SubmitResponse struct {
	ID string `json:"id"`
	// Points is the expanded grid size (ranged specs counted).
	Points int `json:"points"`
}

// JobMetrics is one sweep's serving breakdown: every grid point was
// served exactly one way, so StoreHits + DedupJoins + Simulated == Done,
// and Done == Points once the sweep completes.
type JobMetrics struct {
	Points int `json:"points"`
	Done   int `json:"done"`
	// StoreHits were answered from the shared result store, DedupJoins by
	// joining another client's in-flight simulation of the same key, and
	// Simulated by a simulation this sweep led.
	StoreHits  int `json:"store_hits"`
	DedupJoins int `json:"dedup_joins"`
	Simulated  int `json:"simulated"`

	ElapsedMS float64 `json:"elapsed_ms"`
}

// JobStatus reports one sweep job.
type JobStatus struct {
	ID    string `json:"id"`
	State string `json:"state"` // "running", "done" or "failed"
	Error string `json:"error,omitempty"`
	// Retryable (failed jobs only) reports whether resubmitting the same
	// request can succeed: true for transient failures (I/O faults, a dead
	// singleflight leader, shedding), false for the daemon's own shutdown.
	// Grid points are content-keyed, so a retried sweep redoes only what
	// never completed. RetryAfterMS, when nonzero, is the suggested wait.
	Retryable    bool  `json:"retryable,omitempty"`
	RetryAfterMS int64 `json:"retry_after_ms,omitempty"`
	// Epoch is the generation of this job's event log under its (stable,
	// content-derived) ID: it rises when a failed sweep is resubmitted or a
	// crashed daemon resumes the sweep from its journal.
	Epoch   int          `json:"epoch,omitempty"`
	Request SweepRequest `json:"request"`
	Metrics JobMetrics   `json:"metrics"`
}

// Event is one progress report on a sweep's SSE stream: a grid point
// starting ("start") or finishing ("done", with the Source that served
// it). Seq numbers the job's events from 0 so a reconnecting subscriber
// can detect replays; Epoch identifies which build of the event log Seq
// counts within — a resumed or resubmitted sweep starts a fresh log at a
// higher epoch, and a follower that sees the epoch rise must reset its
// sequence cursor instead of skipping the new log as already seen.
type Event struct {
	Seq      int    `json:"seq"`
	Epoch    int    `json:"epoch,omitempty"`
	Index    int    `json:"index"`
	Total    int    `json:"total"`
	Workload string `json:"workload"`
	Sets     int    `json:"sets"`
	Ways     int    `json:"ways"`
	Line     int    `json:"line_bytes"`
	Status   string `json:"status"`           // "start" or "done"
	Source   string `json:"source,omitempty"` // "store", "dedup" or "simulated"
}

// Point-serving sources, as reported in Event.Source and counted by
// JobMetrics and ServerStats.
const (
	SourceStore     = "store"
	SourceDedup     = "dedup"
	SourceSimulated = "simulated"
)

// ServerStats is the daemon-wide counter snapshot served by /v1/stats.
type ServerStats struct {
	// Sweeps counts accepted submissions; DedupSweeps the subset that were
	// absorbed by an existing live or completed job with the same
	// content-derived ID. RequestedPoints sums the grid sizes of all
	// accepted submissions (deduped ones included), so demand-side rates
	// like the load harness's dedup rate survive idempotent submission.
	Sweeps          int64 `json:"sweeps"`
	DedupSweeps     int64 `json:"dedup_sweeps"`
	RequestedPoints int64 `json:"requested_points"`
	Points          int64 `json:"points"`
	StoreHits       int64 `json:"store_hits"`
	DedupJoins      int64 `json:"dedup_joins"`
	Simulations     int64 `json:"simulations"`
	InFlightPoints  int   `json:"inflight_points"`

	// Journal and resume counters: records written to or replayed from the
	// write-ahead sweep journal, sweeps resurrected at boot, grid points a
	// resumed sweep skipped because the journal showed them already stored,
	// and simulation panics the daemon recovered into point failures.
	JournalRecords       int64 `json:"journal_records"`
	JournalAppendErrors  int64 `json:"journal_append_errors,omitempty"`
	ResumedSweeps        int64 `json:"resumed_sweeps"`
	ResumedPointsSkipped int64 `json:"resumed_points_skipped"`
	PanicsRecovered      int64 `json:"panics_recovered"`

	// BacklogPoints is the admission controller's live gauge (admitted,
	// unfinished grid points) and ShedSweeps how many sweeps it rejected
	// with 429/503.
	BacklogPoints int64 `json:"backlog_points"`
	ShedSweeps    int64 `json:"shed_sweeps"`

	// Faults counts injected faults by "site:kind", present only when the
	// daemon runs with -fault-spec — a chaos run is observable, a normal
	// run omits the field entirely.
	Faults map[string]int64 `json:"faults,omitempty"`

	Store  StoreStats            `json:"store"`
	Traces suite.TraceCacheStats `json:"traces"`
}

// OptimumResponse is /v1/sweeps/{id}/optimum: the measured power optimum
// plus the paper's pick for the domain, for the classic comparison.
type OptimumResponse struct {
	Optimum   explore.Candidate `json:"optimum"`
	PaperTags int               `json:"paper_tag_entries"`
	PaperSets int               `json:"paper_set_entries"`
}

// ResultResponse is /v1/sweeps/{id}/result: the full grid plus metrics.
type ResultResponse struct {
	Points  []explore.PointResult `json:"points"`
	Metrics JobMetrics            `json:"metrics"`
}

// errorResponse is every non-2xx body.
type errorResponse struct {
	Error string `json:"error"`
}
