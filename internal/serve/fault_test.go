package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"waymemo/internal/explore"
	"waymemo/internal/fault"
)

func mustFaults(t *testing.T, spec string) *fault.Injector {
	t.Helper()
	inj, err := fault.NewFromString(spec)
	if err != nil {
		t.Fatal(err)
	}
	return inj
}

// TestStoreBootRecovery plants every kind of crash debris a killed daemon
// can leave — a leftover atomic-write temp, a torn result entry, a torn
// trace pair, an orphaned trace half — and asserts the reopening sweep
// removes or quarantines each while adopting the intact entries.
func TestStoreBootRecovery(t *testing.T) {
	dir := t.TempDir()
	st, err := OpenStore(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if err := st.Put(fmt.Sprintf("k%d", i), fakeResult(i)); err != nil {
			t.Fatal(err)
		}
	}
	resDir := st.ResultDir()
	trDir := st.TraceDir()

	// Torn result: truncate k1's entry to half, as a crash that beat the
	// fsync would.
	p := filepath.Join(resDir, "k1.json")
	b, err := os.ReadFile(p)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(p, b[:len(b)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	// Leftover atomic-write temps in both directories.
	for _, tmp := range []string{filepath.Join(resDir, "k9.json.tmp123"), filepath.Join(trDir, "cap.wmtrace.tmp9")} {
		if err := os.WriteFile(tmp, []byte("partial"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	// Torn trace pair: a sidecar that parses but a trace file that is
	// garbage (fails its checksummed decode); and an orphaned half.
	if err := os.WriteFile(filepath.Join(trDir, "torn.json"), []byte(`{"version":2,"fetches":5,"datas":1}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(trDir, "torn.wmtrace"), []byte("not a trace"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(trDir, "orphan.wmtrace"), []byte("half a pair"), 0o644); err != nil {
		t.Fatal(err)
	}

	re, err := OpenStore(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	s := re.Stats()
	if s.RecoveredResults != 1 || s.RecoveredTraces != 2 || s.RecoveredTemps != 2 {
		t.Fatalf("recovery counters = %d results, %d traces, %d temps; want 1, 2, 2",
			s.RecoveredResults, s.RecoveredTraces, s.RecoveredTemps)
	}
	if s.ResultEntries != 1 {
		t.Errorf("adopted %d results, want just the intact k0", s.ResultEntries)
	}
	if pr, ok := re.Get("k0"); !ok || pr.Workload != "w0" {
		t.Errorf("intact entry k0 lost in recovery: ok=%v pr=%+v", ok, pr)
	}
	if _, ok := re.Get("k1"); ok {
		t.Error("torn entry k1 served after recovery")
	}
	// Quarantine renames, never deletes: the evidence survives for a human,
	// invisible to the store's scans.
	for _, name := range []string{
		filepath.Join(resDir, "k1.json.bad"),
		filepath.Join(trDir, "torn.wmtrace.bad"),
		filepath.Join(trDir, "torn.json.bad"),
		filepath.Join(trDir, "orphan.wmtrace.bad"),
	} {
		if _, err := os.Stat(name); err != nil {
			t.Errorf("quarantine file %s: %v", filepath.Base(name), err)
		}
	}
	if s.TraceFiles != 0 {
		t.Errorf("store still counts %d trace pairs after quarantine", s.TraceFiles)
	}
	// A second reopen finds nothing left to recover — recovery converges.
	re2, err := OpenStore(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if s2 := re2.Stats(); s2.RecoveredResults+s2.RecoveredTraces+s2.RecoveredTemps != 0 {
		t.Errorf("second boot recovered again: %+v", s2)
	}
}

// TestStoreCrashWriteMatrix kills the writer in every injectable way during
// a Put, then reopens the store and asserts the full contract: the failure
// surfaces (or, for the lying torn write, is caught at boot), recovery
// sweeps the debris, and the key is simply cold — a clean rewrite works.
func TestStoreCrashWriteMatrix(t *testing.T) {
	cases := []struct {
		kind        string
		putFails    bool
		wantTemps   int64 // temp files the crash leaves for recovery
		wantResults int64 // torn entries recovery must quarantine
	}{
		{kind: "err", putFails: true},
		{kind: "enospc", putFails: true},
		{kind: "shortwrite", putFails: true, wantTemps: 1},
		{kind: "rename", putFails: true, wantTemps: 1},
		{kind: "fsync", putFails: true},
		{kind: "tornwrite", putFails: false, wantResults: 1},
	}
	for _, c := range cases {
		t.Run(c.kind, func(t *testing.T) {
			dir := t.TempDir()
			fs := fault.FS{Inj: mustFaults(t, "io.result.write:"+c.kind+":1")}
			st, err := OpenStoreFS(dir, 0, fs)
			if err != nil {
				t.Fatal(err)
			}
			err = st.Put("k", fakeResult(0))
			if c.putFails != (err != nil) {
				t.Fatalf("Put under %s: err=%v, want failure=%v", c.kind, err, c.putFails)
			}
			if err != nil && !errors.Is(err, fault.ErrInjected) {
				t.Fatalf("Put error %v does not identify as injected", err)
			}

			re, err := OpenStore(dir, 0)
			if err != nil {
				t.Fatal(err)
			}
			s := re.Stats()
			if s.RecoveredTemps != c.wantTemps || s.RecoveredResults != c.wantResults {
				t.Fatalf("recovered %d temps, %d results; want %d, %d",
					s.RecoveredTemps, s.RecoveredResults, c.wantTemps, c.wantResults)
			}
			if _, ok := re.Get("k"); ok {
				t.Fatal("crashed write served as a result")
			}
			// The key is cold, not poisoned.
			if err := re.Put("k", fakeResult(0)); err != nil {
				t.Fatal(err)
			}
			if pr, ok := re.Get("k"); !ok || pr.Workload != "w0" {
				t.Fatalf("rewrite after recovery: ok=%v pr=%+v", ok, pr)
			}
		})
	}
}

// strippedGrid clones a finished job's points with the per-run Cached flag
// cleared, for bit-identical comparison across servers and restarts.
func strippedGrid(t *testing.T, job *Job) []explore.PointResult {
	t.Helper()
	grid, _, ok := job.result()
	if !ok {
		t.Fatal("no result")
	}
	pts := make([]explore.PointResult, len(grid.Points))
	copy(pts, grid.Points)
	for i := range pts {
		pts[i].Cached = false
	}
	return pts
}

func gridsEqual(t *testing.T, a, b []explore.PointResult) bool {
	t.Helper()
	ab, err := json.Marshal(a)
	if err != nil {
		t.Fatal(err)
	}
	bb, err := json.Marshal(b)
	if err != nil {
		t.Fatal(err)
	}
	return string(ab) == string(bb)
}

// TestServerTornWriteRestartRerun is the crash matrix end to end: a daemon
// whose every store and spill write is silently torn (rename lands, data
// does not — the lying-disk case) still completes its sweep correctly from
// memory; a restarted daemon quarantines the torn files at boot instead of
// serving them, and the rerun re-simulates to a bit-identical grid. Crashes
// cost simulations, never answers.
func TestServerTornWriteRestartRerun(t *testing.T) {
	dir := t.TempDir()
	s1, err := New(Config{StoreDir: dir, Parallelism: 2,
		Faults: mustFaults(t, "io.result.write:tornwrite:1;io.trace.write:tornwrite:1")})
	if err != nil {
		t.Fatal(err)
	}
	job, err := s1.Submit(tinyReq(64, 128))
	if err != nil {
		t.Fatal(err)
	}
	waitJob(t, job)
	first := strippedGrid(t, job)
	if got := s1.Stats(); got.Simulations != 2 {
		t.Fatalf("torn-write sweep simulated %d, want 2", got.Simulations)
	}
	s1.Close()

	s2, err := New(Config{StoreDir: dir, Parallelism: 2})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s2.Close)
	st := s2.Stats().Store
	if st.RecoveredResults != 2 {
		t.Fatalf("boot after torn writes recovered %d results, want 2 (stats %+v)", st.RecoveredResults, st)
	}
	if st.RecoveredTraces == 0 {
		t.Fatalf("boot after torn writes recovered no trace pairs (stats %+v)", st)
	}
	if st.ResultEntries != 0 {
		t.Fatalf("torn entries adopted: %d", st.ResultEntries)
	}

	rejob, err := s2.Submit(tinyReq(64, 128))
	if err != nil {
		t.Fatal(err)
	}
	final := waitJob(t, rejob)
	if final.Metrics.Simulated != 2 {
		t.Fatalf("rerun after recovery: %+v, want 2 fresh simulations", final.Metrics)
	}
	if !gridsEqual(t, first, strippedGrid(t, rejob)) {
		t.Fatal("rerun after torn-write crash differs from the original grid")
	}
}

// TestAdmissionControl exercises admit() directly: reservations under the
// cap succeed, overflow sheds with a typed retryable OverloadError, an
// over-cap sweep is still admitted when the backlog is empty, and draining
// sheds everything.
func TestAdmissionControl(t *testing.T) {
	s := newTestServer(t, 0, 1)
	s.cfg.MaxBacklog = 4

	if err := s.admit(3); err != nil {
		t.Fatalf("admit(3) under cap 4: %v", err)
	}
	err := s.admit(2)
	var oe *OverloadError
	if !errors.As(err, &oe) || oe.Backlog != 3 || oe.Draining {
		t.Fatalf("admit(2) at backlog 3 = %v, want OverloadError{Backlog: 3}", err)
	}
	if retryable, after := retryDetails(err); !retryable || after <= 0 {
		t.Fatalf("shed sweep retryable=%v after=%v, want retryable with backoff", retryable, after)
	}
	if err := s.admit(1); err != nil {
		t.Fatalf("admit(1) filling to the cap: %v", err)
	}
	s.backlog.Store(0)
	if err := s.admit(100); err != nil {
		t.Fatalf("over-cap sweep at empty backlog: %v, want admitted", err)
	}
	s.backlog.Store(0)

	s.BeginDrain()
	err = s.admit(1)
	if !errors.As(err, &oe) || !oe.Draining {
		t.Fatalf("admit while draining = %v, want draining OverloadError", err)
	}
	if s.shed.Load() != 2 {
		t.Errorf("shed counter = %d, want 2", s.shed.Load())
	}
}

// TestOverloadHTTP checks the wire form of shedding: 429 + Retry-After for
// a full backlog, 503 + Retry-After from /readyz and submit while draining,
// /healthz green throughout.
func TestOverloadHTTP(t *testing.T) {
	s := newTestServer(t, 0, 1)
	s.cfg.MaxBacklog = 2
	ts := httptest.NewServer(s)
	defer ts.Close()

	// Pretend two points are queued; the next sweep must shed.
	s.backlog.Store(2)
	blob, _ := json.Marshal(tinyReq(64))
	resp, err := http.Post(ts.URL+"/v1/sweeps", "application/json", bytes.NewReader(blob))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overloaded submit = %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Error("429 without Retry-After")
	}
	s.backlog.Store(0)

	s.BeginDrain()
	resp, err = http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || resp.Header.Get("Retry-After") == "" {
		t.Fatalf("draining /readyz = %d (Retry-After %q), want 503 with a hint",
			resp.StatusCode, resp.Header.Get("Retry-After"))
	}
	resp, err = http.Post(ts.URL+"/v1/sweeps", "application/json", bytes.NewReader(blob))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining submit = %d, want 503", resp.StatusCode)
	}
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("draining /healthz = %d, want 200 (alive, just leaving)", resp.StatusCode)
	}
}

// TestSingleflightJoinerTypedError: a leader that dies mid-flight must reach
// its joiners as a typed, retryable PointError marked Joined — the signal
// the client retry loop keys on — while the joiner's own cancellation stays
// a plain context error.
func TestSingleflightJoinerTypedError(t *testing.T) {
	var g flightGroup
	boom := errors.New("disk on fire")
	entered := make(chan struct{})
	gate := make(chan struct{})

	go func() {
		g.do(context.Background(), "k", func() (*explore.PointResult, bool, error) {
			close(entered)
			<-gate
			return nil, false, boom
		})
	}()
	<-entered

	joinerDone := make(chan error, 1)
	go func() {
		_, _, _, err := g.do(context.Background(), "k", nil)
		joinerDone <- err
	}()
	// The joiner is parked on the flight; release the leader to fail it.
	time.Sleep(50 * time.Millisecond)
	close(gate)

	err := <-joinerDone
	var pe *PointError
	if !errors.As(err, &pe) {
		t.Fatalf("joiner error %v is not a *PointError", err)
	}
	if !pe.Joined || pe.Key != "k" || !errors.Is(err, boom) {
		t.Fatalf("joiner PointError = %+v, want Joined on key k wrapping the cause", pe)
	}
	if !pe.Retryable() {
		t.Error("leader failure not retryable for the joiner")
	}
	// Shutdown cancellation is the one non-retryable point failure.
	term := &PointError{Key: "k", Err: context.Canceled}
	if term.Retryable() {
		t.Error("daemon-shutdown cancellation marked retryable")
	}
}

// subsCount reads a job's live SSE subscriber count.
func subsCount(j *Job) int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.subs)
}

// TestEventsDisconnectCleanup: an SSE subscriber that vanishes mid-stream
// (closed laptop, dropped connection) must unsubscribe and release its
// handler goroutine — a daemon streaming to the void forever is a leak.
func TestEventsDisconnectCleanup(t *testing.T) {
	s := newTestServer(t, 0, 1)
	ts := httptest.NewServer(s)
	defer ts.Close()

	// A hand-built running job keeps the stream open indefinitely.
	sp, err := tinyReq(64).Space()
	if err != nil {
		t.Fatal(err)
	}
	job := newJob("sw-test-sse", tinyReq(64), sp, 1, 1)
	s.jobsMu.Lock()
	s.jobs[job.id] = job
	s.jobsMu.Unlock()

	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, ts.URL+"/v1/sweeps/"+job.id+"/events", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()

	waitFor := func(want int, what string) {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for subsCount(job) != want {
			if time.Now().After(deadline) {
				t.Fatalf("%s: subscribers = %d, want %d", what, subsCount(job), want)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
	waitFor(1, "after attach")
	cancel()
	waitFor(0, "after client disconnect")
}

// TestServerChaosRetryInvariant is the paper's contract under fire: against
// a daemon injecting read errors, torn reads and lying torn writes into
// every store and spill operation, a retrying submitter still converges —
// and the grid it converges to is bit-identical to a fault-free server's.
// Faults move work (re-simulations, retries), never answers.
func TestServerChaosRetryInvariant(t *testing.T) {
	ref := newTestServer(t, 0, 2)
	refJob, err := ref.Submit(tinyReq(64, 128))
	if err != nil {
		t.Fatal(err)
	}
	waitJob(t, refJob)
	want := strippedGrid(t, refJob)

	// One worker keeps the seeded fault sequence deterministic: the roll
	// order is the (fixed) sequential operation order, so this test cannot
	// flake on scheduling.
	chaos, err := New(Config{StoreDir: t.TempDir(), Parallelism: 1,
		Faults: mustFaults(t, "seed=5;io:err:0.25;io:shortread:0.25;io.result.write:tornwrite:0.5")})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(chaos.Close)

	var done *Job
	attempts := 0
	for ; attempts < 100 && done == nil; attempts++ {
		job, err := chaos.Submit(tinyReq(64, 128))
		if err != nil {
			t.Fatalf("submit: %v", err)
		}
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
		st, err := job.Wait(ctx)
		cancel()
		if err != nil {
			t.Fatal(err)
		}
		if st.State == "done" {
			done = job
			break
		}
		// Every chaos failure must carry the retry contract.
		if !st.Retryable {
			t.Fatalf("injected failure not retryable: %s", st.Error)
		}
	}
	if done == nil {
		t.Fatalf("no successful sweep in %d attempts", attempts)
	}
	if !gridsEqual(t, want, strippedGrid(t, done)) {
		t.Fatal("chaos grid differs from the fault-free grid")
	}
	if chaos.cfg.Faults.Total() == 0 {
		t.Error("chaos run injected nothing; the test proved nothing")
	}
	// Backlog accounting survives failed sweeps: everything admitted was
	// released, so nothing is left to wedge the admission controller.
	if bl := chaos.backlog.Load(); bl != 0 {
		t.Errorf("backlog = %d after all sweeps finished, want 0", bl)
	}
}
