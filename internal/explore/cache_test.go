package explore

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"waymemo/internal/cache"
	"waymemo/internal/core"
	"waymemo/internal/suite"
	"waymemo/internal/workloads"
)

// cachedSpace is a single-point space, so cache behavior is easy to count.
func cachedSpace() Space {
	return Space{
		Domain:     suite.Data,
		TagEntries: []int{2},
		SetEntries: []int{8},
		Workloads:  []workloads.Workload{tinyWorkload("tiny")},
	}
}

func TestDirCacheHitMiss(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()

	cold, err := Run(ctx, cachedSpace(), WithCacheDir(dir))
	if err != nil {
		t.Fatal(err)
	}
	if cold.Hits != 0 || cold.Misses != 1 {
		t.Fatalf("cold: hits=%d misses=%d, want 0/1", cold.Hits, cold.Misses)
	}
	files, err := filepath.Glob(filepath.Join(dir, "*.json"))
	if err != nil || len(files) != 1 {
		t.Fatalf("cache files = %v (err %v), want exactly one", files, err)
	}

	warm, err := Run(ctx, cachedSpace(), WithCacheDir(dir))
	if err != nil {
		t.Fatal(err)
	}
	if warm.Hits != 1 || warm.Misses != 0 {
		t.Fatalf("warm: hits=%d misses=%d, want 1/0", warm.Hits, warm.Misses)
	}
	if !warm.Points[0].Cached {
		t.Error("warm point not flagged Cached")
	}
	if !gridsApproxEqual(stripCached(cold), stripCached(warm)) {
		t.Error("cached result differs from simulated result")
	}

	// A different space must not collide with the cached point.
	other := cachedSpace()
	other.SetEntries = []int{16}
	o, err := Run(ctx, other, WithCacheDir(dir))
	if err != nil {
		t.Fatal(err)
	}
	if o.Hits != 0 || o.Misses != 1 {
		t.Fatalf("different space: hits=%d misses=%d, want 0/1", o.Hits, o.Misses)
	}
}

func TestDirCacheCorruptFileRecovery(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()
	if _, err := Run(ctx, cachedSpace(), WithCacheDir(dir)); err != nil {
		t.Fatal(err)
	}
	files, _ := filepath.Glob(filepath.Join(dir, "*.json"))
	if len(files) != 1 {
		t.Fatalf("cache files = %v, want one", files)
	}

	// Read the valid cached point and truncate its technique list: still
	// shape-valid JSON, but it no longer answers for the grid point.
	blob, err := os.ReadFile(files[0])
	if err != nil {
		t.Fatal(err)
	}
	var pr PointResult
	if err := json.Unmarshal(blob, &pr); err != nil {
		t.Fatal(err)
	}
	pr.Techs = pr.Techs[:1]
	truncated, err := json.Marshal(pr)
	if err != nil {
		t.Fatal(err)
	}

	// Four corruption shapes: truncated JSON, valid-but-empty JSON,
	// garbage, and a shape-valid file for the wrong technique set. Each
	// must read as a miss, re-simulate, and heal the file.
	for _, blob := range []string{`{"geometry":`, `{}`, "not json at all", string(truncated)} {
		if err := os.WriteFile(files[0], []byte(blob), 0o644); err != nil {
			t.Fatal(err)
		}
		g, err := Run(ctx, cachedSpace(), WithCacheDir(dir))
		if err != nil {
			t.Fatalf("corrupt cache %q failed the sweep: %v", blob, err)
		}
		if g.Hits != 0 || g.Misses != 1 {
			t.Fatalf("corrupt cache %q: hits=%d misses=%d, want 0/1", blob, g.Hits, g.Misses)
		}
		healed, err := Run(ctx, cachedSpace(), WithCacheDir(dir))
		if err != nil {
			t.Fatal(err)
		}
		if healed.Hits != 1 {
			t.Fatalf("corrupt cache %q was not rewritten", blob)
		}
	}
}

// TestKeyGolden pins the cache-key scheme. If this test fails, the key
// derivation changed: bump keyVersion (stale cached results must not be
// replayed under the new scheme) and update the constant here.
func TestKeyGolden(t *testing.T) {
	got := Key(suite.Data, cache.FRV32K, "DCT", 0,
		[]core.Config{{TagEntries: 1, SetEntries: 4}, {TagEntries: 2, SetEntries: 8}})
	const want = "ba48404a17670c9c3893b90ef8730e7303bd0cff893904e602adfd9a6ae0d430"
	if got != want {
		t.Errorf("Key() = %s, want %s — the cache-key scheme changed; bump keyVersion", got, want)
	}
}

func TestKeySensitivity(t *testing.T) {
	geo := cache.FRV32K
	mabs := []core.Config{{TagEntries: 2, SetEntries: 8}}
	base := Key(suite.Data, geo, "DCT", 0, mabs)

	small := geo
	small.Sets = 256
	variants := map[string]string{
		"domain":   Key(suite.Fetch, geo, "DCT", 0, mabs),
		"geometry": Key(suite.Data, small, "DCT", 0, mabs),
		"workload": Key(suite.Data, geo, "FFT", 0, mabs),
		"packet":   Key(suite.Data, geo, "DCT", 16, mabs),
		"mabs": Key(suite.Data, geo, "DCT", 0,
			[]core.Config{{TagEntries: 2, SetEntries: 16}}),
		"mab order": Key(suite.Data, geo, "DCT", 0,
			[]core.Config{{TagEntries: 8, SetEntries: 2}}),
	}
	// Packet 0 means the 8-byte VLIW default: the two spellings must share
	// cache entries.
	if Key(suite.Data, geo, "DCT", 8, mabs) != base {
		t.Error("packet 0 and packet 8 produce different keys")
	}
	seen := map[string]string{base: "base"}
	for name, k := range variants {
		if k == base {
			t.Errorf("changing %s did not change the key", name)
		}
		if prev, dup := seen[k]; dup {
			t.Errorf("%s and %s collide", name, prev)
		}
		seen[k] = name
		if len(k) != 64 || strings.Trim(k, "0123456789abcdef") != "" {
			t.Errorf("%s: key %q is not hex SHA-256", name, k)
		}
	}
}

func TestNewDirCacheErrors(t *testing.T) {
	if _, err := NewDirCache(""); err == nil {
		t.Error("empty dir accepted")
	}
	// A file where the directory should be.
	f := filepath.Join(t.TempDir(), "occupied")
	if err := os.WriteFile(f, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := NewDirCache(f); err == nil {
		t.Error("file-as-dir accepted")
	}
}
