package explore

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"waymemo/internal/cache"
	"waymemo/internal/core"
	"waymemo/internal/suite"
	"waymemo/internal/workloads"
)

// cachedSpace is a single-point space, so cache behavior is easy to count.
func cachedSpace() Space {
	return Space{
		Domain:     suite.Data,
		TagEntries: []int{2},
		SetEntries: []int{8},
		Workloads:  []workloads.Workload{tinyWorkload("tiny")},
	}
}

func TestDirCacheHitMiss(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()

	cold, err := Run(ctx, cachedSpace(), WithCacheDir(dir))
	if err != nil {
		t.Fatal(err)
	}
	if cold.Hits != 0 || cold.Misses != 1 {
		t.Fatalf("cold: hits=%d misses=%d, want 0/1", cold.Hits, cold.Misses)
	}
	files, err := filepath.Glob(filepath.Join(dir, "*.json"))
	if err != nil || len(files) != 1 {
		t.Fatalf("cache files = %v (err %v), want exactly one", files, err)
	}

	warm, err := Run(ctx, cachedSpace(), WithCacheDir(dir))
	if err != nil {
		t.Fatal(err)
	}
	if warm.Hits != 1 || warm.Misses != 0 {
		t.Fatalf("warm: hits=%d misses=%d, want 1/0", warm.Hits, warm.Misses)
	}
	if !warm.Points[0].Cached {
		t.Error("warm point not flagged Cached")
	}
	if !gridsApproxEqual(stripCached(cold), stripCached(warm)) {
		t.Error("cached result differs from simulated result")
	}

	// A different space must not collide with the cached point.
	other := cachedSpace()
	other.SetEntries = []int{16}
	o, err := Run(ctx, other, WithCacheDir(dir))
	if err != nil {
		t.Fatal(err)
	}
	if o.Hits != 0 || o.Misses != 1 {
		t.Fatalf("different space: hits=%d misses=%d, want 0/1", o.Hits, o.Misses)
	}
}

func TestDirCacheCorruptFileRecovery(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()
	if _, err := Run(ctx, cachedSpace(), WithCacheDir(dir)); err != nil {
		t.Fatal(err)
	}
	files, _ := filepath.Glob(filepath.Join(dir, "*.json"))
	if len(files) != 1 {
		t.Fatalf("cache files = %v, want one", files)
	}

	// Read the valid cached point and truncate its technique list: still
	// shape-valid JSON, but it no longer answers for the grid point.
	blob, err := os.ReadFile(files[0])
	if err != nil {
		t.Fatal(err)
	}
	var pr PointResult
	if err := json.Unmarshal(blob, &pr); err != nil {
		t.Fatal(err)
	}
	pr.Techs = pr.Techs[:1]
	truncated, err := json.Marshal(pr)
	if err != nil {
		t.Fatal(err)
	}

	// Four corruption shapes: truncated JSON, valid-but-empty JSON,
	// garbage, and a shape-valid file for the wrong technique set. Each
	// must read as a miss, re-simulate, and heal the file.
	for _, blob := range []string{`{"geometry":`, `{}`, "not json at all", string(truncated)} {
		if err := os.WriteFile(files[0], []byte(blob), 0o644); err != nil {
			t.Fatal(err)
		}
		g, err := Run(ctx, cachedSpace(), WithCacheDir(dir))
		if err != nil {
			t.Fatalf("corrupt cache %q failed the sweep: %v", blob, err)
		}
		if g.Hits != 0 || g.Misses != 1 {
			t.Fatalf("corrupt cache %q: hits=%d misses=%d, want 0/1", blob, g.Hits, g.Misses)
		}
		healed, err := Run(ctx, cachedSpace(), WithCacheDir(dir))
		if err != nil {
			t.Fatal(err)
		}
		if healed.Hits != 1 {
			t.Fatalf("corrupt cache %q was not rewritten", blob)
		}
	}
}

// TestKeyGolden pins the cache-key scheme. If this test fails, the key
// derivation changed: bump keyVersion (stale cached results must not be
// replayed under the new scheme) and update the constant here.
func TestKeyGolden(t *testing.T) {
	got := Key(suite.Data, cache.FRV32K, "DCT", 0,
		[]core.Config{{TagEntries: 1, SetEntries: 4}, {TagEntries: 2, SetEntries: 8}})
	const want = "ba48404a17670c9c3893b90ef8730e7303bd0cff893904e602adfd9a6ae0d430"
	if got != want {
		t.Errorf("Key() = %s, want %s — the cache-key scheme changed; bump keyVersion", got, want)
	}
}

func TestKeySensitivity(t *testing.T) {
	geo := cache.FRV32K
	mabs := []core.Config{{TagEntries: 2, SetEntries: 8}}
	base := Key(suite.Data, geo, "DCT", 0, mabs)

	small := geo
	small.Sets = 256
	variants := map[string]string{
		"domain":   Key(suite.Fetch, geo, "DCT", 0, mabs),
		"geometry": Key(suite.Data, small, "DCT", 0, mabs),
		"workload": Key(suite.Data, geo, "FFT", 0, mabs),
		"packet":   Key(suite.Data, geo, "DCT", 16, mabs),
		"mabs": Key(suite.Data, geo, "DCT", 0,
			[]core.Config{{TagEntries: 2, SetEntries: 16}}),
		"mab order": Key(suite.Data, geo, "DCT", 0,
			[]core.Config{{TagEntries: 8, SetEntries: 2}}),
	}
	// Packet 0 means the 8-byte VLIW default: the two spellings must share
	// cache entries.
	if Key(suite.Data, geo, "DCT", 8, mabs) != base {
		t.Error("packet 0 and packet 8 produce different keys")
	}
	seen := map[string]string{base: "base"}
	for name, k := range variants {
		if k == base {
			t.Errorf("changing %s did not change the key", name)
		}
		if prev, dup := seen[k]; dup {
			t.Errorf("%s and %s collide", name, prev)
		}
		seen[k] = name
		if len(k) != 64 || strings.Trim(k, "0123456789abcdef") != "" {
			t.Errorf("%s: key %q is not hex SHA-256", name, k)
		}
	}
}

// TestDirCacheNestedDir pins that NewDirCache creates missing parents, so
// a serve store can lay out "store/results" without pre-creating anything.
func TestDirCacheNestedDir(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "store", "results", "v1")
	dc, err := NewDirCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := dc.Put("deadbeef", samplePointResult()); err != nil {
		t.Fatal(err)
	}
	if _, ok := dc.Get("deadbeef"); !ok {
		t.Fatal("nested-dir cache lost its entry")
	}
}

// samplePointResult builds a minimal shape-valid result for store tests.
func samplePointResult() *PointResult {
	return &PointResult{
		Geometry: cache.FRV32K,
		Workload: "tiny",
		Cycles:   100,
		Instrs:   50,
		Techs:    []TechOutcome{{ID: "original"}},
	}
}

func TestDirCacheStatsAndDelete(t *testing.T) {
	dc, err := NewDirCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	s, err := dc.Stats()
	if err != nil || s.Entries != 0 || s.Bytes != 0 {
		t.Fatalf("empty cache stats = %+v (err %v), want zeros", s, err)
	}
	keys := []string{"k1", "k2", "k3"}
	for _, k := range keys {
		if err := dc.Put(k, samplePointResult()); err != nil {
			t.Fatal(err)
		}
	}
	// A stray temp file from a killed writer must not count as an entry.
	if err := os.WriteFile(filepath.Join(dc.Dir(), "k4.tmp-123"), []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	s, err = dc.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if s.Entries != len(keys) {
		t.Errorf("Entries = %d, want %d", s.Entries, len(keys))
	}
	if s.Bytes <= 0 {
		t.Errorf("Bytes = %d, want > 0", s.Bytes)
	}
	ents, err := dc.Entries()
	if err != nil || len(ents) != len(keys) {
		t.Fatalf("Entries() = %d entries (err %v), want %d", len(ents), err, len(keys))
	}
	for _, e := range ents {
		if e.Bytes <= 0 || e.Key == "" {
			t.Errorf("entry %+v has empty key or zero size", e)
		}
	}

	if err := dc.Delete("k2"); err != nil {
		t.Fatal(err)
	}
	if _, ok := dc.Get("k2"); ok {
		t.Error("deleted key still readable")
	}
	if err := dc.Delete("k2"); err != nil {
		t.Errorf("deleting absent key: %v, want nil", err)
	}
	if s, _ = dc.Stats(); s.Entries != 2 {
		t.Errorf("after delete: Entries = %d, want 2", s.Entries)
	}
}

// TestDirCacheConcurrentSameKey hammers one key with concurrent writers and
// readers (run under -race in CI): readers must only ever observe a miss or
// a complete, shape-valid result — never a torn file.
func TestDirCacheConcurrentSameKey(t *testing.T) {
	dc, err := NewDirCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	want := samplePointResult()
	const workers = 8
	var wg sync.WaitGroup
	errs := make(chan error, workers*2)
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for n := 0; n < 50; n++ {
				if err := dc.Put("shared", want); err != nil {
					errs <- err
					return
				}
			}
		}()
		wg.Add(1)
		go func() {
			defer wg.Done()
			for n := 0; n < 50; n++ {
				pr, ok := dc.Get("shared")
				if !ok {
					continue // not yet written, or mid-rename: a legal miss
				}
				if pr.Workload != want.Workload || pr.Cycles != want.Cycles ||
					len(pr.Techs) != len(want.Techs) {
					errs <- fmt.Errorf("torn read: %+v", pr)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if pr, ok := dc.Get("shared"); !ok || pr.Cycles != want.Cycles {
		t.Fatal("final Get did not return the stored result")
	}
}

func TestNewDirCacheErrors(t *testing.T) {
	if _, err := NewDirCache(""); err == nil {
		t.Error("empty dir accepted")
	}
	// A file where the directory should be.
	f := filepath.Join(t.TempDir(), "occupied")
	if err := os.WriteFile(f, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := NewDirCache(f); err == nil {
		t.Error("file-as-dir accepted")
	}
}

// Cross-ISA key partitioning: the FRVL and RV32 renderings of one kernel
// must never share a result-cache entry — a collision would silently serve
// one ISA's energy numbers as the other's — while each frontend's default
// packet spelling (0) must share the entry with its explicit native width.
func TestKeyWorkloadCrossISA(t *testing.T) {
	geo := cache.FRV32K
	mabs := []core.Config{{TagEntries: 2, SetEntries: 8}}
	frvl, err := workloads.ByName("DCT")
	if err != nil {
		t.Fatal(err)
	}
	rv, err := workloads.ByName("rv32:DCT")
	if err != nil {
		t.Fatal(err)
	}
	kf := KeyWorkload(suite.Fetch, geo, frvl, 0, mabs)
	kr := KeyWorkload(suite.Fetch, geo, rv, 0, mabs)
	if kf == kr {
		t.Fatal("FRVL and RV32 DCT share a result-cache key")
	}
	// Even a workload whose name lacks the rv32: prefix is partitioned by
	// the ISA field itself.
	evil := rv
	evil.Name = frvl.Name
	if KeyWorkload(suite.Fetch, geo, evil, 0, mabs) == kf {
		t.Fatal("ISA field alone does not partition the keyspace")
	}
	// Per-frontend packet defaults: 0 ≡ 8 under FRVL, 0 ≡ 4 under RV32,
	// and the two resolved defaults stay distinct entries.
	if KeyWorkload(suite.Fetch, geo, frvl, 8, mabs) != kf {
		t.Error("FRVL packet 0 and packet 8 produce different keys")
	}
	if KeyWorkload(suite.Fetch, geo, rv, 4, mabs) != kr {
		t.Error("RV32 packet 0 and packet 4 produce different keys")
	}
	if KeyWorkload(suite.Fetch, geo, rv, 8, mabs) == kr {
		t.Error("RV32 packet 8 shares the packet-4 key")
	}
	// The string-name Key path (FRVL, empty ISA) must agree with
	// KeyWorkload on a non-synthetic FRVL workload, keeping pre-existing
	// cache entries reachable.
	if Key(suite.Fetch, geo, "DCT", 0, mabs) != kf {
		t.Error("Key and KeyWorkload disagree on a plain FRVL benchmark")
	}
}
