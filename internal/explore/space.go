// Package explore is the design-space exploration engine: it expands an
// axis specification (cache geometry, MAB sizes, workloads) into a grid of
// suite runs, executes the grid on a sharded worker pool with deterministic
// result ordering, memoizes completed grid points in an on-disk result
// cache, and extracts the analyses the paper's Section 4 performs by hand —
// per-configuration averages, per-axis marginals, the power/hit-rate Pareto
// frontier and the power-optimal MAB size (the paper picks 2 tags × 8 set
// indices for the D-cache and 2×16 for the I-cache).
//
// A Space is the what: one axis per swept parameter, every combination is
// simulated. Run is the how: each grid point — one (geometry, workload)
// pair with the conventional baseline and every MAB size of the space
// attached to a single simulator pass — runs independently, so points fan
// out over a worker pool and a context cancels mid-sweep:
//
//	grid, err := explore.Run(ctx, explore.PaperGrid(suite.Data),
//		explore.WithCacheDir(".explore-cache"),
//		explore.WithParallelism(4))
//	best, _ := explore.Optimum(grid.Candidates())
//
// The result cache applies the paper's own trick to the simulator: a grid
// point's inputs are hashed (geometry + technique set + workload + fetch
// packet, see Key) and a completed point is written to <hash>.json, so a
// repeated or resumed sweep skips every already-simulated point. Corrupt or
// truncated cache files are treated as misses and rewritten.
//
// Underneath the result cache sits the execute-once / replay-many trace
// engine (suite.TraceCache, on by default): a workload's event stream
// depends only on (workload, fetch packet), never on cache geometry or
// technique, so each workload is executed once per sweep and its captured
// trace is replayed to every geometry of the grid — G×W grid points cost W
// executions plus G×W cheap replays, bit-identical to executing each point
// live. WithTraceDir spills the captures as WMTRACE1 files for reuse across
// processes; WithTraceSharing(false) restores the old one-execution-per-
// point behavior.
package explore

import (
	"fmt"

	"waymemo/internal/cache"
	"waymemo/internal/core"
	"waymemo/internal/suite"
	"waymemo/internal/workloads"
)

// Space is an axis specification. The grid is the cross product of the
// geometry axes (Sets × Ways × LineBytes) and the workload axis; every grid
// point evaluates the conventional baseline plus one way-memoized technique
// per MAB configuration (TagEntries × SetEntries) in a single simulator
// pass. Nil axes take the paper's defaults.
type Space struct {
	// Domain selects which cache is swept: suite.Data or suite.Fetch.
	Domain suite.Domain

	// Geometry axes (defaults: the paper's 512 sets × 2 ways × 32-byte
	// lines, i.e. cache.FRV32K).
	Sets      []int
	Ways      []int
	LineBytes []int

	// MAB axes (defaults: the paper's grid, 1-2 tags × 4-32 set indices).
	TagEntries []int
	SetEntries []int

	// Workloads is the benchmark axis (default, when WorkloadSpecs is also
	// empty: the paper's seven).
	Workloads []workloads.Workload

	// WorkloadSpecs extends the workload axis by name: each entry is a
	// benchmark name or a synthetic spec ("synth:pchase,fp=64KiB,seed=7";
	// see internal/synth). A spec with a ranged knob
	// ("synth:pchase,fp=4KiB..64KiB") expands into one grid workload per
	// value, which is how a locality sweep becomes an explore axis.
	// Expanded workloads follow Workloads in spec order.
	WorkloadSpecs []string

	// PacketBytes overrides the fetch-packet size (0 = the 8-byte VLIW
	// packet).
	PacketBytes uint32
}

// PaperGrid returns the sweep of the paper's Section 4 for one cache
// domain: the fixed 32KB 2-way geometry, the full 1-2 × 4-32 MAB grid and
// all seven benchmarks.
func PaperGrid(domain suite.Domain) Space {
	return Space{Domain: domain}
}

// EngineBenchSpace is the reference multi-geometry sweep the repository's
// trace-engine benchmarks time: all three geometry axes swept (24
// geometries), two workloads, the baseline plus one MAB size per point.
// bench_test.go and tools/benchrec both measure exactly this space, so the
// committed BENCH_<n>.json numbers and `go test -bench` stay comparable.
func EngineBenchSpace() Space {
	return Space{
		Domain:     suite.Data,
		Sets:       []int{128, 256, 512, 1024},
		Ways:       []int{1, 2, 4},
		LineBytes:  []int{16, 32},
		TagEntries: []int{2},
		SetEntries: []int{8},
		Workloads:  []workloads.Workload{workloads.DCT(), workloads.FFT()},
	}
}

// Normalize fills defaulted axes, expands WorkloadSpecs into Workloads and
// validates every axis value. The returned Space is fully explicit: callers
// that schedule points themselves (the serve daemon) normalize once and
// then use Points, Techniques and MABs, which all assume explicit axes.
func (s Space) Normalize() (Space, error) { return s.normalized() }

// normalized fills defaulted axes and validates every axis value. The
// returned Space is fully explicit.
func (s Space) normalized() (Space, error) {
	if s.Domain != suite.Data && s.Domain != suite.Fetch {
		return s, fmt.Errorf("explore: invalid domain %d", s.Domain)
	}
	if len(s.Sets) == 0 {
		s.Sets = []int{cache.FRV32K.Sets}
	}
	if len(s.Ways) == 0 {
		s.Ways = []int{cache.FRV32K.Ways}
	}
	if len(s.LineBytes) == 0 {
		s.LineBytes = []int{cache.FRV32K.LineBytes}
	}
	if len(s.TagEntries) == 0 {
		s.TagEntries = []int{1, 2}
	}
	if len(s.SetEntries) == 0 {
		s.SetEntries = []int{4, 8, 16, 32}
	}
	if len(s.WorkloadSpecs) != 0 {
		expanded := append([]workloads.Workload{}, s.Workloads...)
		for _, spec := range s.WorkloadSpecs {
			ws, err := workloads.ExpandByName(spec)
			if err != nil {
				return s, fmt.Errorf("explore: workload axis: %w", err)
			}
			expanded = append(expanded, ws...)
		}
		s.Workloads, s.WorkloadSpecs = expanded, nil
	}
	if len(s.Workloads) == 0 {
		s.Workloads = workloads.All()
	}
	// sim.CPU masks the PC with PacketBytes-1, so anything that is not a
	// power of two >= 4 silently corrupts packet boundaries (0 selects the
	// 8-byte VLIW default).
	if pb := s.PacketBytes; pb != 0 && (pb < 4 || pb&(pb-1) != 0) {
		return s, fmt.Errorf("explore: packet bytes %d not a power of two >= 4", pb)
	}
	for _, geo := range s.Geometries() {
		if err := geo.Validate(); err != nil {
			return s, err
		}
	}
	for _, m := range s.MABs() {
		if m.TagEntries <= 0 || m.SetEntries <= 0 {
			return s, fmt.Errorf("explore: invalid MAB configuration %s", m)
		}
	}
	// Duplicate axis values would double-count grid points (and duplicate
	// technique IDs abort deep inside suite.Run); reject them up front.
	for _, ax := range []struct {
		name string
		vals []int
	}{
		{"sets", s.Sets}, {"ways", s.Ways}, {"line", s.LineBytes},
		{"mab-tags", s.TagEntries}, {"mab-sets", s.SetEntries},
	} {
		seenVal := map[int]bool{}
		for _, v := range ax.vals {
			if seenVal[v] {
				return s, fmt.Errorf("explore: duplicate %s axis value %d", ax.name, v)
			}
			seenVal[v] = true
		}
	}
	seen := map[string]bool{}
	for _, w := range s.Workloads {
		if w.Name == "" {
			return s, fmt.Errorf("explore: workload with empty name")
		}
		if seen[w.Name] {
			return s, fmt.Errorf("explore: duplicate workload %q", w.Name)
		}
		seen[w.Name] = true
	}
	return s, nil
}

// Geometries expands the geometry axes in deterministic order (Sets major,
// then Ways, then LineBytes).
func (s Space) Geometries() []cache.Config {
	out := make([]cache.Config, 0, len(s.Sets)*len(s.Ways)*len(s.LineBytes))
	for _, sets := range s.Sets {
		for _, ways := range s.Ways {
			for _, line := range s.LineBytes {
				out = append(out, cache.Config{Sets: sets, Ways: ways, LineBytes: line})
			}
		}
	}
	return out
}

// MABs expands the MAB axes in deterministic order (TagEntries major).
func (s Space) MABs() []core.Config {
	out := make([]core.Config, 0, len(s.TagEntries)*len(s.SetEntries))
	for _, nt := range s.TagEntries {
		for _, ns := range s.SetEntries {
			out = append(out, core.Config{TagEntries: nt, SetEntries: ns})
		}
	}
	return out
}

// NumPoints returns the number of grid points (simulator passes) the space
// expands to: one per geometry per workload. WorkloadSpecs entries count
// only after normalization (Run reports the true total via Progress).
func (s Space) NumPoints() int {
	return len(s.Sets) * len(s.Ways) * len(s.LineBytes) * len(s.Workloads)
}

// Point is one grid point: one workload simulated once under one geometry,
// with every technique of the space attached.
type Point struct {
	// Index is the point's position in the deterministic grid order
	// (geometry major, workload minor) and in Grid.Points.
	Index    int
	Geometry cache.Config
	Workload workloads.Workload
}

// Points expands the grid in deterministic order (geometry major, workload
// minor). Call it on a normalized Space — defaulted axes expand to nothing.
func (s Space) Points() []Point { return s.points() }

// points expands the grid in deterministic order.
func (s Space) points() []Point {
	out := make([]Point, 0, s.NumPoints())
	for _, geo := range s.Geometries() {
		for _, w := range s.Workloads {
			out = append(out, Point{Index: len(out), Geometry: geo, Workload: w})
		}
	}
	return out
}

// Techniques builds the per-point technique list: the domain's conventional
// baseline first, then one way-memoized technique per MAB configuration.
// Like Points it assumes a normalized Space.
func (s Space) Techniques() []suite.Technique { return s.techniques() }

// techniques builds the per-point technique list: the domain's conventional
// baseline first, then one way-memoized technique per MAB configuration.
func (s Space) techniques() []suite.Technique {
	techs := make([]suite.Technique, 0, 1+len(s.TagEntries)*len(s.SetEntries))
	switch s.Domain {
	case suite.Data:
		techs = append(techs, suite.MustLookup(suite.Data, suite.DOrig))
	case suite.Fetch:
		techs = append(techs, suite.MustLookup(suite.Fetch, suite.IOrig))
	}
	for _, m := range s.MABs() {
		id := suite.ID(fmt.Sprintf("mab-%dx%d", m.TagEntries, m.SetEntries))
		switch s.Domain {
		case suite.Data:
			techs = append(techs, suite.MABDataTechnique(id, "explore grid point", m))
		case suite.Fetch:
			techs = append(techs, suite.MABFetchTechnique(id, "explore grid point", m))
		}
	}
	return techs
}
