package explore

import (
	"context"
	"testing"

	"waymemo/internal/cache"
	"waymemo/internal/core"
	"waymemo/internal/suite"
	"waymemo/internal/workloads"
)

// TestWorkloadSpecsAxis checks that the WorkloadSpecs axis expands names
// and ranged synthetic specs into grid workloads.
func TestWorkloadSpecsAxis(t *testing.T) {
	s, err := Space{
		Domain:        suite.Data,
		WorkloadSpecs: []string{"DCT", "synth:hotloop,fp=1KiB..4KiB"},
	}.normalized()
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, w := range s.Workloads {
		names = append(names, w.Name)
	}
	want := []string{
		"DCT",
		"synth:hotloop,fp=1KiB,stride=4,n=65536,seed=1",
		"synth:hotloop,fp=2KiB,stride=4,n=65536,seed=1",
		"synth:hotloop,fp=4KiB,stride=4,n=65536,seed=1",
	}
	if len(names) != len(want) {
		t.Fatalf("workload axis = %v, want %v", names, want)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("workload axis = %v, want %v", names, want)
		}
	}
	if len(s.WorkloadSpecs) != 0 {
		t.Error("normalized space still carries unexpanded specs")
	}

	// Bad specs and duplicate expansions fail normalization.
	if _, err := (Space{Domain: suite.Data, WorkloadSpecs: []string{"synth:nope"}}).normalized(); err == nil {
		t.Error("bad spec accepted")
	}
	if _, err := (Space{Domain: suite.Data,
		WorkloadSpecs: []string{"synth:hotloop", "synth:hotloop,fp=4KiB"}}).normalized(); err == nil {
		t.Error("duplicate expanded workload accepted")
	}
}

// TestSyntheticKeyFingerprint checks the cache-key contract for synthetic
// workloads: the key covers the generated content, not just the name, and
// paper-benchmark keys are untouched (TestKeyGolden pins that separately).
func TestSyntheticKeyFingerprint(t *testing.T) {
	mabs := []core.Config{{TagEntries: 2, SetEntries: 8}}
	w, err := workloads.ByName("synth:pchase,fp=1KiB")
	if err != nil {
		t.Fatal(err)
	}
	base := KeyWorkload(suite.Data, cache.FRV32K, w, 0, mabs)
	nameOnly := Key(suite.Data, cache.FRV32K, w.Name, 0, mabs)
	if base == nameOnly {
		t.Error("synthetic key ignores the content fingerprint")
	}
	// A fingerprint change under the same name must change the key.
	forged := w
	forged.Sources = append([]string{"; edited\n"}, w.Sources...)
	if KeyWorkload(suite.Data, cache.FRV32K, forged, 0, mabs) == base {
		t.Error("synthetic key ignores a content change")
	}
	// Paper workloads reduce to the name-only key.
	dct, _ := workloads.ByName("DCT")
	if KeyWorkload(suite.Data, cache.FRV32K, dct, 0, mabs) != Key(suite.Data, cache.FRV32K, "DCT", 0, mabs) {
		t.Error("paper-benchmark key changed")
	}
}

// TestFootprintVsMABReach is the scenario-diversity characterization the
// paper's fixed benchmark grid cannot express: chase a random pointer cycle
// through a growing footprint and watch way-memoization degrade.
//
// The D-MAB memoizes at most SetEntries distinct line addresses, so a
// pointer chase over N = footprint/stride nodes hits nearly always while
// N fits the set table and collapses to zero once the cyclic chase exceeds
// it (LRU's adversarial case). The test pins three facts across a
// footprint ramp: the hit rate is monotonically non-increasing, the cliff
// sits exactly at the MAB's reach (SetEntries x stride bytes), and growing
// the set table moves the cliff proportionally (2x32 holds on footprints
// that defeat 2x8).
//
// The sweep runs through the full explore pipeline with a result cache, so
// a warm rerun doubles as the synthetic round-trip acceptance check: every
// point served from cache, zero new simulations, zero new captures.
func TestFootprintVsMABReach(t *testing.T) {
	space := Space{
		Domain:     suite.Data,
		TagEntries: []int{2},
		SetEntries: []int{8, 32},
		// 64-byte nodes: footprints 256B..4KiB give 4..64 chase nodes,
		// straddling both set-table sizes.
		WorkloadSpecs: []string{"synth:pchase,fp=256..4KiB,stride=64,seed=3"},
	}
	dir := t.TempDir()
	run := func() *Grid {
		g, err := Run(context.Background(), space, WithCacheDir(dir))
		if err != nil {
			t.Fatal(err)
		}
		return g
	}

	cold := run()
	if cold.Misses != 5 || cold.Hits != 0 {
		t.Fatalf("cold sweep: hits=%d misses=%d, want 0/5", cold.Hits, cold.Misses)
	}

	// Per MAB size: [footprint] -> hit rate, in sweep order.
	const stride = 64
	type mabCol struct {
		setEntries int
		rates      []float64
	}
	cols := []mabCol{{setEntries: 8}, {setEntries: 32}}
	var footprints []int
	for _, p := range cold.Points {
		footprints = append(footprints, 256<<len(footprints))
		for i := range cols {
			tech := p.Techs[i+1] // Techs[0] is the baseline
			if tech.SetEntries != cols[i].setEntries {
				t.Fatalf("tech order: got %dx%d at column %d", tech.TagEntries, tech.SetEntries, i)
			}
			cols[i].rates = append(cols[i].rates, tech.Stats.MABHitRate())
		}
	}

	for _, c := range cols {
		reach := c.setEntries * stride
		for i, fp := range footprints {
			rate := c.rates[i]
			t.Logf("2x%-2d fp=%-5d nodes=%-3d hit=%.4f", c.setEntries, fp, fp/stride, rate)
			if i > 0 && rate > c.rates[i-1]+0.005 {
				t.Errorf("2x%d: hit rate rises %f -> %f at fp=%d; want monotone degradation",
					c.setEntries, c.rates[i-1], rate, fp)
			}
			if fp <= reach && rate < 0.95 {
				t.Errorf("2x%d: fp=%d within reach %d but hit rate %f < 0.95",
					c.setEntries, fp, reach, rate)
			}
			if fp > reach && rate > 0.01 {
				t.Errorf("2x%d: fp=%d beyond reach %d but hit rate %f > 0.01",
					c.setEntries, fp, reach, rate)
			}
		}
	}
	// The larger set table must dominate, strictly so between the two
	// reaches (1KiB and 2KiB footprints defeat 2x8 but fit 2x32).
	for i, fp := range footprints {
		if cols[1].rates[i]+1e-9 < cols[0].rates[i] {
			t.Errorf("fp=%d: 2x32 (%f) below 2x8 (%f)", fp, cols[1].rates[i], cols[0].rates[i])
		}
		if fp > 8*stride && fp <= 32*stride && cols[1].rates[i] < cols[0].rates[i]+0.5 {
			t.Errorf("fp=%d: 2x32 (%f) should dwarf 2x8 (%f) between the reaches",
				fp, cols[1].rates[i], cols[0].rates[i])
		}
	}

	// Warm rerun: the full synthetic round trip is memoized — every point
	// a cache hit, nothing simulated, nothing captured.
	warm := run()
	if warm.Hits != 5 || warm.Misses != 0 {
		t.Fatalf("warm sweep: hits=%d misses=%d, want 5/0", warm.Hits, warm.Misses)
	}
	if warm.Traces.Captures != 0 || warm.Traces.Replays != 0 {
		t.Fatalf("warm sweep executed workloads: %+v", warm.Traces)
	}
}
