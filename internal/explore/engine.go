package explore

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"waymemo/internal/cache"
	"waymemo/internal/core"
	"waymemo/internal/pool"
	"waymemo/internal/power"
	"waymemo/internal/stats"
	"waymemo/internal/suite"
)

// TechOutcome is one technique's measurement at one grid point: the raw
// counters and the priced power breakdown. TagEntries == 0 marks the
// conventional baseline.
type TechOutcome struct {
	// ID is the technique name ("original", "mab-2x8", ...).
	ID string `json:"id"`
	// TagEntries and SetEntries are the MAB size, zero for the baseline.
	TagEntries int `json:"tag_entries,omitempty"`
	SetEntries int `json:"set_entries,omitempty"`

	Stats stats.Counters  `json:"stats"`
	Power power.Breakdown `json:"power"`
}

// PointResult is one completed grid point — everything the analysis layer
// needs, and exactly what the result cache stores on disk.
type PointResult struct {
	Geometry cache.Config `json:"geometry"`
	Workload string       `json:"workload"`
	Cycles   uint64       `json:"cycles"`
	Instrs   uint64       `json:"instrs"`
	// Techs is ordered: the baseline first, then the MAB grid in space
	// order.
	Techs []TechOutcome `json:"techs"`
	// Cached reports whether this run loaded the point from the result
	// cache instead of simulating it.
	Cached bool `json:"-"`
}

// Grid is a completed sweep: every point of the space, in deterministic
// grid order, plus this run's memoization outcome.
type Grid struct {
	// Space is the normalized specification (defaults filled in).
	Space Space
	// Points holds one result per grid point, geometry-major then
	// workload, independent of worker scheduling.
	Points []PointResult
	// Hits and Misses count grid points served from the result cache
	// versus simulated during this run. Hits+Misses == len(Points).
	Hits, Misses int
	// Traces reports the execute-once / replay-many engine's work: with
	// trace sharing on (the default), Captures counts full simulator
	// executions (at most one per workload × packet size) and Replays the
	// grid points served by replaying a capture.
	Traces suite.TraceCacheStats
}

// Progress reports one grid point starting (Done=false) or finishing.
// Callbacks are serialized by the engine.
type Progress struct {
	Index    int // position in the grid
	Total    int
	Geometry cache.Config
	Workload string
	// Cached is meaningful when Done: the point came from the result
	// cache.
	Cached bool
	Done   bool
}

// options collects the Run configuration; see the With* constructors.
type options struct {
	cache        Cache
	cacheDir     string
	parallelism  int
	progress     func(Progress)
	noTraceShare bool
	traceDir     string
}

// Option configures Run.
type Option func(*options) error

// WithCache memoizes grid points in the given cache (default: none, every
// point simulates).
func WithCache(c Cache) Option {
	return func(o *options) error { o.cache = c; return nil }
}

// WithCacheDir memoizes grid points in a DirCache over dir; the directory
// is created if needed. It overrides WithCache. An empty dir is an error —
// silently running uncached would be the costlier surprise.
func WithCacheDir(dir string) Option {
	return func(o *options) error {
		if dir == "" {
			return fmt.Errorf("explore: empty cache directory")
		}
		o.cacheDir = dir
		return nil
	}
}

// WithParallelism bounds the number of grid points simulated concurrently
// (default and n <= 0: GOMAXPROCS). Results are identical at every level.
func WithParallelism(n int) Option {
	return func(o *options) error { o.parallelism = n; return nil }
}

// WithProgress installs a callback invoked as grid points start and finish.
func WithProgress(fn func(Progress)) Option {
	return func(o *options) error { o.progress = fn; return nil }
}

// WithTraceSharing toggles the execute-once / replay-many engine (default
// on): every workload is executed once per sweep and its captured event
// stream is replayed to all geometries of the grid, which is bit-identical
// to executing each point live (the replay golden test in internal/suite
// pins this) and several times faster on multi-geometry sweeps. Turning it
// off forces one full execution per grid point — useful only for
// benchmarking the engine itself.
func WithTraceSharing(on bool) Option {
	return func(o *options) error { o.noTraceShare = !on; return nil }
}

// WithTraceDir additionally spills captured traces to dir as WMTRACE1 files
// (created if needed), so a later sweep in a fresh process reloads them
// instead of executing at all. An empty dir is an error.
func WithTraceDir(dir string) Option {
	return func(o *options) error {
		if dir == "" {
			return fmt.Errorf("explore: empty trace directory")
		}
		o.traceDir = dir
		return nil
	}
}

// Run expands the space into its grid and executes every point, fanning
// points out over a worker pool. Each point is one suite.Run over a single
// workload with the space's full technique list attached, so a point costs
// one simulator pass regardless of how many MAB sizes are swept — and with
// trace sharing (the default), even that pass happens only once per
// workload: the first point to need a workload executes it and captures its
// event streams, every other geometry replays the capture.
//
// With a result cache configured, points whose Key is already stored load
// instead of simulating, and newly simulated points are stored on
// completion — a warm cache re-runs an identical sweep without a single
// simulation (Grid.Misses == 0).
//
// Run returns the first error encountered (cancelling the remaining work),
// or ctx.Err() if the context ends first.
func Run(ctx context.Context, space Space, opts ...Option) (*Grid, error) {
	var o options
	for _, opt := range opts {
		if err := opt(&o); err != nil {
			return nil, err
		}
	}
	if o.cacheDir != "" {
		dc, err := NewDirCache(o.cacheDir)
		if err != nil {
			return nil, err
		}
		o.cache = dc
	}
	var tc *suite.TraceCache
	switch {
	case o.noTraceShare && o.traceDir != "":
		return nil, fmt.Errorf("explore: trace directory given but trace sharing disabled")
	case o.traceDir != "":
		var err error
		if tc, err = suite.NewDirTraceCache(o.traceDir); err != nil {
			return nil, err
		}
	case !o.noTraceShare:
		tc = suite.NewTraceCache()
	}
	s, err := space.normalized()
	if err != nil {
		return nil, err
	}
	pts := s.points()
	techs := s.techniques()
	mabs := s.MABs()

	var (
		progressMu   sync.Mutex
		hits, misses atomic.Int64
	)
	report := func(p Progress) {
		if o.progress == nil {
			return
		}
		progressMu.Lock()
		defer progressMu.Unlock()
		o.progress(p)
	}

	results := make([]PointResult, len(pts))
	err = pool.Run(ctx, len(pts), o.parallelism, func(runCtx context.Context, idx int) error {
		pt := pts[idx]
		report(Progress{Index: idx, Total: len(pts), Geometry: pt.Geometry, Workload: pt.Workload.Name})
		pr, cached, err := runPoint(runCtx, s, pt, techs, mabs, o.cache, tc)
		if err != nil {
			return err
		}
		if cached {
			hits.Add(1)
		} else {
			misses.Add(1)
		}
		results[idx] = *pr
		report(Progress{Index: idx, Total: len(pts), Geometry: pt.Geometry,
			Workload: pt.Workload.Name, Cached: cached, Done: true})
		return nil
	})
	if err != nil {
		return nil, err
	}
	g := &Grid{
		Space:  s,
		Points: results,
		Hits:   int(hits.Load()),
		Misses: int(misses.Load()),
	}
	if tc != nil {
		g.Traces = tc.Stats()
	}
	return g, nil
}

// cachedPointValid checks a cache hit against the grid point it must
// answer for. The content hash already pins the inputs, but a tampered or
// hand-edited file can hold shape-valid JSON for the wrong point; anything
// that does not match the expected technique list degrades to a miss and
// is re-simulated rather than poisoning the analysis.
func cachedPointValid(pr *PointResult, pt Point, techs []suite.Technique) bool {
	if pr.Geometry != pt.Geometry || pr.Workload != pt.Workload.Name ||
		len(pr.Techs) != len(techs) {
		return false
	}
	for i, t := range techs {
		if pr.Techs[i].ID != string(t.ID) {
			return false
		}
	}
	return true
}

// runPoint serves one grid point from the cache or simulates and stores it.
func runPoint(ctx context.Context, s Space, pt Point, techs []suite.Technique,
	mabs []core.Config, c Cache, tc *suite.TraceCache) (*PointResult, bool, error) {
	key := KeyWorkload(s.Domain, pt.Geometry, pt.Workload, s.PacketBytes, mabs)
	if c != nil {
		if pr, ok := c.Get(key); ok && cachedPointValid(pr, pt, techs) {
			pr.Cached = true
			return pr, true, nil
		}
	}
	runOpts := []suite.Option{
		suite.WithWorkloads(pt.Workload),
		suite.WithTechniques(techs...),
		suite.WithGeometry(pt.Geometry),
		suite.WithPacketBytes(s.PacketBytes),
		suite.WithParallelism(1),
	}
	if tc != nil {
		runOpts = append(runOpts, suite.WithTraceCache(tc))
	}
	r, err := suite.Run(ctx, runOpts...)
	if err != nil {
		return nil, false, err
	}
	b := r.Benchmarks[0]
	pr := &PointResult{
		Geometry: pt.Geometry,
		Workload: b.Name,
		Cycles:   b.Cycles,
		Instrs:   b.Instrs,
		Techs:    make([]TechOutcome, 0, len(techs)),
	}
	byID := b.D
	if s.Domain == suite.Fetch {
		byID = b.I
	}
	for i, t := range techs {
		tr, ok := byID[t.ID]
		if !ok {
			return nil, false, fmt.Errorf("explore: technique %q missing from results", t.ID)
		}
		out := TechOutcome{
			ID:    string(t.ID),
			Stats: *tr.Stats,
			Power: power.Compute(tr.Stats, b.Cycles, tr.Model),
		}
		if i > 0 { // techs[0] is the baseline; the rest follow mabs order
			out.TagEntries = mabs[i-1].TagEntries
			out.SetEntries = mabs[i-1].SetEntries
		}
		pr.Techs = append(pr.Techs, out)
	}
	if c != nil {
		if err := c.Put(key, pr); err != nil {
			return nil, false, err
		}
	}
	return pr, false, nil
}
