package explore

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"waymemo/internal/cache"
	"waymemo/internal/core"
	"waymemo/internal/pool"
	"waymemo/internal/power"
	"waymemo/internal/stats"
	"waymemo/internal/suite"
	"waymemo/internal/trace"
	"waymemo/internal/workloads"
)

// TechOutcome is one technique's measurement at one grid point: the raw
// counters and the priced power breakdown. TagEntries == 0 marks the
// conventional baseline.
type TechOutcome struct {
	// ID is the technique name ("original", "mab-2x8", ...).
	ID string `json:"id"`
	// TagEntries and SetEntries are the MAB size, zero for the baseline.
	TagEntries int `json:"tag_entries,omitempty"`
	SetEntries int `json:"set_entries,omitempty"`

	Stats stats.Counters  `json:"stats"`
	Power power.Breakdown `json:"power"`
}

// PointResult is one completed grid point — everything the analysis layer
// needs, and exactly what the result cache stores on disk.
type PointResult struct {
	Geometry cache.Config `json:"geometry"`
	Workload string       `json:"workload"`
	Cycles   uint64       `json:"cycles"`
	Instrs   uint64       `json:"instrs"`
	// Techs is ordered: the baseline first, then the MAB grid in space
	// order.
	Techs []TechOutcome `json:"techs"`
	// Cached reports whether this run loaded the point from the result
	// cache instead of simulating it.
	Cached bool `json:"-"`
}

// Grid is a completed sweep: every point of the space, in deterministic
// grid order, plus this run's memoization outcome.
type Grid struct {
	// Space is the normalized specification (defaults filled in).
	Space Space
	// Points holds one result per grid point, geometry-major then
	// workload, independent of worker scheduling.
	Points []PointResult
	// Hits and Misses count grid points served from the result cache
	// versus simulated during this run. Hits+Misses == len(Points).
	Hits, Misses int
	// Traces reports the execute-once / replay-many engine's work: with
	// trace sharing on (the default), Captures counts full simulator
	// executions (at most one per workload × packet size) and Replays the
	// grid points served by replaying a capture.
	Traces suite.TraceCacheStats
}

// Progress reports one grid point starting (Done=false) or finishing.
// Callbacks are serialized by the engine.
type Progress struct {
	Index    int // position in the grid
	Total    int
	Geometry cache.Config
	Workload string
	// Cached is meaningful when Done: the point came from the result
	// cache.
	Cached bool
	Done   bool
}

// options collects the Run configuration; see the With* constructors.
type options struct {
	cache        Cache
	cacheDir     string
	parallelism  int
	progress     func(Progress)
	noTraceShare bool
	traceDir     string
	noBatch      bool
}

// Option configures Run.
type Option func(*options) error

// WithCache memoizes grid points in the given cache (default: none, every
// point simulates).
func WithCache(c Cache) Option {
	return func(o *options) error { o.cache = c; return nil }
}

// WithCacheDir memoizes grid points in a DirCache over dir; the directory
// is created if needed. It overrides WithCache. An empty dir is an error —
// silently running uncached would be the costlier surprise.
func WithCacheDir(dir string) Option {
	return func(o *options) error {
		if dir == "" {
			return fmt.Errorf("explore: empty cache directory")
		}
		o.cacheDir = dir
		return nil
	}
}

// WithParallelism bounds the number of grid points simulated concurrently
// (default and n <= 0: GOMAXPROCS). Results are identical at every level.
func WithParallelism(n int) Option {
	return func(o *options) error { o.parallelism = n; return nil }
}

// WithProgress installs a callback invoked as grid points start and finish.
func WithProgress(fn func(Progress)) Option {
	return func(o *options) error { o.progress = fn; return nil }
}

// WithTraceSharing toggles the execute-once / replay-many engine (default
// on): every workload is executed once per sweep and its captured event
// stream is replayed to all geometries of the grid, which is bit-identical
// to executing each point live (the replay golden test in internal/suite
// pins this) and several times faster on multi-geometry sweeps. Turning it
// off forces one full execution per grid point — useful only for
// benchmarking the engine itself.
func WithTraceSharing(on bool) Option {
	return func(o *options) error { o.noTraceShare = !on; return nil }
}

// WithBatchReplay toggles the batched fan-out scheduling (default on).
// Batched, the engine turns a sweep into per-(workload, packet) fan-out
// tasks: each workload's uncached grid points are sharded across the worker
// pool, and every shard instantiates its points' technique sinks and feeds
// them all from a single pass over the workload's captured trace
// (suite.TraceCache.FanOut) — so a G-geometry sweep streams each capture a
// handful of times instead of once per technique per geometry. Off, the
// engine schedules one task per grid point, each replaying the capture once
// per sink — the legacy path, kept as an escape hatch for regression
// hunting. Results are bit-identical either way; ignored when trace sharing
// is disabled.
func WithBatchReplay(on bool) Option {
	return func(o *options) error { o.noBatch = !on; return nil }
}

// WithTraceDir additionally spills captured traces to dir as WMTRACE1 files
// (created if needed), so a later sweep in a fresh process reloads them
// instead of executing at all. An empty dir is an error.
func WithTraceDir(dir string) Option {
	return func(o *options) error {
		if dir == "" {
			return fmt.Errorf("explore: empty trace directory")
		}
		o.traceDir = dir
		return nil
	}
}

// Run expands the space into its grid and executes every point, fanning
// points out over a worker pool. Each point is one suite.Run over a single
// workload with the space's full technique list attached, so a point costs
// one simulator pass regardless of how many MAB sizes are swept — and with
// trace sharing (the default), even that pass happens only once per
// workload: the first point to need a workload executes it and captures its
// event streams, every other geometry replays the capture.
//
// With a result cache configured, points whose Key is already stored load
// instead of simulating, and newly simulated points are stored on
// completion — a warm cache re-runs an identical sweep without a single
// simulation (Grid.Misses == 0).
//
// Run returns the first error encountered (cancelling the remaining work),
// or ctx.Err() if the context ends first.
func Run(ctx context.Context, space Space, opts ...Option) (*Grid, error) {
	var o options
	for _, opt := range opts {
		if err := opt(&o); err != nil {
			return nil, err
		}
	}
	if o.cacheDir != "" {
		dc, err := NewDirCache(o.cacheDir)
		if err != nil {
			return nil, err
		}
		o.cache = dc
	}
	var tc *suite.TraceCache
	switch {
	case o.noTraceShare && o.traceDir != "":
		return nil, fmt.Errorf("explore: trace directory given but trace sharing disabled")
	case o.traceDir != "":
		var err error
		if tc, err = suite.NewDirTraceCache(o.traceDir); err != nil {
			return nil, err
		}
	case !o.noTraceShare:
		tc = suite.NewTraceCache()
	}
	s, err := space.normalized()
	if err != nil {
		return nil, err
	}
	pts := s.points()
	techs := s.techniques()
	mabs := s.MABs()

	var progressMu sync.Mutex
	report := func(p Progress) {
		if o.progress == nil {
			return
		}
		progressMu.Lock()
		defer progressMu.Unlock()
		o.progress(p)
	}

	results := make([]PointResult, len(pts))
	var hits, misses int
	if tc != nil && !o.noBatch {
		hits, misses, err = runFanOut(ctx, s, pts, techs, mabs, o, tc, report, results)
	} else {
		hits, misses, err = runPerPoint(ctx, s, pts, techs, mabs, o, tc, report, results)
	}
	if err != nil {
		return nil, err
	}
	g := &Grid{
		Space:  s,
		Points: results,
		Hits:   hits,
		Misses: misses,
	}
	if tc != nil {
		g.Traces = tc.Stats()
	}
	return g, nil
}

// runPerPoint is the one-task-per-grid-point scheduler: the live path (no
// trace sharing) and the legacy escape hatch (WithBatchReplay(false)).
func runPerPoint(ctx context.Context, s Space, pts []Point, techs []suite.Technique,
	mabs []core.Config, o options, tc *suite.TraceCache,
	report func(Progress), results []PointResult) (int, int, error) {
	var hits, misses atomic.Int64
	err := pool.Run(ctx, len(pts), o.parallelism, func(runCtx context.Context, idx int) error {
		pt := pts[idx]
		report(Progress{Index: idx, Total: len(pts), Geometry: pt.Geometry, Workload: pt.Workload.Name})
		pr, cached, err := runPoint(runCtx, s, pt, techs, mabs, o.cache, tc)
		if err != nil {
			return err
		}
		if cached {
			hits.Add(1)
		} else {
			misses.Add(1)
		}
		results[idx] = *pr
		report(Progress{Index: idx, Total: len(pts), Geometry: pt.Geometry,
			Workload: pt.Workload.Name, Cached: cached, Done: true})
		return nil
	})
	return int(hits.Load()), int(misses.Load()), err
}

// fanPoint is one grid point awaiting simulation, with its result-cache
// key already computed by the probe phase (empty without a cache) so the
// shard worker stores the result without rehashing the inputs.
type fanPoint struct {
	pt  Point
	key string
}

// fanShard is one scheduling unit of the batched fan-out: a slice of one
// workload's uncached grid points whose technique sinks are all fed by a
// single pass over the workload's capture.
type fanShard struct {
	w   workloads.Workload
	pts []fanPoint
}

// maxShardPoints bounds how many grid points one shard instantiates at
// once, capping the controller state a single fan-out pass holds live.
// minShardPoints floors the split the other way: below four points per
// pass, the fixed cost of decoding the capture's compressed columns stops
// amortizing and the sweep degenerates toward one-replay-per-point, so the
// scheduler prefers fewer, fuller shards over perfectly even worker
// occupancy.
const (
	maxShardPoints = 64
	minShardPoints = 4
)

// runFanOut is the batched per-(workload, packet) scheduler: result-cache
// hits are served first without touching the trace engine, then each
// workload's remaining points are sharded across the worker pool and every
// shard replays the capture once into all of its points' technique sinks.
// Point results land at their grid index and every point still gets its
// start/done progress pair, so ordering and reporting are indistinguishable
// from the per-point scheduler.
func runFanOut(ctx context.Context, s Space, pts []Point, techs []suite.Technique,
	mabs []core.Config, o options, tc *suite.TraceCache,
	report func(Progress), results []PointResult) (int, int, error) {
	// Phase 1: serve result-cache hits serially — a fully warm cache
	// finishes the sweep without a single capture or replay.
	hits := 0
	missed := make(map[string][]fanPoint, len(s.Workloads))
	groups := 0
	for _, pt := range pts {
		if err := ctx.Err(); err != nil {
			return hits, 0, err
		}
		var key string
		if o.cache != nil {
			key = KeyWorkload(s.Domain, pt.Geometry, pt.Workload, s.PacketBytes, mabs)
			if pr, ok := o.cache.Get(key); ok && cachedPointValid(pr, pt, techs) {
				pr.Cached = true
				results[pt.Index] = *pr
				hits++
				report(Progress{Index: pt.Index, Total: len(pts), Geometry: pt.Geometry, Workload: pt.Workload.Name})
				report(Progress{Index: pt.Index, Total: len(pts), Geometry: pt.Geometry,
					Workload: pt.Workload.Name, Cached: true, Done: true})
				continue
			}
		}
		if len(missed[pt.Workload.Name]) == 0 {
			groups++
		}
		missed[pt.Workload.Name] = append(missed[pt.Workload.Name], fanPoint{pt: pt, key: key})
	}
	if groups == 0 {
		return hits, 0, nil
	}

	// Phase 2: shard each workload's missed points — enough shards to keep
	// every worker busy, few enough that each capture is streamed a handful
	// of times, and never more than maxShardPoints technique sets live per
	// pass. The boundaries depend only on the grid and the parallelism, so
	// results stay deterministic.
	par := o.parallelism
	if par <= 0 {
		par = runtime.GOMAXPROCS(0)
	}
	perGroup := (par + groups - 1) / groups
	var shards []fanShard
	for _, w := range s.Workloads {
		group := missed[w.Name]
		if len(group) == 0 {
			continue
		}
		k := perGroup
		if maxK := (len(group) + minShardPoints - 1) / minShardPoints; k > maxK {
			k = maxK
		}
		if minK := (len(group) + maxShardPoints - 1) / maxShardPoints; k < minK {
			k = minK
		}
		for _, r := range pool.Split(len(group), k) {
			shards = append(shards, fanShard{w: w, pts: group[r[0]:r[1]]})
		}
	}

	var misses atomic.Int64
	err := pool.Run(ctx, len(shards), o.parallelism, func(runCtx context.Context, idx int) error {
		sh := shards[idx]
		for _, fp := range sh.pts {
			report(Progress{Index: fp.pt.Index, Total: len(pts), Geometry: fp.pt.Geometry, Workload: fp.pt.Workload.Name})
		}
		// Instantiate this shard's technique sinks only now, so the memory
		// a sweep holds live is bounded by the active shards, not the grid.
		// Pairs are laid out technique-major (all of one technique's
		// instances across the shard's points adjacent) so each decoded
		// block sweeps through structurally identical controllers together —
		// their tables share layout, keeping the delivery loop's working set
		// coherent. ReplayAll delivers the full stream to every sink
		// regardless of pair order, so results are unaffected.
		insts := make([][]suite.Instance, len(sh.pts))
		pairs := make([]trace.SinkPair, len(sh.pts)*len(techs))
		for pi, fp := range sh.pts {
			insts[pi] = make([]suite.Instance, len(techs))
			for ti, tech := range techs {
				inst := tech.New(fp.pt.Geometry)
				if inst.Stats == nil {
					return fmt.Errorf("explore: technique %s/%q produced no counters", tech.Domain, tech.ID)
				}
				var pair trace.SinkPair
				switch tech.Domain {
				case suite.Data:
					if inst.Data == nil {
						return fmt.Errorf("explore: technique %s/%q produced no data sink", tech.Domain, tech.ID)
					}
					pair.Data = inst.Data
				case suite.Fetch:
					if inst.Fetch == nil {
						return fmt.Errorf("explore: technique %s/%q produced no fetch sink", tech.Domain, tech.ID)
					}
					pair.Fetch = inst.Fetch
				}
				insts[pi][ti] = inst
				pairs[ti*len(sh.pts)+pi] = pair
			}
		}
		c, err := tc.FanOut(runCtx, sh.w, s.PacketBytes, pairs, len(sh.pts))
		if err != nil {
			return err
		}
		for pi, fp := range sh.pts {
			pr := assemblePoint(fp.pt, techs, mabs, insts[pi], c.Cycles, c.Instrs)
			if o.cache != nil {
				if err := o.cache.Put(fp.key, pr); err != nil {
					return err
				}
			}
			results[fp.pt.Index] = *pr
			misses.Add(1)
			report(Progress{Index: fp.pt.Index, Total: len(pts), Geometry: fp.pt.Geometry,
				Workload: fp.pt.Workload.Name, Done: true})
		}
		return nil
	})
	return hits, int(misses.Load()), err
}

// assemblePoint prices one grid point's freshly replayed instances into the
// PointResult the analysis layer and the result cache consume — the same
// shape runPoint extracts from a suite.Run, so both schedulers produce
// byte-identical grids.
func assemblePoint(pt Point, techs []suite.Technique, mabs []core.Config,
	insts []suite.Instance, cycles, instrs uint64) *PointResult {
	pr := &PointResult{
		Geometry: pt.Geometry,
		Workload: pt.Workload.Name,
		Cycles:   cycles,
		Instrs:   instrs,
		Techs:    make([]TechOutcome, 0, len(techs)),
	}
	for i := range techs {
		out := TechOutcome{
			ID:    string(techs[i].ID),
			Stats: *insts[i].Stats,
			Power: power.Compute(insts[i].Stats, cycles, insts[i].Model),
		}
		if i > 0 { // techs[0] is the baseline; the rest follow mabs order
			out.TagEntries = mabs[i-1].TagEntries
			out.SetEntries = mabs[i-1].SetEntries
		}
		pr.Techs = append(pr.Techs, out)
	}
	return pr
}

// PointMatches checks a stored result against the grid point it must
// answer for. The content hash already pins the inputs, but a tampered or
// hand-edited file can hold shape-valid JSON for the wrong point; anything
// that does not match the expected technique list degrades to a miss and
// is re-simulated rather than poisoning the analysis. Both explore.Run's
// result cache and the serve daemon's shared store gate their hits on it.
func PointMatches(pr *PointResult, pt Point, techs []suite.Technique) bool {
	return cachedPointValid(pr, pt, techs)
}

func cachedPointValid(pr *PointResult, pt Point, techs []suite.Technique) bool {
	if pr.Geometry != pt.Geometry || pr.Workload != pt.Workload.Name ||
		len(pr.Techs) != len(techs) {
		return false
	}
	for i, t := range techs {
		if pr.Techs[i].ID != string(t.ID) {
			return false
		}
	}
	return true
}

// runPoint serves one grid point from the cache or simulates and stores it.
func runPoint(ctx context.Context, s Space, pt Point, techs []suite.Technique,
	mabs []core.Config, c Cache, tc *suite.TraceCache) (*PointResult, bool, error) {
	key := KeyWorkload(s.Domain, pt.Geometry, pt.Workload, s.PacketBytes, mabs)
	if c != nil {
		if pr, ok := c.Get(key); ok && cachedPointValid(pr, pt, techs) {
			pr.Cached = true
			return pr, true, nil
		}
	}
	// The per-point scheduler only runs live (no trace cache) or as the
	// legacy escape hatch, so the inner suite pass must not batch either.
	pr, err := simulatePoint(ctx, s, pt, techs, mabs, tc, false)
	if err != nil {
		return nil, false, err
	}
	if c != nil {
		if err := c.Put(key, pr); err != nil {
			return nil, false, err
		}
	}
	return pr, false, nil
}

// SimulatePoint executes one grid point of a normalized Space, with no
// result cache attached — the serve daemon's unit of work: the daemon does
// its own store probing and in-flight deduplication per point and calls
// this only for points that must actually run. With a trace cache the point
// replays the workload's shared capture in one batched fan-out pass, so
// however many daemon clients sweep a workload, it executes at most once
// per (workload, packet). Results are bit-identical to explore.Run's.
func SimulatePoint(ctx context.Context, s Space, pt Point, tc *suite.TraceCache) (*PointResult, error) {
	return simulatePoint(ctx, s, pt, s.techniques(), s.MABs(), tc, true)
}

// simulatePoint is one suite pass over pt's workload with the space's full
// technique list attached, extracted into the PointResult shape the result
// cache and analysis layer consume.
func simulatePoint(ctx context.Context, s Space, pt Point, techs []suite.Technique,
	mabs []core.Config, tc *suite.TraceCache, batched bool) (*PointResult, error) {
	runOpts := []suite.Option{
		suite.WithWorkloads(pt.Workload),
		suite.WithTechniques(techs...),
		suite.WithGeometry(pt.Geometry),
		suite.WithPacketBytes(s.PacketBytes),
		suite.WithParallelism(1),
		suite.WithBatchReplay(batched),
	}
	if tc != nil {
		runOpts = append(runOpts, suite.WithTraceCache(tc))
	}
	r, err := suite.Run(ctx, runOpts...)
	if err != nil {
		return nil, err
	}
	b := r.Benchmarks[0]
	pr := &PointResult{
		Geometry: pt.Geometry,
		Workload: b.Name,
		Cycles:   b.Cycles,
		Instrs:   b.Instrs,
		Techs:    make([]TechOutcome, 0, len(techs)),
	}
	byID := b.D
	if s.Domain == suite.Fetch {
		byID = b.I
	}
	for i, t := range techs {
		tr, ok := byID[t.ID]
		if !ok {
			return nil, fmt.Errorf("explore: technique %q missing from results", t.ID)
		}
		out := TechOutcome{
			ID:    string(t.ID),
			Stats: *tr.Stats,
			Power: power.Compute(tr.Stats, b.Cycles, tr.Model),
		}
		if i > 0 { // techs[0] is the baseline; the rest follow mabs order
			out.TagEntries = mabs[i-1].TagEntries
			out.SetEntries = mabs[i-1].SetEntries
		}
		pr.Techs = append(pr.Techs, out)
	}
	return pr, nil
}
