package explore

import (
	"context"
	"math"
	"reflect"
	"strings"
	"testing"

	"waymemo/internal/suite"
	"waymemo/internal/workloads"
)

// tinyProgram is a small but cache-interesting loop: two passes over a
// 1KB array with a strided store, enough traffic for every counter to
// move while simulating in well under a millisecond.
const tinyProgram = `
main:	li   s1, 2             ; passes
pass:	la   t0, data
	li   t1, 256           ; elements
	li   s0, 0
loop:	lw   t2, 0(t0)
	add  s0, s0, t2
	sw   s0, 2048(t0)
	addi t0, t0, 4
	addi t1, t1, -1
	bnez t1, loop
	addi s1, s1, -1
	bnez s1, pass
	la   t4, result
	sw   s0, 0(t4)
	halt
	.org 0x100000
data:	.space 1024, 1
result:	.space 4
	.space 2048
`

func tinyWorkload(name string) workloads.Workload {
	return workloads.Workload{Name: name, Sources: []string{tinyProgram},
		MaxInstrs: 1_000_000}
}

// tinySpace sweeps two geometries and a 1x4 / 2x4 MAB pair over one tiny
// workload: 2 grid points, 3 techniques per point.
func tinySpace() Space {
	return Space{
		Domain:     suite.Data,
		Sets:       []int{64, 128},
		TagEntries: []int{1, 2},
		SetEntries: []int{4},
		Workloads:  []workloads.Workload{tinyWorkload("tiny")},
	}
}

func TestSpaceNormalizeDefaults(t *testing.T) {
	s, err := Space{Domain: suite.Data}.normalized()
	if err != nil {
		t.Fatal(err)
	}
	if got := s.NumPoints(); got != 7 {
		t.Errorf("paper grid points = %d, want 7", got)
	}
	if len(s.MABs()) != 8 {
		t.Errorf("paper grid MABs = %d, want 8", len(s.MABs()))
	}
	if len(s.techniques()) != 9 {
		t.Errorf("techniques = %d, want 9 (baseline + 8 MABs)", len(s.techniques()))
	}
}

func TestSpaceValidation(t *testing.T) {
	cases := []Space{
		{Domain: 7},
		{Domain: suite.Data, Sets: []int{100}},                        // not a power of two
		{Domain: suite.Data, TagEntries: []int{0}},                    // invalid MAB
		{Domain: suite.Data, Workloads: []workloads.Workload{{}, {}}}, // empty names
		{Domain: suite.Data, Workloads: []workloads.Workload{
			tinyWorkload("a"), tinyWorkload("a")}}, // duplicate names
		{Domain: suite.Data, PacketBytes: 6},          // not a power of two
		{Domain: suite.Data, PacketBytes: 2},          // below the 4-byte minimum
		{Domain: suite.Data, SetEntries: []int{8, 8}}, // duplicate MAB axis value
		{Domain: suite.Data, Sets: []int{512, 512}},   // duplicate geometry axis value
	}
	for i, s := range cases {
		if _, err := Run(context.Background(), s); err == nil {
			t.Errorf("case %d: invalid space accepted", i)
		}
	}
	// An empty cache directory must fail loudly, not run uncached.
	if _, err := Run(context.Background(), tinySpace(), WithCacheDir("")); err == nil {
		t.Error("empty cache dir accepted")
	}
}

// stripCached clears the run-local Cached flag so result sets from cold and
// warm runs compare equal.
func stripCached(g *Grid) []PointResult {
	out := make([]PointResult, len(g.Points))
	copy(out, g.Points)
	for i := range out {
		out[i].Cached = false
	}
	return out
}

func TestRunDeterministicAcrossParallelism(t *testing.T) {
	var ref *Grid
	for _, par := range []int{1, 4} {
		g, err := Run(context.Background(), tinySpace(), WithParallelism(par))
		if err != nil {
			t.Fatalf("par=%d: %v", par, err)
		}
		if len(g.Points) != 2 {
			t.Fatalf("par=%d: %d points, want 2", par, len(g.Points))
		}
		for i, p := range g.Points {
			if p.Cycles == 0 || len(p.Techs) != 3 {
				t.Fatalf("par=%d: point %d empty: %+v", par, i, p)
			}
		}
		if g.Points[0].Geometry.Sets != 64 || g.Points[1].Geometry.Sets != 128 {
			t.Fatalf("par=%d: grid order broken: %v, %v", par,
				g.Points[0].Geometry, g.Points[1].Geometry)
		}
		if ref == nil {
			ref = g
			continue
		}
		if !reflect.DeepEqual(stripCached(ref), stripCached(g)) {
			t.Errorf("par=%d: results differ from sequential run", par)
		}
	}
}

func TestRunCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Run(ctx, tinySpace()); err == nil {
		t.Fatal("cancelled context did not fail the sweep")
	}
}

func TestProgressCallbacks(t *testing.T) {
	var events []Progress
	g, err := Run(context.Background(), tinySpace(),
		WithParallelism(1),
		WithProgress(func(p Progress) { events = append(events, p) }))
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 2*len(g.Points) {
		t.Fatalf("%d progress events, want %d", len(events), 2*len(g.Points))
	}
	done := 0
	for _, e := range events {
		if e.Total != len(g.Points) || e.Workload != "tiny" {
			t.Errorf("bad event: %+v", e)
		}
		if e.Done {
			done++
			if e.Cached {
				t.Errorf("cacheless run reported a cached point: %+v", e)
			}
		}
	}
	if done != len(g.Points) {
		t.Errorf("%d done events, want %d", done, len(g.Points))
	}
}

func TestCandidatesAndAnalysis(t *testing.T) {
	g, err := Run(context.Background(), tinySpace())
	if err != nil {
		t.Fatal(err)
	}
	cands := g.Candidates()
	if len(cands) != 6 { // 2 geometries × (baseline + 2 MABs)
		t.Fatalf("%d candidates, want 6", len(cands))
	}
	for i, c := range cands {
		isBase := i%3 == 0
		if isBase != (c.TagEntries == 0) {
			t.Errorf("candidate %d: baseline ordering broken: %+v", i, c)
		}
		if isBase && (c.Saving != 0 || c.AvgMW != c.BaselineMW) {
			t.Errorf("baseline candidate has nonzero saving: %+v", c)
		}
		if !isBase && !(c.MABHitRate > 0) {
			t.Errorf("MAB candidate %s has no MAB hits", c.ID)
		}
		if c.AvgMW <= 0 || c.HitRate <= 0 {
			t.Errorf("candidate %d degenerate: %+v", i, c)
		}
	}

	best, ok := Optimum(cands)
	if !ok {
		t.Fatal("no optimum")
	}
	for _, c := range cands {
		if c.AvgMW < best.AvgMW {
			t.Errorf("optimum %v beaten by %v", best, c)
		}
	}

	front := Pareto(cands)
	if len(front) == 0 {
		t.Fatal("empty Pareto frontier")
	}
	for i := 1; i < len(front); i++ {
		if front[i].AvgMW < front[i-1].AvgMW {
			t.Errorf("frontier not sorted by power")
		}
	}
	foundBest := false
	for _, c := range front {
		if c == best {
			foundBest = true
		}
	}
	if !foundBest {
		t.Errorf("optimum not on the Pareto frontier")
	}

	marg := g.Marginals()
	// Swept axes: sets (2 values) and mab-tags (2 values) → 4 marginals.
	if len(marg) != 4 {
		t.Fatalf("%d marginals, want 4: %+v", len(marg), marg)
	}
	for _, m := range marg {
		if m.N != 2 || m.AvgMW <= 0 {
			t.Errorf("bad marginal: %+v", m)
		}
	}
}

func TestReportRendering(t *testing.T) {
	g, err := Run(context.Background(), tinySpace())
	if err != nil {
		t.Fatal(err)
	}
	var text, csv, md strings.Builder
	g.WriteReport(&text, false)
	g.WriteReport(&csv, true)
	g.WriteMarkdown(&md)
	for _, s := range []string{text.String(), csv.String(), md.String()} {
		if !strings.Contains(s, "mab-2x4") || !strings.Contains(s, "original") {
			t.Errorf("report missing candidates:\n%s", s)
		}
		if !strings.Contains(s, "power-optimal configuration") {
			t.Errorf("report missing optimum line:\n%s", s)
		}
	}
	// Multi-geometry grids must label candidates with their geometry.
	if !strings.Contains(text.String(), "64x2x32 mab-1x4") {
		t.Errorf("summary lacks geometry labels:\n%s", text.String())
	}
	if !strings.Contains(md.String(), "| --- |") {
		t.Errorf("markdown report lacks pipe tables:\n%s", md.String())
	}
}

// TestPaperGridRegression is the golden design-space result: the paper's
// MAB grid over the full seven-benchmark suite, memoized, run twice.
//
// The paper's Section 4 picks 2 tags × 8 set indices as the power-optimal
// D-cache MAB. In this reproduction the measured optimum is 2x16 — our
// 32-bit workloads touch 9-16 distinct set indices per base region where
// the paper's benchmarks saturated around 8, so the 16-entry set table
// buys more array savings than its extra power costs (see ARCHITECTURE.md,
// "Known deviations"). The test pins both facts: 2x16 measures optimal,
// and the paper's 2x8 stays within 5% of it with a paper-band saving.
func TestPaperGridRegression(t *testing.T) {
	if testing.Short() {
		t.Skip("full paper grid (7 benchmarks x 8 MAB sizes); skipped in -short")
	}
	dir := t.TempDir()
	run := func() *Grid {
		g, err := Run(context.Background(), PaperGrid(suite.Data), WithCacheDir(dir))
		if err != nil {
			t.Fatal(err)
		}
		return g
	}

	cold := run()
	if cold.Misses != 7 || cold.Hits != 0 {
		t.Fatalf("cold run: hits=%d misses=%d, want 0/7", cold.Hits, cold.Misses)
	}

	cands := cold.Candidates()
	byID := map[string]Candidate{}
	for _, c := range cands {
		byID[c.ID] = c
	}
	best, _ := Optimum(cands)
	if best.ID != "mab-2x16" {
		t.Errorf("measured optimum = %s, want mab-2x16 (golden)", best.ID)
	}
	paper := byID["mab-2x8"]
	if paper.ID == "" {
		t.Fatal("paper pick mab-2x8 missing from candidates")
	}
	if gap := paper.AvgMW/best.AvgMW - 1; gap < 0 || gap > 0.05 {
		t.Errorf("2x8 is %.1f%% off the optimum, want within [0, 5%%]", gap*100)
	}
	if paper.Saving < 0.15 || paper.Saving > 0.55 {
		t.Errorf("2x8 average saving %.2f outside [0.15, 0.55] (paper: ~0.35)", paper.Saving)
	}
	// Every MAB size must beat the conventional baseline on average.
	for _, c := range cands {
		if c.TagEntries > 0 && c.Saving <= 0 {
			t.Errorf("%s does not pay for itself: saving %.3f", c.ID, c.Saving)
		}
	}

	// The warm run must simulate nothing and reproduce the cold results.
	warm := run()
	if warm.Hits != 7 || warm.Misses != 0 {
		t.Fatalf("warm run: hits=%d misses=%d, want 7/0", warm.Hits, warm.Misses)
	}
	for _, p := range warm.Points {
		if !p.Cached {
			t.Errorf("warm point %s not served from cache", p.Workload)
		}
	}
	if !gridsApproxEqual(stripCached(cold), stripCached(warm)) {
		t.Error("warm results differ from cold results")
	}
}

// gridsApproxEqual compares point results with a float tolerance: power
// breakdowns round-trip through JSON, which preserves float64 exactly, so
// this is belt and braces around reflect.DeepEqual.
func gridsApproxEqual(a, b []PointResult) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		pa, pb := a[i], b[i]
		if pa.Workload != pb.Workload || pa.Cycles != pb.Cycles ||
			pa.Instrs != pb.Instrs || pa.Geometry != pb.Geometry ||
			len(pa.Techs) != len(pb.Techs) {
			return false
		}
		for j := range pa.Techs {
			ta, tb := pa.Techs[j], pb.Techs[j]
			if ta.ID != tb.ID || ta.Stats != tb.Stats {
				return false
			}
			if math.Abs(ta.Power.TotalMW()-tb.Power.TotalMW()) > 1e-9 {
				return false
			}
		}
	}
	return true
}

func TestOptimumLineMentionsPaperPick(t *testing.T) {
	g, err := Run(context.Background(), Space{
		Domain:     suite.Data,
		TagEntries: []int{2},
		SetEntries: []int{8},
		Workloads:  []workloads.Workload{tinyWorkload("tiny")},
	})
	if err != nil {
		t.Fatal(err)
	}
	line := g.OptimumLine()
	if !strings.Contains(line, "power-optimal configuration") {
		t.Errorf("optimum line malformed: %s", line)
	}
	// With only 2x8 and the baseline competing, either 2x8 wins (matching
	// the paper) or the baseline does; both must render a paper verdict.
	if !strings.Contains(line, "paper") {
		t.Errorf("optimum line lacks the paper comparison: %s", line)
	}
}

func TestPaperPick(t *testing.T) {
	if nt, ns := PaperPick(suite.Data); nt != 2 || ns != 8 {
		t.Errorf("data pick = %dx%d, want 2x8", nt, ns)
	}
	if nt, ns := PaperPick(suite.Fetch); nt != 2 || ns != 16 {
		t.Errorf("fetch pick = %dx%d, want 2x16", nt, ns)
	}
}

// TestTraceSharingEquivalence pins the execute-once / replay-many contract
// at the sweep level: a shared-trace grid is deeply equal to one that
// executes every point live, while performing only one execution per
// workload.
func TestTraceSharingEquivalence(t *testing.T) {
	space := tinySpace()
	space.Workloads = []workloads.Workload{tinyWorkload("tiny-a"), tinyWorkload("tiny-b")}

	live, err := Run(context.Background(), space, WithTraceSharing(false))
	if err != nil {
		t.Fatal(err)
	}
	if live.Traces != (suite.TraceCacheStats{}) {
		t.Fatalf("unshared sweep reported trace work: %+v", live.Traces)
	}
	shared, err := Run(context.Background(), space)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(stripCached(live), stripCached(shared)) {
		t.Error("shared-trace sweep diverges from live execution")
	}
	wantPoints := len(shared.Points)
	if shared.Traces.Captures != len(space.Workloads) || shared.Traces.Replays != wantPoints {
		t.Errorf("trace stats = %+v, want %d captures / %d replays",
			shared.Traces, len(space.Workloads), wantPoints)
	}
}

// TestTraceDirSpill checks WithTraceDir: a second sweep in a fresh trace
// cache reloads every capture from disk and still matches.
func TestTraceDirSpill(t *testing.T) {
	dir := t.TempDir()
	space := tinySpace()

	first, err := Run(context.Background(), space, WithTraceDir(dir))
	if err != nil {
		t.Fatal(err)
	}
	if first.Traces.Captures != 1 || first.Traces.DiskLoads != 0 {
		t.Fatalf("cold spill stats = %+v", first.Traces)
	}
	second, err := Run(context.Background(), space, WithTraceDir(dir))
	if err != nil {
		t.Fatal(err)
	}
	if second.Traces.Captures != 0 || second.Traces.DiskLoads != 1 {
		t.Fatalf("warm spill stats = %+v (want pure disk load)", second.Traces)
	}
	if !reflect.DeepEqual(stripCached(first), stripCached(second)) {
		t.Error("disk-loaded sweep diverges from capturing sweep")
	}
	if _, err := Run(context.Background(), space,
		WithTraceDir(dir), WithTraceSharing(false)); err == nil {
		t.Error("trace dir with sharing disabled was accepted")
	}
}

// TestFanOutSchedulerEquivalence: the batched per-(workload, packet)
// fan-out scheduler (the default) produces a grid deeply equal to the
// legacy per-point scheduler, and only the batched run reports fan-out
// work. With two workloads and shards of at most maxShardPoints points,
// the pass count stays far below one-replay-per-sink.
func TestFanOutSchedulerEquivalence(t *testing.T) {
	space := tinySpace()
	space.Workloads = []workloads.Workload{tinyWorkload("tiny-a"), tinyWorkload("tiny-b")}

	batched, err := Run(context.Background(), space, WithParallelism(3))
	if err != nil {
		t.Fatal(err)
	}
	legacy, err := Run(context.Background(), space, WithBatchReplay(false))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(stripCached(batched), stripCached(legacy)) {
		t.Error("fan-out scheduler diverges from the per-point scheduler")
	}
	bt, lt := batched.Traces, legacy.Traces
	if bt.FanOutPasses == 0 || bt.FanOutSinks == 0 || bt.FanOutDeliveries == 0 {
		t.Errorf("batched sweep reported no fan-out work: %+v", bt)
	}
	if lt.FanOutPasses != 0 || lt.FanOutSinks != 0 {
		t.Errorf("legacy sweep reported fan-out work: %+v", lt)
	}
	// 4 points x 3 techniques over 2 workloads: the fan-out must feed all
	// 12 sinks with at most one pass per (workload, shard).
	if bt.FanOutSinks != 12 || bt.FanOutPasses > 6 {
		t.Errorf("fan-out shape = %d sinks / %d passes, want 12 sinks in <= 6 passes",
			bt.FanOutSinks, bt.FanOutPasses)
	}
	if bt.Replays != len(batched.Points) || bt.Captures != len(space.Workloads) {
		t.Errorf("batched trace stats = %+v, want %d replays / %d captures",
			bt, len(batched.Points), len(space.Workloads))
	}
}
