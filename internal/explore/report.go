package explore

import (
	"fmt"
	"io"

	"waymemo/internal/report"
	"waymemo/internal/suite"
)

// PaperPick returns the MAB size the paper settles on for a domain: 2x8
// for the data cache, 2x16 for the instruction cache (Section 4). Callers
// compare it against the measured Optimum; see ARCHITECTURE.md for why the
// two can disagree on this repository's workloads.
func PaperPick(domain suite.Domain) (tagEntries, setEntries int) {
	if domain == suite.Fetch {
		return 2, 16
	}
	return 2, 8
}

// multiGeometry reports whether the grid swept more than one geometry.
func (g *Grid) multiGeometry() bool {
	return len(g.Space.Sets)*len(g.Space.Ways)*len(g.Space.LineBytes) > 1
}

// SummaryTable renders every candidate: power, saving against the
// geometry's baseline, cache and MAB hit rates.
func (g *Grid) SummaryTable() report.Table { return g.summaryTable(g.Candidates()) }

func (g *Grid) summaryTable(cands []Candidate) report.Table {
	multi := g.multiGeometry()
	t := report.Table{
		Title: fmt.Sprintf("%s-cache design space (%d configurations × %d workloads)",
			g.Space.Domain, len(cands), len(g.Space.Workloads)),
		Columns: []string{"config", "power mW", "saving", "cache hit", "MAB hit"},
	}
	for _, c := range cands {
		mabHit := "-"
		if c.TagEntries > 0 {
			mabHit = report.Pct(c.MABHitRate)
		}
		t.AddRow(c.Label(multi), report.F(c.AvgMW, 2), report.Pct(c.Saving),
			report.Pct(c.HitRate), mabHit)
	}
	return t
}

// ParetoTable renders the power/hit-rate frontier.
func (g *Grid) ParetoTable() report.Table { return g.paretoTable(g.Candidates()) }

func (g *Grid) paretoTable(cands []Candidate) report.Table {
	multi := g.multiGeometry()
	t := report.Table{
		Title:   "Pareto frontier (power vs. hit rates)",
		Columns: []string{"config", "power mW", "cache hit", "MAB hit"},
	}
	for _, c := range Pareto(cands) {
		mabHit := "-"
		if c.TagEntries > 0 {
			mabHit = report.Pct(c.MABHitRate)
		}
		t.AddRow(c.Label(multi), report.F(c.AvgMW, 2), report.Pct(c.HitRate), mabHit)
	}
	return t
}

// MarginalTable renders the per-axis marginals; empty (no rows) when no
// axis has more than one value.
func (g *Grid) MarginalTable() report.Table { return g.marginalTable(g.Candidates()) }

func (g *Grid) marginalTable(cands []Candidate) report.Table {
	t := report.Table{
		Title:   "Axis marginals (average over the rest of the grid)",
		Columns: []string{"axis", "value", "power mW", "saving"},
	}
	for _, m := range g.marginals(cands) {
		t.AddRow(m.Axis, fmt.Sprint(m.Value), report.F(m.AvgMW, 2), report.Pct(m.AvgSaving))
	}
	return t
}

// OptimumLine summarizes the measured optimum and compares it against the
// paper's pick for the domain.
func (g *Grid) OptimumLine() string { return g.optimumLine(g.Candidates()) }

func (g *Grid) optimumLine(cands []Candidate) string {
	best, ok := Optimum(cands)
	if !ok {
		return "no candidates"
	}
	nt, ns := PaperPick(g.Space.Domain)
	paper := fmt.Sprintf("mab-%dx%d", nt, ns)
	verdict := "matches the paper's pick"
	if best.ID != paper {
		verdict = fmt.Sprintf("paper picks %s; see ARCHITECTURE.md on this deviation", paper)
	}
	return fmt.Sprintf("power-optimal configuration: %s at %.2f mW (%s saving) — %s",
		best.Label(g.multiGeometry()), best.AvgMW, report.Pct(best.Saving), verdict)
}

// WriteReport renders the full analysis as aligned text tables (CSV when
// csv is set): summary, marginals for swept axes, Pareto frontier and the
// optimum line.
func (g *Grid) WriteReport(w io.Writer, csv bool) {
	cands := g.Candidates()
	emit := func(t report.Table) {
		if len(t.Rows) == 0 {
			return
		}
		if csv {
			t.RenderCSV(w)
		} else {
			t.Render(w)
		}
		fmt.Fprintln(w)
	}
	emit(g.summaryTable(cands))
	emit(g.marginalTable(cands))
	emit(g.paretoTable(cands))
	fmt.Fprintln(w, g.optimumLine(cands))
}

// WriteMarkdown renders the same analysis as a markdown report with pipe
// tables, for checking sweep results into a repository.
func (g *Grid) WriteMarkdown(w io.Writer) {
	fmt.Fprintf(w, "# %s-cache design-space exploration\n\n", g.Space.Domain)
	fmt.Fprintf(w, "%d grid points (%d cached, %d simulated), %d workloads.\n\n",
		len(g.Points), g.Hits, g.Misses, len(g.Space.Workloads))
	cands := g.Candidates()
	for _, t := range []report.Table{g.summaryTable(cands), g.marginalTable(cands), g.paretoTable(cands)} {
		if len(t.Rows) == 0 {
			continue
		}
		t.RenderMarkdown(w)
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "%s\n", g.optimumLine(cands))
}
