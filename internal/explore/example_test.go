package explore_test

import (
	"context"
	"fmt"
	"log"

	"waymemo/internal/explore"
	"waymemo/internal/suite"
	"waymemo/internal/workloads"
)

// exampleProgram is a small embedded-style loop with enough data traffic
// for the MAB to matter.
const exampleProgram = `
main:	li   s1, 2             ; passes
pass:	la   t0, data
	li   t1, 256           ; elements
	li   s0, 0
loop:	lw   t2, 0(t0)
	add  s0, s0, t2
	sw   s0, 2048(t0)
	addi t0, t0, 4
	addi t1, t1, -1
	bnez t1, loop
	addi s1, s1, -1
	bnez s1, pass
	halt
	.org 0x100000
data:	.space 1024, 1
	.space 1024
	.space 2048
`

// ExampleRun sweeps a 2×2 MAB grid over a custom workload and extracts the
// power-optimal configuration. Passing WithCacheDir would memoize the four
// grid points on disk so a re-run simulates nothing.
func ExampleRun() {
	w := workloads.Workload{Name: "example", Sources: []string{exampleProgram},
		MaxInstrs: 100_000}

	grid, err := explore.Run(context.Background(), explore.Space{
		Domain:     suite.Data,
		TagEntries: []int{1, 2},
		SetEntries: []int{4, 8},
		Workloads:  []workloads.Workload{w},
	})
	if err != nil {
		log.Fatal(err)
	}

	cands := grid.Candidates()
	best, _ := explore.Optimum(cands)
	fmt.Printf("%d grid points, %d candidates\n", len(grid.Points), len(cands))
	fmt.Printf("optimum is a MAB configuration: %v\n", best.TagEntries > 0)
	fmt.Printf("optimum saves power: %v\n", best.Saving > 0)
	// Output:
	// 1 grid points, 5 candidates
	// optimum is a MAB configuration: true
	// optimum saves power: true
}
