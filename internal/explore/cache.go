package explore

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"waymemo/internal/cache"
	"waymemo/internal/core"
	"waymemo/internal/fault"
	"waymemo/internal/isa"
	"waymemo/internal/suite"
	"waymemo/internal/workloads"
)

// keyVersion is baked into every cache key. Bump it whenever the simulated
// semantics of a grid point change (simulator, controllers, power models),
// so stale results can never be replayed as current ones. The golden hash
// test in cache_test.go catches accidental key-scheme changes.
const keyVersion = "explore-v1"

// keyMaterial is the canonical, exhaustive description of one grid point's
// inputs. It is serialized as JSON (stable field order) and hashed; every
// field that influences a PointResult must appear here.
type keyMaterial struct {
	Version   string `json:"version"`
	Domain    string `json:"domain"`
	Sets      int    `json:"sets"`
	Ways      int    `json:"ways"`
	LineBytes int    `json:"line_bytes"`
	Workload  string `json:"workload"`
	// WorkloadFP pins a synthetic workload's generated content (empty for
	// the paper benchmarks, so their keys are unchanged from explore-v1's
	// introduction). The canonical spec in Workload names the generator's
	// inputs; the fingerprint covers its output, so a generator change
	// (GenVersion bump) retires stale synthetic entries instead of
	// replaying them.
	WorkloadFP string `json:"workload_fp,omitempty"`
	// ISA names the frontend the workload executes under (empty for the
	// default FRVL frontend, so pre-existing keys are unchanged). Workload
	// names already carry an "rv32:" prefix, but the explicit field keeps
	// the keyspace partitioned even for embedder-supplied names that don't
	// follow the prefix convention — a cross-ISA key collision would
	// silently serve one ISA's energy numbers as the other's.
	ISA         string   `json:"isa,omitempty"`
	PacketBytes uint32   `json:"packet_bytes"`
	MABs        [][2]int `json:"mabs"` // [tag entries, set entries] per technique
}

// Key returns the content hash that names one grid point in the result
// cache: a hex SHA-256 over the geometry, the technique set (the baseline is
// implied; MAB configurations are listed in grid order), the workload name
// and the fetch-packet size.
//
// Workloads are identified by name: the seven paper benchmarks are
// deterministic programs baked into the binary, so the name pins the
// content. Synthetic workloads go through KeyWorkload, which adds their
// content fingerprint. Embedders sweeping other ad hoc workloads must
// either name them uniquely or use distinct cache directories.
func Key(domain suite.Domain, geo cache.Config, workload string, packetBytes uint32, mabs []core.Config) string {
	return key(domain, geo, workload, "", "", packetBytes, mabs)
}

// KeyWorkload is Key for a Workload value: synthetic workloads (non-empty
// Spec) are additionally keyed by their content fingerprint, non-default
// frontends (non-empty ISA) by the ISA name, and the packet-size default is
// resolved per frontend (0 means 4 bytes under rv32, 8 under FRVL),
// everything else reduces to Key on the name.
func KeyWorkload(domain suite.Domain, geo cache.Config, w workloads.Workload, packetBytes uint32, mabs []core.Config) string {
	fp := ""
	if w.Spec != "" {
		fp = fmt.Sprintf("%016x", w.Fingerprint())
	}
	if packetBytes == 0 {
		packetBytes = w.DefaultPacketBytes()
	}
	return key(domain, geo, w.Name, fp, w.ISA, packetBytes, mabs)
}

func key(domain suite.Domain, geo cache.Config, workload, workloadFP, isaName string, packetBytes uint32, mabs []core.Config) string {
	if packetBytes == 0 {
		// The simulator treats 0 as the 8-byte VLIW packet; normalize so
		// explicit-8 and defaulted sweeps share cache entries.
		packetBytes = isa.PacketBytes
	}
	m := keyMaterial{
		Version:     keyVersion,
		Domain:      domain.String(),
		Sets:        geo.Sets,
		Ways:        geo.Ways,
		LineBytes:   geo.LineBytes,
		Workload:    workload,
		WorkloadFP:  workloadFP,
		ISA:         isaName,
		PacketBytes: packetBytes,
		MABs:        make([][2]int, 0, len(mabs)),
	}
	for _, c := range mabs {
		m.MABs = append(m.MABs, [2]int{c.TagEntries, c.SetEntries})
	}
	blob, err := json.Marshal(m)
	if err != nil {
		// keyMaterial contains only plain values; Marshal cannot fail.
		panic(fmt.Sprintf("explore: key material: %v", err))
	}
	sum := sha256.Sum256(blob)
	return hex.EncodeToString(sum[:])
}

// Cache memoizes completed grid points. Get reports a miss for keys it does
// not hold or cannot read back intact; Put must store the result so that a
// later Get returns an equal value.
type Cache interface {
	Get(key string) (*PointResult, bool)
	Put(key string, r *PointResult) error
}

// DirCache is the on-disk Cache: one pretty-printed JSON file per grid
// point, named <key>.json. Unreadable or corrupt files are misses (the
// point is re-simulated and the file rewritten), so a damaged cache
// directory degrades to a cold one instead of failing the sweep.
//
// A DirCache is safe for concurrent use: Put is atomic (temp file + fsync +
// rename) and Get tolerates concurrent rewrites of the same key, so many
// sweeps — or many clients of one serve daemon — can share one directory.
type DirCache struct {
	dir string
	fs  fault.FS
}

// NewDirCache creates the directory — including any missing parents, so
// nested paths like "cache/results/v1" work — and returns a cache over it.
func NewDirCache(dir string) (*DirCache, error) {
	return NewDirCacheFS(dir, fault.FS{})
}

// NewDirCacheFS is NewDirCache with the cache's entry I/O routed through a
// fault-injection shim (sites io.result.*); the zero FS is a passthrough.
func NewDirCacheFS(dir string, fs fault.FS) (*DirCache, error) {
	if dir == "" {
		return nil, fmt.Errorf("explore: empty cache directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("explore: cache dir: %w", err)
	}
	return &DirCache{dir: dir, fs: fs}, nil
}

// Dir returns the cache directory.
func (c *DirCache) Dir() string { return c.dir }

func (c *DirCache) path(key string) string {
	return filepath.Join(c.dir, key+".json")
}

// Get loads a memoized point. Any read or decode failure — missing file,
// truncated JSON, wrong shape — is a miss.
func (c *DirCache) Get(key string) (*PointResult, bool) {
	blob, err := c.fs.ReadFile(fault.SiteResultRead, c.path(key))
	if err != nil {
		return nil, false
	}
	var r PointResult
	if err := json.Unmarshal(blob, &r); err != nil {
		return nil, false
	}
	// A result that never ran is not a result: guard against files holding
	// valid JSON of the wrong shape (e.g. `{}` or `null`).
	if r.Workload == "" || r.Cycles == 0 || len(r.Techs) == 0 {
		return nil, false
	}
	return &r, true
}

// CacheStats describes a DirCache's on-disk footprint.
type CacheStats struct {
	// Entries is the number of stored grid points and Bytes their total
	// file size. Both count only well-named entry files (<key>.json), so
	// stray temp files from a killed writer do not inflate the accounting.
	Entries int
	Bytes   int64
}

// Entry describes one stored grid point, for size accounting and eviction.
type Entry struct {
	Key     string
	Bytes   int64
	ModTime time.Time
}

// Entries lists every stored grid point, oldest-modified first — the scan
// a store's size accounting and LRU eviction start from. Files that vanish
// mid-scan (a concurrent eviction) are skipped.
func (c *DirCache) Entries() ([]Entry, error) {
	des, err := os.ReadDir(c.dir)
	if err != nil {
		return nil, fmt.Errorf("explore: cache scan: %w", err)
	}
	out := make([]Entry, 0, len(des))
	for _, de := range des {
		key, ok := strings.CutSuffix(de.Name(), ".json")
		if !ok || de.IsDir() {
			continue
		}
		info, err := de.Info()
		if err != nil {
			continue
		}
		out = append(out, Entry{Key: key, Bytes: info.Size(), ModTime: info.ModTime()})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ModTime.Before(out[j].ModTime) })
	return out, nil
}

// Entry stats one stored grid point; ok is false for an absent key.
func (c *DirCache) Entry(key string) (Entry, bool) {
	info, err := os.Stat(c.path(key))
	if err != nil {
		return Entry{}, false
	}
	return Entry{Key: key, Bytes: info.Size(), ModTime: info.ModTime()}, true
}

// Stats totals the cache's stored entries and bytes.
func (c *DirCache) Stats() (CacheStats, error) {
	ents, err := c.Entries()
	if err != nil {
		return CacheStats{}, err
	}
	s := CacheStats{Entries: len(ents)}
	for _, e := range ents {
		s.Bytes += e.Bytes
	}
	return s, nil
}

// Delete removes a stored grid point; deleting an absent key is a no-op.
// The next Get for the key is a miss and the point re-simulates — eviction
// can never make results wrong, only colder.
func (c *DirCache) Delete(key string) error {
	if err := c.fs.Remove(fault.SiteResultDelete, c.path(key)); err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("explore: cache delete: %w", err)
	}
	return nil
}

// Put stores a completed point atomically (temp file + fsync + rename), so
// a sweep killed mid-write leaves no half-written entry behind for Get to
// trip on — at worst a temp file for the store's startup sweep.
func (c *DirCache) Put(key string, r *PointResult) error {
	blob, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return fmt.Errorf("explore: encode point: %w", err)
	}
	err = c.fs.WriteFileAtomic(fault.SiteResultWrite, c.path(key), func(w io.Writer) error {
		_, werr := w.Write(append(blob, '\n'))
		return werr
	})
	if err != nil {
		return fmt.Errorf("explore: cache write: %w", err)
	}
	return nil
}
