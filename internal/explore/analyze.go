package explore

import (
	"fmt"
	"sort"

	"waymemo/internal/cache"
	"waymemo/internal/stats"
)

// Candidate is one technique at one geometry, aggregated across the
// workload axis — the unit the design-space analyses rank. Power is the
// unweighted mean across workloads (each benchmark counts equally, as in
// the paper's "average" bars); rates are event-weighted across the
// concatenated executions.
type Candidate struct {
	Geometry cache.Config
	// ID names the technique ("original", "mab-2x8"). TagEntries is zero
	// for the conventional baseline.
	ID         string
	TagEntries int
	SetEntries int

	// AvgMW is the mean total cache power across workloads; BaselineMW is
	// the same mean for the conventional technique at this geometry, and
	// Saving is 1 - AvgMW/BaselineMW.
	AvgMW      float64
	BaselineMW float64
	Saving     float64

	// HitRate is the cache hit rate (identical for every technique at one
	// geometry — way memoization never changes miss behavior); MABHitRate
	// is hits over MAB lookups, zero for the baseline.
	HitRate    float64
	MABHitRate float64
}

// Label returns a compact "512x2x32 mab-2x8" style name, dropping the
// geometry when the grid swept only one.
func (c Candidate) Label(multiGeometry bool) string {
	if !multiGeometry {
		return c.ID
	}
	return fmt.Sprintf("%dx%dx%d %s", c.Geometry.Sets, c.Geometry.Ways, c.Geometry.LineBytes, c.ID)
}

// Candidates aggregates the grid: one Candidate per (geometry, technique),
// in grid order (geometry major, baseline first).
func (g *Grid) Candidates() []Candidate {
	perWorkload := len(g.Space.Workloads)
	if perWorkload == 0 || len(g.Points)%perWorkload != 0 {
		return nil
	}
	var out []Candidate
	for start := 0; start < len(g.Points); start += perWorkload {
		geoPts := g.Points[start : start+perWorkload]
		nTechs := len(geoPts[0].Techs)
		var baseMW float64
		for t := 0; t < nTechs; t++ {
			var sumMW float64
			var agg stats.Counters
			for _, p := range geoPts {
				sumMW += p.Techs[t].Power.TotalMW()
				c := p.Techs[t].Stats
				agg.Add(&c)
			}
			avg := sumMW / float64(perWorkload)
			if t == 0 {
				baseMW = avg
			}
			cand := Candidate{
				Geometry:   geoPts[0].Geometry,
				ID:         geoPts[0].Techs[t].ID,
				TagEntries: geoPts[0].Techs[t].TagEntries,
				SetEntries: geoPts[0].Techs[t].SetEntries,
				AvgMW:      avg,
				BaselineMW: baseMW,
				HitRate:    agg.HitRate(),
				MABHitRate: agg.MABHitRate(),
			}
			if baseMW > 0 {
				cand.Saving = 1 - avg/baseMW
			}
			out = append(out, cand)
		}
	}
	return out
}

// Optimum returns the candidate with the lowest average power. The
// conventional baselines compete too: if no MAB size pays for itself, the
// optimum is "original". ok is false for an empty slice.
func Optimum(cands []Candidate) (best Candidate, ok bool) {
	for _, c := range cands {
		if !ok || c.AvgMW < best.AvgMW {
			best, ok = c, true
		}
	}
	return best, ok
}

// Pareto extracts the power/hit-rate frontier: candidates not dominated on
// (AvgMW minimized, HitRate maximized, MABHitRate maximized). Across a
// geometry sweep this is the classic power-versus-hit-rate trade-off;
// within a single geometry — where every technique shares the cache hit
// rate — it degenerates to power versus MAB coverage. The frontier is
// returned sorted by ascending power.
func Pareto(cands []Candidate) []Candidate {
	dominates := func(a, b Candidate) bool {
		if a.AvgMW > b.AvgMW || a.HitRate < b.HitRate || a.MABHitRate < b.MABHitRate {
			return false
		}
		return a.AvgMW < b.AvgMW || a.HitRate > b.HitRate || a.MABHitRate > b.MABHitRate
	}
	var out []Candidate
	for i, c := range cands {
		dominated := false
		for j, o := range cands {
			if i != j && dominates(o, c) {
				dominated = true
				break
			}
		}
		if !dominated {
			out = append(out, c)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].AvgMW < out[j].AvgMW })
	return out
}

// Marginal is the average effect of one axis value with every other axis
// averaged out — the "which knob matters" view of the grid.
type Marginal struct {
	// Axis is "sets", "ways", "line", "mab-tags" or "mab-sets".
	Axis  string
	Value int
	// AvgMW and AvgSaving average over the N MAB candidates that share
	// this axis value (baselines are excluded so the MAB axes stay
	// comparable).
	AvgMW     float64
	AvgSaving float64
	N         int
}

// Marginals computes per-axis marginals for every axis the space actually
// sweeps (more than one value). Axes appear in space order; values in axis
// order.
func (g *Grid) Marginals() []Marginal { return g.marginals(g.Candidates()) }

func (g *Grid) marginals(cands []Candidate) []Marginal {
	axes := []struct {
		name   string
		values []int
		sel    func(Candidate) int
	}{
		{"sets", g.Space.Sets, func(c Candidate) int { return c.Geometry.Sets }},
		{"ways", g.Space.Ways, func(c Candidate) int { return c.Geometry.Ways }},
		{"line", g.Space.LineBytes, func(c Candidate) int { return c.Geometry.LineBytes }},
		{"mab-tags", g.Space.TagEntries, func(c Candidate) int { return c.TagEntries }},
		{"mab-sets", g.Space.SetEntries, func(c Candidate) int { return c.SetEntries }},
	}
	var out []Marginal
	for _, ax := range axes {
		if len(ax.values) < 2 {
			continue
		}
		for _, v := range ax.values {
			m := Marginal{Axis: ax.name, Value: v}
			for _, c := range cands {
				if c.TagEntries == 0 { // baseline: not part of any MAB axis
					continue
				}
				if ax.sel(c) != v {
					continue
				}
				m.AvgMW += c.AvgMW
				m.AvgSaving += c.Saving
				m.N++
			}
			if m.N > 0 {
				m.AvgMW /= float64(m.N)
				m.AvgSaving /= float64(m.N)
			}
			out = append(out, m)
		}
	}
	return out
}
