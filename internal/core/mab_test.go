package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"waymemo/internal/cache"
	"waymemo/internal/trace"
)

var geo = cache.FRV32K

// addrOf builds an address from (tag, set, offset) under FRV32K geometry.
func addrOf(tag, set, off uint32) uint32 {
	return tag<<14 | set<<5 | off
}

func TestInRange(t *testing.T) {
	m := New(DefaultD, geo)
	for _, d := range []int32{0, 1, -1, 16383, -16384, 8, 100} {
		if !m.InRange(d) {
			t.Errorf("disp %d should be in range", d)
		}
	}
	for _, d := range []int32{16384, -16385, 1 << 20, -(1 << 20)} {
		if m.InRange(d) {
			t.Errorf("disp %d should be out of range", d)
		}
	}
}

// TestPredictedAddressProperty is the cflag-arithmetic property at the heart
// of §3.1: the tag predicted from the base's upper 18 bits, the carry of the
// 14-bit adder and the displacement sign must equal the real upper bits of
// base+disp for every in-range displacement.
func TestPredictedAddressProperty(t *testing.T) {
	m := New(DefaultD, geo)
	f := func(base uint32, rawDisp int32) bool {
		disp := rawDisp % (1 << 14) // force in range
		res := m.Probe(base, disp)
		if !res.InRange {
			return false
		}
		return res.PredictedAddr == base+uint32(disp)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20000}); err != nil {
		t.Fatal(err)
	}
}

func TestProbeMissThenUpdateHit(t *testing.T) {
	m := New(DefaultD, geo)
	base, disp := addrOf(100, 7, 0), int32(24)
	if m.Probe(base, disp).Hit {
		t.Fatal("hit in empty MAB")
	}
	m.Update(base, disp, 1)
	res := m.Probe(base, disp)
	if !res.Hit || res.Way != 1 {
		t.Fatalf("after update: %+v", res)
	}
	if m.ValidPairs() != 1 {
		t.Fatalf("valid pairs = %d", m.ValidPairs())
	}
}

// TestSameLineDifferentKeyMisses documents that the MAB keys on the base
// address, not the final tag: two expressions of the same address with
// different (base, cflag) occupy different entries.
func TestSameLineDifferentKeyMisses(t *testing.T) {
	m := New(DefaultD, geo)
	target := addrOf(100, 0, 8)
	m.Update(target, 0, 0) // key = (base18 100, carry 0, positive)
	// Same target from a base 32 bytes below: the base sits in the previous
	// 16KB region (base18 99) and the add carries, so the key is
	// (99, carry 1, positive) — same physical tag, different MAB entry.
	res := m.Probe(target-32, 32)
	if res.PredictedAddr != target {
		t.Fatalf("prediction broken: %#x", res.PredictedAddr)
	}
	if res.Hit {
		t.Fatal("distinct key unexpectedly hit")
	}
	// ...whereas probing with the exact installing key hits.
	if !m.Probe(target, 0).Hit {
		t.Fatal("installing key missed")
	}
}

// TestCrossProduct checks that Nt×Ns pairs are addressable: with 2 tags and
// 8 sets, 16 addresses can be memoized simultaneously (the paper's example).
func TestCrossProduct(t *testing.T) {
	m := New(Config{TagEntries: 2, SetEntries: 8}, geo)
	for ti := uint32(0); ti < 2; ti++ {
		for si := uint32(0); si < 8; si++ {
			m.Update(addrOf(100+ti, si, 0), 0, int(ti)&1)
		}
	}
	if m.ValidPairs() != 16 {
		t.Fatalf("valid pairs = %d, want 16", m.ValidPairs())
	}
	for ti := uint32(0); ti < 2; ti++ {
		for si := uint32(0); si < 8; si++ {
			res := m.Probe(addrOf(100+ti, si, 0), 0)
			if !res.Hit || res.Way != int(ti)&1 {
				t.Fatalf("pair (%d,%d): %+v", ti, si, res)
			}
		}
	}
}

// TestUpdateCase2 verifies that replacing a tag row kills the row's pairs
// (§3.3 case 2).
func TestUpdateCase2(t *testing.T) {
	m := New(Config{TagEntries: 2, SetEntries: 8}, geo)
	m.Update(addrOf(1, 0, 0), 0, 0)
	m.Update(addrOf(2, 1, 0), 0, 0)
	m.Update(addrOf(2, 2, 0), 0, 0) // row for tag 2 now has two pairs
	// Tag 3 misses, set 1 hits: replaces LRU row (tag 1).
	m.Update(addrOf(3, 1, 0), 0, 1)
	if m.Probe(addrOf(1, 0, 0), 0).Hit {
		t.Fatal("pair of replaced row survived")
	}
	if !m.Probe(addrOf(3, 1, 0), 0).Hit || !m.Probe(addrOf(2, 2, 0), 0).Hit {
		t.Fatal("surviving pairs lost")
	}
}

// TestUpdateCase3 verifies that replacing a set column kills the column's
// pairs (§3.3 case 3).
func TestUpdateCase3(t *testing.T) {
	m := New(Config{TagEntries: 2, SetEntries: 2}, geo)
	m.Update(addrOf(1, 10, 0), 0, 0)
	m.Update(addrOf(2, 11, 0), 0, 0)
	m.Update(addrOf(1, 11, 0), 0, 0) // refresh set 11 and tag 1
	// Set 12 misses, tag 1 hits: replaces LRU set column (10).
	m.Update(addrOf(1, 12, 0), 0, 1)
	if m.Probe(addrOf(1, 10, 0), 0).Hit {
		t.Fatal("pair of replaced column survived")
	}
	if !m.Probe(addrOf(2, 11, 0), 0).Hit {
		t.Fatal("unrelated pair lost")
	}
}

func TestBypassClearModes(t *testing.T) {
	all := New(Config{TagEntries: 2, SetEntries: 4, Consistency: PolicyPaper, Clear: ClearAll}, geo)
	all.Update(addrOf(1, 0, 0), 0, 0)
	all.Update(addrOf(2, 1, 0), 0, 0)
	all.OnBypass()
	if all.ValidPairs() != 0 {
		t.Fatalf("ClearAll left %d pairs", all.ValidPairs())
	}

	row := New(Config{TagEntries: 2, SetEntries: 4, Consistency: PolicyPaper, Clear: ClearLRURow}, geo)
	row.Update(addrOf(1, 0, 0), 0, 0) // tag 1 is LRU after next update
	row.Update(addrOf(2, 1, 0), 0, 0)
	row.OnBypass()
	if row.Probe(addrOf(1, 0, 0), 0).Hit {
		t.Fatal("LRU row survived ClearLRURow")
	}
	if !row.Probe(addrOf(2, 1, 0), 0).Hit {
		t.Fatal("MRU row cleared by ClearLRURow")
	}

	none := New(Config{TagEntries: 2, SetEntries: 4, Clear: ClearNone}, geo)
	none.Update(addrOf(1, 0, 0), 0, 0)
	none.OnBypass()
	if none.ValidPairs() != 1 {
		t.Fatal("ClearNone cleared")
	}
}

func TestOnEviction(t *testing.T) {
	m := New(DefaultD, geo)
	// Install with a negative displacement so the stored key differs from
	// the true tag (tests the cflag adjustment in the reverse match).
	target := addrOf(100, 7, 0)
	base := target + 16 // key base18 = 100, disp = -16 (borrow: carry=1,sign=1 → adj 0)
	m.Update(base, -16, 1)
	if !m.Probe(base, -16).Hit {
		t.Fatal("setup probe failed")
	}
	// Evicting a different tag in the same set must not clear it.
	m.OnEviction(cache.Eviction{Tag: 101, Set: 7, Way: 1})
	if !m.Probe(base, -16).Hit {
		t.Fatal("unrelated eviction cleared pair")
	}
	// Evicting the true line clears it.
	m.OnEviction(cache.Eviction{Tag: 100, Set: 7, Way: 1})
	if m.Probe(base, -16).Hit {
		t.Fatal("pair survived its line's eviction")
	}
}

// TestNegativeDisplacementBorrow exercises the sign/carry corner: base just
// above a 16KB boundary with a negative displacement crossing it.
func TestNegativeDisplacementBorrow(t *testing.T) {
	m := New(DefaultD, geo)
	base := addrOf(100, 0, 8) // low bits small: borrow guaranteed
	disp := int32(-32)
	res := m.Probe(base, disp)
	if !res.InRange || res.PredictedAddr != base-32 {
		t.Fatalf("predicted %#x want %#x", res.PredictedAddr, base-32)
	}
	m.Update(base, disp, 0)
	if !m.Probe(base, disp).Hit {
		t.Fatal("borrow key did not round trip")
	}
}

// TestPaperPolicyViolationScenario reproduces the interleaving described in
// DESIGN.md: with Nt equal to the cache associativity, the paper's pure LRU
// rules let a valid MAB pair outlive its cache line. The sound policy
// (evict-invalidate) keeps the invariant.
func TestPaperPolicyViolationScenario(t *testing.T) {
	run := func(policy Policy) (*DController, int) {
		d := NewDController(geo, Config{TagEntries: 2, SetEntries: 8, Consistency: policy})
		send := func(tag, set uint32) {
			addr := addrOf(tag, set, 0)
			d.OnData(trace.DataEvent{Addr: addr, Base: addr, Disp: 0, Size: 4})
		}
		send(1, 7) // line (1,7) cached; MAB rows {1}
		send(2, 7) // set 7 = {1,2}, line 1 LRU; MAB rows {1,2}
		send(1, 9) // row 1 refreshed (other set); set 7 LRU order unchanged
		send(3, 7) // evicts line (1,7); MAB replaces LRU row 2
		return d, d.MAB.CheckInvariant(d.Cache)
	}
	if _, bad := run(PolicyPaper); bad == 0 {
		t.Fatal("expected an invariant violation under the paper policy")
	}
	d, bad := run(PolicyEvictInvalidate)
	if bad != 0 {
		t.Fatalf("sound policy violated the invariant (%d pairs)", bad)
	}
	// And the stale pair must not produce a wrong-way hit afterwards.
	addr := addrOf(1, 7, 0)
	d.OnData(trace.DataEvent{Addr: addr, Base: addr, Disp: 0, Size: 4})
	if d.Stats.Violations != 0 {
		t.Fatalf("violations under sound policy: %d", d.Stats.Violations)
	}
}

// TestInvariantUnderRandomStream hammers the D controller with random
// accesses and checks MAB ⊆ cache continuously under the sound policy, and
// that the MAB never changes functional cache behaviour (same hits/misses as
// a plain cache).
func TestInvariantUnderRandomStream(t *testing.T) {
	small := cache.Config{Sets: 16, Ways: 2, LineBytes: 32} // high conflict pressure
	d := NewDController(small, Config{TagEntries: 2, SetEntries: 4})
	plain := cache.New(small)
	var plainHits, plainMisses uint64
	r := rand.New(rand.NewSource(11))
	bases := make([]uint32, 8)
	for i := range bases {
		bases[i] = uint32(r.Intn(1<<20) * 4)
	}
	for i := 0; i < 200000; i++ {
		base := bases[r.Intn(len(bases))]
		disp := int32(r.Intn(1<<15) - 1<<14) // mostly in range, some out
		addr := base + uint32(disp)
		ev := trace.DataEvent{Addr: addr, Base: base, Disp: disp, Store: r.Intn(3) == 0, Size: 4}
		d.OnData(ev)
		if way, hit := plain.Lookup(addr); hit {
			plainHits++
			plain.Touch(addr, way)
			if ev.Store {
				plain.MarkDirty(addr, way)
			}
		} else {
			plainMisses++
			plain.Fill(addr)
		}
		if i%1000 == 0 {
			if bad := d.MAB.CheckInvariant(d.Cache); bad != 0 {
				t.Fatalf("invariant violated at access %d: %d pairs", i, bad)
			}
		}
	}
	if d.Stats.Violations != 0 {
		t.Fatalf("way violations: %d", d.Stats.Violations)
	}
	if d.Stats.Hits != plainHits || d.Stats.Misses != plainMisses {
		t.Fatalf("functional divergence: MAB %d/%d vs plain %d/%d",
			d.Stats.Hits, d.Stats.Misses, plainHits, plainMisses)
	}
	if d.Stats.MABHits == 0 {
		t.Fatal("MAB never hit; stream not exercising memoization")
	}
}

// TestPaperPolicyViolationsAreRare runs the same stream under the paper
// policy and checks that violations, while possible, stay rare (the paper's
// argument is sound for the overwhelming majority of interleavings).
func TestPaperPolicyViolationsAreRare(t *testing.T) {
	small := cache.Config{Sets: 16, Ways: 2, LineBytes: 32}
	d := NewDController(small, Config{TagEntries: 2, SetEntries: 4, Consistency: PolicyPaper})
	r := rand.New(rand.NewSource(11))
	bases := make([]uint32, 8)
	for i := range bases {
		bases[i] = uint32(r.Intn(1<<20) * 4)
	}
	const n = 200000
	for i := 0; i < n; i++ {
		base := bases[r.Intn(len(bases))]
		disp := int32(r.Intn(1<<15) - 1<<14)
		d.OnData(trace.DataEvent{Addr: base + uint32(disp), Base: base, Disp: disp, Store: r.Intn(3) == 0, Size: 4})
	}
	if rate := float64(d.Stats.Violations) / float64(n); rate > 0.01 {
		t.Fatalf("violation rate %.4f implausibly high", rate)
	}
}
