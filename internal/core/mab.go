// Package core implements the paper's contribution: the Memory Address
// Buffer (MAB) and the way-memoized cache controllers built around it.
//
// The MAB (Section 3.3, Figure 3 of the paper) keeps two small tables:
//
//   - a tag table of Nt entries, each holding the upper 18 bits of a *base*
//     address plus a 2-bit cflag (the carry out of a 14-bit adder over the
//     low address bits, and the sign class of the displacement), and
//   - a set-index table of Ns entries, each holding a 9-bit set index,
//
// plus an Nt×Ns cross-product of valid flags and memoized way numbers
// (vflag[t][s], way[t][s]). A 2x8-entry MAB can therefore memoize up to 16
// addresses while storing only 2 tags and 8 set indices.
//
// Because the tag table is keyed by the base address's upper bits and the
// cflag — not by the final tag — the MAB can be probed in parallel with the
// 32-bit address adder: only a 14-bit add of the low bits is needed, whose
// delay is below the full adder's. Two different (base, cflag) keys may
// denote the same physical tag; that costs hits, never correctness.
package core

import (
	"fmt"

	"waymemo/internal/cache"
	"waymemo/internal/synth"
)

// Policy selects how the MAB is kept consistent with the cache (MAB ⊆ cache:
// a valid MAB pair must always point at a resident line).
type Policy uint8

const (
	// PolicyEvictInvalidate clears MAB pairs that match a line evicted from
	// the cache. It is sound by construction and is the default used for
	// the power results. Hardware cost: one reverse comparison per refill,
	// which is rare.
	PolicyEvictInvalidate Policy = iota
	// PolicyPaper relies solely on the paper's LRU argument and the
	// large-displacement clearing rule. The controllers detect and count
	// (rare) violations of MAB ⊆ cache under this policy; see DESIGN.md for
	// a concrete interleaving that triggers one when the number of tag
	// entries equals the number of cache ways.
	PolicyPaper
)

// ClearMode selects what the MAB invalidates when an access bypasses it
// (displacement out of the 14-bit adder's range, or an indirect jump).
type ClearMode uint8

const (
	// ClearAuto picks ClearNone for PolicyEvictInvalidate (evictions are
	// already precise) and ClearAll for PolicyPaper.
	ClearAuto ClearMode = iota
	// ClearAll invalidates every vflag: trivially conservative.
	ClearAll
	// ClearLRURow invalidates only the LRU tag row, one reading of the
	// paper's §3.3 rule.
	ClearLRURow
	// ClearNone performs no invalidation.
	ClearNone
)

// Config sizes and parameterizes a MAB.
type Config struct {
	// TagEntries (Nt) and SetEntries (Ns). The paper finds 2x8 optimal for
	// the D-cache and uses 2x16 for the I-cache.
	TagEntries int
	SetEntries int

	Consistency Policy
	Clear       ClearMode
}

// DefaultD is the paper's D-cache MAB configuration (2 tags × 8 set indices).
var DefaultD = Config{TagEntries: 2, SetEntries: 8}

// DefaultI is the paper's I-cache MAB configuration (2 tags × 16 set
// indices).
var DefaultI = Config{TagEntries: 2, SetEntries: 16}

func (c Config) clearMode() ClearMode {
	if c.Clear != ClearAuto {
		return c.Clear
	}
	if c.Consistency == PolicyPaper {
		return ClearAll
	}
	return ClearNone
}

// String names the configuration like the paper ("2x8").
func (c Config) String() string {
	return fmt.Sprintf("%dx%d", c.TagEntries, c.SetEntries)
}

// Lookup is the result of probing the MAB.
type Lookup struct {
	// InRange is false when the displacement exceeds the low adder's range
	// and the MAB must be bypassed.
	InRange bool
	// Hit reports a valid (tag,set) pair; Way is then the memoized way.
	Hit bool
	Way int
	// PredictedAddr is the line-aligned address the pair denotes; the
	// controllers use it to verify the memoized way against the cache.
	PredictedAddr uint32
}

// MAB is the Memory Address Buffer.
type MAB struct {
	cfg        Config
	geo        cache.Config
	lowBits    uint // offset+set bits covered by the small adder (14)
	offsetBits uint
	lowMask    uint32

	// The tag and set-index tables are stored column-wise (structure of
	// arrays): Probe scans both tables on every single access, and keeping
	// the compared columns contiguous lets one scan touch one cache line
	// instead of one struct per entry.
	tagKey   []uint32 // upper (32-lowBits) bits of the base address
	tagCflag []uint8  // bit0 = carry, bit1 = displacement sign class
	tagValid []bool
	tagUse   []uint64
	setIdx   []uint32
	setValid []bool
	setUse   []uint64

	vflag [][]bool
	way   [][]int8
	clock uint64

	// Slot resolution of the most recent Probe, so the Update that follows
	// a missed probe (the controllers' hot path) skips both table scans.
	// Only valid until the tables' occupancy changes: Update consumes it.
	lastKey    uint32
	lastCflag  uint8
	lastSetIdx uint32
	lastI      int
	lastJ      int
	lastValid  bool
}

// New builds a MAB for a cache with the given geometry.
func New(cfg Config, geo cache.Config) *MAB {
	if cfg.TagEntries <= 0 || cfg.SetEntries <= 0 {
		panic(fmt.Sprintf("core: bad MAB config %+v", cfg))
	}
	if err := geo.Validate(); err != nil {
		panic(err)
	}
	m := &MAB{
		cfg:        cfg,
		geo:        geo,
		lowBits:    uint(geo.OffsetBits() + geo.SetBits()),
		offsetBits: uint(geo.OffsetBits()),
		tagKey:     make([]uint32, cfg.TagEntries),
		tagCflag:   make([]uint8, cfg.TagEntries),
		tagValid:   make([]bool, cfg.TagEntries),
		tagUse:     make([]uint64, cfg.TagEntries),
		setIdx:     make([]uint32, cfg.SetEntries),
		setValid:   make([]bool, cfg.SetEntries),
		setUse:     make([]uint64, cfg.SetEntries),
		vflag:      make([][]bool, cfg.TagEntries),
		way:        make([][]int8, cfg.TagEntries),
	}
	m.lowMask = 1<<m.lowBits - 1
	for i := range m.vflag {
		m.vflag[i] = make([]bool, cfg.SetEntries)
		m.way[i] = make([]int8, cfg.SetEntries)
	}
	return m
}

// Config returns the MAB configuration.
func (m *MAB) Config() Config { return m.cfg }

// Characterize returns the circuit model (area, delay, active/sleep power)
// of this MAB's configuration, per Tables 1-3 of the paper.
func (m *MAB) Characterize() synth.Result {
	return synth.Characterize(m.cfg.TagEntries, m.cfg.SetEntries)
}

// InRange reports whether disp fits the low adder: its upper bits must be
// all zeros or all ones (|disp| < 2^lowBits), the paper's §3.3 condition.
func (m *MAB) InRange(disp int32) bool {
	hi := disp >> m.lowBits
	return hi == 0 || hi == -1
}

// key computes the tag-table key for (base, disp): the base's upper bits and
// the cflag from the low adder.
func (m *MAB) key(base uint32, disp int32) (key uint32, cflag uint8, setIdx uint32) {
	low := base & m.lowMask
	dlow := uint32(disp) & m.lowMask
	sum := low + dlow
	carry := uint8(sum >> m.lowBits & 1)
	sign := uint8(0)
	if disp < 0 {
		sign = 1
	}
	return base >> m.lowBits, carry | sign<<1, (sum & m.lowMask) >> m.offsetBits
}

// trueTag returns the physical cache tag the i-th tag entry denotes:
// key + carry (positive displacement) or key + carry - 1 (negative).
func (m *MAB) trueTag(i int) uint32 {
	adj := uint32(m.tagCflag[i] & 1)
	if m.tagCflag[i]&2 != 0 {
		adj--
	}
	mask := uint32(1)<<(32-m.lowBits) - 1
	return (m.tagKey[i] + adj) & mask
}

func (m *MAB) findTag(key uint32, cflag uint8) int {
	for i, k := range m.tagKey {
		if k == key && m.tagValid[i] && m.tagCflag[i] == cflag {
			return i
		}
	}
	return -1
}

func (m *MAB) findSet(idx uint32) int {
	for j, v := range m.setIdx {
		if v == idx && m.setValid[j] {
			return j
		}
	}
	return -1
}

func (m *MAB) lruTag() int {
	victim, oldest := 0, ^uint64(0)
	for i := range m.tagKey {
		if !m.tagValid[i] {
			return i
		}
		if m.tagUse[i] < oldest {
			victim, oldest = i, m.tagUse[i]
		}
	}
	return victim
}

func (m *MAB) lruSet() int {
	victim, oldest := 0, ^uint64(0)
	for j := range m.setIdx {
		if !m.setValid[j] {
			return j
		}
		if m.setUse[j] < oldest {
			victim, oldest = j, m.setUse[j]
		}
	}
	return victim
}

// Probe looks (base, disp) up without modifying anything except the LRU
// clocks on a hit (a hit is also a use).
func (m *MAB) Probe(base uint32, disp int32) Lookup {
	if !m.InRange(disp) {
		return Lookup{}
	}
	key, cflag, _ := m.key(base, disp)
	// Reconstruct the predicted address the way the hardware does: the low
	// bits come from the 14-bit adder, the tag from the base's upper bits
	// adjusted by carry and displacement sign. For in-range displacements
	// this equals base+disp — TestPredictedAddressProperty proves it.
	adj := uint32(cflag & 1)
	if cflag&2 != 0 {
		adj--
	}
	predLow := (base + uint32(disp)) & m.lowMask
	res := Lookup{InRange: true, PredictedAddr: (key+adj)<<m.lowBits | predLow}
	res.Way, res.Hit = m.probeFast(base, disp)
	return res
}

// probeFast is Probe stripped for the controllers' per-event hot path: the
// caller has already checked InRange, and nothing on the hot path consumes
// the predicted address (the controllers verify the memoized way against
// the final address the trace already carries), so neither is recomputed
// here.
func (m *MAB) probeFast(base uint32, disp int32) (way int, hit bool) {
	key, cflag, setIdx := m.key(base, disp)
	i := m.findTag(key, cflag)
	j := m.findSet(setIdx)
	m.lastKey, m.lastCflag, m.lastSetIdx = key, cflag, setIdx
	m.lastI, m.lastJ, m.lastValid = i, j, true
	if i >= 0 && j >= 0 && m.vflag[i][j] {
		m.clock++
		m.tagUse[i] = m.clock
		m.setUse[j] = m.clock
		return int(m.way[i][j]), true
	}
	return 0, false
}

// Update installs (base, disp) → way after a full cache access, following
// the four hit/miss cases of §3.3.
func (m *MAB) Update(base uint32, disp int32, way int) {
	if !m.InRange(disp) {
		return
	}
	key, cflag, setIdx := m.key(base, disp)
	var i, j int
	if m.lastValid && m.lastKey == key && m.lastCflag == cflag && m.lastSetIdx == setIdx {
		// Between the probe and this update only vflag bits can have
		// changed (eviction invalidations), never table occupancy, so the
		// memoized slots are still the scan's answer.
		i, j = m.lastI, m.lastJ
	} else {
		i, j = m.findTag(key, cflag), m.findSet(setIdx)
	}
	m.lastValid = false
	m.clock++
	if i < 0 {
		// Replace the LRU tag row; all pairs of the old row die.
		i = m.lruTag()
		m.tagKey[i], m.tagCflag[i], m.tagValid[i], m.tagUse[i] = key, cflag, true, 0
		for s := range m.vflag[i] {
			m.vflag[i][s] = false
		}
	}
	if j < 0 {
		// Replace the LRU set column; all pairs of the old column die.
		j = m.lruSet()
		m.setIdx[j], m.setValid[j], m.setUse[j] = setIdx, true, 0
		for t := range m.vflag {
			m.vflag[t][j] = false
		}
	}
	m.tagUse[i] = m.clock
	m.setUse[j] = m.clock
	m.vflag[i][j] = true
	m.way[i][j] = int8(way)
}

// Invalidate clears the pair denoting (base, disp) if present. Used when a
// verified MAB hit turns out stale under PolicyPaper.
func (m *MAB) Invalidate(base uint32, disp int32) {
	if !m.InRange(disp) {
		return
	}
	key, cflag, setIdx := m.key(base, disp)
	if i, j := m.findTag(key, cflag), m.findSet(setIdx); i >= 0 && j >= 0 {
		m.vflag[i][j] = false
	}
}

// OnBypass applies the configured conservative clearing when an access
// cannot be tracked by the MAB (large displacement or indirect jump).
func (m *MAB) OnBypass() {
	switch m.cfg.clearMode() {
	case ClearAll:
		for i := range m.vflag {
			for j := range m.vflag[i] {
				m.vflag[i][j] = false
			}
		}
	case ClearLRURow:
		i := m.lruTag()
		for j := range m.vflag[i] {
			m.vflag[i][j] = false
		}
	}
}

// OnEviction clears pairs that denote the evicted line. Wired to
// cache.Cache.OnEvict under PolicyEvictInvalidate.
func (m *MAB) OnEviction(ev cache.Eviction) {
	for j := range m.setIdx {
		if !m.setValid[j] || m.setIdx[j] != ev.Set {
			continue
		}
		for i := range m.tagKey {
			if m.vflag[i][j] && m.tagValid[i] && m.trueTag(i) == ev.Tag {
				m.vflag[i][j] = false
			}
		}
	}
}

// ValidPairs returns the number of currently valid (tag,set) pairs.
func (m *MAB) ValidPairs() int {
	n := 0
	for i := range m.vflag {
		for j := range m.vflag[i] {
			if m.vflag[i][j] {
				n++
			}
		}
	}
	return n
}

// CheckInvariant verifies MAB ⊆ cache: every valid pair's line must be
// resident at the memoized way. It returns the number of violating pairs.
func (m *MAB) CheckInvariant(c *cache.Cache) int {
	bad := 0
	for i := range m.vflag {
		for j := range m.vflag[i] {
			if !m.vflag[i][j] {
				continue
			}
			tag, valid := c.TagAt(m.setIdx[j], int(m.way[i][j]))
			if !valid || tag != m.trueTag(i) {
				bad++
			}
		}
	}
	return bad
}
