package core

import (
	"waymemo/internal/cache"
	"waymemo/internal/stats"
	"waymemo/internal/trace"
)

// IController is the way-memoized instruction-cache controller of Figure 2.
//
// Intra-line sequential fetches (case 1 of the paper's flow taxonomy) are
// satisfied with no tag access and a single way read using the previous
// fetch's way, exactly as in Panwar & Rennels [4] — the fetched line cannot
// have left the cache since the previous cycle.
//
// All other flows probe the MAB with one of its three input types:
//
//	sequential line crossing:  base = previous packet, disp = packet stride
//	taken branch/direct jump:  base = branch PC,       disp = encoded offset
//	jump to link register:     base = link value,      disp = 0
//
// Indirect jumps through other registers have no base+displacement form and
// bypass the MAB.
type IController struct {
	Cache *cache.Cache
	MAB   *MAB
	Stats *stats.Counters

	prevWay  int
	havePrev bool
}

var (
	_ trace.FetchSink      = (*IController)(nil)
	_ trace.FetchBatchSink = (*IController)(nil)
)

// NewIController builds the I-cache controller with its MAB.
func NewIController(geo cache.Config, mcfg Config) *IController {
	c := cache.New(geo)
	m := New(mcfg, geo)
	ic := &IController{Cache: c, MAB: m, Stats: &stats.Counters{}}
	if mcfg.Consistency == PolicyEvictInvalidate {
		c.OnEvict = m.OnEviction
	}
	return ic
}

// OnFetchBatch processes one replayed block of fetches. The loop dispatches
// on the concrete controller — no per-event interface call — which is what
// makes the batched fan-out replay's inner loop a plain slice walk.
func (ic *IController) OnFetchBatch(evs []trace.FetchEvent) {
	for i := range evs {
		ic.OnFetch(evs[i])
	}
}

// OnFetch processes one packet fetch.
func (ic *IController) OnFetch(ev trace.FetchEvent) {
	s := ic.Stats
	s.Accesses++
	s.Loads++
	if !ev.First {
		flow := trace.Classify(ev, uint32(ic.Cache.Config().LineBytes))
		s.Flow[flow]++
		if flow == trace.IntraSeq && ic.havePrev {
			// Case 1: the line was fetched last cycle; its way is known and
			// it cannot have been evicted in between.
			s.Case1Skips++
			s.Hits++
			s.WayReads++
			ic.Cache.Touch(ev.Addr, ic.prevWay)
			return
		}
	}
	if ev.First || ev.Kind == trace.KindIndirect {
		s.MABBypasses++
		ic.MAB.OnBypass()
		ic.prevWay = ic.fullFetch(ev)
		ic.havePrev = true
		return
	}
	if !ic.MAB.InRange(ev.Disp) {
		// Branch offset beyond the low adder's reach.
		s.MABBypasses++
		ic.MAB.OnBypass()
		ic.prevWay = ic.fullFetch(ev)
		ic.havePrev = true
		return
	}
	s.MABLookups++
	mabWay, mabHit := ic.MAB.probeFast(ev.Base, ev.Disp)
	if mabHit {
		if ic.Cache.Present(ev.Addr, mabWay) {
			s.MABHits++
			s.Hits++
			s.WayReads++
			ic.Cache.Touch(ev.Addr, mabWay)
			ic.prevWay = mabWay
			ic.havePrev = true
			return
		}
		s.Violations++
		ic.MAB.Invalidate(ev.Base, ev.Disp)
	}
	s.MABMisses++
	way := ic.fullFetch(ev)
	ic.MAB.Update(ev.Base, ev.Disp, way)
	s.MABUpdates++
	ic.prevWay = way
	ic.havePrev = true
}

// fullFetch performs a conventional fetch (all tag ways, all data ways read
// in parallel) and returns the way holding the line.
func (ic *IController) fullFetch(ev trace.FetchEvent) int {
	s, c := ic.Stats, ic.Cache
	ways := uint64(c.Config().Ways)
	s.TagReads += ways
	s.WayReads += ways
	way, hit := c.Lookup(ev.Addr)
	if hit {
		s.Hits++
	} else {
		s.Misses++
		var evc cache.Eviction
		way, evc = c.Fill(ev.Addr)
		s.Refills++
		s.WayWrites++
		if evc.Dirty {
			s.WriteBacks++
		}
	}
	c.Touch(ev.Addr, way)
	return way
}
