package core

import (
	"waymemo/internal/cache"
	"waymemo/internal/stats"
	"waymemo/internal/trace"
)

// DLineBufferController is the combination the paper's conclusion names as
// ongoing work: a single line buffer in front of the way-memoized D-cache.
// Accesses that stay within the most recently touched line are served from
// the buffer (no tag, no way, no MAB activity — the MAB stays clock-gated);
// everything else follows the normal MAB path and re-latches the buffer.
// Unlike Su & Despain's stand-alone line buffer [13], no extra cycle is
// charged on a buffer miss: the buffer is probed in parallel with the MAB,
// which already produces its answer inside the address-generation cycle.
type DLineBufferController struct {
	Cache *cache.Cache
	MAB   *MAB
	Stats *stats.Counters

	bufValid bool
	bufLine  uint32
	bufWay   int
	bufDirty bool
}

var (
	_ trace.DataSink      = (*DLineBufferController)(nil)
	_ trace.DataBatchSink = (*DLineBufferController)(nil)
)

// OnDataBatch processes one replayed block of accesses with direct calls on
// the concrete controller (see IController.OnFetchBatch).
func (d *DLineBufferController) OnDataBatch(evs []trace.DataEvent) {
	for i := range evs {
		d.OnData(evs[i])
	}
}

// NewDLineBufferController builds the combined controller.
func NewDLineBufferController(geo cache.Config, mcfg Config) *DLineBufferController {
	c := cache.New(geo)
	m := New(mcfg, geo)
	d := &DLineBufferController{Cache: c, MAB: m, Stats: &stats.Counters{}}
	c.OnEvict = func(ev cache.Eviction) {
		if mcfg.Consistency == PolicyEvictInvalidate {
			m.OnEviction(ev)
		}
		if d.bufValid && geo.Set(d.bufLine) == ev.Set && geo.Tag(d.bufLine) == ev.Tag {
			d.bufValid, d.bufDirty = false, false
		}
	}
	return d
}

// OnData serves the access from the buffer, the MAB, or the full path.
func (d *DLineBufferController) OnData(ev trace.DataEvent) {
	s := d.Stats
	geo := d.Cache.Config()
	line := geo.LineAddr(ev.Addr)
	s.Accesses++
	if ev.Store {
		s.Stores++
	} else {
		s.Loads++
	}
	s.BufReads++
	if d.bufValid && line == d.bufLine {
		s.BufHits++
		s.Hits++
		d.Cache.Touch(ev.Addr, d.bufWay)
		if ev.Store {
			s.BufWrites++
			d.bufDirty = true
			d.Cache.MarkDirty(ev.Addr, d.bufWay)
		}
		return
	}
	// Buffer miss: flush a dirty buffered line, then the MAB path.
	if d.bufValid && d.bufDirty {
		s.WayWrites++
		d.bufDirty = false
	}
	way := d.mabAccess(ev)
	d.bufValid, d.bufLine, d.bufWay = true, line, way
	d.bufDirty = ev.Store
	s.BufWrites++
}

// mabAccess is the DController access path, returning the final way.
func (d *DLineBufferController) mabAccess(ev trace.DataEvent) int {
	s := d.Stats
	if !d.MAB.InRange(ev.Disp) {
		s.MABBypasses++
		d.MAB.OnBypass()
		return d.fullAccess(ev)
	}
	s.MABLookups++
	mabWay, mabHit := d.MAB.probeFast(ev.Base, ev.Disp)
	if mabHit {
		if d.Cache.Present(ev.Addr, mabWay) {
			s.MABHits++
			s.Hits++
			d.Cache.Touch(ev.Addr, mabWay)
			if ev.Store {
				s.WayWrites++
				d.Cache.MarkDirty(ev.Addr, mabWay)
			} else {
				s.WayReads++
			}
			return mabWay
		}
		s.Violations++
		d.MAB.Invalidate(ev.Base, ev.Disp)
	}
	s.MABMisses++
	way := d.fullAccess(ev)
	d.MAB.Update(ev.Base, ev.Disp, way)
	s.MABUpdates++
	return way
}

func (d *DLineBufferController) fullAccess(ev trace.DataEvent) int {
	s, c := d.Stats, d.Cache
	ways := uint64(c.Config().Ways)
	s.TagReads += ways
	way, hit := c.Lookup(ev.Addr)
	if hit {
		s.Hits++
		if !ev.Store {
			s.WayReads += ways
		}
	} else {
		s.Misses++
		if !ev.Store {
			s.WayReads += ways
		}
		var evc cache.Eviction
		way, evc = c.Fill(ev.Addr)
		s.Refills++
		s.WayWrites++
		if evc.Dirty {
			s.WriteBacks++
		}
	}
	c.Touch(ev.Addr, way)
	if ev.Store {
		s.WayWrites++
		c.MarkDirty(ev.Addr, way)
	}
	return way
}
