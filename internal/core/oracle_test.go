package core

import (
	"math/rand"
	"testing"
)

// oracleMAB is an independent reference implementation of the MAB's §3.3
// semantics, written with maps and recency lists instead of tables, used to
// cross-check the production implementation on random streams.
type oracleMAB struct {
	nt, ns  int
	lowBits uint

	tagOrder []oracleKey // MRU first
	setOrder []uint32    // MRU first
	pairs    map[oraclePair]int
}

type oracleKey struct {
	key   uint32
	cflag uint8
}

type oraclePair struct {
	k oracleKey
	s uint32
}

func newOracleMAB(nt, ns int, lowBits uint) *oracleMAB {
	return &oracleMAB{nt: nt, ns: ns, lowBits: lowBits, pairs: map[oraclePair]int{}}
}

func (o *oracleMAB) keyOf(base uint32, disp int32) (oracleKey, uint32, bool) {
	hi := disp >> o.lowBits
	if hi != 0 && hi != -1 {
		return oracleKey{}, 0, false
	}
	mask := uint32(1)<<o.lowBits - 1
	sum := (base & mask) + (uint32(disp) & mask)
	carry := uint8(sum >> o.lowBits & 1)
	sign := uint8(0)
	if disp < 0 {
		sign = 1
	}
	return oracleKey{base >> o.lowBits, carry | sign<<1}, (sum & mask) >> 5, true
}

func (o *oracleMAB) findTag(k oracleKey) int {
	for i, e := range o.tagOrder {
		if e == k {
			return i
		}
	}
	return -1
}

func (o *oracleMAB) findSet(s uint32) int {
	for i, e := range o.setOrder {
		if e == s {
			return i
		}
	}
	return -1
}

func (o *oracleMAB) touchTag(i int) {
	k := o.tagOrder[i]
	copy(o.tagOrder[1:i+1], o.tagOrder[:i])
	o.tagOrder[0] = k
}

func (o *oracleMAB) touchSet(i int) {
	s := o.setOrder[i]
	copy(o.setOrder[1:i+1], o.setOrder[:i])
	o.setOrder[0] = s
}

func (o *oracleMAB) probe(base uint32, disp int32) (int, bool) {
	k, s, ok := o.keyOf(base, disp)
	if !ok {
		return 0, false
	}
	ti, si := o.findTag(k), o.findSet(s)
	if ti < 0 || si < 0 {
		return 0, false
	}
	way, valid := o.pairs[oraclePair{k, s}]
	if !valid {
		return 0, false
	}
	o.touchTag(ti)
	o.touchSet(si)
	return way, true
}

func (o *oracleMAB) update(base uint32, disp int32, way int) {
	k, s, ok := o.keyOf(base, disp)
	if !ok {
		return
	}
	if i := o.findTag(k); i >= 0 {
		o.touchTag(i)
	} else {
		if len(o.tagOrder) == o.nt {
			victim := o.tagOrder[o.nt-1]
			o.tagOrder = o.tagOrder[:o.nt-1]
			for p := range o.pairs {
				if p.k == victim {
					delete(o.pairs, p)
				}
			}
		}
		o.tagOrder = append([]oracleKey{k}, o.tagOrder...)
	}
	if i := o.findSet(s); i >= 0 {
		o.touchSet(i)
	} else {
		if len(o.setOrder) == o.ns {
			victim := o.setOrder[o.ns-1]
			o.setOrder = o.setOrder[:o.ns-1]
			for p := range o.pairs {
				if p.s == victim {
					delete(o.pairs, p)
				}
			}
		}
		o.setOrder = append([]uint32{s}, o.setOrder...)
	}
	o.pairs[oraclePair{k, s}] = way
}

// TestMABAgainstOracle drives random probe/update sequences through the
// production MAB and the reference model and demands identical hit/way
// behaviour. Consistency hooks are excluded (no cache attached), so this is
// a pure check of the table, LRU and vflag semantics of §3.3.
func TestMABAgainstOracle(t *testing.T) {
	configs := []Config{
		{TagEntries: 1, SetEntries: 4},
		{TagEntries: 2, SetEntries: 8},
		{TagEntries: 2, SetEntries: 2},
		{TagEntries: 4, SetEntries: 16},
	}
	for _, cfg := range configs {
		m := New(cfg, geo)
		o := newOracleMAB(cfg.TagEntries, cfg.SetEntries, 14)
		r := rand.New(rand.NewSource(int64(cfg.TagEntries*100 + cfg.SetEntries)))
		// A small pool of bases and displacements makes collisions and
		// LRU churn frequent.
		bases := make([]uint32, 6)
		for i := range bases {
			bases[i] = uint32(r.Intn(1 << 22))
		}
		disps := []int32{0, 4, -4, 64, -64, 8192, -8192, 20000, 1 << 20}
		for i := 0; i < 200000; i++ {
			base := bases[r.Intn(len(bases))]
			disp := disps[r.Intn(len(disps))]
			gotRes := m.Probe(base, disp)
			wantWay, wantHit := o.probe(base, disp)
			if gotRes.Hit != wantHit {
				t.Fatalf("%v step %d: probe(%#x,%d) hit=%v oracle=%v",
					cfg, i, base, disp, gotRes.Hit, wantHit)
			}
			if wantHit && gotRes.Way != wantWay {
				t.Fatalf("%v step %d: way %d oracle %d", cfg, i, gotRes.Way, wantWay)
			}
			if !wantHit {
				way := r.Intn(2)
				m.Update(base, disp, way)
				o.update(base, disp, way)
			}
			if i%5000 == 0 {
				if got, want := m.ValidPairs(), len(o.pairs); got != want {
					t.Fatalf("%v step %d: valid pairs %d oracle %d", cfg, i, got, want)
				}
			}
		}
	}
}
