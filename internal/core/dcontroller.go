package core

import (
	"waymemo/internal/cache"
	"waymemo/internal/stats"
	"waymemo/internal/trace"
)

// DController is the way-memoized data-cache controller of Figure 1: a MAB
// probed with (base register, displacement) in parallel with address
// generation. On a MAB hit the tag arrays stay dark and exactly one data way
// is activated; on a miss the access proceeds conventionally and the MAB is
// updated with the observed way.
//
// Stores model the FR-V write-back buffer (§4): even without the MAB they
// read all tag ways but write only the single matching data way.
type DController struct {
	Cache *cache.Cache
	MAB   *MAB
	Stats *stats.Counters
}

var (
	_ trace.DataSink      = (*DController)(nil)
	_ trace.DataBatchSink = (*DController)(nil)
)

// NewDController builds a cache plus MAB pair with the consistency policy
// wiring requested in mcfg.
func NewDController(geo cache.Config, mcfg Config) *DController {
	c := cache.New(geo)
	m := New(mcfg, geo)
	d := &DController{Cache: c, MAB: m, Stats: &stats.Counters{}}
	if mcfg.Consistency == PolicyEvictInvalidate {
		c.OnEvict = m.OnEviction
	}
	return d
}

// OnDataBatch processes one replayed block of accesses with direct calls on
// the concrete controller (see IController.OnFetchBatch).
func (d *DController) OnDataBatch(evs []trace.DataEvent) {
	for i := range evs {
		d.OnData(evs[i])
	}
}

// OnData processes one load or store.
func (d *DController) OnData(ev trace.DataEvent) {
	s := d.Stats
	s.Accesses++
	if ev.Store {
		s.Stores++
	} else {
		s.Loads++
	}
	if !d.MAB.InRange(ev.Disp) {
		// The low adder cannot produce the tag: bypass and conservatively
		// invalidate per the configured clearing rule.
		s.MABBypasses++
		d.MAB.OnBypass()
		d.fullAccess(ev)
		return
	}
	s.MABLookups++
	mabWay, mabHit := d.MAB.probeFast(ev.Base, ev.Disp)
	if mabHit {
		if d.Cache.Present(ev.Addr, mabWay) {
			s.MABHits++
			s.Hits++
			d.Cache.Touch(ev.Addr, mabWay)
			if ev.Store {
				s.WayWrites++
				d.Cache.MarkDirty(ev.Addr, mabWay)
			} else {
				s.WayReads++
			}
			return
		}
		// The memoized line was displaced: only reachable under
		// PolicyPaper. Hardware would return the wrong way's data; the
		// simulator counts it and recovers with a full access.
		s.Violations++
		d.MAB.Invalidate(ev.Base, ev.Disp)
	}
	s.MABMisses++
	way := d.fullAccess(ev)
	d.MAB.Update(ev.Base, ev.Disp, way)
	s.MABUpdates++
}

// fullAccess performs a conventional access and returns the way that ends up
// holding the line.
func (d *DController) fullAccess(ev trace.DataEvent) int {
	s, c := d.Stats, d.Cache
	ways := uint64(c.Config().Ways)
	s.TagReads += ways
	way, hit := c.Lookup(ev.Addr)
	if hit {
		s.Hits++
		if !ev.Store {
			s.WayReads += ways // all data ways are read in parallel with tag compare
		}
	} else {
		s.Misses++
		if !ev.Store {
			s.WayReads += ways // the parallel probe still burned all ways
		}
		var evc cache.Eviction
		way, evc = c.Fill(ev.Addr)
		s.Refills++
		s.WayWrites++ // line install into the selected way
		if evc.Dirty {
			s.WriteBacks++
		}
	}
	c.Touch(ev.Addr, way)
	if ev.Store {
		s.WayWrites++ // single-way store via the write-back buffer
		c.MarkDirty(ev.Addr, way)
	}
	return way
}
