package core

import (
	"math/rand"
	"testing"

	"waymemo/internal/cache"
	"waymemo/internal/trace"
)

func TestLineBufferComboServesSameLine(t *testing.T) {
	d := NewDLineBufferController(geo, DefaultD)
	ev := func(addr uint32, store bool) trace.DataEvent {
		return trace.DataEvent{Addr: addr, Base: addr, Disp: 0, Store: store, Size: 4}
	}
	d.OnData(ev(0x1000, false)) // buffer+MAB miss, cache miss
	tags, ways := d.Stats.TagReads, d.Stats.WayReads
	d.OnData(ev(0x1004, false)) // buffer hit: nothing else moves
	d.OnData(ev(0x1008, true))  // buffer hit store
	if d.Stats.TagReads != tags || d.Stats.WayReads != ways {
		t.Fatalf("buffer hits touched arrays: %+v", *d.Stats)
	}
	if d.Stats.BufHits != 2 {
		t.Fatalf("buffer hits = %d", d.Stats.BufHits)
	}
	// Crossing to another line goes through the MAB path.
	d.OnData(ev(0x1020, false))
	if d.Stats.MABLookups != 2 { // first access + this one
		t.Fatalf("MAB lookups = %d", d.Stats.MABLookups)
	}
}

func TestLineBufferComboDirtyFlush(t *testing.T) {
	d := NewDLineBufferController(geo, DefaultD)
	ev := func(addr uint32, store bool) trace.DataEvent {
		return trace.DataEvent{Addr: addr, Base: addr, Disp: 0, Store: store, Size: 4}
	}
	d.OnData(ev(0x1000, true))
	d.OnData(ev(0x1004, true)) // buffered dirty
	ww := d.Stats.WayWrites
	d.OnData(ev(0x2000, false))      // flush on line change
	if d.Stats.WayWrites != ww+1+1 { // flush + refill write of the new line
		t.Fatalf("way writes %d -> %d", ww, d.Stats.WayWrites)
	}
}

// TestLineBufferComboInvariant: same functional behaviour as the plain
// controller, buffer coherent with evictions, MAB invariant intact.
func TestLineBufferComboInvariant(t *testing.T) {
	small := cache.Config{Sets: 16, Ways: 2, LineBytes: 32}
	combo := NewDLineBufferController(small, Config{TagEntries: 2, SetEntries: 4})
	plain := NewDController(small, Config{TagEntries: 2, SetEntries: 4})
	r := rand.New(rand.NewSource(17))
	bases := make([]uint32, 6)
	for i := range bases {
		bases[i] = uint32(r.Intn(1<<18) * 4)
	}
	for i := 0; i < 100000; i++ {
		base := bases[r.Intn(len(bases))]
		disp := int32(r.Intn(1 << 10))
		ev := trace.DataEvent{Addr: base + uint32(disp), Base: base, Disp: disp,
			Store: r.Intn(3) == 0, Size: 4}
		combo.OnData(ev)
		plain.OnData(ev)
		if i%2000 == 0 {
			if bad := combo.MAB.CheckInvariant(combo.Cache); bad != 0 {
				t.Fatalf("MAB invariant violated: %d", bad)
			}
		}
	}
	if combo.Stats.Violations != 0 {
		t.Fatalf("violations: %d", combo.Stats.Violations)
	}
	if combo.Stats.Hits != plain.Stats.Hits || combo.Stats.Misses != plain.Stats.Misses {
		t.Fatalf("functional divergence: %d/%d vs %d/%d",
			combo.Stats.Hits, combo.Stats.Misses, plain.Stats.Hits, plain.Stats.Misses)
	}
	// The buffer must absorb work: fewer way reads than the plain MAB.
	if combo.Stats.WayReads >= plain.Stats.WayReads {
		t.Fatal("line buffer absorbed nothing")
	}
	if combo.Stats.BufHits == 0 {
		t.Fatal("no buffer hits")
	}
}
