package core

import (
	"testing"

	"waymemo/internal/trace"
)

// fetchSeq sends a straight-line run of packet fetches starting at addr.
func fetchSeq(ic *IController, start uint32, packets int, first bool) {
	prev := start - 8
	for i := 0; i < packets; i++ {
		addr := start + uint32(8*i)
		ev := trace.FetchEvent{Addr: addr, Prev: prev, Kind: trace.KindSeq, Base: prev, Disp: 8}
		if first && i == 0 {
			ev.First = true
		}
		ic.OnFetch(ev)
		prev = addr
	}
}

func TestICase1SkipsTagAccess(t *testing.T) {
	ic := NewIController(geo, DefaultI)
	// 4 packets: 0x10000,8,10,18 — packets 2 and 4 are intra-line
	// sequential (32-byte lines hold 4 packets).
	fetchSeq(ic, 0x10000, 4, true)
	s := ic.Stats
	// First fetch: bypass (cold). Packet 0x10008: intra-line seq → skip.
	// 0x10010, 0x10018: also intra-line.
	if s.Case1Skips != 3 {
		t.Fatalf("case1 skips = %d, want 3", s.Case1Skips)
	}
	// Only the first fetch did a full access: 2 tags + 2 ways + refill.
	if s.TagReads != 2 {
		t.Fatalf("tag reads = %d, want 2", s.TagReads)
	}
	if s.WayReads != 2+3 {
		t.Fatalf("way reads = %d, want 5", s.WayReads)
	}
}

func TestIInterLineSequentialUsesMAB(t *testing.T) {
	ic := NewIController(geo, DefaultI)
	// Two full lines of straight-line code, executed twice (loop-like
	// replay): second pass inter-line crossings hit the MAB.
	fetchSeq(ic, 0x10000, 8, true)
	// Jump back to start (branch) and rerun.
	ic.OnFetch(trace.FetchEvent{Addr: 0x10000, Prev: 0x10038, Kind: trace.KindBranch, Base: 0x1003c, Disp: -0x3c})
	fetchSeq(ic, 0x10008, 7, false)
	s := ic.Stats
	if s.MABHits == 0 {
		t.Fatalf("no MAB hits on replay: %+v", s)
	}
	// Line-crossing fetches in pass 2 (0x10020 crossing) must hit the MAB:
	// pass 1 installed (PC, +8) keys for each crossing.
	if s.Violations != 0 {
		t.Fatalf("violations: %d", s.Violations)
	}
	if bad := ic.MAB.CheckInvariant(ic.Cache); bad != 0 {
		t.Fatalf("invariant: %d", bad)
	}
}

func TestILinkAndBranchKinds(t *testing.T) {
	ic := NewIController(geo, DefaultI)
	call := trace.FetchEvent{Addr: 0x20000, Prev: 0x10000, Kind: trace.KindBranch, Base: 0x10004, Disp: 0x20000 + 0 - 0x10004}
	// Too-large displacement: bypassed.
	ic.OnFetch(trace.FetchEvent{Addr: 0x10000, Prev: 0, Kind: trace.KindSeq, Base: 0, Disp: 8, First: true})
	ic.OnFetch(call)
	if ic.Stats.MABBypasses != 2 { // first fetch + far call
		t.Fatalf("bypasses = %d", ic.Stats.MABBypasses)
	}
	// Return via link register: disp 0, always in MAB range.
	ret := trace.FetchEvent{Addr: 0x10008, Prev: 0x20000, Kind: trace.KindLink, Base: 0x10008, Disp: 0}
	ic.OnFetch(ret)
	if ic.Stats.MABLookups != 1 || ic.Stats.MABMisses != 1 {
		t.Fatalf("link lookup not routed through MAB: %+v", ic.Stats)
	}
	// Same call/return again: the return now hits.
	ic.OnFetch(trace.FetchEvent{Addr: 0x20000, Prev: 0x10008, Kind: trace.KindBranch, Base: 0x1000c, Disp: 0x20000 - 0x1000c})
	ic.OnFetch(ret)
	if ic.Stats.MABHits != 1 {
		t.Fatalf("repeat link did not hit: %+v", ic.Stats)
	}
}

func TestIIndirectBypasses(t *testing.T) {
	ic := NewIController(geo, DefaultI)
	ic.OnFetch(trace.FetchEvent{Addr: 0x10000, Prev: 0, Kind: trace.KindSeq, Base: 0, Disp: 8, First: true})
	ic.OnFetch(trace.FetchEvent{Addr: 0x30000, Prev: 0x10000, Kind: trace.KindIndirect, Base: 0x30000, Disp: 0})
	if ic.Stats.MABLookups != 0 {
		t.Fatalf("indirect jump consulted the MAB")
	}
	if ic.Stats.MABBypasses != 2 {
		t.Fatalf("bypasses = %d", ic.Stats.MABBypasses)
	}
}

func TestILoopTagEliminationRate(t *testing.T) {
	// A loop over 4 lines repeated many times: after warm-up, every fetch
	// is either case-1 or a MAB hit — tag accesses go to ~zero, way
	// accesses to ~1 per fetch.
	ic := NewIController(geo, DefaultI)
	const iters = 200
	prev := uint32(0x10000 - 8)
	first := true
	for it := 0; it < iters; it++ {
		for p := 0; p < 16; p++ { // 16 packets = 4 lines
			addr := uint32(0x10000 + 8*p)
			kind, base, disp := trace.KindSeq, prev, int32(8)
			if p == 0 && !first {
				kind, base, disp = trace.KindBranch, prev+4, int32(0x10000)-int32(prev+4)
			}
			ic.OnFetch(trace.FetchEvent{Addr: addr, Prev: prev, Kind: kind, Base: base, Disp: disp, First: first})
			first = false
			prev = addr
		}
	}
	s := ic.Stats
	tagsPer := s.TagsPerAccess()
	waysPer := s.WaysPerAccess()
	if tagsPer > 0.05 {
		t.Fatalf("steady-state loop: tags/access = %.3f", tagsPer)
	}
	if waysPer < 1.0 || waysPer > 1.1 {
		t.Fatalf("ways/access = %.3f", waysPer)
	}
	if got := s.Flow[trace.IntraSeq]; got == 0 {
		t.Fatal("no intra-seq flow recorded")
	}
}
