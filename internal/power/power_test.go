package power

import (
	"math"
	"testing"

	"waymemo/internal/cache"
	"waymemo/internal/cacti"
	"waymemo/internal/stats"
	"waymemo/internal/synth"
)

func baseModel() Model {
	return Model{Array: cacti.ArrayEnergies(cacti.Tech130, cache.FRV32K)}
}

func TestZeroCycles(t *testing.T) {
	b := Compute(&stats.Counters{}, 0, baseModel())
	if b.TotalMW() != 0 {
		t.Fatal("power from zero cycles")
	}
}

func TestEquationOne(t *testing.T) {
	// Hand-evaluate Eq.(1) for a simple counter set.
	m := baseModel()
	s := &stats.Counters{WayReads: 1000, TagReads: 2000}
	cycles := uint64(1000)
	b := Compute(s, cycles, m)
	seconds := float64(cycles) / ClockHz
	wantData := 1000 * m.Array.EWayPJ * 1e-9 / seconds
	wantTag := 2000 * m.Array.ETagPJ * 1e-9 / seconds
	if math.Abs(b.DataMW-wantData) > 1e-9 || math.Abs(b.TagMW-wantTag) > 1e-9 {
		t.Fatalf("got %+v want data=%f tag=%f", b, wantData, wantTag)
	}
	if b.MABMW != 0 {
		t.Fatal("MAB power without a MAB")
	}
}

func TestMABDutyCycle(t *testing.T) {
	m := baseModel()
	m.MAB = synth.Characterize(2, 8)
	// Fully idle: sleep power only.
	idle := Compute(&stats.Counters{}, 1000, m)
	if math.Abs(idle.MABMW-m.MAB.SleepMW) > 1e-9 {
		t.Fatalf("idle MAB = %f, want sleep %f", idle.MABMW, m.MAB.SleepMW)
	}
	// Active every cycle: active power.
	busy := Compute(&stats.Counters{MABLookups: 1000}, 1000, m)
	if math.Abs(busy.MABMW-m.MAB.ActiveMW) > 1e-9 {
		t.Fatalf("busy MAB = %f, want active %f", busy.MABMW, m.MAB.ActiveMW)
	}
	// Half duty: midpoint.
	half := Compute(&stats.Counters{MABLookups: 500}, 1000, m)
	mid := (m.MAB.ActiveMW + m.MAB.SleepMW) / 2
	if math.Abs(half.MABMW-mid) > 1e-9 {
		t.Fatalf("half MAB = %f, want %f", half.MABMW, mid)
	}
}

func TestRefillsAndWriteBacksCharged(t *testing.T) {
	m := baseModel()
	a := Compute(&stats.Counters{WayReads: 100}, 100, m)
	b := Compute(&stats.Counters{WayReads: 100, Refills: 10, WriteBacks: 5}, 100, m)
	if b.DataMW <= a.DataMW {
		t.Fatal("refill traffic free")
	}
}

func TestBufferPower(t *testing.T) {
	m := baseModel()
	m.Buffer = cacti.LineBuffer(cacti.Tech130, 2, 32, 18)
	b := Compute(&stats.Counters{SetBufReads: 1000, SetBufWrites: 100}, 1000, m)
	if b.BufMW <= m.Buffer.LeakMW {
		t.Fatal("buffer activity not charged")
	}
}

// TestPaperScaleSanity replays the paper's headline scenario with synthetic
// counters: an original D-cache versus a way-memoized one at a typical
// access mix. The memoized version must land meaningfully lower, with tag
// power nearly gone — the Figure 5 shape.
func TestPaperScaleSanity(t *testing.T) {
	m := baseModel()
	cycles := uint64(10_000_000)
	accesses := uint64(3_000_000) // ~0.3 D-accesses/cycle
	loads := accesses * 7 / 10
	stores := accesses - loads

	orig := &stats.Counters{
		Accesses:  accesses,
		TagReads:  2 * accesses,
		WayReads:  2 * loads,
		WayWrites: stores,
		Refills:   accesses / 200,
	}
	origP := Compute(orig, cycles, m)

	mm := m
	mm.MAB = synth.Characterize(2, 8)
	// 90% MAB hit rate (the paper's D-cache figure).
	hit := accesses * 9 / 10
	miss := accesses - hit
	memo := &stats.Counters{
		Accesses:   accesses,
		TagReads:   2 * miss,
		WayReads:   hit*7/10 + 2*(loads-hit*7/10),
		WayWrites:  stores,
		Refills:    accesses / 200,
		MABLookups: accesses,
	}
	memoP := Compute(memo, cycles, mm)

	if origP.TotalMW() < 10 || origP.TotalMW() > 60 {
		t.Errorf("original D-cache power %.1f mW outside the paper's scale", origP.TotalMW())
	}
	saving := 1 - memoP.TotalMW()/origP.TotalMW()
	if saving < 0.2 || saving > 0.6 {
		t.Errorf("saving %.2f outside the plausible band around the paper's 35%%", saving)
	}
	if memoP.TagMW > origP.TagMW/5 {
		t.Errorf("tag power not collapsed: %.2f vs %.2f", memoP.TagMW, origP.TagMW)
	}
}
