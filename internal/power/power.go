// Package power evaluates the paper's Equation (1):
//
//	P_dcache = E_way·N_way + E_tag·N_tag + P_MAB
//
// generalized with refill/write-back traffic, buffer structures (for the
// baselines that use them) and array leakage, which the paper states is
// included in its results. Per-event energies come from internal/cacti, MAB
// active/sleep power from internal/synth (Table 3).
package power

import (
	"waymemo/internal/cacti"
	"waymemo/internal/stats"
	"waymemo/internal/synth"
)

// ClockHz is the FR-V operating frequency used in the paper's evaluation.
const ClockHz = 360e6

// Model bundles the energy parameters for one cache under one technique.
type Model struct {
	// Clock is the core frequency in Hz; zero selects ClockHz.
	Clock float64
	// Array is the cache array energy set.
	Array cacti.Energies
	// MAB is the circuit characterization of the attached MAB; leave zero
	// for techniques without one.
	MAB synth.Result
	// Buffer is the energy set for set/line/filter buffers; leave zero for
	// techniques without one.
	Buffer cacti.BufferEnergies
}

// Breakdown is the power decomposition of Figures 5 and 7 (data memory, tag
// memory, MAB), extended with buffer and leakage terms.
type Breakdown struct {
	DataMW float64 // data-way activity incl. refills and write-backs
	TagMW  float64 // tag-array activity
	MABMW  float64 // duty-cycled MAB power
	BufMW  float64 // set/line/filter buffer activity
	LeakMW float64 // standing array leakage
}

// TotalMW sums all components.
func (b Breakdown) TotalMW() float64 {
	return b.DataMW + b.TagMW + b.MABMW + b.BufMW + b.LeakMW
}

// Compute evaluates the power of one cache over an execution of the given
// cycle count.
func Compute(s *stats.Counters, cycles uint64, m Model) Breakdown {
	if cycles == 0 {
		return Breakdown{}
	}
	clock := m.Clock
	if clock == 0 {
		clock = ClockHz
	}
	seconds := float64(cycles) / clock

	dataPJ := float64(s.WayReads+s.WayWrites)*m.Array.EWayPJ +
		float64(s.Refills+s.WriteBacks)*m.Array.EFillPJ
	tagPJ := float64(s.TagReads) * m.Array.ETagPJ
	bufPJ := float64(s.SetBufReads+s.BufReads)*m.Buffer.EReadPJ +
		float64(s.SetBufWrites+s.BufWrites)*m.Buffer.EWritePJ

	// The MAB is active on the cycles it is probed (lookup and the update
	// that follows a miss share the access's cycle slot) and clock-gated
	// asleep otherwise.
	duty := float64(s.MABLookups) / float64(cycles)
	if duty > 1 {
		duty = 1
	}
	mabMW := duty*m.MAB.ActiveMW + (1-duty)*m.MAB.SleepMW

	toMW := 1e-9 / seconds // pJ over seconds → mW
	return Breakdown{
		DataMW: dataPJ * toMW,
		TagMW:  tagPJ * toMW,
		MABMW:  mabMW,
		BufMW:  bufPJ*toMW + m.Buffer.LeakMW,
		LeakMW: m.Array.LeakMW,
	}
}
