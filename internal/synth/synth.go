// Package synth holds the repository's two synthesis roles: the MAB
// circuit model (this file) and the parameterized synthetic workload
// generator (spec.go, gen.go).
//
// The circuit model regenerates Tables 1, 2 and 3 of the paper — area,
// critical-path delay and power of an (Nt, Ns) MAB.
//
// The workload generator compiles a Spec — an access-pattern family
// (hot-loop, branchy, pointer-chase, streaming, blocked-matrix,
// phase-switch) with footprint/stride/bias/phase/seed knobs — into a
// deterministic FRVL assembly program with a Go-computed checksum, giving
// the evaluation a scenario axis the seven paper benchmarks cannot span;
// workloads.FromSpec lifts a Spec into a suite-ready Workload.
//
// The paper obtained these numbers by synthesizing Verilog with Synopsys
// DesignCompiler in a 0.13µm / 1.3V process and simulating power with
// NanoSim. We replace that flow with a parametric component model:
//
//	area   = control + tag rows (20-bit registers + comparators)
//	         + set entries (9-bit registers + comparators)
//	         + Nt×Ns valid/way matrix + match-line wiring (grows with Ns²)
//	delay  = 14-bit adder + 9-bit comparator + match-line fan-in
//	power  = clock + adder + per-entry comparator switching
//	         + match-line wiring; sleep power is register/clock-gate leakage
//
// The component coefficients are least-squares calibrated against the
// paper's published grid (Nt ∈ {1,2} × Ns ∈ {4,8,16,32}); residuals are
// within ≈2.5% for active power, ≈6% for sleep power, ≈2% for delay and
// ≈22% for area (the paper's own area numbers are visibly noisy — the
// 16→32 set-entry step quadruples area while doubling state).
package synth

// Result is the circuit characterization of one MAB configuration.
type Result struct {
	TagEntries int
	SetEntries int
	// AreaMM2 is layout area in mm² (Table 1).
	AreaMM2 float64
	// DelayNS is the critical path in nanoseconds: the 14-bit adder plus
	// the 9-bit set-index comparator (Table 2, Figure 3).
	DelayNS float64
	// ActiveMW / SleepMW are power in milliwatts when the MAB is accessed
	// respectively clock-gated idle (Table 3).
	ActiveMW float64
	SleepMW  float64
}

// Calibrated component coefficients (0.13µm, 1.3V, 360MHz). See the package
// comment for the fitting procedure.
const (
	// Area (mm²).
	areaControl  = 0.010594  // adder, LRU logic, control
	areaTagRow   = 0.007826  // one 20-bit key register + comparator
	areaSetEntry = -0.002230 // folded into wiring: net per-entry column cost
	areaPair     = 0.000028  // one valid bit + way bit in the matrix
	areaWire     = 0.000348  // match-line/mux wiring, grows with Ns²

	// Critical-path delay (ns).
	delayBase    = 0.960109 // 14-bit adder + 9-bit comparator
	delayTagLoad = 0.015    // extra match-line load per tag row
	delaySetLoad = 0.005326 // extra fan-in per set entry

	// Active power (mW at 360MHz).
	pActBase   = 1.163007 // clock tree + 14-bit adder
	pActTagRow = 0.315217 // key register + 20-bit comparator switching
	pActSet    = 0.055516 // 9-bit set comparator switching
	pActPair   = 0.044652 // matrix cell clock/readout
	pActWire   = 0.001498 // match-line wiring, grows with Ns²

	// Sleep (clock-gated) power: leakage, linear in state bits.
	pSlpBase   = 0.012174
	pSlpTagRow = 0.073478
	pSlpSet    = 0.014522
	pSlpPair   = 0.025935
)

// Characterize returns the circuit model for an (Nt, Ns) MAB.
func Characterize(tagEntries, setEntries int) Result {
	nt, ns := float64(tagEntries), float64(setEntries)
	return Result{
		TagEntries: tagEntries,
		SetEntries: setEntries,
		AreaMM2:    areaControl + areaTagRow*nt + areaSetEntry*ns + areaPair*nt*ns + areaWire*ns*ns,
		DelayNS:    delayBase + delayTagLoad*nt + delaySetLoad*ns,
		ActiveMW:   pActBase + pActTagRow*nt + pActSet*ns + pActPair*nt*ns + pActWire*ns*ns,
		SleepMW:    pSlpBase + pSlpTagRow*nt + pSlpSet*ns + pSlpPair*nt*ns,
	}
}

// Grid characterizes the paper's full table grid: Nt ∈ {1,2} rows and
// Ns ∈ {4,8,16,32} columns.
func Grid() [][]Result {
	out := make([][]Result, 0, 2)
	for _, nt := range []int{1, 2} {
		row := make([]Result, 0, 4)
		for _, ns := range []int{4, 8, 16, 32} {
			row = append(row, Characterize(nt, ns))
		}
		out = append(out, row)
	}
	return out
}

// StateBits returns the number of storage bits in the MAB (keys with cflag,
// set indices, valid+way matrix), matching §3.3's inventory.
func StateBits(tagEntries, setEntries int) int {
	return tagEntries*20 + setEntries*9 + tagEntries*setEntries*2
}

// CycleTimeNS is the FR-V cycle time the paper compares delays against
// (400MHz max clock → 2.5ns).
const CycleTimeNS = 2.5

// FitsCycle reports whether the configuration's MAB probe fits the
// processor cycle alongside the 32-bit address adder (it always does on the
// paper's grid — that is the point of Table 2).
func FitsCycle(r Result) bool { return r.DelayNS < CycleTimeNS }
