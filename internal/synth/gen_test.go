package synth

import (
	"strings"
	"testing"
)

func TestGenerateDeterministic(t *testing.T) {
	for _, p := range Patterns() {
		a, err := Spec{Pattern: p, Seed: 5}.Generate()
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		b, err := Spec{Pattern: p, Seed: 5}.Generate()
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		if strings.Join(a.Sources, "\x00") != strings.Join(b.Sources, "\x00") {
			t.Errorf("%s: two generations differ", p)
		}
		if a.WantSum != b.WantSum {
			t.Errorf("%s: checksums differ: %#x vs %#x", p, a.WantSum, b.WantSum)
		}
		if !strings.Contains(a.Sources[0], "; synth v1 ") {
			t.Errorf("%s: missing generator version header", p)
		}
		if !strings.Contains(a.Sources[1], SumSymbol+":") {
			t.Errorf("%s: data section lacks the %s word", p, SumSymbol)
		}
	}
}

func TestGenerateSeedChangesProgramOrSum(t *testing.T) {
	for _, p := range Patterns() {
		a, _ := Spec{Pattern: p, Seed: 1}.Generate()
		b, _ := Spec{Pattern: p, Seed: 2}.Generate()
		if a.WantSum == b.WantSum {
			t.Errorf("%s: seeds 1 and 2 share checksum %#x", p, a.WantSum)
		}
	}
}

// TestReferenceGolden pins the generator's semantics at every pattern's
// default spec: if a checksum changes, the generator's meaning changed —
// bump GenVersion so persisted traces and cached results are invalidated
// rather than silently reinterpreted, and update the constants here.
func TestReferenceGolden(t *testing.T) {
	golden := map[Pattern]uint32{
		HotLoop:       0xf5bb79b1,
		Branchy:       0x1f126fb1,
		PointerChase:  0x1e1779b1,
		Streaming:     0x479bf9b1,
		BlockedMatrix: 0xa79bf9b1,
		PhaseSwitch:   0xf6cdb9b1,
	}
	for _, p := range Patterns() {
		sp, err := Spec{Pattern: p}.Normalized()
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		if got := sp.Reference(); got != golden[p] {
			t.Errorf("%s: reference checksum %#08x, want %#08x — generator semantics changed; bump GenVersion", p, got, golden[p])
		}
	}
}

func TestChasePermutationIsSingleCycle(t *testing.T) {
	sp, err := Spec{Pattern: PointerChase, Footprint: 8 << 10, Stride: 64}.Normalized()
	if err != nil {
		t.Fatal(err)
	}
	next := sp.chasePermutation()
	n := sp.Footprint / sp.Stride
	if len(next) != n {
		t.Fatalf("permutation over %d nodes, want %d", len(next), n)
	}
	seen := make([]bool, n)
	cur := 0
	for i := 0; i < n; i++ {
		if seen[cur] {
			t.Fatalf("chase revisits node %d after %d steps; not a single cycle", cur, i)
		}
		seen[cur] = true
		cur = next[cur]
	}
	if cur != 0 {
		t.Fatalf("chase does not close: ended at node %d", cur)
	}
}
