package synth

import (
	"fmt"
	"strings"
)

// This file compiles a Spec into FRVL assembly plus the expected checksum.
// Every generated program follows one contract:
//
//   - the data region starts at the shared DATA symbol with a synthData
//     array of Footprint bytes, followed by a synthSum result word;
//   - non-pchase patterns first fill synthData with an LCG stream seeded
//     from the spec (so values are deterministic without embedding
//     Footprint bytes of .word directives); pchase instead embeds its
//     permutation table, since a random cycle cannot be rebuilt in-loop;
//   - the main loop runs Accesses iterations, folding every loaded value
//     into a running uint32 checksum, and stores the checksum to synthSum
//     before returning;
//   - Reference simulates the identical arithmetic in Go, so a workload
//     check comparing synthSum against Program.WantSum proves the
//     generated assembly, the assembler and the simulator agree — the
//     same validation contract the seven paper benchmarks follow.
//
// Generation is deterministic: the same normalized Spec always produces
// byte-identical sources (pinned by the golden test in cmd/wmsynth).

// SumSymbol is the label of the checksum result word in every generated
// program.
const SumSymbol = "synthSum"

// dataSymbol is the label of the data array.
const dataSymbol = "synthData"

// LCG constants of the data-fill stream (Numerical Recipes).
const (
	lcgMul = 1664525
	lcgAdd = 1013904223
)

// Program is one generated synthetic workload: its assembly sources and the
// checksum the simulator must produce.
type Program struct {
	// Spec is the normalized spec the program was generated from.
	Spec Spec
	// Sources hold the code and data sections, ready for Workload.Sources.
	Sources []string
	// WantSum is the value synthSum must hold after a run.
	WantSum uint32
}

// seedMix spreads the user seed into the LCG/permutation starting state;
// the |1 keeps it odd and therefore nonzero for the xorshift permutation
// generator.
func (s Spec) seedMix() uint32 { return s.Seed*2654435761 | 1 }

// genDialect captures the tiny surface where generated FRVL and RV32
// assembly differ: the shift-left-immediate mnemonic (padded so operand
// columns align identically) and the scratch register holding loop bounds
// (FRVL's t9 does not exist on RV32; t6 plays its role). Everything else —
// labels, data sections, checksum arithmetic — is shared verbatim, which is
// what makes Reference() a single ground truth for both frontends.
type genDialect struct {
	name string // "" for FRVL; stamped into the header comment otherwise
	slli string // shift-left-immediate mnemonic, column-padded
	t9   string // scratch bound register
}

var (
	frvlDial = genDialect{slli: "sll ", t9: "t9"}
	rv32Dial = genDialect{name: "rv32", slli: "slli", t9: "t6"}
)

// Generate compiles the spec (normalizing it first) into a Program of FRVL
// assembly. Output is byte-stable (pinned by the wmsynth golden test).
func (s Spec) Generate() (Program, error) {
	return s.generate(frvlDial)
}

// GenerateRV32 compiles the spec into RV32 assembly: the identical access
// pattern and checksum contract, validated against the same Reference().
func (s Spec) GenerateRV32() (Program, error) {
	return s.generate(rv32Dial)
}

func (s Spec) generate(d genDialect) (Program, error) {
	n, err := s.Normalized()
	if err != nil {
		return Program{}, err
	}
	var code, data string
	switch n.Pattern {
	case PointerChase:
		code = n.genPointerChase()
		data = n.pchaseData()
	default:
		code = n.genLoop(d)
		data = fmt.Sprintf("\t.org DATA\n%s:\n\t.space %d\n%s:\n\t.space 4\n",
			dataSymbol, n.Footprint, SumSymbol)
	}
	header := fmt.Sprintf("; synth v%d %s\n", GenVersion, n.String())
	if d.name != "" {
		header = fmt.Sprintf("; synth v%d %s %s\n", GenVersion, d.name, n.String())
	}
	return Program{
		Spec:    n,
		Sources: []string{header + code, data},
		WantSum: n.Reference(),
	}, nil
}

// prologueAsm is the shared opening of every generated main: base pointer,
// checksum seed and — for LCG-filled patterns — the data-fill loop.
func (s Spec) prologueAsm(fill bool) string {
	var b strings.Builder
	fmt.Fprintf(&b, "main:\tla   s0, %s\n", dataSymbol)
	fmt.Fprintf(&b, "\tli   s5, %d\n", int32(s.seedMix()))
	if fill {
		fmt.Fprintf(&b, "\tli   t1, %d\n", int32(s.seedMix()))
		b.WriteString("\tli   t0, 0\n")
		fmt.Fprintf(&b, "synini:\tli   t2, %d\n", lcgMul)
		b.WriteString("\tmul  t1, t1, t2\n")
		fmt.Fprintf(&b, "\tli   t2, %d\n", lcgAdd)
		b.WriteString("\tadd  t1, t1, t2\n")
		b.WriteString("\tadd  t3, s0, t0\n")
		b.WriteString("\tsw   t1, 0(t3)\n")
		b.WriteString("\taddi t0, t0, 4\n")
		fmt.Fprintf(&b, "\tli   t4, %d\n", s.Footprint)
		b.WriteString("\tblt  t0, t4, synini\n")
	}
	return b.String()
}

// epilogueAsm stores the checksum and returns to the runtime stub.
func epilogueAsm() string {
	return "\tla   t0, " + SumSymbol + "\n\tsw   s5, 0(t0)\n\tret\n"
}

// genLoop emits the main loop of every LCG-filled pattern.
func (s Spec) genLoop(d genDialect) string {
	var b strings.Builder
	b.WriteString(s.prologueAsm(true))
	switch s.Pattern {
	case HotLoop, Streaming:
		b.WriteString("\tli   s1, 0\n")
		fmt.Fprintf(&b, "\tli   s6, %d\n", s.Accesses)
		fmt.Fprintf(&b, "\tli   s7, %d\n", s.Footprint)
		b.WriteString("synlp:\tadd  t0, s0, s1\n")
		b.WriteString("\tlw   t1, 0(t0)\n")
		b.WriteString("\tadd  s5, s5, t1\n")
		if s.Pattern == HotLoop {
			b.WriteString("\taddi t1, t1, 1\n")
			b.WriteString("\tsw   t1, 0(t0)\n")
		}
		fmt.Fprintf(&b, "\taddi s1, s1, %d\n", s.Stride)
		b.WriteString("\tblt  s1, s7, synck\n")
		b.WriteString("\tli   s1, 0\n")
		b.WriteString("synck:\taddi s6, s6, -1\n")
		b.WriteString("\tbnez s6, synlp\n")
	case Branchy:
		b.WriteString("\tli   s1, 0\n")
		fmt.Fprintf(&b, "\tli   s6, %d\n", s.Accesses)
		fmt.Fprintf(&b, "\tli   s7, %d\n", s.Footprint)
		b.WriteString("synlp:\tadd  t0, s0, s1\n")
		b.WriteString("\tlw   t1, 0(t0)\n")
		b.WriteString("\tandi t2, t1, 255\n")
		fmt.Fprintf(&b, "\tli   t3, %d\n", s.biasThreshold())
		b.WriteString("\tbltu t2, t3, syntk\n")
		b.WriteString("\tsub  s5, s5, t1\n")
		b.WriteString("\tj    synnx\n")
		b.WriteString("syntk:\tadd  s5, s5, t1\n")
		b.WriteString("\txori s5, s5, 85\n")
		b.WriteString("synnx:\taddi s1, s1, 4\n")
		b.WriteString("\tblt  s1, s7, synck\n")
		b.WriteString("\tli   s1, 0\n")
		b.WriteString("synck:\taddi s6, s6, -1\n")
		b.WriteString("\tbnez s6, synlp\n")
	case BlockedMatrix:
		side := s.matrixSide()
		fmt.Fprintf(&b, "\tli   s6, %d\n", s.Accesses)
		fmt.Fprintf(&b, "\tli   s7, %d\n", side)
		b.WriteString("synps:\tli   s1, 0\n")
		b.WriteString("synbi:\tli   s2, 0\n")
		b.WriteString("synbj:\tli   s3, 0\n")
		b.WriteString("syni:\tli   s4, 0\n")
		b.WriteString("synj:\tadd  t0, s1, s3\n")
		b.WriteString("\tmul  t0, t0, s7\n")
		b.WriteString("\tadd  t0, t0, s2\n")
		b.WriteString("\tadd  t0, t0, s4\n")
		fmt.Fprintf(&b, "\t%s t0, t0, 2\n", d.slli)
		b.WriteString("\tadd  t0, s0, t0\n")
		b.WriteString("\tlw   t1, 0(t0)\n")
		b.WriteString("\tadd  s5, s5, t1\n")
		b.WriteString("\taddi s6, s6, -1\n")
		b.WriteString("\tbeqz s6, syndn\n")
		b.WriteString("\taddi s4, s4, 1\n")
		fmt.Fprintf(&b, "\tli   %s, 8\n", d.t9)
		fmt.Fprintf(&b, "\tblt  s4, %s, synj\n", d.t9)
		b.WriteString("\taddi s3, s3, 1\n")
		fmt.Fprintf(&b, "\tblt  s3, %s, syni\n", d.t9)
		b.WriteString("\taddi s2, s2, 8\n")
		b.WriteString("\tblt  s2, s7, synbj\n")
		b.WriteString("\taddi s1, s1, 8\n")
		b.WriteString("\tblt  s1, s7, synbi\n")
		b.WriteString("\tj    synps\n")
		b.WriteString("syndn:\n")
	case PhaseSwitch:
		hot := s.hotWindow()
		fmt.Fprintf(&b, "\tli   s6, %d\n", s.Accesses)
		b.WriteString("\tli   s1, 0\n")
		fmt.Fprintf(&b, "synot:\tli   s3, %d\n", s.PhaseLen)
		b.WriteString("\tli   s4, 0\n")
		b.WriteString("synht:\tadd  t0, s0, s4\n")
		b.WriteString("\tlw   t1, 0(t0)\n")
		b.WriteString("\tadd  s5, s5, t1\n")
		b.WriteString("\taddi s4, s4, 4\n")
		fmt.Fprintf(&b, "\tli   %s, %d\n", d.t9, hot)
		fmt.Fprintf(&b, "\tblt  s4, %s, synh2\n", d.t9)
		b.WriteString("\tli   s4, 0\n")
		b.WriteString("synh2:\taddi s6, s6, -1\n")
		b.WriteString("\tbeqz s6, syndn\n")
		b.WriteString("\taddi s3, s3, -1\n")
		b.WriteString("\tbnez s3, synht\n")
		fmt.Fprintf(&b, "\tli   s3, %d\n", s.PhaseLen)
		b.WriteString("synst:\tadd  t0, s0, s1\n")
		b.WriteString("\tlw   t1, 0(t0)\n")
		b.WriteString("\tadd  s5, s5, t1\n")
		fmt.Fprintf(&b, "\taddi s1, s1, %d\n", s.Stride)
		fmt.Fprintf(&b, "\tli   %s, %d\n", d.t9, s.Footprint)
		fmt.Fprintf(&b, "\tblt  s1, %s, syns2\n", d.t9)
		b.WriteString("\tli   s1, 0\n")
		b.WriteString("syns2:\taddi s6, s6, -1\n")
		b.WriteString("\tbeqz s6, syndn\n")
		b.WriteString("\taddi s3, s3, -1\n")
		b.WriteString("\tbnez s3, synst\n")
		b.WriteString("\tj    synot\n")
		b.WriteString("syndn:\n")
	default:
		panic(fmt.Sprintf("synth: genLoop on pattern %q", s.Pattern))
	}
	b.WriteString(epilogueAsm())
	return b.String()
}

// genPointerChase emits the chase loop; the permutation lives in the data
// section.
func (s Spec) genPointerChase() string {
	var b strings.Builder
	b.WriteString(s.prologueAsm(false))
	b.WriteString("\tli   s1, 0\n")
	fmt.Fprintf(&b, "\tli   s6, %d\n", s.Accesses)
	b.WriteString("synlp:\tadd  t0, s0, s1\n")
	b.WriteString("\tlw   s1, 0(t0)\n")
	b.WriteString("\tadd  s5, s5, s1\n")
	b.WriteString("\taddi s6, s6, -1\n")
	b.WriteString("\tbnez s6, synlp\n")
	b.WriteString(epilogueAsm())
	return b.String()
}

// biasThreshold converts the taken percentage to the byte threshold the
// generated code compares against (-1 is the explicit never-taken
// sentinel).
func (s Spec) biasThreshold() int { return max(s.BranchBias, 0) * 256 / 100 }

// matrixSide is blocked's square side in words (Normalized pins the
// footprint to exactly squareSide²·4).
func (s Spec) matrixSide() int { return squareSide(s.Footprint) }

// hotWindow is phase's hot-phase window in bytes.
func (s Spec) hotWindow() int { return min(2048, s.Footprint) }

// chasePermutation builds the node-successor table of a pchase spec: a
// single seeded random cycle over Footprint/Stride nodes, so the chase
// visits every node before repeating.
func (s Spec) chasePermutation() []int {
	n := s.Footprint / s.Stride
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	r := xorshift(s.seedMix())
	// Fisher-Yates over order[1:], keeping the chase start at node 0.
	for i := n - 1; i >= 2; i-- {
		j := 1 + int(r.next()%uint32(i))
		order[i], order[j] = order[j], order[i]
	}
	next := make([]int, n)
	for i, node := range order {
		next[node] = order[(i+1)%n]
	}
	return next
}

// pchaseData renders the data section of a pchase spec: a dense word array
// of Footprint bytes whose node slots hold the byte offset of the successor
// node, followed by the checksum word.
func (s Spec) pchaseData() string {
	next := s.chasePermutation()
	words := make([]int32, s.Footprint/4)
	for node, succ := range next {
		words[node*s.Stride/4] = int32(succ * s.Stride)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "\t.org DATA\n%s:\n", dataSymbol)
	for i := 0; i < len(words); i += 8 {
		end := min(i+8, len(words))
		b.WriteString("\t.word ")
		for j := i; j < end; j++ {
			if j > i {
				b.WriteString(", ")
			}
			fmt.Fprintf(&b, "%d", words[j])
		}
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "%s:\n\t.space 4\n", SumSymbol)
	return b.String()
}

// Reference computes, in Go, the checksum the generated program must store
// to synthSum — the same uint32 arithmetic, access order and memory
// mutation as the assembly. It is the ground truth Workload.Check compares
// the simulator against.
func (s Spec) Reference() uint32 {
	sum := s.seedMix()
	if s.Pattern == PointerChase {
		next := s.chasePermutation()
		cur := 0
		for i := 0; i < s.Accesses; i++ {
			cur = next[cur/s.Stride] * s.Stride
			sum += uint32(cur)
		}
		return sum
	}
	mem := make([]uint32, s.Footprint/4)
	v := s.seedMix()
	for i := range mem {
		v = v*lcgMul + lcgAdd
		mem[i] = v
	}
	switch s.Pattern {
	case HotLoop, Streaming:
		off := 0
		for i := 0; i < s.Accesses; i++ {
			w := mem[off/4]
			sum += w
			if s.Pattern == HotLoop {
				mem[off/4] = w + 1
			}
			off += s.Stride
			if off >= s.Footprint {
				off = 0
			}
		}
	case Branchy:
		thr := uint32(s.biasThreshold())
		off := 0
		for i := 0; i < s.Accesses; i++ {
			w := mem[off/4]
			if w&255 < thr {
				sum += w
				sum ^= 85
			} else {
				sum -= w
			}
			off += 4
			if off >= s.Footprint {
				off = 0
			}
		}
	case BlockedMatrix:
		side := s.matrixSide()
		rem := s.Accesses
	blocked:
		for {
			for bi := 0; bi < side; bi += 8 {
				for bj := 0; bj < side; bj += 8 {
					for i := 0; i < 8; i++ {
						for j := 0; j < 8; j++ {
							sum += mem[(bi+i)*side+bj+j]
							rem--
							if rem == 0 {
								break blocked
							}
						}
					}
				}
			}
		}
	case PhaseSwitch:
		hot := s.hotWindow()
		rem := s.Accesses
		stream := 0
	phases:
		for {
			for c, off := s.PhaseLen, 0; c > 0; c-- {
				sum += mem[off/4]
				off += 4
				if off >= hot {
					off = 0
				}
				rem--
				if rem == 0 {
					break phases
				}
			}
			for c := s.PhaseLen; c > 0; c-- {
				sum += mem[stream/4]
				stream += s.Stride
				if stream >= s.Footprint {
					stream = 0
				}
				rem--
				if rem == 0 {
					break phases
				}
			}
		}
	default:
		panic(fmt.Sprintf("synth: reference on pattern %q", s.Pattern))
	}
	return sum
}

// xorshift is the deterministic PRNG behind the pchase permutation; state
// must be nonzero.
type xorshift uint32

func (x *xorshift) next() uint32 {
	v := uint32(*x)
	v ^= v << 13
	v ^= v >> 17
	v ^= v << 5
	*x = xorshift(v)
	return v
}
