package synth

import (
	"math"
	"testing"
)

// paper values: rows Nt=1,2 × cols Ns=4,8,16,32.
var (
	paperArea   = [2][4]float64{{0.016, 0.027, 0.065, 0.307}, {0.019, 0.033, 0.085, 0.311}}
	paperDelay  = [2][4]float64{{1.00, 1.00, 1.08, 1.14}, {1.02, 1.02, 1.08, 1.16}}
	paperActive = [2][4]float64{{1.95, 2.37, 3.39, 6.25}, {2.34, 3.07, 4.56, 7.93}}
	paperSleep  = [2][4]float64{{0.24, 0.40, 0.76, 1.37}, {0.40, 0.68, 1.28, 2.26}}
	nsCols      = [4]int{4, 8, 16, 32}
)

func relErr(got, want float64) float64 { return math.Abs(got-want) / want }

func TestTable1Area(t *testing.T) {
	for nt := 1; nt <= 2; nt++ {
		for j, ns := range nsCols {
			got := Characterize(nt, ns).AreaMM2
			want := paperArea[nt-1][j]
			if relErr(got, want) > 0.25 {
				t.Errorf("area %dx%d: got %.4f want %.4f", nt, ns, got, want)
			}
		}
	}
}

func TestTable2Delay(t *testing.T) {
	for nt := 1; nt <= 2; nt++ {
		for j, ns := range nsCols {
			r := Characterize(nt, ns)
			want := paperDelay[nt-1][j]
			if relErr(r.DelayNS, want) > 0.03 {
				t.Errorf("delay %dx%d: got %.3f want %.3f", nt, ns, r.DelayNS, want)
			}
			if !FitsCycle(r) {
				t.Errorf("delay %dx%d: %f does not fit the 2.5ns cycle", nt, ns, r.DelayNS)
			}
		}
	}
}

func TestTable3Power(t *testing.T) {
	for nt := 1; nt <= 2; nt++ {
		for j, ns := range nsCols {
			r := Characterize(nt, ns)
			if relErr(r.ActiveMW, paperActive[nt-1][j]) > 0.035 {
				t.Errorf("active %dx%d: got %.3f want %.3f", nt, ns, r.ActiveMW, paperActive[nt-1][j])
			}
			if relErr(r.SleepMW, paperSleep[nt-1][j]) > 0.08 {
				t.Errorf("sleep %dx%d: got %.3f want %.3f", nt, ns, r.SleepMW, paperSleep[nt-1][j])
			}
			if r.SleepMW >= r.ActiveMW {
				t.Errorf("%dx%d: sleep %.3f >= active %.3f", nt, ns, r.SleepMW, r.ActiveMW)
			}
		}
	}
}

func TestMonotonicity(t *testing.T) {
	// Bigger MABs must cost more in every dimension.
	prev := Characterize(1, 4)
	for _, ns := range []int{8, 16, 32} {
		r := Characterize(1, ns)
		if r.AreaMM2 <= prev.AreaMM2 || r.ActiveMW <= prev.ActiveMW || r.SleepMW <= prev.SleepMW {
			t.Errorf("non-monotone at Ns=%d", ns)
		}
		prev = r
	}
	if a, b := Characterize(1, 8), Characterize(2, 8); b.ActiveMW <= a.ActiveMW {
		t.Error("second tag row is free")
	}
}

func TestGridShape(t *testing.T) {
	g := Grid()
	if len(g) != 2 || len(g[0]) != 4 {
		t.Fatalf("grid %dx%d", len(g), len(g[0]))
	}
	if g[1][1].TagEntries != 2 || g[1][1].SetEntries != 8 {
		t.Fatalf("grid labels: %+v", g[1][1])
	}
}

func TestStateBits(t *testing.T) {
	// 2x8: 2*20 + 8*9 + 2*8*2 = 40+72+32 = 144 bits for 16 memoizable
	// addresses — the compactness claim of §3.3.
	if got := StateBits(2, 8); got != 144 {
		t.Fatalf("state bits = %d", got)
	}
}

// TestPaperConfigChoices checks the selection logic the paper describes:
// 2x8 has ~3% of a 32KB cache's area; 2x16 is markedly cheaper than 2x32.
func TestPaperConfigChoices(t *testing.T) {
	// A 32KB SRAM macro in 0.13µm is on the order of 1.1 mm².
	const cacheMM2 = 1.1
	d := Characterize(2, 8)
	if pct := d.AreaMM2 / cacheMM2 * 100; pct < 2 || pct > 4.5 {
		t.Errorf("2x8 area = %.1f%% of cache, paper says ≈3%%", pct)
	}
	i16, i32 := Characterize(2, 16), Characterize(2, 32)
	if i32.AreaMM2 < 3*i16.AreaMM2 {
		t.Errorf("2x32 (%.3f) should dwarf 2x16 (%.3f), cf. 27.5%% vs 7.5%%",
			i32.AreaMM2, i16.AreaMM2)
	}
}
