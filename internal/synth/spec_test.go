package synth

import (
	"strings"
	"testing"
)

func TestParseSpecCanonicalRoundTrip(t *testing.T) {
	// Canonical names parse back to themselves, and loose spellings
	// normalize to the canonical form.
	cases := []struct {
		in   string
		want string
	}{
		{"synth:pchase,fp=64KiB,seed=7", "synth:pchase,fp=64KiB,stride=64,n=65536,seed=7"},
		{"pchase,fp=65536,seed=7", "synth:pchase,fp=64KiB,stride=64,n=65536,seed=7"},
		{"synth:pchase,seed=7,fp=64k", "synth:pchase,fp=64KiB,stride=64,n=65536,seed=7"},
		{"synth:hotloop", "synth:hotloop,fp=4KiB,stride=4,n=65536,seed=1"},
		{"synth:branchy,bias=30", "synth:branchy,fp=16KiB,bias=30,n=65536,seed=1"},
		{"synth:stream,fp=1MiB", ""}, // over the footprint cap
		{"synth:blocked,fp=100KiB", "synth:blocked,fp=64KiB,n=65536,seed=1"},
		{"synth:phase,phase=128,stride=8", "synth:phase,fp=64KiB,stride=8,phase=128,n=65536,seed=1"},
		// Footprints round down to whole strides; 9984 is not a whole KiB,
		// so it renders in bytes.
		{"synth:pchase,fp=10000,stride=64", "synth:pchase,fp=9984,stride=64,n=65536,seed=1"},
	}
	for _, c := range cases {
		sp, err := ParseSpec(c.in)
		if c.want == "" {
			if err == nil {
				t.Errorf("%q: expected error, got %v", c.in, sp)
			}
			continue
		}
		if err != nil {
			t.Errorf("%q: %v", c.in, err)
			continue
		}
		if got := sp.String(); got != c.want {
			t.Errorf("%q canonicalized to %q, want %q", c.in, got, c.want)
		}
		again, err := ParseSpec(sp.String())
		if err != nil || again != sp {
			t.Errorf("%q: canonical form does not round-trip: %v %v", c.in, again, err)
		}
		// Normalization must be idempotent — Generate re-normalizes its
		// input and relies on Normalized output passing unchanged.
		if renorm, err := sp.Normalized(); err != nil || renorm != sp {
			t.Errorf("%q: Normalized not idempotent: %v %v", c.in, renorm, err)
		}
	}
}

func TestParseSpecRejects(t *testing.T) {
	for _, in := range []string{
		"",
		"synth:",
		"synth:nope",
		"synth:pchase,fp",
		"synth:pchase,fp=",
		"synth:pchase,wat=3",
		"synth:pchase,fp=64KiB,fp=32KiB",
		"synth:pchase,stride=3",
		"synth:pchase,stride=64KiB", // over the stride cap
		"synth:hotloop,bias=50",     // bias is branchy-only
		"synth:stream,phase=64",     // phase is phase-only
		"synth:branchy,bias=150",
		"synth:branchy,bias=-1",          // negative knobs rejected at parse
		"synth:pchase,fp=300,stride=104", // rounds below the footprint floor
		"synth:pchase,n=10",
		"synth:pchase,fp=64",              // below the footprint floor
		"synth:pchase,seed=1..4",          // seed cannot range
		"synth:pchase,fp=4KiB..1KiB",      // inverted range
		"synth:pchase,fp=1k..4k,n=1k..4k", // two ranges
		"synth:pchase,fp=4KiB..64KiB",     // ranges need ExpandSpec
	} {
		if _, err := ParseSpec(in); err == nil {
			t.Errorf("%q: expected error", in)
		}
	}
}

func TestExpandSpecRange(t *testing.T) {
	specs, err := ExpandSpec("synth:pchase,fp=4KiB..64KiB,seed=7")
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 5 {
		t.Fatalf("expanded to %d specs, want 5 (4,8,16,32,64KiB)", len(specs))
	}
	for i, sp := range specs {
		if want := (4 << 10) << i; sp.Footprint != want {
			t.Errorf("spec %d footprint = %d, want %d", i, sp.Footprint, want)
		}
		if sp.Seed != 7 {
			t.Errorf("spec %d seed = %d, want 7", i, sp.Seed)
		}
	}
	// A plain spec expands to itself.
	one, err := ExpandSpec("synth:stream")
	if err != nil || len(one) != 1 {
		t.Fatalf("plain spec: %v %v", one, err)
	}
}

// TestExpandSpecRangeDedupsNormalizedCollisions: blocked rounds footprints
// to power-of-two squares, so a doubling range can collapse adjacent values
// onto one canonical spec; the sweep must emit each spec once (duplicates
// would abort explore's workload axis).
func TestExpandSpecRangeDedupsNormalizedCollisions(t *testing.T) {
	specs, err := ExpandSpec("synth:blocked,fp=256..4KiB")
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for _, sp := range specs {
		name := sp.String()
		if seen[name] {
			t.Fatalf("range emitted %q twice", name)
		}
		seen[name] = true
	}
	// 256,512 -> 256; 1024,2048 -> 1024; 4096 -> 4096.
	if len(specs) != 3 {
		t.Fatalf("expanded to %d specs, want 3 deduped squares", len(specs))
	}
}

// TestBranchBiasExplicitZero: bias=0 (never taken) is a meaningful axis
// point, distinct from the omitted-knob default of 70.
func TestBranchBiasExplicitZero(t *testing.T) {
	sp, err := ParseSpec("synth:branchy,bias=0")
	if err != nil {
		t.Fatal(err)
	}
	if got := sp.String(); got != "synth:branchy,fp=16KiB,bias=0,n=65536,seed=1" {
		t.Fatalf("bias=0 canonicalized to %q", got)
	}
	if thr := sp.biasThreshold(); thr != 0 {
		t.Fatalf("bias=0 threshold = %d, want 0 (never taken)", thr)
	}
	// Idempotence: re-normalizing the canonical form keeps bias at 0.
	again, err := sp.Normalized()
	if err != nil || again != sp {
		t.Fatalf("normalization not idempotent for explicit zero: %v %v", again, err)
	}
	// The Go-side sentinel round-trips through the syntax.
	direct, err := Spec{Pattern: Branchy, BranchBias: -1}.Normalized()
	if err != nil || direct != sp {
		t.Fatalf("BranchBias -1 != parsed bias=0: %v %v", direct, err)
	}
}

func TestIsSpec(t *testing.T) {
	if !IsSpec("synth:pchase") || IsSpec("DCT") || IsSpec("") {
		t.Error("IsSpec misclassifies")
	}
}

func TestSpecDistinctNames(t *testing.T) {
	// Every pattern default and every knob perturbation names a distinct
	// workload — names are cache keys, collisions would alias results.
	seen := map[string]string{}
	add := func(label string, sp Spec) {
		n, err := sp.Normalized()
		if err != nil {
			t.Fatalf("%s: %v", label, err)
		}
		name := n.String()
		if prev, dup := seen[name]; dup {
			t.Errorf("%s and %s share the name %q", label, prev, name)
		}
		seen[name] = label
	}
	for _, p := range Patterns() {
		add(string(p), Spec{Pattern: p})
		add(string(p)+"+seed", Spec{Pattern: p, Seed: 9})
		add(string(p)+"+fp", Spec{Pattern: p, Footprint: 32 << 10})
		add(string(p)+"+n", Spec{Pattern: p, Accesses: 2048})
	}
}

func TestSpecSyntaxMentionsAllPatterns(t *testing.T) {
	s := SpecSyntax()
	for _, p := range Patterns() {
		if !strings.Contains(s, string(p)) {
			t.Errorf("SpecSyntax() omits %s", p)
		}
		if Describe(p) == "" {
			t.Errorf("pattern %s has no description", p)
		}
	}
}
