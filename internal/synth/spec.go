package synth

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// This file defines the parameterized synthetic workload family: a Spec
// names one deterministic access-pattern program (pattern + knobs + seed),
// compiled to FRVL assembly by Generate (gen.go). Specs exist because the
// paper's seven benchmarks pin only seven points of the locality space the
// MAB's hit rate depends on; a spec sweep (e.g. a pointer-chase footprint
// ramp) probes the space between and beyond them.
//
// The mini-syntax is
//
//	synth:<pattern>[,knob=value]...
//
// e.g. "synth:pchase,fp=64KiB,seed=7". Knobs the pattern does not use are
// rejected; omitted knobs take pattern-specific defaults. String renders the
// canonical form — every knob the pattern uses, in fixed order, with
// effective (post-normalization) values — so two spellings of the same
// workload share one name, one build memo entry, one trace spill and one
// explore cache key.

// SpecPrefix marks a workload name as a synthetic spec.
const SpecPrefix = "synth:"

// GenVersion is the synthetic generator's semantic version. It is embedded
// in every generated program (a comment line, hence part of the workload
// fingerprint), so a generator change invalidates persisted trace spills
// and explore cache entries instead of silently answering for different
// programs.
const GenVersion = 1

// Pattern selects the access-pattern shape of a synthetic workload.
type Pattern string

const (
	// HotLoop is a read-modify-write loop over a small window: the high
	// locality regime where way memoization shines.
	HotLoop Pattern = "hotloop"
	// Branchy is a sequential walk whose loop body forks on the data, with
	// a bias knob for the taken fraction — irregular control flow for the
	// I-cache MAB.
	Branchy Pattern = "branchy"
	// PointerChase follows a seeded random cyclic permutation through the
	// footprint: minimal spatial locality, the MAB's worst case.
	PointerChase Pattern = "pchase"
	// Streaming walks the footprint sequentially at a stride and wraps:
	// predictable addresses, no reuse within the MAB's reach once the
	// footprint exceeds it.
	Streaming Pattern = "stream"
	// BlockedMatrix sweeps a square matrix in 8x8-word tiles — the tiled
	// locality of the DCT/JPEG kernels, with a size knob.
	BlockedMatrix Pattern = "blocked"
	// PhaseSwitch alternates between a hot 2KiB window and a strided
	// stream every PhaseLen accesses, exercising MAB re-warming.
	PhaseSwitch Pattern = "phase"
)

// Patterns lists every pattern in canonical order.
func Patterns() []Pattern {
	return []Pattern{HotLoop, Branchy, PointerChase, Streaming, BlockedMatrix, PhaseSwitch}
}

// Spec is one synthetic workload: a pattern plus its knobs. The zero value
// of a knob means "use the pattern's default"; Normalized fills them in.
type Spec struct {
	Pattern Pattern
	// Footprint is the data working-set size in bytes (knob "fp").
	Footprint int
	// Stride is the byte distance between consecutive accesses (knob
	// "stride"); for pchase it is the node spacing.
	Stride int
	// BranchBias is the taken percentage of branchy's data-dependent
	// branch, 0-100 (knob "bias"). Like every knob, the zero value means
	// "use the default" (70); a never-taken branch is expressed as -1 in
	// Go (the spec syntax just says bias=0 — the parser translates).
	BranchBias int
	// PhaseLen is the number of accesses per phase for phase (knob
	// "phase").
	PhaseLen int
	// Accesses is the main loop's iteration count (knob "n").
	Accesses int
	// Seed drives data generation and the pchase permutation (knob
	// "seed"). Seed 0 normalizes to 1.
	Seed uint32
}

// knob limits; footprints must leave room below the stack (the data region
// spans 0x100000-0x1F0000, just under 1MiB).
const (
	minFootprint = 256
	maxFootprint = 512 << 10
	minAccesses  = 1 << 10
	maxAccesses  = 16 << 20
	// maxStride keeps the stride within the addi immediate the generated
	// loops advance by.
	maxStride = 8 << 10
)

// patternInfo is the per-pattern knob table: which knobs the pattern uses
// (and therefore which appear in the canonical name) and their defaults.
type patternInfo struct {
	desc            string
	fp              int  // default footprint
	stride          int  // default stride; 0 = pattern does not use stride
	usesBias        bool // branchy only
	usesPhase       bool // phase only
	squareFootprint bool // blocked: footprint rounds to a square side
}

var patterns = map[Pattern]patternInfo{
	HotLoop:       {desc: "read-modify-write loop over a hot window", fp: 4 << 10, stride: 4},
	Branchy:       {desc: "sequential walk with a data-dependent branch", fp: 16 << 10, usesBias: true},
	PointerChase:  {desc: "seeded random pointer chase", fp: 64 << 10, stride: 64},
	Streaming:     {desc: "strided streaming walk", fp: 256 << 10, stride: 4},
	BlockedMatrix: {desc: "8x8-word tiled matrix sweep", fp: 64 << 10, squareFootprint: true},
	PhaseSwitch:   {desc: "alternating hot window / strided stream", fp: 64 << 10, stride: 32, usesPhase: true},
}

// IsSpec reports whether a workload name is a synthetic spec (has the
// "synth:" prefix).
func IsSpec(name string) bool { return strings.HasPrefix(name, SpecPrefix) }

// Normalized validates the spec, fills defaulted knobs and rounds the
// footprint to the pattern's alignment (a stride multiple; a square
// power-of-two side for blocked). Generate requires a normalized spec.
func (s Spec) Normalized() (Spec, error) {
	info, ok := patterns[s.Pattern]
	if !ok {
		return s, fmt.Errorf("synth: unknown pattern %q (valid: %s)", s.Pattern, patternList())
	}
	if s.Footprint == 0 {
		s.Footprint = info.fp
	}
	if s.Footprint < minFootprint || s.Footprint > maxFootprint {
		return s, fmt.Errorf("synth: footprint %d out of range [%d, %d]", s.Footprint, minFootprint, maxFootprint)
	}
	if info.stride == 0 {
		if s.Stride != 0 {
			return s, fmt.Errorf("synth: pattern %s does not take a stride", s.Pattern)
		}
	} else {
		if s.Stride == 0 {
			s.Stride = info.stride
		}
		if s.Stride < 4 || s.Stride > maxStride || s.Stride%4 != 0 {
			return s, fmt.Errorf("synth: stride %d not a multiple of 4 in [4, %d]", s.Stride, maxStride)
		}
		if s.Stride*2 > s.Footprint {
			return s, fmt.Errorf("synth: stride %d leaves fewer than two elements in footprint %d", s.Stride, s.Footprint)
		}
		// The walk wraps at the footprint; round it down to whole strides
		// so every access lands inside it.
		s.Footprint -= s.Footprint % s.Stride
	}
	if info.usesBias {
		switch {
		case s.BranchBias == 0:
			s.BranchBias = 70
		case s.BranchBias == -1:
			// Explicit never-taken (spec syntax bias=0); the sentinel is
			// kept so normalization is idempotent — String renders it as
			// bias=0 and biasThreshold as 0%.
		case s.BranchBias < 0 || s.BranchBias > 100:
			return s, fmt.Errorf("synth: branch bias %d%% out of range [0, 100]", s.BranchBias)
		}
	} else if s.BranchBias != 0 {
		return s, fmt.Errorf("synth: pattern %s does not take a branch bias", s.Pattern)
	}
	if info.usesPhase {
		if s.PhaseLen == 0 {
			s.PhaseLen = 4096
		}
		if s.PhaseLen < 16 || s.PhaseLen > maxAccesses {
			return s, fmt.Errorf("synth: phase length %d out of range [16, %d]", s.PhaseLen, maxAccesses)
		}
	} else if s.PhaseLen != 0 {
		return s, fmt.Errorf("synth: pattern %s does not take a phase length", s.Pattern)
	}
	if s.Accesses == 0 {
		s.Accesses = 1 << 16
	}
	if s.Accesses < minAccesses || s.Accesses > maxAccesses {
		return s, fmt.Errorf("synth: access count %d out of range [%d, %d]", s.Accesses, minAccesses, maxAccesses)
	}
	if s.Seed == 0 {
		s.Seed = 1
	}
	if info.squareFootprint {
		// Round down to a square with a power-of-two side of at least 8
		// words, so tiles divide the matrix exactly.
		s.Footprint = squareSide(s.Footprint) * squareSide(s.Footprint) * 4
	} else if s.Stride == 0 {
		s.Footprint -= s.Footprint % 4
	}
	// Rounding only shrinks (the floor was checked pre-rounding), but a
	// coarse stride can shrink the footprint below the floor; re-check so
	// Normalized output always re-normalizes to itself (Generate depends
	// on that).
	if s.Footprint < minFootprint {
		return s, fmt.Errorf("synth: footprint rounds down to %d (below the %d-byte floor); raise fp or shrink stride",
			s.Footprint, minFootprint)
	}
	return s, nil
}

// squareSide is the side, in words, of the largest power-of-two square
// matrix fitting a footprint — the blocked pattern's geometry, shared by
// normalization (which pins the footprint to exactly side²·4) and the
// generator.
func squareSide(footprint int) int {
	side := 8
	for (2*side)*(2*side)*4 <= footprint {
		side *= 2
	}
	return side
}

// String renders the canonical spec: the pattern plus every knob it uses in
// fixed order, with effective values. Specs that fail to normalize render
// their raw fields (String must not panic; errors surface via Normalized).
func (s Spec) String() string {
	if n, err := s.Normalized(); err == nil {
		s = n
	}
	var b strings.Builder
	b.WriteString(SpecPrefix)
	b.WriteString(string(s.Pattern))
	fmt.Fprintf(&b, ",fp=%s", humanSize(s.Footprint))
	info := patterns[s.Pattern]
	if info.stride != 0 {
		fmt.Fprintf(&b, ",stride=%d", s.Stride)
	}
	if info.usesBias {
		// The -1 never-taken sentinel renders as its spec spelling, bias=0.
		fmt.Fprintf(&b, ",bias=%d", max(s.BranchBias, 0))
	}
	if info.usesPhase {
		fmt.Fprintf(&b, ",phase=%d", s.PhaseLen)
	}
	fmt.Fprintf(&b, ",n=%d,seed=%d", s.Accesses, s.Seed)
	return b.String()
}

// ParseSpec parses the mini-syntax (with or without the "synth:" prefix)
// into a normalized Spec. Range values ("4KiB..64KiB") are rejected here;
// use ExpandSpec for sweeps.
func ParseSpec(text string) (Spec, error) {
	specs, err := ExpandSpec(text)
	if err != nil {
		return Spec{}, err
	}
	if len(specs) != 1 {
		return Spec{}, fmt.Errorf("synth: spec %q is a sweep of %d workloads; expand it first", text, len(specs))
	}
	return specs[0], nil
}

// ExpandSpec parses the mini-syntax, expanding at most one ranged knob
// ("fp=4KiB..64KiB" doubles from the low bound while it stays at or below
// the high bound) into one Spec per value. A plain spec yields one Spec.
func ExpandSpec(text string) ([]Spec, error) {
	body := strings.TrimPrefix(strings.TrimSpace(text), SpecPrefix)
	fields := strings.Split(body, ",")
	if fields[0] == "" {
		return nil, fmt.Errorf("synth: empty spec (expected %s<pattern>[,knob=value]...)", SpecPrefix)
	}
	base := Spec{Pattern: Pattern(strings.ToLower(strings.TrimSpace(fields[0])))}
	if _, ok := patterns[base.Pattern]; !ok {
		return nil, fmt.Errorf("synth: unknown pattern %q (valid: %s)", fields[0], patternList())
	}
	type ranged struct {
		set      func(*Spec, int)
		lo, hi   int
		knobName string
	}
	var sweep *ranged
	seen := map[string]bool{}
	for _, f := range fields[1:] {
		key, val, ok := strings.Cut(strings.TrimSpace(f), "=")
		key = strings.ToLower(strings.TrimSpace(key))
		if !ok || key == "" || val == "" {
			return nil, fmt.Errorf("synth: malformed knob %q (expected knob=value)", f)
		}
		if seen[key] {
			return nil, fmt.Errorf("synth: duplicate knob %q", key)
		}
		seen[key] = true
		var set func(*Spec, int)
		size := false
		switch key {
		case "fp":
			set, size = func(s *Spec, v int) { s.Footprint = v }, true
		case "stride":
			set, size = func(s *Spec, v int) { s.Stride = v }, true
		case "bias":
			set = func(s *Spec, v int) {
				if v == 0 {
					v = -1 // explicit zero, distinct from "use the default"
				}
				s.BranchBias = v
			}
		case "phase":
			set = func(s *Spec, v int) { s.PhaseLen = v }
		case "n":
			set = func(s *Spec, v int) { s.Accesses = v }
		case "seed":
			set = func(s *Spec, v int) { s.Seed = uint32(v) }
		default:
			return nil, fmt.Errorf("synth: unknown knob %q (valid: fp, stride, bias, phase, n, seed)", key)
		}
		if lo, hi, isRange := strings.Cut(val, ".."); isRange {
			if key == "seed" || key == "bias" {
				return nil, fmt.Errorf("synth: knob %q cannot be a range", key)
			}
			loV, err := parseKnobValue(lo, size)
			if err != nil {
				return nil, fmt.Errorf("synth: knob %s: %w", key, err)
			}
			hiV, err := parseKnobValue(hi, size)
			if err != nil {
				return nil, fmt.Errorf("synth: knob %s: %w", key, err)
			}
			if loV <= 0 || hiV < loV {
				return nil, fmt.Errorf("synth: bad range %s=%s", key, val)
			}
			if sweep != nil {
				return nil, fmt.Errorf("synth: at most one knob may be a range (%s and %s)", sweep.knobName, key)
			}
			sweep = &ranged{set: set, lo: loV, hi: hiV, knobName: key}
			continue
		}
		v, err := parseKnobValue(val, size)
		if err != nil {
			return nil, fmt.Errorf("synth: knob %s: %w", key, err)
		}
		// Every knob is a count or percentage; rejecting negatives here
		// also keeps them clear of Normalized's internal sentinels (the
		// bias=0 translation below).
		if v < 0 {
			return nil, fmt.Errorf("synth: knob %s: negative value %d", key, v)
		}
		set(&base, v)
	}
	if sweep == nil {
		n, err := base.Normalized()
		if err != nil {
			return nil, err
		}
		return []Spec{n}, nil
	}
	var out []Spec
	emitted := map[string]bool{}
	for v := sweep.lo; v <= sweep.hi; v *= 2 {
		s := base
		sweep.set(&s, v)
		n, err := s.Normalized()
		if err != nil {
			return nil, fmt.Errorf("synth: %s=%d in range: %w", sweep.knobName, v, err)
		}
		// Normalization rounding (stride multiples, blocked's square
		// footprint) can collapse adjacent range values onto one canonical
		// spec; emit each canonical spec once so sweeps stay duplicate-free.
		if name := n.String(); !emitted[name] {
			emitted[name] = true
			out = append(out, n)
		}
	}
	return out, nil
}

// parseKnobValue parses a knob value; size knobs additionally accept
// binary-size suffixes (KiB/MiB, and the shorthands k/K/m/M, all 1024-based).
func parseKnobValue(val string, size bool) (int, error) {
	val = strings.TrimSpace(val)
	mult := 1
	if size {
		for _, sf := range []struct {
			suffix string
			mult   int
		}{
			{"KiB", 1 << 10}, {"MiB", 1 << 20}, {"KB", 1 << 10}, {"MB", 1 << 20},
			{"k", 1 << 10}, {"K", 1 << 10}, {"m", 1 << 20}, {"M", 1 << 20},
		} {
			if strings.HasSuffix(val, sf.suffix) {
				mult, val = sf.mult, strings.TrimSuffix(val, sf.suffix)
				break
			}
		}
	}
	v, err := strconv.Atoi(val)
	if err != nil {
		return 0, fmt.Errorf("bad value %q", val)
	}
	return v * mult, nil
}

// humanSize renders byte counts with exact binary suffixes ("64KiB"), or
// plain bytes when not a whole KiB.
func humanSize(v int) string {
	switch {
	case v != 0 && v%(1<<20) == 0:
		return fmt.Sprintf("%dMiB", v>>20)
	case v != 0 && v%1024 == 0:
		return fmt.Sprintf("%dKiB", v>>10)
	}
	return strconv.Itoa(v)
}

// patternList names every pattern, sorted, for error messages.
func patternList() string {
	names := make([]string, 0, len(patterns))
	for p := range patterns {
		names = append(names, string(p))
	}
	sort.Strings(names)
	return strings.Join(names, ", ")
}

// SpecSyntax is a one-line usage hint for surfaces that accept workload
// names ("wmx explore -workloads", workloads.ByName errors).
func SpecSyntax() string {
	return SpecPrefix + "<pattern>[,fp=SIZE][,stride=N][,bias=PCT][,phase=N][,n=N][,seed=N]  patterns: " + patternList()
}

// Describe returns the one-line description of a pattern ("" if unknown).
func Describe(p Pattern) string { return patterns[p].desc }
