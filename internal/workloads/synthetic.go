package workloads

import (
	"fmt"
	"strings"

	"waymemo/internal/asm"
	"waymemo/internal/sim"
	"waymemo/internal/synth"
)

// This file lifts synthetic specs (internal/synth) into Workload values.
// A synthetic workload is an ordinary Workload — generated sources, a
// checksum Check against the Go reference, a content Fingerprint — so it
// flows through Build memoization, the suite's trace cache and the explore
// result cache exactly like the seven paper benchmarks.

// FromSpec compiles a synthetic spec into a runnable Workload. The
// workload's Name (and Spec) is the canonical spec string, so every
// spelling of the same spec shares one build memo entry, one trace spill
// and one explore cache key. The Check validates the program's checksum
// against the generator's Go reference.
func FromSpec(sp synth.Spec) (Workload, error) {
	g, err := sp.Generate()
	if err != nil {
		return Workload{}, err
	}
	return fromGenerated(g, ""), nil
}

// FromSpecRV32 is FromSpec for the RV32 frontend: the same access pattern,
// checksum arithmetic and Go reference, generated as RV32 assembly. The
// workload's name (and Spec) carries the "rv32:" prefix, keeping its build
// memo, trace spills and explore cache keys disjoint from the FRVL
// rendering of the identical spec.
func FromSpecRV32(sp synth.Spec) (Workload, error) {
	g, err := sp.GenerateRV32()
	if err != nil {
		return Workload{}, err
	}
	return fromGenerated(g, ISARV32), nil
}

func fromGenerated(g synth.Program, isaName string) Workload {
	name := g.Spec.String()
	if isaName != "" {
		name = isaName + ":" + name
	}
	return Workload{
		Name:    name,
		ISA:     isaName,
		Spec:    name,
		Sources: g.Sources,
		// Generous per-spec bound: the main loop costs well under 24
		// instructions per access and the LCG fill 9 per word.
		MaxInstrs: uint64(g.Spec.Accesses)*24 + uint64(g.Spec.Footprint)*4 + 1_000_000,
		Check: func(c *sim.CPU, p *asm.Program) error {
			got := c.Mem.ReadWord(p.Symbols[synth.SumSymbol])
			if got != g.WantSum {
				return fmt.Errorf("%s: checksum %#x, want %#x", name, got, g.WantSum)
			}
			return nil
		},
	}
}

// ExpandByName resolves one workload name into one or more workloads: a
// benchmark name yields that benchmark, a synthetic spec yields one
// workload per swept knob value ("synth:pchase,fp=4KiB..64KiB" doubles the
// footprint from 4KiB to 64KiB).
func ExpandByName(name string) ([]Workload, error) {
	spec, rv := name, false
	if rest, ok := strings.CutPrefix(name, RV32Prefix); ok && synth.IsSpec(rest) {
		spec, rv = rest, true
	}
	if !synth.IsSpec(spec) {
		w, err := ByName(name)
		if err != nil {
			return nil, err
		}
		return []Workload{w}, nil
	}
	specs, err := synth.ExpandSpec(spec)
	if err != nil {
		return nil, err
	}
	out := make([]Workload, 0, len(specs))
	for _, sp := range specs {
		var w Workload
		if rv {
			w, err = FromSpecRV32(sp)
		} else {
			w, err = FromSpec(sp)
		}
		if err != nil {
			return nil, err
		}
		out = append(out, w)
	}
	return out, nil
}

// SplitList splits a comma-separated workload list into names without
// resolving them, re-attaching a synthetic spec's own comma-separated knobs
// to the spec before them (the same grammar ParseList resolves). Callers
// that ship names over a wire — the serve client, loadgen — split with this
// and let the receiving end expand.
func SplitList(list string) []string {
	var names []string
	for _, f := range strings.Split(list, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		if strings.Contains(f, "=") && len(names) > 0 && isSpecName(names[len(names)-1]) {
			names[len(names)-1] += "," + f
			continue
		}
		names = append(names, f)
	}
	return names
}

// isSpecName reports whether a list fragment is a synthetic spec under
// either frontend ("synth:..." or "rv32:synth:..."), i.e. whether later
// "knob=value" fragments re-attach to it.
func isSpecName(name string) bool {
	name = strings.TrimPrefix(name, RV32Prefix)
	return synth.IsSpec(name)
}

// ParseList resolves a comma-separated workload list as CLIs accept it.
// Synthetic specs contain commas themselves ("synth:pchase,fp=64KiB"), so a
// fragment containing "=" re-attaches to the spec before it:
//
//	"DCT,synth:pchase,fp=4KiB..64KiB,seed=7,FFT"
//
// parses as DCT, one pchase spec (expanded over the footprint range), FFT.
func ParseList(list string) ([]Workload, error) {
	names := SplitList(list)
	if len(names) == 0 {
		return nil, fmt.Errorf("workloads: empty workload list")
	}
	var out []Workload
	for _, name := range names {
		ws, err := ExpandByName(name)
		if err != nil {
			return nil, err
		}
		out = append(out, ws...)
	}
	return out, nil
}
