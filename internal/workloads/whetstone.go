package workloads

import (
	"fmt"
	"math"

	"waymemo/internal/asm"
	"waymemo/internal/sim"
)

// Whetstone: a miniature of the classic floating-point benchmark. The
// transcendental modules use explicit Horner polynomials (tables shared
// between the assembly and the Go reference), so the computation is
// bit-exact: the simulator executes IEEE-754 double ops with Go semantics.

const whetIters = 1500

// Polynomial coefficient tables (highest order first, Horner form).
var (
	whetS = []float64{-1.0 / 5040, 1.0 / 120, -1.0 / 6}                                   // sin(x)/x tail over x²
	whetC = []float64{-1.0 / 720, 1.0 / 24, -0.5}                                         // cos tail over x²
	whetA = []float64{-1.0 / 7, 1.0 / 5, -1.0 / 3}                                        // atan tail over x²
	whetL = []float64{-1.0 / 8, 1.0 / 7, -1.0 / 6, 1.0 / 5, -1.0 / 4, 1.0 / 3, -0.5, 1.0} // log(1+u)/u
	whetE = []float64{1.0 / 40320, 1.0 / 5040, 1.0 / 720, 1.0 / 120, 1.0 / 24, 1.0 / 6, 0.5, 1.0, 1.0}
)

// The classic whetstone constants.
const (
	whetT  = 0.499975
	whetT1 = 0.50025
	whetT2 = 2.0
)

func whetHorner(c []float64, x float64) float64 {
	r := c[0]
	for _, k := range c[1:] {
		r = r*x + k
	}
	return r
}

func whetPsin(x float64) float64 {
	x2 := x * x
	r := whetHorner(whetS, x2)
	r = r * x2
	r = r * x
	return r + x
}

func whetPcos(x float64) float64 {
	x2 := x * x
	r := whetHorner(whetC, x2)
	r = r * x2
	return r + 1.0
}

func whetPatan(x float64) float64 {
	x2 := x * x
	r := whetHorner(whetA, x2)
	r = r * x2
	r = r * x
	return r + x
}

func whetPlog(x float64) float64 {
	u := x - 1.0
	r := whetHorner(whetL, u)
	return r * u
}

func whetPexp(x float64) float64 {
	return whetHorner(whetE, x)
}

// whetRef runs the reference computation and returns the 12 output doubles
// plus the two integer outputs.
func whetRef() ([]float64, int32, int32) {
	x1, x2, x3, x4 := 1.0, -1.0, -1.0, -1.0
	e1 := []float64{1.0, -1.0, -1.0, -1.0}
	x, y, z := 0.5, 0.5, 0.0
	x1r := 0.75
	var j, acc int32
	j = 1
	for i := int32(1); i <= whetIters; i++ {
		// Module 1: simple identifiers.
		for k := 0; k < 10; k++ {
			t := ((x1 + x2) + x3) - x4
			x1 = t * whetT
			t = ((x1 + x2) - x3) + x4
			x2 = t * whetT
			t = ((x1 - x2) + x3) + x4
			x3 = t * whetT
			t = ((-x1 + x2) + x3) + x4
			x4 = t * whetT
		}
		// Module 2: array passed as parameter.
		for k := 0; k < 6; k++ {
			t := ((e1[0] + e1[1]) + e1[2]) - e1[3]
			e1[0] = t * whetT
			t = ((e1[0] + e1[1]) - e1[2]) + e1[3]
			e1[1] = t * whetT
			t = ((e1[0] - e1[1]) + e1[2]) + e1[3]
			e1[2] = t * whetT
			t = ((-e1[0] + e1[1]) + e1[2]) + e1[3]
			e1[3] = t / whetT2
		}
		// Module 3: conditional jumps.
		for k := 0; k < 10; k++ {
			if j == 1 {
				j = 2
			} else {
				j = 3
			}
			if j > 2 {
				j = 0
			} else {
				j = 1
			}
			if j < 1 {
				j = 1
			} else {
				j = 0
			}
		}
		// Module 4: integer arithmetic.
		acc = acc*3 + (i*2)%7 + j
		// Module 5: trigonometric functions.
		den := whetPcos(x+y) + whetPcos(x-y)
		den = den - 1.0
		num := whetPsin(x) * whetPcos(x)
		x = whetPatan(num/den) * whetT
		den = whetPcos(x+y) + whetPcos(x-y)
		den = den - 1.0
		num = whetPsin(y) * whetPcos(y)
		y = whetPatan(num/den) * whetT
		// Module 6: procedure call.
		p1 := whetT * (x + y)
		p2 := whetT * (p1 + y)
		z = (p1 + p2) / whetT2
		// Modules 7/8: exp/log/sqrt chain.
		x1r = math.Sqrt(whetPexp(whetPlog(x1r) / whetT1))
	}
	return []float64{x1, x2, x3, x4, e1[0], e1[1], e1[2], e1[3], x, y, z, x1r}, j, acc
}

const whetCode = `
; FP register plan: f9=T (permanent), f10..f17 live state
; (x1,x2,x3,x4,x,y,z,x1r), f6/f7 cross-call temps. Helpers clobber f0-f5.
main:	push ra
	la   s7, whetK
	fld  f9, 0(s7)         ; T
	fld  f10, 32(s7)       ; x1 = 1.0
	fld  f11, 40(s7)       ; x2 = -1.0
	fmov f12, f11          ; x3
	fmov f13, f11          ; x4
	fld  f14, 48(s7)       ; x = 0.5
	fmov f15, f14          ; y
	fld  f16, 56(s7)       ; z = 0.0
	fld  f17, 64(s7)       ; x1r = 0.75
	li   s1, 1             ; j
	li   s2, 0             ; acc
	li   s0, 1             ; i
	li   s3, 1500          ; iterations
w_loop:
	; --- module 1 ---
	li   t0, 10
w1_l:	fadd f0, f10, f11
	fadd f0, f0, f12
	fsub f0, f0, f13
	fmul f10, f0, f9
	fadd f0, f10, f11
	fsub f0, f0, f12
	fadd f0, f0, f13
	fmul f11, f0, f9
	fsub f0, f10, f11
	fadd f0, f0, f12
	fadd f0, f0, f13
	fmul f12, f0, f9
	fneg f0, f10
	fadd f0, f0, f11
	fadd f0, f0, f12
	fadd f0, f0, f13
	fmul f13, f0, f9
	addi t0, t0, -1
	bnez t0, w1_l
	; --- module 2: array through a procedure ---
	la   a0, whetE1
	jal  wpa
	; --- module 3: conditional jumps ---
	li   t0, 10
w3_l:	li   t2, 1
	bne  s1, t2, w3_a
	li   s1, 2
	b    w3_b
w3_a:	li   s1, 3
w3_b:	li   t2, 2
	ble  s1, t2, w3_c
	li   s1, 0
	b    w3_d
w3_c:	li   s1, 1
w3_d:	bgtz s1, w3_e
	li   s1, 1
	b    w3_f
w3_e:	li   s1, 0
w3_f:	addi t0, t0, -1
	bnez t0, w3_l
	; --- module 4: integer arithmetic ---
	li   t1, 3
	mul  s2, s2, t1
	sll  t1, s0, 1
	li   t2, 7
	rem  t1, t1, t2
	add  s2, s2, t1
	add  s2, s2, s1
	; --- module 5: trig chain for x then y ---
	fadd f1, f14, f15
	jal  pcos
	fmov f6, f0
	fsub f1, f14, f15
	jal  pcos
	fadd f6, f6, f0
	fld  f4, 72(s7)        ; 1.0
	fsub f6, f6, f4        ; den
	fmov f1, f14
	jal  psin
	fmov f7, f0
	fmov f1, f14
	jal  pcos
	fmul f7, f7, f0        ; num
	fdiv f1, f7, f6
	jal  patan
	fmul f14, f0, f9       ; x = patan(num/den) * T
	fadd f1, f14, f15
	jal  pcos
	fmov f6, f0
	fsub f1, f14, f15
	jal  pcos
	fadd f6, f6, f0
	fld  f4, 72(s7)
	fsub f6, f6, f4
	fmov f1, f15
	jal  psin
	fmov f7, f0
	fmov f1, f15
	jal  pcos
	fmul f7, f7, f0
	fdiv f1, f7, f6
	jal  patan
	fmul f15, f0, f9       ; y
	; --- module 6: procedure call ---
	fmov f1, f14
	fmov f2, f15
	jal  wp3
	fmov f16, f0           ; z
	; --- modules 7/8: sqrt(exp(log(x1r)/T1)) ---
	fmov f1, f17
	jal  plog
	fld  f4, 8(s7)         ; T1
	fdiv f1, f0, f4
	jal  pexp
	fsqrt f17, f0
	addi s0, s0, 1
	ble  s0, s3, w_loop
	; --- store outputs ---
	la   t0, whetOut
	fsd  f10, 0(t0)
	fsd  f11, 8(t0)
	fsd  f12, 16(t0)
	fsd  f13, 24(t0)
	la   t1, whetE1
	fld  f0, 0(t1)
	fsd  f0, 32(t0)
	fld  f0, 8(t1)
	fsd  f0, 40(t0)
	fld  f0, 16(t1)
	fsd  f0, 48(t0)
	fld  f0, 24(t1)
	fsd  f0, 56(t0)
	fsd  f14, 64(t0)
	fsd  f15, 72(t0)
	fsd  f16, 80(t0)
	fsd  f17, 88(t0)
	sw   s1, 96(t0)
	sw   s2, 100(t0)
	pop  ra
	ret

; phorner(a0 = coeff table, a1 = #coeffs, f1 = x) -> f0
phorner:
	fld  f0, 0(a0)
	addi a1, a1, -1
ph_l:	addi a0, a0, 8
	fld  f2, 0(a0)
	fmul f0, f0, f1
	fadd f0, f0, f2
	addi a1, a1, -1
	bnez a1, ph_l
	ret

; psin(f1) -> f0, clobbers f0-f3
psin:	push ra
	fmov f3, f1
	fmul f1, f1, f1
	la   a0, whetS
	li   a1, 3
	jal  phorner
	fmul f0, f0, f1
	fmul f0, f0, f3
	fadd f0, f0, f3
	pop  ra
	ret

; pcos(f1) -> f0
pcos:	push ra
	fmul f1, f1, f1
	la   a0, whetC
	li   a1, 3
	jal  phorner
	fmul f0, f0, f1
	la   t0, whetK
	fld  f2, 72(t0)        ; 1.0
	fadd f0, f0, f2
	pop  ra
	ret

; patan(f1) -> f0
patan:	push ra
	fmov f3, f1
	fmul f1, f1, f1
	la   a0, whetA
	li   a1, 3
	jal  phorner
	fmul f0, f0, f1
	fmul f0, f0, f3
	fadd f0, f0, f3
	pop  ra
	ret

; plog(f1) -> f0  (log(1+u) series at u = x-1)
plog:	push ra
	la   t0, whetK
	fld  f2, 72(t0)        ; 1.0
	fsub f1, f1, f2
	fmov f3, f1
	la   a0, whetL
	li   a1, 8
	jal  phorner
	fmul f0, f0, f3
	pop  ra
	ret

; pexp(f1) -> f0
pexp:	push ra
	la   a0, whetEc
	li   a1, 9
	jal  phorner
	pop  ra
	ret

; wpa(a0 = &E1[0]): module-2 body, 6 inner repetitions
wpa:	li   t0, 6
	la   t1, whetK
	fld  f4, 16(t1)        ; T2
wpa_l:	fld  f0, 0(a0)
	fld  f1, 8(a0)
	fld  f2, 16(a0)
	fld  f3, 24(a0)
	fadd f5, f0, f1
	fadd f5, f5, f2
	fsub f5, f5, f3
	fmul f0, f5, f9
	fsd  f0, 0(a0)
	fadd f5, f0, f1
	fsub f5, f5, f2
	fadd f5, f5, f3
	fmul f1, f5, f9
	fsd  f1, 8(a0)
	fsub f5, f0, f1
	fadd f5, f5, f2
	fadd f5, f5, f3
	fmul f2, f5, f9
	fsd  f2, 16(a0)
	fneg f5, f0
	fadd f5, f5, f1
	fadd f5, f5, f2
	fadd f5, f5, f3
	fdiv f3, f5, f4
	fsd  f3, 24(a0)
	addi t0, t0, -1
	bnez t0, wpa_l
	ret

; wp3(f1 = x, f2 = y) -> f0 = z
wp3:	fadd f0, f1, f2
	fmul f0, f0, f9        ; p1 = T*(x+y)
	fadd f3, f0, f2
	fmul f3, f3, f9        ; p2 = T*(p1+y)
	fadd f0, f0, f3
	la   t0, whetK
	fld  f4, 16(t0)
	fdiv f0, f0, f4
	ret
`

// Whetstone builds the benchmark.
func Whetstone() Workload {
	consts := []float64{whetT, whetT1, whetT2, 0, 1.0, -1.0, 0.5, 0.0, 0.75, 1.0}
	data := "\t.org DATA\n" +
		dirDoubles("whetK", consts) +
		dirDoubles("whetS", whetS) +
		dirDoubles("whetC", whetC) +
		dirDoubles("whetA", whetA) +
		dirDoubles("whetL", whetL) +
		dirDoubles("whetEc", whetE) +
		dirDoubles("whetE1", []float64{1.0, -1.0, -1.0, -1.0}) +
		"\t.align 8\nwhetOut:\t.space 104\n"
	wantF, wantJ, wantAcc := whetRef()
	return Workload{
		Name:    "whetstone",
		Sources: []string{whetCode, data},
		Check: func(c *sim.CPU, p *asm.Program) error {
			base := p.Symbols["whetOut"]
			for i, w := range wantF {
				got := math.Float64frombits(c.Mem.ReadDouble(base + uint32(8*i)))
				if math.Float64bits(got) != math.Float64bits(w) {
					return fmt.Errorf("whetOut[%d] = %v, want %v", i, got, w)
				}
			}
			if got := int32(c.Mem.ReadWord(base + 96)); got != wantJ {
				return fmt.Errorf("j = %d, want %d", got, wantJ)
			}
			if got := int32(c.Mem.ReadWord(base + 100)); got != wantAcc {
				return fmt.Errorf("acc = %d, want %d", got, wantAcc)
			}
			return nil
		},
	}
}
