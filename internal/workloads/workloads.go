// Package workloads contains the seven benchmark programs of the paper's
// evaluation — DCT, FFT, whetstone, dhrystone, compress, jpeg encoder and
// mpeg2 encoder — written in FRVL assembly and validated against Go
// reference implementations of the same algorithms (bit-exact, including
// fixed-point rounding).
//
// The paper ran FR-V binaries under the Softune ISS; these programs fill
// that role for our simulator. What matters for the evaluation is that they
// exercise the same mechanisms: loop nests with small branch offsets,
// call/return flow through the link register, base+displacement data access
// with high tag locality, and realistically sized working sets.
//
// Beyond the paper's seven, FromSpec compiles parameterized synthetic
// workloads (internal/synth) — named access-pattern families with
// footprint, stride, bias, phase and seed knobs — into ordinary Workload
// values, and ByName accepts their "synth:..." spec syntax wherever a
// benchmark name is accepted.
package workloads

import (
	"context"
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"sort"
	"strings"
	"sync"

	"waymemo/internal/asm"
	"waymemo/internal/isa"
	"waymemo/internal/isa/rv32"
	"waymemo/internal/sim"
	"waymemo/internal/synth"
	"waymemo/internal/trace"
)

// Memory layout shared by all workloads.
const (
	// TextBase is where code is assembled.
	TextBase = 0x00010000
	// DataBase is the start of the data region (16KB-aligned, so data
	// within one 16KB span shares a MAB tag region).
	DataBase = 0x00100000
	// StackTop is the initial stack pointer.
	StackTop = 0x001F0000
)

// DefaultMaxInstrs bounds runaway programs.
const DefaultMaxInstrs = 200_000_000

// ISARV32 is the Workload.ISA value selecting the RV32IM frontend.
const ISARV32 = "rv32"

// RV32Prefix prefixes the names of RV32 workloads ("rv32:DCT",
// "rv32:synth:pchase,..."). The prefix is part of the name everywhere — the
// build memo, trace spill sidecars, explore cache keys — so a kernel and
// its cross-ISA port can never share a cached artifact.
const RV32Prefix = "rv32:"

// Workload is one benchmark program.
type Workload struct {
	// Name as used in the paper's figures (e.g. "DCT", "mpeg2enc"). For
	// synthetic workloads it is the canonical spec string. RV32 workloads
	// carry the "rv32:" prefix.
	Name string
	// ISA selects the frontend the sources assemble and execute under:
	// empty for FRVL, ISARV32 for RV32IM.
	ISA string
	// Spec is the canonical synthetic spec this workload was generated
	// from (see FromSpec), empty for the paper benchmarks. It is carried
	// into trace spill sidecars so persisted captures are self-describing.
	Spec string
	// Sources are assembled in order after the shared prologue.
	Sources []string
	// Check validates the halted machine against the Go reference. RV32
	// runs are checked through the same signature: the RV32 machine's
	// memory/console view is presented as a *sim.CPU, so one Check
	// validates a kernel under both ISAs.
	Check func(c *sim.CPU, p *asm.Program) error
	// MaxInstrs overrides DefaultMaxInstrs when non-zero.
	MaxInstrs uint64
}

// DefaultPacketBytes is the packet size a zero PacketBytes resolves to for
// this workload's ISA: FRVL's 8-byte VLIW packet, RV32's 4-byte fetch.
// Cache layers (suite.TraceCache, explore keys) normalize through this so
// "default" never aliases across ISAs.
func (w Workload) DefaultPacketBytes() uint32 {
	if w.ISA == ISARV32 {
		return rv32.PacketBytes
	}
	return isa.PacketBytes
}

// prologue is the shared runtime: entry stub and layout constants.
const prologue = `
	.equ TEXT,  0x10000
	.equ DATA,  0x100000
	.org TEXT
_start:	jal  main
	halt
`

// rv32Prologue is the RV32 runtime stub: same layout constants and entry
// protocol, but the exit is ebreak (the RV32 halt) instead of FRVL's halt.
const rv32Prologue = `
	.equ TEXT,  0x10000
	.equ DATA,  0x100000
	.org TEXT
_start:	jal  main
	ebreak
`

// Prologue returns the shared runtime stub every workload is assembled
// behind (entry jump + layout constants). CLIs that emit a standalone
// program (wmsynth -spec) prepend it so the output assembles as-is.
func Prologue() string { return prologue }

// PrologueRV32 is Prologue for the RV32 frontend.
func PrologueRV32() string { return rv32Prologue }

// prologueSrc is the runtime stub matching the workload's ISA.
func (w Workload) prologueSrc() string {
	if w.ISA == ISARV32 {
		return rv32Prologue
	}
	return prologue
}

// Fingerprint identifies the workload's program content: a hash of the
// name, the shared runtime prologue and every source in assembly order.
// Two Workload values with equal fingerprints assemble to the same image,
// which is what the build memo and the suite's trace spill files key on —
// the prologue is part of the hash precisely so an edit to it invalidates
// persisted trace captures along with everything else.
func (w Workload) Fingerprint() uint64 {
	h := fnv.New64a()
	var n [8]byte
	write := func(s string) {
		binary.LittleEndian.PutUint64(n[:], uint64(len(s)))
		h.Write(n[:])
		h.Write([]byte(s))
	}
	write(w.Name)
	write(w.prologueSrc())
	// The ISA tag participates only when set, so every FRVL fingerprint —
	// and with it every persisted spill file and cache key — is unchanged.
	if w.ISA != "" {
		write("isa:" + w.ISA)
	}
	for _, s := range w.Sources {
		write(s)
	}
	return h.Sum64()
}

// buildMemo caches assembled programs per workload fingerprint for the life
// of the process: explore sweeps call Build at every grid point, and the
// sources are identical every time.
var (
	buildMu   sync.Mutex
	buildMemo = map[uint64]*buildEntry{}
)

type buildEntry struct {
	once sync.Once
	prog *asm.Program
	err  error
}

// Build assembles the workload into a program image. Builds are memoized
// per process, keyed by Fingerprint: identical sources are assembled once,
// and every caller shares the same read-only *asm.Program (which is also
// what lets the simulator share one predecoded instruction table across
// runs). Callers must not mutate the returned program.
func (w Workload) Build() (*asm.Program, error) {
	key := w.Fingerprint()
	buildMu.Lock()
	e := buildMemo[key]
	if e == nil {
		e = new(buildEntry)
		buildMemo[key] = e
	}
	buildMu.Unlock()
	e.once.Do(func() {
		srcs := append([]string{w.prologueSrc()}, w.Sources...)
		var p *asm.Program
		var err error
		if w.ISA == ISARV32 {
			p, err = asm.AssembleRV32(srcs...)
		} else {
			p, err = asm.Assemble(srcs...)
		}
		if err != nil {
			e.err = fmt.Errorf("workload %s: %w", w.Name, err)
			return
		}
		e.prog = p
	})
	return e.prog, e.err
}

// Run assembles and executes the workload with the given event sinks (either
// may be nil) and validates the result. It returns the CPU for inspection.
func Run(w Workload, fetch trace.FetchSink, data trace.DataSink) (*sim.CPU, error) {
	return RunPacketContext(context.Background(), w, fetch, data, 0)
}

// RunPacket is Run with an explicit fetch-packet size (0 = the default
// 8-byte VLIW packet); used by the fetch-width ablation.
func RunPacket(w Workload, fetch trace.FetchSink, data trace.DataSink, packetBytes uint32) (*sim.CPU, error) {
	return RunPacketContext(context.Background(), w, fetch, data, packetBytes)
}

// RunPacketContext is the most general runner: explicit context and
// fetch-packet size.
func RunPacketContext(ctx context.Context, w Workload, fetch trace.FetchSink, data trace.DataSink, packetBytes uint32) (*sim.CPU, error) {
	p, err := w.Build()
	if err != nil {
		return nil, err
	}
	max := w.MaxInstrs
	if max == 0 {
		max = DefaultMaxInstrs
	}
	if w.ISA == ISARV32 {
		c := sim.NewRV32()
		c.Fetch, c.Data = fetch, data
		c.PacketBytes = packetBytes
		c.LoadProgram(p, StackTop)
		if err := c.RunContext(ctx, max); err != nil {
			return nil, fmt.Errorf("workload %s: %w", w.Name, err)
		}
		view := c.AsCPU()
		if w.Check != nil {
			if err := w.Check(view, p); err != nil {
				return nil, fmt.Errorf("workload %s: %w", w.Name, err)
			}
		}
		return view, nil
	}
	c := sim.New()
	c.Fetch, c.Data = fetch, data
	c.PacketBytes = packetBytes
	c.LoadProgram(p, StackTop)
	if err := c.RunContext(ctx, max); err != nil {
		return nil, fmt.Errorf("workload %s: %w", w.Name, err)
	}
	if w.Check != nil {
		if err := w.Check(c, p); err != nil {
			return nil, fmt.Errorf("workload %s: %w", w.Name, err)
		}
	}
	return c, nil
}

// All returns the seven benchmarks in the order the paper's figures use.
func All() []Workload {
	return []Workload{
		DCT(), FFT(), Dhrystone(), Whetstone(), Compress(), JPEGEnc(), MPEG2Enc(),
	}
}

// ByName finds a workload by its figure label, compiles a synthetic
// spec ("synth:pchase,fp=64KiB,seed=7"; see internal/synth) into one, or
// resolves an "rv32:" prefixed name ("rv32:DCT", "rv32:synth:...") to the
// RV32 port of the kernel.
func ByName(name string) (Workload, error) {
	if synth.IsSpec(name) {
		sp, err := synth.ParseSpec(name)
		if err != nil {
			return Workload{}, fmt.Errorf("workloads: %w", err)
		}
		return FromSpec(sp)
	}
	if rest, ok := strings.CutPrefix(name, RV32Prefix); ok {
		if synth.IsSpec(rest) {
			sp, err := synth.ParseSpec(rest)
			if err != nil {
				return Workload{}, fmt.Errorf("workloads: %w", err)
			}
			return FromSpecRV32(sp)
		}
		names := make([]string, 0, len(RV32All()))
		for _, w := range RV32All() {
			if strings.EqualFold(w.Name, name) {
				return w, nil
			}
			names = append(names, w.Name)
		}
		sort.Strings(names)
		return Workload{}, fmt.Errorf("workloads: unknown RV32 benchmark %q (valid: %s; or %ssynth:...)",
			name, strings.Join(names, ", "), RV32Prefix)
	}
	names := make([]string, 0, 7)
	for _, w := range All() {
		if strings.EqualFold(w.Name, name) {
			return w, nil
		}
		names = append(names, w.Name)
	}
	sort.Strings(names)
	return Workload{}, fmt.Errorf("workloads: unknown benchmark %q (valid: %s; or a synthetic spec: %s)",
		name, strings.Join(names, ", "), synth.SpecSyntax())
}

// --- assembly data-emission helpers ---

func dirWords(label string, vals []int32) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s:\n", label)
	for i := 0; i < len(vals); i += 8 {
		end := min(i+8, len(vals))
		b.WriteString("\t.word ")
		for j := i; j < end; j++ {
			if j > i {
				b.WriteString(", ")
			}
			fmt.Fprintf(&b, "%d", vals[j])
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func dirHalves(label string, vals []int16) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s:\n", label)
	for i := 0; i < len(vals); i += 12 {
		end := min(i+12, len(vals))
		b.WriteString("\t.half ")
		for j := i; j < end; j++ {
			if j > i {
				b.WriteString(", ")
			}
			fmt.Fprintf(&b, "%d", vals[j])
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func dirBytes(label string, vals []byte) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s:\n", label)
	for i := 0; i < len(vals); i += 16 {
		end := min(i+16, len(vals))
		b.WriteString("\t.byte ")
		for j := i; j < end; j++ {
			if j > i {
				b.WriteString(", ")
			}
			fmt.Fprintf(&b, "%d", vals[j])
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func dirDoubles(label string, vals []float64) string {
	var b strings.Builder
	fmt.Fprintf(&b, "\t.align 8\n%s:\n", label)
	for _, v := range vals {
		fmt.Fprintf(&b, "\t.double %.17g\n", v)
	}
	return b.String()
}

// xorshift32 is the deterministic PRNG used to generate inputs; the Go
// references use the same sequence.
type xorshift32 uint32

func (x *xorshift32) next() uint32 {
	v := uint32(*x)
	v ^= v << 13
	v ^= v >> 17
	v ^= v << 5
	*x = xorshift32(v)
	return v
}
