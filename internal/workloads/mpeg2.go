package workloads

import (
	"encoding/binary"
	"fmt"

	"waymemo/internal/asm"
	"waymemo/internal/sim"
)

// MPEG2Enc: the encoder's inner loop — full-search motion estimation (±3,
// SAD over 16x16 macroblocks) between two 64x64 frames, followed by the
// residual's 8x8 forward DCT and uniform quantization. Per macroblock the
// output stream holds the motion vector, the best SAD and the four
// quantized coefficient blocks.

const mpeg2Repeats = 2
const mpeg2Search = 3

func mpeg2Frames() (ref, cur []byte) {
	ref = make([]byte, 64*64)
	cur = make([]byte, 64*64)
	rng := xorshift32(0x5EED)
	for i := range ref {
		x, y := i%64, i/64
		ref[i] = byte(64 + x*2 + y + int(rng.next()%32))
	}
	clamp := func(v int) int {
		if v < 0 {
			return 0
		}
		if v > 63 {
			return 63
		}
		return v
	}
	// The current frame is the reference shifted by (+2,+1) plus noise, so
	// the search finds consistent motion vectors.
	for y := 0; y < 64; y++ {
		for x := 0; x < 64; x++ {
			cur[y*64+x] = ref[clamp(y+1)*64+clamp(x+2)] + byte(rng.next()%4)
		}
	}
	return ref, cur
}

// mpeg2Ref is the bit-exact reference.
func mpeg2Ref(ref, cur []byte, c []int16) []byte {
	var out []byte
	emit16 := func(v uint16) { out = binary.LittleEndian.AppendUint16(out, v) }
	emit32 := func(v uint32) { out = binary.LittleEndian.AppendUint32(out, v) }
	var res [256]int16
	var tmp [64]int32
	for mby := 0; mby < 4; mby++ {
		for mbx := 0; mbx < 4; mbx++ {
			best, bdx, bdy := int32(0x7FFFFFFF), int32(0), int32(0)
			for dy := -mpeg2Search; dy <= mpeg2Search; dy++ {
				y := mby*16 + dy
				if y < 0 || y > 48 {
					continue
				}
				for dx := -mpeg2Search; dx <= mpeg2Search; dx++ {
					x := mbx*16 + dx
					if x < 0 || x > 48 {
						continue
					}
					var sad int32
					for r := 0; r < 16; r++ {
						for q := 0; q < 16; q++ {
							d := int32(cur[(mby*16+r)*64+mbx*16+q]) - int32(ref[(y+r)*64+x+q])
							if d < 0 {
								d = -d
							}
							sad += d
						}
					}
					if sad < best {
						best, bdx, bdy = sad, int32(dx), int32(dy)
					}
				}
			}
			emit16(uint16(bdx))
			emit16(uint16(bdy))
			emit32(uint32(best))
			for r := 0; r < 16; r++ {
				for q := 0; q < 16; q++ {
					res[r*16+q] = int16(int32(cur[(mby*16+r)*64+mbx*16+q]) -
						int32(ref[(mby*16+int(bdy)+r)*64+mbx*16+int(bdx)+q]))
				}
			}
			for sb := 0; sb < 4; sb++ {
				row, col := (sb>>1)*8, (sb&1)*8
				for u := 0; u < 8; u++ {
					for x := 0; x < 8; x++ {
						var sum int32
						for k := 0; k < 8; k++ {
							sum += int32(c[u*8+k]) * int32(res[(row+k)*16+col+x])
						}
						tmp[u*8+x] = (sum + 4096) >> 13
					}
				}
				for u := 0; u < 8; u++ {
					for v := 0; v < 8; v++ {
						var sum int32
						for k := 0; k < 8; k++ {
							sum += tmp[u*8+k] * int32(c[v*8+k])
						}
						coef := int32(int16((sum + 4096) >> 13))
						emit16(uint16(int16(coef / 16)))
					}
				}
			}
		}
	}
	return out
}

const mpeg2Code = `
main:	push ra
	li   s9, 2             ; repeats
p_rep:	la   s6, mpgOut
	li   s0, 0             ; mby
p_by:	li   s1, 0             ; mbx
p_bx:	li   s2, 0x7FFFFFFF    ; best SAD
	li   s3, 0             ; best dx
	li   s4, 0             ; best dy
	li   s5, -3            ; dy
p_dy:	sll  t0, s0, 4
	add  t0, t0, s5
	bltz t0, p_dyn
	li   t9, 48
	bgt  t0, t9, p_dyn
	li   s7, -3            ; dx
p_dx:	sll  t1, s1, 4
	add  t1, t1, s7
	bltz t1, p_dxn
	li   t9, 48
	bgt  t1, t9, p_dxn
	sll  t2, s0, 10        ; cur MB base: mby*1024 + mbx*16
	sll  t3, s1, 4
	add  t2, t2, t3
	la   a0, mpgCur
	add  a0, a0, t2
	sll  t2, t0, 6         ; ref candidate base: y*64 + x
	add  t2, t2, t1
	la   a1, mpgRef
	add  a1, a1, t2
	jal  msad
	bge  v0, s2, p_nb
	move s2, v0
	move s3, s7
	move s4, s5
p_nb:
p_dxn:	addi s7, s7, 1
	li   t9, 3
	ble  s7, t9, p_dx
p_dyn:	addi s5, s5, 1
	li   t9, 3
	ble  s5, t9, p_dy
	sh   s3, 0(s6)         ; motion vector and SAD
	sh   s4, 2(s6)
	sw   s2, 4(s6)
	addi s6, s6, 8
	sll  t0, s0, 4         ; residual against the best candidate
	add  t0, t0, s4
	sll  t1, s1, 4
	add  t1, t1, s3
	sll  t2, t0, 6
	add  t2, t2, t1
	la   a1, mpgRef
	add  a1, a1, t2
	sll  t2, s0, 10
	sll  t3, s1, 4
	add  t2, t2, t3
	la   a0, mpgCur
	add  a0, a0, t2
	jal  mres
	li   s7, 0             ; sub-block
p_sb:	la   a0, mpgRes
	sra  t0, s7, 1
	sll  t0, t0, 8         ; (sb>>1) * 8 rows * 32 bytes
	add  a0, a0, t0
	andi t1, s7, 1
	sll  t1, t1, 4
	add  a0, a0, t1
	jal  mdct
	jal  mquant
	addi s7, s7, 1
	li   t9, 4
	blt  s7, t9, p_sb
	addi s1, s1, 1
	li   t9, 4
	blt  s1, t9, p_bx
	addi s0, s0, 1
	li   t9, 4
	blt  s0, t9, p_by
	la   t0, mpgOut
	sub  t1, s6, t0
	la   t2, mpgLen
	sw   t1, 0(t2)
	addi s9, s9, -1
	bnez s9, p_rep
	pop  ra
	ret

; msad(a0 = cur 16x16 stride 64, a1 = ref candidate) -> v0
msad:	li   v0, 0
	li   t2, 16
ms_r:	li   t3, 16
ms_c:	lbu  t4, 0(a0)
	lbu  t5, 0(a1)
	sub  t6, t4, t5
	bgez t6, ms_p
	neg  t6, t6
ms_p:	add  v0, v0, t6
	addi a0, a0, 1
	addi a1, a1, 1
	addi t3, t3, -1
	bnez t3, ms_c
	addi a0, a0, 48
	addi a1, a1, 48
	addi t2, t2, -1
	bnez t2, ms_r
	ret

; mres(a0 = cur MB, a1 = best ref): mpgRes[16][16] halves = cur - ref
mres:	la   t0, mpgRes
	li   t2, 16
mr_r:	li   t3, 16
mr_c:	lbu  t4, 0(a0)
	lbu  t5, 0(a1)
	sub  t6, t4, t5
	sh   t6, 0(t0)
	addi a0, a0, 1
	addi a1, a1, 1
	addi t0, t0, 2
	addi t3, t3, -1
	bnez t3, mr_c
	addi a0, a0, 48
	addi a1, a1, 48
	addi t2, t2, -1
	bnez t2, mr_r
	ret

; mdct(a0 = 8x8 halves sub-block of mpgRes, row stride 32B) -> mpgCoef
mdct:	la   v0, mpgC
	la   v1, mpgTmp
	li   t0, 0
q1_u:	li   t1, 0
q1_x:	li   t3, 0
	li   t2, 0
	sll  t4, t0, 4
	add  t4, v0, t4
	sll  t5, t1, 1
	add  t5, a0, t5
q1_k:	lh   t6, 0(t4)
	lh   t7, 0(t5)
	mul  t8, t6, t7
	add  t3, t3, t8
	addi t4, t4, 2
	addi t5, t5, 32
	addi t2, t2, 1
	li   t9, 8
	blt  t2, t9, q1_k
	addi t3, t3, 4096
	sra  t3, t3, 13
	sll  t6, t0, 5
	sll  t7, t1, 2
	add  t6, t6, t7
	add  t6, v1, t6
	sw   t3, 0(t6)
	addi t1, t1, 1
	li   t9, 8
	blt  t1, t9, q1_x
	addi t0, t0, 1
	li   t9, 8
	blt  t0, t9, q1_u
	li   t0, 0
q2_u:	li   t1, 0
q2_v:	li   t3, 0
	li   t2, 0
	sll  t4, t0, 5
	add  t4, v1, t4
	sll  t5, t1, 4
	add  t5, v0, t5
q2_k:	lw   t6, 0(t4)
	lh   t7, 0(t5)
	mul  t8, t6, t7
	add  t3, t3, t8
	addi t4, t4, 4
	addi t5, t5, 2
	addi t2, t2, 1
	li   t9, 8
	blt  t2, t9, q2_k
	addi t3, t3, 4096
	sra  t3, t3, 13
	la   t5, mpgCoef
	sll  t6, t0, 4
	sll  t7, t1, 1
	add  t6, t6, t7
	add  t6, t5, t6
	sh   t3, 0(t6)
	addi t1, t1, 1
	li   t9, 8
	blt  t1, t9, q2_v
	addi t0, t0, 1
	li   t9, 8
	blt  t0, t9, q2_u
	ret

; mquant: append mpgCoef / 16 (64 halves) at s6
mquant:	la   t0, mpgCoef
	li   t3, 64
	li   t5, 16
mq_l:	lh   t4, 0(t0)
	div  t6, t4, t5
	sh   t6, 0(s6)
	addi t0, t0, 2
	addi s6, s6, 2
	addi t3, t3, -1
	bnez t3, mq_l
	ret
`

// MPEG2Enc builds the benchmark.
func MPEG2Enc() Workload {
	ref, cur := mpeg2Frames()
	coeffs := dctCoeffs()
	want := mpeg2Ref(ref, cur, coeffs)
	data := "\t.org DATA\n" +
		dirBytes("mpgRef", ref) +
		dirBytes("mpgCur", cur) +
		"\t.align 4\n" + dirHalves("mpgC", coeffs) +
		"\t.align 4\nmpgTmp:\t.space 256\n" +
		"mpgCoef:\t.space 128\n" +
		"mpgRes:\t.space 512\n" +
		"mpgLen:\t.space 4\n" +
		"mpgOut:\t.space 16384\n"
	return Workload{
		Name:    "mpeg2enc",
		Sources: []string{mpeg2Code, data},
		Check: func(c *sim.CPU, p *asm.Program) error {
			n := c.Mem.ReadWord(p.Symbols["mpgLen"])
			if int(n) != len(want) {
				return fmt.Errorf("stream length %d, want %d", n, len(want))
			}
			got := c.Mem.ReadRange(p.Symbols["mpgOut"], int(n))
			for i := range want {
				if got[i] != want[i] {
					return fmt.Errorf("stream[%d] = %#x, want %#x", i, got[i], want[i])
				}
			}
			return nil
		},
	}
}
