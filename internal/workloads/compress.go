package workloads

import (
	"encoding/binary"
	"fmt"

	"waymemo/internal/asm"
	"waymemo/internal/sim"
)

// Compress: LZW compression (the algorithm of the classic UNIX compress)
// with 12-bit codes and an open-addressing hash dictionary. Codes are
// emitted as 16-bit units. The dictionary spans 48KB, so unlike the media
// kernels this benchmark has a working set bigger than the D-cache —
// matching compress's weaker locality in the paper's figures.

const (
	lzwInLen     = 6144
	lzwTableSize = 8192
	lzwMaxCodes  = 4096
	lzwRepeats   = 8
)

func lzwInput() []byte {
	vocab := []string{
		"the", "quick", "brown", "fox", "jumps", "over", "lazy", "dog",
		"cache", "memory", "address", "buffer", "power", "tag", "way",
		"processor", "energy", "access", "line", "set", "associative",
		"memoization", "displacement", "register",
	}
	rng := xorshift32(0xC0FFEE)
	out := make([]byte, 0, lzwInLen)
	for len(out) < lzwInLen {
		w := vocab[rng.next()%uint32(len(vocab))]
		out = append(out, w...)
		out = append(out, ' ')
	}
	return out[:lzwInLen]
}

// lzwRef is the bit-exact reference of the assembly algorithm.
func lzwRef(in []byte) []uint16 {
	keys := make([]int32, lzwTableSize)
	codes := make([]uint16, lzwTableSize)
	var out []uint16
	prefix := int32(in[0])
	next := int32(256)
	for i := 1; i < len(in); i++ {
		ch := int32(in[i])
		k := prefix<<8 + ch + 1
		h := (ch<<6 ^ prefix*31) & (lzwTableSize - 1)
		for {
			if keys[h] == k {
				prefix = int32(codes[h])
				break
			}
			if keys[h] == 0 {
				out = append(out, uint16(prefix))
				if next < lzwMaxCodes {
					keys[h] = k
					codes[h] = uint16(next)
					next++
				}
				prefix = ch
				break
			}
			h = (h + 1) & (lzwTableSize - 1)
		}
	}
	out = append(out, uint16(prefix))
	return out
}

const lzwCode = `
main:	push ra
	li   s9, 8             ; repeats (dictionary rebuilt each time)
c_rep:	jal  lzw_reset
	jal  lzw_compress
	addi s9, s9, -1
	bnez s9, c_rep
	pop  ra
	ret

lzw_reset:                     ; clear the key table
	la   t0, lzwKeys
	li   t1, 8192
cr_l:	sw   zero, 0(t0)
	addi t0, t0, 4
	addi t1, t1, -1
	bnez t1, cr_l
	ret

lzw_compress:
	la   s0, lzwIn
	li   s1, 6144
	lbu  s2, 0(s0)         ; prefix = first byte
	addi s0, s0, 1
	addi s1, s1, -1
	li   s3, 256           ; next code
	la   s4, lzwOut
cc_loop:
	beqz s1, cc_done
	lbu  t0, 0(s0)         ; ch
	addi s0, s0, 1
	addi s1, s1, -1
	sll  t1, s2, 8         ; k = prefix<<8 + ch + 1
	add  t1, t1, t0
	addi t1, t1, 1
	sll  t2, t0, 6         ; h = (ch<<6 ^ prefix*31) & 8191
	li   t3, 31
	mul  t4, s2, t3
	xor  t2, t2, t4
	andi t2, t2, 8191
cc_probe:
	la   t5, lzwKeys
	sll  t6, t2, 2
	add  t5, t5, t6
	lw   t7, 0(t5)
	beq  t7, t1, cc_found
	beqz t7, cc_insert
	addi t2, t2, 1
	andi t2, t2, 8191
	b    cc_probe
cc_found:
	la   t5, lzwCodes      ; prefix = codes[h]
	sll  t6, t2, 1
	add  t5, t5, t6
	lhu  s2, 0(t5)
	b    cc_loop
cc_insert:
	sh   s2, 0(s4)         ; emit prefix
	addi s4, s4, 2
	li   t6, 4096
	bge  s3, t6, cc_full
	sw   t1, 0(t5)         ; keys[h] = k (t5 still points at the slot)
	la   t6, lzwCodes
	sll  t7, t2, 1
	add  t6, t6, t7
	sh   s3, 0(t6)         ; codes[h] = next
	addi s3, s3, 1
cc_full:
	move s2, t0            ; prefix = ch
	b    cc_loop
cc_done:
	sh   s2, 0(s4)         ; flush final prefix
	addi s4, s4, 2
	la   t0, lzwOut        ; record output length in bytes
	sub  t1, s4, t0
	la   t2, lzwLen
	sw   t1, 0(t2)
	ret
`

// Compress builds the benchmark.
func Compress() Workload {
	in := lzwInput()
	want := lzwRef(in)
	data := "\t.org DATA\n" +
		dirBytes("lzwIn", in) +
		"\t.align 4\nlzwLen:\t.space 4\n" +
		"lzwOut:\t.space 16384\n" +
		"lzwKeys:\t.space 32768\n" +
		"lzwCodes:\t.space 16384\n"
	return Workload{
		Name:    "compress",
		Sources: []string{lzwCode, data},
		Check: func(c *sim.CPU, p *asm.Program) error {
			n := c.Mem.ReadWord(p.Symbols["lzwLen"])
			if int(n) != len(want)*2 {
				return fmt.Errorf("output length %d bytes, want %d", n, len(want)*2)
			}
			if len(want)*2 >= lzwInLen {
				return fmt.Errorf("no compression achieved (%d codes for %d bytes)", len(want), lzwInLen)
			}
			got := c.Mem.ReadRange(p.Symbols["lzwOut"], int(n))
			for i, w := range want {
				if g := binary.LittleEndian.Uint16(got[2*i:]); g != w {
					return fmt.Errorf("code[%d] = %d, want %d", i, g, w)
				}
			}
			return nil
		},
	}
}
