package workloads

import (
	"encoding/binary"
	"fmt"

	"waymemo/internal/asm"
	"waymemo/internal/sim"
)

// Dhrystone: a faithful miniature of the classic integer benchmark — global
// variables, array updates through small procedures, a record copy and a
// string comparison per iteration, all through real call/return flow.

const (
	dhryIters    = 4000
	dhryArr1Len  = 80 // words
	dhryArr2Rows = 57 // rows of 40 words
	dhryArr2Cols = 40
)

var dhryStr1 = dhryPad("DHRYSTONE PROGRAM, SOME STRING")
var dhryStr2 = dhryPad("DHRYSTONE PROGRAM, S1ME STRING")

func dhryPad(s string) []byte {
	b := make([]byte, 32)
	copy(b, s)
	return b
}

func dhryRecInit() []int32 {
	rec := make([]int32, 12)
	rec[0], rec[1] = 1, 2
	rng := xorshift32(0xD0D0)
	for i := 2; i < 12; i++ {
		rec[i] = int32(rng.next() % 1000)
	}
	return rec
}

// dhryState is the Go reference state.
type dhryState struct {
	arr1    [dhryArr1Len]int32
	arr2    [dhryArr2Rows * dhryArr2Cols]int32
	recA    [12]int32
	recB    [12]int32
	intGlob int32
	bool_   int32
	char_   int32
	check   uint32
}

func dhryStrcmp(a, b []byte) int32 {
	for k := 0; k < 31; k++ {
		if d := int32(a[k]) - int32(b[k]); d != 0 {
			return d
		}
		// note: compares up to 31 bytes like the assembly loop
	}
	return 0
}

func dhryRef() *dhryState {
	st := &dhryState{}
	copy(st.recA[:], dhryRecInit())
	for i := int32(1); i <= dhryIters; i++ {
		st.intGlob = i
		st.char_ = 65
		if dhryStrcmp(dhryStr1, dhryStr2) > 0 {
			st.intGlob += 7
		} else {
			st.intGlob += 3
		}
		v := i + 10 + st.intGlob
		loc := (i & 31) + 5
		// Proc8
		st.arr1[loc] = v
		st.arr1[loc+1] = st.arr1[loc]
		st.arr1[loc+30] = loc
		row := loc * dhryArr2Cols
		st.arr2[row+loc] = loc
		st.arr2[row+loc+1] = loc
		st.arr2[row+loc-1]++
		st.arr2[row+20*dhryArr2Cols+loc] = st.arr1[loc]
		st.intGlob = 5 + v%17
		// Proc1: record copy and updates
		st.recB = st.recA
		st.recB[0] = i
		st.recB[1] = st.intGlob & 3
		st.recA[0] = st.recB[0] + 2
		// BoolGlob
		if st.arr1[loc+1] > v {
			st.bool_ = 1
		} else {
			st.bool_ = 0
		}
	}
	// Checksum pass.
	var c uint32
	for _, w := range st.arr1 {
		c = c*31 + uint32(w)
	}
	for _, w := range st.arr2 {
		c = c*31 + uint32(w)
	}
	c += uint32(st.intGlob) + uint32(st.bool_) + uint32(st.char_)
	c += uint32(st.recA[0]) + uint32(st.recB[0])
	st.check = c
	return st
}

const dhryCode = `
main:	push ra
	li   s0, 1             ; i
	li   s8, 4000          ; iterations
d_loop:	la   t0, dhryGlob      ; IntGlob = i; CharGlob = 'A'
	sw   s0, 0(t0)
	li   t1, 65
	sw   t1, 8(t0)
	la   a0, dhryStr1
	la   a1, dhryStr2
	jal  dstrcmp
	la   t0, dhryGlob
	lw   t1, 0(t0)
	blez v0, d_cmp3
	addi t1, t1, 7
	b    d_cmpd
d_cmp3:	addi t1, t1, 3
d_cmpd:	sw   t1, 0(t0)
	add  s2, s0, t1        ; v = i + 10 + IntGlob
	addi s2, s2, 10
	andi s3, s0, 31        ; loc = (i & 31) + 5
	addi s3, s3, 5
	move a0, s3
	move a1, s2
	jal  dproc8
	move a0, s0
	jal  dproc1
	la   t0, dhryArr1      ; BoolGlob = Arr1[loc+1] > v
	sll  t1, s3, 2
	add  t0, t0, t1
	lw   t2, 4(t0)
	slt  t3, s2, t2
	la   t0, dhryGlob
	sw   t3, 4(t0)
	addi s0, s0, 1
	ble  s0, s8, d_loop
	jal  dchecksum
	pop  ra
	ret

; dstrcmp(a0, a1) -> v0: first byte difference within 31 bytes
dstrcmp:
	li   t2, 0
dsc_l:	lbu  t0, 0(a0)
	lbu  t1, 0(a1)
	sub  v0, t0, t1
	bnez v0, dsc_r
	addi a0, a0, 1
	addi a1, a1, 1
	addi t2, t2, 1
	li   t9, 31
	blt  t2, t9, dsc_l
	li   v0, 0
dsc_r:	ret

; dproc8(a0 = loc, a1 = v): the array-update procedure
dproc8:	la   t0, dhryArr1
	sll  t1, a0, 2
	add  t1, t0, t1
	sw   a1, 0(t1)         ; Arr1[loc] = v
	sw   a1, 4(t1)         ; Arr1[loc+1] = Arr1[loc]
	sw   a0, 120(t1)       ; Arr1[loc+30] = loc
	la   t2, dhryArr2
	li   t3, 160
	mul  t4, a0, t3
	add  t2, t2, t4        ; &Arr2[loc][0]
	sll  t5, a0, 2
	add  t5, t2, t5        ; &Arr2[loc][loc]
	sw   a0, 0(t5)
	sw   a0, 4(t5)
	lw   t6, -4(t5)
	addi t6, t6, 1
	sw   t6, -4(t5)
	addi t2, t2, 3200      ; &Arr2[loc+20][0]
	sll  t5, a0, 2
	add  t5, t2, t5
	sw   a1, 0(t5)         ; Arr2[loc+20][loc] = Arr1[loc]
	li   t3, 17            ; IntGlob = 5 + v % 17
	rem  t4, a1, t3
	addi t4, t4, 5
	la   t0, dhryGlob
	sw   t4, 0(t0)
	ret

; dproc1(a0 = i): RecB <- RecA word copy, then field updates
dproc1:	la   t0, dhryRecA
	la   t1, dhryRecB
	li   t2, 12
dp1_c:	lw   t3, 0(t0)
	sw   t3, 0(t1)
	addi t0, t0, 4
	addi t1, t1, 4
	addi t2, t2, -1
	bnez t2, dp1_c
	la   t0, dhryRecA
	la   t1, dhryRecB
	sw   a0, 0(t1)         ; RecB.int = i
	la   t2, dhryGlob
	lw   t3, 0(t2)
	andi t3, t3, 3
	sw   t3, 4(t1)         ; RecB.enum = IntGlob & 3
	addi t4, a0, 2
	sw   t4, 0(t0)         ; RecA.int = i + 2
	ret

; dchecksum: fold all mutable state into dhryCheck
dchecksum:
	li   v0, 0
	la   t0, dhryArr1
	li   t1, 80
	li   t3, 31
dck_1:	lw   t2, 0(t0)
	mul  v0, v0, t3
	add  v0, v0, t2
	addi t0, t0, 4
	addi t1, t1, -1
	bnez t1, dck_1
	la   t0, dhryArr2
	li   t1, 2280
dck_2:	lw   t2, 0(t0)
	mul  v0, v0, t3
	add  v0, v0, t2
	addi t0, t0, 4
	addi t1, t1, -1
	bnez t1, dck_2
	la   t0, dhryGlob
	lw   t2, 0(t0)
	add  v0, v0, t2
	lw   t2, 4(t0)
	add  v0, v0, t2
	lw   t2, 8(t0)
	add  v0, v0, t2
	la   t1, dhryRecA
	lw   t2, 0(t1)
	add  v0, v0, t2
	la   t1, dhryRecB
	lw   t2, 0(t1)
	add  v0, v0, t2
	la   t1, dhryCheck
	sw   v0, 0(t1)
	ret
`

// Dhrystone builds the benchmark.
func Dhrystone() Workload {
	data := "\t.org DATA\n" +
		"dhryGlob:\t.space 16\n" +
		dirBytes("dhryStr1", dhryStr1) +
		dirBytes("dhryStr2", dhryStr2) +
		"\t.align 4\ndhryArr1:\t.space 320\n" +
		"dhryArr2:\t.space 9120\n" +
		dirWords("dhryRecA", dhryRecInit()) +
		"dhryRecB:\t.space 48\n" +
		"dhryCheck:\t.space 4\n"
	want := dhryRef()
	return Workload{
		Name:    "dhrystone",
		Sources: []string{dhryCode, data},
		Check: func(c *sim.CPU, p *asm.Program) error {
			rd32 := func(sym string, idx int) int32 {
				return int32(c.Mem.ReadWord(p.Symbols[sym] + uint32(4*idx)))
			}
			for i, w := range want.arr1 {
				if got := rd32("dhryArr1", i); got != w {
					return fmt.Errorf("arr1[%d] = %d, want %d", i, got, w)
				}
			}
			for i, w := range want.arr2 {
				if got := rd32("dhryArr2", i); got != w {
					return fmt.Errorf("arr2[%d] = %d, want %d", i, got, w)
				}
			}
			if got := rd32("dhryRecA", 0); got != want.recA[0] {
				return fmt.Errorf("recA.int = %d, want %d", got, want.recA[0])
			}
			for i := range want.recB {
				if got := rd32("dhryRecB", i); got != want.recB[i] {
					return fmt.Errorf("recB[%d] = %d, want %d", i, got, want.recB[i])
				}
			}
			gotCheck := binary.LittleEndian.Uint32(c.Mem.ReadRange(p.Symbols["dhryCheck"], 4))
			if gotCheck != want.check {
				return fmt.Errorf("checksum = %#x, want %#x", gotCheck, want.check)
			}
			return nil
		},
	}
}
