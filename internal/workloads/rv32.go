package workloads

// RV32 ports of the paper kernels. Each port is the same algorithm over the
// same data section, validated by the same Go reference Check as its FRVL
// original — the only deltas are the register map (RV32 has t0-t6, so
// FRVL's t7/t8/t9 become a2/a3/a4 and v0/v1 become s10/s11) and the RV32
// shift mnemonics (slli/srai). Together with the rv32:synth:... specs
// (FromSpecRV32), these give the cross-ISA comparison one bit-identical
// ground truth per kernel.

// rv32DCTCode is the RV32 rendering of dctCode: the identical 2-D 8x8
// forward DCT loop nest in Q13 fixed point.
const rv32DCTCode = `
; void main(): DCT of every 8x8 block of the 64x64 image, repeated.
main:	push ra
	li   s9, 2             ; repeats
m_rep:	li   s0, 0             ; by
m_by:	li   s1, 0             ; bx
m_bx:	la   a0, dctImage      ; src = image + by*512 + bx*8
	slli t0, s0, 9
	add  a0, a0, t0
	slli t0, s1, 3
	add  a0, a0, t0
	la   a1, dctOut        ; dst = out + by*1024 + bx*16
	slli t0, s0, 10
	add  a1, a1, t0
	slli t0, s1, 4
	add  a1, a1, t0
	jal  dct_block
	addi s1, s1, 1
	li   a4, 8
	blt  s1, a4, m_bx
	addi s0, s0, 1
	li   a4, 8
	blt  s0, a4, m_by
	addi s9, s9, -1
	bnez s9, m_rep
	pop  ra
	ret

; dct_block(a0 = src bytes stride 64, a1 = dst int16 stride 128B)
dct_block:
	la   s10, dctC
	la   s11, dctTmp
	li   a5, 4096          ; Q13 rounding bias (exceeds the 12-bit addi range)
	; pass 1: tmp = C * (X - 128)
	li   t0, 0             ; u
p1_u:	li   t1, 0             ; x
p1_x:	li   t3, 0             ; sum
	li   t2, 0             ; k
	slli t4, t0, 4         ; &C[u][0]
	add  t4, s10, t4
	add  t5, a0, t1        ; &X[0][x]
p1_k:	lh   t6, 0(t4)
	lbu  a2, 0(t5)
	addi a2, a2, -128
	mul  a3, t6, a2
	add  t3, t3, a3
	addi t4, t4, 2
	addi t5, t5, 64
	addi t2, t2, 1
	li   a4, 8
	blt  t2, a4, p1_k
	add  t3, t3, a5
	srai t3, t3, 13
	slli t6, t0, 5         ; tmp[u*8+x]
	slli a2, t1, 2
	add  t6, t6, a2
	add  t6, s11, t6
	sw   t3, 0(t6)
	addi t1, t1, 1
	li   a4, 8
	blt  t1, a4, p1_x
	addi t0, t0, 1
	li   a4, 8
	blt  t0, a4, p1_u
	; pass 2: out = tmp * C^T
	li   t0, 0             ; u
p2_u:	li   t1, 0             ; v
p2_v:	li   t3, 0
	li   t2, 0
	slli t4, t0, 5         ; &tmp[u][0]
	add  t4, s11, t4
	slli t5, t1, 4         ; &C[v][0]
	add  t5, s10, t5
p2_k:	lw   t6, 0(t4)
	lh   a2, 0(t5)
	mul  a3, t6, a2
	add  t3, t3, a3
	addi t4, t4, 4
	addi t5, t5, 2
	addi t2, t2, 1
	li   a4, 8
	blt  t2, a4, p2_k
	add  t3, t3, a5
	srai t3, t3, 13
	slli t6, t0, 7         ; dst + u*128 + v*2
	slli a2, t1, 1
	add  t6, t6, a2
	add  t6, a1, t6
	sh   t3, 0(t6)
	addi t1, t1, 1
	li   a4, 8
	blt  t1, a4, p2_v
	addi t0, t0, 1
	li   a4, 8
	blt  t0, a4, p2_u
	ret
`

// RV32DCT builds the RV32 port of the DCT benchmark, sharing data section
// and reference Check with DCT().
func RV32DCT() Workload {
	data, check := dctParts()
	return Workload{
		Name:    RV32Prefix + "DCT",
		ISA:     ISARV32,
		Sources: []string{rv32DCTCode, data},
		Check:   check,
	}
}

// RV32All returns the named RV32 kernel ports. Synthetic rv32 workloads are
// unbounded (any "rv32:synth:..." spec) and are not listed here.
func RV32All() []Workload {
	return []Workload{RV32DCT()}
}
