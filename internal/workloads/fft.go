package workloads

import (
	"encoding/binary"
	"fmt"
	"math"

	"waymemo/internal/asm"
	"waymemo/internal/sim"
)

// FFT: 1024-point radix-2 decimation-in-time complex FFT, fixed point with
// Q14 twiddles and per-stage scaling, table-driven bit reversal.

const fftN = 1024
const fftRepeats = 4

func fftTwiddles() []int16 {
	w := make([]int16, fftN) // 512 complex pairs
	for k := 0; k < fftN/2; k++ {
		ang := 2 * math.Pi * float64(k) / fftN
		w[2*k] = int16(math.Round(math.Cos(ang) * 16384))
		w[2*k+1] = int16(math.Round(-math.Sin(ang) * 16384))
	}
	return w
}

func fftRevTable() []int16 {
	rev := make([]int16, fftN)
	for i := 0; i < fftN; i++ {
		r := 0
		for b := 0; b < 10; b++ {
			r = r<<1 | (i >> b & 1)
		}
		rev[i] = int16(r)
	}
	return rev
}

func fftInput() []int16 {
	in := make([]int16, 2*fftN)
	rng := xorshift32(0xBEEF)
	for i := range in {
		in[i] = int16(rng.next()%8192) - 4096
	}
	return in
}

// fftRef performs the identical fixed-point computation in Go.
func fftRef(in, w, rev []int16) []int16 {
	x := make([]int16, len(in))
	copy(x, in)
	for i := 0; i < fftN; i++ {
		r := int(uint16(rev[i]))
		if r > i {
			x[2*i], x[2*r] = x[2*r], x[2*i]
			x[2*i+1], x[2*r+1] = x[2*r+1], x[2*i+1]
		}
	}
	for l := 2; l <= fftN; l <<= 1 {
		half, step := l/2, fftN/l
		for base := 0; base < fftN; base += l {
			k := 0
			for j := 0; j < half; j++ {
				ai := (base + j) * 2
				bi := ai + half*2
				bre, bim := int32(x[bi]), int32(x[bi+1])
				wr, wi := int32(w[2*k]), int32(w[2*k+1])
				tr := (bre*wr - bim*wi + 8192) >> 14
				ti := (bre*wi + bim*wr + 8192) >> 14
				are, aim := int32(x[ai]), int32(x[ai+1])
				x[ai] = int16((are + tr) >> 1)
				x[ai+1] = int16((aim + ti) >> 1)
				x[bi] = int16((are - tr) >> 1)
				x[bi+1] = int16((aim - ti) >> 1)
				k += step
			}
		}
	}
	return x
}

const fftCode = `
main:	push ra
	li   s9, 4             ; repeats
f_rep:	la   t0, fftIn         ; copy input into work buffer
	la   t1, fftX
	li   t2, 1024
f_cp:	lw   t3, 0(t0)
	sw   t3, 0(t1)
	addi t0, t0, 4
	addi t1, t1, 4
	addi t2, t2, -1
	bnez t2, f_cp
	jal  fft1024
	addi s9, s9, -1
	bnez s9, f_rep
	pop  ra
	ret

fft1024:
	; table-driven bit-reversal permutation
	la   t0, fftRevT
	la   t1, fftX
	li   t2, 0             ; i
fr_i:	sll  t3, t2, 1
	add  t3, t0, t3
	lhu  t3, 0(t3)         ; r
	ble  t3, t2, fr_nx
	sll  t4, t2, 2
	add  t4, t1, t4
	sll  t5, t3, 2
	add  t5, t1, t5
	lw   t6, 0(t4)
	lw   t7, 0(t5)
	sw   t7, 0(t4)
	sw   t6, 0(t5)
fr_nx:	addi t2, t2, 1
	li   t9, 1024
	blt  t2, t9, fr_i
	; stages
	li   s0, 2             ; len
fs_len:	sra  s1, s0, 1         ; half
	li   t9, 1024
	div  s2, t9, s0        ; twiddle step
	li   s3, 0             ; base
fs_bse:	li   s4, 0             ; j
	li   s5, 0             ; k
fs_j:	add  t0, s3, s4
	sll  t0, t0, 2
	la   t1, fftX
	add  t0, t1, t0        ; &a
	sll  t1, s1, 2
	add  t1, t0, t1        ; &b
	lh   t2, 0(t1)         ; b.re
	lh   t3, 2(t1)         ; b.im
	la   t4, fftW
	sll  t5, s5, 2
	add  t4, t4, t5
	lh   t5, 0(t4)         ; wr
	lh   t6, 2(t4)         ; wi
	mul  t7, t2, t5        ; tr = (b.re*wr - b.im*wi + 8192) >> 14
	mul  t8, t3, t6
	sub  t7, t7, t8
	addi t7, t7, 8192
	sra  t7, t7, 14
	mul  t8, t2, t6        ; ti = (b.re*wi + b.im*wr + 8192) >> 14
	mul  t2, t3, t5
	add  t8, t8, t2
	addi t8, t8, 8192
	sra  t8, t8, 14
	lh   t2, 0(t0)         ; a.re
	lh   t3, 2(t0)         ; a.im
	add  t4, t2, t7        ; scaled butterfly outputs
	sra  t4, t4, 1
	sh   t4, 0(t0)
	add  t4, t3, t8
	sra  t4, t4, 1
	sh   t4, 2(t0)
	sub  t4, t2, t7
	sra  t4, t4, 1
	sh   t4, 0(t1)
	sub  t4, t3, t8
	sra  t4, t4, 1
	sh   t4, 2(t1)
	add  s5, s5, s2
	addi s4, s4, 1
	blt  s4, s1, fs_j
	add  s3, s3, s0
	li   t9, 1024
	blt  s3, t9, fs_bse
	sll  s0, s0, 1
	li   t9, 1024
	ble  s0, t9, fs_len
	ret
`

// FFT builds the benchmark.
func FFT() Workload {
	in := fftInput()
	w := fftTwiddles()
	rev := fftRevTable()
	data := "\t.org DATA\n" +
		dirHalves("fftIn", in) +
		"\t.align 4\n" + dirHalves("fftW", w) +
		"\t.align 4\n" + dirHalves("fftRevT", rev) +
		"\t.align 4\nfftX:\t.space 4096\n"
	want := fftRef(in, w, rev)
	return Workload{
		Name:    "FFT",
		Sources: []string{fftCode, data},
		Check: func(c *sim.CPU, p *asm.Program) error {
			got := c.Mem.ReadRange(p.Symbols["fftX"], len(want)*2)
			for i, wv := range want {
				g := int16(binary.LittleEndian.Uint16(got[2*i:]))
				if g != wv {
					return fmt.Errorf("fftX[%d] = %d, want %d", i, g, wv)
				}
			}
			return nil
		},
	}
}
