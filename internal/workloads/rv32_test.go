package workloads

import (
	"strings"
	"testing"
)

// Every RV32 kernel port and synthetic pattern must execute to completion
// and validate against the same Go reference its FRVL rendering validates
// against — the bit-exact ground truth the cross-ISA comparison rests on.
func TestRV32WorkloadsValidate(t *testing.T) {
	names := []string{
		"rv32:DCT",
		"rv32:synth:pchase,fp=4KiB,seed=7",
		"rv32:synth:stream,fp=4KiB",
		"rv32:synth:blocked,fp=4KiB",
		"rv32:synth:phase,fp=4KiB",
		"rv32:synth:branchy,fp=4KiB",
		"rv32:synth:hotloop,fp=1KiB,n=2048",
	}
	for _, n := range names {
		ws, err := ExpandByName(n)
		if err != nil {
			t.Fatalf("%s: %v", n, err)
		}
		for _, w := range ws {
			if w.ISA != ISARV32 {
				t.Fatalf("%s: ISA = %q, want %q", w.Name, w.ISA, ISARV32)
			}
			if w.DefaultPacketBytes() != 4 {
				t.Fatalf("%s: default packet = %d, want 4", w.Name, w.DefaultPacketBytes())
			}
			if _, err := Run(w, nil, nil); err != nil {
				t.Fatalf("workload %s: %v", w.Name, err)
			}
		}
	}
}

func TestRV32ByName(t *testing.T) {
	w, err := ByName("rv32:DCT")
	if err != nil || w.Name != "rv32:DCT" || w.ISA != ISARV32 {
		t.Fatalf("ByName(rv32:DCT) = %q/%q, %v", w.Name, w.ISA, err)
	}
	if w, err := ByName("rv32:dct"); err != nil || w.Name != "rv32:DCT" {
		t.Fatalf("case-insensitive lookup = %q, %v", w.Name, err)
	}
	_, err = ByName("rv32:NoSuchKernel")
	if err == nil || !strings.Contains(err.Error(), "rv32:DCT") {
		t.Fatalf("unknown rv32 name error %v must list valid ports", err)
	}
}

// The FRVL and RV32 renderings of the same kernel are distinct workloads
// end to end: different names, different fingerprints (the fingerprint
// feeds build memoization, trace spills and explore keys), different
// default packets.
func TestRV32DistinctFromFRVL(t *testing.T) {
	frvl, err := ByName("DCT")
	if err != nil {
		t.Fatal(err)
	}
	rv, err := ByName("rv32:DCT")
	if err != nil {
		t.Fatal(err)
	}
	if frvl.Fingerprint() == rv.Fingerprint() {
		t.Fatal("FRVL and RV32 DCT share a fingerprint")
	}
	if frvl.DefaultPacketBytes() != 8 || rv.DefaultPacketBytes() != 4 {
		t.Fatalf("default packets = %d/%d, want 8/4",
			frvl.DefaultPacketBytes(), rv.DefaultPacketBytes())
	}

	spec := "synth:pchase,fp=4KiB,seed=7"
	sf, err := ByName(spec)
	if err != nil {
		t.Fatal(err)
	}
	sr, err := ByName(RV32Prefix + spec)
	if err != nil {
		t.Fatal(err)
	}
	if sf.Fingerprint() == sr.Fingerprint() {
		t.Fatal("FRVL and RV32 renderings of one spec share a fingerprint")
	}
	if sr.Name != RV32Prefix+sf.Name || sr.Spec != sr.Name {
		t.Fatalf("rv32 spec naming: name=%q spec=%q (frvl %q)", sr.Name, sr.Spec, sf.Name)
	}
}

// A ranged rv32 spec expands the knob sweep with the prefix intact.
func TestRV32ExpandRange(t *testing.T) {
	ws, err := ExpandByName("rv32:synth:pchase,fp=1KiB..4KiB,seed=7")
	if err != nil {
		t.Fatal(err)
	}
	if len(ws) != 3 {
		t.Fatalf("expanded to %d workloads, want 3", len(ws))
	}
	for _, w := range ws {
		if !strings.HasPrefix(w.Name, "rv32:synth:pchase") || w.ISA != ISARV32 {
			t.Fatalf("expanded workload %q ISA %q", w.Name, w.ISA)
		}
	}
}

// SplitList must re-attach knob fragments to rv32-prefixed specs exactly
// like plain ones, so mixed-frontend -workloads lists round-trip over the
// serve wire protocol.
func TestSplitListRV32(t *testing.T) {
	got := SplitList("DCT,rv32:synth:pchase,fp=4KiB,seed=3,rv32:DCT")
	want := []string{"DCT", "rv32:synth:pchase,fp=4KiB,seed=3", "rv32:DCT"}
	if len(got) != len(want) {
		t.Fatalf("SplitList = %q, want %q", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("SplitList = %q, want %q", got, want)
		}
	}
}
