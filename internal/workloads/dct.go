package workloads

import (
	"encoding/binary"
	"fmt"
	"math"

	"waymemo/internal/asm"
	"waymemo/internal/sim"
)

// DCT: 2-D 8x8 forward DCT over a 64x64 greyscale image, fixed point Q13,
// computed as C·X·Cᵀ in two integer matrix-multiply passes — the classic
// media kernel of the paper's benchmark list.

// dctCoeffs builds the Q13 DCT-II coefficient matrix; the same table is
// embedded in the program image and used by the Go reference, so there is no
// floating-point divergence between them.
func dctCoeffs() []int16 {
	c := make([]int16, 64)
	for u := 0; u < 8; u++ {
		s := math.Sqrt(2.0 / 8.0)
		if u == 0 {
			s = math.Sqrt(1.0 / 8.0)
		}
		for x := 0; x < 8; x++ {
			v := s * math.Cos(float64(2*x+1)*float64(u)*math.Pi/16)
			c[u*8+x] = int16(math.Round(v * 8192))
		}
	}
	return c
}

// dctImage generates the deterministic 64x64 input.
func dctImage() []byte {
	img := make([]byte, 64*64)
	rng := xorshift32(0x1234567)
	for i := range img {
		// Smooth-ish content: blend coordinates with noise, like a natural
		// image rather than white noise.
		x, y := i%64, i/64
		img[i] = byte((x*3 + y*2) + int(rng.next()%64))
	}
	return img
}

// dctRef is the bit-exact Go reference.
func dctRef(img []byte, c []int16) []int16 {
	out := make([]int16, 64*64)
	var tmp [64]int32
	for by := 0; by < 8; by++ {
		for bx := 0; bx < 8; bx++ {
			for u := 0; u < 8; u++ {
				for x := 0; x < 8; x++ {
					var sum int32
					for k := 0; k < 8; k++ {
						pix := int32(img[(by*8+k)*64+bx*8+x]) - 128
						sum += int32(c[u*8+k]) * pix
					}
					tmp[u*8+x] = (sum + 4096) >> 13
				}
			}
			for u := 0; u < 8; u++ {
				for v := 0; v < 8; v++ {
					var sum int32
					for k := 0; k < 8; k++ {
						sum += tmp[u*8+k] * int32(c[v*8+k])
					}
					out[(by*8+u)*64+bx*8+v] = int16((sum + 4096) >> 13)
				}
			}
		}
	}
	return out
}

const dctCode = `
; void main(): DCT of every 8x8 block of the 64x64 image, repeated.
main:	push ra
	li   s9, 2             ; repeats
m_rep:	li   s0, 0             ; by
m_by:	li   s1, 0             ; bx
m_bx:	la   a0, dctImage      ; src = image + by*512 + bx*8
	sll  t0, s0, 9
	add  a0, a0, t0
	sll  t0, s1, 3
	add  a0, a0, t0
	la   a1, dctOut        ; dst = out + by*1024 + bx*16
	sll  t0, s0, 10
	add  a1, a1, t0
	sll  t0, s1, 4
	add  a1, a1, t0
	jal  dct_block
	addi s1, s1, 1
	li   t9, 8
	blt  s1, t9, m_bx
	addi s0, s0, 1
	li   t9, 8
	blt  s0, t9, m_by
	addi s9, s9, -1
	bnez s9, m_rep
	pop  ra
	ret

; dct_block(a0 = src bytes stride 64, a1 = dst int16 stride 128B)
dct_block:
	la   v0, dctC
	la   v1, dctTmp
	; pass 1: tmp = C * (X - 128)
	li   t0, 0             ; u
p1_u:	li   t1, 0             ; x
p1_x:	li   t3, 0             ; sum
	li   t2, 0             ; k
	sll  t4, t0, 4         ; &C[u][0]
	add  t4, v0, t4
	add  t5, a0, t1        ; &X[0][x]
p1_k:	lh   t6, 0(t4)
	lbu  t7, 0(t5)
	addi t7, t7, -128
	mul  t8, t6, t7
	add  t3, t3, t8
	addi t4, t4, 2
	addi t5, t5, 64
	addi t2, t2, 1
	li   t9, 8
	blt  t2, t9, p1_k
	addi t3, t3, 4096
	sra  t3, t3, 13
	sll  t6, t0, 5         ; tmp[u*8+x]
	sll  t7, t1, 2
	add  t6, t6, t7
	add  t6, v1, t6
	sw   t3, 0(t6)
	addi t1, t1, 1
	li   t9, 8
	blt  t1, t9, p1_x
	addi t0, t0, 1
	li   t9, 8
	blt  t0, t9, p1_u
	; pass 2: out = tmp * C^T
	li   t0, 0             ; u
p2_u:	li   t1, 0             ; v
p2_v:	li   t3, 0
	li   t2, 0
	sll  t4, t0, 5         ; &tmp[u][0]
	add  t4, v1, t4
	sll  t5, t1, 4         ; &C[v][0]
	add  t5, v0, t5
p2_k:	lw   t6, 0(t4)
	lh   t7, 0(t5)
	mul  t8, t6, t7
	add  t3, t3, t8
	addi t4, t4, 4
	addi t5, t5, 2
	addi t2, t2, 1
	li   t9, 8
	blt  t2, t9, p2_k
	addi t3, t3, 4096
	sra  t3, t3, 13
	sll  t6, t0, 7         ; dst + u*128 + v*2
	sll  t7, t1, 1
	add  t6, t6, t7
	add  t6, a1, t6
	sh   t3, 0(t6)
	addi t1, t1, 1
	li   t9, 8
	blt  t1, t9, p2_v
	addi t0, t0, 1
	li   t9, 8
	blt  t0, t9, p2_u
	ret
`

// dctParts builds what both ISA renderings of the kernel share: the data
// section (image, coefficient table, scratch and output buffers — directive
// syntax is dialect-independent) and the Check closure comparing the output
// block against the bit-exact Go reference.
func dctParts() (data string, check func(c *sim.CPU, p *asm.Program) error) {
	img := dctImage()
	coeffs := dctCoeffs()
	data = "\t.org DATA\n" +
		dirBytes("dctImage", img) +
		"\t.align 4\n" + dirHalves("dctC", coeffs) +
		"\t.align 4\ndctTmp:\t.space 256\n" +
		"\t.align 4\ndctOut:\t.space 8192\n"
	want := dctRef(img, coeffs)
	check = func(c *sim.CPU, p *asm.Program) error {
		got := c.Mem.ReadRange(p.Symbols["dctOut"], len(want)*2)
		for i, w := range want {
			g := int16(binary.LittleEndian.Uint16(got[2*i:]))
			if g != w {
				return fmt.Errorf("dctOut[%d] = %d, want %d", i, g, w)
			}
		}
		return nil
	}
	return data, check
}

// DCT builds the benchmark.
func DCT() Workload {
	data, check := dctParts()
	return Workload{
		Name:    "DCT",
		Sources: []string{dctCode, data},
		Check:   check,
	}
}
