package workloads

import (
	"strings"
	"testing"

	"waymemo/internal/synth"
)

// TestSyntheticPatternsValidate runs every pattern end to end: the
// generated assembly must produce exactly the Go reference checksum — the
// same proof contract the seven paper benchmarks use.
func TestSyntheticPatternsValidate(t *testing.T) {
	for _, p := range synth.Patterns() {
		w, err := FromSpec(synth.Spec{Pattern: p, Accesses: 1 << 13})
		if err != nil {
			t.Fatal(err)
		}
		t.Run(string(p), func(t *testing.T) {
			c, err := Run(w, nil, nil)
			if err != nil {
				t.Fatal(err)
			}
			t.Logf("%s: %d instrs, %d cycles", w.Name, c.Instrs, c.Cycles)
		})
	}
}

func TestSyntheticWorkloadIdentity(t *testing.T) {
	a, err := FromSpec(synth.Spec{Pattern: synth.PointerChase, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if a.Spec != a.Name || !synth.IsSpec(a.Name) {
		t.Fatalf("synthetic identity: Name=%q Spec=%q", a.Name, a.Spec)
	}
	// Same spec, different spelling: same name, same fingerprint — one
	// build memo entry, one trace spill, one explore cache key.
	b, err := ByName("synth:pchase,seed=7,fp=64k")
	if err != nil {
		t.Fatal(err)
	}
	if b.Name != a.Name || b.Fingerprint() != a.Fingerprint() {
		t.Fatalf("spellings diverge: %q/%x vs %q/%x", a.Name, a.Fingerprint(), b.Name, b.Fingerprint())
	}
	// Different seed: different program identity.
	c, err := FromSpec(synth.Spec{Pattern: synth.PointerChase, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	if c.Fingerprint() == a.Fingerprint() {
		t.Fatal("distinct seeds share a fingerprint")
	}
	// Synthetic builds are memoized like any workload.
	p1, err := a.Build()
	if err != nil {
		t.Fatal(err)
	}
	p2, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if p1 != p2 {
		t.Fatal("same spec built twice")
	}
}

func TestByNameUnknownListsSortedCandidates(t *testing.T) {
	_, err := ByName("nope")
	if err == nil {
		t.Fatal("expected error")
	}
	msg := err.Error()
	// The candidate list must be sorted and the synth syntax hinted.
	names := []string{"DCT", "FFT", "compress", "dhrystone", "jpeg_enc", "mpeg2enc", "whetstone"}
	last := -1
	for _, n := range names {
		i := strings.Index(msg, n)
		if i < 0 {
			t.Fatalf("error %q omits candidate %s", msg, n)
		}
		if i < last {
			t.Fatalf("error %q lists candidates unsorted", msg)
		}
		last = i
	}
	if !strings.Contains(msg, synth.SpecPrefix) {
		t.Errorf("error %q omits the synth spec hint", msg)
	}
}

func TestByNameBadSpec(t *testing.T) {
	if _, err := ByName("synth:nope"); err == nil {
		t.Fatal("bad spec accepted")
	}
	if _, err := ByName("synth:pchase,fp=4KiB..64KiB"); err == nil {
		t.Fatal("ByName accepted a sweep; sweeps need ExpandByName")
	}
}

func TestExpandByName(t *testing.T) {
	ws, err := ExpandByName("synth:hotloop,fp=1KiB..8KiB")
	if err != nil {
		t.Fatal(err)
	}
	if len(ws) != 4 {
		t.Fatalf("expanded to %d workloads, want 4", len(ws))
	}
	one, err := ExpandByName("DCT")
	if err != nil || len(one) != 1 || one[0].Name != "DCT" {
		t.Fatalf("ExpandByName(DCT) = %v, %v", one, err)
	}
}

func TestParseListReattachesSpecKnobs(t *testing.T) {
	ws, err := ParseList("DCT, synth:pchase,fp=1KiB..4KiB,seed=7 ,FFT")
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, w := range ws {
		names = append(names, w.Name)
	}
	want := []string{
		"DCT",
		"synth:pchase,fp=1KiB,stride=64,n=65536,seed=7",
		"synth:pchase,fp=2KiB,stride=64,n=65536,seed=7",
		"synth:pchase,fp=4KiB,stride=64,n=65536,seed=7",
		"FFT",
	}
	if strings.Join(names, "|") != strings.Join(want, "|") {
		t.Fatalf("ParseList = %v, want %v", names, want)
	}
	if _, err := ParseList(""); err == nil {
		t.Fatal("empty list accepted")
	}
	if _, err := ParseList("fp=64KiB"); err == nil {
		t.Fatal("dangling knob accepted")
	}
}
