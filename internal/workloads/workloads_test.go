package workloads

import (
	"sync"
	"testing"

	"waymemo/internal/asm"
	"waymemo/internal/trace"
)

// TestAllWorkloadsValidate runs every benchmark to completion and checks its
// output against the Go reference — the end-to-end proof that the ISA,
// assembler, simulator and the benchmark programs agree.
func TestAllWorkloadsValidate(t *testing.T) {
	for _, w := range All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			c, err := Run(w, nil, nil)
			if err != nil {
				t.Fatal(err)
			}
			if c.Instrs < 100_000 {
				t.Errorf("%s retired only %d instructions; too small to be representative", w.Name, c.Instrs)
			}
			t.Logf("%s: %d instrs, %d cycles", w.Name, c.Instrs, c.Cycles)
		})
	}
}

// TestWorkloadEventStreams checks that every benchmark produces both fetch
// and data traffic with plausible structure.
func TestWorkloadEventStreams(t *testing.T) {
	for _, w := range All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			var nFetch, nData, nStore, nLink uint64
			c, err := Run(w,
				trace.FetchFunc(func(ev trace.FetchEvent) {
					nFetch++
					if ev.Kind == trace.KindLink {
						nLink++
					}
				}),
				trace.DataFunc(func(ev trace.DataEvent) {
					nData++
					if ev.Store {
						nStore++
					}
					if ev.Base+uint32(ev.Disp) != ev.Addr {
						t.Fatalf("base+disp != addr in %s", w.Name)
					}
				}))
			if err != nil {
				t.Fatal(err)
			}
			if nFetch != c.Cycles {
				t.Errorf("fetches %d != cycles %d", nFetch, c.Cycles)
			}
			if nData == 0 || nStore == 0 {
				t.Errorf("no data traffic: loads+stores=%d stores=%d", nData, nStore)
			}
			if nLink == 0 {
				t.Errorf("no function returns observed")
			}
		})
	}
}

func TestByName(t *testing.T) {
	if _, err := ByName("dct"); err != nil {
		t.Fatal(err)
	}
	if _, err := ByName("nope"); err == nil {
		t.Fatal("expected error")
	}
}

// TestBuildMemoized checks that Build assembles once per process and that
// concurrent builders all receive the same shared program.
func TestBuildMemoized(t *testing.T) {
	w := DCT()
	first, err := w.Build()
	if err != nil {
		t.Fatal(err)
	}
	progs := make([]*asm.Program, 8)
	var wg sync.WaitGroup
	for i := range progs {
		wg.Add(1)
		go func() {
			defer wg.Done()
			p, err := DCT().Build()
			if err != nil {
				t.Error(err)
				return
			}
			progs[i] = p
		}()
	}
	wg.Wait()
	for i, p := range progs {
		if p != first {
			t.Fatalf("builder %d got a distinct program", i)
		}
	}
	if DCT().Fingerprint() != w.Fingerprint() {
		t.Fatal("fingerprint not stable across constructions")
	}
	if DCT().Fingerprint() == FFT().Fingerprint() {
		t.Fatal("distinct workloads share a fingerprint")
	}
}
