package workloads

import (
	"testing"

	"waymemo/internal/trace"
)

// TestAllWorkloadsValidate runs every benchmark to completion and checks its
// output against the Go reference — the end-to-end proof that the ISA,
// assembler, simulator and the benchmark programs agree.
func TestAllWorkloadsValidate(t *testing.T) {
	for _, w := range All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			c, err := Run(w, nil, nil)
			if err != nil {
				t.Fatal(err)
			}
			if c.Instrs < 100_000 {
				t.Errorf("%s retired only %d instructions; too small to be representative", w.Name, c.Instrs)
			}
			t.Logf("%s: %d instrs, %d cycles", w.Name, c.Instrs, c.Cycles)
		})
	}
}

// TestWorkloadEventStreams checks that every benchmark produces both fetch
// and data traffic with plausible structure.
func TestWorkloadEventStreams(t *testing.T) {
	for _, w := range All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			var nFetch, nData, nStore, nLink uint64
			c, err := Run(w,
				trace.FetchFunc(func(ev trace.FetchEvent) {
					nFetch++
					if ev.Kind == trace.KindLink {
						nLink++
					}
				}),
				trace.DataFunc(func(ev trace.DataEvent) {
					nData++
					if ev.Store {
						nStore++
					}
					if ev.Base+uint32(ev.Disp) != ev.Addr {
						t.Fatalf("base+disp != addr in %s", w.Name)
					}
				}))
			if err != nil {
				t.Fatal(err)
			}
			if nFetch != c.Cycles {
				t.Errorf("fetches %d != cycles %d", nFetch, c.Cycles)
			}
			if nData == 0 || nStore == 0 {
				t.Errorf("no data traffic: loads+stores=%d stores=%d", nData, nStore)
			}
			if nLink == 0 {
				t.Errorf("no function returns observed")
			}
		})
	}
}

func TestByName(t *testing.T) {
	if _, err := ByName("dct"); err != nil {
		t.Fatal(err)
	}
	if _, err := ByName("nope"); err == nil {
		t.Fatal("expected error")
	}
}
