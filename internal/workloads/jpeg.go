package workloads

import (
	"encoding/binary"
	"fmt"

	"waymemo/internal/asm"
	"waymemo/internal/sim"
)

// JPEGEnc: the guts of a baseline JPEG encoder — per-8x8-block forward DCT
// (same Q13 kernel as the DCT benchmark), quantization with the standard
// luminance table, zigzag reordering and run-length encoding of the AC
// coefficients into a halfword stream.

const jpegRepeats = 3

// jpegQuant is the standard JPEG luminance quantization table.
var jpegQuant = []int16{
	16, 11, 10, 16, 24, 40, 51, 61,
	12, 12, 14, 19, 26, 58, 60, 55,
	14, 13, 16, 24, 40, 57, 69, 56,
	14, 17, 22, 29, 51, 87, 80, 62,
	18, 22, 37, 56, 68, 109, 103, 77,
	24, 35, 55, 64, 81, 104, 113, 92,
	49, 64, 78, 87, 103, 121, 120, 101,
	72, 92, 95, 98, 112, 100, 103, 99,
}

// jpegZigzag is the standard zigzag scan order.
var jpegZigzag = []byte{
	0, 1, 8, 16, 9, 2, 3, 10, 17, 24, 32, 25, 18, 11, 4, 5,
	12, 19, 26, 33, 40, 48, 41, 34, 27, 20, 13, 6, 7, 14, 21, 28,
	35, 42, 49, 56, 57, 50, 43, 36, 29, 22, 15, 23, 30, 37, 44, 51,
	58, 59, 52, 45, 38, 31, 39, 46, 53, 60, 61, 54, 47, 55, 62, 63,
}

func jpegImage() []byte {
	img := make([]byte, 64*64)
	rng := xorshift32(0xFACE)
	for i := range img {
		x, y := i%64, i/64
		// Blocky gradient with texture: compresses like a natural image.
		v := 96 + (x*x)/48 + (y*5)/2 + int(rng.next()%24)
		img[i] = byte(v)
	}
	return img
}

// jpegRef is the bit-exact reference.
func jpegRef(img []byte, c, qt []int16, zz []byte) []uint16 {
	var out []uint16
	var tmp, coef [64]int32
	var q, z [64]int16
	for by := 0; by < 8; by++ {
		for bx := 0; bx < 8; bx++ {
			for u := 0; u < 8; u++ {
				for x := 0; x < 8; x++ {
					var sum int32
					for k := 0; k < 8; k++ {
						pix := int32(img[(by*8+k)*64+bx*8+x]) - 128
						sum += int32(c[u*8+k]) * pix
					}
					tmp[u*8+x] = (sum + 4096) >> 13
				}
			}
			for u := 0; u < 8; u++ {
				for v := 0; v < 8; v++ {
					var sum int32
					for k := 0; k < 8; k++ {
						sum += tmp[u*8+k] * int32(c[v*8+k])
					}
					coef[u*8+v] = int32(int16((sum + 4096) >> 13))
				}
			}
			for i := 0; i < 64; i++ {
				q[i] = int16(coef[i] / int32(qt[i]))
			}
			for i := 0; i < 64; i++ {
				z[i] = q[zz[i]]
			}
			out = append(out, uint16(z[0]))
			run := uint16(0)
			for i := 1; i < 64; i++ {
				if z[i] == 0 {
					run++
				} else {
					out = append(out, run, uint16(z[i]))
					run = 0
				}
			}
			out = append(out, 0x7FFF)
		}
	}
	return out
}

const jpegCode = `
main:	push ra
	li   s9, 3             ; repeats
j_rep:	la   s6, jpgOut        ; output stream pointer
	li   s0, 0             ; by
j_by:	li   s1, 0             ; bx
j_bx:	la   a0, jpgImg
	sll  t0, s0, 9
	add  a0, a0, t0
	sll  t0, s1, 3
	add  a0, a0, t0
	jal  jdct
	jal  jquant
	jal  jrle
	addi s1, s1, 1
	li   t9, 8
	blt  s1, t9, j_bx
	addi s0, s0, 1
	li   t9, 8
	blt  s0, t9, j_by
	la   t0, jpgOut        ; record stream length
	sub  t1, s6, t0
	la   t2, jpgLen
	sw   t1, 0(t2)
	addi s9, s9, -1
	bnez s9, j_rep
	pop  ra
	ret

; jdct(a0 = 8x8 block in the image, stride 64) -> jpgCoef[64] halves
jdct:	la   v0, jpgC
	la   v1, jpgTmp
	li   t0, 0
jp1_u:	li   t1, 0
jp1_x:	li   t3, 0
	li   t2, 0
	sll  t4, t0, 4
	add  t4, v0, t4
	add  t5, a0, t1
jp1_k:	lh   t6, 0(t4)
	lbu  t7, 0(t5)
	addi t7, t7, -128
	mul  t8, t6, t7
	add  t3, t3, t8
	addi t4, t4, 2
	addi t5, t5, 64
	addi t2, t2, 1
	li   t9, 8
	blt  t2, t9, jp1_k
	addi t3, t3, 4096
	sra  t3, t3, 13
	sll  t6, t0, 5
	sll  t7, t1, 2
	add  t6, t6, t7
	add  t6, v1, t6
	sw   t3, 0(t6)
	addi t1, t1, 1
	li   t9, 8
	blt  t1, t9, jp1_x
	addi t0, t0, 1
	li   t9, 8
	blt  t0, t9, jp1_u
	li   t0, 0
jp2_u:	li   t1, 0
jp2_v:	li   t3, 0
	li   t2, 0
	sll  t4, t0, 5
	add  t4, v1, t4
	sll  t5, t1, 4
	add  t5, v0, t5
jp2_k:	lw   t6, 0(t4)
	lh   t7, 0(t5)
	mul  t8, t6, t7
	add  t3, t3, t8
	addi t4, t4, 4
	addi t5, t5, 2
	addi t2, t2, 1
	li   t9, 8
	blt  t2, t9, jp2_k
	addi t3, t3, 4096
	sra  t3, t3, 13
	la   t5, jpgCoef
	sll  t6, t0, 4
	sll  t7, t1, 1
	add  t6, t6, t7
	add  t6, t5, t6
	sh   t3, 0(t6)
	addi t1, t1, 1
	li   t9, 8
	blt  t1, t9, jp2_v
	addi t0, t0, 1
	li   t9, 8
	blt  t0, t9, jp2_u
	ret

; jquant: jpgQ = jpgCoef / jpgQt, then zigzag into jpgZZ
jquant:	la   t0, jpgCoef
	la   t1, jpgQt
	la   t2, jpgQ
	li   t3, 64
jq_l:	lh   t4, 0(t0)
	lh   t5, 0(t1)
	div  t6, t4, t5
	sh   t6, 0(t2)
	addi t0, t0, 2
	addi t1, t1, 2
	addi t2, t2, 2
	addi t3, t3, -1
	bnez t3, jq_l
	la   t0, jpgZig
	la   t1, jpgQ
	la   t2, jpgZZ
	li   t3, 64
jz_l:	lbu  t4, 0(t0)
	sll  t4, t4, 1
	add  t4, t1, t4
	lh   t5, 0(t4)
	sh   t5, 0(t2)
	addi t0, t0, 1
	addi t2, t2, 2
	addi t3, t3, -1
	bnez t3, jz_l
	ret

; jrle: append [DC][(run,val)*][0x7FFF] halfwords at s6
jrle:	la   t0, jpgZZ
	lh   t1, 0(t0)
	sh   t1, 0(s6)
	addi s6, s6, 2
	li   t2, 0             ; zero run
	li   t3, 1             ; i
jr_l:	sll  t4, t3, 1
	add  t4, t0, t4
	lh   t5, 0(t4)
	bnez t5, jr_nz
	addi t2, t2, 1
	b    jr_nx
jr_nz:	sh   t2, 0(s6)
	sh   t5, 2(s6)
	addi s6, s6, 4
	li   t2, 0
jr_nx:	addi t3, t3, 1
	li   t9, 64
	blt  t3, t9, jr_l
	li   t4, 0x7FFF
	sh   t4, 0(s6)
	addi s6, s6, 2
	ret
`

// JPEGEnc builds the benchmark.
func JPEGEnc() Workload {
	img := jpegImage()
	coeffs := dctCoeffs()
	want := jpegRef(img, coeffs, jpegQuant, jpegZigzag)
	data := "\t.org DATA\n" +
		dirBytes("jpgImg", img) +
		"\t.align 4\n" + dirHalves("jpgC", coeffs) +
		"\t.align 4\n" + dirHalves("jpgQt", jpegQuant) +
		dirBytes("jpgZig", jpegZigzag) +
		"\t.align 4\njpgTmp:\t.space 256\n" +
		"jpgCoef:\t.space 128\n" +
		"jpgQ:\t.space 128\n" +
		"jpgZZ:\t.space 128\n" +
		"jpgLen:\t.space 4\n" +
		"jpgOut:\t.space 16384\n"
	return Workload{
		Name:    "jpeg_enc",
		Sources: []string{jpegCode, data},
		Check: func(c *sim.CPU, p *asm.Program) error {
			n := c.Mem.ReadWord(p.Symbols["jpgLen"])
			if int(n) != len(want)*2 {
				return fmt.Errorf("stream length %d, want %d", n, len(want)*2)
			}
			got := c.Mem.ReadRange(p.Symbols["jpgOut"], int(n))
			for i, w := range want {
				if g := binary.LittleEndian.Uint16(got[2*i:]); g != w {
					return fmt.Errorf("stream[%d] = %#x, want %#x", i, g, w)
				}
			}
			return nil
		},
	}
}
