package report

import (
	"strings"
	"testing"
)

func TestRenderAlignment(t *testing.T) {
	tb := Table{Title: "T", Columns: []string{"a", "bbbb"}}
	tb.AddRow("xxxxx", "y")
	tb.AddRow("z", "w")
	var sb strings.Builder
	tb.Render(&sb)
	out := sb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, separator, 2 rows
		t.Fatalf("lines: %q", out)
	}
	if lines[0] != "T" {
		t.Errorf("title: %q", lines[0])
	}
	if !strings.Contains(lines[1], "a") || !strings.Contains(lines[1], "bbbb") {
		t.Errorf("header: %q", lines[1])
	}
	// All data lines share the separator position.
	sep := strings.Index(lines[3], "|")
	if strings.Index(lines[4], "|") != sep || strings.Index(lines[1], "|") != sep {
		t.Errorf("misaligned columns:\n%s", out)
	}
}

func TestRenderCSV(t *testing.T) {
	tb := Table{Title: "T", Columns: []string{"a", "b"}}
	tb.AddRow("1,5", "plain")
	tb.AddRow("he\"llo", "x")
	var sb strings.Builder
	tb.RenderCSV(&sb)
	out := sb.String()
	if !strings.Contains(out, "# T\n") {
		t.Errorf("missing title comment: %q", out)
	}
	if !strings.Contains(out, "\"1,5\"") {
		t.Errorf("comma not quoted: %q", out)
	}
	if !strings.Contains(out, "\"he\"\"llo\"") {
		t.Errorf("quote not escaped: %q", out)
	}
}

func TestRenderMarkdown(t *testing.T) {
	tb := Table{Title: "T", Columns: []string{"a", "b"}}
	tb.AddRow("x|y", "1")
	tb.AddRow("z", "2")
	var sb strings.Builder
	tb.RenderMarkdown(&sb)
	out := sb.String()
	want := "**T**\n\n| a | b |\n| --- | --- |\n| x\\|y | 1 |\n| z | 2 |\n"
	if out != want {
		t.Errorf("markdown table:\n%q\nwant:\n%q", out, want)
	}
}

func TestBar(t *testing.T) {
	if got := Bar(5, 10, 10); got != "#####" {
		t.Errorf("half bar: %q", got)
	}
	if got := Bar(20, 10, 10); got != "##########" {
		t.Errorf("clamped bar: %q", got)
	}
	if got := Bar(0, 10, 10); got != "" {
		t.Errorf("zero bar: %q", got)
	}
	if got := Bar(1, 0, 10); got != "" {
		t.Errorf("zero max: %q", got)
	}
}

func TestFormatters(t *testing.T) {
	if F(3.14159, 2) != "3.14" {
		t.Error("F")
	}
	if Pct(0.256) != "25.6%" {
		t.Error("Pct")
	}
}
