// Package report renders experiment results as fixed-width text tables,
// ASCII bar charts, CSV and markdown pipe tables — the textual equivalents
// of the paper's Tables 1-3 and the bar charts of Figures 4-8.
package report

import (
	"fmt"
	"io"
	"strings"
)

// Table is a titled grid of cells.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
}

// AddRow appends a row of cells.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// Render writes the table with aligned columns.
func (t *Table) Render(w io.Writer) {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	if t.Title != "" {
		fmt.Fprintf(w, "%s\n", t.Title)
	}
	var sep strings.Builder
	for i := range t.Columns {
		if i > 0 {
			sep.WriteString("-+-")
		}
		sep.WriteString(strings.Repeat("-", widths[i]))
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				fmt.Fprint(w, " | ")
			}
			fmt.Fprintf(w, "%-*s", widths[min(i, len(widths)-1)], c)
		}
		fmt.Fprintln(w)
	}
	line(t.Columns)
	fmt.Fprintln(w, sep.String())
	for _, r := range t.Rows {
		line(r)
	}
}

// RenderMarkdown writes the table as a GitHub-style pipe table (title as a
// bold line above it).
func (t *Table) RenderMarkdown(w io.Writer) {
	if t.Title != "" {
		fmt.Fprintf(w, "**%s**\n\n", t.Title)
	}
	writeMarkdownRow(w, t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = "---"
	}
	writeMarkdownRow(w, sep)
	for _, r := range t.Rows {
		writeMarkdownRow(w, r)
	}
}

func writeMarkdownRow(w io.Writer, cells []string) {
	fmt.Fprint(w, "|")
	for _, c := range cells {
		fmt.Fprintf(w, " %s |", strings.ReplaceAll(c, "|", "\\|"))
	}
	fmt.Fprintln(w)
}

// RenderCSV writes the table as CSV (title as a comment line).
func (t *Table) RenderCSV(w io.Writer) {
	if t.Title != "" {
		fmt.Fprintf(w, "# %s\n", t.Title)
	}
	writeCSVRow(w, t.Columns)
	for _, r := range t.Rows {
		writeCSVRow(w, r)
	}
}

func writeCSVRow(w io.Writer, cells []string) {
	for i, c := range cells {
		if i > 0 {
			fmt.Fprint(w, ",")
		}
		if strings.ContainsAny(c, ",\"\n") {
			c = "\"" + strings.ReplaceAll(c, "\"", "\"\"") + "\""
		}
		fmt.Fprint(w, c)
	}
	fmt.Fprintln(w)
}

// Bar renders value as a proportional bar of at most width characters
// against max, for figure-style comparisons.
func Bar(value, max float64, width int) string {
	if max <= 0 || value < 0 {
		return ""
	}
	n := int(value/max*float64(width) + 0.5)
	if n > width {
		n = width
	}
	return strings.Repeat("#", n)
}

// F formats a float with the given decimals, trimming to a compact cell.
func F(v float64, decimals int) string {
	return fmt.Sprintf("%.*f", decimals, v)
}

// Pct formats a ratio as a percentage.
func Pct(v float64) string { return fmt.Sprintf("%.1f%%", v*100) }
