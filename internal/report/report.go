// Package report renders experiment results as fixed-width text tables,
// ASCII bar charts and CSV — the textual equivalents of the paper's tables
// and bar figures.
package report

import (
	"fmt"
	"io"
	"strings"
)

// Table is a titled grid of cells.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
}

// AddRow appends a row of cells.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// Render writes the table with aligned columns.
func (t *Table) Render(w io.Writer) {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	if t.Title != "" {
		fmt.Fprintf(w, "%s\n", t.Title)
	}
	var sep strings.Builder
	for i := range t.Columns {
		if i > 0 {
			sep.WriteString("-+-")
		}
		sep.WriteString(strings.Repeat("-", widths[i]))
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				fmt.Fprint(w, " | ")
			}
			fmt.Fprintf(w, "%-*s", widths[min(i, len(widths)-1)], c)
		}
		fmt.Fprintln(w)
	}
	line(t.Columns)
	fmt.Fprintln(w, sep.String())
	for _, r := range t.Rows {
		line(r)
	}
}

// RenderCSV writes the table as CSV (title as a comment line).
func (t *Table) RenderCSV(w io.Writer) {
	if t.Title != "" {
		fmt.Fprintf(w, "# %s\n", t.Title)
	}
	writeCSVRow(w, t.Columns)
	for _, r := range t.Rows {
		writeCSVRow(w, r)
	}
}

func writeCSVRow(w io.Writer, cells []string) {
	for i, c := range cells {
		if i > 0 {
			fmt.Fprint(w, ",")
		}
		if strings.ContainsAny(c, ",\"\n") {
			c = "\"" + strings.ReplaceAll(c, "\"", "\"\"") + "\""
		}
		fmt.Fprint(w, c)
	}
	fmt.Fprintln(w)
}

// Bar renders value as a proportional bar of at most width characters
// against max, for figure-style comparisons.
func Bar(value, max float64, width int) string {
	if max <= 0 || value < 0 {
		return ""
	}
	n := int(value/max*float64(width) + 0.5)
	if n > width {
		n = width
	}
	return strings.Repeat("#", n)
}

// F formats a float with the given decimals, trimming to a compact cell.
func F(v float64, decimals int) string {
	return fmt.Sprintf("%.*f", decimals, v)
}

// Pct formats a ratio as a percentage.
func Pct(v float64) string { return fmt.Sprintf("%.1f%%", v*100) }
