// Package trace defines the instruction-fetch and data-access event streams
// produced by the instruction-set simulator and consumed by the cache
// controllers (the original cache, the baselines, and the Memory Address
// Buffer of the paper).
//
// Every event carries the information the hardware would have at the address
// generation stage: a base value and a signed displacement, not just the
// final address. This is what lets the MAB be probed in parallel with the
// 32-bit adder (paper §3).
package trace

// ControlKind describes how control reached the current fetch packet. It maps
// one-to-one onto the three MAB input types of Figure 2 of the paper, plus
// the sequential case and the unpredictable indirect case.
type ControlKind uint8

const (
	// KindSeq is straight-line flow: the previous packet fell through.
	// MAB input: base = previous packet address, disp = packet stride.
	KindSeq ControlKind = iota
	// KindBranch is a taken PC-relative branch or direct jump/call.
	// MAB input: base = branch address, disp = encoded offset.
	KindBranch
	// KindLink is a jump to the link register (function return).
	// MAB input: base = link register value, disp = 0.
	KindLink
	// KindIndirect is a computed jump through a non-link register. The MAB
	// has no base+displacement form for it and is bypassed.
	KindIndirect
)

// String returns the lower-case name of the kind.
func (k ControlKind) String() string {
	switch k {
	case KindSeq:
		return "seq"
	case KindBranch:
		return "branch"
	case KindLink:
		return "link"
	case KindIndirect:
		return "indirect"
	}
	return "unknown"
}

// FetchEvent is one instruction-cache access: the fetch of one VLIW packet.
type FetchEvent struct {
	Addr  uint32      // packet address being fetched (packet aligned)
	Prev  uint32      // previously fetched packet address
	Kind  ControlKind // how control arrived here
	Base  uint32      // MAB base input (see ControlKind)
	Disp  int32       // MAB displacement input
	First bool        // true for the very first fetch after reset
}

// DataEvent is one data-cache access issued by a load or store.
type DataEvent struct {
	Addr  uint32 // effective address (Base + Disp)
	Base  uint32 // base register value
	Disp  int32  // sign-extended displacement
	Store bool
	Size  uint8 // access size in bytes (1, 2, 4 or 8)
}

// FetchSink consumes instruction fetch events.
type FetchSink interface {
	OnFetch(ev FetchEvent)
}

// DataSink consumes data access events.
type DataSink interface {
	OnData(ev DataEvent)
}

// FetchFunc adapts a function to the FetchSink interface.
type FetchFunc func(FetchEvent)

// OnFetch calls f(ev).
func (f FetchFunc) OnFetch(ev FetchEvent) { f(ev) }

// DataFunc adapts a function to the DataSink interface.
type DataFunc func(DataEvent)

// OnData calls f(ev).
func (f DataFunc) OnData(ev DataEvent) { f(ev) }

// FetchTee fans one fetch stream out to several sinks, so multiple cache
// techniques can observe the same execution in a single simulator run.
func FetchTee(sinks ...FetchSink) FetchSink {
	return FetchFunc(func(ev FetchEvent) {
		for _, s := range sinks {
			s.OnFetch(ev)
		}
	})
}

// DataTee fans one data stream out to several sinks.
func DataTee(sinks ...DataSink) DataSink {
	return DataFunc(func(ev DataEvent) {
		for _, s := range sinks {
			s.OnData(ev)
		}
	})
}

// FlowCase is the four-way classification of instruction flow from Section 2
// of the paper (Panwar & Rennels' taxonomy).
type FlowCase uint8

const (
	// IntraSeq: same cache line, sequential flow (case 1).
	IntraSeq FlowCase = iota
	// IntraNonSeq: same cache line, taken branch (case 2).
	IntraNonSeq
	// InterSeq: next cache line, sequential flow (case 3).
	InterSeq
	// InterNonSeq: different cache line via taken branch (case 4).
	InterNonSeq
)

// String returns a short name for the flow case.
func (c FlowCase) String() string {
	switch c {
	case IntraSeq:
		return "intra-seq"
	case IntraNonSeq:
		return "intra-nonseq"
	case InterSeq:
		return "inter-seq"
	case InterNonSeq:
		return "inter-nonseq"
	}
	return "unknown"
}

// Classify maps a fetch event onto the paper's four flow cases given the
// cache line size, which must be a power of two (cache.Config validates
// this for every geometry in the system). Indirect jumps classify as
// non-sequential.
func Classify(ev FetchEvent, lineBytes uint32) FlowCase {
	// Every I-cache controller classifies every fetch, so this compiles
	// down to straight-line arithmetic: the same-line test is a mask, not
	// two hardware divisions by the runtime-variable line size, and the
	// case is assembled from the two predicates (inter adds 2, non-seq adds
	// 1 — exactly the FlowCase encoding) instead of a data-dependent branch
	// tree that mispredicts on irregular control flow.
	c := IntraSeq
	if (ev.Addr^ev.Prev)&^(lineBytes-1) != 0 {
		c = InterSeq
	}
	if ev.Kind != KindSeq {
		c++ // IntraSeq→IntraNonSeq, InterSeq→InterNonSeq
	}
	return c
}
