package trace

import (
	"bytes"
	"context"
	"errors"
	"math/rand"
	"testing"
)

// fillRandom records a random interleaving into every sink at once and
// returns the expected per-stream event lists. n spans several chunks so
// chunk-boundary bookkeeping is exercised.
func fillRandom(r *rand.Rand, n int, fetch FetchSink, data DataSink) ([]FetchEvent, []DataEvent) {
	var wantF []FetchEvent
	var wantD []DataEvent
	for i := 0; i < n; i++ {
		if r.Intn(3) > 0 {
			ev := randFetch(r)
			wantF = append(wantF, ev)
			fetch.OnFetch(ev)
		} else {
			ev := randData(r)
			wantD = append(wantD, ev)
			data.OnData(ev)
		}
	}
	return wantF, wantD
}

func TestBufferCaptureAndReplay(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	var b Buffer
	wantF, wantD := fillRandom(r, 2*chunkLen+123, &b, &b)
	if b.NumFetches() != len(wantF) || b.NumDatas() != len(wantD) || b.Len() != len(wantF)+len(wantD) {
		t.Fatalf("counts: %d/%d/%d want %d/%d", b.NumFetches(), b.NumDatas(), b.Len(), len(wantF), len(wantD))
	}
	for i, want := range wantF {
		if got := b.FetchAt(i); got != want {
			t.Fatalf("FetchAt(%d) = %+v, want %+v", i, got, want)
		}
	}
	for i, want := range wantD {
		if got := b.DataAt(i); got != want {
			t.Fatalf("DataAt(%d) = %+v, want %+v", i, got, want)
		}
	}
	var rec eventLog
	if err := b.Replay(context.Background(), &rec, &rec); err != nil {
		t.Fatal(err)
	}
	if len(rec.Fetches) != len(wantF) || len(rec.Datas) != len(wantD) {
		t.Fatalf("replay counts: %d/%d", len(rec.Fetches), len(rec.Datas))
	}
	for i := range wantF {
		if rec.Fetches[i] != wantF[i] {
			t.Fatalf("replayed fetch %d: %+v != %+v", i, rec.Fetches[i], wantF[i])
		}
	}
	for i := range wantD {
		if rec.Datas[i] != wantD[i] {
			t.Fatalf("replayed data %d: %+v != %+v", i, rec.Datas[i], wantD[i])
		}
	}
}

func TestBufferReplayCancellation(t *testing.T) {
	var b Buffer
	for i := 0; i < chunkLen+1; i++ {
		b.OnFetch(FetchEvent{Addr: uint32(i) * 8})
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var rec eventLog
	if err := b.Replay(ctx, &rec, nil); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled replay: err = %v", err)
	}
	if len(rec.Fetches) != 0 {
		t.Fatalf("cancelled replay delivered %d events", len(rec.Fetches))
	}
}

// TestBufferFileRoundTrip spills a buffer to WMTRACE1 and reloads it,
// demanding the reloaded buffer serialize byte-identically — which pins both
// the per-stream contents and the program-order interleaving.
func TestBufferFileRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(21))
	var b Buffer
	fillRandom(r, chunkLen+999, &b, &b)

	var spill bytes.Buffer
	n, err := b.WriteTo(&spill)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(spill.Len()) {
		t.Fatalf("WriteTo reported %d bytes, wrote %d", n, spill.Len())
	}
	loaded, err := ReadBuffer(bytes.NewReader(spill.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if loaded.NumFetches() != b.NumFetches() || loaded.NumDatas() != b.NumDatas() {
		t.Fatalf("reloaded counts: %d/%d want %d/%d",
			loaded.NumFetches(), loaded.NumDatas(), b.NumFetches(), b.NumDatas())
	}
	var again bytes.Buffer
	if _, err := loaded.WriteTo(&again); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(spill.Bytes(), again.Bytes()) {
		t.Fatal("reloaded buffer serializes differently")
	}
}

// TestBufferMatchesLiveWriter checks that spilling through a Buffer writes
// the same bytes as attaching a Writer to the event streams directly.
func TestBufferMatchesLiveWriter(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	var live bytes.Buffer
	w, err := NewWriter(&live)
	if err != nil {
		t.Fatal(err)
	}
	var b Buffer
	fillRandom(r, 5000, FetchTee(&b, w), DataTee(&b, w))
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	var spilled bytes.Buffer
	if _, err := b.WriteTo(&spilled); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(live.Bytes(), spilled.Bytes()) {
		t.Fatal("buffer spill differs from live Writer output")
	}
}

// closeRecorder counts Close calls on the underlying writer.
type closeRecorder struct {
	bytes.Buffer
	closes int
}

func (c *closeRecorder) Close() error {
	c.closes++
	return nil
}

func TestWriterCloseSemantics(t *testing.T) {
	var under closeRecorder
	w, err := NewWriter(&under)
	if err != nil {
		t.Fatal(err)
	}
	w.OnFetch(FetchEvent{Addr: 8})
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if under.closes != 1 {
		t.Fatalf("underlying Close called %d times", under.closes)
	}
	written := under.Len()
	if written <= len(fileMagic) {
		t.Fatal("Close did not flush the buffered record")
	}
	var check eventLog
	if err := ReadAll(bytes.NewReader(under.Bytes()), &check, &check); err != nil {
		t.Fatal(err)
	}
	if len(check.Fetches) != 1 || check.Fetches[0].Addr != 8 {
		t.Fatalf("flushed trace = %+v", check.Fetches)
	}

	// Events after Close are dropped and reported by Flush.
	w.OnData(DataEvent{Addr: 16, Size: 4})
	if err := w.Flush(); !errors.Is(err, ErrWriterClosed) {
		t.Fatalf("Flush after Close: err = %v", err)
	}
	if under.Len() != written {
		t.Fatal("event recorded after Close reached the writer")
	}
	// Close is idempotent.
	if err := w.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if under.closes != 1 {
		t.Fatalf("underlying Close called %d times after double Close", under.closes)
	}
}
