package trace

import (
	"context"
	"errors"
	"math/rand"
	"testing"
)

// eventLog is the legacy per-event test double: it implements only the
// per-event FetchSink/DataSink interfaces, never the batch ones, so batched
// replays can only reach it through the adapter shim.
type eventLog struct {
	Fetches []FetchEvent
	Datas   []DataEvent
}

func (l *eventLog) OnFetch(ev FetchEvent) { l.Fetches = append(l.Fetches, ev) }
func (l *eventLog) OnData(ev DataEvent)   { l.Datas = append(l.Datas, ev) }

// batchLog records batch deliveries natively, remembering block boundaries.
type batchLog struct {
	eventLog
	fetchBlocks []int
	dataBlocks  []int
}

func (l *batchLog) OnFetchBatch(evs []FetchEvent) {
	l.fetchBlocks = append(l.fetchBlocks, len(evs))
	l.Fetches = append(l.Fetches, evs...)
}

func (l *batchLog) OnDataBatch(evs []DataEvent) {
	l.dataBlocks = append(l.dataBlocks, len(evs))
	l.Datas = append(l.Datas, evs...)
}

// TestBatchSinkAdapters: native batch sinks pass through unchanged, legacy
// sinks get the shim, and the shim preserves per-event order.
func TestBatchSinkAdapters(t *testing.T) {
	var native batchLog
	if got := BatchFetchSink(&native); got != FetchBatchSink(&native) {
		t.Error("native fetch batch sink was wrapped")
	}
	if got := BatchDataSink(&native); got != DataBatchSink(&native) {
		t.Error("native data batch sink was wrapped")
	}

	var legacy eventLog
	fb := BatchFetchSink(&legacy)
	fb.OnFetchBatch([]FetchEvent{{Addr: 8}, {Addr: 16}})
	db := BatchDataSink(&legacy)
	db.OnDataBatch([]DataEvent{{Addr: 4, Size: 4}})
	if len(legacy.Fetches) != 2 || legacy.Fetches[1].Addr != 16 || len(legacy.Datas) != 1 {
		t.Fatalf("shim delivery mismatch: %+v", legacy)
	}
}

// checkFetchStream fails the test unless the sink saw exactly the buffer's
// fetch stream, in order.
func checkFetchStream(t *testing.T, b *Buffer, got []FetchEvent) {
	t.Helper()
	want := b.Fetches()
	if len(got) != len(want) {
		t.Fatalf("fetch stream length %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("fetch %d: %+v != %+v", i, got[i], want[i])
		}
	}
}

// checkDataStream is checkFetchStream for the data stream.
func checkDataStream(t *testing.T, b *Buffer, got []DataEvent) {
	t.Helper()
	want := b.Datas()
	if len(got) != len(want) {
		t.Fatalf("data stream length %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("data %d: %+v != %+v", i, got[i], want[i])
		}
	}
}

// checkSameStreams fails the test unless the sink saw exactly both
// reference streams, in order.
func checkSameStreams(t *testing.T, b *Buffer, gotF []FetchEvent, gotD []DataEvent) {
	t.Helper()
	checkFetchStream(t, b, gotF)
	checkDataStream(t, b, gotD)
}

// TestReplayAllFanOutEquivalence: one ReplayAll pass over K mixed sinks
// (native batch and legacy shimmed) delivers to every sink exactly what K
// independent per-event replays would, across chunk and block boundaries.
func TestReplayAllFanOutEquivalence(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	var b Buffer
	fillRandom(r, chunkLen+3*batchLen+17, &b, &b)

	var native batchLog
	var legacy eventLog
	var fetchOnly eventLog
	var dataOnly eventLog
	err := b.ReplayAll(context.Background(), []SinkPair{
		{Fetch: &native, Data: &native},
		{Fetch: &legacy, Data: &legacy},
		{Fetch: &fetchOnly},
		{Data: &dataOnly},
	})
	if err != nil {
		t.Fatal(err)
	}
	checkSameStreams(t, &b, native.Fetches, native.Datas)
	checkSameStreams(t, &b, legacy.Fetches, legacy.Datas)
	checkFetchStream(t, &b, fetchOnly.Fetches)
	if len(fetchOnly.Datas) != 0 || len(dataOnly.Fetches) != 0 {
		t.Fatal("single-stream sinks received the other stream")
	}
	checkDataStream(t, &b, dataOnly.Datas)
	for _, n := range native.fetchBlocks {
		if n < 1 || n > batchLen {
			t.Fatalf("fetch block of %d events", n)
		}
	}
}

// TestReplayAllCancelMidFanOut: cancelling the context from inside a sink
// stops the fan-out between blocks — the error surfaces, no sink sees the
// full stream, and all sinks of the pass stop at the same block boundary.
func TestReplayAllCancelMidFanOut(t *testing.T) {
	var b Buffer
	total := 3 * batchLen
	for i := 0; i < total; i++ {
		b.OnFetch(FetchEvent{Addr: uint32(i) * 8})
	}
	ctx, cancel := context.WithCancel(context.Background())
	var first eventLog
	cancelling := FetchFunc(func(ev FetchEvent) {
		if ev.Addr == uint32(batchLen+1)*8 { // inside the second block
			cancel()
		}
	})
	var last eventLog
	err := b.ReplayAll(ctx, []SinkPair{
		{Fetch: &first},
		{Fetch: cancelling},
		{Fetch: &last},
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled fan-out: err = %v", err)
	}
	if len(first.Fetches) >= total || len(last.Fetches) >= total {
		t.Fatalf("cancelled fan-out delivered full streams: %d/%d of %d",
			len(first.Fetches), len(last.Fetches), total)
	}
	// The block in flight when cancel fired still completes for every sink:
	// sinks never diverge by more than a block boundary.
	if len(first.Fetches) != len(last.Fetches) {
		t.Fatalf("sinks diverged: %d vs %d events", len(first.Fetches), len(last.Fetches))
	}
	if len(first.Fetches)%batchLen != 0 {
		t.Fatalf("delivery stopped mid-block: %d events", len(first.Fetches))
	}
}

// buildInterleaved records nf fetch and nd data events in a deterministic
// seeded interleaving, returning the buffer.
func buildInterleaved(seed int64, nf, nd int) *Buffer {
	r := rand.New(rand.NewSource(seed))
	var b Buffer
	for nf > 0 || nd > 0 {
		if nd == 0 || (nf > 0 && r.Intn(2) == 0) {
			b.OnFetch(randFetch(r))
			nf--
		} else {
			b.OnData(randData(r))
			nd--
		}
	}
	return &b
}

// FuzzBatchShimOrder is the adapter-shim ordering property: for arbitrary
// stream lengths — hitting every alignment of chunk and block boundaries —
// a batched fan-out through the legacy shim delivers exactly the per-event
// reference streams, in order, to every sink of the pass.
func FuzzBatchShimOrder(f *testing.F) {
	f.Add(int64(1), uint16(0), uint16(0))
	f.Add(int64(2), uint16(1), uint16(1))
	f.Add(int64(3), uint16(batchLen-1), uint16(batchLen+1))
	f.Add(int64(4), uint16(batchLen), uint16(2*batchLen))
	f.Add(int64(5), uint16(3*batchLen/2), uint16(batchLen/3))
	f.Fuzz(func(t *testing.T, seed int64, nfRaw, ndRaw uint16) {
		// Cap the stream lengths so a fuzz execution stays fast; block
		// boundaries repeat every batchLen events, so two blocks' worth of
		// slack explores every alignment.
		nf := int(nfRaw) % (2*batchLen + 3)
		nd := int(ndRaw) % (2*batchLen + 3)
		b := buildInterleaved(seed, nf, nd)
		var viaShim eventLog
		var native batchLog
		if err := b.ReplayAll(context.Background(), []SinkPair{
			{Fetch: &viaShim, Data: &viaShim},
			{Fetch: &native, Data: &native},
		}); err != nil {
			t.Fatal(err)
		}
		checkSameStreams(t, b, viaShim.Fetches, viaShim.Datas)
		checkSameStreams(t, b, native.Fetches, native.Datas)
	})
}

// TestBatchShimOrderAcrossChunks is the chunk-boundary case the fuzz
// target's capped lengths cannot reach: streams longer than one 32K-event
// column chunk, replayed through the shim, still match per-event order.
func TestBatchShimOrderAcrossChunks(t *testing.T) {
	b := buildInterleaved(9, chunkLen+batchLen+7, chunkLen+3)
	var viaShim eventLog
	if err := b.ReplayAll(context.Background(), []SinkPair{
		{Fetch: &viaShim, Data: &viaShim},
	}); err != nil {
		t.Fatal(err)
	}
	checkSameStreams(t, b, viaShim.Fetches, viaShim.Datas)
}
