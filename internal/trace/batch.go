package trace

// Batch sink interfaces for the fan-out replay engine.
//
// The per-event FetchSink/DataSink interfaces cost one dynamic dispatch per
// event per sink, which dominates replay once the simulator itself is out of
// the loop. The batch interfaces move the dispatch boundary up to one call
// per decoded event block: Buffer.ReplayAll unpacks each column chunk into a
// []FetchEvent / []DataEvent block once and hands the same block to every
// registered sink, so a controller's inner loop is a devirtualized slice
// walk over its own precomputed shift/mask fields instead of an interface
// call per event.
//
// The event slices a batch sink receives are owned by the replay engine and
// are only valid for the duration of the call: they are reused for the next
// block. Sinks must consume them synchronously and must not retain them.

// FetchBatchSink consumes instruction-fetch events one block at a time, in
// stream order. Implement it alongside OnFetch on hot controllers; sinks
// that only implement the per-event FetchSink are adapted transparently by
// BatchFetchSink.
type FetchBatchSink interface {
	OnFetchBatch(evs []FetchEvent)
}

// DataBatchSink consumes data-access events one block at a time, in stream
// order.
type DataBatchSink interface {
	OnDataBatch(evs []DataEvent)
}

// BatchFetchSink returns s's native batch implementation when it has one,
// and otherwise wraps s in the legacy adapter shim, which unrolls each block
// into per-event OnFetch calls in order — so any FetchSink, however old, can
// join a batched fan-out pass with unchanged semantics.
func BatchFetchSink(s FetchSink) FetchBatchSink {
	if b, ok := s.(FetchBatchSink); ok {
		return b
	}
	return fetchShim{s}
}

// BatchDataSink is BatchFetchSink for the data stream.
func BatchDataSink(s DataSink) DataBatchSink {
	if b, ok := s.(DataBatchSink); ok {
		return b
	}
	return dataShim{s}
}

// fetchShim adapts a per-event sink to the batch interface.
type fetchShim struct{ s FetchSink }

func (sh fetchShim) OnFetchBatch(evs []FetchEvent) {
	for i := range evs {
		sh.s.OnFetch(evs[i])
	}
}

// dataShim adapts a per-event sink to the batch interface.
type dataShim struct{ s DataSink }

func (sh dataShim) OnDataBatch(evs []DataEvent) {
	for i := range evs {
		sh.s.OnData(evs[i])
	}
}
