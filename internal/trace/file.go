package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Binary trace file format, for trace-driven evaluation without re-running
// the simulator: a magic header followed by fixed-size little-endian
// records, interleaved in program order.
//
//	"WMTRACE1" (8 bytes)
//	fetch record: 'F' addr(4) prev(4) kind(1) base(4) disp(4) flags(1)
//	data record:  'D' addr(4) base(4) disp(4) flags(1) size(1)

const fileMagic = "WMTRACE1"

// ErrWriterClosed is reported by Flush when events were recorded after
// Close; the events themselves are dropped.
var ErrWriterClosed = errors.New("trace: writer is closed")

// Writer streams events to an io.Writer in the trace file format. It
// implements both FetchSink and DataSink, so it can be attached to a CPU
// directly (or teed next to live controllers).
type Writer struct {
	w      *bufio.Writer
	under  io.Writer
	err    error
	closed bool
}

// NewWriter starts a trace on w.
func NewWriter(w io.Writer) (*Writer, error) {
	bw := bufio.NewWriterSize(w, 1<<16)
	if _, err := bw.WriteString(fileMagic); err != nil {
		return nil, err
	}
	return &Writer{w: bw, under: w}, nil
}

func (t *Writer) put32(v uint32) {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	if t.err == nil {
		_, t.err = t.w.Write(b[:])
	}
}

func (t *Writer) put8(v byte) {
	if t.err == nil {
		t.err = t.w.WriteByte(v)
	}
}

// OnFetch records one fetch event.
func (t *Writer) OnFetch(ev FetchEvent) {
	t.put8('F')
	t.put32(ev.Addr)
	t.put32(ev.Prev)
	t.put8(byte(ev.Kind))
	t.put32(ev.Base)
	t.put32(uint32(ev.Disp))
	var flags byte
	if ev.First {
		flags |= 1
	}
	t.put8(flags)
}

// OnData records one data event.
func (t *Writer) OnData(ev DataEvent) {
	t.put8('D')
	t.put32(ev.Addr)
	t.put32(ev.Base)
	t.put32(uint32(ev.Disp))
	var flags byte
	if ev.Store {
		flags |= 1
	}
	t.put8(flags)
	t.put8(ev.Size)
}

// Flush finishes the trace and reports any deferred write error.
func (t *Writer) Flush() error {
	if t.err != nil {
		return t.err
	}
	return t.w.Flush()
}

// Close flushes the trace and, when the underlying writer is an io.Closer
// (a file, typically), closes it too. Close is idempotent: the first call
// reports any flush or close error, later calls return nil. Events recorded
// after Close are dropped, and the drop is reported by a subsequent Flush
// as ErrWriterClosed.
func (t *Writer) Close() error {
	if t.closed {
		return nil
	}
	t.closed = true
	err := t.Flush()
	if c, ok := t.under.(io.Closer); ok {
		if cerr := c.Close(); err == nil {
			err = cerr
		}
	}
	if t.err == nil {
		t.err = ErrWriterClosed
	}
	return err
}

// ReadAll parses a trace and dispatches every record to the sinks (either
// may be nil). Records are replayed in their original interleaving.
func ReadAll(r io.Reader, fetch FetchSink, data DataSink) error {
	br := bufio.NewReaderSize(r, 1<<16)
	magic := make([]byte, len(fileMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return fmt.Errorf("trace: reading magic: %w", err)
	}
	if string(magic) != fileMagic {
		return fmt.Errorf("trace: bad magic %q", magic)
	}
	get32 := func() (uint32, error) {
		var b [4]byte
		if _, err := io.ReadFull(br, b[:]); err != nil {
			return 0, err
		}
		return binary.LittleEndian.Uint32(b[:]), nil
	}
	for {
		tag, err := br.ReadByte()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		switch tag {
		case 'F':
			var ev FetchEvent
			if ev.Addr, err = get32(); err != nil {
				return err
			}
			if ev.Prev, err = get32(); err != nil {
				return err
			}
			k, err := br.ReadByte()
			if err != nil {
				return err
			}
			ev.Kind = ControlKind(k)
			if ev.Base, err = get32(); err != nil {
				return err
			}
			d, err := get32()
			if err != nil {
				return err
			}
			ev.Disp = int32(d)
			flags, err := br.ReadByte()
			if err != nil {
				return err
			}
			ev.First = flags&1 != 0
			if fetch != nil {
				fetch.OnFetch(ev)
			}
		case 'D':
			var ev DataEvent
			if ev.Addr, err = get32(); err != nil {
				return err
			}
			if ev.Base, err = get32(); err != nil {
				return err
			}
			d, err := get32()
			if err != nil {
				return err
			}
			ev.Disp = int32(d)
			flags, err := br.ReadByte()
			if err != nil {
				return err
			}
			ev.Store = flags&1 != 0
			if ev.Size, err = br.ReadByte(); err != nil {
				return err
			}
			if data != nil {
				data.OnData(ev)
			}
		default:
			return fmt.Errorf("trace: unknown record tag %#x", tag)
		}
	}
}
