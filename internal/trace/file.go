package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Binary trace file formats, for trace-driven evaluation without re-running
// the simulator. Two formats are readable; WMTRACE2 is what gets written.
//
// WMTRACE1 (legacy, PR 3): a magic header followed by fixed-size
// little-endian records, interleaved in program order.
//
//	"WMTRACE1" (8 bytes)
//	fetch record: 'F' addr(4) prev(4) kind(1) base(4) disp(4) flags(1)
//	data record:  'D' addr(4) base(4) disp(4) flags(1) size(1)
//
// WMTRACE2: the compressed column chunks of columns.go, spilled verbatim —
// a sealed chunk's bytes on disk are its bytes in memory, so loading a
// spill is adoption, not transcoding. See file2.go for the record layout.
// Readers sniff the magic, so spill directories may mix both formats.

const (
	fileMagic  = "WMTRACE1"
	fileMagic2 = "WMTRACE2"
)

// ErrWriterClosed is reported by Flush when events were recorded after
// Close (or after a finalizing Flush); the events themselves are dropped.
var ErrWriterClosed = errors.New("trace: writer is closed")

// newTraceReader wraps r for record-oriented reading.
func newTraceReader(r io.Reader) *bufio.Reader {
	return bufio.NewReaderSize(r, 1<<16)
}

// readMagic consumes the 8-byte magic and reports which format follows.
func readMagic(br *bufio.Reader) (v2 bool, err error) {
	magic := make([]byte, len(fileMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return false, fmt.Errorf("trace: reading magic: %w", err)
	}
	switch string(magic) {
	case fileMagic:
		return false, nil
	case fileMagic2:
		return true, nil
	}
	return false, fmt.Errorf("trace: bad magic %q", magic)
}

// ReadAll parses a trace in either format and dispatches every record to
// the sinks (either may be nil). Records are replayed in their original
// program-order interleaving.
func ReadAll(r io.Reader, fetch FetchSink, data DataSink) error {
	br := newTraceReader(r)
	v2, err := readMagic(br)
	if err != nil {
		return err
	}
	if !v2 {
		return readAll1(br, fetch, data)
	}
	b := new(Buffer)
	if err := readBuffer2(br, b); err != nil {
		return err
	}
	var ffn func(FetchEvent)
	if fetch != nil {
		ffn = fetch.OnFetch
	}
	var dfn func(DataEvent)
	if data != nil {
		dfn = data.OnData
	}
	return b.walk(ffn, dfn)
}

// readAll1 parses the WMTRACE1 record stream following the magic.
func readAll1(br *bufio.Reader, fetch FetchSink, data DataSink) error {
	get32 := func() (uint32, error) {
		var b [4]byte
		if _, err := io.ReadFull(br, b[:]); err != nil {
			return 0, err
		}
		return binary.LittleEndian.Uint32(b[:]), nil
	}
	for {
		tag, err := br.ReadByte()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		switch tag {
		case 'F':
			var ev FetchEvent
			if ev.Addr, err = get32(); err != nil {
				return err
			}
			if ev.Prev, err = get32(); err != nil {
				return err
			}
			k, err := br.ReadByte()
			if err != nil {
				return err
			}
			ev.Kind = ControlKind(k)
			if ev.Base, err = get32(); err != nil {
				return err
			}
			d, err := get32()
			if err != nil {
				return err
			}
			ev.Disp = int32(d)
			flags, err := br.ReadByte()
			if err != nil {
				return err
			}
			ev.First = flags&1 != 0
			if fetch != nil {
				fetch.OnFetch(ev)
			}
		case 'D':
			var ev DataEvent
			if ev.Addr, err = get32(); err != nil {
				return err
			}
			if ev.Base, err = get32(); err != nil {
				return err
			}
			d, err := get32()
			if err != nil {
				return err
			}
			ev.Disp = int32(d)
			flags, err := br.ReadByte()
			if err != nil {
				return err
			}
			ev.Store = flags&1 != 0
			if ev.Size, err = br.ReadByte(); err != nil {
				return err
			}
			if data != nil {
				data.OnData(ev)
			}
		default:
			return fmt.Errorf("trace: unknown record tag %#x", tag)
		}
	}
}

// v1Encoder emits WMTRACE1 records.
type v1Encoder struct {
	w   *bufio.Writer
	err error
}

func (t *v1Encoder) put32(v uint32) {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	if t.err == nil {
		_, t.err = t.w.Write(b[:])
	}
}

func (t *v1Encoder) put8(v byte) {
	if t.err == nil {
		t.err = t.w.WriteByte(v)
	}
}

func (t *v1Encoder) fetch(ev FetchEvent) {
	t.put8('F')
	t.put32(ev.Addr)
	t.put32(ev.Prev)
	t.put8(byte(ev.Kind))
	t.put32(ev.Base)
	t.put32(uint32(ev.Disp))
	var flags byte
	if ev.First {
		flags |= 1
	}
	t.put8(flags)
}

func (t *v1Encoder) data(ev DataEvent) {
	t.put8('D')
	t.put32(ev.Addr)
	t.put32(ev.Base)
	t.put32(uint32(ev.Disp))
	var flags byte
	if ev.Store {
		flags |= 1
	}
	t.put8(flags)
	t.put8(ev.Size)
}

// WriteToV1 spills the buffer in the legacy WMTRACE1 format, preserving the
// recorded program-order interleaving — byte-identical to what the PR 3
// Writer produced for the same streams. It exists for compatibility checks
// and format-size comparisons; new spills use WriteTo.
func (b *Buffer) WriteToV1(w io.Writer) (int64, error) {
	cw := &countingWriter{w: w}
	bw := bufio.NewWriterSize(cw, 1<<16)
	if _, err := bw.WriteString(fileMagic); err != nil {
		return cw.n, err
	}
	enc := &v1Encoder{w: bw}
	if err := b.walk(enc.fetch, enc.data); err != nil {
		return cw.n, err
	}
	if enc.err != nil {
		return cw.n, enc.err
	}
	return cw.n, bw.Flush()
}

// walk replays the buffer in program order, calling the per-event functions
// (either may be nil) in the recorded interleaving. It decodes each stream
// lazily, one block at a time.
func (b *Buffer) walk(fetch func(FetchEvent), data func(DataEvent)) error {
	fit := fetchIter{b: b, ci: -1}
	dit := dataIter{b: b, ci: -1}
	for i := 0; i < b.n; i++ {
		if b.order[i>>6]&(1<<(i&63)) != 0 {
			ev, err := dit.next()
			if err != nil {
				return err
			}
			if data != nil {
				data(ev)
			}
		} else {
			ev, err := fit.next()
			if err != nil {
				return err
			}
			if fetch != nil {
				fetch(ev)
			}
		}
	}
	return nil
}

// fetchIter yields the fetch stream one event at a time for walk, decoding
// sealed chunks block-wise on demand.
type fetchIter struct {
	b      *Buffer
	sc     blockScratch
	blk    [batchLen]FetchEvent
	cu     fetchCursors
	ci     int // chunk being decoded; -1 before the first
	pos, m int // cursor within blk
	idx    int // absolute stream index of blk[0] + m
}

func (it *fetchIter) next() (FetchEvent, error) {
	if it.pos >= it.m {
		if err := it.fill(); err != nil {
			return FetchEvent{}, err
		}
	}
	ev := it.blk[it.pos]
	it.pos++
	return ev, nil
}

func (it *fetchIter) fill() error {
	b := it.b
	full := len(b.fetch) * chunkLen
	switch {
	case it.idx < full:
		ci := it.idx >> chunkShift
		if ci != it.ci {
			if it.ci >= 0 && !it.cu.done() {
				return fmt.Errorf("trace: fetch chunk %d: %w", it.ci, errColumn)
			}
			it.ci = ci
			it.cu = b.fetch[ci].cursors()
		}
		if err := it.cu.decodeBlock(it.blk[:], &it.sc); err != nil {
			return fmt.Errorf("trace: fetch chunk %d: %w", ci, err)
		}
		it.m = batchLen
	case it.idx < b.nf:
		m := min(batchLen, b.nf-it.idx)
		base := it.idx - full
		for i := 0; i < m; i++ {
			it.blk[i] = fetchEventAt(b.fstage, base+i)
		}
		it.m = m
	default:
		return io.ErrUnexpectedEOF
	}
	it.pos = 0
	it.idx += it.m
	return nil
}

// dataIter is fetchIter for the data stream.
type dataIter struct {
	b      *Buffer
	sc     blockScratch
	blk    [batchLen]DataEvent
	cu     dataCursors
	ci     int
	pos, m int
	idx    int
}

func (it *dataIter) next() (DataEvent, error) {
	if it.pos >= it.m {
		if err := it.fill(); err != nil {
			return DataEvent{}, err
		}
	}
	ev := it.blk[it.pos]
	it.pos++
	return ev, nil
}

func (it *dataIter) fill() error {
	b := it.b
	full := len(b.data) * chunkLen
	switch {
	case it.idx < full:
		ci := it.idx >> chunkShift
		if ci != it.ci {
			if it.ci >= 0 && !it.cu.done() {
				return fmt.Errorf("trace: data chunk %d: %w", it.ci, errColumn)
			}
			it.ci = ci
			it.cu = b.data[ci].cursors()
		}
		if err := it.cu.decodeBlock(it.blk[:], &it.sc); err != nil {
			return fmt.Errorf("trace: data chunk %d: %w", ci, err)
		}
		it.m = batchLen
	case it.idx < b.nd:
		m := min(batchLen, b.nd-it.idx)
		base := it.idx - full
		for i := 0; i < m; i++ {
			it.blk[i] = dataEventAt(b.dstage, base+i)
		}
		it.m = m
	default:
		return io.ErrUnexpectedEOF
	}
	it.pos = 0
	it.idx += it.m
	return nil
}
