package trace

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestTeeFanout(t *testing.T) {
	var a, b eventLog
	tee := FetchTee(&a, &b)
	tee.OnFetch(FetchEvent{Addr: 0x100})
	if len(a.Fetches) != 1 || len(b.Fetches) != 1 {
		t.Fatal("tee did not fan out")
	}
	dt := DataTee(&a, &b)
	dt.OnData(DataEvent{Addr: 0x200})
	if len(a.Datas) != 1 || len(b.Datas) != 1 {
		t.Fatal("data tee did not fan out")
	}
}

func TestKindStrings(t *testing.T) {
	for k, want := range map[ControlKind]string{
		KindSeq: "seq", KindBranch: "branch", KindLink: "link", KindIndirect: "indirect",
	} {
		if k.String() != want {
			t.Errorf("%d: %q", k, k.String())
		}
	}
	for c, want := range map[FlowCase]string{
		IntraSeq: "intra-seq", IntraNonSeq: "intra-nonseq",
		InterSeq: "inter-seq", InterNonSeq: "inter-nonseq",
	} {
		if c.String() != want {
			t.Errorf("%d: %q", c, c.String())
		}
	}
}

func randFetch(r *rand.Rand) FetchEvent {
	return FetchEvent{
		Addr:  r.Uint32() &^ 7,
		Prev:  r.Uint32() &^ 7,
		Kind:  ControlKind(r.Intn(4)),
		Base:  r.Uint32(),
		Disp:  int32(r.Uint32()),
		First: r.Intn(10) == 0,
	}
}

func randData(r *rand.Rand) DataEvent {
	sizes := []uint8{1, 2, 4, 8}
	return DataEvent{
		Addr: r.Uint32(), Base: r.Uint32(), Disp: int32(r.Uint32()),
		Store: r.Intn(2) == 0, Size: sizes[r.Intn(4)],
	}
}

// TestFileRoundTrip writes a random interleaving of events and reads it
// back, demanding exact equality and preserved ordering.
func TestFileRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(33))
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	var wantF []FetchEvent
	var wantD []DataEvent
	for i := 0; i < 5000; i++ {
		if r.Intn(2) == 0 {
			ev := randFetch(r)
			wantF = append(wantF, ev)
			w.OnFetch(ev)
		} else {
			ev := randData(r)
			wantD = append(wantD, ev)
			w.OnData(ev)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	var got eventLog
	if err := ReadAll(&buf, &got, &got); err != nil {
		t.Fatal(err)
	}
	if len(got.Fetches) != len(wantF) || len(got.Datas) != len(wantD) {
		t.Fatalf("counts: %d/%d vs %d/%d", len(got.Fetches), len(got.Datas), len(wantF), len(wantD))
	}
	for i := range wantF {
		if got.Fetches[i] != wantF[i] {
			t.Fatalf("fetch %d: %+v != %+v", i, got.Fetches[i], wantF[i])
		}
	}
	for i := range wantD {
		if got.Datas[i] != wantD[i] {
			t.Fatalf("data %d: %+v != %+v", i, got.Datas[i], wantD[i])
		}
	}
}

func TestFileErrors(t *testing.T) {
	if err := ReadAll(strings.NewReader("NOTATRACE"), nil, nil); err == nil {
		t.Fatal("bad magic accepted")
	}
	// Truncated record.
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	w.OnData(DataEvent{Addr: 1, Size: 4})
	w.Flush()
	trunc := buf.Bytes()[:buf.Len()-3]
	if err := ReadAll(bytes.NewReader(trunc), nil, nil); err == nil {
		t.Fatal("truncated trace accepted")
	}
}

// TestClassifyProperty: classification is total and consistent with its
// definition for random events.
func TestClassifyProperty(t *testing.T) {
	f := func(addr, prev uint32, kindRaw uint8) bool {
		ev := FetchEvent{Addr: addr, Prev: prev, Kind: ControlKind(kindRaw % 4)}
		c := Classify(ev, 32)
		sameLine := addr/32 == prev/32
		seq := ev.Kind == KindSeq
		switch c {
		case IntraSeq:
			return sameLine && seq
		case IntraNonSeq:
			return sameLine && !seq
		case InterSeq:
			return !sameLine && seq
		case InterNonSeq:
			return !sameLine && !seq
		}
		return false
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10000}); err != nil {
		t.Fatal(err)
	}
}
