package trace

import (
	"encoding/binary"
	"errors"
)

// Compressed column encoding — the in-memory (and WMTRACE2 on-disk)
// representation of a full event chunk.
//
// Trace addresses are overwhelmingly sequential fetch packets: consecutive
// column values differ by a small constant (the packet stride) except at
// branches, so first-differences are tiny integers almost everywhere. Each
// numeric column of a sealed chunk is therefore stored as zigzag-varint
// encoded wrapping deltas (previous value starts at 0), which lands near one
// byte per value on the paper's workloads — versus four raw. A column whose
// delta stream would not beat the fixed-width form (truly random addresses)
// falls back to raw 4-byte little-endian values; the choice is recorded in a
// per-column flag so the decoder never guesses. The one-byte kind/meta
// columns stay raw.
//
// Decoding happens block-wise during replay: a colCursor walks the encoded
// payload batchLen values at a time into the L2-hot scratch, so nothing above
// the decode layer sees the encoding and the bytes streamed per replay pass
// drop from ~21 per fetch event to the encoded ~5.

// Per-column encoding flags (the first byte of a serialized column).
const (
	colRaw   byte = 0 // 4-byte little-endian values; incompressible fallback
	colDelta byte = 1 // zigzag-varint wrapping first differences, prev = 0
)

// errColumn covers every way an encoded column payload can fail to decode:
// truncation mid-varint, a varint overflowing 32 bits, or a payload whose
// length disagrees with the value count.
var errColumn = errors.New("trace: corrupt column data")

// encCol is one encoded numeric column of a sealed chunk.
type encCol struct {
	flag byte
	data []byte
}

// rawU32 serializes vals as 4-byte little-endian — the incompressible form.
func rawU32(vals []uint32) []byte {
	out := make([]byte, 4*len(vals))
	for i, v := range vals {
		binary.LittleEndian.PutUint32(out[i*4:], v)
	}
	return out
}

// encodeU32Col encodes one column as zigzag-varint deltas, falling back to
// raw the moment the delta stream stops beating the fixed-width form. The
// encoding is deterministic, so re-serializing a buffer is byte-stable.
func encodeU32Col(vals []uint32) encCol {
	limit := 4 * len(vals)
	enc := make([]byte, 0, len(vals)+len(vals)/2)
	prev := uint32(0)
	for _, v := range vals {
		d := v - prev // wrapping delta
		prev = v
		zz := (d << 1) ^ uint32(int32(d)>>31) // zigzag: small |delta| → small zz
		for zz >= 0x80 {
			enc = append(enc, byte(zz)|0x80)
			zz >>= 7
		}
		enc = append(enc, byte(zz))
		if len(enc) >= limit {
			return encCol{flag: colRaw, data: rawU32(vals)}
		}
	}
	return encCol{flag: colDelta, data: enc}
}

// encodeI32Col encodes a signed column via its two's-complement bits; the
// wrapping-delta arithmetic is sign-agnostic.
func encodeI32Col(vals []int32) encCol {
	tmp := make([]uint32, len(vals))
	for i, v := range vals {
		tmp[i] = uint32(v)
	}
	return encodeU32Col(tmp)
}

// colCursor decodes one encoded column incrementally, a block at a time.
type colCursor struct {
	flag byte
	data []byte
	off  int
	prev uint32
}

func (c *encCol) cursor() colCursor {
	return colCursor{flag: c.flag, data: c.data}
}

// decode fills dst with the next len(dst) column values. Truncated or
// overlong varints surface as errColumn, never as wrong values.
func (c *colCursor) decode(dst []uint32) error {
	if c.flag == colRaw {
		need := 4 * len(dst)
		if c.off+need > len(c.data) {
			return errColumn
		}
		p := c.data[c.off : c.off+need]
		for i := range dst {
			dst[i] = binary.LittleEndian.Uint32(p[i*4:])
		}
		c.off += need
		return nil
	}
	data, off, prev := c.data, c.off, c.prev
	for i := range dst {
		if off >= len(data) {
			return errColumn
		}
		b := data[off]
		off++
		zz := uint32(b & 0x7f)
		if b >= 0x80 {
			s := uint(7)
			for {
				if off >= len(data) {
					return errColumn
				}
				b = data[off]
				off++
				if s == 28 && b > 0x0f {
					// A fifth byte may only carry the top 4 bits of a
					// 32-bit value; anything more is corruption.
					return errColumn
				}
				zz |= uint32(b&0x7f) << s
				if b < 0x80 {
					break
				}
				if s == 28 {
					return errColumn
				}
				s += 7
			}
		}
		d := (zz >> 1) ^ -(zz & 1) // un-zigzag
		prev += d
		dst[i] = prev
	}
	c.off, c.prev = off, prev
	return nil
}

// done reports whether the cursor consumed its payload exactly — checked at
// chunk boundaries so trailing garbage inside a column is an error, not
// silently ignored.
func (c *colCursor) done() bool { return c.off == len(c.data) }

// encFetchChunk is one sealed (immutable, compressed) chunk of fetch events.
type encFetchChunk struct {
	n    int // events in the chunk; chunkLen except for a spilled tail
	addr encCol
	prev encCol
	base encCol
	disp encCol
	kind []byte // packed ControlKind + first flag, raw
}

// encDataChunk is one sealed chunk of data events.
type encDataChunk struct {
	n    int
	addr encCol
	base encCol
	disp encCol
	meta []byte // packed size + store flag, raw
}

// sealFetchChunk compresses the first n staged fetch events into an
// immutable chunk. The staging arrays are copied from, never referenced, so
// the caller may immediately reuse them.
func sealFetchChunk(st *fetchChunk, n int) encFetchChunk {
	kind := make([]byte, n)
	copy(kind, st.kind[:n])
	return encFetchChunk{
		n:    n,
		addr: encodeU32Col(st.addr[:n]),
		prev: encodeU32Col(st.prev[:n]),
		base: encodeU32Col(st.base[:n]),
		disp: encodeI32Col(st.disp[:n]),
		kind: kind,
	}
}

// sealDataChunk compresses the first n staged data events.
func sealDataChunk(st *dataChunk, n int) encDataChunk {
	meta := make([]byte, n)
	copy(meta, st.meta[:n])
	return encDataChunk{
		n:    n,
		addr: encodeU32Col(st.addr[:n]),
		base: encodeU32Col(st.base[:n]),
		disp: encodeI32Col(st.disp[:n]),
		meta: meta,
	}
}

// encodedBytes sums the chunk's column payloads — the bytes a replay pass
// actually streams for it.
func (ch *encFetchChunk) encodedBytes() int {
	return len(ch.addr.data) + len(ch.prev.data) + len(ch.base.data) +
		len(ch.disp.data) + len(ch.kind)
}

func (ch *encDataChunk) encodedBytes() int {
	return len(ch.addr.data) + len(ch.base.data) + len(ch.disp.data) + len(ch.meta)
}

// blockScratch is the per-replay column decode scratch: four batchLen-value
// lanes the cursors decode into before events are assembled. One instance
// per replay pass, reused for every block.
type blockScratch struct {
	a, b, c, d [batchLen]uint32
}

// fetchCursors tracks a decode in progress over one sealed fetch chunk.
type fetchCursors struct {
	addr, prev, base, disp colCursor
	kind                   []byte
	koff                   int
}

func (ch *encFetchChunk) cursors() fetchCursors {
	return fetchCursors{
		addr: ch.addr.cursor(),
		prev: ch.prev.cursor(),
		base: ch.base.cursor(),
		disp: ch.disp.cursor(),
		kind: ch.kind,
	}
}

// decodeBlock decodes the next len(dst) events into dst.
func (cu *fetchCursors) decodeBlock(dst []FetchEvent, sc *blockScratch) error {
	m := len(dst)
	if cu.koff+m > len(cu.kind) {
		return errColumn
	}
	if err := cu.addr.decode(sc.a[:m]); err != nil {
		return err
	}
	if err := cu.prev.decode(sc.b[:m]); err != nil {
		return err
	}
	if err := cu.base.decode(sc.c[:m]); err != nil {
		return err
	}
	if err := cu.disp.decode(sc.d[:m]); err != nil {
		return err
	}
	kind := cu.kind[cu.koff : cu.koff+m]
	cu.koff += m
	for i := 0; i < m; i++ {
		k := kind[i]
		dst[i] = FetchEvent{
			Addr:  sc.a[i],
			Prev:  sc.b[i],
			Base:  sc.c[i],
			Disp:  int32(sc.d[i]),
			Kind:  ControlKind(k & fetchKindMask),
			First: k&fetchFirstFlag != 0,
		}
	}
	return nil
}

// done reports whether every column was consumed exactly.
func (cu *fetchCursors) done() bool {
	return cu.addr.done() && cu.prev.done() && cu.base.done() &&
		cu.disp.done() && cu.koff == len(cu.kind)
}

// dataCursors tracks a decode in progress over one sealed data chunk.
type dataCursors struct {
	addr, base, disp colCursor
	meta             []byte
	moff             int
}

func (ch *encDataChunk) cursors() dataCursors {
	return dataCursors{
		addr: ch.addr.cursor(),
		base: ch.base.cursor(),
		disp: ch.disp.cursor(),
		meta: ch.meta,
	}
}

// decodeBlock decodes the next len(dst) events into dst.
func (cu *dataCursors) decodeBlock(dst []DataEvent, sc *blockScratch) error {
	m := len(dst)
	if cu.moff+m > len(cu.meta) {
		return errColumn
	}
	if err := cu.addr.decode(sc.a[:m]); err != nil {
		return err
	}
	if err := cu.base.decode(sc.b[:m]); err != nil {
		return err
	}
	if err := cu.disp.decode(sc.c[:m]); err != nil {
		return err
	}
	meta := cu.meta[cu.moff : cu.moff+m]
	cu.moff += m
	for i := 0; i < m; i++ {
		mt := meta[i]
		dst[i] = DataEvent{
			Addr:  sc.a[i],
			Base:  sc.b[i],
			Disp:  int32(sc.c[i]),
			Size:  mt & dataSizeMask,
			Store: mt&dataStoreFlag != 0,
		}
	}
	return nil
}

// done reports whether every column was consumed exactly.
func (cu *dataCursors) done() bool {
	return cu.addr.done() && cu.base.done() && cu.disp.done() &&
		cu.moff == len(cu.meta)
}

// decodeFetchChunk expands a sealed chunk back into staging columns — the
// load path for a partial tail chunk, which must stay appendable.
func decodeFetchChunk(ch *encFetchChunk, st *fetchChunk) error {
	n := ch.n
	cu := fetchCursors{
		addr: ch.addr.cursor(),
		prev: ch.prev.cursor(),
		base: ch.base.cursor(),
		disp: ch.disp.cursor(),
		kind: ch.kind,
	}
	var tmp [batchLen]uint32
	for off := 0; off < n; off += batchLen {
		m := min(batchLen, n-off)
		if err := cu.addr.decode(st.addr[off : off+m]); err != nil {
			return err
		}
		if err := cu.prev.decode(st.prev[off : off+m]); err != nil {
			return err
		}
		if err := cu.base.decode(st.base[off : off+m]); err != nil {
			return err
		}
		if err := cu.disp.decode(tmp[:m]); err != nil {
			return err
		}
		for i := 0; i < m; i++ {
			st.disp[off+i] = int32(tmp[i])
		}
	}
	copy(st.kind[:n], ch.kind)
	cu.koff = len(ch.kind)
	if !cu.done() {
		return errColumn
	}
	return nil
}

// decodeDataChunk is decodeFetchChunk for the data stream.
func decodeDataChunk(ch *encDataChunk, st *dataChunk) error {
	n := ch.n
	cu := dataCursors{
		addr: ch.addr.cursor(),
		base: ch.base.cursor(),
		disp: ch.disp.cursor(),
		meta: ch.meta,
	}
	var tmp [batchLen]uint32
	for off := 0; off < n; off += batchLen {
		m := min(batchLen, n-off)
		if err := cu.addr.decode(st.addr[off : off+m]); err != nil {
			return err
		}
		if err := cu.base.decode(st.base[off : off+m]); err != nil {
			return err
		}
		if err := cu.disp.decode(tmp[:m]); err != nil {
			return err
		}
		for i := 0; i < m; i++ {
			st.disp[off+i] = int32(tmp[i])
		}
	}
	copy(st.meta[:n], ch.meta)
	cu.moff = len(ch.meta)
	if !cu.done() {
		return errColumn
	}
	return nil
}
