package trace

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// goldenStream regenerates the deterministic event mix that produced
// testdata/golden_v1.wmtrace with the PR 3 WMTRACE1 writer: mostly
// sequential fetch packets with periodic branches, links and indirect jumps,
// and a data access every fifth event. It must never change — the fixture
// bytes pin the legacy format.
func goldenStream() (fs []FetchEvent, ds []DataEvent, order []bool) {
	x := uint32(0x9e3779b9)
	rnd := func() uint32 { x ^= x << 13; x ^= x >> 17; x ^= x << 5; return x }
	addr, prev := uint32(0x1000), uint32(0)
	sizes := []uint8{1, 2, 4, 8}
	for i := 0; i < 1024; i++ {
		if i%5 == 3 {
			base := rnd()
			disp := int32(rnd()%4096) - 2048
			ds = append(ds, DataEvent{Addr: base + uint32(disp), Base: base, Disp: disp, Store: i%2 == 0, Size: sizes[i%4]})
			order = append(order, true)
			continue
		}
		ev := FetchEvent{Prev: prev, First: i == 0}
		switch {
		case i%31 == 7:
			ev.Kind = KindIndirect
			ev.Addr = (0xfffffff8 - addr) &^ 7
		case i%13 == 4:
			ev.Kind = KindBranch
			ev.Base = addr
			ev.Disp = int32(rnd()%8192) - 4096
			ev.Addr = (ev.Base + uint32(ev.Disp)) &^ 7
		case i%17 == 11:
			ev.Kind = KindLink
			ev.Base = rnd() &^ 7
			ev.Addr = ev.Base
		default:
			ev.Kind = KindSeq
			ev.Base = addr
			ev.Disp = 8
			ev.Addr = addr + 8
		}
		prev, addr = ev.Addr, ev.Addr
		fs = append(fs, ev)
		order = append(order, false)
	}
	return fs, ds, order
}

// TestGoldenWMTRACE1 proves WMTRACE1 files written by earlier PRs still
// load bit-identically: the committed fixture (written by the PR 3 Writer,
// before compressed columns existed) must decode to exactly the generating
// stream, survive a Buffer round trip, and re-serialize via WriteToV1 to
// the fixture's exact bytes.
func TestGoldenWMTRACE1(t *testing.T) {
	raw, err := os.ReadFile(filepath.Join("testdata", "golden_v1.wmtrace"))
	if err != nil {
		t.Fatal(err)
	}
	wantF, wantD, order := goldenStream()

	var got eventLog
	if err := ReadAll(bytes.NewReader(raw), &got, &got); err != nil {
		t.Fatal(err)
	}
	if len(got.Fetches) != len(wantF) || len(got.Datas) != len(wantD) {
		t.Fatalf("fixture decodes to %d/%d events, want %d/%d",
			len(got.Fetches), len(got.Datas), len(wantF), len(wantD))
	}
	for i := range wantF {
		if got.Fetches[i] != wantF[i] {
			t.Fatalf("fetch %d: %+v != %+v", i, got.Fetches[i], wantF[i])
		}
	}
	for i := range wantD {
		if got.Datas[i] != wantD[i] {
			t.Fatalf("data %d: %+v != %+v", i, got.Datas[i], wantD[i])
		}
	}

	// The loaded buffer preserves the interleaving and the v1 writer still
	// reproduces the legacy bytes exactly.
	b, err := ReadBuffer(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	var again bytes.Buffer
	if _, err := b.WriteToV1(&again); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(again.Bytes(), raw) {
		t.Fatal("WriteToV1 does not reproduce the golden fixture bit-identically")
	}

	// And the modern spill of the same events replays identically.
	var v2 bytes.Buffer
	if _, err := b.WriteTo(&v2); err != nil {
		t.Fatal(err)
	}
	b2, err := ReadBuffer(bytes.NewReader(v2.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var got2 eventLog
	if err := b2.Replay(t.Context(), &got2, &got2); err != nil {
		t.Fatal(err)
	}
	if len(got2.Fetches) != len(wantF) || len(got2.Datas) != len(wantD) {
		t.Fatalf("v2 round trip: %d/%d events", len(got2.Fetches), len(got2.Datas))
	}
	for i := range wantF {
		if got2.Fetches[i] != wantF[i] {
			t.Fatalf("v2 fetch %d differs", i)
		}
	}
	if len(order) != b.Len() {
		t.Fatalf("order length %d, buffer %d", len(order), b.Len())
	}

	// The golden mix is dominated by sequential packets: the compressed
	// spill must be well under half the v1 size.
	if v2.Len()*2 >= len(raw) {
		t.Fatalf("WMTRACE2 spill %dB not ≤ 0.5× WMTRACE1 %dB", v2.Len(), len(raw))
	}
}
