package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math/bits"
)

// WMTRACE2 record layout. After the 8-byte magic, the file is a sequence of
// CRC-framed records, each one sealed column chunk or the trailer:
//
//	record:  tag(1) uvarint(bodyLen) body crc32(body, IEEE, 4 bytes LE)
//	tag 'F': fetch chunk — body: uvarint(n) col(addr) col(prev) col(base)
//	         col(disp) kind[n]
//	tag 'D': data chunk  — body: uvarint(n) col(addr) col(base) col(disp)
//	         meta[n]
//	tag 'E': trailer     — body: uvarint(nf) uvarint(nd)
//	         orderBitmap[ceil((nf+nd)/8)]
//	col:     flag(1) uvarint(payloadLen) payload
//
// A col payload is either raw 4-byte little-endian values (flag 0) or
// zigzag-varint wrapping first differences (flag 1) — see columns.go. A
// chunk holds chunkLen events except the last chunk of each stream, which
// may be shorter (1..chunkLen); chunks appear in stream order, the two
// streams' chunks interleaved in completion order. The trailer's bitmap is
// one bit per event in program order, LSB-first within each byte: 0 =
// fetch, 1 = data; its popcount must equal nd and padding bits must be
// zero. The trailer is last — trailing bytes after it are an error, so
// truncation anywhere is detected. Every body is CRC-checked on read:
// corruption (flipped flags included) fails the load rather than decoding
// to wrong events.

const (
	recFetch = 'F'
	recData  = 'D'
	recEnd   = 'E'

	// maxRecordBody bounds one record's body allocation while reading: a
	// worst-case legitimate chunk (five raw columns of a full chunk) is
	// under 700KB, so 4MB catches crafted lengths long before allocation
	// hurts.
	maxRecordBody = 4 << 20
)

// recordWriter assembles and emits CRC-framed records.
type recordWriter struct {
	w    *bufio.Writer
	body []byte
	err  error
}

func (rw *recordWriter) col(c encCol) {
	rw.body = append(rw.body, c.flag)
	rw.body = binary.AppendUvarint(rw.body, uint64(len(c.data)))
	rw.body = append(rw.body, c.data...)
}

// emit frames the assembled body as one record.
func (rw *recordWriter) emit(tag byte) {
	if rw.err != nil {
		return
	}
	var hdr [binary.MaxVarintLen64 + 1]byte
	hdr[0] = tag
	n := binary.PutUvarint(hdr[1:], uint64(len(rw.body)))
	if _, err := rw.w.Write(hdr[:1+n]); err != nil {
		rw.err = err
		return
	}
	if _, err := rw.w.Write(rw.body); err != nil {
		rw.err = err
		return
	}
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], crc32.ChecksumIEEE(rw.body))
	if _, err := rw.w.Write(crc[:]); err != nil {
		rw.err = err
	}
}

func (rw *recordWriter) fetchChunk(ch *encFetchChunk) {
	rw.body = rw.body[:0]
	rw.body = binary.AppendUvarint(rw.body, uint64(ch.n))
	rw.col(ch.addr)
	rw.col(ch.prev)
	rw.col(ch.base)
	rw.col(ch.disp)
	rw.body = append(rw.body, ch.kind...)
	rw.emit(recFetch)
}

func (rw *recordWriter) dataChunk(ch *encDataChunk) {
	rw.body = rw.body[:0]
	rw.body = binary.AppendUvarint(rw.body, uint64(ch.n))
	rw.col(ch.addr)
	rw.col(ch.base)
	rw.col(ch.disp)
	rw.body = append(rw.body, ch.meta...)
	rw.emit(recData)
}

func (rw *recordWriter) trailer(nf, nd int, order []uint64) {
	rw.body = rw.body[:0]
	rw.body = binary.AppendUvarint(rw.body, uint64(nf))
	rw.body = binary.AppendUvarint(rw.body, uint64(nd))
	n := nf + nd
	for i := 0; i < (n+7)/8; i++ {
		rw.body = append(rw.body, byte(order[i>>3]>>((i&7)*8)))
	}
	rw.emit(recEnd)
}

// WriteTo spills the buffer to w in the WMTRACE2 file format: sealed chunks
// verbatim (no re-encode), partial tails sealed in place, and the
// program-order interleaving in the trailer bitmap — so the resulting file
// is byte-identical to one written by attaching a Writer to the CPU
// directly. It implements io.WriterTo.
func (b *Buffer) WriteTo(w io.Writer) (int64, error) {
	cw := &countingWriter{w: w}
	bw := bufio.NewWriterSize(cw, 1<<16)
	if _, err := bw.WriteString(fileMagic2); err != nil {
		return cw.n, err
	}
	rw := &recordWriter{w: bw}
	// Walk the interleaving emitting each stream's sealed chunks at the
	// exact position a live Writer would have: the moment the stream's
	// event count crosses a chunk boundary.
	fi, di := 0, 0
	for i := 0; i < b.n && rw.err == nil; i++ {
		if b.order[i>>6]&(1<<(i&63)) != 0 {
			di++
			if di&chunkMask == 0 {
				rw.dataChunk(&b.data[(di>>chunkShift)-1])
			}
		} else {
			fi++
			if fi&chunkMask == 0 {
				rw.fetchChunk(&b.fetch[(fi>>chunkShift)-1])
			}
		}
	}
	if tail := b.nf & chunkMask; tail > 0 && rw.err == nil {
		ch := sealFetchChunk(b.fstage, tail)
		rw.fetchChunk(&ch)
	}
	if tail := b.nd & chunkMask; tail > 0 && rw.err == nil {
		ch := sealDataChunk(b.dstage, tail)
		rw.dataChunk(&ch)
	}
	rw.trailer(b.nf, b.nd, b.order)
	if rw.err != nil {
		return cw.n, rw.err
	}
	return cw.n, bw.Flush()
}

// Writer streams events to an io.Writer in the WMTRACE2 file format. It
// implements both FetchSink and DataSink, so it can be attached to a CPU
// directly (or teed next to live controllers). Events are staged in memory
// and written out one sealed chunk at a time as chunks fill; Flush (or
// Close) finalizes the trace with the partial tails and the trailer. The
// bytes produced are identical to capturing into a Buffer and calling
// WriteTo.
type Writer struct {
	under     io.Writer
	w         *bufio.Writer
	rw        recordWriter
	buf       Buffer
	emittedF  int
	emittedD  int
	err       error
	closed    bool
	finalized bool
}

// NewWriter starts a trace on w.
func NewWriter(w io.Writer) (*Writer, error) {
	bw := bufio.NewWriterSize(w, 1<<16)
	if _, err := bw.WriteString(fileMagic2); err != nil {
		return nil, err
	}
	return &Writer{under: w, w: bw, rw: recordWriter{w: bw}}, nil
}

// OnFetch records one fetch event.
func (t *Writer) OnFetch(ev FetchEvent) {
	if t.finalized {
		if t.err == nil {
			t.err = ErrWriterClosed
		}
		return
	}
	t.buf.OnFetch(ev)
	for len(t.buf.fetch) > t.emittedF {
		t.rw.fetchChunk(&t.buf.fetch[t.emittedF])
		t.buf.fetch[t.emittedF] = encFetchChunk{} // emitted; release the memory
		t.emittedF++
	}
}

// OnData records one data event.
func (t *Writer) OnData(ev DataEvent) {
	if t.finalized {
		if t.err == nil {
			t.err = ErrWriterClosed
		}
		return
	}
	t.buf.OnData(ev)
	for len(t.buf.data) > t.emittedD {
		t.rw.dataChunk(&t.buf.data[t.emittedD])
		t.buf.data[t.emittedD] = encDataChunk{}
		t.emittedD++
	}
}

// Flush finalizes the trace — the partial chunk tails and the trailer are
// written — and reports any deferred write error. The trace is complete
// afterwards: events recorded later are dropped, and the drop is reported
// by a subsequent Flush as ErrWriterClosed.
func (t *Writer) Flush() error {
	if t.err == nil && t.rw.err != nil {
		t.err = t.rw.err
	}
	if t.err != nil {
		return t.err
	}
	if !t.finalized {
		t.finalized = true
		if tail := t.buf.nf & chunkMask; tail > 0 {
			ch := sealFetchChunk(t.buf.fstage, tail)
			t.rw.fetchChunk(&ch)
		}
		if tail := t.buf.nd & chunkMask; tail > 0 {
			ch := sealDataChunk(t.buf.dstage, tail)
			t.rw.dataChunk(&ch)
		}
		t.rw.trailer(t.buf.nf, t.buf.nd, t.buf.order)
		if t.rw.err != nil {
			t.err = t.rw.err
			return t.err
		}
	}
	return t.w.Flush()
}

// Close flushes the trace and, when the underlying writer is an io.Closer
// (a file, typically), closes it too. Close is idempotent: the first call
// reports any flush or close error, later calls return nil. Events recorded
// after Close are dropped, and the drop is reported by a subsequent Flush
// as ErrWriterClosed.
func (t *Writer) Close() error {
	if t.closed {
		return nil
	}
	t.closed = true
	err := t.Flush()
	if c, ok := t.under.(io.Closer); ok {
		if cerr := c.Close(); err == nil {
			err = cerr
		}
	}
	if t.err == nil {
		t.err = ErrWriterClosed
	}
	return err
}

// eofUnexpected maps a mid-record io.EOF to io.ErrUnexpectedEOF.
func eofUnexpected(err error) error {
	if err == io.EOF {
		return io.ErrUnexpectedEOF
	}
	return err
}

// bodyParser walks one record body with bounds checks.
type bodyParser struct {
	data []byte
	off  int
}

func (p *bodyParser) uvarint() (uint64, error) {
	v, n := binary.Uvarint(p.data[p.off:])
	if n <= 0 {
		return 0, fmt.Errorf("trace: bad record varint")
	}
	p.off += n
	return v, nil
}

func (p *bodyParser) take(n int) ([]byte, error) {
	if n < 0 || p.off+n > len(p.data) {
		return nil, fmt.Errorf("trace: record body too short")
	}
	out := p.data[p.off : p.off+n]
	p.off += n
	return out, nil
}

func (p *bodyParser) done() bool { return p.off == len(p.data) }

// col parses one serialized column of n values.
func (p *bodyParser) col(n int) (encCol, error) {
	fb, err := p.take(1)
	if err != nil {
		return encCol{}, err
	}
	flag := fb[0]
	if flag != colRaw && flag != colDelta {
		return encCol{}, fmt.Errorf("trace: unknown column flag %#x", flag)
	}
	plen64, err := p.uvarint()
	if err != nil {
		return encCol{}, err
	}
	plen := int(plen64)
	if flag == colRaw && plen != 4*n {
		return encCol{}, fmt.Errorf("trace: raw column of %d values has %d payload bytes", n, plen)
	}
	payload, err := p.take(plen)
	if err != nil {
		return encCol{}, err
	}
	return encCol{flag: flag, data: payload}, nil
}

// chunkCount parses and validates a chunk's leading event count.
func (p *bodyParser) chunkCount() (int, error) {
	n64, err := p.uvarint()
	if err != nil {
		return 0, err
	}
	if n64 < 1 || n64 > chunkLen {
		return 0, fmt.Errorf("trace: chunk of %d events", n64)
	}
	return int(n64), nil
}

// parseFetchChunk decodes one fetch chunk body. The returned chunk's column
// slices alias the body.
func parseFetchChunk(body []byte) (encFetchChunk, error) {
	p := bodyParser{data: body}
	n, err := p.chunkCount()
	if err != nil {
		return encFetchChunk{}, err
	}
	ch := encFetchChunk{n: n}
	if ch.addr, err = p.col(n); err != nil {
		return encFetchChunk{}, err
	}
	if ch.prev, err = p.col(n); err != nil {
		return encFetchChunk{}, err
	}
	if ch.base, err = p.col(n); err != nil {
		return encFetchChunk{}, err
	}
	if ch.disp, err = p.col(n); err != nil {
		return encFetchChunk{}, err
	}
	if ch.kind, err = p.take(n); err != nil {
		return encFetchChunk{}, err
	}
	if !p.done() {
		return encFetchChunk{}, fmt.Errorf("trace: trailing bytes in fetch chunk")
	}
	return ch, nil
}

// parseDataChunk decodes one data chunk body.
func parseDataChunk(body []byte) (encDataChunk, error) {
	p := bodyParser{data: body}
	n, err := p.chunkCount()
	if err != nil {
		return encDataChunk{}, err
	}
	ch := encDataChunk{n: n}
	if ch.addr, err = p.col(n); err != nil {
		return encDataChunk{}, err
	}
	if ch.base, err = p.col(n); err != nil {
		return encDataChunk{}, err
	}
	if ch.disp, err = p.col(n); err != nil {
		return encDataChunk{}, err
	}
	if ch.meta, err = p.take(n); err != nil {
		return encDataChunk{}, err
	}
	if !p.done() {
		return encDataChunk{}, fmt.Errorf("trace: trailing bytes in data chunk")
	}
	return ch, nil
}

// adoptFetchChunk appends a parsed chunk to the loading buffer. A full
// chunk is adopted verbatim; a short chunk must be the stream's last and is
// decoded back into staging so the buffer stays appendable.
func (b *Buffer) adoptFetchChunk(ch encFetchChunk) error {
	if b.nf&chunkMask != 0 {
		return fmt.Errorf("trace: fetch chunk after the stream's tail chunk")
	}
	if ch.n == chunkLen {
		b.fetch = append(b.fetch, ch)
	} else {
		b.fstage = new(fetchChunk)
		if err := decodeFetchChunk(&ch, b.fstage); err != nil {
			return fmt.Errorf("trace: fetch tail chunk: %w", err)
		}
	}
	b.nf += ch.n
	return nil
}

func (b *Buffer) adoptDataChunk(ch encDataChunk) error {
	if b.nd&chunkMask != 0 {
		return fmt.Errorf("trace: data chunk after the stream's tail chunk")
	}
	if ch.n == chunkLen {
		b.data = append(b.data, ch)
	} else {
		b.dstage = new(dataChunk)
		if err := decodeDataChunk(&ch, b.dstage); err != nil {
			return fmt.Errorf("trace: data tail chunk: %w", err)
		}
	}
	b.nd += ch.n
	return nil
}

// adoptTrailer validates the trailer against the adopted chunks and
// installs the interleaving bitmap.
func (b *Buffer) adoptTrailer(body []byte) error {
	p := bodyParser{data: body}
	nf64, err := p.uvarint()
	if err != nil {
		return err
	}
	nd64, err := p.uvarint()
	if err != nil {
		return err
	}
	if nf64 != uint64(b.nf) || nd64 != uint64(b.nd) {
		return fmt.Errorf("trace: trailer counts %d/%d, chunks held %d/%d",
			nf64, nd64, b.nf, b.nd)
	}
	n := b.nf + b.nd
	bitmap, err := p.take((n + 7) / 8)
	if err != nil {
		return err
	}
	if !p.done() {
		return fmt.Errorf("trace: trailing bytes in trailer")
	}
	order := make([]uint64, (n+63)/64)
	ones := 0
	for i, bb := range bitmap {
		order[i>>3] |= uint64(bb) << ((i & 7) * 8)
		ones += bits.OnesCount8(bb)
	}
	if ones != b.nd {
		return fmt.Errorf("trace: order bitmap has %d data bits, want %d", ones, b.nd)
	}
	// Padding bits past the last event must be zero, so the bitmap has one
	// canonical form.
	if n&63 != 0 && len(order) > 0 && order[len(order)-1]>>(n&63) != 0 {
		return fmt.Errorf("trace: nonzero padding in order bitmap")
	}
	b.order = order
	b.n = n
	return nil
}

// readBuffer2 parses the WMTRACE2 record stream following the magic into b.
func readBuffer2(br *bufio.Reader, b *Buffer) error {
	for {
		tag, err := br.ReadByte()
		if err != nil {
			return fmt.Errorf("trace: reading record tag: %w", eofUnexpected(err))
		}
		bodyLen, err := binary.ReadUvarint(br)
		if err != nil {
			return fmt.Errorf("trace: record length: %w", eofUnexpected(err))
		}
		if bodyLen > maxRecordBody {
			return fmt.Errorf("trace: record body of %d bytes exceeds limit", bodyLen)
		}
		body := make([]byte, bodyLen)
		if _, err := io.ReadFull(br, body); err != nil {
			return fmt.Errorf("trace: record body: %w", eofUnexpected(err))
		}
		var crcb [4]byte
		if _, err := io.ReadFull(br, crcb[:]); err != nil {
			return fmt.Errorf("trace: record checksum: %w", eofUnexpected(err))
		}
		if got := crc32.ChecksumIEEE(body); got != binary.LittleEndian.Uint32(crcb[:]) {
			return fmt.Errorf("trace: record %q checksum mismatch", rune(tag))
		}
		switch tag {
		case recFetch:
			ch, err := parseFetchChunk(body)
			if err != nil {
				return err
			}
			if err := b.adoptFetchChunk(ch); err != nil {
				return err
			}
		case recData:
			ch, err := parseDataChunk(body)
			if err != nil {
				return err
			}
			if err := b.adoptDataChunk(ch); err != nil {
				return err
			}
		case recEnd:
			if err := b.adoptTrailer(body); err != nil {
				return err
			}
			if _, err := br.ReadByte(); err != io.EOF {
				return fmt.Errorf("trace: trailing data after trailer")
			}
			return nil
		default:
			return fmt.Errorf("trace: unknown record tag %#x", tag)
		}
	}
}
