package trace

import (
	"context"
	"fmt"
	"io"
)

// Buffer is a compact in-memory recording of one execution's event streams,
// built for the execute-once / replay-many pattern: the simulator runs a
// workload once with the Buffer attached as both sinks, and the captured
// streams are then replayed to any number of cache techniques and geometries
// without re-executing a single instruction — all of them in one batched
// pass over the storage (ReplayAll), so the capture streams through memory
// once per sweep, not once per technique.
//
// Events are packed into fixed-size column chunks (structure-of-arrays, 21
// bytes per fetch event and 13 per data event instead of the 24/16 of the
// unpacked structs), so a full seven-benchmark capture of the paper's suite
// fits in ~200MB and replay walks memory linearly. The program-order
// interleaving of the two streams is kept as one bit per event, which is
// what lets WriteTo spill the buffer to the WMTRACE1 file format and
// ReadBuffer reload it losslessly.
//
// A Buffer is append-only: it implements FetchSink and DataSink for capture
// and is safe for any number of concurrent replays once capture has
// finished. It is not safe to append and replay concurrently.
type Buffer struct {
	fetch []*fetchChunk
	data  []*dataChunk
	nf    int
	nd    int

	// order holds one bit per recorded event in arrival order: 0 = fetch,
	// 1 = data. It preserves the program-order interleaving for WriteTo.
	order []uint64
	n     int
}

const (
	chunkShift = 15
	chunkLen   = 1 << chunkShift // events per chunk
	chunkMask  = chunkLen - 1

	// kind column packing: low 7 bits hold the ControlKind, the top bit
	// flags the first fetch after reset.
	fetchKindMask  = 0x7f
	fetchFirstFlag = 0x80

	// meta column packing: low 7 bits hold the access size, the top bit
	// flags a store.
	dataSizeMask  = 0x7f
	dataStoreFlag = 0x80
)

// fetchChunk is one column-packed block of fetch events.
type fetchChunk struct {
	addr [chunkLen]uint32
	prev [chunkLen]uint32
	base [chunkLen]uint32
	disp [chunkLen]int32
	kind [chunkLen]uint8
}

// dataChunk is one column-packed block of data events.
type dataChunk struct {
	addr [chunkLen]uint32
	base [chunkLen]uint32
	disp [chunkLen]int32
	meta [chunkLen]uint8
}

// NumFetches returns the number of recorded fetch events.
func (b *Buffer) NumFetches() int { return b.nf }

// NumDatas returns the number of recorded data events.
func (b *Buffer) NumDatas() int { return b.nd }

// Len returns the total number of recorded events.
func (b *Buffer) Len() int { return b.n }

func (b *Buffer) pushOrder(isData bool) {
	if b.n&63 == 0 {
		b.order = append(b.order, 0)
	}
	if isData {
		b.order[b.n>>6] |= 1 << (b.n & 63)
	}
	b.n++
}

// OnFetch appends one fetch event to the buffer.
func (b *Buffer) OnFetch(ev FetchEvent) {
	i := b.nf & chunkMask
	if i == 0 {
		b.fetch = append(b.fetch, new(fetchChunk))
	}
	ch := b.fetch[len(b.fetch)-1]
	ch.addr[i] = ev.Addr
	ch.prev[i] = ev.Prev
	ch.base[i] = ev.Base
	ch.disp[i] = ev.Disp
	k := uint8(ev.Kind) & fetchKindMask
	if ev.First {
		k |= fetchFirstFlag
	}
	ch.kind[i] = k
	b.nf++
	b.pushOrder(false)
}

// OnData appends one data event to the buffer.
func (b *Buffer) OnData(ev DataEvent) {
	i := b.nd & chunkMask
	if i == 0 {
		b.data = append(b.data, new(dataChunk))
	}
	ch := b.data[len(b.data)-1]
	ch.addr[i] = ev.Addr
	ch.base[i] = ev.Base
	ch.disp[i] = ev.Disp
	m := ev.Size & dataSizeMask
	if ev.Store {
		m |= dataStoreFlag
	}
	ch.meta[i] = m
	b.nd++
	b.pushOrder(true)
}

// FetchAt returns the i-th recorded fetch event.
func (b *Buffer) FetchAt(i int) FetchEvent {
	ch := b.fetch[i>>chunkShift]
	j := i & chunkMask
	return FetchEvent{
		Addr:  ch.addr[j],
		Prev:  ch.prev[j],
		Base:  ch.base[j],
		Disp:  ch.disp[j],
		Kind:  ControlKind(ch.kind[j] & fetchKindMask),
		First: ch.kind[j]&fetchFirstFlag != 0,
	}
}

// DataAt returns the i-th recorded data event.
func (b *Buffer) DataAt(i int) DataEvent {
	ch := b.data[i>>chunkShift]
	j := i & chunkMask
	return DataEvent{
		Addr:  ch.addr[j],
		Base:  ch.base[j],
		Disp:  ch.disp[j],
		Size:  ch.meta[j] & dataSizeMask,
		Store: ch.meta[j]&dataStoreFlag != 0,
	}
}

// SinkPair registers one consumer's sinks for a fan-out replay pass. Either
// sink may be nil; every technique in this repository consumes exactly one
// stream.
type SinkPair struct {
	Fetch FetchSink
	Data  DataSink
}

// batchLen is the number of events decoded per fan-out block: large enough
// that the one dynamic dispatch per block per sink is noise, small enough
// that the decoded block (~96KB of fetch events) stays resident in L2 while
// every sink of the pass walks it.
const batchLen = 4096

// Replay feeds both recorded streams to the sinks (either may be nil). It
// is ReplayAll over a single pair; see ReplayAll for ordering and
// cancellation semantics.
func (b *Buffer) Replay(ctx context.Context, fetch FetchSink, data DataSink) error {
	return b.ReplayAll(ctx, []SinkPair{{Fetch: fetch, Data: data}})
}

// ReplayAll fans the capture out to every registered sink in a single pass:
// each column chunk is decoded into event blocks once, and each block is
// handed to all sinks (native batch sinks directly, legacy per-event sinks
// through the adapter shim) before the next block is touched — so an
// N-technique sweep streams the buffer once instead of N times and the hot
// block stays cache-resident. Per-sink event order is exactly capture
// order, identical to N independent Replay calls.
//
// The two streams are replayed back to back, not interleaved: every sink in
// this repository consumes exactly one stream, so per-stream order — which
// is preserved exactly — is the only order that matters. Use WriteTo for a
// faithful program-order interleaving.
//
// ctx is checked between blocks, so a sweep cancels mid-fan-out with at
// most one partial block delivered.
func (b *Buffer) ReplayAll(ctx context.Context, sinks []SinkPair) error {
	var fetch []FetchSink
	var data []DataSink
	for _, p := range sinks {
		if p.Fetch != nil {
			fetch = append(fetch, p.Fetch)
		}
		if p.Data != nil {
			data = append(data, p.Data)
		}
	}
	// A single sink gets the direct per-event loop: the event is built in
	// registers and handed straight over, where the block path would round-
	// trip every event through the decode scratch for no amortization gain
	// (measurably slower for one consumer). Two or more sinks take the
	// batched fan-out, where one decode pays for the whole group.
	switch len(fetch) {
	case 0:
	case 1:
		if err := b.replayFetchOne(ctx, fetch[0]); err != nil {
			return err
		}
	default:
		batch := make([]FetchBatchSink, len(fetch))
		for i, s := range fetch {
			batch[i] = BatchFetchSink(s)
		}
		if err := b.replayFetchAll(ctx, batch); err != nil {
			return err
		}
	}
	switch len(data) {
	case 0:
	case 1:
		if err := b.replayDataOne(ctx, data[0]); err != nil {
			return err
		}
	default:
		batch := make([]DataBatchSink, len(data))
		for i, s := range data {
			batch[i] = BatchDataSink(s)
		}
		if err := b.replayDataAll(ctx, batch); err != nil {
			return err
		}
	}
	return nil
}

// replayFetchOne is the single-sink chunked per-event fetch replay loop.
func (b *Buffer) replayFetchOne(ctx context.Context, s FetchSink) error {
	left := b.nf
	for _, ch := range b.fetch {
		if err := ctx.Err(); err != nil {
			return err
		}
		n := min(left, chunkLen)
		for i := 0; i < n; i++ {
			s.OnFetch(FetchEvent{
				Addr:  ch.addr[i],
				Prev:  ch.prev[i],
				Base:  ch.base[i],
				Disp:  ch.disp[i],
				Kind:  ControlKind(ch.kind[i] & fetchKindMask),
				First: ch.kind[i]&fetchFirstFlag != 0,
			})
		}
		left -= n
	}
	return nil
}

// replayDataOne is the single-sink chunked per-event data replay loop.
func (b *Buffer) replayDataOne(ctx context.Context, s DataSink) error {
	left := b.nd
	for _, ch := range b.data {
		if err := ctx.Err(); err != nil {
			return err
		}
		n := min(left, chunkLen)
		for i := 0; i < n; i++ {
			s.OnData(DataEvent{
				Addr:  ch.addr[i],
				Base:  ch.base[i],
				Disp:  ch.disp[i],
				Size:  ch.meta[i] & dataSizeMask,
				Store: ch.meta[i]&dataStoreFlag != 0,
			})
		}
		left -= n
	}
	return nil
}

// replayFetchAll is the fetch-stream fan-out loop: decode one block, feed
// every sink, advance.
func (b *Buffer) replayFetchAll(ctx context.Context, sinks []FetchBatchSink) error {
	block := make([]FetchEvent, batchLen)
	left := b.nf
	for _, ch := range b.fetch {
		n := min(left, chunkLen)
		for off := 0; off < n; off += batchLen {
			if err := ctx.Err(); err != nil {
				return err
			}
			m := min(batchLen, n-off)
			for i := 0; i < m; i++ {
				k := ch.kind[off+i]
				block[i] = FetchEvent{
					Addr:  ch.addr[off+i],
					Prev:  ch.prev[off+i],
					Base:  ch.base[off+i],
					Disp:  ch.disp[off+i],
					Kind:  ControlKind(k & fetchKindMask),
					First: k&fetchFirstFlag != 0,
				}
			}
			for _, s := range sinks {
				s.OnFetchBatch(block[:m])
			}
		}
		left -= n
	}
	return nil
}

// replayDataAll is the data-stream fan-out loop.
func (b *Buffer) replayDataAll(ctx context.Context, sinks []DataBatchSink) error {
	block := make([]DataEvent, batchLen)
	left := b.nd
	for _, ch := range b.data {
		n := min(left, chunkLen)
		for off := 0; off < n; off += batchLen {
			if err := ctx.Err(); err != nil {
				return err
			}
			m := min(batchLen, n-off)
			for i := 0; i < m; i++ {
				meta := ch.meta[off+i]
				block[i] = DataEvent{
					Addr:  ch.addr[off+i],
					Base:  ch.base[off+i],
					Disp:  ch.disp[off+i],
					Size:  meta & dataSizeMask,
					Store: meta&dataStoreFlag != 0,
				}
			}
			for _, s := range sinks {
				s.OnDataBatch(block[:m])
			}
		}
		left -= n
	}
	return nil
}

// Fetches materializes the recorded fetch stream as a fresh slice — a
// convenience for tests and tools, not the replay hot path.
func (b *Buffer) Fetches() []FetchEvent {
	out := make([]FetchEvent, b.nf)
	for i := range out {
		out[i] = b.FetchAt(i)
	}
	return out
}

// Datas materializes the recorded data stream as a fresh slice.
func (b *Buffer) Datas() []DataEvent {
	out := make([]DataEvent, b.nd)
	for i := range out {
		out[i] = b.DataAt(i)
	}
	return out
}

// countingWriter tracks bytes written through it for WriteTo's return value.
type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

// WriteTo spills the buffer to w in the WMTRACE1 file format, preserving
// the recorded program-order interleaving of the two streams, so the
// resulting file is interchangeable with one written by attaching a Writer
// to the CPU directly. It implements io.WriterTo.
func (b *Buffer) WriteTo(w io.Writer) (int64, error) {
	cw := &countingWriter{w: w}
	tw, err := NewWriter(cw)
	if err != nil {
		return cw.n, err
	}
	fi, di := 0, 0
	for i := 0; i < b.n; i++ {
		if b.order[i>>6]&(1<<(i&63)) != 0 {
			tw.OnData(b.DataAt(di))
			di++
		} else {
			tw.OnFetch(b.FetchAt(fi))
			fi++
		}
	}
	return cw.n, tw.Flush()
}

// ReadBuffer loads a WMTRACE1 stream into a new Buffer, preserving the
// interleaving, so capture → WriteTo → ReadBuffer → Replay is
// indistinguishable from replaying the original capture.
func ReadBuffer(r io.Reader) (*Buffer, error) {
	b := new(Buffer)
	if err := ReadAll(r, b, b); err != nil {
		return nil, fmt.Errorf("trace: loading buffer: %w", err)
	}
	return b, nil
}
