package trace

import (
	"context"
	"fmt"
	"io"
)

// Buffer is a compact in-memory recording of one execution's event streams,
// built for the execute-once / replay-many pattern: the simulator runs a
// workload once with the Buffer attached as both sinks, and the captured
// streams are then replayed to any number of cache techniques and geometries
// without re-executing a single instruction.
//
// Events are packed into fixed-size column chunks (structure-of-arrays, 21
// bytes per fetch event and 13 per data event instead of the 24/16 of the
// unpacked structs), so a full seven-benchmark capture of the paper's suite
// fits in ~200MB and replay walks memory linearly. The program-order
// interleaving of the two streams is kept as one bit per event, which is
// what lets WriteTo spill the buffer to the WMTRACE1 file format and
// ReadBuffer reload it losslessly.
//
// A Buffer is append-only: it implements FetchSink and DataSink for capture
// and is safe for any number of concurrent replays once capture has
// finished. It is not safe to append and replay concurrently.
type Buffer struct {
	fetch []*fetchChunk
	data  []*dataChunk
	nf    int
	nd    int

	// order holds one bit per recorded event in arrival order: 0 = fetch,
	// 1 = data. It preserves the program-order interleaving for WriteTo.
	order []uint64
	n     int
}

const (
	chunkShift = 15
	chunkLen   = 1 << chunkShift // events per chunk
	chunkMask  = chunkLen - 1

	// kind column packing: low 7 bits hold the ControlKind, the top bit
	// flags the first fetch after reset.
	fetchKindMask  = 0x7f
	fetchFirstFlag = 0x80

	// meta column packing: low 7 bits hold the access size, the top bit
	// flags a store.
	dataSizeMask  = 0x7f
	dataStoreFlag = 0x80
)

// fetchChunk is one column-packed block of fetch events.
type fetchChunk struct {
	addr [chunkLen]uint32
	prev [chunkLen]uint32
	base [chunkLen]uint32
	disp [chunkLen]int32
	kind [chunkLen]uint8
}

// dataChunk is one column-packed block of data events.
type dataChunk struct {
	addr [chunkLen]uint32
	base [chunkLen]uint32
	disp [chunkLen]int32
	meta [chunkLen]uint8
}

// NumFetches returns the number of recorded fetch events.
func (b *Buffer) NumFetches() int { return b.nf }

// NumDatas returns the number of recorded data events.
func (b *Buffer) NumDatas() int { return b.nd }

// Len returns the total number of recorded events.
func (b *Buffer) Len() int { return b.n }

func (b *Buffer) pushOrder(isData bool) {
	if b.n&63 == 0 {
		b.order = append(b.order, 0)
	}
	if isData {
		b.order[b.n>>6] |= 1 << (b.n & 63)
	}
	b.n++
}

// OnFetch appends one fetch event to the buffer.
func (b *Buffer) OnFetch(ev FetchEvent) {
	i := b.nf & chunkMask
	if i == 0 {
		b.fetch = append(b.fetch, new(fetchChunk))
	}
	ch := b.fetch[len(b.fetch)-1]
	ch.addr[i] = ev.Addr
	ch.prev[i] = ev.Prev
	ch.base[i] = ev.Base
	ch.disp[i] = ev.Disp
	k := uint8(ev.Kind) & fetchKindMask
	if ev.First {
		k |= fetchFirstFlag
	}
	ch.kind[i] = k
	b.nf++
	b.pushOrder(false)
}

// OnData appends one data event to the buffer.
func (b *Buffer) OnData(ev DataEvent) {
	i := b.nd & chunkMask
	if i == 0 {
		b.data = append(b.data, new(dataChunk))
	}
	ch := b.data[len(b.data)-1]
	ch.addr[i] = ev.Addr
	ch.base[i] = ev.Base
	ch.disp[i] = ev.Disp
	m := ev.Size & dataSizeMask
	if ev.Store {
		m |= dataStoreFlag
	}
	ch.meta[i] = m
	b.nd++
	b.pushOrder(true)
}

// FetchAt returns the i-th recorded fetch event.
func (b *Buffer) FetchAt(i int) FetchEvent {
	ch := b.fetch[i>>chunkShift]
	j := i & chunkMask
	return FetchEvent{
		Addr:  ch.addr[j],
		Prev:  ch.prev[j],
		Base:  ch.base[j],
		Disp:  ch.disp[j],
		Kind:  ControlKind(ch.kind[j] & fetchKindMask),
		First: ch.kind[j]&fetchFirstFlag != 0,
	}
}

// DataAt returns the i-th recorded data event.
func (b *Buffer) DataAt(i int) DataEvent {
	ch := b.data[i>>chunkShift]
	j := i & chunkMask
	return DataEvent{
		Addr:  ch.addr[j],
		Base:  ch.base[j],
		Disp:  ch.disp[j],
		Size:  ch.meta[j] & dataSizeMask,
		Store: ch.meta[j]&dataStoreFlag != 0,
	}
}

// Replay feeds both recorded streams to the sinks (either may be nil),
// checking ctx between chunks so a sweep can be cancelled mid-replay. The
// two streams are replayed back to back, not interleaved: every sink in
// this repository consumes exactly one stream, so per-stream order — which
// is preserved exactly — is the only order that matters. Use WriteTo for a
// faithful program-order interleaving.
func (b *Buffer) Replay(ctx context.Context, fetch FetchSink, data DataSink) error {
	if fetch != nil {
		if err := b.replayFetch(ctx, fetch); err != nil {
			return err
		}
	}
	if data != nil {
		if err := b.replayData(ctx, data); err != nil {
			return err
		}
	}
	return nil
}

// replayFetch is the chunked allocation-free fetch replay loop.
func (b *Buffer) replayFetch(ctx context.Context, s FetchSink) error {
	left := b.nf
	for _, ch := range b.fetch {
		if err := ctx.Err(); err != nil {
			return err
		}
		n := min(left, chunkLen)
		for i := 0; i < n; i++ {
			s.OnFetch(FetchEvent{
				Addr:  ch.addr[i],
				Prev:  ch.prev[i],
				Base:  ch.base[i],
				Disp:  ch.disp[i],
				Kind:  ControlKind(ch.kind[i] & fetchKindMask),
				First: ch.kind[i]&fetchFirstFlag != 0,
			})
		}
		left -= n
	}
	return nil
}

// replayData is the chunked allocation-free data replay loop.
func (b *Buffer) replayData(ctx context.Context, s DataSink) error {
	left := b.nd
	for _, ch := range b.data {
		if err := ctx.Err(); err != nil {
			return err
		}
		n := min(left, chunkLen)
		for i := 0; i < n; i++ {
			s.OnData(DataEvent{
				Addr:  ch.addr[i],
				Base:  ch.base[i],
				Disp:  ch.disp[i],
				Size:  ch.meta[i] & dataSizeMask,
				Store: ch.meta[i]&dataStoreFlag != 0,
			})
		}
		left -= n
	}
	return nil
}

// countingWriter tracks bytes written through it for WriteTo's return value.
type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

// WriteTo spills the buffer to w in the WMTRACE1 file format, preserving
// the recorded program-order interleaving of the two streams, so the
// resulting file is interchangeable with one written by attaching a Writer
// to the CPU directly. It implements io.WriterTo.
func (b *Buffer) WriteTo(w io.Writer) (int64, error) {
	cw := &countingWriter{w: w}
	tw, err := NewWriter(cw)
	if err != nil {
		return cw.n, err
	}
	fi, di := 0, 0
	for i := 0; i < b.n; i++ {
		if b.order[i>>6]&(1<<(i&63)) != 0 {
			tw.OnData(b.DataAt(di))
			di++
		} else {
			tw.OnFetch(b.FetchAt(fi))
			fi++
		}
	}
	return cw.n, tw.Flush()
}

// ReadBuffer loads a WMTRACE1 stream into a new Buffer, preserving the
// interleaving, so capture → WriteTo → ReadBuffer → Replay is
// indistinguishable from replaying the original capture.
func ReadBuffer(r io.Reader) (*Buffer, error) {
	b := new(Buffer)
	if err := ReadAll(r, b, b); err != nil {
		return nil, fmt.Errorf("trace: loading buffer: %w", err)
	}
	return b, nil
}
