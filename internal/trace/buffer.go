package trace

import (
	"context"
	"fmt"
	"io"
	"sync"
)

// Buffer is a compact in-memory recording of one execution's event streams,
// built for the execute-once / replay-many pattern: the simulator runs a
// workload once with the Buffer attached as both sinks, and the captured
// streams are then replayed to any number of cache techniques and geometries
// without re-executing a single instruction — all of them in one batched
// pass over the storage (ReplayAll), so the capture streams through memory
// once per sweep, not once per technique.
//
// Storage is compressed column chunks: events are staged into fixed-size
// structure-of-arrays chunks and, each time a chunk fills, sealed into the
// delta/varint column encoding of columns.go (~5 bytes per fetch event on
// the paper's workloads instead of the 24 of the unpacked struct, with a
// per-column raw fallback for incompressible streams). Replay decodes each
// sealed chunk block-wise into a batchLen event scratch that stays L2-hot
// while every sink of the pass walks it, so a fan-out pass streams the
// encoded bytes — severalfold fewer than raw columns — exactly once. The
// program-order interleaving of the two streams is kept as one bit per
// event, which is what lets WriteTo spill the buffer to the WMTRACE2 file
// format (sealed chunks verbatim) and ReadBuffer reload it losslessly.
//
// A Buffer is append-only: it implements FetchSink and DataSink for capture
// and is safe for any number of concurrent replays once capture has
// finished. It is not safe to append and replay concurrently.
type Buffer struct {
	fetch []encFetchChunk // sealed full chunks, chunkLen events each
	data  []encDataChunk
	// The not-yet-full tail of each stream stays raw in a staging chunk
	// (reused after each seal), so appends never re-encode.
	fstage *fetchChunk
	dstage *dataChunk
	nf     int
	nd     int

	// order holds one bit per recorded event in arrival order: 0 = fetch,
	// 1 = data. It preserves the program-order interleaving for WriteTo.
	order []uint64
	n     int

	// at caches the one most recently decoded chunk per stream for the
	// random-access FetchAt/DataAt path (tests and tools; replay never
	// touches it).
	at atCache
}

const (
	chunkShift = 15
	chunkLen   = 1 << chunkShift // events per chunk
	chunkMask  = chunkLen - 1

	// kind column packing: low 7 bits hold the ControlKind, the top bit
	// flags the first fetch after reset.
	fetchKindMask  = 0x7f
	fetchFirstFlag = 0x80

	// meta column packing: low 7 bits hold the access size, the top bit
	// flags a store.
	dataSizeMask  = 0x7f
	dataStoreFlag = 0x80
)

// fetchChunk is one staging block of raw column-packed fetch events.
type fetchChunk struct {
	addr [chunkLen]uint32
	prev [chunkLen]uint32
	base [chunkLen]uint32
	disp [chunkLen]int32
	kind [chunkLen]uint8
}

// dataChunk is one staging block of raw column-packed data events.
type dataChunk struct {
	addr [chunkLen]uint32
	base [chunkLen]uint32
	disp [chunkLen]int32
	meta [chunkLen]uint8
}

// atCache memoizes one decoded chunk per stream for FetchAt/DataAt.
type atCache struct {
	mu sync.Mutex
	fi int // index of the decoded fetch chunk, or 0 with f == nil
	f  *fetchChunk
	di int
	d  *dataChunk
}

// NumFetches returns the number of recorded fetch events.
func (b *Buffer) NumFetches() int { return b.nf }

// NumDatas returns the number of recorded data events.
func (b *Buffer) NumDatas() int { return b.nd }

// Len returns the total number of recorded events.
func (b *Buffer) Len() int { return b.n }

// EncodedBytes returns the compressed footprint of the sealed chunks plus
// the raw footprint of the staged tails — the bytes one replay pass streams.
func (b *Buffer) EncodedBytes() int64 {
	var total int64
	for i := range b.fetch {
		total += int64(b.fetch[i].encodedBytes())
	}
	for i := range b.data {
		total += int64(b.data[i].encodedBytes())
	}
	total += int64((b.nf & chunkMask) * 17)
	total += int64((b.nd & chunkMask) * 13)
	return total
}

func (b *Buffer) pushOrder(isData bool) {
	if b.n&63 == 0 {
		b.order = append(b.order, 0)
	}
	if isData {
		b.order[b.n>>6] |= 1 << (b.n & 63)
	}
	b.n++
}

// OnFetch appends one fetch event to the buffer.
func (b *Buffer) OnFetch(ev FetchEvent) {
	i := b.nf & chunkMask
	if b.fstage == nil {
		b.fstage = new(fetchChunk)
	}
	st := b.fstage
	st.addr[i] = ev.Addr
	st.prev[i] = ev.Prev
	st.base[i] = ev.Base
	st.disp[i] = ev.Disp
	k := uint8(ev.Kind) & fetchKindMask
	if ev.First {
		k |= fetchFirstFlag
	}
	st.kind[i] = k
	b.nf++
	if b.nf&chunkMask == 0 {
		b.fetch = append(b.fetch, sealFetchChunk(st, chunkLen))
	}
	b.pushOrder(false)
}

// OnData appends one data event to the buffer.
func (b *Buffer) OnData(ev DataEvent) {
	i := b.nd & chunkMask
	if b.dstage == nil {
		b.dstage = new(dataChunk)
	}
	st := b.dstage
	st.addr[i] = ev.Addr
	st.base[i] = ev.Base
	st.disp[i] = ev.Disp
	m := ev.Size & dataSizeMask
	if ev.Store {
		m |= dataStoreFlag
	}
	st.meta[i] = m
	b.nd++
	if b.nd&chunkMask == 0 {
		b.data = append(b.data, sealDataChunk(st, chunkLen))
	}
	b.pushOrder(true)
}

// fetchEventAt assembles the j-th event of a raw chunk.
func fetchEventAt(ch *fetchChunk, j int) FetchEvent {
	return FetchEvent{
		Addr:  ch.addr[j],
		Prev:  ch.prev[j],
		Base:  ch.base[j],
		Disp:  ch.disp[j],
		Kind:  ControlKind(ch.kind[j] & fetchKindMask),
		First: ch.kind[j]&fetchFirstFlag != 0,
	}
}

// dataEventAt assembles the j-th event of a raw chunk.
func dataEventAt(ch *dataChunk, j int) DataEvent {
	return DataEvent{
		Addr:  ch.addr[j],
		Base:  ch.base[j],
		Disp:  ch.disp[j],
		Size:  ch.meta[j] & dataSizeMask,
		Store: ch.meta[j]&dataStoreFlag != 0,
	}
}

// FetchAt returns the i-th recorded fetch event — a convenience for tests
// and tools. Sealed chunks are decoded whole and memoized one at a time, so
// sequential scans stay linear; replay paths never come through here. A
// decode failure (possible only for a corrupt file-adopted chunk) panics:
// random access has no error channel, and load-time CRCs make it unreachable
// in practice.
func (b *Buffer) FetchAt(i int) FetchEvent {
	if full := len(b.fetch) * chunkLen; i >= full {
		return fetchEventAt(b.fstage, i-full)
	}
	ci := i >> chunkShift
	b.at.mu.Lock()
	defer b.at.mu.Unlock()
	if b.at.f == nil || b.at.fi != ci {
		if b.at.f == nil {
			b.at.f = new(fetchChunk)
		}
		if err := decodeFetchChunk(&b.fetch[ci], b.at.f); err != nil {
			panic(fmt.Sprintf("trace: fetch chunk %d: %v", ci, err))
		}
		b.at.fi = ci
	}
	return fetchEventAt(b.at.f, i&chunkMask)
}

// DataAt returns the i-th recorded data event; see FetchAt.
func (b *Buffer) DataAt(i int) DataEvent {
	if full := len(b.data) * chunkLen; i >= full {
		return dataEventAt(b.dstage, i-full)
	}
	ci := i >> chunkShift
	b.at.mu.Lock()
	defer b.at.mu.Unlock()
	if b.at.d == nil || b.at.di != ci {
		if b.at.d == nil {
			b.at.d = new(dataChunk)
		}
		if err := decodeDataChunk(&b.data[ci], b.at.d); err != nil {
			panic(fmt.Sprintf("trace: data chunk %d: %v", ci, err))
		}
		b.at.di = ci
	}
	return dataEventAt(b.at.d, i&chunkMask)
}

// SinkPair registers one consumer's sinks for a fan-out replay pass. Either
// sink may be nil; every technique in this repository consumes exactly one
// stream.
type SinkPair struct {
	Fetch FetchSink
	Data  DataSink
}

// batchLen is the number of events decoded per replay block: large enough
// that decode overhead and the one dynamic dispatch per block per sink are
// noise, small enough that the decoded block (~96KB of fetch events) stays
// resident in L2 while every sink of the pass walks it.
const batchLen = 4096

// Replay feeds both recorded streams to the sinks (either may be nil). It
// is ReplayAll over a single pair; see ReplayAll for ordering and
// cancellation semantics.
func (b *Buffer) Replay(ctx context.Context, fetch FetchSink, data DataSink) error {
	return b.ReplayAll(ctx, []SinkPair{{Fetch: fetch, Data: data}})
}

// ReplayAll fans the capture out to every registered sink in a single pass:
// each compressed column chunk is decoded into event blocks once, and each
// block is handed to all sinks (native batch sinks directly, legacy
// per-event sinks through the adapter shim) before the next block is
// touched — so an N-technique sweep streams the encoded bytes once instead
// of the raw bytes N times, and the hot block stays cache-resident.
// Per-sink event order is exactly capture order, identical to N independent
// Replay calls.
//
// The two streams are replayed back to back, not interleaved: every sink in
// this repository consumes exactly one stream, so per-stream order — which
// is preserved exactly — is the only order that matters. Use WriteTo for a
// faithful program-order interleaving.
//
// ctx is checked between blocks, so a sweep cancels mid-fan-out with at
// most one partial block delivered. A corrupt file-adopted chunk surfaces
// as an error at the block that fails to decode, never as wrong events.
func (b *Buffer) ReplayAll(ctx context.Context, sinks []SinkPair) error {
	var fetch []FetchBatchSink
	var data []DataBatchSink
	for _, p := range sinks {
		if p.Fetch != nil {
			fetch = append(fetch, BatchFetchSink(p.Fetch))
		}
		if p.Data != nil {
			data = append(data, BatchDataSink(p.Data))
		}
	}
	if len(fetch) > 0 {
		if err := b.forEachFetchBlock(ctx, func(blk []FetchEvent) error {
			for _, s := range fetch {
				s.OnFetchBatch(blk)
			}
			return nil
		}); err != nil {
			return err
		}
	}
	if len(data) > 0 {
		if err := b.forEachDataBlock(ctx, func(blk []DataEvent) error {
			for _, s := range data {
				s.OnDataBatch(blk)
			}
			return nil
		}); err != nil {
			return err
		}
	}
	return nil
}

// forEachFetchBlock decodes the fetch stream block-wise and hands each block
// to fn. The block slice is reused; fn must not retain it.
func (b *Buffer) forEachFetchBlock(ctx context.Context, fn func([]FetchEvent) error) error {
	var sc blockScratch
	block := make([]FetchEvent, batchLen)
	for ci := range b.fetch {
		cu := b.fetch[ci].cursors()
		for off := 0; off < chunkLen; off += batchLen {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := cu.decodeBlock(block, &sc); err != nil {
				return fmt.Errorf("trace: fetch chunk %d: %w", ci, err)
			}
			if err := fn(block); err != nil {
				return err
			}
		}
		if !cu.done() {
			return fmt.Errorf("trace: fetch chunk %d: %w", ci, errColumn)
		}
	}
	tail := b.nf & chunkMask
	for off := 0; off < tail; off += batchLen {
		if err := ctx.Err(); err != nil {
			return err
		}
		m := min(batchLen, tail-off)
		for i := 0; i < m; i++ {
			block[i] = fetchEventAt(b.fstage, off+i)
		}
		if err := fn(block[:m]); err != nil {
			return err
		}
	}
	return nil
}

// forEachDataBlock is forEachFetchBlock for the data stream.
func (b *Buffer) forEachDataBlock(ctx context.Context, fn func([]DataEvent) error) error {
	var sc blockScratch
	block := make([]DataEvent, batchLen)
	for ci := range b.data {
		cu := b.data[ci].cursors()
		for off := 0; off < chunkLen; off += batchLen {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := cu.decodeBlock(block, &sc); err != nil {
				return fmt.Errorf("trace: data chunk %d: %w", ci, err)
			}
			if err := fn(block); err != nil {
				return err
			}
		}
		if !cu.done() {
			return fmt.Errorf("trace: data chunk %d: %w", ci, errColumn)
		}
	}
	tail := b.nd & chunkMask
	for off := 0; off < tail; off += batchLen {
		if err := ctx.Err(); err != nil {
			return err
		}
		m := min(batchLen, tail-off)
		for i := 0; i < m; i++ {
			block[i] = dataEventAt(b.dstage, off+i)
		}
		if err := fn(block[:m]); err != nil {
			return err
		}
	}
	return nil
}

// Fetches materializes the recorded fetch stream as a fresh slice — a
// convenience for tests and tools, not the replay hot path.
func (b *Buffer) Fetches() []FetchEvent {
	out := make([]FetchEvent, 0, b.nf)
	b.forEachFetchBlock(context.Background(), func(blk []FetchEvent) error {
		out = append(out, blk...)
		return nil
	})
	return out
}

// Datas materializes the recorded data stream as a fresh slice.
func (b *Buffer) Datas() []DataEvent {
	out := make([]DataEvent, 0, b.nd)
	b.forEachDataBlock(context.Background(), func(blk []DataEvent) error {
		out = append(out, blk...)
		return nil
	})
	return out
}

// countingWriter tracks bytes written through it for WriteTo's return value.
type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

// ReadBuffer loads a WMTRACE1 or WMTRACE2 stream into a new Buffer,
// preserving the interleaving, so capture → WriteTo → ReadBuffer → Replay
// is indistinguishable from replaying the original capture. WMTRACE2 sealed
// chunks are adopted verbatim (CRC-checked, no re-encode); a partial tail
// chunk is decoded back into staging so the buffer stays appendable.
func ReadBuffer(r io.Reader) (*Buffer, error) {
	br := newTraceReader(r)
	v2, err := readMagic(br)
	if err != nil {
		return nil, fmt.Errorf("trace: loading buffer: %w", err)
	}
	b := new(Buffer)
	if v2 {
		if err := readBuffer2(br, b); err != nil {
			return nil, fmt.Errorf("trace: loading buffer: %w", err)
		}
		return b, nil
	}
	if err := readAll1(br, b, b); err != nil {
		return nil, fmt.Errorf("trace: loading buffer: %w", err)
	}
	return b, nil
}
