package trace

import (
	"bytes"
	"context"
	"encoding/binary"
	"math/rand"
	"testing"
)

// buildStream deterministically expands fuzz bytes into an event mix: each
// 5-byte group is one event whose control byte picks the stream and the
// address-movement pattern, so the fuzzer steers the columns through
// sequential runs, sign-alternating deltas, random jumps and max-magnitude
// wraps — the cases that stress delta/varint encoding.
func buildStream(data []byte) (*Buffer, []FetchEvent, []DataEvent) {
	b := new(Buffer)
	var fs []FetchEvent
	var ds []DataEvent
	addr, prev := uint32(0x1000), uint32(0)
	for i := 0; i+5 <= len(data); i += 5 {
		ctl := data[i]
		d := binary.LittleEndian.Uint32(data[i+1 : i+5])
		switch ctl % 6 {
		case 0: // sequential packet
			addr += 8
		case 1: // short backward branch
			addr -= d % 4096
		case 2: // alternating-sign delta
			if i%2 == 0 {
				addr += d % 256
			} else {
				addr -= d % 256
			}
		case 3: // random jump
			addr = d
		case 4: // max-magnitude wraparound jump
			addr = 0xfffffff8 - addr
		case 5: // monotonic large stride
			addr += 0x10000
		}
		if ctl&0x40 != 0 {
			ev := DataEvent{
				Addr:  addr,
				Base:  addr - d%64,
				Disp:  int32(d % 64),
				Store: ctl&0x20 != 0,
				Size:  1 << (ctl % 4),
			}
			ds = append(ds, ev)
			b.OnData(ev)
			continue
		}
		ev := FetchEvent{
			Addr:  addr,
			Prev:  prev,
			Base:  addr - 8,
			Disp:  int32(d),
			Kind:  ControlKind(ctl % 4),
			First: len(fs) == 0,
		}
		prev = addr
		fs = append(fs, ev)
		b.OnFetch(ev)
	}
	return b, fs, ds
}

// FuzzVarintColumnRoundTrip drives adversarial address streams through the
// full encode→spill→load→decode cycle, asserting byte-exact event recovery
// and a byte-stable re-serialization.
func FuzzVarintColumnRoundTrip(f *testing.F) {
	// Monotonic sequential packets.
	mono := make([]byte, 5*64)
	f.Add(mono)
	// Random bytes (raw-fallback columns).
	r := rand.New(rand.NewSource(99))
	rnd := make([]byte, 5*64)
	r.Read(rnd)
	f.Add(rnd)
	// Alternating-sign deltas.
	alt := make([]byte, 5*64)
	for i := 0; i+5 <= len(alt); i += 5 {
		alt[i] = 2
		binary.LittleEndian.PutUint32(alt[i+1:], 200)
	}
	f.Add(alt)
	// Max-magnitude jumps bouncing across the address space.
	jump := make([]byte, 5*64)
	for i := 0; i+5 <= len(jump); i += 5 {
		jump[i] = 4
	}
	f.Add(jump)
	// A mixed stream with data events.
	mix := make([]byte, 5*128)
	r.Read(mix)
	for i := 0; i+5 <= len(mix); i += 10 {
		mix[i] |= 0x40
	}
	f.Add(mix)

	f.Fuzz(func(t *testing.T, data []byte) {
		b, wantF, wantD := buildStream(data)
		var spill bytes.Buffer
		n, err := b.WriteTo(&spill)
		if err != nil {
			t.Fatal(err)
		}
		if n != int64(spill.Len()) {
			t.Fatalf("WriteTo reported %d bytes, wrote %d", n, spill.Len())
		}
		loaded, err := ReadBuffer(bytes.NewReader(spill.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		gotF, gotD := loaded.Fetches(), loaded.Datas()
		if len(gotF) != len(wantF) || len(gotD) != len(wantD) {
			t.Fatalf("counts %d/%d, want %d/%d", len(gotF), len(gotD), len(wantF), len(wantD))
		}
		for i := range wantF {
			if gotF[i] != wantF[i] {
				t.Fatalf("fetch %d: %+v != %+v", i, gotF[i], wantF[i])
			}
		}
		for i := range wantD {
			if gotD[i] != wantD[i] {
				t.Fatalf("data %d: %+v != %+v", i, gotD[i], wantD[i])
			}
		}
		var again bytes.Buffer
		if _, err := loaded.WriteTo(&again); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(spill.Bytes(), again.Bytes()) {
			t.Fatal("re-serialization differs")
		}
	})
}

// FuzzWMTRACE2Reader throws arbitrary bytes at the reader: it must never
// panic, and anything it accepts must re-serialize to a semantically
// identical buffer (decode is total: a parsed file replays consistently or
// errors, never silently diverges).
func FuzzWMTRACE2Reader(f *testing.F) {
	seed := func(events []byte) []byte {
		b, _, _ := buildStream(events)
		var spill bytes.Buffer
		b.WriteTo(&spill)
		return spill.Bytes()
	}
	r := rand.New(rand.NewSource(7))
	ev := make([]byte, 5*200)
	r.Read(ev)
	f.Add(seed(ev))
	f.Add(seed(make([]byte, 5*64)))
	f.Add([]byte(fileMagic2))
	mut := seed(ev)
	mut[len(mut)/2] ^= 0xff
	f.Add(mut)

	f.Fuzz(func(t *testing.T, data []byte) {
		b, err := ReadBuffer(bytes.NewReader(data))
		if err != nil {
			return
		}
		var log1 eventLog
		if err := b.Replay(context.Background(), &log1, &log1); err != nil {
			// Accepted at load but a chunk fails block decode: that is the
			// degradation contract — an error, never wrong events.
			return
		}
		var out bytes.Buffer
		if _, err := b.WriteTo(&out); err != nil {
			t.Fatalf("accepted file fails to re-serialize: %v", err)
		}
		b2, err := ReadBuffer(bytes.NewReader(out.Bytes()))
		if err != nil {
			t.Fatalf("re-serialized file rejected: %v", err)
		}
		var log2 eventLog
		if err := b2.Replay(context.Background(), &log2, &log2); err != nil {
			t.Fatalf("re-serialized file fails replay: %v", err)
		}
		if len(log1.Fetches) != len(log2.Fetches) || len(log1.Datas) != len(log2.Datas) {
			t.Fatalf("round trip changed counts: %d/%d vs %d/%d",
				len(log1.Fetches), len(log1.Datas), len(log2.Fetches), len(log2.Datas))
		}
		for i := range log1.Fetches {
			if log1.Fetches[i] != log2.Fetches[i] {
				t.Fatalf("round trip changed fetch %d", i)
			}
		}
		for i := range log1.Datas {
			if log1.Datas[i] != log2.Datas[i] {
				t.Fatalf("round trip changed data %d", i)
			}
		}
	})
}

// TestWMTRACE2EveryByteFlipDetected corrupts a spill one byte at a time —
// covering truncated varints, flipped compression flags, altered counts and
// checksum damage — and demands the reader reject every single mutation:
// the format has no byte whose corruption can pass silently.
func TestWMTRACE2EveryByteFlipDetected(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	ev := make([]byte, 5*300)
	r.Read(ev)
	// Bias toward sequential packets so delta columns (flag bytes worth
	// flipping) actually appear.
	for i := 0; i+5 <= len(ev); i += 15 {
		ev[i] &^= 0xc7 // ctl%6 == 0, fetch
	}
	b, _, _ := buildStream(ev)
	var spill bytes.Buffer
	if _, err := b.WriteTo(&spill); err != nil {
		t.Fatal(err)
	}
	orig := spill.Bytes()
	mut := make([]byte, len(orig))
	for off := range orig {
		copy(mut, orig)
		mut[off] ^= 0xff
		if _, err := ReadBuffer(bytes.NewReader(mut)); err == nil {
			t.Fatalf("byte flip at offset %d of %d accepted", off, len(orig))
		}
	}
	// Truncation at every length must also be rejected.
	for n := 0; n < len(orig); n++ {
		if _, err := ReadBuffer(bytes.NewReader(orig[:n])); err == nil {
			t.Fatalf("truncation to %d of %d bytes accepted", n, len(orig))
		}
	}
	// And the pristine bytes still load.
	if _, err := ReadBuffer(bytes.NewReader(orig)); err != nil {
		t.Fatal(err)
	}
}

// TestWMTRACE2CompressionFloor pins the tentpole's size win where it is
// architecturally guaranteed: on sequential-packet-dominated streams (the
// paper's workloads), the v2 spill must be at most half the v1 bytes.
func TestWMTRACE2CompressionFloor(t *testing.T) {
	var b Buffer
	addr := uint32(0x1000)
	for i := 0; i < 3*chunkLen/2; i++ {
		next := addr + 8
		if i%200 == 199 {
			next = addr - 1024 // loop back-edge
		}
		b.OnFetch(FetchEvent{Addr: next, Prev: addr, Base: addr, Disp: int32(next - addr), Kind: KindSeq})
		if i%5 == 0 {
			b.OnData(DataEvent{Addr: 0x8000 + uint32(i%4096)*4, Base: 0x8000, Disp: int32(i % 4096), Size: 4})
		}
		addr = next
	}
	var v1, v2 bytes.Buffer
	if _, err := b.WriteToV1(&v1); err != nil {
		t.Fatal(err)
	}
	if _, err := b.WriteTo(&v2); err != nil {
		t.Fatal(err)
	}
	if 2*v2.Len() >= v1.Len() {
		t.Fatalf("sequential stream: WMTRACE2 %dB vs WMTRACE1 %dB — compression < 2x", v2.Len(), v1.Len())
	}
	if int64(v2.Len()) > b.EncodedBytes()+4096 {
		t.Fatalf("spill %dB far exceeds in-memory encoded footprint %dB", v2.Len(), b.EncodedBytes())
	}
}
