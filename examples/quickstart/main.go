// Quickstart: wrap a small assembly program as a workload, run it through
// the suite runner with way-memoized caches next to the conventional
// baselines, and print the tag / way / power savings — the paper's result
// in twenty lines of setup.
package main

import (
	"context"
	"fmt"
	"log"

	"waymemo/internal/suite"
	"waymemo/internal/workloads"
)

// The workload prologue jumps to main; data lives in the usual data region.
const program = `
; sum an array, scale it, and write it back - a typical embedded loop
main:	la   t0, data
	li   t1, 1024          ; elements
	li   s0, 0             ; sum
loop:	lw   t2, 0(t0)
	add  s0, s0, t2
	li   t3, 3
	mul  t2, t2, t3
	sw   t2, 4096(t0)      ; write the scaled copy
	addi t0, t0, 4
	addi t1, t1, -1
	bnez t1, loop
	la   t4, result
	sw   s0, 0(t4)
	halt
	.org 0x100000
data:	.space 4096, 1
result:	.space 4
	.space 4096
`

func main() {
	w := workloads.Workload{Name: "quickstart", Sources: []string{program},
		MaxInstrs: 10_000_000}

	// Two techniques per cache, picked from the standard registry: the
	// conventional baseline and the paper's MAB configuration.
	r, err := suite.Run(context.Background(),
		suite.WithWorkloads(w),
		suite.WithTechniques(
			suite.MustLookup(suite.Data, suite.DOrig),
			suite.MustLookup(suite.Data, suite.DMAB),
			suite.MustLookup(suite.Fetch, suite.IOrig),
			suite.MustLookup(suite.Fetch, suite.IMAB16),
		))
	if err != nil {
		log.Fatal(err)
	}

	b := r.Benchmarks[0]
	origD, mabD := b.D[suite.DOrig].Stats, b.D[suite.DMAB].Stats
	origI, mabI := b.I[suite.IOrig].Stats, b.I[suite.IMAB16].Stats
	pOrigD, pMabD := b.DPower(suite.DOrig), b.DPower(suite.DMAB)
	pOrigI, pMabI := b.IPower(suite.IOrig), b.IPower(suite.IMAB16)

	fmt.Printf("program ran %d instructions in %d cycles\n\n", b.Instrs, b.Cycles)
	fmt.Printf("D-cache: tags/access %.2f -> %.2f, ways/access %.2f -> %.2f\n",
		origD.TagsPerAccess(), mabD.TagsPerAccess(),
		origD.WaysPerAccess(), mabD.WaysPerAccess())
	fmt.Printf("D-cache power: %.2f mW -> %.2f mW (%.0f%% saving)\n\n",
		pOrigD.TotalMW(), pMabD.TotalMW(), (1-pMabD.TotalMW()/pOrigD.TotalMW())*100)
	fmt.Printf("I-cache: tags/access %.2f -> %.2f\n",
		origI.TagsPerAccess(), mabI.TagsPerAccess())
	fmt.Printf("I-cache power: %.2f mW -> %.2f mW (%.0f%% saving)\n\n",
		pOrigI.TotalMW(), pMabI.TotalMW(), (1-pMabI.TotalMW()/pOrigI.TotalMW())*100)
	fmt.Printf("D-MAB hit rate: %.1f%%   I-MAB hit rate: %.1f%%\n",
		mabD.MABHitRate()*100, mabI.MABHitRate()*100)
}
