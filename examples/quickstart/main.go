// Quickstart: assemble a small program, run it with a way-memoized data and
// instruction cache next to the conventional baselines, and print the tag /
// way / power savings — the paper's result in thirty lines of setup.
package main

import (
	"fmt"
	"log"

	"waymemo/internal/asm"
	"waymemo/internal/baseline"
	"waymemo/internal/cache"
	"waymemo/internal/cacti"
	"waymemo/internal/core"
	"waymemo/internal/power"
	"waymemo/internal/sim"
	"waymemo/internal/trace"
)

const program = `
	.org 0x10000
; sum an array, scale it, and write it back - a typical embedded loop
main:	la   t0, data
	li   t1, 1024          ; elements
	li   s0, 0             ; sum
loop:	lw   t2, 0(t0)
	add  s0, s0, t2
	li   t3, 3
	mul  t2, t2, t3
	sw   t2, 4096(t0)      ; write the scaled copy
	addi t0, t0, 4
	addi t1, t1, -1
	bnez t1, loop
	la   t4, result
	sw   s0, 0(t4)
	halt
	.org 0x100000
data:	.space 4096, 1
result:	.space 4
	.space 4096
`

func main() {
	prog, err := asm.Assemble(program)
	if err != nil {
		log.Fatal(err)
	}

	geo := cache.FRV32K // the paper's 32KB 2-way cache
	origD := baseline.NewOriginalD(geo)
	mabD := core.NewDController(geo, core.DefaultD) // 2x8 MAB
	origI := baseline.NewOriginalI(geo)
	mabI := core.NewIController(geo, core.DefaultI) // 2x16 MAB

	cpu := sim.New()
	cpu.Data = trace.DataTee(origD, mabD)
	cpu.Fetch = trace.FetchTee(origI, mabI)
	cpu.LoadProgram(prog, 0x001F0000)
	if err := cpu.Run(10_000_000); err != nil {
		log.Fatal(err)
	}

	arr := cacti.ArrayEnergies(cacti.Tech130, geo)
	pOrigD := power.Compute(origD.Stats, cpu.Cycles, power.Model{Array: arr})
	pMabD := power.Compute(mabD.Stats, cpu.Cycles,
		power.Model{Array: arr, MAB: mabD.MAB.Characterize()})
	pOrigI := power.Compute(origI.Stats, cpu.Cycles, power.Model{Array: arr})
	pMabI := power.Compute(mabI.Stats, cpu.Cycles,
		power.Model{Array: arr, MAB: mabI.MAB.Characterize()})

	fmt.Printf("program ran %d instructions in %d cycles\n\n", cpu.Instrs, cpu.Cycles)
	fmt.Printf("D-cache: tags/access %.2f -> %.2f, ways/access %.2f -> %.2f\n",
		origD.Stats.TagsPerAccess(), mabD.Stats.TagsPerAccess(),
		origD.Stats.WaysPerAccess(), mabD.Stats.WaysPerAccess())
	fmt.Printf("D-cache power: %.2f mW -> %.2f mW (%.0f%% saving)\n\n",
		pOrigD.TotalMW(), pMabD.TotalMW(), (1-pMabD.TotalMW()/pOrigD.TotalMW())*100)
	fmt.Printf("I-cache: tags/access %.2f -> %.2f\n",
		origI.Stats.TagsPerAccess(), mabI.Stats.TagsPerAccess())
	fmt.Printf("I-cache power: %.2f mW -> %.2f mW (%.0f%% saving)\n\n",
		pOrigI.TotalMW(), pMabI.TotalMW(), (1-pMabI.TotalMW()/pOrigI.TotalMW())*100)
	fmt.Printf("D-MAB hit rate: %.1f%%   I-MAB hit rate: %.1f%%\n",
		mabD.Stats.MABHitRate()*100, mabI.Stats.MABHitRate()*100)
}
