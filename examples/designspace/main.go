// designspace sweeps the D-cache MAB configuration grid over the full
// benchmark suite and reports the power-optimal size — reproducing the
// paper's finding that 2 tag entries x 8 set-index entries is optimal:
// bigger MABs win a few more hits but their own power outgrows the savings.
package main

import (
	"fmt"
	"log"

	"waymemo/internal/cache"
	"waymemo/internal/cacti"
	"waymemo/internal/core"
	"waymemo/internal/power"
	"waymemo/internal/stats"
	"waymemo/internal/synth"
	"waymemo/internal/trace"
	"waymemo/internal/workloads"
)

func main() {
	geo := cache.FRV32K
	arr := cacti.ArrayEnergies(cacti.Tech130, geo)
	type cfg struct{ nt, ns int }
	grid := []cfg{}
	for _, nt := range []int{1, 2} {
		for _, ns := range []int{4, 8, 16, 32} {
			grid = append(grid, cfg{nt, ns})
		}
	}

	// One controller per configuration plus the original baseline, all fed
	// from a single pass over the seven benchmarks.
	totalMW := make(map[cfg]float64)
	var origMW float64
	for _, w := range workloads.All() {
		ctls := make([]*core.DController, len(grid))
		sinks := make([]trace.DataSink, 0, len(grid)+1)
		origStats := &stats.Counters{}
		origCtl := newOriginal(geo, origStats)
		sinks = append(sinks, origCtl)
		for i, g := range grid {
			ctls[i] = core.NewDController(geo, core.Config{TagEntries: g.nt, SetEntries: g.ns})
			sinks = append(sinks, ctls[i])
		}
		c, err := workloads.Run(w, nil, trace.DataTee(sinks...))
		if err != nil {
			log.Fatal(err)
		}
		origMW += power.Compute(origStats, c.Cycles, power.Model{Array: arr}).TotalMW()
		for i, g := range grid {
			m := power.Model{Array: arr, MAB: synth.Characterize(g.nt, g.ns)}
			totalMW[g] += power.Compute(ctls[i].Stats, c.Cycles, m).TotalMW()
		}
	}

	n := float64(len(workloads.All()))
	fmt.Printf("average D-cache power across the 7 benchmarks (original: %.2f mW)\n\n", origMW/n)
	fmt.Printf("%-8s %12s %12s %10s\n", "config", "power mW", "saving", "MAB mW")
	best, bestCfg := 1e18, cfg{}
	for _, g := range grid {
		avg := totalMW[g] / n
		mabP := synth.Characterize(g.nt, g.ns)
		fmt.Printf("%dx%-6d %12.2f %11.1f%% %10.2f\n", g.nt, g.ns, avg,
			(1-avg/(origMW/n))*100, mabP.ActiveMW)
		if avg < best {
			best, bestCfg = avg, g
		}
	}
	fmt.Printf("\npower-optimal configuration: %dx%d (paper: 2x8)\n", bestCfg.nt, bestCfg.ns)
}

// newOriginal adapts the conventional-access accounting to a DataSink
// without importing the baseline package (keeps the example self-contained
// on the core API).
func newOriginal(geo cache.Config, s *stats.Counters) trace.DataSink {
	c := cache.New(geo)
	return trace.DataFunc(func(ev trace.DataEvent) {
		s.Accesses++
		ways := uint64(geo.Ways)
		s.TagReads += ways
		way, hit := c.Lookup(ev.Addr)
		if hit {
			s.Hits++
			if !ev.Store {
				s.WayReads += ways
			}
		} else {
			s.Misses++
			if !ev.Store {
				s.WayReads += ways
			}
			var evc cache.Eviction
			way, evc = c.Fill(ev.Addr)
			s.Refills++
			s.WayWrites++
			if evc.Dirty {
				s.WriteBacks++
			}
		}
		c.Touch(ev.Addr, way)
		if ev.Store {
			s.WayWrites++
			c.MarkDirty(ev.Addr, way)
		}
	})
}
