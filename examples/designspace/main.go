// designspace sweeps the D-cache MAB configuration grid over the full
// benchmark suite through the design-space engine (internal/explore) and
// reports the power-optimal size — the sweep the paper's Section 4 performs
// by hand to pick its 2 tag × 8 set-index MAB.
//
// The example is a thin client: explore.PaperGrid names the space, Run
// executes it (memoized under .designspace-cache, so a second invocation
// simulates nothing) and the analysis helpers extract the tables. On this
// repository's workloads the measured optimum is 2x16 rather than the
// paper's 2x8; see "Known deviations" in ARCHITECTURE.md.
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"waymemo/internal/explore"
	"waymemo/internal/suite"
)

func main() {
	grid, err := explore.Run(context.Background(),
		explore.PaperGrid(suite.Data),
		explore.WithCacheDir(".designspace-cache"),
		explore.WithProgress(func(p explore.Progress) {
			if p.Done && !p.Cached {
				fmt.Fprintf(os.Stderr, "  simulated %s\n", p.Workload)
			}
		}))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "%d grid points: %d from .designspace-cache, %d simulated\n\n",
		len(grid.Points), grid.Hits, grid.Misses)

	grid.WriteReport(os.Stdout, false)
}
