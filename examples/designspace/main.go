// designspace sweeps the D-cache MAB configuration grid over the full
// benchmark suite and reports the power-optimal size — reproducing the
// paper's finding that 2 tag entries x 8 set-index entries is optimal:
// bigger MABs win a few more hits but their own power outgrows the savings.
//
// The sweep is exactly what the suite API is for: every grid point is one
// suite.MABDataTechnique value, the runner attaches all of them to a single
// pass over each benchmark, and the benchmarks themselves run in parallel.
package main

import (
	"context"
	"fmt"
	"log"

	"waymemo/internal/core"
	"waymemo/internal/suite"
	"waymemo/internal/workloads"
)

func main() {
	type cfg struct{ nt, ns int }
	var grid []cfg
	for _, nt := range []int{1, 2} {
		for _, ns := range []int{4, 8, 16, 32} {
			grid = append(grid, cfg{nt, ns})
		}
	}

	// The original baseline plus one technique per grid point, all fed from
	// a single pass over the seven benchmarks.
	techs := []suite.Technique{suite.MustLookup(suite.Data, suite.DOrig)}
	ids := make(map[cfg]suite.ID, len(grid))
	for _, g := range grid {
		id := suite.ID(fmt.Sprintf("mab-%dx%d", g.nt, g.ns))
		ids[g] = id
		techs = append(techs, suite.MABDataTechnique(id, "grid point",
			core.Config{TagEntries: g.nt, SetEntries: g.ns}))
	}

	r, err := suite.Run(context.Background(), suite.WithTechniques(techs...))
	if err != nil {
		log.Fatal(err)
	}

	totalMW := make(map[cfg]float64)
	var origMW float64
	for _, b := range r.Benchmarks {
		origMW += b.DPower(suite.DOrig).TotalMW()
		for _, g := range grid {
			totalMW[g] += b.DPower(ids[g]).TotalMW()
		}
	}

	n := float64(len(workloads.All()))
	fmt.Printf("average D-cache power across the 7 benchmarks (original: %.2f mW)\n\n", origMW/n)
	fmt.Printf("%-8s %12s %12s %10s\n", "config", "power mW", "saving", "MAB mW")
	best, bestCfg := 1e18, cfg{}
	for _, g := range grid {
		avg := totalMW[g] / n
		// Every result row carries its technique's power model.
		mabMW := r.Benchmarks[0].D[ids[g]].Model.MAB.ActiveMW
		fmt.Printf("%dx%-6d %12.2f %11.1f%% %10.2f\n", g.nt, g.ns, avg,
			(1-avg/(origMW/n))*100, mabMW)
		if avg < best {
			best, bestCfg = avg, g
		}
	}
	fmt.Printf("\npower-optimal configuration: %dx%d (paper: 2x8)\n", bestCfg.nt, bestCfg.ns)
}
