// icache_loop compares the paper's I-cache technique against Panwar &
// Rennels [4] on call-heavy loop code, showing where the MAB's three input
// types (sequential stride, branch offset, link register) pay off.
package main

import (
	"fmt"
	"log"

	"waymemo/internal/asm"
	"waymemo/internal/baseline"
	"waymemo/internal/cache"
	"waymemo/internal/core"
	"waymemo/internal/sim"
	"waymemo/internal/trace"
)

// A loop spanning several cache lines whose body calls two helpers: every
// iteration produces inter-line sequential flow, taken branches and two
// link-register returns.
const program = `
	.org 0x10000
main:	li   s0, 20000
	li   s1, 0
loop:	move a0, s1
	jal  helper1           ; call -> branch, return -> link
	add  s1, s1, v0
	move a0, s1
	jal  helper2
	xor  s1, s1, v0
	nop
	nop
	nop
	nop
	nop
	nop
	nop
	nop                    ; pad the loop across several 32B lines
	addi s0, s0, -1
	bnez s0, loop
	halt

	.align 32
helper1:
	sll  v0, a0, 1
	addi v0, v0, 3
	ret

	.align 32
helper2:
	srl  v0, a0, 2
	xori v0, v0, 0x55
	ret
`

func main() {
	prog, err := asm.Assemble(program)
	if err != nil {
		log.Fatal(err)
	}
	geo := cache.FRV32K
	a4 := baseline.NewApproach4I(geo)
	m8 := core.NewIController(geo, core.Config{TagEntries: 2, SetEntries: 8})
	m16 := core.NewIController(geo, core.DefaultI)

	cpu := sim.New()
	cpu.Fetch = trace.FetchTee(a4, m8, m16)
	cpu.LoadProgram(prog, 0x001F0000)
	if err := cpu.Run(10_000_000); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%d fetch packets\n\n", cpu.Cycles)
	fmt.Println("flow mix (approach [4]'s view):")
	names := []string{"intra-seq", "intra-nonseq", "inter-seq", "inter-nonseq"}
	for i, n := range a4.Stats.Flow {
		fmt.Printf("  %-13s %7d (%.1f%%)\n", names[i], n,
			float64(n)/float64(a4.Stats.Accesses)*100)
	}
	fmt.Println()
	fmt.Printf("%-18s %12s %12s\n", "technique", "tags/access", "ways/access")
	show := func(name string, tags, ways float64) {
		fmt.Printf("%-18s %12.3f %12.3f\n", name, tags, ways)
	}
	show("approach [4]", a4.Stats.TagsPerAccess(), a4.Stats.WaysPerAccess())
	show("MAB 2x8", m8.Stats.TagsPerAccess(), m8.Stats.WaysPerAccess())
	show("MAB 2x16", m16.Stats.TagsPerAccess(), m16.Stats.WaysPerAccess())
	fmt.Println()
	fmt.Printf("[4] handles only intra-line sequential flow; the MAB also\n")
	fmt.Printf("memoizes the line crossings, the taken branches and the returns\n")
	fmt.Printf("(MAB 2x16 hit rate on those: %.1f%%).\n", m16.Stats.MABHitRate()*100)
}
