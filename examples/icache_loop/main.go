// icache_loop compares the paper's I-cache technique against Panwar &
// Rennels [4] on call-heavy loop code, showing where the MAB's three input
// types (sequential stride, branch offset, link register) pay off. All
// three techniques come straight from the standard registry.
package main

import (
	"context"
	"fmt"
	"log"

	"waymemo/internal/suite"
	"waymemo/internal/workloads"
)

// A loop spanning several cache lines whose body calls two helpers: every
// iteration produces inter-line sequential flow, taken branches and two
// link-register returns.
const program = `
main:	li   s0, 20000
	li   s1, 0
loop:	move a0, s1
	jal  helper1           ; call -> branch, return -> link
	add  s1, s1, v0
	move a0, s1
	jal  helper2
	xor  s1, s1, v0
	nop
	nop
	nop
	nop
	nop
	nop
	nop
	nop                    ; pad the loop across several 32B lines
	addi s0, s0, -1
	bnez s0, loop
	halt

	.align 32
helper1:
	sll  v0, a0, 1
	addi v0, v0, 3
	ret

	.align 32
helper2:
	srl  v0, a0, 2
	xori v0, v0, 0x55
	ret
`

func main() {
	w := workloads.Workload{Name: "icache_loop", Sources: []string{program},
		MaxInstrs: 10_000_000}
	r, err := suite.Run(context.Background(),
		suite.WithWorkloads(w),
		suite.WithTechniques(
			suite.MustLookup(suite.Fetch, suite.IA4),
			suite.MustLookup(suite.Fetch, suite.IMAB8),
			suite.MustLookup(suite.Fetch, suite.IMAB16),
		))
	if err != nil {
		log.Fatal(err)
	}
	b := r.Benchmarks[0]
	a4 := b.I[suite.IA4].Stats
	m8 := b.I[suite.IMAB8].Stats
	m16 := b.I[suite.IMAB16].Stats

	fmt.Printf("%d fetch packets\n\n", b.Cycles)
	fmt.Println("flow mix (approach [4]'s view):")
	names := []string{"intra-seq", "intra-nonseq", "inter-seq", "inter-nonseq"}
	for i, n := range a4.Flow {
		fmt.Printf("  %-13s %7d (%.1f%%)\n", names[i], n,
			float64(n)/float64(a4.Accesses)*100)
	}
	fmt.Println()
	fmt.Printf("%-18s %12s %12s\n", "technique", "tags/access", "ways/access")
	show := func(name string, tags, ways float64) {
		fmt.Printf("%-18s %12.3f %12.3f\n", name, tags, ways)
	}
	show("approach [4]", a4.TagsPerAccess(), a4.WaysPerAccess())
	show("MAB 2x8", m8.TagsPerAccess(), m8.WaysPerAccess())
	show("MAB 2x16", m16.TagsPerAccess(), m16.WaysPerAccess())
	fmt.Println()
	fmt.Printf("[4] handles only intra-line sequential flow; the MAB also\n")
	fmt.Printf("memoizes the line crossings, the taken branches and the returns\n")
	fmt.Printf("(MAB 2x16 hit rate on those: %.1f%%).\n", m16.MABHitRate()*100)
}
