// custom_asm shows the assembler and simulator as a standalone toolchain:
// a program that insertion-sorts an array, formats numbers in decimal and
// prints them through the console device, run under the full cache+MAB
// simulation.
package main

import (
	"fmt"
	"log"

	"waymemo/internal/asm"
	"waymemo/internal/cache"
	"waymemo/internal/core"
	"waymemo/internal/sim"
	"waymemo/internal/trace"
)

const program = `
	.equ N, 64
	.org 0x10000
main:	la   s0, array
	li   s1, 1             ; i
sort_i:	li   t9, N
	bge  s1, t9, sorted
	sll  t0, s1, 2
	add  t0, s0, t0
	lw   t1, 0(t0)         ; key
	addi t2, s1, -1        ; j
ins_l:	bltz t2, ins_done
	sll  t3, t2, 2
	add  t3, s0, t3
	lw   t4, 0(t3)
	ble  t4, t1, ins_done
	sw   t4, 4(t3)
	addi t2, t2, -1
	b    ins_l
ins_done:
	addi t2, t2, 1
	sll  t3, t2, 2
	add  t3, s0, t3
	sw   t1, 0(t3)
	addi s1, s1, 1
	b    sort_i
sorted:	li   s1, 0             ; print the first 8 values
prt_l:	sll  t0, s1, 2
	la   t1, array
	add  t1, t1, t0
	lw   a0, 0(t1)
	jal  print_dec
	li   a0, ' '
	outb a0
	addi s1, s1, 1
	li   t9, 8
	blt  s1, t9, prt_l
	li   a0, '\n'
	outb a0
	halt

; print_dec(a0): unsigned decimal to the console
print_dec:
	li   t0, 10
	li   t1, 0             ; digit count
pd_div:	remu t2, a0, t0
	divu a0, a0, t0
	addi t2, t2, '0'
	push t2
	addi t1, t1, 1
	bnez a0, pd_div
pd_out:	pop  t2
	outb t2
	addi t1, t1, -1
	bnez t1, pd_out
	ret

	.org 0x100000
array:	.word 19, 3, 84, 1, 77, 23, 5, 64, 12, 90, 45, 2, 31, 8, 55, 27
	.word 70, 14, 99, 6, 41, 36, 50, 11, 62, 29, 88, 17, 4, 73, 58, 20
	.word 95, 9, 66, 33, 48, 15, 81, 25, 7, 52, 38, 92, 18, 60, 13, 44
	.word 86, 21, 69, 10, 97, 30, 56, 16, 75, 40, 26, 63, 35, 83, 22, 49
`

func main() {
	prog, err := asm.Assemble(program)
	if err != nil {
		log.Fatal(err)
	}
	geo := cache.FRV32K
	d := core.NewDController(geo, core.DefaultD)
	i := core.NewIController(geo, core.DefaultI)
	cpu := sim.New()
	cpu.Data = trace.DataTee(d)
	cpu.Fetch = trace.FetchTee(i)
	cpu.LoadProgram(prog, 0x001F0000)
	if err := cpu.Run(10_000_000); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("console: %s", string(cpu.Console))
	fmt.Printf("instructions: %d, cycles: %d\n", cpu.Instrs, cpu.Cycles)
	fmt.Printf("D: tags/access %.3f  ways/access %.3f  MAB hit %.1f%%\n",
		d.Stats.TagsPerAccess(), d.Stats.WaysPerAccess(), d.Stats.MABHitRate()*100)
	fmt.Printf("I: tags/access %.3f  ways/access %.3f  MAB hit %.1f%%\n",
		i.Stats.TagsPerAccess(), i.Stats.WaysPerAccess(), i.Stats.MABHitRate()*100)
}
