// dcache_stream drives the way-memoized D-cache controller directly with
// synthetic access streams (no CPU needed) and shows how the MAB hit rate
// reacts to the two properties the paper's §3.1 exploits: displacement
// magnitude and base-register locality.
package main

import (
	"fmt"
	"math/rand"

	"waymemo/internal/cache"
	"waymemo/internal/core"
	"waymemo/internal/trace"
)

// stencil generates a 2-D 5-point stencil sweep the way a compiler emits
// it: one base register pointing at the window's corner and small positive
// displacements for the five taps — the friendly case for the MAB (§3.1:
// few base regions, one displacement sign, strong line locality).
func stencil(send func(trace.DataEvent), rows, cols int) {
	src := uint32(0x100000)
	dst := uint32(0x102000)
	north := int32(4)
	west := int32(cols * 4)
	center := int32(cols*4 + 4)
	east := int32(cols*4 + 8)
	south := int32(2*cols*4 + 4)
	for r := 1; r < rows-1; r++ {
		for c := 1; c < cols-1; c++ {
			base := src + uint32(((r-1)*cols+c-1)*4)
			for _, disp := range []int32{north, west, center, east, south} {
				send(trace.DataEvent{Addr: base + uint32(disp), Base: base, Disp: disp, Size: 4})
			}
			dbase := dst + uint32((r*cols+c)*4)
			send(trace.DataEvent{Addr: dbase, Base: dbase, Disp: 0, Store: true, Size: 4})
		}
	}
}

// pointerChase generates random-walk accesses across a large region — the
// adversarial case: bases rarely repeat and set indices are random.
func pointerChase(send func(trace.DataEvent), n int) {
	r := rand.New(rand.NewSource(9))
	for i := 0; i < n; i++ {
		base := uint32(0x100000 + r.Intn(1<<20)&^3)
		send(trace.DataEvent{Addr: base, Base: base, Disp: 0, Size: 4})
	}
}

// largeDisp uses one base register with displacements beyond the 14-bit
// adder's reach, forcing MAB bypasses.
func largeDisp(send func(trace.DataEvent), n int) {
	base := uint32(0x100000)
	for i := 0; i < n; i++ {
		disp := int32(20000 + (i%8)*4) // >= 2^14: out of range
		send(trace.DataEvent{Addr: base + uint32(disp), Base: base, Disp: disp, Size: 4})
	}
}

func run(name string, gen func(func(trace.DataEvent))) {
	d := core.NewDController(cache.FRV32K, core.DefaultD)
	gen(d.OnData)
	s := d.Stats
	fmt.Printf("%-14s accesses %8d  MAB hit %5.1f%%  bypass %5.1f%%  tags/access %.3f  ways/access %.3f\n",
		name, s.Accesses, s.MABHitRate()*100,
		float64(s.MABBypasses)/float64(s.Accesses)*100,
		s.TagsPerAccess(), s.WaysPerAccess())
}

func main() {
	fmt.Println("way-memoized D-cache (2x8 MAB) under three synthetic streams:")
	fmt.Println()
	run("stencil", func(send func(trace.DataEvent)) { stencil(send, 64, 64) })
	run("pointer-chase", func(send func(trace.DataEvent)) { pointerChase(send, 20000) })
	run("large-disp", func(send func(trace.DataEvent)) { largeDisp(send, 20000) })
	fmt.Println()
	fmt.Println("the stencil keeps both MAB tables hot (two base regions, few lines);")
	fmt.Println("the pointer chase defeats the set-index table; large displacements")
	fmt.Println("bypass the MAB entirely, as in §3.1 of the paper.")
}
