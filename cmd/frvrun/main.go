// frvrun executes an FRVL assembly program under the full memory-hierarchy
// simulation and reports cache and MAB statistics.
//
// Usage:
//
//	frvrun [-max N] [-dmab 2x8] [-imab 2x16] [-v] prog.s
//
// The program runs with a way-memoized D- and I-cache alongside the original
// baselines, so the report shows the paper's savings for this program.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"waymemo/internal/asm"
	"waymemo/internal/baseline"
	"waymemo/internal/cache"
	"waymemo/internal/core"
	"waymemo/internal/power"
	"waymemo/internal/report"
	"waymemo/internal/sim"
	"waymemo/internal/stats"
	"waymemo/internal/suite"
	"waymemo/internal/trace"
)

func parseMAB(s string) (core.Config, error) {
	var nt, ns int
	if _, err := fmt.Sscanf(strings.ToLower(s), "%dx%d", &nt, &ns); err != nil {
		return core.Config{}, fmt.Errorf("bad MAB config %q (want NxM, e.g. 2x8)", s)
	}
	return core.Config{TagEntries: nt, SetEntries: ns}, nil
}

func main() {
	max := flag.Uint64("max", 500_000_000, "instruction budget")
	dmab := flag.String("dmab", "2x8", "D-cache MAB configuration (NtxNs)")
	imab := flag.String("imab", "2x16", "I-cache MAB configuration (NtxNs)")
	verbose := flag.Bool("v", false, "also dump the console output")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: frvrun [-max N] [-dmab 2x8] [-imab 2x16] prog.s")
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "frvrun:", err)
		os.Exit(1)
	}
	dcfg, err := parseMAB(*dmab)
	if err != nil {
		fmt.Fprintln(os.Stderr, "frvrun:", err)
		os.Exit(1)
	}
	icfg, err := parseMAB(*imab)
	if err != nil {
		fmt.Fprintln(os.Stderr, "frvrun:", err)
		os.Exit(1)
	}
	p, err := asm.Assemble(string(src))
	if err != nil {
		fmt.Fprintln(os.Stderr, "frvrun:", err)
		os.Exit(1)
	}

	geo := cache.FRV32K
	dOrig := baseline.NewOriginalD(geo)
	dMAB := core.NewDController(geo, dcfg)
	iOrig := baseline.NewOriginalI(geo)
	iA4 := baseline.NewApproach4I(geo)
	iMAB := core.NewIController(geo, icfg)

	c := sim.New()
	c.Fetch = trace.FetchTee(iOrig, iA4, iMAB)
	c.Data = trace.DataTee(dOrig, dMAB)
	c.LoadProgram(p, 0x001F0000)
	if err := c.Run(*max); err != nil {
		fmt.Fprintln(os.Stderr, "frvrun:", err)
		os.Exit(1)
	}
	fmt.Printf("halted after %d instructions, %d cycles\n", c.Instrs, c.Cycles)
	if *verbose && len(c.Console) > 0 {
		fmt.Printf("console: %q\n", string(c.Console))
	}

	t := report.Table{Title: "cache activity",
		Columns: []string{"cache", "technique", "accesses", "hit rate", "tags/access", "ways/access", "power mW"}}
	addRow := func(kind, tech string, s *stats.Counters, m power.Model) {
		b := power.Compute(s, c.Cycles, m)
		t.AddRow(kind, tech, fmt.Sprintf("%d", s.Accesses), report.Pct(s.HitRate()),
			report.F(s.TagsPerAccess(), 3), report.F(s.WaysPerAccess(), 3),
			report.F(b.TotalMW(), 2))
	}
	arr := suite.ArrayModel(geo)
	addRow("D", "original", dOrig.Stats, arr)
	dm := arr
	dm.MAB = dMAB.MAB.Characterize()
	addRow("D", "mab-"+dcfg.String(), dMAB.Stats, dm)
	addRow("I", "original", iOrig.Stats, arr)
	addRow("I", "approach[4]", iA4.Stats, arr)
	im := arr
	im.MAB = iMAB.MAB.Characterize()
	addRow("I", "mab-"+icfg.String(), iMAB.Stats, im)
	t.Render(os.Stdout)

	fmt.Printf("\nD-MAB hit rate %s, I-MAB hit rate %s\n",
		report.Pct(dMAB.Stats.MABHitRate()), report.Pct(iMAB.Stats.MABHitRate()))
}
