package main

import (
	"bytes"
	"os"
	"strings"
	"testing"

	"waymemo/internal/asm"
	"waymemo/internal/workloads"
)

const goldenSpec = "synth:pchase,fp=1KiB,seed=7"

// TestEmitSpecDeterministic pins the generator's determinism contract at
// the CLI surface: the same spec and seed emit byte-identical assembly on
// every run.
func TestEmitSpecDeterministic(t *testing.T) {
	var a, b bytes.Buffer
	if err := emitSpec(&a, goldenSpec); err != nil {
		t.Fatal(err)
	}
	if err := emitSpec(&b, goldenSpec); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("two emissions of the same spec differ")
	}
	// A different seed must emit a different program.
	var c bytes.Buffer
	if err := emitSpec(&c, "synth:pchase,fp=1KiB,seed=8"); err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(a.Bytes(), c.Bytes()) {
		t.Fatal("seeds 7 and 8 emit identical programs")
	}
}

// TestEmitSpecGolden compares the emission against the committed golden
// file, catching cross-version drift. A diff means generator semantics
// changed: bump synth.GenVersion and regenerate with
//
//	go run ./cmd/wmsynth -spec "synth:pchase,fp=1KiB,seed=7" \
//	    > cmd/wmsynth/testdata/pchase_1KiB_seed7.s
func TestEmitSpecGolden(t *testing.T) {
	want, err := os.ReadFile("testdata/pchase_1KiB_seed7.s")
	if err != nil {
		t.Fatal(err)
	}
	var got bytes.Buffer
	if err := emitSpec(&got, goldenSpec); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Bytes(), want) {
		t.Fatalf("emission drifted from the golden file (len %d vs %d); regenerate if intentional and bump synth.GenVersion",
			got.Len(), len(want))
	}
}

// TestEmitSpecAssembles proves the emitted text is a complete standalone
// program: it must assemble as-is, with the checksum symbol present.
func TestEmitSpecAssembles(t *testing.T) {
	var out bytes.Buffer
	if err := emitSpec(&out, goldenSpec); err != nil {
		t.Fatal(err)
	}
	p, err := asm.Assemble(out.String())
	if err != nil {
		t.Fatalf("emitted program does not assemble: %v", err)
	}
	if _, ok := p.Symbols["synthSum"]; !ok {
		t.Error("emitted program lacks the synthSum symbol")
	}
	if !strings.HasPrefix(out.String(), "; "+strings.Replace(goldenSpec, ",seed", ",stride=64,n=65536,seed", 1)) {
		t.Errorf("emission does not lead with the canonical spec:\n%s", out.String()[:80])
	}
}

func TestEmitSpecRejectsBadSpec(t *testing.T) {
	if err := emitSpec(&bytes.Buffer{}, "synth:nope"); err == nil {
		t.Error("bad spec accepted")
	}
	if err := emitSpec(&bytes.Buffer{}, "synth:pchase,fp=1KiB..4KiB"); err == nil {
		t.Error("ranged spec accepted; -spec emits one program")
	}
}

// TestEmittedProgramMatchesWorkloadPipeline ties the CLI surface to the
// library: the sources emitSpec writes are exactly the prologue plus the
// sources workloads.ByName builds for the same spec.
func TestEmittedProgramMatchesWorkloadPipeline(t *testing.T) {
	var out bytes.Buffer
	if err := emitSpec(&out, goldenSpec); err != nil {
		t.Fatal(err)
	}
	w, err := workloads.ByName(goldenSpec)
	if err != nil {
		t.Fatal(err)
	}
	text := out.String()
	if !strings.Contains(text, workloads.Prologue()) {
		t.Error("emission omits the runtime prologue")
	}
	for i, src := range w.Sources {
		if !strings.Contains(text, src) {
			t.Errorf("emission omits workload source %d", i)
		}
	}
}
