; synth:pchase,fp=1KiB,stride=64,n=65536,seed=7
; expected synthSum = 0x556453d7

	.equ TEXT,  0x10000
	.equ DATA,  0x100000
	.org TEXT
_start:	jal  main
	halt
; synth v1 synth:pchase,fp=1KiB,stride=64,n=65536,seed=7
main:	la   s0, synthData
	li   s5, 1401181143
	li   s1, 0
	li   s6, 65536
synlp:	add  t0, s0, s1
	lw   s1, 0(t0)
	add  s5, s5, s1
	addi s6, s6, -1
	bnez s6, synlp
	la   t0, synthSum
	sw   s5, 0(t0)
	ret
	.org DATA
synthData:
	.word 576, 0, 0, 0, 0, 0, 0, 0
	.word 0, 0, 0, 0, 0, 0, 0, 0
	.word 704, 0, 0, 0, 0, 0, 0, 0
	.word 0, 0, 0, 0, 0, 0, 0, 0
	.word 448, 0, 0, 0, 0, 0, 0, 0
	.word 0, 0, 0, 0, 0, 0, 0, 0
	.word 384, 0, 0, 0, 0, 0, 0, 0
	.word 0, 0, 0, 0, 0, 0, 0, 0
	.word 192, 0, 0, 0, 0, 0, 0, 0
	.word 0, 0, 0, 0, 0, 0, 0, 0
	.word 128, 0, 0, 0, 0, 0, 0, 0
	.word 0, 0, 0, 0, 0, 0, 0, 0
	.word 0, 0, 0, 0, 0, 0, 0, 0
	.word 0, 0, 0, 0, 0, 0, 0, 0
	.word 768, 0, 0, 0, 0, 0, 0, 0
	.word 0, 0, 0, 0, 0, 0, 0, 0
	.word 256, 0, 0, 0, 0, 0, 0, 0
	.word 0, 0, 0, 0, 0, 0, 0, 0
	.word 640, 0, 0, 0, 0, 0, 0, 0
	.word 0, 0, 0, 0, 0, 0, 0, 0
	.word 960, 0, 0, 0, 0, 0, 0, 0
	.word 0, 0, 0, 0, 0, 0, 0, 0
	.word 896, 0, 0, 0, 0, 0, 0, 0
	.word 0, 0, 0, 0, 0, 0, 0, 0
	.word 64, 0, 0, 0, 0, 0, 0, 0
	.word 0, 0, 0, 0, 0, 0, 0, 0
	.word 320, 0, 0, 0, 0, 0, 0, 0
	.word 0, 0, 0, 0, 0, 0, 0, 0
	.word 512, 0, 0, 0, 0, 0, 0, 0
	.word 0, 0, 0, 0, 0, 0, 0, 0
	.word 832, 0, 0, 0, 0, 0, 0, 0
	.word 0, 0, 0, 0, 0, 0, 0, 0
synthSum:
	.space 4
