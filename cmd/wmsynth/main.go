// wmsynth covers the repository's two synthesis roles: it prints the MAB
// circuit model — area, critical-path delay, active and sleep power — for
// an arbitrary configuration grid, and it emits synthetic workload programs
// from specs.
//
// Usage:
//
//	wmsynth [-nt 1,2] [-ns 4,8,16,32]
//	wmsynth -spec "synth:pchase,fp=64KiB,seed=7"
//	wmsynth -patterns
//
// With -spec, the generated FRVL assembly (runtime prologue, code, data) is
// written to stdout; the output is deterministic for a given spec — the
// same spec and seed always emit byte-identical assembly (pinned by this
// command's golden test) — and assembles as-is with frvasm. -patterns lists
// the available pattern families and their knobs.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"waymemo/internal/report"
	"waymemo/internal/synth"
	"waymemo/internal/workloads"
)

func parseList(s string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || v <= 0 {
			return nil, fmt.Errorf("bad entry count %q", f)
		}
		out = append(out, v)
	}
	return out, nil
}

// emitSpec writes the complete generated program for one synthetic spec:
// the shared runtime prologue, then the generated code and data sections.
// The expected checksum is included as a comment so a simulator run can be
// validated by hand.
func emitSpec(out io.Writer, spec string) error {
	sp, err := synth.ParseSpec(spec)
	if err != nil {
		return err
	}
	g, err := sp.Generate()
	if err != nil {
		return err
	}
	if _, err := fmt.Fprintf(out, "; %s\n; expected %s = %#08x\n", g.Spec, synth.SumSymbol, g.WantSum); err != nil {
		return err
	}
	if _, err := io.WriteString(out, workloads.Prologue()); err != nil {
		return err
	}
	for _, src := range g.Sources {
		if _, err := io.WriteString(out, src); err != nil {
			return err
		}
	}
	return nil
}

// emitPatterns lists the pattern families.
func emitPatterns(out io.Writer) {
	fmt.Fprintf(out, "spec syntax: %s\n\n", synth.SpecSyntax())
	for _, p := range synth.Patterns() {
		sp, err := (synth.Spec{Pattern: p}).Normalized()
		if err != nil {
			panic(err) // defaults always normalize
		}
		fmt.Fprintf(out, "  %-8s %s\n           defaults: %s\n", p, synth.Describe(p), sp)
	}
}

func main() {
	ntFlag := flag.String("nt", "1,2", "tag entry counts")
	nsFlag := flag.String("ns", "4,8,16,32", "set-index entry counts")
	spec := flag.String("spec", "", "emit the assembly of this synthetic workload `spec` instead of the circuit table")
	patterns := flag.Bool("patterns", false, "list the synthetic pattern families and exit")
	flag.Parse()
	if *patterns {
		emitPatterns(os.Stdout)
		return
	}
	if *spec != "" {
		if err := emitSpec(os.Stdout, *spec); err != nil {
			fmt.Fprintln(os.Stderr, "wmsynth:", err)
			os.Exit(2)
		}
		return
	}
	nts, err := parseList(*ntFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "wmsynth:", err)
		os.Exit(2)
	}
	nss, err := parseList(*nsFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "wmsynth:", err)
		os.Exit(2)
	}
	t := report.Table{
		Title:   "MAB circuit model (0.13um, 1.3V, 360MHz; cycle 2.5ns)",
		Columns: []string{"config", "bits", "area mm^2", "delay ns", "active mW", "sleep mW", "fits cycle"},
	}
	for _, nt := range nts {
		for _, ns := range nss {
			r := synth.Characterize(nt, ns)
			t.AddRow(fmt.Sprintf("%dx%d", nt, ns),
				fmt.Sprintf("%d", synth.StateBits(nt, ns)),
				report.F(r.AreaMM2, 3), report.F(r.DelayNS, 2),
				report.F(r.ActiveMW, 2), report.F(r.SleepMW, 2),
				fmt.Sprintf("%v", synth.FitsCycle(r)))
		}
	}
	t.Render(os.Stdout)
}
